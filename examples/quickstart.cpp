// Quickstart: find an equivalent rewriting of a conjunctive query with
// arithmetic comparisons (CQAC) using CQAC views.
//
// Walks through the paper's running examples:
//   * Example 1  — a comparison decides which of two near-identical views
//                  is usable;
//   * Examples 5/7/8/9 — the full two-phase algorithm, ending in the union
//                  rewriting  q(A) :- v(A,A), A < 8  UNION  A = 8;
//   * Example 10 — a case with no equivalent rewriting.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"

namespace {

void RunCase(const char* title, const char* query_text,
             const char* views_text) {
  using cqac::EquivalentRewriter;
  using cqac::Parser;
  using cqac::RewriteOptions;
  using cqac::RewriteOutcome;
  using cqac::RewriteResult;
  using cqac::ViewSet;

  std::printf("=== %s ===\n", title);
  const cqac::ConjunctiveQuery query = Parser::MustParseRule(query_text);
  const ViewSet views(Parser::MustParseProgram(views_text));

  std::printf("query:  %s\n", query.ToString().c_str());
  for (const cqac::ConjunctiveQuery& v : views.views()) {
    std::printf("view:   %s\n", v.ToString().c_str());
  }

  RewriteOptions options;
  options.verify = true;           // Double-check equivalence independently.
  options.minimize_output = true;  // Compact union, as in the paper's text.
  const RewriteResult result =
      EquivalentRewriter(query, views, options).Run();

  switch (result.outcome) {
    case RewriteOutcome::kRewritingFound:
      std::printf("equivalent rewriting (%d disjunct%s, verified=%s):\n",
                  result.rewriting.size(),
                  result.rewriting.size() == 1 ? "" : "s",
                  result.verified ? "yes" : "NO");
      for (const cqac::ConjunctiveQuery& d : result.rewriting.disjuncts()) {
        std::printf("  %s\n", d.ToString().c_str());
      }
      break;
    case RewriteOutcome::kNoRewriting:
      std::printf("no equivalent rewriting exists (%s)\n",
                  result.failure_reason.c_str());
      break;
    case RewriteOutcome::kAborted:
      std::printf("aborted: %s\n", result.failure_reason.c_str());
      break;
  }
  std::printf(
      "work: %lld canonical databases (%lld kept), %lld MCDs, "
      "%lld phase-2 checks\n\n",
      static_cast<long long>(result.stats.canonical_databases),
      static_cast<long long>(result.stats.kept_canonical_databases),
      static_cast<long long>(result.stats.mcds_formed),
      static_cast<long long>(result.stats.phase2_checks));
}

}  // namespace

int main() {
  // Paper Example 1: V1 and V2 differ only in one comparison (S <= U vs
  // S < U), and only V1 supports an equivalent rewriting.
  RunCase("Example 1: the comparison decides",
          "q(X,X) :- a(X,X), b(X), X < 7",
          "v1(T,U) :- a(S,T), b(U), T <= S, S <= U.\n"
          "v2(T,U) :- a(S,T), b(U), T <= S, S < U.");

  // Paper Examples 5/7/8/9: exportable variables plus a union over the
  // canonical databases A < 8 and A = 8.
  RunCase("Examples 5-9: exportable variable, union rewriting",
          "q(A) :- r(A), s(A,A), A <= 8",
          "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.");

  // Paper Example 2: no single CQAC works; the union of two views covers
  // the query's closed half-line.
  RunCase("Example 2: a union is required",
          "q() :- p(X), X >= 0",
          "v1() :- p(X), X = 0.\n"
          "v2() :- p(X), X > 0.");

  // Paper Example 10: the view's strict comparison makes it useless; the
  // algorithm stops in Phase 1.
  RunCase("Example 10: no rewriting exists",
          "q(A) :- r(A), s(A,A), A <= 8",
          "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z.");

  return 0;
}
