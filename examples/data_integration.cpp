// Data-integration scenario: sources described as views over a mediated
// schema.  Contrasts the two rewriting regimes the paper discusses:
//
//   * For plain conjunctive queries, maximally-contained rewritings come
//     from the classical algorithms — the bucket algorithm and MiniCon,
//     both implemented here as substrates.
//   * Once arithmetic comparisons enter, single conjunctive rewritings can
//     stop existing while a *union* still covers the query exactly
//     (paper Example 2), which is where the paper's algorithm comes in.
//
// Build & run:  ./build/examples/data_integration

#include <cstdio>

#include "parser/parser.h"
#include "rewriting/bucket.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/expansion.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/minicon.h"

namespace {

using cqac::Parser;
using cqac::UnionQuery;
using cqac::ViewSet;

void PrintUnion(const char* title, const UnionQuery& u) {
  std::printf("%s (%d):\n", title, u.size());
  for (const cqac::ConjunctiveQuery& d : u.disjuncts()) {
    std::printf("  %s\n", d.ToString().c_str());
  }
}

}  // namespace

int main() {
  // Mediated schema: flight(from, to), train(from, to).
  // The user asks for two-leg flight connections.
  const cqac::ConjunctiveQuery query = Parser::MustParseRule(
      "q(X,Z) :- flight(X,Y), flight(Y,Z)");
  std::printf("mediated query: %s\n\n", query.ToString().c_str());

  // Three autonomous sources.
  const std::vector<cqac::ConjunctiveQuery> sources =
      Parser::MustParseProgram(
          "hub1(T,U) :- flight(T,U).\n"
          "hub2(T,U) :- flight(T,W), flight(W,U).\n"
          "rail(T,U) :- train(T,U).");
  for (const cqac::ConjunctiveQuery& s : sources) {
    std::printf("source: %s\n", s.ToString().c_str());
  }
  std::printf("\n");

  // Classical contained rewritings (open-world): bucket vs MiniCon.
  const UnionQuery bucket = BucketRewritings(query, ViewSet(sources));
  PrintUnion("bucket-algorithm contained rewritings", bucket);

  const UnionQuery minicon = MiniConRewritings(query, sources);
  PrintUnion("\nMiniCon rewritings (one-to-one variant)", minicon);

  // The third classical route: inverse rules with Skolem terms.
  std::printf("\ninverse rules:\n");
  for (const cqac::InverseRule& rule :
       BuildInverseRules(ViewSet(sources))) {
    std::printf("  %s\n", rule.ToString().c_str());
  }
  cqac::Database extension;
  extension.Insert("hub1", {cqac::Rational(1), cqac::Rational(2)});
  extension.Insert("hub1", {cqac::Rational(2), cqac::Rational(3)});
  extension.Insert("hub2", {cqac::Rational(3), cqac::Rational(5)});
  std::printf("certain answers over {hub1(1,2), hub1(2,3), hub2(3,5)}: %s\n",
              AnswerViaInverseRules(query, ViewSet(sources), extension)
                  .ToString()
                  .c_str());

  // With comparisons, equivalence needs unions: paper Example 2 recast as
  // sources that split a price range.
  std::printf("\n--- comparisons require unions (paper Example 2) ---\n");
  const cqac::ConjunctiveQuery price_query =
      Parser::MustParseRule("q(P) :- offer(P,V), V >= 0");
  const ViewSet price_sources(Parser::MustParseProgram(
      "free(P) :- offer(P,V), V = 0.\n"
      "paid(P) :- offer(P,V), V > 0."));
  std::printf("query:  %s\n", price_query.ToString().c_str());
  for (const cqac::ConjunctiveQuery& s : price_sources.views()) {
    std::printf("source: %s\n", s.ToString().c_str());
  }

  cqac::RewriteOptions options;
  options.verify = true;
  options.minimize_output = true;
  options.coalesce_output = true;
  const cqac::RewriteResult result =
      cqac::EquivalentRewriter(price_query, price_sources, options).Run();
  if (result.outcome == cqac::RewriteOutcome::kRewritingFound) {
    std::printf("equivalent union rewriting (verified=%s):\n",
                result.verified ? "yes" : "NO");
    for (const cqac::ConjunctiveQuery& d : result.rewriting.disjuncts()) {
      std::printf("  %s\n", d.ToString().c_str());
    }
  } else {
    std::printf("no rewriting: %s\n", result.failure_reason.c_str());
  }

  // And the negative case: drop the `free` source and only a contained
  // rewriting remains; the equivalence test correctly fails.
  const ViewSet paid_only(
      Parser::MustParseProgram("paid(P) :- offer(P,V), V > 0."));
  const cqac::RewriteResult gap =
      cqac::EquivalentRewriter(price_query, paid_only).Run();
  std::printf(
      "\nwith only the paid source: %s\n",
      gap.outcome == cqac::RewriteOutcome::kNoRewriting
          ? "no equivalent rewriting (as expected; V = 0 is uncovered)"
          : "unexpected result");
  return 0;
}
