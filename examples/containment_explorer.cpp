// Containment explorer: a tour of the containment machinery underlying
// the rewriting algorithm — Chandra–Merlin mappings for plain CQs, the
// canonical-database test and the order-refinement implication test for
// CQACs, and union containment (where comparisons break the classical
// disjunct-wise criterion).
//
// Build & run:  ./build/examples/containment_explorer

#include <cstdio>

#include "containment/cq_containment.h"
#include "containment/cqac_containment.h"
#include "containment/homomorphism.h"
#include "parser/parser.h"

namespace {

using cqac::ConjunctiveQuery;
using cqac::Parser;

void ShowCq(const char* q1_text, const char* q2_text) {
  const ConjunctiveQuery q1 = Parser::MustParseRule(q1_text);
  const ConjunctiveQuery q2 = Parser::MustParseRule(q2_text);
  const bool c12 = CqContained(q1, q2);
  const bool c21 = CqContained(q2, q1);
  std::printf("  %-42s %s %s\n", q1_text,
              c12 && c21  ? "==="
              : c12       ? "⊑ "
              : c21       ? "⊒ "
                          : "≢ ",
              q2_text);
  const auto mapping = FindContainmentMapping(q2, q1);
  if (mapping.has_value() && !mapping->empty()) {
    std::printf("      witness mapping: %s\n", mapping->ToString().c_str());
  }
}

void ShowCqac(const char* q1_text, const char* q2_text) {
  const ConjunctiveQuery q1 = Parser::MustParseRule(q1_text);
  const ConjunctiveQuery q2 = Parser::MustParseRule(q2_text);
  cqac::ContainmentStats stats;
  const bool canonical = CqacContainedCanonical(q1, q2, &stats);
  const bool implication = CqacContainedImplication(q1, q2);
  std::printf("  %-42s %s %s   [canonical dbs checked: %lld]%s\n", q1_text,
              canonical ? "⊑ " : "⋢ ", q2_text,
              static_cast<long long>(stats.orders_satisfying),
              canonical == implication ? "" : "  METHODS DISAGREE!");
}

}  // namespace

int main() {
  std::printf("--- plain conjunctive queries (Chandra & Merlin) ---\n");
  ShowCq("q(X) :- a(X,X)", "q(X) :- a(X,Y)");
  ShowCq("q() :- a(X,Y), a(Y,Z)", "q() :- a(U,V)");
  ShowCq("q(X) :- a(X,Y), a(X,Z)", "q(X) :- a(X,Y)");
  ShowCq("q(X,Y) :- a(X,Y)", "q(X,Y) :- a(Y,X)");

  std::printf(
      "\n--- arithmetic comparisons (canonical-database test, cross-checked "
      "against the implication test) ---\n");
  // Tight vs loose intervals.
  ShowCqac("q(X) :- a(X), X < 3", "q(X) :- a(X), X < 5");
  ShowCqac("q(X) :- a(X), X <= 3", "q(X) :- a(X), X < 3");
  // Klug's phenomenon: containment that NO single mapping witnesses —
  // the split on the order of U and V needs two mappings.
  ShowCqac("q() :- p(X,Y), p(Y,X)", "q() :- p(U,V), U <= V");
  // Without the symmetric closure it fails.
  ShowCqac("q() :- p(X,Y)", "q() :- p(U,V), U <= V");
  // The paper's Example 1 expansion is equivalent to the query.
  ShowCqac("q(X,X) :- a(X,X), b(X), X < 7",
           "q(A,A) :- a(S,A), b(A), A <= S, S <= A, A < 7");
  ShowCqac("q(A,A) :- a(S,A), b(A), A <= S, S <= A, A < 7",
           "q(X,X) :- a(X,X), b(X), X < 7");

  std::printf("\n--- unions: Example 2's closed half-line ---\n");
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- p(X), X >= 0");
  cqac::UnionQuery covers;
  covers.Add(Parser::MustParseRule("q() :- p(X), X = 0"));
  covers.Add(Parser::MustParseRule("q() :- p(X), X > 0"));
  std::printf("  q() :- p(X), X >= 0   vs   {X = 0} UNION {X > 0}\n");
  std::printf("    contained in the union:     %s\n",
              CqacContainedInUnion(q, covers) ? "yes" : "no");
  std::printf("    contained in either alone:  %s / %s\n",
              CqacContained(q, covers.disjuncts()[0]) ? "yes" : "no",
              CqacContained(q, covers.disjuncts()[1]) ? "yes" : "no");
  std::printf("    union equivalent to query:  %s\n",
              UnionCqacEquivalent(cqac::UnionQuery({q}), covers) ? "yes"
                                                                 : "no");
  return 0;
}
