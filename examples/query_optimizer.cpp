// Query-optimizer scenario: answering a query from materialized views and
// proving, by evaluation on a concrete database, that the rewriting
// returns exactly the original answer.
//
// This is the paper's motivating use case ("in query optimization or
// maintenance of physical data independence we search for a solution that
// uses the views and is *equivalent* to the original query"), with the
// intro's price-style selections (price <= 100).
//
// Build & run:  ./build/examples/query_optimizer

#include <cstdio>

#include "engine/database.h"
#include "engine/evaluate.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/expansion.h"

namespace {

using cqac::Database;
using cqac::Parser;
using cqac::Rational;
using cqac::Relation;

/// Builds a small order/lineitem/price instance.
Database SampleDatabase() {
  Database db;
  // order(order_id, customer_id)
  db.Insert("order", {Rational(1), Rational(501)});
  db.Insert("order", {Rational(2), Rational(502)});
  db.Insert("order", {Rational(3), Rational(501)});
  // lineitem(order_id, part_id)
  db.Insert("lineitem", {Rational(1), Rational(10)});
  db.Insert("lineitem", {Rational(1), Rational(11)});
  db.Insert("lineitem", {Rational(2), Rational(12)});
  db.Insert("lineitem", {Rational(3), Rational(10)});
  db.Insert("lineitem", {Rational(3), Rational(13)});
  // price(part_id, value)
  db.Insert("price", {Rational(10), Rational(99)});
  db.Insert("price", {Rational(11), Rational(100)});
  db.Insert("price", {Rational(12), Rational(150)});
  db.Insert("price", {Rational(13), Rational(25, 2)});  // 12.5
  return db;
}

/// Evaluates the views on the base data, producing the database the
/// rewriting actually runs against (the "materialized" instance).
Database Materialize(const cqac::ViewSet& views, const Database& base) {
  Database materialized;
  for (const cqac::ConjunctiveQuery& view : views.views()) {
    const Relation result = Evaluate(view, base);
    for (const cqac::Tuple& t : result.tuples()) {
      materialized.Insert(view.name(), t);
    }
  }
  return materialized;
}

}  // namespace

int main() {
  // "Parts on some order whose price is at most 100."
  const cqac::ConjunctiveQuery query = Parser::MustParseRule(
      "q(O,P) :- order(O,C), lineitem(O,P), price(P,V), V <= 100");

  // The warehouse maintains three materialized views.
  const cqac::ViewSet views(Parser::MustParseProgram(
      "cheap(P) :- price(P,V), V <= 100.\n"
      "orders(O,P) :- order(O,C), lineitem(O,P).\n"
      "expensive(P) :- price(P,V), V > 100."));

  std::printf("query:  %s\n", query.ToString().c_str());
  for (const cqac::ConjunctiveQuery& v : views.views()) {
    std::printf("view:   %s\n", v.ToString().c_str());
  }

  cqac::RewriteOptions options;
  options.verify = true;
  options.minimize_output = true;
  options.coalesce_output = true;
  const cqac::RewriteResult result =
      cqac::EquivalentRewriter(query, views, options).Run();
  if (result.outcome != cqac::RewriteOutcome::kRewritingFound) {
    std::printf("unexpected: no rewriting (%s)\n",
                result.failure_reason.c_str());
    return 1;
  }
  std::printf("\nrewriting over the views (verified=%s):\n",
              result.verified ? "yes" : "NO");
  for (const cqac::ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    std::printf("  %s\n", d.ToString().c_str());
  }

  // Execute both plans.
  const Database base = SampleDatabase();
  const Database materialized = Materialize(views, base);

  const Relation direct = Evaluate(query, base);
  const Relation via_views = Evaluate(result.rewriting, materialized);

  std::printf("\ndirect answer     : %s\n", direct.ToString().c_str());
  std::printf("answer from views : %s\n", via_views.ToString().c_str());
  if (direct == via_views) {
    std::printf("answers agree: the rewriting is a drop-in plan.\n");
    return 0;
  }
  std::printf("ANSWERS DIFFER: rewriting is not equivalent!\n");
  return 1;
}
