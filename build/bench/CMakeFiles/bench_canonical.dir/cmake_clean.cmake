file(REMOVE_RECURSE
  "CMakeFiles/bench_canonical.dir/bench_canonical.cc.o"
  "CMakeFiles/bench_canonical.dir/bench_canonical.cc.o.d"
  "bench_canonical"
  "bench_canonical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
