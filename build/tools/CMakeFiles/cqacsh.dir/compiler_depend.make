# Empty compiler generated dependencies file for cqacsh.
# This may be replaced when dependencies are built.
