file(REMOVE_RECURSE
  "CMakeFiles/cqacsh.dir/cqacsh.cc.o"
  "CMakeFiles/cqacsh.dir/cqacsh.cc.o.d"
  "cqacsh"
  "cqacsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqacsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
