# Empty compiler generated dependencies file for contained_rewriter_test.
# This may be replaced when dependencies are built.
