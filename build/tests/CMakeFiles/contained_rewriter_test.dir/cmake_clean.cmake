file(REMOVE_RECURSE
  "CMakeFiles/contained_rewriter_test.dir/contained_rewriter_test.cc.o"
  "CMakeFiles/contained_rewriter_test.dir/contained_rewriter_test.cc.o.d"
  "contained_rewriter_test"
  "contained_rewriter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contained_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
