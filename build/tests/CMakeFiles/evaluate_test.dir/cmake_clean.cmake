file(REMOVE_RECURSE
  "CMakeFiles/evaluate_test.dir/evaluate_test.cc.o"
  "CMakeFiles/evaluate_test.dir/evaluate_test.cc.o.d"
  "evaluate_test"
  "evaluate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
