# Empty dependencies file for ac_solver_test.
# This may be replaced when dependencies are built.
