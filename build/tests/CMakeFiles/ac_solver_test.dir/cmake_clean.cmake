file(REMOVE_RECURSE
  "CMakeFiles/ac_solver_test.dir/ac_solver_test.cc.o"
  "CMakeFiles/ac_solver_test.dir/ac_solver_test.cc.o.d"
  "ac_solver_test"
  "ac_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
