# Empty compiler generated dependencies file for exportable_test.
# This may be replaced when dependencies are built.
