file(REMOVE_RECURSE
  "CMakeFiles/exportable_test.dir/exportable_test.cc.o"
  "CMakeFiles/exportable_test.dir/exportable_test.cc.o.d"
  "exportable_test"
  "exportable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exportable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
