# Empty dependencies file for view_set_test.
# This may be replaced when dependencies are built.
