file(REMOVE_RECURSE
  "CMakeFiles/view_set_test.dir/view_set_test.cc.o"
  "CMakeFiles/view_set_test.dir/view_set_test.cc.o.d"
  "view_set_test"
  "view_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
