# Empty dependencies file for cqac_containment_test.
# This may be replaced when dependencies are built.
