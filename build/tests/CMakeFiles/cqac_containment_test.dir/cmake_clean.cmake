file(REMOVE_RECURSE
  "CMakeFiles/cqac_containment_test.dir/cqac_containment_test.cc.o"
  "CMakeFiles/cqac_containment_test.dir/cqac_containment_test.cc.o.d"
  "cqac_containment_test"
  "cqac_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqac_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
