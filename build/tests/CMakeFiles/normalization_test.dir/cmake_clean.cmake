file(REMOVE_RECURSE
  "CMakeFiles/normalization_test.dir/normalization_test.cc.o"
  "CMakeFiles/normalization_test.dir/normalization_test.cc.o.d"
  "normalization_test"
  "normalization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normalization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
