file(REMOVE_RECURSE
  "CMakeFiles/cq_containment_test.dir/cq_containment_test.cc.o"
  "CMakeFiles/cq_containment_test.dir/cq_containment_test.cc.o.d"
  "cq_containment_test"
  "cq_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
