# Empty dependencies file for orders_test.
# This may be replaced when dependencies are built.
