file(REMOVE_RECURSE
  "CMakeFiles/view_tuples_test.dir/view_tuples_test.cc.o"
  "CMakeFiles/view_tuples_test.dir/view_tuples_test.cc.o.d"
  "view_tuples_test"
  "view_tuples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_tuples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
