# Empty compiler generated dependencies file for view_tuples_test.
# This may be replaced when dependencies are built.
