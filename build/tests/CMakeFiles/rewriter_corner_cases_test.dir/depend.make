# Empty dependencies file for rewriter_corner_cases_test.
# This may be replaced when dependencies are built.
