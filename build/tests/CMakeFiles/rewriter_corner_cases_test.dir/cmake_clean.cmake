file(REMOVE_RECURSE
  "CMakeFiles/rewriter_corner_cases_test.dir/rewriter_corner_cases_test.cc.o"
  "CMakeFiles/rewriter_corner_cases_test.dir/rewriter_corner_cases_test.cc.o.d"
  "rewriter_corner_cases_test"
  "rewriter_corner_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriter_corner_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
