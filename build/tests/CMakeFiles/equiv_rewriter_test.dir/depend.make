# Empty dependencies file for equiv_rewriter_test.
# This may be replaced when dependencies are built.
