file(REMOVE_RECURSE
  "CMakeFiles/equiv_rewriter_test.dir/equiv_rewriter_test.cc.o"
  "CMakeFiles/equiv_rewriter_test.dir/equiv_rewriter_test.cc.o.d"
  "equiv_rewriter_test"
  "equiv_rewriter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equiv_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
