# Empty compiler generated dependencies file for cqac.
# This may be replaced when dependencies are built.
