file(REMOVE_RECURSE
  "libcqac.a"
)
