
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/atom.cc" "src/CMakeFiles/cqac.dir/ast/atom.cc.o" "gcc" "src/CMakeFiles/cqac.dir/ast/atom.cc.o.d"
  "/root/repo/src/ast/comparison.cc" "src/CMakeFiles/cqac.dir/ast/comparison.cc.o" "gcc" "src/CMakeFiles/cqac.dir/ast/comparison.cc.o.d"
  "/root/repo/src/ast/hypergraph.cc" "src/CMakeFiles/cqac.dir/ast/hypergraph.cc.o" "gcc" "src/CMakeFiles/cqac.dir/ast/hypergraph.cc.o.d"
  "/root/repo/src/ast/query.cc" "src/CMakeFiles/cqac.dir/ast/query.cc.o" "gcc" "src/CMakeFiles/cqac.dir/ast/query.cc.o.d"
  "/root/repo/src/ast/substitution.cc" "src/CMakeFiles/cqac.dir/ast/substitution.cc.o" "gcc" "src/CMakeFiles/cqac.dir/ast/substitution.cc.o.d"
  "/root/repo/src/ast/term.cc" "src/CMakeFiles/cqac.dir/ast/term.cc.o" "gcc" "src/CMakeFiles/cqac.dir/ast/term.cc.o.d"
  "/root/repo/src/ast/value.cc" "src/CMakeFiles/cqac.dir/ast/value.cc.o" "gcc" "src/CMakeFiles/cqac.dir/ast/value.cc.o.d"
  "/root/repo/src/cli/shell.cc" "src/CMakeFiles/cqac.dir/cli/shell.cc.o" "gcc" "src/CMakeFiles/cqac.dir/cli/shell.cc.o.d"
  "/root/repo/src/constraints/ac_solver.cc" "src/CMakeFiles/cqac.dir/constraints/ac_solver.cc.o" "gcc" "src/CMakeFiles/cqac.dir/constraints/ac_solver.cc.o.d"
  "/root/repo/src/constraints/inequality_graph.cc" "src/CMakeFiles/cqac.dir/constraints/inequality_graph.cc.o" "gcc" "src/CMakeFiles/cqac.dir/constraints/inequality_graph.cc.o.d"
  "/root/repo/src/constraints/orders.cc" "src/CMakeFiles/cqac.dir/constraints/orders.cc.o" "gcc" "src/CMakeFiles/cqac.dir/constraints/orders.cc.o.d"
  "/root/repo/src/containment/cq_containment.cc" "src/CMakeFiles/cqac.dir/containment/cq_containment.cc.o" "gcc" "src/CMakeFiles/cqac.dir/containment/cq_containment.cc.o.d"
  "/root/repo/src/containment/cqac_containment.cc" "src/CMakeFiles/cqac.dir/containment/cqac_containment.cc.o" "gcc" "src/CMakeFiles/cqac.dir/containment/cqac_containment.cc.o.d"
  "/root/repo/src/containment/homomorphism.cc" "src/CMakeFiles/cqac.dir/containment/homomorphism.cc.o" "gcc" "src/CMakeFiles/cqac.dir/containment/homomorphism.cc.o.d"
  "/root/repo/src/containment/normalization.cc" "src/CMakeFiles/cqac.dir/containment/normalization.cc.o" "gcc" "src/CMakeFiles/cqac.dir/containment/normalization.cc.o.d"
  "/root/repo/src/engine/canonical.cc" "src/CMakeFiles/cqac.dir/engine/canonical.cc.o" "gcc" "src/CMakeFiles/cqac.dir/engine/canonical.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/cqac.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/cqac.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/evaluate.cc" "src/CMakeFiles/cqac.dir/engine/evaluate.cc.o" "gcc" "src/CMakeFiles/cqac.dir/engine/evaluate.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/cqac.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/cqac.dir/parser/parser.cc.o.d"
  "/root/repo/src/rewriting/bucket.cc" "src/CMakeFiles/cqac.dir/rewriting/bucket.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/bucket.cc.o.d"
  "/root/repo/src/rewriting/coalesce.cc" "src/CMakeFiles/cqac.dir/rewriting/coalesce.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/coalesce.cc.o.d"
  "/root/repo/src/rewriting/contained_rewriter.cc" "src/CMakeFiles/cqac.dir/rewriting/contained_rewriter.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/contained_rewriter.cc.o.d"
  "/root/repo/src/rewriting/enumeration.cc" "src/CMakeFiles/cqac.dir/rewriting/enumeration.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/enumeration.cc.o.d"
  "/root/repo/src/rewriting/equiv_rewriter.cc" "src/CMakeFiles/cqac.dir/rewriting/equiv_rewriter.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/equiv_rewriter.cc.o.d"
  "/root/repo/src/rewriting/expansion.cc" "src/CMakeFiles/cqac.dir/rewriting/expansion.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/expansion.cc.o.d"
  "/root/repo/src/rewriting/explain.cc" "src/CMakeFiles/cqac.dir/rewriting/explain.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/explain.cc.o.d"
  "/root/repo/src/rewriting/exportable.cc" "src/CMakeFiles/cqac.dir/rewriting/exportable.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/exportable.cc.o.d"
  "/root/repo/src/rewriting/inverse_rules.cc" "src/CMakeFiles/cqac.dir/rewriting/inverse_rules.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/inverse_rules.cc.o.d"
  "/root/repo/src/rewriting/minicon.cc" "src/CMakeFiles/cqac.dir/rewriting/minicon.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/minicon.cc.o.d"
  "/root/repo/src/rewriting/view_tuples.cc" "src/CMakeFiles/cqac.dir/rewriting/view_tuples.cc.o" "gcc" "src/CMakeFiles/cqac.dir/rewriting/view_tuples.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/cqac.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/cqac.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
