# Empty dependencies file for cqac.
# This may be replaced when dependencies are built.
