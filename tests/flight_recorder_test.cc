#include "obs/flight_recorder.h"

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"

namespace cqac {
namespace {

// Every test resets the recorder (and re-enables it) so rings filled by
// earlier tests in this binary do not leak into assertions.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetFlightRecorderForTest();
    obs::EnableFlightRecorder(true);
  }
  void TearDown() override {
    obs::ResetFlightRecorderForTest();
    obs::EnableFlightRecorder(true);
  }
};

// --------------------------------------------------------------- TraceId

TEST_F(FlightRecorderTest, GeneratedIdsAreNonZeroAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const obs::TraceId id = obs::GenerateTraceId();
    EXPECT_FALSE(id.IsZero());
    seen.insert(obs::TraceIdHex(id));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST_F(FlightRecorderTest, TraceIdHexRoundTrips) {
  const obs::TraceId id = obs::GenerateTraceId();
  const std::string hex = obs::TraceIdHex(id);
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
  obs::TraceId parsed;
  ASSERT_TRUE(obs::ParseTraceIdHex(hex, &parsed));
  EXPECT_EQ(parsed, id);
}

TEST_F(FlightRecorderTest, ParseTraceIdHexRejectsMalformedInput) {
  obs::TraceId out;
  EXPECT_FALSE(obs::ParseTraceIdHex("", &out));
  EXPECT_FALSE(obs::ParseTraceIdHex("abc", &out));
  EXPECT_FALSE(obs::ParseTraceIdHex(std::string(31, 'a'), &out));
  EXPECT_FALSE(obs::ParseTraceIdHex(std::string(33, 'a'), &out));
  EXPECT_FALSE(
      obs::ParseTraceIdHex("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", &out));
  // Upper-case is accepted and folds to the same id as lower-case.
  obs::TraceId upper, lower;
  ASSERT_TRUE(
      obs::ParseTraceIdHex("0123456789ABCDEF0123456789ABCDEF", &upper));
  ASSERT_TRUE(
      obs::ParseTraceIdHex("0123456789abcdef0123456789abcdef", &lower));
  EXPECT_EQ(upper, lower);
}

TEST_F(FlightRecorderTest, RequestScopeBindsAndRestores) {
  EXPECT_TRUE(obs::CurrentTraceId().IsZero());
  const obs::TraceId outer = obs::GenerateTraceId();
  {
    obs::RequestScope scope(outer);
    EXPECT_EQ(obs::CurrentTraceId(), outer);
    const obs::TraceId inner = obs::GenerateTraceId();
    {
      obs::RequestScope nested(inner);
      EXPECT_EQ(obs::CurrentTraceId(), inner);
    }
    EXPECT_EQ(obs::CurrentTraceId(), outer);
  }
  EXPECT_TRUE(obs::CurrentTraceId().IsZero());
}

// ---------------------------------------------------------- recording

TEST_F(FlightRecorderTest, RecordsSpansUnderABoundScope) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  const obs::TraceId id = obs::GenerateTraceId();
  {
    obs::RequestScope scope(id);
    CQAC_TRACE_SPAN("flight.test_span");
  }
  const obs::FlightExcerpt excerpt = obs::CollectFlightEvents(id);
  ASSERT_EQ(excerpt.events.size(), 1u);
  EXPECT_STREQ(excerpt.events[0].name, "flight.test_span");
  EXPECT_EQ(excerpt.events[0].trace, id);
  EXPECT_GT(excerpt.events[0].start_ns, 0);
  EXPECT_GE(excerpt.events[0].dur_ns, 0);
  EXPECT_EQ(excerpt.overwritten, 0);
}

TEST_F(FlightRecorderTest, UnboundThreadRecordsNothing) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  ASSERT_TRUE(obs::CurrentTraceId().IsZero());
  { CQAC_TRACE_SPAN("flight.unbound"); }
  const obs::FlightExcerpt all = obs::CollectFlightEvents(obs::TraceId{});
  EXPECT_TRUE(all.events.empty());
}

TEST_F(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  obs::EnableFlightRecorder(false);
  EXPECT_FALSE(obs::FlightRecorderActive());
  const obs::TraceId id = obs::GenerateTraceId();
  {
    obs::RequestScope scope(id);
    CQAC_TRACE_SPAN("flight.disabled");
  }
  EXPECT_TRUE(obs::CollectFlightEvents(obs::TraceId{}).events.empty());
}

TEST_F(FlightRecorderTest, FilterSelectsOneTraceZeroSelectsAll) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  const obs::TraceId a = obs::GenerateTraceId();
  const obs::TraceId b = obs::GenerateTraceId();
  {
    obs::RequestScope scope(a);
    CQAC_TRACE_SPAN("flight.a");
  }
  {
    obs::RequestScope scope(b);
    CQAC_TRACE_SPAN("flight.b");
  }
  const obs::FlightExcerpt only_a = obs::CollectFlightEvents(a);
  ASSERT_EQ(only_a.events.size(), 1u);
  EXPECT_EQ(only_a.events[0].trace, a);
  EXPECT_EQ(obs::CollectFlightEvents(obs::TraceId{}).events.size(), 2u);
}

TEST_F(FlightRecorderTest, ExcerptIsSortedByStartTime) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  const obs::TraceId id = obs::GenerateTraceId();
  {
    obs::RequestScope scope(id);
    for (int i = 0; i < 100; ++i) {
      CQAC_TRACE_SPAN("flight.ordered");
    }
  }
  const obs::FlightExcerpt excerpt = obs::CollectFlightEvents(id);
  ASSERT_EQ(excerpt.events.size(), 100u);
  for (size_t i = 1; i < excerpt.events.size(); ++i) {
    EXPECT_LE(excerpt.events[i - 1].start_ns, excerpt.events[i].start_ns);
  }
}

TEST_F(FlightRecorderTest, RingOverwritesOldestAndCountsOverwrites) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  const obs::TraceId id = obs::GenerateTraceId();
  const int64_t extra = 100;
  {
    obs::RequestScope scope(id);
    for (int64_t i = 0; i < obs::kFlightRingCapacity + extra; ++i) {
      CQAC_TRACE_SPAN("flight.overflow");
    }
  }
  const obs::FlightExcerpt excerpt = obs::CollectFlightEvents(id);
  // Head+tail retention: the request's first kFlightHeadPerTrace events
  // survive in the head region, the newest kFlightRingCapacity in the
  // main ring; everything in between was overwritten and counted.
  const int64_t overwritten = extra - obs::kFlightHeadPerTrace;
  EXPECT_EQ(excerpt.events.size(),
            static_cast<size_t>(obs::kFlightRingCapacity +
                                obs::kFlightHeadPerTrace));
  EXPECT_EQ(excerpt.overwritten, overwritten);
  // The overwrite count is also exported through the registry.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.gauge("flight.overwritten_events").value(), overwritten);
}

TEST_F(FlightRecorderTest, ThreadsRecordIntoPrivateRings) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<obs::TraceId> ids(kThreads);
  for (obs::TraceId& id : ids) id = obs::GenerateTraceId();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::RequestScope scope(ids[t]);
      for (int i = 0; i < kSpansPerThread; ++i) {
        CQAC_TRACE_SPAN("flight.mt");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(obs::CollectFlightEvents(ids[t]).events.size(),
              static_cast<size_t>(kSpansPerThread));
  }
  EXPECT_EQ(obs::CollectFlightEvents(obs::TraceId{}).events.size(),
            static_cast<size_t>(kThreads * kSpansPerThread));
}

// The tsan-interesting case: collection races recording.  The collector
// must never crash, return torn events, or block the recorders.
TEST_F(FlightRecorderTest, CollectionRacesRecordingSafely) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  std::atomic<bool> stop{false};
  const obs::TraceId id = obs::GenerateTraceId();
  std::thread recorder([&] {
    obs::RequestScope scope(id);
    while (!stop.load(std::memory_order_relaxed)) {
      CQAC_TRACE_SPAN("flight.race");
    }
  });
  for (int i = 0; i < 50; ++i) {
    const obs::FlightExcerpt excerpt =
        obs::CollectFlightEvents(obs::TraceId{});
    for (const obs::FlightEvent& event : excerpt.events) {
      // A torn slot would surface as a null name or a foreign trace id.
      ASSERT_NE(event.name, nullptr);
      ASSERT_EQ(event.trace, id);
    }
  }
  stop.store(true);
  recorder.join();
}

TEST_F(FlightRecorderTest, CompiledOutBuildRecordsNothing) {
  if (obs::TracingCompiledIn()) {
    GTEST_SKIP() << "span sites compiled in; covered by the tests above";
  }
  const obs::TraceId id = obs::GenerateTraceId();
  {
    obs::RequestScope scope(id);
    CQAC_TRACE_SPAN("flight.compiled_out");
  }
  EXPECT_TRUE(obs::CollectFlightEvents(obs::TraceId{}).events.empty());
}

}  // namespace
}  // namespace cqac
