#include "engine/evaluate.h"

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

Database MakeChainDb() {
  // a: 1->2->3->4 edges.
  Database db;
  db.Insert("a", {Rational(1), Rational(2)});
  db.Insert("a", {Rational(2), Rational(3)});
  db.Insert("a", {Rational(3), Rational(4)});
  return db;
}

TEST(EvaluateTest, SingleAtomProjection) {
  const Database db = MakeChainDb();
  const Relation result =
      Evaluate(Parser::MustParseRule("q(X) :- a(X,Y)"), db);
  EXPECT_EQ(result.size(), 3);
  EXPECT_TRUE(result.Contains({Rational(1)}));
  EXPECT_TRUE(result.Contains({Rational(3)}));
  EXPECT_FALSE(result.Contains({Rational(4)}));
}

TEST(EvaluateTest, JoinTwoAtoms) {
  const Database db = MakeChainDb();
  const Relation result =
      Evaluate(Parser::MustParseRule("q(X,Z) :- a(X,Y), a(Y,Z)"), db);
  EXPECT_EQ(result.size(), 2);
  EXPECT_TRUE(result.Contains({Rational(1), Rational(3)}));
  EXPECT_TRUE(result.Contains({Rational(2), Rational(4)}));
}

TEST(EvaluateTest, ConstantInBodyFilters) {
  const Database db = MakeChainDb();
  const Relation result =
      Evaluate(Parser::MustParseRule("q(Y) :- a(2,Y)"), db);
  EXPECT_EQ(result.size(), 1);
  EXPECT_TRUE(result.Contains({Rational(3)}));
}

TEST(EvaluateTest, ConstantInHeadEmitted) {
  const Database db = MakeChainDb();
  const Relation result =
      Evaluate(Parser::MustParseRule("q(9,X) :- a(X,2)"), db);
  EXPECT_TRUE(result.Contains({Rational(9), Rational(1)}));
}

TEST(EvaluateTest, RepeatedVariableInAtom) {
  Database db;
  db.Insert("a", {Rational(1), Rational(1)});
  db.Insert("a", {Rational(1), Rational(2)});
  const Relation result =
      Evaluate(Parser::MustParseRule("q(X) :- a(X,X)"), db);
  EXPECT_EQ(result.size(), 1);
  EXPECT_TRUE(result.Contains({Rational(1)}));
}

TEST(EvaluateTest, ComparisonFiltersResults) {
  const Database db = MakeChainDb();
  const Relation result =
      Evaluate(Parser::MustParseRule("q(X) :- a(X,Y), X < 3"), db);
  EXPECT_EQ(result.size(), 2);
  EXPECT_FALSE(result.Contains({Rational(3)}));
}

TEST(EvaluateTest, ComparisonBetweenVariables) {
  Database db;
  db.Insert("p", {Rational(1), Rational(5)});
  db.Insert("p", {Rational(5), Rational(1)});
  const Relation result =
      Evaluate(Parser::MustParseRule("q(X,Y) :- p(X,Y), X < Y"), db);
  EXPECT_EQ(result.size(), 1);
  EXPECT_TRUE(result.Contains({Rational(1), Rational(5)}));
}

TEST(EvaluateTest, ConstantOnlyComparisonTrue) {
  const Database db = MakeChainDb();
  EXPECT_EQ(Evaluate(Parser::MustParseRule("q(X) :- a(X,Y), 1 < 2"), db).size(),
            3);
}

TEST(EvaluateTest, ConstantOnlyComparisonFalse) {
  const Database db = MakeChainDb();
  EXPECT_TRUE(
      Evaluate(Parser::MustParseRule("q(X) :- a(X,Y), 2 < 1"), db).empty());
}

TEST(EvaluateTest, BooleanQueryTrue) {
  const Database db = MakeChainDb();
  const Relation result =
      Evaluate(Parser::MustParseRule("q() :- a(X,Y), X < Y"), db);
  EXPECT_EQ(result.size(), 1);
  EXPECT_TRUE(result.Contains({}));
}

TEST(EvaluateTest, BooleanQueryFalse) {
  const Database db = MakeChainDb();
  EXPECT_TRUE(
      Evaluate(Parser::MustParseRule("q() :- a(X,X)"), db).empty());
}

TEST(EvaluateTest, EmptyDatabaseYieldsNothing) {
  Database db;
  EXPECT_TRUE(Evaluate(Parser::MustParseRule("q(X) :- a(X,Y)"), db).empty());
}

TEST(EvaluateTest, RationalValuesCompareExactly) {
  Database db;
  db.Insert("p", {Rational(1, 3)});
  db.Insert("p", {Rational(1, 2)});
  const Relation result =
      Evaluate(Parser::MustParseRule("q(X) :- p(X), X < 0.4"), db);
  EXPECT_EQ(result.size(), 1);
  EXPECT_TRUE(result.Contains({Rational(1, 3)}));
}

TEST(EvaluateTest, UnsafeComparisonVariableYieldsNothing) {
  const Database db = MakeChainDb();
  EXPECT_TRUE(
      Evaluate(Parser::MustParseRule("q(X) :- a(X,Y), W < 3"), db).empty());
}

TEST(EvaluateTest, UnionEvaluation) {
  const Database db = MakeChainDb();
  const UnionQuery u = Parser::MustParseUnion(
      "q(X) :- a(X, 2).\n"
      "q(X) :- a(3, X).");
  const Relation result = Evaluate(u, db);
  EXPECT_EQ(result.size(), 2);
  EXPECT_TRUE(result.Contains({Rational(1)}));
  EXPECT_TRUE(result.Contains({Rational(4)}));
}

TEST(EvaluateTest, ComputesTupleFindsTarget) {
  const Database db = MakeChainDb();
  const ConjunctiveQuery q = Parser::MustParseRule("q(X,Z) :- a(X,Y), a(Y,Z)");
  EXPECT_TRUE(ComputesTuple(q, db, {Rational(1), Rational(3)}));
  EXPECT_FALSE(ComputesTuple(q, db, {Rational(1), Rational(4)}));
}

TEST(EvaluateTest, ComputesTupleArityMismatch) {
  const Database db = MakeChainDb();
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  EXPECT_FALSE(ComputesTuple(q, db, {Rational(1), Rational(2)}));
}

TEST(EvaluateTest, ComputesTupleOnUnion) {
  const Database db = MakeChainDb();
  const UnionQuery u = Parser::MustParseUnion(
      "q(X) :- a(X, 2).\n"
      "q(X) :- a(3, X).");
  EXPECT_TRUE(ComputesTuple(u, db, {Rational(4)}));
  EXPECT_FALSE(ComputesTuple(u, db, {Rational(2)}));
}

TEST(EvaluateTest, SelfJoinTriangle) {
  Database db;
  db.Insert("e", {Rational(1), Rational(2)});
  db.Insert("e", {Rational(2), Rational(3)});
  db.Insert("e", {Rational(3), Rational(1)});
  const ConjunctiveQuery triangle =
      Parser::MustParseRule("q() :- e(X,Y), e(Y,Z), e(Z,X)");
  EXPECT_FALSE(Evaluate(triangle, db).empty());
  Database no_triangle;
  no_triangle.Insert("e", {Rational(1), Rational(2)});
  no_triangle.Insert("e", {Rational(2), Rational(3)});
  EXPECT_TRUE(Evaluate(triangle, no_triangle).empty());
}

TEST(EvaluateTest, DuplicateSubgoalsHarmless) {
  const Database db = MakeChainDb();
  const Relation once = Evaluate(Parser::MustParseRule("q(X) :- a(X,Y)"), db);
  const Relation twice =
      Evaluate(Parser::MustParseRule("q(X) :- a(X,Y), a(X,Y)"), db);
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace cqac
