#include "engine/canonical.h"

#include "constraints/ac_solver.h"
#include "engine/evaluate.h"
#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(CanonicalTest, FreezeDistinctGivesDistinctValues) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y), b(Y,Z)");
  const CanonicalDatabase cdb = FreezeQueryDistinct(q);
  EXPECT_EQ(cdb.assignment.size(), 3u);
  EXPECT_NE(cdb.assignment.at("X"), cdb.assignment.at("Y"));
  EXPECT_NE(cdb.assignment.at("Y"), cdb.assignment.at("Z"));
  EXPECT_EQ(cdb.db.Get("a").size(), 1);
  EXPECT_EQ(cdb.db.Get("b").size(), 1);
}

TEST(CanonicalTest, FreezeDistinctValuesAvoidConstants) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,7), X < 9");
  const CanonicalDatabase cdb = FreezeQueryDistinct(q);
  EXPECT_GT(cdb.assignment.at("X"), Rational(9));
}

TEST(CanonicalTest, FrozenHeadMatchesAssignment) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X,3) :- a(X,Y)");
  const CanonicalDatabase cdb = FreezeQueryDistinct(q);
  ASSERT_EQ(cdb.frozen_head.size(), 2u);
  EXPECT_EQ(cdb.frozen_head[0], cdb.assignment.at("X"));
  EXPECT_EQ(cdb.frozen_head[1], Rational(3));
}

TEST(CanonicalTest, QueryComputesItsOwnFrozenHead) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X,Y), b(Y,Z)");
  const CanonicalDatabase cdb = FreezeQueryDistinct(q);
  EXPECT_TRUE(ComputesTuple(q, cdb.db, cdb.frozen_head));
}

TEST(CanonicalTest, UnfreezeRoundTrip) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  const CanonicalDatabase cdb = FreezeQueryDistinct(q);
  EXPECT_EQ(cdb.Unfreeze(cdb.assignment.at("X")), Term::Variable("X"));
  EXPECT_EQ(cdb.Unfreeze(cdb.assignment.at("Y")), Term::Variable("Y"));
  // Unknown values unfreeze to themselves.
  EXPECT_EQ(cdb.Unfreeze(Rational(1000)), Term::Constant(1000));
}

TEST(CanonicalTest, UnfreezeAtom) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  const CanonicalDatabase cdb = FreezeQueryDistinct(q);
  const Atom ground("v", {Term::Constant(cdb.assignment.at("Y")),
                          Term::Constant(cdb.assignment.at("X"))});
  EXPECT_EQ(cdb.UnfreezeAtom(ground).ToString(), "v(Y,X)");
}

TEST(CanonicalTest, FreezeUnderOrderMergesBlockVariables) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  // Find the order X = Y (one block, no constants).
  const auto orders = EnumerateTotalOrders({"X", "Y"}, {});
  for (const TotalOrder& order : orders) {
    if (order.ToString() != "X = Y") continue;
    const CanonicalDatabase cdb = FreezeQuery(q, order);
    EXPECT_EQ(cdb.assignment.at("X"), cdb.assignment.at("Y"));
    // The single a-fact has both positions equal.
    const Tuple expected = {cdb.assignment.at("X"), cdb.assignment.at("X")};
    EXPECT_TRUE(cdb.db.Get("a").Contains(expected));
    // Unfreezing yields the block representative X.
    EXPECT_EQ(cdb.Unfreeze(cdb.assignment.at("Y")), Term::Variable("X"));
    return;
  }
  FAIL() << "order X = Y not enumerated";
}

TEST(CanonicalTest, FreezeUnderOrderWithConstantBlock) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X)");
  const auto orders = EnumerateTotalOrders({"X"}, {Rational(8)});
  for (const TotalOrder& order : orders) {
    const CanonicalDatabase cdb = FreezeQuery(q, order);
    if (order.ToString() == "X = 8") {
      EXPECT_EQ(cdb.assignment.at("X"), Rational(8));
      EXPECT_EQ(cdb.Unfreeze(Rational(8)), Term::Constant(8));
    } else if (order.ToString() == "X < 8") {
      EXPECT_LT(cdb.assignment.at("X"), Rational(8));
    } else {
      EXPECT_GT(cdb.assignment.at("X"), Rational(8));
    }
  }
}

// Paper Example 5: the canonical databases of
// Q: q(A) :- r(A), s(A,A), A <= 8 with the view constant set {8} are
// D1 = {r(a), s(a,a)} with a<8, D2 with a=8, D3 with a>8; only D1 and D2
// satisfy the comparison.
TEST(CanonicalTest, PaperExample5CanonicalDatabases) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(A) :- r(A), s(A,A), A <= 8");
  const auto orders = EnumerateTotalOrders(q.AllVariables(), {Rational(8)});
  ASSERT_EQ(orders.size(), 3u);
  int satisfying = 0;
  for (const TotalOrder& order : orders) {
    const CanonicalDatabase cdb = FreezeQuery(q, order);
    EXPECT_EQ(cdb.db.Get("r").size(), 1);
    EXPECT_EQ(cdb.db.Get("s").size(), 1);
    if (AcSolver::SatisfiedBy(q.comparisons(), cdb.assignment)) ++satisfying;
  }
  EXPECT_EQ(satisfying, 2);
}

}  // namespace
}  // namespace cqac
