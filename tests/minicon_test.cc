#include "rewriting/minicon.h"

#include <algorithm>

#include "containment/cq_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/expansion.h"
#include "rewriting/exportable.h"
#include "rewriting/view_set.h"

namespace cqac {
namespace {

std::vector<ConjunctiveQuery> Rules(const std::string& program) {
  return Parser::MustParseProgram(program);
}

bool HasTuple(const std::vector<Mcd>& mcds, const std::string& tuple) {
  return std::any_of(mcds.begin(), mcds.end(), [&tuple](const Mcd& m) {
    return m.view_tuple.ToString() == tuple;
  });
}

TEST(MiniConTest, SimpleFullCover) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X,Y) :- a(X,Y)");
  const auto mcds = FormMcds(q, Rules("v(T,U) :- a(T,U)"));
  ASSERT_EQ(mcds.size(), 1u);
  EXPECT_EQ(mcds[0].view_tuple.ToString(), "v(X,Y)");
  EXPECT_EQ(mcds[0].covered, (std::vector<int>{0}));
  EXPECT_TRUE(McdCombinationExists(mcds, 1));
}

TEST(MiniConTest, HeadVariableCannotMapToExistential) {
  // X is distinguished in the query but the view projects it away.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  const auto mcds = FormMcds(q, Rules("v(U) :- a(T,U)"));
  EXPECT_TRUE(mcds.empty());
}

TEST(MiniConTest, ExistentialQueryVariableMayMapToExistential) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  const auto mcds = FormMcds(q, Rules("v(T) :- a(T,U)"));
  ASSERT_EQ(mcds.size(), 1u);
  EXPECT_EQ(mcds[0].view_tuple.ToString(), "v(X)");
}

TEST(MiniConTest, SharedVariablePropertyPullsInSubgoals) {
  // Y maps to the view's existential W, so both query subgoals touching Y
  // must be covered by the same MCD.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X,Z) :- a(X,Y), b(Y,Z)");
  const auto mcds = FormMcds(q, Rules("v(T,U) :- a(T,W), b(W,U)"));
  ASSERT_EQ(mcds.size(), 1u);
  EXPECT_EQ(mcds[0].covered, (std::vector<int>{0, 1}));
  EXPECT_EQ(mcds[0].view_tuple.ToString(), "v(X,Z)");
}

TEST(MiniConTest, SharedVariablePropertyFailsWhenViewTooSmall) {
  // Y must stay joinable but v only covers the a-subgoal.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X,Z) :- a(X,Y), b(Y,Z)");
  const auto mcds = FormMcds(q, Rules("v(T) :- a(T,W)"));
  EXPECT_TRUE(mcds.empty());
}

TEST(MiniConTest, DistinguishedJoinVariableAllowsSplit) {
  // Y is exported by both views, so each subgoal can be covered alone.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X,Z) :- a(X,Y), b(Y,Z)");
  const auto mcds = FormMcds(q, Rules(
                                    "v1(T,W) :- a(T,W).\n"
                                    "v2(W,U) :- b(W,U)."));
  ASSERT_EQ(mcds.size(), 2u);
  EXPECT_TRUE(HasTuple(mcds, "v1(X,Y)"));
  EXPECT_TRUE(HasTuple(mcds, "v2(Y,Z)"));
  EXPECT_TRUE(McdCombinationExists(mcds, 2));
}

TEST(MiniConTest, PaperExample5VariantMcds) {
  // Q0: q(A) :- r(A), s(A,A); V0 includes the exported variant
  // v(Y,Y) :- r(Y), s(Y,Y).
  const ConjunctiveQuery q0 = Parser::MustParseRule("q(A) :- r(A), s(A,A)");
  const ConjunctiveQuery view = Parser::MustParseRule(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z");
  const auto mcds = FormMcds(q0, BuildV0Variants(view));
  EXPECT_TRUE(HasTuple(mcds, "v(A,A)"));
  EXPECT_TRUE(McdCombinationExists(
      mcds, static_cast<int>(q0.body().size())));
}

TEST(MiniConTest, LazyHeadHomomorphismFromRepeatedQueryVariable) {
  // s(A,A) forces the view's two head variables to be equated.
  const ConjunctiveQuery q = Parser::MustParseRule("q(A) :- s(A,A)");
  const auto mcds = FormMcds(q, Rules("v(Y,Z) :- s(Y,Z)"));
  ASSERT_EQ(mcds.size(), 1u);
  EXPECT_EQ(mcds[0].view_tuple.ToString(), "v(A,A)");
}

TEST(MiniConTest, QueryConstantPinsDistinguishedPosition) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,3)");
  const auto mcds = FormMcds(q, Rules("v(T,U) :- a(T,U)"));
  ASSERT_EQ(mcds.size(), 1u);
  EXPECT_EQ(mcds[0].view_tuple.ToString(), "v(X,3)");
}

TEST(MiniConTest, QueryConstantCannotReachExistential) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,3)");
  const auto mcds = FormMcds(q, Rules("v(T) :- a(T,U)"));
  EXPECT_TRUE(mcds.empty());
}

TEST(MiniConTest, ViewConstantMustMatchQueryConstant) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,3)");
  EXPECT_EQ(FormMcds(q, Rules("v(T) :- a(T,3)")).size(), 1u);
  EXPECT_TRUE(FormMcds(q, Rules("v(T) :- a(T,4)")).empty());
}

TEST(MiniConTest, FreshVariablesForUnreachedHeadPositions) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X)");
  const auto mcds = FormMcds(q, Rules("v(T,U) :- a(T), b(U)"));
  ASSERT_EQ(mcds.size(), 1u);
  const Atom& tuple = mcds[0].view_tuple;
  EXPECT_EQ(tuple.args()[0], Term::Variable("X"));
  EXPECT_TRUE(tuple.args()[1].IsVariable());
  EXPECT_EQ(tuple.args()[1].name().rfind("_f", 0), 0u);
}

TEST(MiniConTest, OneToOneSubgoalMapping) {
  // Two identical query subgoals need two distinct view subgoals under the
  // one-to-one restriction; a single-subgoal view covers each separately.
  const ConjunctiveQuery q =
      Parser::MustParseRule("q() :- a(X,Y), a(Y,Z)");
  const auto mcds = FormMcds(q, Rules("v(T,U) :- a(T,U)"));
  // a(X,Y) -> v(X,Y) and a(Y,Z) -> v(Y,Z); no MCD covers both (the view
  // has a single a-subgoal).
  ASSERT_EQ(mcds.size(), 2u);
  for (const Mcd& m : mcds) EXPECT_EQ(m.covered.size(), 1u);
  EXPECT_TRUE(McdCombinationExists(mcds, 2));
}

TEST(MiniConTest, CombinationRequiresDisjointCoverage) {
  Mcd a;
  a.view_tuple = Atom("v", {});
  a.covered = {0, 1};
  Mcd b;
  b.view_tuple = Atom("w", {});
  b.covered = {1, 2};
  EXPECT_FALSE(McdCombinationExists({a, b}, 3));
  Mcd c;
  c.view_tuple = Atom("u", {});
  c.covered = {2};
  EXPECT_TRUE(McdCombinationExists({a, c}, 3));
}

TEST(MiniConTest, CombinationEnumerationCount) {
  Mcd a;
  a.view_tuple = Atom("v", {});
  a.covered = {0};
  Mcd b = a;
  b.view_tuple = Atom("w", {});
  Mcd c;
  c.view_tuple = Atom("u", {});
  c.covered = {1};
  int count = 0;
  ForEachMcdCombination({a, b, c}, 2,
                        [&count](const std::vector<const Mcd*>&) {
                          ++count;
                          return true;
                        });
  EXPECT_EQ(count, 2);  // {a,c} and {b,c}.
}

TEST(MiniConRewritingsTest, SimpleJoinRewriting) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Z) :- a(X,Y), b(Y,Z)");
  const std::vector<ConjunctiveQuery> views = Rules(
      "v1(T,W) :- a(T,W).\n"
      "v2(W,U) :- b(W,U).");
  const UnionQuery rewritings = MiniConRewritings(q, views);
  ASSERT_EQ(rewritings.size(), 1);
  const ConjunctiveQuery& r = rewritings.disjuncts()[0];
  // Its expansion must be equivalent to the query (here even equal).
  const ConjunctiveQuery expansion = Expand(r, ViewSet(views));
  EXPECT_TRUE(CqEquivalent(expansion, q));
}

TEST(MiniConRewritingsTest, EveryDisjunctIsContained) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X,Y), b(Y,X)");
  const std::vector<ConjunctiveQuery> views = Rules(
      "v1(T) :- a(T,W), b(W,T).\n"
      "v2(T,W) :- a(T,W).\n"
      "v3(W,T) :- b(W,T).");
  const UnionQuery rewritings = MiniConRewritings(q, views);
  ASSERT_GT(rewritings.size(), 0);
  for (const ConjunctiveQuery& r : rewritings.disjuncts()) {
    const ConjunctiveQuery expansion = Expand(r, ViewSet(views));
    EXPECT_TRUE(CqContained(expansion, q)) << r.ToString();
  }
}

TEST(MiniConRewritingsTest, NoRewritingWhenSubgoalUncoverable) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), c(X)");
  const UnionQuery rewritings =
      MiniConRewritings(q, Rules("v(T) :- a(T)"));
  EXPECT_TRUE(rewritings.empty());
}

}  // namespace
}  // namespace cqac
