// Tests for FoldExistentialVariables: the comparison-aware minimization
// that keeps Phase 2's canonical enumeration small.

#include "containment/cqac_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/expansion.h"

namespace cqac {
namespace {

ConjunctiveQuery Fold(const std::string& rule) {
  return FoldExistentialVariables(Parser::MustParseRule(rule));
}

TEST(FoldTest, PlainRedundantSubgoalFolds) {
  const ConjunctiveQuery folded = Fold("q(X) :- a(X,Y), a(X,Z)");
  EXPECT_EQ(folded.body().size(), 1u);
}

TEST(FoldTest, HeadVariablesAreFixed) {
  // Both Y and Z are distinguished: nothing can fold.
  const ConjunctiveQuery folded = Fold("q(X,Y,Z) :- a(X,Y), a(X,Z)");
  EXPECT_EQ(folded.body().size(), 2u);
}

TEST(FoldTest, WeakerComparisonFoldsOntoStronger) {
  // Z's constraint (Z < 5) is implied by Y's (Y < 3), so the Z-witness
  // can always be the Y-witness: a(X,Z) folds away and Z < 5 with it.
  const ConjunctiveQuery folded =
      Fold("q(X) :- a(X,Y), a(X,Z), Y < 3, Z < 5");
  EXPECT_EQ(folded.body().size(), 1u);
  ASSERT_EQ(folded.comparisons().size(), 1u);
  EXPECT_EQ(folded.comparisons()[0].ToString(), "Y < 3");
}

TEST(FoldTest, IncomparableConstraintsBlockTheFold) {
  // Y < 3 and Z > 5 demand genuinely different witnesses.
  const ConjunctiveQuery folded =
      Fold("q(X) :- a(X,Y), a(X,Z), Y < 3, Z > 5");
  EXPECT_EQ(folded.body().size(), 2u);
  EXPECT_EQ(folded.comparisons().size(), 2u);
}

TEST(FoldTest, ImpliedComparisonAllowsFold) {
  // Z's constraint is implied by Y's: a(X,Z) folds onto a(X,Y).
  const ConjunctiveQuery folded =
      Fold("q(X) :- a(X,Y), a(X,Z), Y < 3, Z < 3");
  EXPECT_EQ(folded.body().size(), 1u);
  ASSERT_EQ(folded.comparisons().size(), 1u);
}

TEST(FoldTest, ChainMergesAcrossMultipleVariables) {
  // Two parallel chains with identical endpoints and compatible
  // comparisons merge into one (the Example 4 expansion pattern).
  const ConjunctiveQuery folded = Fold(
      "q(X,Y) :- a(X,A1), b(A1,Y), a(X,B1), b(B1,Y), A1 < 5, B1 < 5");
  EXPECT_EQ(folded.body().size(), 2u);
  EXPECT_EQ(folded.comparisons().size(), 1u);
}

TEST(FoldTest, DivergentChainsDoNotMerge) {
  const ConjunctiveQuery folded = Fold(
      "q(X,Y) :- a(X,A1), b(A1,Y), a(X,B1), c(B1,Y)");
  EXPECT_EQ(folded.body().size(), 4u);
}

TEST(FoldTest, PreservesEquivalence) {
  const std::vector<const char*> cases = {
      "q(X) :- a(X,Y), a(X,Z), Y < 3, Z < 3",
      "q(X,Y) :- a(X,A1), b(A1,Y), a(X,B1), b(B1,Y), A1 < 5, B1 <= 9",
      "q() :- p(U,V), p(V,U), p(U,U)",
      "q(X) :- a(X,Y), a(Y,Z), a(Z,W)",
  };
  for (const char* text : cases) {
    const ConjunctiveQuery q = Parser::MustParseRule(text);
    const ConjunctiveQuery folded = FoldExistentialVariables(q);
    EXPECT_TRUE(CqacEquivalent(q, folded)) << text << "\n  folded to "
                                           << folded.ToString();
  }
}

TEST(FoldTest, SelfLoopAbsorbsFoldablePath) {
  // With no head variables anchoring it, the whole walk folds onto the
  // self loop.
  const ConjunctiveQuery folded = Fold("q() :- p(U,U), p(U,V), p(V,W)");
  EXPECT_EQ(folded.body().size(), 1u);
  EXPECT_EQ(folded.body()[0].ToString(), "p(U,U)");
}

TEST(FoldTest, ConstantsAnchorAtoms) {
  const ConjunctiveQuery folded = Fold("q() :- a(3,Y), a(4,Z)");
  EXPECT_EQ(folded.body().size(), 2u);
}

TEST(FoldTest, FoldOntoConstantWhenImplied) {
  // Z is pinned to 3 by the comparisons; a(X,Z) folds onto a(X,3).
  const ConjunctiveQuery folded =
      Fold("q(X) :- a(X,3), a(X,Z), Z = 3");
  EXPECT_EQ(folded.body().size(), 1u);
}

TEST(FoldTest, SingleAtomUntouched) {
  const ConjunctiveQuery folded = Fold("q(X) :- a(X,Y), X < Y");
  EXPECT_EQ(folded.body().size(), 1u);
  EXPECT_EQ(folded.comparisons().size(), 1u);
}

TEST(FoldTest, EmptyComparisonAfterRedundancyRemoval) {
  const ConjunctiveQuery folded =
      Fold("q(X) :- a(X,Y), a(X,Z), 1 < 2");
  EXPECT_EQ(folded.body().size(), 1u);
  EXPECT_TRUE(folded.comparisons().empty());
}

}  // namespace
}  // namespace cqac
