// Tests for the compiled containment engine: the symbol interner, the
// trail-based binding store, and a differential check of the compiled
// mapping search against the legacy string-substitution search on
// hundreds of generated query pairs.

#include <algorithm>
#include <string>
#include <vector>

#include "ast/interner.h"
#include "containment/binding_trail.h"
#include "containment/homomorphism.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "workload/generator.h"

namespace cqac {
namespace {

ConjunctiveQuery Parse(const std::string& text) {
  return Parser::MustParseRule(text);
}

// ---------------------------------------------------------------------------
// SymbolInterner

TEST(SymbolInternerTest, RoundTripsNamesAndIds) {
  SymbolInterner interner;
  const std::vector<std::string> names = {"X", "Y", "p", "q", "_f0", "X1"};
  std::vector<uint32_t> ids;
  for (const std::string& name : names) ids.push_back(interner.Intern(name));
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(interner.NameOf(ids[i]), names[i]);
    EXPECT_EQ(interner.Find(names[i]), ids[i]);
    EXPECT_EQ(interner.Intern(names[i]), ids[i]) << "re-intern must be stable";
  }
  EXPECT_EQ(interner.size(), names.size());
}

TEST(SymbolInternerTest, IdsAreDenseInFirstInternOrder) {
  SymbolInterner interner;
  EXPECT_EQ(interner.Intern("A"), 0u);
  EXPECT_EQ(interner.Intern("B"), 1u);
  EXPECT_EQ(interner.Intern("A"), 0u);
  EXPECT_EQ(interner.Intern("C"), 2u);
}

TEST(SymbolInternerTest, FindOnUnknownReturnsNotFound) {
  SymbolInterner interner;
  interner.Intern("X");
  EXPECT_EQ(interner.Find("Y"), SymbolInterner::kNotFound);
}

TEST(SymbolInternerTest, ClearInvalidatesAndRestartsAtZero) {
  SymbolInterner interner;
  interner.Intern("X");
  interner.Intern("Y");
  interner.Clear();
  EXPECT_EQ(interner.size(), 0u);
  EXPECT_EQ(interner.Find("X"), SymbolInterner::kNotFound);
  EXPECT_EQ(interner.Intern("Z"), 0u);
}

// ---------------------------------------------------------------------------
// BindingTrail

TEST(BindingTrailTest, BindAndLookup) {
  BindingTrail trail;
  trail.Reset(4);
  EXPECT_FALSE(trail.IsBound(2));
  trail.Bind(2, 7);
  EXPECT_TRUE(trail.IsBound(2));
  EXPECT_EQ(trail.Get(2), 7);
  EXPECT_EQ(trail.Get(0), BindingTrail::kUnbound);
}

TEST(BindingTrailTest, UndoUnbindsNewestFirstBackToMark) {
  BindingTrail trail;
  trail.Reset(5);
  trail.Bind(0, 10);
  const size_t mark = trail.Mark();
  trail.Bind(3, 11);
  trail.Bind(1, 12);
  ASSERT_EQ(trail.trail().size(), 3u);
  // Trail records binding order, oldest first.
  EXPECT_EQ(trail.trail()[0], 0u);
  EXPECT_EQ(trail.trail()[1], 3u);
  EXPECT_EQ(trail.trail()[2], 1u);

  trail.UndoTo(mark);
  // Exactly the bindings after the mark are gone; the one before survives.
  EXPECT_FALSE(trail.IsBound(3));
  EXPECT_FALSE(trail.IsBound(1));
  EXPECT_TRUE(trail.IsBound(0));
  EXPECT_EQ(trail.Get(0), 10);
  EXPECT_EQ(trail.Mark(), mark);
}

TEST(BindingTrailTest, NestedMarksUndoInLifoOrder) {
  BindingTrail trail;
  trail.Reset(6);
  const size_t m0 = trail.Mark();
  trail.Bind(0, 1);
  const size_t m1 = trail.Mark();
  trail.Bind(1, 2);
  trail.Bind(2, 3);
  const size_t m2 = trail.Mark();
  trail.Bind(3, 4);

  trail.UndoTo(m2);
  EXPECT_TRUE(trail.IsBound(2));
  EXPECT_FALSE(trail.IsBound(3));
  trail.UndoTo(m1);
  EXPECT_TRUE(trail.IsBound(0));
  EXPECT_FALSE(trail.IsBound(1));
  trail.UndoTo(m0);
  EXPECT_FALSE(trail.IsBound(0));
  EXPECT_EQ(trail.trail().size(), 0u);
}

TEST(BindingTrailTest, ResetClearsBindingsAndTrail) {
  BindingTrail trail;
  trail.Reset(3);
  trail.Bind(0, 5);
  trail.Reset(2);
  EXPECT_EQ(trail.num_vars(), 2u);
  EXPECT_FALSE(trail.IsBound(0));
  EXPECT_TRUE(trail.trail().empty());
}

// ---------------------------------------------------------------------------
// Differential: compiled search vs legacy search

/// All mappings rendered and sorted, so enumeration order (which the
/// compiled engine's subgoal reordering legitimately changes) does not
/// matter, but the multiset of mappings must match exactly.
std::vector<std::string> SortedMappings(
    const std::function<void(const std::function<bool(const Substitution&)>&)>&
        for_each) {
  std::vector<std::string> out;
  for_each([&out](const Substitution& s) {
    out.push_back(s.ToString());
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameMappings(const ConjunctiveQuery& from,
                        const ConjunctiveQuery& to, const std::string& label) {
  const std::vector<std::string> compiled = SortedMappings(
      [&](const std::function<bool(const Substitution&)>& fn) {
        ForEachContainmentMapping(from, to, fn);
      });
  const std::vector<std::string> legacy = SortedMappings(
      [&](const std::function<bool(const Substitution&)>& fn) {
        internal::ForEachContainmentMappingLegacy(from, to, fn);
      });
  EXPECT_EQ(compiled, legacy) << label;
  EXPECT_EQ(FindContainmentMapping(from, to).has_value(), !legacy.empty())
      << label;
  EXPECT_EQ(AllContainmentMappings(from, to).size(), legacy.size()) << label;
}

TEST(CompiledContainmentDifferentialTest, HandWrittenCornerCases) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      // Repeated variables and constants in both queries.
      {"q(X) :- p(X,X), p(X,3)", "q(Y) :- p(Y,Y), p(Y,3)"},
      // Different head predicates: no mappings at all.
      {"q(X) :- p(X,Y)", "r(A) :- p(A,B)"},
      // Multiple images per subgoal (fanout), shared variables.
      {"q(X) :- p(X,Y), p(Y,Z)", "q(A) :- p(A,A), p(A,B), p(B,C)"},
      // Constants that only exist on one side.
      {"q(X) :- p(X,5)", "q(A) :- p(A,7)"},
      // Boolean queries.
      {"q() :- p(X,Y), r(Y)", "q() :- p(A,B), r(B), r(C)"},
      // From-query bigger than to-query.
      {"q(X) :- p(X,Y), p(Y,Z), p(Z,W)", "q(A) :- p(A,A)"},
  };
  for (const auto& [from, to] : pairs) {
    ExpectSameMappings(Parse(from), Parse(to), from + "  vs  " + to);
  }
}

TEST(CompiledContainmentDifferentialTest, GeneratedWorkloadPairs) {
  // Every ordered pair drawn from {query} ∪ views of each generated
  // instance, across several workload shapes: comfortably more than 500
  // pairs, and the two engines must agree on every one.
  int pairs_checked = 0;
  for (int shape = 0; shape < 3; ++shape) {
    WorkloadConfig config;
    config.num_variables = 4 + shape;
    config.num_subgoals = 3 + shape;
    config.num_predicates = 2 + shape;  // fewer predicates -> more fanout
    config.num_views = 4;
    for (int seed = 0; seed < 8; ++seed) {
      config.seed = 100 * shape + seed;
      WorkloadGenerator generator(config);
      const WorkloadInstance instance = generator.Generate();
      std::vector<ConjunctiveQuery> queries;
      queries.push_back(instance.query);
      for (const ConjunctiveQuery& view : instance.views.views()) {
        queries.push_back(view);
      }
      for (size_t i = 0; i < queries.size(); ++i) {
        for (size_t j = 0; j < queries.size(); ++j) {
          ExpectSameMappings(queries[i], queries[j],
                             "shape=" + std::to_string(shape) +
                                 " seed=" + std::to_string(config.seed) +
                                 " pair=(" + std::to_string(i) + "," +
                                 std::to_string(j) + ")");
          ++pairs_checked;
        }
      }
    }
  }
  EXPECT_GE(pairs_checked, 500);
}

TEST(CompiledContainmentTest, EarlyStopVisitsExactlyOneMapping) {
  const ConjunctiveQuery from = Parse("q(X) :- p(X,Y)");
  const ConjunctiveQuery to = Parse("q(A) :- p(A,B), p(A,C), p(A,D)");
  int visited = 0;
  ForEachContainmentMapping(from, to, [&visited](const Substitution&) {
    ++visited;
    return false;
  });
  EXPECT_EQ(visited, 1);
}

}  // namespace
}  // namespace cqac
