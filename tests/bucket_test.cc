#include "rewriting/bucket.h"

#include "containment/cq_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/expansion.h"

namespace cqac {
namespace {

ViewSet Views(const std::string& program) {
  return ViewSet(Parser::MustParseProgram(program));
}

TEST(BucketTest, BucketsBuiltPerSubgoal) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Z) :- a(X,Y), b(Y,Z)");
  const ViewSet views = Views(
      "v1(T,W) :- a(T,W).\n"
      "v2(W,U) :- b(W,U).\n"
      "v3(T,U) :- a(T,W), b(W,U).");
  const auto buckets = BuildBuckets(q, views);
  ASSERT_EQ(buckets.size(), 2u);
  // Bucket 0 (the a-subgoal): v1 and v3; bucket 1: v2 and v3.
  EXPECT_EQ(buckets[0].size(), 2u);
  EXPECT_EQ(buckets[1].size(), 2u);
}

TEST(BucketTest, DistinguishedVariableMustSurvive) {
  // X is distinguished but v projects the first attribute away.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  const auto buckets = BuildBuckets(q, Views("v(U) :- a(T,U)."));
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_TRUE(buckets[0].empty());
}

TEST(BucketTest, RewritingsAreContained) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Z) :- a(X,Y), b(Y,Z)");
  const ViewSet views = Views(
      "v1(T,W) :- a(T,W).\n"
      "v2(W,U) :- b(W,U).");
  const UnionQuery rewritings = BucketRewritings(q, views);
  ASSERT_GT(rewritings.size(), 0);
  for (const ConjunctiveQuery& r : rewritings.disjuncts()) {
    EXPECT_TRUE(CqContained(Expand(r, views), q)) << r.ToString();
  }
}

TEST(BucketTest, FindsTheEquivalentCandidate) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Z) :- a(X,Y), b(Y,Z)");
  const ViewSet views = Views(
      "v1(T,W) :- a(T,W).\n"
      "v2(W,U) :- b(W,U).");
  const UnionQuery rewritings = BucketRewritings(q, views);
  bool has_equivalent = false;
  for (const ConjunctiveQuery& r : rewritings.disjuncts()) {
    if (CqEquivalent(Expand(r, views), q)) has_equivalent = true;
  }
  EXPECT_TRUE(has_equivalent);
}

TEST(BucketTest, EmptyBucketMeansNoRewriting) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), c(X)");
  EXPECT_TRUE(BucketRewritings(q, Views("v(T) :- a(T).")).empty());
}

TEST(BucketTest, FalseCandidatesFilteredByContainmentCheck) {
  // The bucket for a(X,Y) accepts v(...) entries whose joins do not
  // actually produce a contained rewriting; those candidates must be
  // filtered by the containment check.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,X)");
  const ViewSet views = Views("v(T,U) :- a(T,U).");
  const UnionQuery rewritings = BucketRewritings(q, views);
  for (const ConjunctiveQuery& r : rewritings.disjuncts()) {
    EXPECT_TRUE(CqContained(Expand(r, views), q)) << r.ToString();
  }
}

TEST(BucketTest, ConstantInQuerySubgoal) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,3)");
  const ViewSet views = Views("v(T,U) :- a(T,U).");
  const auto buckets = BuildBuckets(q, views);
  ASSERT_EQ(buckets.size(), 1u);
  ASSERT_EQ(buckets[0].size(), 1u);
  EXPECT_EQ(buckets[0][0].ToString(), "v(X,3)");
}

}  // namespace
}  // namespace cqac
