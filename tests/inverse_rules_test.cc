#include "rewriting/inverse_rules.h"

#include "engine/evaluate.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/expansion.h"
#include "rewriting/minicon.h"

namespace cqac {
namespace {

ViewSet Views(const std::string& program) {
  return ViewSet(Parser::MustParseProgram(program));
}

TEST(InverseRulesTest, RulesForPathView) {
  const ViewSet views = Views("v(X,Z) :- e(X,Y), e(Y,Z).");
  const std::vector<InverseRule> rules = BuildInverseRules(views);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].ToString(), "e(X,f_v0,Y(X,Z)) :- v(X,Z)");
  EXPECT_EQ(rules[1].ToString(), "e(f_v0,Y(X,Z),Z) :- v(X,Z)");
}

TEST(InverseRulesTest, OneRulePerBodyAtomAcrossViews) {
  const ViewSet views = Views(
      "v1(X) :- a(X,Y).\n"
      "v2(X,Z) :- a(X,Y), b(Y,Z), c(Z).");
  const std::vector<InverseRule> rules = BuildInverseRules(views);
  EXPECT_EQ(rules.size(), 4u);
}

TEST(InverseRulesTest, ConstantsCarriedThrough) {
  const ViewSet views = Views("v(X) :- a(X,3).");
  const std::vector<InverseRule> rules = BuildInverseRules(views);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].ToString(), "a(X,3) :- v(X)");
}

TEST(InverseRulesTest, IdentityViewAnswersDirectly) {
  const ViewSet views = Views("v(X,Y) :- e(X,Y).");
  Database extension;
  extension.Insert("v", {Rational(1), Rational(2)});
  const Relation answers = AnswerViaInverseRules(
      Parser::MustParseRule("q(X,Y) :- e(X,Y)"), views, extension);
  EXPECT_EQ(answers.ToString(), "{(1,2)}");
}

TEST(InverseRulesTest, SkolemJoinRecoversThePath) {
  // The classic: v stores endpoints of 2-paths; the query asks exactly
  // for 2-paths, so joining through the Skolem midpoint recovers them.
  const ViewSet views = Views("v(X,Z) :- e(X,Y), e(Y,Z).");
  Database extension;
  extension.Insert("v", {Rational(1), Rational(3)});
  const Relation answers = AnswerViaInverseRules(
      Parser::MustParseRule("q(X,Z) :- e(X,Y), e(Y,Z)"), views, extension);
  EXPECT_EQ(answers.ToString(), "{(1,3)}");
}

TEST(InverseRulesTest, SkolemsNeverLeakIntoAnswers) {
  // A 3-path cannot be certain from 2-path endpoints: the candidate
  // answers all contain Skolem midpoints and must be discarded.
  const ViewSet views = Views("v(X,Z) :- e(X,Y), e(Y,Z).");
  Database extension;
  extension.Insert("v", {Rational(1), Rational(3)});
  extension.Insert("v", {Rational(3), Rational(5)});
  const Relation answers = AnswerViaInverseRules(
      Parser::MustParseRule("q(X,W) :- e(X,Y), e(Y,Z), e(Z,W)"), views,
      extension);
  EXPECT_TRUE(answers.empty());
}

TEST(InverseRulesTest, FourPathFromTwoTwoPaths) {
  // A 4-path IS certain: chain the two view tuples through the shared
  // constant 3.
  const ViewSet views = Views("v(X,Z) :- e(X,Y), e(Y,Z).");
  Database extension;
  extension.Insert("v", {Rational(1), Rational(3)});
  extension.Insert("v", {Rational(3), Rational(5)});
  const Relation answers = AnswerViaInverseRules(
      Parser::MustParseRule("q(X,W) :- e(X,A), e(A,B), e(B,C), e(C,W)"),
      views, extension);
  EXPECT_EQ(answers.ToString(), "{(1,5)}");
}

TEST(InverseRulesTest, DistinctViewTuplesGetDistinctSkolems) {
  // Two v-tuples produce two different midpoints; a query demanding a
  // common midpoint finds none.
  const ViewSet views = Views("v(X,Z) :- e(X,Y), e(Y,Z).");
  Database extension;
  extension.Insert("v", {Rational(1), Rational(3)});
  extension.Insert("v", {Rational(1), Rational(4)});
  // The query demands one midpoint reaching both Z and W.
  const Relation answers = AnswerViaInverseRules(
      Parser::MustParseRule("q(Z,W) :- e(Y,Z), e(Y,W)"), views, extension);
  // (3,3) and (4,4) are certain (each midpoint reaches itself twice);
  // (3,4) would need the two view tuples' midpoints to coincide, which
  // cannot be asserted — the Skolem terms are distinct.
  EXPECT_TRUE(answers.Contains({Rational(3), Rational(3)}));
  EXPECT_TRUE(answers.Contains({Rational(4), Rational(4)}));
  EXPECT_FALSE(answers.Contains({Rational(3), Rational(4)}));
}

TEST(InverseRulesTest, QueriesWithComparisonsRejected) {
  const ViewSet views = Views("v(X,Y) :- e(X,Y).");
  Database extension;
  extension.Insert("v", {Rational(1), Rational(2)});
  const Relation answers = AnswerViaInverseRules(
      Parser::MustParseRule("q(X) :- e(X,Y), X < 5"), views, extension);
  EXPECT_TRUE(answers.empty());
}

TEST(InverseRulesTest, AgreesWithMiniConRewritingAnswers) {
  // On plain CQs, the certain answers equal the union of the MiniCon
  // rewritings evaluated over the same view extension.
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Z) :- a(X,Y), b(Y,Z)");
  const std::vector<ConjunctiveQuery> view_list = Parser::MustParseProgram(
      "v1(T,W) :- a(T,W).\n"
      "v2(W,U) :- b(W,U).\n"
      "v3(T,U) :- a(T,W), b(W,U).");
  const ViewSet views(view_list);

  Database extension;
  extension.Insert("v1", {Rational(1), Rational(2)});
  extension.Insert("v2", {Rational(2), Rational(3)});
  extension.Insert("v3", {Rational(7), Rational(9)});

  const Relation certain = AnswerViaInverseRules(q, views, extension);

  const UnionQuery rewritings = MiniConRewritings(q, view_list);
  const Relation via_minicon = Evaluate(rewritings, extension);

  EXPECT_EQ(certain, via_minicon) << "certain: " << certain.ToString()
                                  << " minicon: " << via_minicon.ToString();
  EXPECT_TRUE(certain.Contains({Rational(1), Rational(3)}));
  EXPECT_TRUE(certain.Contains({Rational(7), Rational(9)}));
}

TEST(InverseRulesTest, RepeatedHeadVariableFiltersExtension) {
  const ViewSet views = Views("v(X,X) :- e(X,X).");
  Database extension;
  extension.Insert("v", {Rational(1), Rational(1)});
  extension.Insert("v", {Rational(1), Rational(2)});  // Inconsistent row.
  const Relation answers = AnswerViaInverseRules(
      Parser::MustParseRule("q(X) :- e(X,X)"), views, extension);
  EXPECT_EQ(answers.ToString(), "{(1)}");
}

}  // namespace
}  // namespace cqac
