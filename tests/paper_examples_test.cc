// Regression tests pinning every worked example in the paper, including
// the structural claims of Example 3 (where full CQAC processing of the
// heptagon is out of unit-test range, the comparison-free skeletons are
// checked with the plain-CQ machinery).

#include "containment/cq_containment.h"
#include "containment/cqac_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/expansion.h"
#include "rewriting/minicon.h"

namespace cqac {
namespace {

// ---- Example 3: the heptagon ----
//
// Q evaluates to true when the database has a closed path of length 7
// whose 2nd vertex exceeds 5 and whose 7th is below 8.  The paper argues
// that (a) for the comparison-free versions, the minimal rewriting is
// r() :- v1'(X,Y), but (b) the rewriting with the "redundant" subgoals
// v2'(Z,X), v3'(Y,Z) is the one that survives once comparisons return.

const char* kHeptagonQ0 =
    "q() :- a(X1,X2), a(X2,X3), a(X3,X4), a(X4,X5), a(X5,X6), a(X6,X7), "
    "a(X7,X1)";
const char* kHeptagonViews0 =
    "v1(X1,X4) :- a(X1,X2), a(X2,X3), a(X3,X4), a(X4,X5), a(X5,X6), "
    "a(X6,X7), a(X7,X1).\n"
    "v2(X3,X5) :- a(X1,X2), a(X2,X3), a(X3,X4), a(X4,X5), a(X5,X6), "
    "a(X6,X7), a(X7,X1).\n"
    "v3(X,Y) :- a(X,X2), a(X2,Y).";

TEST(PaperExample3Test, MinimalCqRewritingIsEquivalent) {
  // R' : r() :- v1'(X,Y) — the CoreCover-style answer for Q0/V0.
  const ConjunctiveQuery q0 = Parser::MustParseRule(kHeptagonQ0);
  const ViewSet views(Parser::MustParseProgram(kHeptagonViews0));
  const ConjunctiveQuery r = Parser::MustParseRule("q() :- v1(X,Y)");
  const ConjunctiveQuery expansion = Expand(r, views);
  EXPECT_TRUE(CqEquivalent(expansion, q0));
}

TEST(PaperExample3Test, RedundantCqRewritingAlsoEquivalent) {
  // R'' : r() :- v1'(X,Y), v2'(Z,X), v3'(Y,Z) — the paper's Figure 1(b):
  // still equivalent to Q0 despite the redundant subgoals.
  const ConjunctiveQuery q0 = Parser::MustParseRule(kHeptagonQ0);
  const ViewSet views(Parser::MustParseProgram(kHeptagonViews0));
  const ConjunctiveQuery r =
      Parser::MustParseRule("q() :- v1(X,Y), v2(Z,X), v3(Y,Z)");
  const ConjunctiveQuery expansion = Expand(r, views);
  EXPECT_TRUE(CqEquivalent(expansion, q0));
}

TEST(PaperExample3Test, MiniConCoversTheCycleWithTwoArcs) {
  // MCDs are minimal closures: v1 exposes X1 and X4, so the cycle splits
  // into the arc X1..X4 (3 subgoals) and the arc X4..X1 (4 subgoals),
  // both carried by the tuple v1(X1,X4).  Their disjoint combination
  // covers the whole query — MiniCon's route to the minimal rewriting
  // r() :- v1(X,Y).
  const ConjunctiveQuery q0 = Parser::MustParseRule(kHeptagonQ0);
  const std::vector<ConjunctiveQuery> views =
      Parser::MustParseProgram(kHeptagonViews0);
  const std::vector<Mcd> mcds = FormMcds(q0, views);
  bool short_arc = false;
  bool long_arc = false;
  for (const Mcd& mcd : mcds) {
    if (mcd.view_tuple.predicate() != "v1") continue;
    if (mcd.covered == std::vector<int>{0, 1, 2}) short_arc = true;
    if (mcd.covered == std::vector<int>{3, 4, 5, 6}) long_arc = true;
    // Minimality: no MCD swallows the whole cycle.
    EXPECT_LT(mcd.covered.size(), q0.body().size()) << mcd.ToString();
  }
  EXPECT_TRUE(short_arc);
  EXPECT_TRUE(long_arc);
  EXPECT_TRUE(McdCombinationExists(mcds, 7));
}

TEST(PaperExample3Test, TwoPathViewCoversAdjacentEdges) {
  // v3 exposes both endpoints of a 2-path; its MCDs cover adjacent
  // subgoal pairs of the cycle — the building block of the paper's
  // twisted rewriting.
  const ConjunctiveQuery q0 = Parser::MustParseRule(kHeptagonQ0);
  const std::vector<ConjunctiveQuery> views =
      Parser::MustParseProgram("v3(X,Y) :- a(X,X2), a(X2,Y).");
  const std::vector<Mcd> mcds = FormMcds(q0, views);
  // Seven rotations of the 2-path around the 7-cycle.
  EXPECT_EQ(mcds.size(), 7u);
  for (const Mcd& mcd : mcds) {
    EXPECT_EQ(mcd.covered.size(), 2u);
  }
  // Seven edges cannot be tiled by disjoint 2-paths (odd cycle).
  EXPECT_FALSE(McdCombinationExists(mcds, 7));
}

// ---- Example 7: the Pre-Rewritings of Example 5 ----
TEST(PaperExample7Test, PreRewritingsMatchTheText) {
  RewriteOptions options;
  options.explain = true;
  const RewriteResult result =
      EquivalentRewriter(
          Parser::MustParseRule("q(A) :- r(A), s(A,A), A <= 8"),
          ViewSet(Parser::MustParseProgram(
              "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.")),
          options)
          .Run();
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  // PR1(A) :- v(A,A) [A < 8] and PR2(A) :- v(A,A) [A = 8].
  int prs = 0;
  for (const CanonicalDatabaseTrace& db : result.trace.databases) {
    if (db.pre_rewriting.empty()) continue;
    ++prs;
    EXPECT_NE(db.pre_rewriting.find("v(A,A)"), std::string::npos)
        << db.pre_rewriting;
  }
  EXPECT_EQ(prs, 2);
}

// ---- Example 6: both exported variants usable in rewritings ----
TEST(PaperExample6Test, ExportedVariantsDriveRewritings) {
  // A query that can only be covered through the exported Z1 (the
  // comparison W <= X mirrors what the view's W <= Z1 = X forces).
  const ConjunctiveQuery q = Parser::MustParseRule(
      "q(X,W) :- a(X,X), a(X,Z2), b(Z2,X,W), W <= X");
  const ViewSet views(Parser::MustParseProgram(
      "v(X,Y,W) :- a(X,Z1), a(Z1,Z2), b(Z2,Y,W), X <= Z1, W <= Z1, "
      "Z1 <= Y."));
  RewriteOptions options;
  options.verify = true;
  const RewriteResult result = EquivalentRewriter(q, views, options).Run();
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
  // Every disjunct uses v with its first two arguments equated (the
  // paper's V1 variant shape v(X,X,W)).
  for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    bool uses_v1_shape = false;
    for (const Atom& atom : d.body()) {
      if (atom.predicate() == "v" && atom.args()[0] == atom.args()[1]) {
        uses_v1_shape = true;
      }
    }
    EXPECT_TRUE(uses_v1_shape) << d.ToString();
  }
}

}  // namespace
}  // namespace cqac
