// ViewCatalog tests: cold/warm/classic byte parity over the persistent
// fuzz corpus (with the semantic cache on and off), alpha-renamed hits,
// options-keyed entries, persistent Phase-1 memo reuse, epoch-bump
// invalidation through the registry, batch-driver parity, and a
// concurrent warm/swap hammer for the tsan leg.

#ifndef CQAC_CORPUS_DIR
#error "CQAC_CORPUS_DIR must point at tests/corpus"
#endif

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/view_catalog.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "runtime/batch_driver.h"
#include "testing/corpus.h"
#include "testing/differential.h"

namespace cqac {
namespace {

using testing::CorpusEntry;
using testing::LoadCorpusDir;
using testing::RunSignature;
using testing::SignatureOf;

ConjunctiveQuery ParseRuleOrDie(const std::string& text) {
  std::string error;
  std::optional<ConjunctiveQuery> rule = Parser::ParseRule(text, &error);
  EXPECT_TRUE(rule.has_value()) << text << ": " << error;
  return *std::move(rule);
}

ViewSet OneViewSet() {
  ViewSet views;
  views.Add(ParseRuleOrDie("v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));
  return views;
}

ViewSet OtherViewSet() {
  ViewSet views;
  views.Add(ParseRuleOrDie("w(A,B) :- t(A,B), A <= B."));
  return views;
}

std::vector<CorpusEntry> LoadCorpusOrDie() {
  std::string error;
  std::optional<std::vector<CorpusEntry>> corpus =
      LoadCorpusDir(CQAC_CORPUS_DIR, &error);
  EXPECT_TRUE(corpus.has_value()) << error;
  return corpus.value_or(std::vector<CorpusEntry>{});
}

// Cold catalog run, warm catalog run, and the classic rewriter must
// produce identical invariant signatures on every corpus case; the warm
// run must come from the semantic cache whenever the catalog stored the
// cold answer (everything but aborts and the unsatisfiable-query
// shortcut, which bypasses the cache).
TEST(ViewCatalogTest, ColdWarmAndClassicAgreeOnCorpus) {
  int64_t warm_hits = 0;
  for (const CorpusEntry& entry : LoadCorpusOrDie()) {
    const RewriteOptions options;
    const RewriteResult classic =
        EquivalentRewriter(entry.c.query, entry.c.views, options).Run();

    ViewCatalog catalog(entry.c.views);
    const RewriteResult cold = catalog.Rewrite(entry.c.query, options);
    const RewriteResult warm = catalog.Rewrite(entry.c.query, options);

    EXPECT_FALSE(cold.from_semantic_cache) << entry.name;
    EXPECT_EQ(SignatureOf(classic), SignatureOf(cold))
        << entry.name << "\n--- classic\n" << SignatureOf(classic).ToString()
        << "\n--- cold\n" << SignatureOf(cold).ToString();
    EXPECT_EQ(SignatureOf(cold), SignatureOf(warm))
        << entry.name << "\n--- cold\n" << SignatureOf(cold).ToString()
        << "\n--- warm\n" << SignatureOf(warm).ToString();
    EXPECT_EQ(cold.catalog_epoch, catalog.epoch()) << entry.name;
    EXPECT_EQ(warm.catalog_epoch, catalog.epoch()) << entry.name;
    if (warm.from_semantic_cache) ++warm_hits;
  }
  EXPECT_GT(warm_hits, 0);
}

// With the semantic cache disabled every run computes in full (through
// the shared plan and memos) and still matches the classic rewriter.
TEST(ViewCatalogTest, SemanticCacheOffStillByteIdentical) {
  CatalogOptions copts;
  copts.semantic_cache = false;
  for (const CorpusEntry& entry : LoadCorpusOrDie()) {
    const RewriteOptions options;
    const RewriteResult classic =
        EquivalentRewriter(entry.c.query, entry.c.views, options).Run();

    ViewCatalog catalog(entry.c.views, copts);
    const RewriteResult first = catalog.Rewrite(entry.c.query, options);
    const RewriteResult second = catalog.Rewrite(entry.c.query, options);

    EXPECT_FALSE(first.from_semantic_cache) << entry.name;
    EXPECT_FALSE(second.from_semantic_cache) << entry.name;
    EXPECT_EQ(SignatureOf(classic), SignatureOf(first)) << entry.name;
    EXPECT_EQ(SignatureOf(first), SignatureOf(second)) << entry.name;
  }
  // Never probed, never stored.
}

// An alpha-renaming of a cached query is served from the semantic cache,
// with the replayed rewriting renamed to the incoming variable spelling.
TEST(ViewCatalogTest, AlphaRenamedQueryReplaysWithRenamedVariables) {
  const ViewSet views = OneViewSet();
  const ConjunctiveQuery original =
      ParseRuleOrDie("q(A) :- r(A), s(A,A), A <= 8.");
  const ConjunctiveQuery renamed =
      ParseRuleOrDie("q(B) :- r(B), s(B,B), B <= 8.");

  const RewriteOptions options;
  ViewCatalog catalog(views);
  const RewriteResult first = catalog.Rewrite(original, options);
  const RewriteResult second = catalog.Rewrite(renamed, options);
  const RewriteResult fresh =
      EquivalentRewriter(renamed, views, options).Run();

  EXPECT_EQ(SignatureOf(fresh), SignatureOf(second))
      << "--- fresh\n" << SignatureOf(fresh).ToString() << "\n--- cached\n"
      << SignatureOf(second).ToString();
  if (first.outcome == RewriteOutcome::kRewritingFound) {
    EXPECT_TRUE(second.from_semantic_cache);
    EXPECT_EQ(second.rewriting.ToString(), fresh.rewriting.ToString());
  }
}

// Result-relevant options key the semantic cache: a run with different
// output shaping must not be served a cached answer computed without it.
TEST(ViewCatalogTest, SemanticEntriesAreKeyedByOptions) {
  const ViewSet views = OneViewSet();
  const ConjunctiveQuery query =
      ParseRuleOrDie("q(A) :- r(A), s(A,A), A <= 8.");

  RewriteOptions plain;
  RewriteOptions verified = plain;
  verified.verify = true;

  ViewCatalog catalog(views);
  const RewriteResult a = catalog.Rewrite(query, plain);
  const RewriteResult b = catalog.Rewrite(query, verified);
  EXPECT_FALSE(b.from_semantic_cache);  // different key, full run

  const RewriteResult fresh_verified =
      EquivalentRewriter(query, views, verified).Run();
  EXPECT_EQ(SignatureOf(fresh_verified), SignatureOf(b));
  EXPECT_EQ(b.verified, fresh_verified.verified);

  // Each keyed entry replays for its own options.
  EXPECT_TRUE(catalog.Rewrite(query, plain).from_semantic_cache);
  EXPECT_TRUE(catalog.Rewrite(query, verified).from_semantic_cache);
  (void)a;
}

// The plan's Phase-1 fingerprint memo persists across requests: with the
// semantic cache off, a repeat of the same query replays every canonical
// database from the memo instead of recomputing.
TEST(ViewCatalogTest, Phase1MemoPersistsAcrossRequests) {
  CatalogOptions copts;
  copts.semantic_cache = false;
  ViewCatalog catalog(OneViewSet(), copts);
  const ConjunctiveQuery query =
      ParseRuleOrDie("q(A) :- r(A), s(A,A), A <= 8.");

  const RewriteOptions options;
  const RewriteResult cold = catalog.Rewrite(query, options);
  const RewriteResult warm = catalog.Rewrite(query, options);

  ASSERT_GT(cold.stats.canonical_databases, 0);
  EXPECT_EQ(warm.stats.phase1_memo_misses, 0);
  EXPECT_EQ(warm.stats.phase1_memo_hits,
            cold.stats.phase1_memo_hits + cold.stats.phase1_memo_misses);
  EXPECT_EQ(catalog.Stats().plan_hits, 1);
  EXPECT_EQ(catalog.Stats().plans_built, 1);
}

// Epochs are strictly increasing across catalog builds, and swapping to
// a new view set through the registry yields a fresh-cached catalog — the
// epoch bump is the invalidation.
TEST(ViewCatalogTest, EpochBumpInvalidatesAcrossSwaps) {
  CatalogRegistry registry;
  const ViewSet views_a = OneViewSet();
  const ViewSet views_b = OtherViewSet();

  const std::shared_ptr<ViewCatalog> a = registry.GetOrBuild(views_a);
  EXPECT_EQ(registry.GetOrBuild(views_a), a);  // same fingerprint, shared
  EXPECT_EQ(registry.Stats().catalogs_built, 1);

  const ConjunctiveQuery query =
      ParseRuleOrDie("q(A) :- r(A), s(A,A), A <= 8.");
  const RewriteOptions options;
  (void)a->Rewrite(query, options);
  (void)a->Rewrite(query, options);
  EXPECT_EQ(a->Stats().semantic_hits, 1);

  const std::shared_ptr<ViewCatalog> b = registry.GetOrBuild(views_b);
  EXPECT_NE(b, a);
  EXPECT_GT(b->epoch(), a->epoch());
  // The swapped-in catalog starts cold: nothing from `a` leaks over.
  EXPECT_EQ(b->Stats().semantic_hits, 0);
  EXPECT_EQ(b->Stats().plans_built, 0);
  const RewriteResult under_b = b->Rewrite(query, options);
  EXPECT_FALSE(under_b.from_semantic_cache);
  EXPECT_EQ(under_b.catalog_epoch, b->epoch());

  // The old epoch's catalog keeps serving holders of its shared_ptr.
  EXPECT_TRUE(a->Rewrite(query, options).from_semantic_cache);
}

// A capacity-1 registry evicts the LRU catalog; evicted catalogs stay
// usable through outstanding shared_ptrs.
TEST(ViewCatalogTest, RegistryEvictsLeastRecentlyUsed) {
  CatalogRegistry registry(/*capacity=*/1);
  const ViewSet views_a = OneViewSet();
  const ViewSet views_b = OtherViewSet();

  const std::shared_ptr<ViewCatalog> a = registry.GetOrBuild(views_a);
  const std::shared_ptr<ViewCatalog> b = registry.GetOrBuild(views_b);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Find(views_a), nullptr);
  EXPECT_EQ(registry.Find(views_b), b);

  const ConjunctiveQuery query =
      ParseRuleOrDie("q(A) :- r(A), s(A,A), A <= 8.");
  const RewriteResult still_works = a->Rewrite(query, RewriteOptions{});
  EXPECT_EQ(still_works.catalog_epoch, a->epoch());
}

// The batch driver's --catalog path must render byte-identical job blocks
// to the classic path; only the footer gains the catalog line.
TEST(ViewCatalogTest, BatchDriverCatalogPathIsByteIdentical) {
  const std::string input =
      "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.\n"
      "query q(A) :- r(A), s(A,A), A <= 8.\n"
      "run\n"
      "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.\n"
      "query q(B) :- r(B), s(B,B), B <= 8.\n"
      "run\n"
      "view w(A,B) :- t(A,B), A <= B.\n"
      "query p(C) :- t(C,C).\n";

  const auto run = [&](bool use_catalog) {
    BatchOptions options;
    options.jobs = 2;
    options.use_catalog = use_catalog;
    std::istringstream in(input);
    std::ostringstream out;
    const BatchSummary summary = RunBatch(in, out, options);
    EXPECT_EQ(summary.errors, 0);
    EXPECT_EQ(summary.catalog_enabled, use_catalog);
    // Everything up to the footer is the per-job result stream.
    const std::string text = out.str();
    return text.substr(0, text.find("batch:"));
  };

  EXPECT_EQ(run(false), run(true));
}

// tsan target: concurrent warm traffic against a shared catalog while
// other threads build and swap catalogs through the registry.
TEST(ViewCatalogTest, ConcurrentWarmAndSwapHammer) {
  CatalogRegistry registry(/*capacity=*/2);
  const ViewSet views_a = OneViewSet();
  const ViewSet views_b = OtherViewSet();
  const ConjunctiveQuery query_a =
      ParseRuleOrDie("q(A) :- r(A), s(A,A), A <= 8.");
  const ConjunctiveQuery query_b = ParseRuleOrDie("p(C) :- t(C,C).");

  const RewriteOptions options;
  const RunSignature expected_a =
      SignatureOf(EquivalentRewriter(query_a, views_a, options).Run());
  const RunSignature expected_b =
      SignatureOf(EquivalentRewriter(query_b, views_b, options).Run());

  constexpr int kThreads = 4;
  constexpr int kIterations = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const bool pick_a = ((t + i) % 2) == 0;
        const std::shared_ptr<ViewCatalog> catalog =
            registry.GetOrBuild(pick_a ? views_a : views_b);
        const RewriteResult result =
            catalog->Rewrite(pick_a ? query_a : query_b, options);
        if (SignatureOf(result) != (pick_a ? expected_a : expected_b)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace cqac
