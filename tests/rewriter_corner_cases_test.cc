// Corner cases for the full rewriting pipeline: shapes that stress the
// machinery in ways the paper's examples do not (constants in heads,
// boolean queries over 0-ary views, duplicate subgoals, views with
// comparisons between two variables, equality comparisons, self joins).
// Every found rewriting is independently verified.

#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"

namespace cqac {
namespace {

RewriteResult Rewrite(const std::string& query, const std::string& views) {
  RewriteOptions options;
  options.verify = true;
  return EquivalentRewriter(Parser::MustParseRule(query),
                            ViewSet(Parser::MustParseProgram(views)),
                            options)
      .Run();
}

void ExpectFoundAndVerified(const RewriteResult& result) {
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
}

TEST(RewriterCornerCases, ConstantInQueryHead) {
  ExpectFoundAndVerified(
      Rewrite("q(3,X) :- a(X), X < 5", "v(T) :- a(T), T < 5."));
}

TEST(RewriterCornerCases, ConstantInQueryBody) {
  ExpectFoundAndVerified(
      Rewrite("q(X) :- a(X,3), X < 5", "v(T,U) :- a(T,U)."));
}

TEST(RewriterCornerCases, ZeroAryViewAndBooleanQuery) {
  ExpectFoundAndVerified(
      Rewrite("q() :- a(X), X > 0", "v() :- a(X), X > 0."));
}

TEST(RewriterCornerCases, BooleanQueryNeedsStrictlyLooserViewFails) {
  const RewriteResult result =
      Rewrite("q() :- a(X), X > 0", "v() :- a(X), X >= 0.");
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
}

TEST(RewriterCornerCases, DuplicateQuerySubgoals) {
  // Deduplicated semantics: the duplicate changes nothing.
  ExpectFoundAndVerified(
      Rewrite("q(X) :- a(X), a(X), X < 5", "v(T) :- a(T)."));
}

TEST(RewriterCornerCases, SelfJoinNeedsBothOrientations) {
  ExpectFoundAndVerified(Rewrite("q(X) :- e(X,Y), e(Y,X), X < 9",
                                 "v(T,U) :- e(T,U)."));
}

TEST(RewriterCornerCases, ViewWithVariableToVariableComparison) {
  ExpectFoundAndVerified(Rewrite(
      "q(X,Y) :- e(X,Y), X <= Y", "v(T,U) :- e(T,U), T <= U."));
}

TEST(RewriterCornerCases, ViewComparisonSplitsQuerySpace) {
  // The query has no comparison; the two views partition by X vs Y.
  ExpectFoundAndVerified(Rewrite(
      "q(X,Y) :- e(X,Y)",
      "vle(T,U) :- e(T,U), T <= U.\n"
      "vgt(T,U) :- e(T,U), T > U."));
}

TEST(RewriterCornerCases, GapInViewPartitionFails) {
  const RewriteResult result = Rewrite(
      "q(X,Y) :- e(X,Y)",
      "vlt(T,U) :- e(T,U), T < U.\n"
      "vgt(T,U) :- e(T,U), T > U.");
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
}

TEST(RewriterCornerCases, EqualityComparisonInQuery) {
  ExpectFoundAndVerified(
      Rewrite("q(X) :- a(X,Y), Y = 4", "v(T,U) :- a(T,U)."));
}

TEST(RewriterCornerCases, EqualityComparisonInView) {
  ExpectFoundAndVerified(
      Rewrite("q(X) :- a(X,Y), Y = 4", "v(T,U) :- a(T,U), U = 4."));
}

TEST(RewriterCornerCases, ViewHeadConstantUnusable) {
  // The view only exports rows with first attribute pinned to 9; the
  // query ranges over everything.
  const RewriteResult result =
      Rewrite("q(X) :- a(X)", "v(T) :- a(T), T = 9.");
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
}

TEST(RewriterCornerCases, TwoCopiesOfSameViewJoined) {
  ExpectFoundAndVerified(Rewrite(
      "q(X,Z) :- e(X,Y), e(Y,Z), X < 3",
      "v(T,U) :- e(T,U)."));
}

TEST(RewriterCornerCases, RationalConstants) {
  ExpectFoundAndVerified(Rewrite(
      "q(X) :- a(X), X <= 2.5", "v(T) :- a(T), T <= 2.5."));
}

TEST(RewriterCornerCases, TwoConstantsInterleaved) {
  ExpectFoundAndVerified(Rewrite(
      "q(X) :- a(X), X > 1, X < 4",
      "v(T) :- a(T), T > 1, T < 4."));
}

TEST(RewriterCornerCases, ViewsNarrowerUnionCoversQuery) {
  // Two overlapping windows jointly cover the query's window.
  ExpectFoundAndVerified(Rewrite(
      "q(X) :- a(X), X > 1, X < 4",
      "v1(T) :- a(T), T > 1, T < 3.\n"
      "v2(T) :- a(T), T >= 3, T < 4."));
}

TEST(RewriterCornerCases, ViewsNarrowerWithGapFails) {
  const RewriteResult result = Rewrite(
      "q(X) :- a(X), X > 1, X < 4",
      "v1(T) :- a(T), T > 1, T < 3.\n"
      "v2(T) :- a(T), T > 3, T < 4.");
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
}

TEST(RewriterCornerCases, TernaryPredicates) {
  ExpectFoundAndVerified(Rewrite(
      "q(X,Z) :- t(X,Y,Z), Y < 5",
      "v(A,C) :- t(A,B,C), B < 5."));
}

TEST(RewriterCornerCases, RepeatedVariableInQueryAtom) {
  ExpectFoundAndVerified(Rewrite(
      "q(X) :- t(X,X,Y), Y < 5",
      "v(A,B,C) :- t(A,B,C), C < 5."));
}

}  // namespace
}  // namespace cqac
