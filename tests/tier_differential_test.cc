// Differential suite for structure-aware tiered execution: every tier's
// verdicts, rewritings, and invariant counters must be byte-identical to
// the forced-general path's (rewriting/structure.h).
//
// Two sweeps:
//   1. the tier lattice — auto-routed baseline, forced tier0, forced
//      tier1 (serial and parallel: the grid cache's sharing is
//      schedule-dependent), forced tier2 — over the full persistent
//      corpus;
//   2. the same lattice over >= 500 generated cases alternating
//      semi-interval-only, acyclic-only, and unrestricted workloads, so
//      both fast tiers fire on their home turf and fall back soundly
//      elsewhere.
//
// The auto-routed baseline diffed against the forced-tier0 point IS the
// byte-compatibility proof: whatever tier the classifier picked, the
// signature must match the general path's.  Runs under the tsan label:
// the parallel point exercises the shared grid cache against the
// work-stealing driver.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/corpus.h"
#include "testing/differential.h"
#include "workload/generator.h"

namespace cqac {
namespace {

using testing::CorpusEntry;
using testing::DifferentialReport;
using testing::LatticeConfig;
using testing::LoadCorpusDir;
using testing::RunConfigLattice;

/// The tier-axis lattice.  The first point (auto routing) is the
/// baseline; tier0 supplies the general-path signature every fast tier
/// must reproduce.
std::vector<LatticeConfig> TierLattice() {
  std::vector<LatticeConfig> lattice;
  lattice.push_back(LatticeConfig{});  // auto-routed baseline
  LatticeConfig tier0;
  tier0.force_tier = 0;
  lattice.push_back(tier0);
  LatticeConfig tier1;
  tier1.force_tier = 1;
  lattice.push_back(tier1);
  LatticeConfig tier1_parallel;
  tier1_parallel.force_tier = 1;
  tier1_parallel.jobs = 4;
  lattice.push_back(tier1_parallel);
  LatticeConfig tier2;
  tier2.force_tier = 2;
  lattice.push_back(tier2);
  return lattice;
}

TEST(TierDifferentialTest, FullCorpusTierLattice) {
  std::string error;
  const auto corpus = LoadCorpusDir(CQAC_CORPUS_DIR, &error);
  ASSERT_TRUE(corpus.has_value()) << error;
  ASSERT_FALSE(corpus->empty());
  const std::vector<LatticeConfig> lattice = TierLattice();
  for (const CorpusEntry& entry : *corpus) {
    const DifferentialReport report = RunConfigLattice(entry.c, lattice);
    EXPECT_TRUE(report.ok) << entry.name << ": " << report.divergent_config
                           << "\n" << report.failure;
  }
}

/// Small tier-targeted workloads: cases 3k are semi-interval-only, 3k+1
/// acyclic-only, 3k+2 unrestricted (so the var-var fallback path is
/// diffed too).  Kept tiny — at most 4 order terms — so 500 cases times
/// 5 lattice points stay well inside the test budget.
WorkloadConfig TierConfig(int i) {
  WorkloadConfig config;
  config.num_variables = 2 + i % 2;
  config.num_constants = i % 3 == 1 ? 0 : 1;
  config.num_subgoals = 2 + (i / 3) % 2;
  config.num_predicates = 2;
  config.num_query_comparisons = 1 + i % 2;
  config.num_views = 1 + i % 3;
  config.view_subgoals = 1 + i % 2;
  config.distractor_fraction = 0.25;
  config.semi_interval_only = i % 3 == 0;
  config.acyclic_only = i % 3 == 1;
  config.seed = 0x7162u + static_cast<uint64_t>(i);
  return config;
}

TEST(TierDifferentialTest, GeneratedCasesTierLattice) {
  const std::vector<LatticeConfig> lattice = TierLattice();
  constexpr int kCases = 500;
  for (int i = 0; i < kCases; ++i) {
    WorkloadGenerator generator(TierConfig(i));
    const WorkloadInstance instance = generator.Generate();
    const testing::FuzzCase c{instance.query, instance.views};
    const DifferentialReport report = RunConfigLattice(c, lattice);
    EXPECT_TRUE(report.ok)
        << "case " << i << " (" << report.divergent_config << ")\n"
        << "query: " << instance.query.ToString() << "\n"
        << report.failure;
    if (!report.ok) break;  // one shrunk-style report is enough
  }
}

}  // namespace
}  // namespace cqac
