// Differential suite for the coded columnar engine: every verdict,
// counter, and collected relation it produces must be byte-identical to
// the retained row engine's over the same compiled plan.
//
// Three tiers:
//   1. rewriter-level lattice sweep over the full persistent corpus,
//      pitting columnar vs row under both schedulers;
//   2. containment verdict + counter parity on >= 500 generated query
//      pairs (the engines share the enumeration, so any divergence in
//      orders_enumerated means a per-order verdict flipped);
//   3. collect-mode parity: per canonical database, the decoded columnar
//      output relation must equal the row engine's, tuple for tuple.
//
// Runs under the tsan label too: the parallel lattice points exercise the
// engine switch against the work-stealing driver.

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/orders.h"
#include "containment/cqac_containment.h"
#include "engine/canonical.h"
#include "engine/coded_eval.h"
#include "engine/evaluate.h"
#include "parser/parser.h"
#include "testing/corpus.h"
#include "testing/differential.h"

namespace cqac {
namespace {

using testing::CorpusEntry;
using testing::DifferentialReport;
using testing::LatticeConfig;
using testing::LoadCorpusDir;
using testing::RunConfigLattice;

/// The engine-axis lattice: columnar (the production default) and the
/// retained row engine, each under the serial and parallel drivers.  The
/// serial columnar point is the baseline every other point diffs against.
std::vector<LatticeConfig> EngineLattice() {
  std::vector<LatticeConfig> lattice;
  lattice.push_back(LatticeConfig{});  // columnar, serial (baseline)
  LatticeConfig columnar_parallel;
  columnar_parallel.jobs = 4;
  lattice.push_back(columnar_parallel);
  LatticeConfig row;
  row.row_engine = true;
  lattice.push_back(row);
  LatticeConfig row_parallel;
  row_parallel.row_engine = true;
  row_parallel.jobs = 4;
  lattice.push_back(row_parallel);
  return lattice;
}

TEST(ColumnarDifferentialTest, FullCorpusRowVsColumnarLattice) {
  std::string error;
  const auto corpus = LoadCorpusDir(CQAC_CORPUS_DIR, &error);
  ASSERT_TRUE(corpus.has_value()) << error;
  ASSERT_FALSE(corpus->empty());
  const std::vector<LatticeConfig> lattice = EngineLattice();
  for (const CorpusEntry& entry : *corpus) {
    const DifferentialReport report = RunConfigLattice(entry.c, lattice);
    EXPECT_TRUE(report.ok) << entry.name << ": " << report.divergent_config
                           << "\n" << report.failure;
  }
}

/// Deterministic random CQAC rules over a small shared vocabulary.  Kept
/// tiny on purpose: with <= 3 variables and <= 2 distinct constants the
/// order enumeration stays small, so 500+ pairs run in seconds while
/// still hitting every operator, constant pinning in subgoals, repeated
/// variables, boolean heads, and comparison-only variables.
class QueryGen {
 public:
  explicit QueryGen(uint32_t seed) : rng_(seed) {}

  /// One random rule with the requested head arity.  Head variables are
  /// drawn from the body so the rule is safe.
  ConjunctiveQuery Rule(int head_arity) {
    static const char* kVars[] = {"X", "Y", "Z"};
    static const char* kConsts[] = {"2", "5"};
    static const char* kOps[] = {"<", "<=", "=", "!=", ">=", ">"};
    // (predicate, arity) vocabulary shared by both sides of a pair.
    static const std::pair<const char*, int> kPreds[] = {
        {"p", 2}, {"r", 1}, {"s", 2}};

    std::vector<std::string> body_vars;
    std::ostringstream body;
    const int num_subgoals = 1 + Pick(3);
    for (int g = 0; g < num_subgoals; ++g) {
      const auto& [pred, arity] = kPreds[Pick(3)];
      if (g > 0) body << ", ";
      body << pred << "(";
      for (int a = 0; a < arity; ++a) {
        if (a > 0) body << ",";
        if (Pick(5) == 0) {
          body << kConsts[Pick(2)];
        } else {
          const char* v = kVars[Pick(3)];
          body_vars.push_back(v);
          body << v;
        }
      }
      body << ")";
    }
    std::sort(body_vars.begin(), body_vars.end());
    body_vars.erase(std::unique(body_vars.begin(), body_vars.end()),
                    body_vars.end());

    const int num_comparisons = Pick(3);
    for (int c = 0; c < num_comparisons; ++c) {
      // Left side a variable (possibly comparison-only), right side a
      // variable or a constant.
      body << ", " << kVars[Pick(3)] << " " << kOps[Pick(6)] << " ";
      if (Pick(2) == 0) {
        body << kConsts[Pick(2)];
      } else {
        body << kVars[Pick(3)];
      }
    }

    std::ostringstream rule;
    rule << "q(";
    for (int h = 0; h < head_arity; ++h) {
      if (h > 0) rule << ",";
      if (body_vars.empty()) {
        rule << kConsts[Pick(2)];
      } else {
        rule << body_vars[Pick(static_cast<int>(body_vars.size()))];
      }
    }
    rule << ") :- " << body.str();
    return Parser::MustParseRule(rule.str());
  }

 private:
  int Pick(int n) {
    return static_cast<int>(rng_() % static_cast<uint32_t>(n));
  }

  std::mt19937 rng_;
};

/// Runs CqacContainedCanonical under one engine and returns (verdict,
/// stats).
std::pair<bool, ContainmentStats> ContainUnder(const ConjunctiveQuery& q1,
                                               const ConjunctiveQuery& q2,
                                               bool row_engine) {
  const bool saved = internal::RowEngineForced();
  internal::ForceRowEngineForTest(row_engine);
  ContainmentStats stats;
  const bool verdict = CqacContainedCanonical(q1, q2, &stats);
  internal::ForceRowEngineForTest(saved);
  return {verdict, stats};
}

TEST(ColumnarDifferentialTest, GeneratedPairsVerdictAndCounterParity) {
  QueryGen gen(/*seed=*/20060331);
  constexpr int kPairs = 500;
  for (int i = 0; i < kPairs; ++i) {
    const int head_arity = i % 3 == 0 ? 0 : 1;
    const ConjunctiveQuery q1 = gen.Rule(head_arity);
    const ConjunctiveQuery q2 = gen.Rule(head_arity);
    const auto [row_verdict, row_stats] = ContainUnder(q1, q2, true);
    const auto [col_verdict, col_stats] = ContainUnder(q1, q2, false);
    ASSERT_EQ(row_verdict, col_verdict)
        << "pair " << i << "\n  q1: " << q1.ToString()
        << "\n  q2: " << q2.ToString();
    // Identical per-order verdicts imply identical early-exit points, so
    // every enumeration counter must match exactly.
    ASSERT_EQ(row_stats.orders_enumerated, col_stats.orders_enumerated)
        << "pair " << i << "\n  q1: " << q1.ToString()
        << "\n  q2: " << q2.ToString();
    ASSERT_EQ(row_stats.orders_satisfying, col_stats.orders_satisfying)
        << "pair " << i;
    ASSERT_EQ(row_stats.nodes_visited, col_stats.nodes_visited) << "pair " << i;
    ASSERT_EQ(row_stats.nodes_pruned, col_stats.nodes_pruned) << "pair " << i;
  }
}

TEST(ColumnarDifferentialTest, GeneratedPairsCollectModeParity) {
  QueryGen gen(/*seed=*/8671);
  constexpr int kPairs = 120;
  for (int i = 0; i < kPairs; ++i) {
    const ConjunctiveQuery q1 = gen.Rule(1);
    const ConjunctiveQuery q2 = gen.Rule(1);

    std::vector<Rational> constants = q1.Constants();
    for (const Rational& c : q2.Constants()) {
      if (std::find(constants.begin(), constants.end(), c) ==
          constants.end()) {
        constants.push_back(c);
      }
    }

    CanonicalFreezer freezer(q1);
    const PreparedQuery prepared(q2);
    PreparedQuery::Scratch scratch;
    CodedEvaluator coded(&prepared.plan());
    freezer.PrimeDictionary(constants, q1.AllVariables().size());
    coded.BindTo(&freezer);

    int orders_checked = 0;
    ForEachSatisfyingOrderPruned(
        q1.AllVariables(), constants, q1.comparisons(), OrderSymmetry{},
        [&](const TotalOrder& order, int64_t) {
          const FlatInstance& inst = freezer.Freeze(order);
          Relation row_out;
          Relation col_out;
          prepared.Run(inst, nullptr, &row_out, &scratch);
          coded.Run(freezer, /*match_frozen_head=*/false, &col_out);
          EXPECT_EQ(row_out.tuples(), col_out.tuples())
              << "pair " << i << " order " << orders_checked
              << "\n  q1: " << q1.ToString() << "\n  q2: " << q2.ToString();
          return ++orders_checked < 40;  // cap per pair, delta-freeze path
        });
    // Satisfying orders exist for satisfiable q1; unsatisfiable q1 rules
    // simply contribute zero databases, which is fine — the pair still
    // exercised freezer construction and binding.
  }
}

}  // namespace
}  // namespace cqac
