#include "ast/comparison.h"

#include "gtest/gtest.h"

namespace cqac {
namespace {

constexpr CompOp kAllOps[] = {CompOp::kLt, CompOp::kLe, CompOp::kEq,
                              CompOp::kNe, CompOp::kGe, CompOp::kGt};

TEST(CompOpTest, ToStringRoundTrip) {
  EXPECT_EQ(CompOpToString(CompOp::kLt), "<");
  EXPECT_EQ(CompOpToString(CompOp::kLe), "<=");
  EXPECT_EQ(CompOpToString(CompOp::kEq), "=");
  EXPECT_EQ(CompOpToString(CompOp::kNe), "!=");
  EXPECT_EQ(CompOpToString(CompOp::kGe), ">=");
  EXPECT_EQ(CompOpToString(CompOp::kGt), ">");
}

TEST(CompOpTest, FlipIsAnInvolution) {
  for (CompOp op : kAllOps) {
    EXPECT_EQ(FlipOp(FlipOp(op)), op) << CompOpToString(op);
  }
}

TEST(CompOpTest, NegateIsAnInvolution) {
  for (CompOp op : kAllOps) {
    EXPECT_EQ(NegateOp(NegateOp(op)), op) << CompOpToString(op);
  }
}

TEST(CompOpTest, FlipAgreesWithSemantics) {
  // a op b  iff  b flip(op) a, checked over a 5x5 grid.
  for (CompOp op : kAllOps) {
    for (int a = -2; a <= 2; ++a) {
      for (int b = -2; b <= 2; ++b) {
        EXPECT_EQ(EvalCompOp(Rational(a), op, Rational(b)),
                  EvalCompOp(Rational(b), FlipOp(op), Rational(a)))
            << a << CompOpToString(op) << b;
      }
    }
  }
}

TEST(CompOpTest, NegateAgreesWithSemantics) {
  for (CompOp op : kAllOps) {
    for (int a = -2; a <= 2; ++a) {
      for (int b = -2; b <= 2; ++b) {
        EXPECT_NE(EvalCompOp(Rational(a), op, Rational(b)),
                  EvalCompOp(Rational(a), NegateOp(op), Rational(b)))
            << a << CompOpToString(op) << b;
      }
    }
  }
}

TEST(CompOpTest, OpenOperators) {
  EXPECT_TRUE(IsOpenOp(CompOp::kLt));
  EXPECT_TRUE(IsOpenOp(CompOp::kGt));
  EXPECT_FALSE(IsOpenOp(CompOp::kLe));
  EXPECT_FALSE(IsOpenOp(CompOp::kGe));
  EXPECT_FALSE(IsOpenOp(CompOp::kEq));
  EXPECT_FALSE(IsOpenOp(CompOp::kNe));
}

TEST(CompOpTest, EvalOnRationals) {
  EXPECT_TRUE(EvalCompOp(Rational(1, 3), CompOp::kLt, Rational(1, 2)));
  EXPECT_FALSE(EvalCompOp(Rational(1, 2), CompOp::kLt, Rational(1, 2)));
  EXPECT_TRUE(EvalCompOp(Rational(1, 2), CompOp::kLe, Rational(2, 4)));
  EXPECT_TRUE(EvalCompOp(Rational(1, 2), CompOp::kEq, Rational(2, 4)));
  EXPECT_TRUE(EvalCompOp(Rational(1, 2), CompOp::kNe, Rational(1, 3)));
}

TEST(ComparisonTest, FlippedAndNegated) {
  const Comparison c(Term::Variable("X"), CompOp::kLt, Term::Constant(5));
  EXPECT_EQ(c.Flipped().ToString(), "5 > X");
  EXPECT_EQ(c.Negated().ToString(), "X >= 5");
  EXPECT_EQ(c.Flipped().Flipped(), c);
  EXPECT_EQ(c.Negated().Negated(), c);
}

TEST(ComparisonTest, EqualityAndOrdering) {
  const Comparison a(Term::Variable("X"), CompOp::kLt, Term::Constant(5));
  const Comparison b(Term::Variable("X"), CompOp::kLe, Term::Constant(5));
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Comparison(Term::Variable("X"), CompOp::kLt,
                          Term::Constant(5)));
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace cqac
