// Differential and property tests for the incremental Phase-1 pipeline:
// the prefix-pruned satisfying-order enumeration (against the naive
// enumerate-then-filter reference), symmetry-orbit expansion, delta
// freezing, the indexed frozen-tuple matcher, and the fingerprint memo.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/orders.h"
#include "engine/canonical.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/view_tuples.h"
#include "runtime/memo_cache.h"
#include "workload/generator.h"

namespace cqac {
namespace {

// ---------------------------------------------------------------------------
// Random AC patterns.

struct Pattern {
  std::vector<std::string> variables;
  std::vector<Rational> constants;
  std::vector<Comparison> axioms;
};

Pattern RandomPattern(std::mt19937* rng) {
  Pattern p;
  std::uniform_int_distribution<int> num_vars(2, 5);
  std::uniform_int_distribution<int> num_consts(0, 2);
  std::uniform_int_distribution<int> num_axioms(0, 5);
  const int v = num_vars(*rng);
  for (int i = 0; i < v; ++i) p.variables.push_back("X" + std::to_string(i));
  const int c = num_consts(*rng);
  for (int i = 0; i < c; ++i) p.constants.push_back(Rational(3 * i + 1));

  std::uniform_int_distribution<int> op_pick(0, 5);
  const CompOp ops[] = {CompOp::kLt, CompOp::kLe, CompOp::kEq,
                        CompOp::kNe, CompOp::kGe, CompOp::kGt};
  // Terms: the pattern's variables and constants, with a small chance of an
  // out-of-universe constant or variable to exercise the fallback path.
  auto term = [&]() -> Term {
    std::uniform_int_distribution<int> pick(0, v + c + 1);
    const int t = pick(*rng);
    if (t < v) return Term::Variable(p.variables[t]);
    if (t < v + c) return Term::Constant(p.constants[t - v]);
    std::uniform_int_distribution<int> kind(0, 9);
    if (kind(*rng) == 0) return Term::Variable("Z_out");
    if (kind(*rng) == 1) return Term::Constant(Rational(999));
    // Mostly stay in-universe so the fast path gets real coverage.
    std::uniform_int_distribution<int> again(0, v + c - 1);
    const int u = again(*rng);
    return u < v ? Term::Variable(p.variables[u])
                 : Term::Constant(p.constants[u - v]);
  };
  const int a = num_axioms(*rng);
  for (int i = 0; i < a; ++i) {
    p.axioms.push_back(Comparison(term(), ops[op_pick(*rng)], term()));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Orbit expansion: all orders reachable from `order` by permuting, within
// each group, the members' names across the slots they occupy.

void Permutations(std::vector<std::string> members,
                  std::vector<std::vector<std::string>>* out) {
  std::sort(members.begin(), members.end());
  do {
    out->push_back(members);
  } while (std::next_permutation(members.begin(), members.end()));
}

std::vector<std::string> OrbitStrings(
    const TotalOrder& order, const std::vector<std::vector<std::string>>& groups) {
  // Positions (block, index-in-block) occupied by each group, in order.
  std::set<std::string> expanded;
  std::vector<std::vector<std::pair<size_t, size_t>>> slots(groups.size());
  std::map<std::string, size_t> group_of;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const std::string& m : groups[g]) group_of[m] = g;
  }
  for (size_t b = 0; b < order.blocks.size(); ++b) {
    for (size_t i = 0; i < order.blocks[b].variables.size(); ++i) {
      const auto it = group_of.find(order.blocks[b].variables[i]);
      if (it != group_of.end()) slots[it->second].push_back({b, i});
    }
  }
  // Cartesian product of per-group permutations, applied to a copy.
  std::vector<std::vector<std::vector<std::string>>> perms(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    std::vector<std::string> present;
    for (const auto& [b, i] : slots[g]) {
      present.push_back(order.blocks[b].variables[i]);
    }
    Permutations(present, &perms[g]);
  }
  std::vector<size_t> idx(groups.size(), 0);
  while (true) {
    TotalOrder variant = order;
    for (size_t g = 0; g < groups.size(); ++g) {
      for (size_t s = 0; s < slots[g].size(); ++s) {
        const auto& [b, i] = slots[g][s];
        variant.blocks[b].variables[i] = perms[g][idx[g]][s];
      }
    }
    // Canonicalize within-block member listing: block membership is a set,
    // but ToString renders insertion order, so sort each block's variables
    // for comparison purposes.
    for (OrderBlock& block : variant.blocks) {
      std::sort(block.variables.begin(), block.variables.end());
    }
    expanded.insert(variant.ToString());
    size_t g = 0;
    for (; g < groups.size(); ++g) {
      if (++idx[g] < perms[g].size()) break;
      idx[g] = 0;
    }
    if (g == groups.size()) break;
  }
  return std::vector<std::string>(expanded.begin(), expanded.end());
}

std::string CanonicalString(const TotalOrder& order) {
  TotalOrder copy = order;
  for (OrderBlock& block : copy.blocks) {
    std::sort(block.variables.begin(), block.variables.end());
  }
  return copy.ToString();
}

// Groups valid for *enumeration-level* symmetry in these tests: variables
// that appear in no axiom are interchangeable for the bare "is the order
// satisfying" verdict (the axioms cannot see them).
std::vector<std::vector<std::string>> AxiomFreeGroups(const Pattern& p) {
  std::set<std::string> in_axioms;
  for (const Comparison& c : p.axioms) {
    if (c.lhs().IsVariable()) in_axioms.insert(c.lhs().name());
    if (c.rhs().IsVariable()) in_axioms.insert(c.rhs().name());
  }
  std::vector<std::string> free_vars;
  for (const std::string& v : p.variables) {
    if (in_axioms.find(v) == in_axioms.end()) free_vars.push_back(v);
  }
  if (free_vars.size() < 2) return {};
  return {free_vars};
}

TEST(PrunedOrderDifferentialTest, MatchesLegacyOn500Patterns) {
  std::mt19937 rng(20260807);
  for (int round = 0; round < 500; ++round) {
    const Pattern p = RandomPattern(&rng);

    std::vector<std::string> legacy;
    OrderEnumerationStats legacy_stats;
    internal::ForEachSatisfyingOrderLegacy(
        p.variables, p.constants, p.axioms,
        [&legacy](const TotalOrder& order) {
          legacy.push_back(order.ToString());
          return true;
        },
        &legacy_stats);

    // 1. Without symmetry: exactly the same sequence, in the same order.
    std::vector<std::string> pruned;
    OrderEnumerationStats pruned_stats;
    ForEachSatisfyingOrderPruned(
        p.variables, p.constants, p.axioms, OrderSymmetry{},
        [&pruned](const TotalOrder& order, int64_t mult) {
          EXPECT_EQ(mult, 1);
          pruned.push_back(order.ToString());
          return true;
        },
        &pruned_stats);
    ASSERT_EQ(pruned, legacy) << "round " << round;
    EXPECT_EQ(pruned_stats.orders_weighted, legacy_stats.orders_weighted);
    EXPECT_LE(pruned_stats.nodes_visited, legacy_stats.nodes_visited);

    // 2. With symmetry: orbit expansion reproduces the legacy multiset and
    // every multiplicity equals its orbit size.  Skipped for patterns with
    // out-of-universe axiom terms: the fallback path deliberately ignores
    // symmetry (every order is emitted with multiplicity 1).
    bool in_universe = true;
    for (const Comparison& c : p.axioms) {
      for (const Term* t : {&c.lhs(), &c.rhs()}) {
        if (t->IsVariable()) {
          in_universe &= std::find(p.variables.begin(), p.variables.end(),
                                   t->name()) != p.variables.end();
        } else {
          in_universe &= std::find(p.constants.begin(), p.constants.end(),
                                   t->value()) != p.constants.end();
        }
      }
    }
    if (!in_universe) continue;
    OrderSymmetry symmetry;
    symmetry.groups = AxiomFreeGroups(p);
    std::vector<std::string> expanded;
    int64_t weighted = 0;
    ForEachSatisfyingOrderPruned(
        p.variables, p.constants, p.axioms, symmetry,
        [&](const TotalOrder& order, int64_t mult) {
          const std::vector<std::string> orbit =
              OrbitStrings(order, symmetry.groups);
          EXPECT_EQ(static_cast<int64_t>(orbit.size()), mult)
              << "round " << round << " order " << order.ToString();
          expanded.insert(expanded.end(), orbit.begin(), orbit.end());
          weighted += mult;
          return true;
        });
    std::vector<std::string> legacy_canonical;
    internal::ForEachSatisfyingOrderLegacy(
        p.variables, p.constants, p.axioms,
        [&legacy_canonical](const TotalOrder& order) {
          legacy_canonical.push_back(CanonicalString(order));
          return true;
        });
    std::sort(expanded.begin(), expanded.end());
    std::sort(legacy_canonical.begin(), legacy_canonical.end());
    ASSERT_EQ(expanded, legacy_canonical) << "round " << round;
    EXPECT_EQ(weighted, static_cast<int64_t>(legacy.size()));
  }
}

TEST(PrunedOrderDifferentialTest, EarlyStopIsHonored) {
  std::mt19937 rng(7);
  for (int round = 0; round < 50; ++round) {
    const Pattern p = RandomPattern(&rng);
    int64_t total = 0;
    ForEachSatisfyingOrderPruned(
        p.variables, p.constants, p.axioms, OrderSymmetry{},
        [&total](const TotalOrder&, int64_t) { return ++total < 3; });
    int64_t legacy_total = 0;
    internal::ForEachSatisfyingOrderLegacy(
        p.variables, p.constants, p.axioms,
        [&legacy_total](const TotalOrder&) { return ++legacy_total < 3; });
    EXPECT_EQ(total, legacy_total);
  }
}

TEST(PrunedOrderTest, ChainPrunesAtLeastFiveFold) {
  // The bench_canonical chained workload: X0 < X1 < ... < X4.  The naive
  // tree has 1+1+3+13+75+541 = 634 nodes; the pruned tree admits exactly
  // one placement per level.
  std::vector<std::string> vars;
  std::vector<Comparison> axioms;
  for (int i = 0; i < 5; ++i) vars.push_back("X" + std::to_string(i));
  for (int i = 0; i + 1 < 5; ++i) {
    axioms.push_back(Comparison(Term::Variable(vars[i]), CompOp::kLt,
                                Term::Variable(vars[i + 1])));
  }
  OrderEnumerationStats legacy_stats;
  internal::ForEachSatisfyingOrderLegacy(
      vars, {}, axioms, [](const TotalOrder&) { return true; },
      &legacy_stats);
  OrderEnumerationStats pruned_stats;
  ForEachSatisfyingOrderPruned(
      vars, {}, axioms, OrderSymmetry{},
      [](const TotalOrder&, int64_t) { return true; }, &pruned_stats);
  EXPECT_EQ(legacy_stats.nodes_visited, 634);
  EXPECT_EQ(legacy_stats.orders_emitted, 1);
  EXPECT_EQ(pruned_stats.orders_emitted, 1);
  EXPECT_EQ(pruned_stats.nodes_visited, 6);
  EXPECT_GE(legacy_stats.nodes_visited, 5 * pruned_stats.nodes_visited);
}

TEST(PrunedOrderTest, TransitiveClosurePrunesImpliedViolations) {
  // X < Y, Y < Z: placing Z before X violates only the *implied* X < Z.
  // The closure catches it at Z's placement; count stays well below the
  // direct-checks-only tree.
  const std::vector<std::string> vars = {"X", "Z", "Y"};
  const std::vector<Comparison> axioms = {
      Comparison(Term::Variable("X"), CompOp::kLt, Term::Variable("Y")),
      Comparison(Term::Variable("Y"), CompOp::kLt, Term::Variable("Z"))};
  OrderEnumerationStats stats;
  std::vector<std::string> orders;
  ForEachSatisfyingOrderPruned(
      vars, {}, axioms, OrderSymmetry{},
      [&orders](const TotalOrder& order, int64_t) {
        orders.push_back(order.ToString());
        return true;
      },
      &stats);
  ASSERT_EQ(orders, std::vector<std::string>{"X < Y < Z"});
  // Root + X + {Z after X} + {Y between}: the X-Z-inverted subtree dies at
  // Z's placement, before Y is ever tried.
  EXPECT_EQ(stats.nodes_visited, 4);
}

TEST(PrunedOrderTest, UnsatisfiableAxiomsEmitNothing) {
  const std::vector<std::string> vars = {"X", "Y"};
  const std::vector<Comparison> cases[] = {
      {Comparison(Term::Variable("X"), CompOp::kLt, Term::Variable("X"))},
      {Comparison(Term::Variable("X"), CompOp::kLt, Term::Variable("Y")),
       Comparison(Term::Variable("Y"), CompOp::kLt, Term::Variable("X"))},
      {Comparison(Term::Constant(Rational(3)), CompOp::kGt,
                  Term::Constant(Rational(5)))},
      {Comparison(Term::Variable("X"), CompOp::kLe,
                  Term::Constant(Rational(1))),
       Comparison(Term::Variable("X"), CompOp::kGe,
                  Term::Constant(Rational(2)))}};
  for (const auto& axioms : cases) {
    std::vector<Rational> constants;
    for (const Comparison& c : axioms) {
      if (c.lhs().IsConstant()) constants.push_back(c.lhs().value());
      if (c.rhs().IsConstant()) constants.push_back(c.rhs().value());
    }
    int64_t emitted = 0;
    ForEachSatisfyingOrderPruned(
        vars, constants, axioms, OrderSymmetry{},
        [&emitted](const TotalOrder&, int64_t) {
          ++emitted;
          return true;
        });
    EXPECT_EQ(emitted, 0);
  }
}

TEST(InterchangeableVariableGroupsTest, FindsStructuralAutomorphisms) {
  // Y and Z both appear once in the same position of the same predicate;
  // W is pinned by the head, V by a comparison.
  const ConjunctiveQuery q = Parser::MustParseRule(
      "q(W) :- r(W, Y), r(W, Z), s(V), V < 5");
  const auto groups = InterchangeableVariableGroups(q);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::string>{"Y", "Z"}));
}

TEST(InterchangeableVariableGroupsTest, PositionMattersForSwaps) {
  // Swapping X and Y maps r(X, Y) to r(Y, X), which is a different atom:
  // no group.  (This is the soundness case: [X][Y] and [Y][X] can get
  // different verdicts from a second query comparing the two columns.)
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- r(X, Y)");
  EXPECT_TRUE(InterchangeableVariableGroups(q).empty());
  // But two independent atoms over distinct unary predicates are NOT
  // interchangeable either: p(X), s(Y) swapped gives p(Y), s(X).
  const ConjunctiveQuery q2 = Parser::MustParseRule("q() :- p(X), s(Y)");
  EXPECT_TRUE(InterchangeableVariableGroups(q2).empty());
  // Same predicate, same column: interchangeable.
  const ConjunctiveQuery q3 = Parser::MustParseRule("q() :- p(X), p(Y)");
  const auto groups = InterchangeableVariableGroups(q3);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::string>{"X", "Y"}));
}

TEST(InterchangeableVariableGroupsTest, TransitivityViaSharedPartner) {
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- p(A), p(B), p(C)");
  const auto groups = InterchangeableVariableGroups(q);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::string>{"A", "B", "C"}));
}

// ---------------------------------------------------------------------------
// Delta freezing: a freezer that patches rows in place across an arbitrary
// order walk must produce the same instance a from-scratch refill does.

std::string SerializeInstance(const CanonicalFreezer& freezer) {
  const FlatInstance& inst = freezer.instance();
  std::string s;
  for (uint32_t rel = 0; rel < inst.NumRelations(); ++rel) {
    s += "rel" + std::to_string(rel) + ":";
    // Rows are multiset-semantics but the freezer's row layout is fixed,
    // so even the row order must agree.
    for (size_t r = 0; r < inst.RowCount(rel); ++r) {
      s += "(";
      for (int a = 0; a < inst.Arity(rel); ++a) {
        s += inst.Row(rel, r)[a].ToString() + ",";
      }
      s += ")";
    }
    s += ";";
  }
  s += "head:(";
  for (const Rational& v : freezer.frozen_head()) s += v.ToString() + ",";
  s += ")";
  return s;
}

TEST(DeltaFreezeTest, MatchesFullFreezeAcrossFullEnumeration) {
  const std::vector<ConjunctiveQuery> queries = {
      Parser::MustParseRule("q(X) :- r(X, Y), s(Y, Z), X < 3"),
      Parser::MustParseRule("q() :- p(A), p(B), r(A, B)"),
      Parser::MustParseRule("q(U, V) :- e(U, W), e(W, V), f(W)"),
  };
  for (const ConjunctiveQuery& q : queries) {
    CanonicalFreezer delta(q);
    CanonicalFreezer full(q);
    const std::vector<Rational> constants = q.Constants();
    int64_t orders = 0;
    ForEachTotalOrder(q.AllVariables(), constants,
                      [&](const TotalOrder& order) {
                        delta.Freeze(order);
                        full.FreezeFull(order);
                        EXPECT_EQ(SerializeInstance(delta),
                                  SerializeInstance(full))
                            << q.ToString() << " on " << order.ToString();
                        return ++orders < 2000;
                      });
    EXPECT_GT(orders, 0);
  }
}

TEST(DeltaFreezeTest, PurityAfterArbitraryJumps) {
  // The delta path must be a function of the current order only: revisit
  // orders in a shuffled sequence and require byte-equal instances on the
  // repeat visit.
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- r(X, Y), s(Y, Z), t(Z, W)");
  const std::vector<TotalOrder> orders =
      EnumerateTotalOrders(q.AllVariables(), {});
  CanonicalFreezer delta(q);
  std::map<std::string, std::string> first_visit;
  std::vector<size_t> sequence;
  std::mt19937 rng(42);
  std::uniform_int_distribution<size_t> pick(0, orders.size() - 1);
  for (int i = 0; i < 500; ++i) sequence.push_back(pick(rng));
  for (const size_t i : sequence) {
    delta.Freeze(orders[i]);
    const std::string s = SerializeInstance(delta);
    const auto [it, inserted] =
        first_visit.emplace(orders[i].ToString(), s);
    if (!inserted) {
      EXPECT_EQ(it->second, s) << "revisit of " << orders[i].ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Indexed frozen-tuple matcher: verdict-identical to the per-tuple
// MatchesFrozenViewTuple scan on every canonical database.

TEST(FrozenTupleMatcherTest, MatchesLegacyScanOnWorkload) {
  WorkloadConfig config;
  config.num_variables = 4;
  config.num_constants = 2;
  config.num_subgoals = 3;
  config.num_views = 4;
  config.seed = 1000;
  const WorkloadInstance instance = WorkloadGenerator(config).Generate();
  const RewriteOptions options;
  const RewriteWork work =
      PrepareRewriteWork(instance.query, instance.views, options);
  ASSERT_FALSE(work.mcds.empty());

  CanonicalFreezer freezer(instance.query);
  ViewTupleEvaluator evaluator(instance.views);
  std::vector<Atom> mcd_tuples;
  for (const Mcd& mcd : work.mcds) mcd_tuples.push_back(mcd.view_tuple);
  FrozenTupleMatcher matcher(mcd_tuples, freezer);

  int64_t orders = 0;
  ForEachTotalOrder(
      instance.query.AllVariables(), work.constants,
      [&](const TotalOrder& order) {
        // Legacy path: map-based database, per-tuple scan.
        const CanonicalDatabase cdb = FreezeQuery(instance.query, order);
        const ViewTuples tuples = ComputeViewTuples(instance.views, cdb);
        // New path: delta freeze, epoch-gated evaluation, indexed probe.
        freezer.Freeze(order);
        evaluator.Refresh(freezer);
        EXPECT_EQ(evaluator.total(), tuples.total) << order.ToString();
        matcher.BindDatabase(evaluator);
        for (size_t m = 0; m < work.mcds.size(); ++m) {
          EXPECT_EQ(matcher.Matches(m),
                    MatchesFrozenViewTuple(work.mcds[m].view_tuple, tuples,
                                           cdb))
              << "mcd " << m << " on " << order.ToString();
        }
        return ++orders < 400;
      });
  EXPECT_GT(orders, 0);
}

// ---------------------------------------------------------------------------
// Fingerprint memo: byte-identical results, exhaustive hit+miss coverage.

void ExpectSameResultModuloMemoCounters(const RewriteResult& off,
                                        const RewriteResult& on) {
  EXPECT_EQ(off.outcome, on.outcome);
  EXPECT_EQ(off.failure_reason, on.failure_reason);
  ASSERT_EQ(off.rewriting.size(), on.rewriting.size());
  for (size_t i = 0; i < off.rewriting.disjuncts().size(); ++i) {
    EXPECT_EQ(off.rewriting.disjuncts()[i].ToString(),
              on.rewriting.disjuncts()[i].ToString());
  }
  EXPECT_EQ(off.stats.canonical_databases, on.stats.canonical_databases);
  EXPECT_EQ(off.stats.kept_canonical_databases,
            on.stats.kept_canonical_databases);
  EXPECT_EQ(off.stats.v0_variants, on.stats.v0_variants);
  EXPECT_EQ(off.stats.mcds_formed, on.stats.mcds_formed);
  EXPECT_EQ(off.stats.mcds_kept_total, on.stats.mcds_kept_total);
  EXPECT_EQ(off.stats.view_tuples_total, on.stats.view_tuples_total);
  EXPECT_EQ(off.stats.phase2_checks, on.stats.phase2_checks);
  EXPECT_EQ(off.stats.phase2_orders, on.stats.phase2_orders);
}

TEST(Phase1MemoTest, DedupOnAndOffAreByteIdentical) {
  WorkloadConfig config;
  config.num_variables = 4;
  config.num_constants = 2;
  config.num_subgoals = 3;
  config.num_views = 4;
  for (uint64_t seed = 1000; seed < 1003; ++seed) {
    config.seed = seed;
    const WorkloadInstance instance = WorkloadGenerator(config).Generate();
    RewriteOptions off_options;
    off_options.phase1_dedup = false;
    RewriteOptions on_options;
    on_options.phase1_dedup = true;
    const RewriteResult off =
        EquivalentRewriter(instance.query, instance.views, off_options).Run();
    const RewriteResult on =
        EquivalentRewriter(instance.query, instance.views, on_options).Run();
    ExpectSameResultModuloMemoCounters(off, on);
    EXPECT_EQ(off.stats.phase1_memo_hits, 0);
    EXPECT_EQ(off.stats.phase1_memo_misses, 0);
    // Every database past the keep-test either hits or misses the memo,
    // except a no-view-tuples short-circuit (which ends the run).
    if (on.outcome == RewriteOutcome::kRewritingFound) {
      EXPECT_EQ(on.stats.phase1_memo_hits + on.stats.phase1_memo_misses,
                on.stats.kept_canonical_databases)
          << "seed " << seed;
      EXPECT_GT(on.stats.phase1_memo_hits, 0) << "seed " << seed;
    }
  }
}

TEST(Phase1MemoTest, ParallelRunSharesOneMemoAndStaysIdentical) {
  WorkloadConfig config;
  config.num_variables = 4;
  config.num_constants = 2;
  config.num_subgoals = 3;
  config.num_views = 4;
  config.seed = 1001;
  const WorkloadInstance instance = WorkloadGenerator(config).Generate();
  RewriteOptions serial_options;
  serial_options.phase1_dedup = false;
  RewriteOptions parallel_options;
  parallel_options.phase1_dedup = true;
  parallel_options.jobs = 4;
  const RewriteResult serial =
      EquivalentRewriter(instance.query, instance.views, serial_options).Run();
  const RewriteResult parallel =
      EquivalentRewriter(instance.query, instance.views, parallel_options)
          .Run();
  ExpectSameResultModuloMemoCounters(serial, parallel);
  // The hit/miss *split* races (first writer wins), but the total is the
  // number of databases that consulted the memo.
  if (parallel.outcome == RewriteOutcome::kRewritingFound) {
    EXPECT_EQ(
        parallel.stats.phase1_memo_hits + parallel.stats.phase1_memo_misses,
        parallel.stats.kept_canonical_databases);
  }
}

TEST(Phase1MemoTest, ExplainBypassesTheMemo) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- r(X, Y), X < 5");
  ViewSet views;
  views.Add(Parser::MustParseRule("v(A, B) :- r(A, B)"));
  RewriteOptions options;
  options.explain = true;
  options.phase1_dedup = true;
  const RewriteResult result = EquivalentRewriter(q, views, options).Run();
  EXPECT_EQ(result.stats.phase1_memo_hits, 0);
  EXPECT_EQ(result.stats.phase1_memo_misses, 0);
  EXPECT_FALSE(result.trace.databases.empty());
}

TEST(Phase1MemoTest, VerifyOnHitNeverReturnsAForeignEntry) {
  // Same fingerprint can only collide across distinct keys by luck; force
  // the issue by storing under one key and probing with another that maps
  // to the same shard bucket only if the fingerprints truly collide (they
  // will not, but the Get must key-compare regardless).
  Phase1Memo memo;
  Phase1Entry entry;
  entry.key = "alpha";
  entry.combination_exists = true;
  entry.mcds_kept = 3;
  memo.Put(FingerprintPhase1Key("alpha"), entry);
  Phase1Entry out;
  EXPECT_TRUE(memo.Get(FingerprintPhase1Key("alpha"), "alpha", &out));
  EXPECT_EQ(out.mcds_kept, 3);
  // Probing the *right* fingerprint with the *wrong* key must miss.
  EXPECT_FALSE(memo.Get(FingerprintPhase1Key("alpha"), "beta", &out));
  const MemoCacheStats stats = memo.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(Phase1MemoTest, CapacityBoundsResidentEntries) {
  Phase1Memo memo(/*capacity=*/32, /*num_shards=*/4);
  for (int i = 0; i < 1000; ++i) {
    Phase1Entry entry;
    entry.key = "key" + std::to_string(i);
    memo.Put(FingerprintPhase1Key(entry.key), entry);
  }
  EXPECT_LE(memo.size(), 32u);
  const MemoCacheStats stats = memo.Stats();
  EXPECT_EQ(stats.insertions + stats.evictions, 1000);
}

TEST(Phase1MemoTest, ConcurrentHammerKeepsEntriesConsistent) {
  // Exercised under tsan via the test's label.  Writers race on a small
  // key universe; first-writer-wins means every Get must observe the
  // deterministic payload derived from the key, never a torn mix.
  Phase1Memo memo(/*capacity=*/256, /*num_shards=*/4);
  constexpr int kKeys = 64;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<int64_t> verified{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(t);
      std::uniform_int_distribution<int> pick(0, kKeys - 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = pick(rng);
        const std::string key = "db-key-" + std::to_string(k);
        const Phase1Fingerprint fp = FingerprintPhase1Key(key);
        Phase1Entry out;
        if (memo.Get(fp, key, &out)) {
          // Payload is a pure function of the key for every writer.
          EXPECT_EQ(out.key, key);
          EXPECT_EQ(out.mcds_kept, k);
          ASSERT_EQ(out.body_mcds.size(), 1u);
          EXPECT_EQ(out.body_mcds[0], k);
          verified.fetch_add(1, std::memory_order_relaxed);
        } else {
          Phase1Entry entry;
          entry.key = key;
          entry.combination_exists = (k % 2) == 0;
          entry.mcds_kept = k;
          entry.body_mcds = {k};
          entry.body_vars = {"X" + std::to_string(k)};
          memo.Put(fp, entry);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(verified.load(), 0);
  EXPECT_LE(memo.size(), 256u);
  const MemoCacheStats stats = memo.Stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
}

}  // namespace
}  // namespace cqac
