#include "runtime/memo_cache.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(MemoCacheTest, GetMissThenHit) {
  MemoCache cache(16, 1);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", true);
  cache.Put("b", false);
  ASSERT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(*cache.Get("a"));
  ASSERT_TRUE(cache.Get("b").has_value());
  EXPECT_FALSE(*cache.Get("b"));
  EXPECT_EQ(cache.size(), 2u);

  const MemoCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 4);
  EXPECT_EQ(stats.insertions, 2);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(MemoCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so the capacity and recency order are exact.
  MemoCache cache(2, 1);
  cache.Put("a", true);
  cache.Put("b", true);
  ASSERT_TRUE(cache.Get("a").has_value());  // "a" is now most recent
  cache.Put("c", true);                     // evicts "b"
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Stats().evictions, 1);
}

TEST(MemoCacheTest, PutRefreshesExistingKey) {
  MemoCache cache(2, 1);
  cache.Put("a", true);
  cache.Put("b", true);
  cache.Put("a", false);  // refresh, not insert: no eviction
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Stats().evictions, 0);
  ASSERT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(*cache.Get("a"));
}

TEST(MemoCacheTest, ShardsSplitCapacity) {
  MemoCache cache(64, 16);
  EXPECT_EQ(cache.num_shards(), 16);
  // Insert plenty of keys: residency never exceeds the total budget.
  for (int i = 0; i < 1000; ++i) {
    cache.Put("key" + std::to_string(i), i % 2 == 0);
  }
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.Stats().evictions, 0);
}

TEST(MemoCacheTest, ConcurrentAccessIsSafe) {
  MemoCache cache(1024, 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t * 131 + i) % 200);
        if (auto hit = cache.Get(key); !hit.has_value()) {
          cache.Put(key, true);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MemoCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, 2000);
  EXPECT_LE(cache.size(), 200u);
}

TEST(DedupTableTest, FirstInsertionWins) {
  DedupTable table(4);
  EXPECT_TRUE(table.Insert("x"));
  EXPECT_FALSE(table.Insert("x"));
  EXPECT_TRUE(table.Insert("y"));
  EXPECT_TRUE(table.Contains("x"));
  EXPECT_FALSE(table.Contains("z"));
  EXPECT_EQ(table.size(), 2);
}

TEST(DedupTableTest, ConcurrentInsertExactlyOneWinner) {
  DedupTable table;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (table.Insert("key" + std::to_string(i))) winners.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(winners.load(), 100);
  EXPECT_EQ(table.size(), 100);
}

TEST(NormalizedQueryKeyTest, AlphaEquivalentQueriesShareKeys) {
  const ConjunctiveQuery q1 =
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y), X <= 5");
  const ConjunctiveQuery q2 =
      Parser::MustParseRule("h(A) :- p(A,B), r(B), A <= 5");
  EXPECT_EQ(NormalizedQueryKey(q1), NormalizedQueryKey(q2));
}

TEST(NormalizedQueryKeyTest, DistinguishesStructure) {
  const ConjunctiveQuery q1 =
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y)");
  const ConjunctiveQuery swapped =
      Parser::MustParseRule("q(X) :- p(Y,X), r(Y)");
  const ConjunctiveQuery different_constant =
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y), X <= 5");
  const ConjunctiveQuery collapsed =
      Parser::MustParseRule("q(X) :- p(X,X), r(X)");
  EXPECT_NE(NormalizedQueryKey(q1), NormalizedQueryKey(swapped));
  EXPECT_NE(NormalizedQueryKey(q1), NormalizedQueryKey(different_constant));
  EXPECT_NE(NormalizedQueryKey(q1), NormalizedQueryKey(collapsed));
}

TEST(NormalizedQueryKeyTest, ContainmentKeyIsDirectional) {
  const ConjunctiveQuery q1 = Parser::MustParseRule("q(X) :- p(X,Y)");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(X) :- p(X,Y), r(Y)");
  EXPECT_NE(ContainmentMemoKey(q1, q2), ContainmentMemoKey(q2, q1));
  EXPECT_EQ(ContainmentMemoKey(q1, q2), ContainmentMemoKey(q1, q2));
}

}  // namespace
}  // namespace cqac
