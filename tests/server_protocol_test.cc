#include "server/protocol.h"

#include <string>

#include "gtest/gtest.h"
#include "server/json.h"

namespace cqac {
namespace server {
namespace {

// ---------------------------------------------------------------------------
// JSON

TEST(JsonTest, ParsesScalarsAndContainers) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(
      "{\"a\": 1, \"b\": -2.5, \"c\": \"x\", \"d\": [true, false, null]}", &v,
      &error))
      << error;
  ASSERT_EQ(v.type(), JsonValue::Type::kObject);
  EXPECT_EQ(v.FindInt("a", 0), 1);
  ASSERT_NE(v.Find("b"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("b")->AsDouble(), -2.5);
  EXPECT_EQ(v.FindString("c", ""), "x");
  ASSERT_NE(v.Find("d"), nullptr);
  ASSERT_EQ(v.Find("d")->AsArray().size(), 3u);
  EXPECT_TRUE(v.Find("d")->AsArray()[0].AsBool());
  EXPECT_TRUE(v.Find("d")->AsArray()[2].is_null());
}

TEST(JsonTest, DecodesEscapesAndUnicode) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("\"a\\n\\t\\\"\\\\ \\u0041 \\u00e9\"", &v, &error))
      << error;
  EXPECT_EQ(v.AsString(), "a\n\t\"\\ A \xC3\xA9");
}

TEST(JsonTest, RejectsTrailingGarbage) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{} x", &v, &error));
  EXPECT_FALSE(ParseJson("1 2", &v, &error));
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < kMaxJsonDepth + 8; ++i) deep += "[";
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson(deep, &v, &error));
  EXPECT_NE(error.find("nest"), std::string::npos);
}

TEST(JsonTest, TypedLookupsReportMistypedFields) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("{\"n\": \"not a number\"}", &v, &error));
  bool ok = true;
  EXPECT_EQ(v.FindInt("n", 7, &ok), 7);
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_EQ(v.FindInt("absent", 7, &ok), 7);
  EXPECT_TRUE(ok);  // Absent is fine; only present-but-mistyped trips ok.
}

TEST(JsonTest, StringEscaperRoundTrips) {
  std::string out;
  AppendJsonString(&out, "a\nb\"c\\d\x01");
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(out, &v, &error)) << error;
  EXPECT_EQ(v.AsString(), "a\nb\"c\\d\x01");
}

// ---------------------------------------------------------------------------
// Framing

TEST(FrameTest, RoundTripsThroughTheDecoder) {
  Frame in;
  in.id = 0x1122334455667788ULL;
  in.body = "{\"hello\": 1}";
  const std::string wire = EncodeFrame(in);
  EXPECT_EQ(wire.size(), 4 + kFrameIdBytes + in.body.size());

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame out;
  std::string error;
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.body, in.body);
  EXPECT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, DecodesByteAtATime) {
  Frame in;
  in.id = 42;
  in.body = "payload";
  const std::string wire = EncodeFrame(in);

  FrameDecoder decoder;
  Frame out;
  std::string error;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(wire.data() + i, 1);
    ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kNeedMore)
        << "frame complete after only " << i + 1 << " bytes";
  }
  decoder.Feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(out.body, "payload");
}

TEST(FrameTest, DecodesSeveralFramesFromOneFeed) {
  Frame a, b;
  a.id = 1;
  a.body = "first";
  b.id = 2;
  b.body = "second";
  const std::string wire = EncodeFrame(a) + EncodeFrame(b);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame out;
  std::string error;
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.body, "first");
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.body, "second");
  EXPECT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kNeedMore);
}

TEST(FrameTest, UndersizedLengthIsAStickyError) {
  FrameDecoder decoder;
  // length=3 < the 8-byte id: unframeable.
  const char wire[] = {3, 0, 0, 0, 'x', 'y', 'z'};
  decoder.Feed(wire, sizeof(wire));
  Frame out;
  std::string error;
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kError);
  EXPECT_NE(error.find("shorter than"), std::string::npos);
  // Sticky: more bytes do not resurrect the stream.
  decoder.Feed(wire, sizeof(wire));
  EXPECT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kError);
}

TEST(FrameTest, OversizedLengthIsRejectedBeforeBuffering) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  Frame big;
  big.id = 9;
  big.body.assign(128, 'a');
  const std::string wire = EncodeFrame(big);
  decoder.Feed(wire.data(), 8);  // Only the prefix; the limit check must
                                 // not wait for the full payload.
  Frame out;
  std::string error;
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kError);
  EXPECT_NE(error.find("exceeds the limit"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Requests

TEST(ServiceRequestTest, ParsesRawJobForm) {
  ServiceRequest request;
  std::string error;
  ASSERT_TRUE(ParseServiceRequest(
      "{\"job\": \"query q(A) :- r(A)\\n\", \"index\": 3, "
      "\"deadline_ms\": 250, \"echo\": true}",
      &request, &error))
      << error;
  EXPECT_EQ(request.job_text, "query q(A) :- r(A)\n");
  EXPECT_EQ(request.index, 3);
  EXPECT_EQ(request.deadline_ms, 250);
  EXPECT_TRUE(request.echo);
  EXPECT_TRUE(request.has_echo);
}

TEST(ServiceRequestTest, AssemblesQueryViewsForm) {
  ServiceRequest request;
  std::string error;
  ASSERT_TRUE(ParseServiceRequest(
      "{\"query\": \"q(A) :- r(A)\", "
      "\"views\": [\"v1(X) :- r(X)\", \"v2(X) :- s(X)\"]}",
      &request, &error))
      << error;
  EXPECT_EQ(request.job_text,
            "view v1(X) :- r(X)\nview v2(X) :- s(X)\nquery q(A) :- r(A)\n");
  EXPECT_FALSE(request.has_echo);
}

TEST(ServiceRequestTest, RejectsMalformedBodies) {
  ServiceRequest request;
  std::string error;
  EXPECT_FALSE(ParseServiceRequest("not json", &request, &error));
  EXPECT_FALSE(ParseServiceRequest("[1, 2]", &request, &error));
  EXPECT_FALSE(ParseServiceRequest("{}", &request, &error));
  EXPECT_NE(error.find("neither 'job' nor 'query'"), std::string::npos);
  EXPECT_FALSE(ParseServiceRequest("{\"job\": 7}", &request, &error));
  EXPECT_FALSE(ParseServiceRequest(
      "{\"job\": \"x\", \"deadline_ms\": -1}", &request, &error));
  EXPECT_FALSE(ParseServiceRequest(
      "{\"query\": \"q(A) :- r(A)\", \"views\": [3]}", &request, &error));
  EXPECT_FALSE(ParseServiceRequest(
      "{\"job\": \"x\", \"echo\": \"yes\"}", &request, &error));
}

TEST(ServiceRequestTest, ParsesTraceIdAndDefaultsToZero) {
  ServiceRequest request;
  std::string error;
  // An old client that never heard of trace ids parses fine and leaves
  // the id zero (the server then stamps one).
  ASSERT_TRUE(
      ParseServiceRequest("{\"job\": \"x\"}", &request, &error))
      << error;
  EXPECT_TRUE(request.trace_id.IsZero());
  EXPECT_EQ(request.kind, RequestKind::kRewrite);

  ASSERT_TRUE(ParseServiceRequest(
      "{\"job\": \"x\", "
      "\"trace_id\": \"000102030405060708090a0b0c0d0e0f\"}",
      &request, &error))
      << error;
  EXPECT_EQ(obs::TraceIdHex(request.trace_id),
            "000102030405060708090a0b0c0d0e0f");
}

TEST(ServiceRequestTest, RejectsMalformedTraceIds) {
  ServiceRequest request;
  std::string error;
  EXPECT_FALSE(ParseServiceRequest("{\"job\": \"x\", \"trace_id\": 7}",
                                   &request, &error));
  EXPECT_NE(error.find("must be a string"), std::string::npos);
  EXPECT_FALSE(ParseServiceRequest(
      "{\"job\": \"x\", \"trace_id\": \"abc\"}", &request, &error));
  EXPECT_NE(error.find("32 hex"), std::string::npos);
  EXPECT_FALSE(ParseServiceRequest(
      "{\"job\": \"x\", "
      "\"trace_id\": \"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz\"}",
      &request, &error));
}

TEST(ServiceRequestTest, ParsesControlPlaneKinds) {
  ServiceRequest request;
  std::string error;
  ASSERT_TRUE(ParseServiceRequest("{\"type\": \"get_metrics\"}", &request,
                                  &error))
      << error;
  EXPECT_EQ(request.kind, RequestKind::kGetMetrics);

  // dump_telemetry without a filter: trace_id stays zero ("everything").
  ASSERT_TRUE(ParseServiceRequest("{\"type\": \"dump_telemetry\"}", &request,
                                  &error))
      << error;
  EXPECT_EQ(request.kind, RequestKind::kDumpTelemetry);
  EXPECT_TRUE(request.trace_id.IsZero());

  ASSERT_TRUE(ParseServiceRequest(
      "{\"type\": \"dump_telemetry\", "
      "\"trace_id\": \"ffffffffffffffffffffffffffffffff\"}",
      &request, &error))
      << error;
  EXPECT_FALSE(request.trace_id.IsZero());

  // Neither control-plane kind requires a job block; a rewrite still does.
  EXPECT_FALSE(ParseServiceRequest("{\"type\": \"rewrite\"}", &request,
                                   &error));
  EXPECT_FALSE(ParseServiceRequest("{\"type\": \"sideways\"}", &request,
                                   &error));
}

// ---------------------------------------------------------------------------
// Responses

TEST(ServiceResponseTest, RoundTripsOkWithCounters) {
  ServiceResponse in;
  in.status = ResponseStatus::kOk;
  in.outcome = JobOutcome::kFound;
  in.body = "job 0: equivalent rewriting (1 disjunct)\n  q(A) :- v(A)\n";
  in.has_counters = true;
  in.stats.canonical_databases = 13;
  in.disjuncts = 1;
  const std::string wire = EncodeServiceResponse(in);
  EXPECT_NE(wire.find("\"schema_version\": "), std::string::npos);
  EXPECT_NE(wire.find("\"canonical_databases\": 13"), std::string::npos);

  ServiceResponse out;
  std::string error;
  ASSERT_TRUE(ParseServiceResponse(wire, &out, &error)) << error;
  EXPECT_EQ(out.status, ResponseStatus::kOk);
  EXPECT_EQ(out.outcome, JobOutcome::kFound);
  EXPECT_EQ(out.body, in.body);
}

TEST(ServiceResponseTest, RoundTripsStructuredErrors) {
  for (const ResponseStatus status :
       {ResponseStatus::kBadRequest, ResponseStatus::kOverloaded,
        ResponseStatus::kDeadlineExceeded, ResponseStatus::kShuttingDown}) {
    ServiceResponse in;
    in.status = status;
    in.outcome = status == ResponseStatus::kBadRequest
                     ? JobOutcome::kError
                     : JobOutcome::kRejected;
    in.error = "reason text";
    ServiceResponse out;
    std::string error;
    ASSERT_TRUE(ParseServiceResponse(EncodeServiceResponse(in), &out, &error))
        << ResponseStatusName(status) << ": " << error;
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.outcome, in.outcome);
    EXPECT_EQ(out.error, "reason text");
  }
}

TEST(ServiceResponseTest, RoundTripsTraceIdTierAndSchemaV5Counters) {
  ServiceResponse in;
  in.status = ResponseStatus::kOk;
  in.outcome = JobOutcome::kFound;
  in.body = "job 0: equivalent rewriting (1 disjunct)\n";
  in.has_counters = true;
  in.stats.canonical_databases = 13;
  in.stats.phase2_checks = 4;
  in.stats.phase2_orders = 9;
  in.stats.tier1_grid_hits = 6;
  in.stats.tier1_grid_misses = 2;
  in.tier = 1;
  in.tier_reason = "semi-interval views";
  ASSERT_TRUE(obs::ParseTraceIdHex("00112233445566778899aabbccddeeff",
                                   &in.trace_id));

  const std::string wire = EncodeServiceResponse(in);
  // The v5 additions are on the wire: schema version, the new per-order
  // counter, the tier block, and the top-level trace id / tier.
  EXPECT_NE(wire.find("\"schema_version\": 5"), std::string::npos) << wire;
  EXPECT_NE(wire.find("\"phase2_orders\": 9"), std::string::npos);
  EXPECT_NE(wire.find("\"tier\": 1"), std::string::npos);
  EXPECT_NE(wire.find("\"tier_reason\": \"semi-interval views\""),
            std::string::npos);
  EXPECT_NE(wire.find("\"tier1_grid_hits\": 6"), std::string::npos);
  EXPECT_NE(
      wire.find("\"trace_id\": \"00112233445566778899aabbccddeeff\""),
      std::string::npos)
      << wire;

  ServiceResponse out;
  std::string error;
  ASSERT_TRUE(ParseServiceResponse(wire, &out, &error)) << error;
  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.tier, 1);
}

TEST(ServiceResponseTest, ToleratesResponsesWithoutTraceIdOrTier) {
  // A response from a pre-v5 server: no trace_id, no tier.  New clients
  // must parse it and fall back to the "absent" sentinels.
  ServiceResponse out;
  std::string error;
  ASSERT_TRUE(ParseServiceResponse(
      "{\"status\": \"ok\", \"outcome\": \"found\", \"body\": \"x\"}", &out,
      &error))
      << error;
  EXPECT_TRUE(out.trace_id.IsZero());
  EXPECT_EQ(out.tier, -1);
  // And a malformed trace_id in a response is a protocol error, not a
  // silent zero.
  EXPECT_FALSE(ParseServiceResponse(
      "{\"status\": \"ok\", \"outcome\": \"found\", \"trace_id\": \"xyz\"}",
      &out, &error));
}

TEST(ServiceResponseTest, RejectsUnknownNames) {
  ServiceResponse out;
  std::string error;
  EXPECT_FALSE(ParseServiceResponse(
      "{\"status\": \"maybe\", \"outcome\": \"found\"}", &out, &error));
  EXPECT_FALSE(ParseServiceResponse(
      "{\"status\": \"ok\", \"outcome\": \"sideways\"}", &out, &error));
}

}  // namespace
}  // namespace server
}  // namespace cqac
