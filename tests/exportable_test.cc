#include "rewriting/exportable.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

bool ContainsVariant(const std::vector<ConjunctiveQuery>& variants,
                     const std::string& rule) {
  const ConjunctiveQuery expected = Parser::MustParseRule(rule);
  return std::any_of(variants.begin(), variants.end(),
                     [&expected](const ConjunctiveQuery& v) {
                       return v.ToString() == expected.ToString();
                     });
}

TEST(ExportableTest, PlainViewHasBaseAndMergedVariants) {
  const ConjunctiveQuery view = Parser::MustParseRule("v(X,Y) :- a(X,Y)");
  const auto variants = BuildV0Variants(view);
  // Partitions {X}{Y} and {X,Y}: the merged one gives v(X,X) :- a(X,X).
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_TRUE(ContainsVariant(variants, "v(X,Y) :- a(X,Y)"));
  EXPECT_TRUE(ContainsVariant(variants, "v(X,X) :- a(X,X)"));
}

TEST(ExportableTest, PaperExample5Export) {
  // v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z: equating Y = Z exports X.
  const ConjunctiveQuery view =
      Parser::MustParseRule("v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z");
  const auto variants = BuildV0Variants(view);
  EXPECT_TRUE(ContainsVariant(variants, "v(Y,Z) :- r(X), s(Y,Z)"));
  EXPECT_TRUE(ContainsVariant(variants, "v(Y,Y) :- r(Y), s(Y,Y)"));
  EXPECT_EQ(variants.size(), 2u);
}

TEST(ExportableTest, PaperExample10NoExport) {
  // The strict comparison X < Z blocks the export.
  const ConjunctiveQuery view =
      Parser::MustParseRule("v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z");
  const auto variants = BuildV0Variants(view);
  // The Y = Z homomorphism forces Y <= X < Z = Y: unsatisfiable, skipped.
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_TRUE(ContainsVariant(variants, "v(Y,Z) :- r(X), s(Y,Z)"));
}

TEST(ExportableTest, PaperExample6TwoExports) {
  const ConjunctiveQuery view = Parser::MustParseRule(
      "v(X,Y,W) :- a(X,Z1), a(Z1,Z2), b(Z2,Y,W), X <= Z1, W <= Z1, Z1 <= Y");
  const auto variants = BuildV0Variants(view);
  // The paper's V1: equate X = Y, exporting Z1 as X.
  EXPECT_TRUE(ContainsVariant(
      variants, "v(X,X,W) :- a(X,X), a(X,Z2), b(Z2,X,W)"));
  // The paper's V2: equate Y = W, exporting Z1 (named W here).
  EXPECT_TRUE(ContainsVariant(
      variants, "v(X,W,W) :- a(X,W), a(W,Z2), b(Z2,W,W)"));
  // Base variant is always present.
  EXPECT_TRUE(ContainsVariant(
      variants, "v(X,Y,W) :- a(X,Z1), a(Z1,Z2), b(Z2,Y,W)"));
}

TEST(ExportableTest, DirectlyForcedEqualityAppliedInBaseVariant) {
  // The comparisons alone force S = T: the base variant already exports S.
  const ConjunctiveQuery view =
      Parser::MustParseRule("v(T) :- a(S,T), T <= S, S <= T");
  const auto variants = BuildV0Variants(view);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_TRUE(ContainsVariant(variants, "v(T) :- a(T,T)"));
}

TEST(ExportableTest, ConstantPinnedVariable) {
  // S is forced equal to 5; the variant should inline the constant.
  const ConjunctiveQuery view =
      Parser::MustParseRule("v(T) :- a(S,T), S <= 5, 5 <= S");
  const auto variants = BuildV0Variants(view);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_TRUE(ContainsVariant(variants, "v(T) :- a(5,T)"));
}

TEST(ExportableTest, BooleanViewHasOneVariant) {
  const ConjunctiveQuery view =
      Parser::MustParseRule("v() :- p(X), X > 0");
  const auto variants = BuildV0Variants(view);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_TRUE(ContainsVariant(variants, "v() :- p(X)"));
}

TEST(ExportableTest, VariantsKeepOriginalPredicateName) {
  const ConjunctiveQuery view =
      Parser::MustParseRule("source(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z");
  for (const ConjunctiveQuery& variant : BuildV0Variants(view)) {
    EXPECT_EQ(variant.name(), "source");
    EXPECT_TRUE(variant.IsPlainCQ());
  }
}

TEST(ExportableVariablesTest, Example5) {
  const ConjunctiveQuery view =
      Parser::MustParseRule("v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z");
  EXPECT_EQ(ExportableVariables(view), (std::vector<std::string>{"X"}));
}

TEST(ExportableVariablesTest, Example10) {
  const ConjunctiveQuery view =
      Parser::MustParseRule("v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z");
  EXPECT_TRUE(ExportableVariables(view).empty());
}

TEST(ExportableVariablesTest, Example6) {
  const ConjunctiveQuery view = Parser::MustParseRule(
      "v(X,Y,W) :- a(X,Z1), a(Z1,Z2), b(Z2,Y,W), X <= Z1, W <= Z1, Z1 <= Y");
  EXPECT_EQ(ExportableVariables(view), (std::vector<std::string>{"Z1"}));
}

TEST(ExportableVariablesTest, NoComparisonsNoExports) {
  const ConjunctiveQuery view = Parser::MustParseRule("v(X) :- a(X,Y)");
  EXPECT_TRUE(ExportableVariables(view).empty());
}

}  // namespace
}  // namespace cqac
