// Tests of the parallel rewriting runtime: the parallel driver must be
// byte-identical to the serial algorithm for every thread count and task
// interleaving, and the first failing canonical database must cancel
// outstanding work (the paper's "some D_i has no MCR => no rewriting
// exists" short-circuit).

#include "runtime/parallel_rewriter.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/explain.h"
#include "runtime/memo_cache.h"
#include "runtime/thread_pool.h"
#include "workload/generator.h"

namespace cqac {
namespace {

void ExpectStatsEqual(const RewriteStats& a, const RewriteStats& b) {
  EXPECT_EQ(a.canonical_databases, b.canonical_databases);
  EXPECT_EQ(a.kept_canonical_databases, b.kept_canonical_databases);
  EXPECT_EQ(a.v0_variants, b.v0_variants);
  EXPECT_EQ(a.mcds_formed, b.mcds_formed);
  EXPECT_EQ(a.mcds_kept_total, b.mcds_kept_total);
  EXPECT_EQ(a.view_tuples_total, b.view_tuples_total);
  EXPECT_EQ(a.phase2_checks, b.phase2_checks);
  EXPECT_EQ(a.phase2_orders, b.phase2_orders);
}

void ExpectResultsEqual(const RewriteResult& serial,
                        const RewriteResult& parallel,
                        const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(serial.outcome, parallel.outcome);
  EXPECT_EQ(serial.failure_reason, parallel.failure_reason);
  EXPECT_EQ(serial.verified, parallel.verified);
  EXPECT_EQ(serial.rewriting.ToString(), parallel.rewriting.ToString());
  ExpectStatsEqual(serial.stats, parallel.stats);
}

TEST(ParallelRewriterTest, MergeIsElementwiseSum) {
  RewriteStats a;
  a.canonical_databases = 3;
  a.phase2_orders = 7;
  RewriteStats b;
  b.canonical_databases = 2;
  b.kept_canonical_databases = 1;
  a.Merge(b);
  EXPECT_EQ(a.canonical_databases, 5);
  EXPECT_EQ(a.kept_canonical_databases, 1);
  EXPECT_EQ(a.phase2_orders, 7);
}

// The satellite requirement: serial and 2/4/8-thread runs over ~50
// generated instances produce identical RewriteResults.
TEST(ParallelRewriterTest, DeterministicAcrossThreadCountsOnWorkloads) {
  int found = 0;
  int failed = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    WorkloadConfig config;
    config.num_variables = 3;
    config.num_constants = 1;
    config.num_subgoals = 2;
    config.num_views = 3;
    config.view_subgoals = 2;
    // Half the instances get only distractor views (unrelated to the
    // query), so the sweep exercises the no-rewriting early-exit path too.
    config.distractor_fraction = seed % 2 == 0 ? 0.25 : 1.0;
    config.seed = seed;
    WorkloadGenerator generator(config);
    const WorkloadInstance instance = generator.Generate();

    RewriteOptions options;
    options.jobs = 1;
    const RewriteResult serial =
        EquivalentRewriter(instance.query, instance.views, options).Run();
    if (serial.outcome == RewriteOutcome::kRewritingFound) {
      ++found;
    } else {
      ++failed;
    }

    for (int jobs : {2, 4, 8}) {
      const RewriteResult parallel =
          ParallelRewrite(instance.query, instance.views, options);
      static_cast<void>(jobs);
      RewriteOptions parallel_options = options;
      parallel_options.jobs = jobs;
      const RewriteResult via_rewriter =
          EquivalentRewriter(instance.query, instance.views, parallel_options)
              .Run();
      ExpectResultsEqual(serial, parallel,
                         "seed=" + std::to_string(seed) + " direct");
      ExpectResultsEqual(
          serial, via_rewriter,
          "seed=" + std::to_string(seed) + " jobs=" + std::to_string(jobs));
    }
  }
  // The workload must exercise both outcomes, or the test proves little.
  EXPECT_GT(found, 0);
  EXPECT_GT(failed, 0);
}

// The explain trace (the paper's two-column tableau) is part of the
// determinism contract too.
TEST(ParallelRewriterTest, DeterministicExplainTrace) {
  for (uint64_t seed : {3u, 11u, 29u}) {
    WorkloadConfig config;
    config.num_variables = 3;
    config.num_constants = 1;
    config.num_subgoals = 2;
    config.num_views = 2;
    config.seed = seed;
    WorkloadGenerator generator(config);
    const WorkloadInstance instance = generator.Generate();

    RewriteOptions options;
    options.explain = true;
    options.jobs = 1;
    const RewriteResult serial =
        EquivalentRewriter(instance.query, instance.views, options).Run();
    options.jobs = 4;
    const RewriteResult parallel =
        EquivalentRewriter(instance.query, instance.views, options).Run();
    ExpectResultsEqual(serial, parallel, "seed=" + std::to_string(seed));
    EXPECT_EQ(TableauToString(serial.trace), TableauToString(parallel.trace));
  }
}

// Rewriting options that exercise the post-Phase-2 tail (coalescing,
// minimization, verification) must also match.
TEST(ParallelRewriterTest, DeterministicWithOutputOptions) {
  const ConjunctiveQuery query = Parser::MustParseRule(
      "q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));

  RewriteOptions options;
  options.coalesce_output = true;
  options.minimize_output = true;
  options.verify = true;
  options.jobs = 1;
  const RewriteResult serial = EquivalentRewriter(query, views, options).Run();
  options.jobs = 4;
  const RewriteResult parallel =
      EquivalentRewriter(query, views, options).Run();
  ExpectResultsEqual(serial, parallel, "paper example");
  EXPECT_EQ(serial.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_TRUE(serial.verified);
}

// A guaranteed-failing canonical database (views over a predicate foreign
// to the query produce no tuples anywhere) must cancel outstanding tasks,
// observable via the scheduling report — and still reproduce the serial
// answer, which stops at the FIRST failing database.
TEST(ParallelRewriterTest, FailingDatabaseCancelsOutstandingTasks) {
  const ConjunctiveQuery query = Parser::MustParseRule(
      "q(X) :- p0(X,Y), p0(Y,Z), p0(Z,W)");
  const ViewSet views(
      Parser::MustParseProgram("v(A) :- z9(A,B)."));

  RewriteOptions options;
  options.jobs = 1;
  const RewriteResult serial = EquivalentRewriter(query, views, options).Run();
  ASSERT_EQ(serial.outcome, RewriteOutcome::kNoRewriting);
  // The serial loop dies on the very first canonical database.
  EXPECT_EQ(serial.stats.canonical_databases, 1);

  options.jobs = 4;
  ParallelRewriteReport report;
  const RewriteResult parallel = ParallelRewrite(
      query, views, options, /*memo=*/nullptr, /*pool=*/nullptr, &report);
  ExpectResultsEqual(serial, parallel, "cancellation");

  // 4 variables => 75 canonical databases, but the driver streams them
  // through a bounded window and stops enumerating once the first
  // failure merges, so the fan-out may stop short of 75; the first
  // failure cancels (almost) everything fanned out behind it.
  EXPECT_GT(report.db_tasks_total, 0);
  EXPECT_LE(report.db_tasks_total, 75);
  EXPECT_GT(report.db_tasks_cancelled, 0);
  EXPECT_EQ(report.db_tasks_executed + report.db_tasks_cancelled,
            report.db_tasks_total);
  EXPECT_LT(report.db_tasks_executed, report.db_tasks_total);
}

// The serial abort semantics (budget counts the abort-triggering
// database) must hold in parallel as well.
TEST(ParallelRewriterTest, AbortBudgetParity) {
  WorkloadConfig config;
  config.num_variables = 4;
  config.num_constants = 1;
  config.seed = 5;
  WorkloadGenerator generator(config);
  const WorkloadInstance instance = generator.Generate();

  RewriteOptions options;
  options.max_canonical_databases = 10;
  options.jobs = 1;
  const RewriteResult serial =
      EquivalentRewriter(instance.query, instance.views, options).Run();
  options.jobs = 4;
  const RewriteResult parallel =
      EquivalentRewriter(instance.query, instance.views, options).Run();
  ExpectResultsEqual(serial, parallel, "abort");
  if (serial.outcome == RewriteOutcome::kAborted) {
    EXPECT_EQ(serial.stats.canonical_databases, 11);
  }
}

// A shared memo cache never changes answers, and a second identical run
// is served from it.
TEST(ParallelRewriterTest, SharedMemoCacheIsTransparent) {
  const ConjunctiveQuery query = Parser::MustParseRule(
      "q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));

  RewriteOptions options;
  options.jobs = 2;
  MemoCache memo;
  ThreadPool pool(2);

  ParallelRewriteReport first_report;
  const RewriteResult first =
      ParallelRewrite(query, views, options, &memo, &pool, &first_report);
  ParallelRewriteReport second_report;
  const RewriteResult second =
      ParallelRewrite(query, views, options, &memo, &pool, &second_report);

  EXPECT_EQ(first.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_EQ(first.rewriting.ToString(), second.rewriting.ToString());
  EXPECT_EQ(first_report.cache_hits, 0);
  EXPECT_GT(second_report.cache_hits, 0);
  EXPECT_EQ(second_report.cache_misses, 0);
  // Memoized checks report zero enumerated orders; everything else about
  // the result is unchanged.
  EXPECT_EQ(second.stats.phase2_checks, first.stats.phase2_checks);
  EXPECT_EQ(second.stats.phase2_orders, 0);
}

// jobs=0 resolves to hardware concurrency and still matches serial.
TEST(ParallelRewriterTest, HardwareConcurrencyDefault) {
  const ConjunctiveQuery query = Parser::MustParseRule(
      "q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));

  RewriteOptions options;
  options.jobs = 1;
  const RewriteResult serial = EquivalentRewriter(query, views, options).Run();
  options.jobs = 0;
  const RewriteResult parallel =
      EquivalentRewriter(query, views, options).Run();
  ExpectResultsEqual(serial, parallel, "jobs=0");
}

// A token cancelled before Run() aborts both drivers at the first poll
// with the dedicated "cancelled" reason — the mechanism the rewrite
// service's per-request deadlines build on.
TEST(ParallelRewriterTest, PreCancelledTokenAbortsSerialAndParallel) {
  const ConjunctiveQuery query = Parser::MustParseRule(
      "q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));

  CancellationToken token;
  token.Cancel();
  for (const int jobs : {1, 4}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    RewriteOptions options;
    options.jobs = jobs;
    options.cancel = &token;
    const RewriteResult result =
        EquivalentRewriter(query, views, options).Run();
    EXPECT_EQ(result.outcome, RewriteOutcome::kAborted);
    EXPECT_EQ(result.failure_reason, kCancelledReason);
  }
}

// An unset token changes nothing: results stay byte-identical to runs
// with no token at all.
TEST(ParallelRewriterTest, UnsetTokenIsInert) {
  const ConjunctiveQuery query = Parser::MustParseRule(
      "q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));

  CancellationToken token;
  for (const int jobs : {1, 4}) {
    RewriteOptions plain;
    plain.jobs = jobs;
    RewriteOptions with_token = plain;
    with_token.cancel = &token;
    const RewriteResult a = EquivalentRewriter(query, views, plain).Run();
    const RewriteResult b =
        EquivalentRewriter(query, views, with_token).Run();
    ExpectResultsEqual(a, b, "jobs=" + std::to_string(jobs));
  }
}

}  // namespace
}  // namespace cqac
