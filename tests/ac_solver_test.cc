#include "constraints/ac_solver.h"

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

/// Parses the comparison list of a dummy rule body, e.g. "X < Y, Y <= 3".
std::vector<Comparison> Comps(const std::string& text) {
  return Parser::MustParseRule("q() :- d(X), " + text).comparisons();
}

Comparison Comp(const std::string& text) {
  const std::vector<Comparison> cs = Comps(text);
  EXPECT_EQ(cs.size(), 1u);
  return cs[0];
}

TEST(AcSolverTest, EmptyConjunctionSatisfiable) {
  EXPECT_TRUE(AcSolver::IsSatisfiable({}));
}

TEST(AcSolverTest, SingleComparisonSatisfiable) {
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("X < Y")));
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("X = Y")));
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("X != Y")));
}

TEST(AcSolverTest, DirectContradiction) {
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X < Y, Y < X")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X < X")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X = Y, X != Y")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X < Y, X = Y")));
}

TEST(AcSolverTest, StrictCycleUnsatisfiable) {
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X <= Y, Y <= Z, Z < X")));
}

TEST(AcSolverTest, NonStrictCycleForcesEquality) {
  const std::vector<Comparison> cs = Comps("X <= Y, Y <= Z, Z <= X");
  EXPECT_TRUE(AcSolver::IsSatisfiable(cs));
  EXPECT_TRUE(AcSolver::Implies(cs, Comp("X = Z")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X <= Y, Y <= X, X != Y")));
}

TEST(AcSolverTest, ConstantComparisons) {
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("3 < 5")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("5 < 3")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("3 = 5")));
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("3 != 5")));
}

TEST(AcSolverTest, VariableBetweenConstants) {
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("3 < X, X < 4")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("4 < X, X < 3")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("3 <= X, X < 3")));
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("3 <= X, X <= 3")));
}

TEST(AcSolverTest, ChainThroughConstantsUnsatisfiable) {
  // X >= 5 and a path X <= Y <= 3 contradicts 3 < 5.
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X >= 5, X <= Y, Y <= 3")));
}

TEST(AcSolverTest, DensityMakesOpenIntervalsSatisfiable) {
  // Over the integers this would be unsatisfiable; over the rationals the
  // open interval (3, 4) is inhabited.
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("3 < X, X < 4, X != 3.5")));
}

TEST(AcSolverTest, EqualityWithConstantPropagates) {
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X = 3, X = 5")));
  EXPECT_TRUE(AcSolver::IsSatisfiable(Comps("X = 3, Y = 5, X < Y")));
  EXPECT_FALSE(AcSolver::IsSatisfiable(Comps("X = 3, Y = 5, X > Y")));
}

TEST(AcSolverTest, ImpliesTransitivity) {
  EXPECT_TRUE(AcSolver::Implies(Comps("X < Y, Y < Z"), Comp("X < Z")));
  EXPECT_TRUE(AcSolver::Implies(Comps("X <= Y, Y < Z"), Comp("X < Z")));
  EXPECT_TRUE(AcSolver::Implies(Comps("X <= Y, Y <= Z"), Comp("X <= Z")));
  EXPECT_FALSE(AcSolver::Implies(Comps("X <= Y, Y <= Z"), Comp("X < Z")));
}

TEST(AcSolverTest, ImpliesWithConstants) {
  EXPECT_TRUE(AcSolver::Implies(Comps("X < 3"), Comp("X < 5")));
  EXPECT_FALSE(AcSolver::Implies(Comps("X < 5"), Comp("X < 3")));
  EXPECT_TRUE(AcSolver::Implies(Comps("X <= 3"), Comp("X != 5")));
  EXPECT_TRUE(AcSolver::Implies(Comps("X < Y, Y < 3"), Comp("X != 7")));
}

TEST(AcSolverTest, ImpliesNotEqual) {
  EXPECT_TRUE(AcSolver::Implies(Comps("X < Y"), Comp("X != Y")));
  EXPECT_FALSE(AcSolver::Implies(Comps("X <= Y"), Comp("X != Y")));
}

TEST(AcSolverTest, ImpliesEqualityFromSandwich) {
  EXPECT_TRUE(AcSolver::Implies(Comps("X <= Y, Y <= X"), Comp("X = Y")));
  EXPECT_TRUE(AcSolver::Implies(Comps("3 <= X, X <= 3"), Comp("X = 3")));
}

TEST(AcSolverTest, VacuousImplicationFromUnsatAxioms) {
  EXPECT_TRUE(AcSolver::Implies(Comps("X < X"), Comp("X = 7")));
}

TEST(AcSolverTest, ImpliesAllAndEquivalent) {
  EXPECT_TRUE(
      AcSolver::ImpliesAll(Comps("X = Y, Y = Z"), Comps("X = Z, X <= Z")));
  EXPECT_TRUE(AcSolver::Equivalent(Comps("X <= Y, Y <= X"), Comps("X = Y")));
  EXPECT_FALSE(AcSolver::Equivalent(Comps("X <= Y"), Comps("X < Y")));
}

TEST(AcSolverTest, ImpliedRelationPrefersStrongest) {
  auto rel = AcSolver::ImpliedRelation(Comps("X <= Y, Y <= X"),
                                       Term::Variable("X"),
                                       Term::Variable("Y"));
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, CompOp::kEq);

  rel = AcSolver::ImpliedRelation(Comps("X < Y"), Term::Variable("X"),
                                  Term::Variable("Y"));
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, CompOp::kLt);

  rel = AcSolver::ImpliedRelation(Comps("X <= Y"), Term::Variable("X"),
                                  Term::Variable("Y"));
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, CompOp::kLe);

  rel = AcSolver::ImpliedRelation(Comps("X < Y"), Term::Variable("X"),
                                  Term::Variable("Z"));
  EXPECT_FALSE(rel.has_value());
}

TEST(AcSolverTest, ForcedEqualitiesCollapseScc) {
  auto forced = AcSolver::ForcedEqualities(Comps("X <= Y, Y <= X"));
  ASSERT_TRUE(forced.has_value());
  // Y is bound to the lexicographically smaller X.
  EXPECT_TRUE(forced->IsBound("Y"));
  EXPECT_EQ(forced->Lookup("Y"), Term::Variable("X"));
  EXPECT_FALSE(forced->IsBound("X"));
}

TEST(AcSolverTest, ForcedEqualitiesPreferConstantRepresentative) {
  auto forced = AcSolver::ForcedEqualities(Comps("X <= 3, 3 <= X"));
  ASSERT_TRUE(forced.has_value());
  EXPECT_EQ(forced->Lookup("X"), Term::Constant(3));
}

TEST(AcSolverTest, ForcedEqualitiesEmptyWhenNoneForced) {
  auto forced = AcSolver::ForcedEqualities(Comps("X <= Y, Y <= Z"));
  ASSERT_TRUE(forced.has_value());
  EXPECT_TRUE(forced->empty());
}

TEST(AcSolverTest, ForcedEqualitiesNulloptWhenUnsat) {
  EXPECT_FALSE(AcSolver::ForcedEqualities(Comps("X < X")).has_value());
}

TEST(AcSolverTest, ForcedEqualitiesLongCycle) {
  auto forced =
      AcSolver::ForcedEqualities(Comps("A <= B, B <= C, C <= D, D <= A"));
  ASSERT_TRUE(forced.has_value());
  EXPECT_EQ(forced->size(), 3);
  EXPECT_EQ(forced->Lookup("D"), Term::Variable("A"));
}

TEST(AcSolverTest, SatisfiedByEvaluatesAssignment) {
  const std::vector<Comparison> cs = Comps("X < Y, Y <= 3");
  EXPECT_TRUE(AcSolver::SatisfiedBy(
      cs, {{"X", Rational(1)}, {"Y", Rational(2)}}));
  EXPECT_FALSE(AcSolver::SatisfiedBy(
      cs, {{"X", Rational(2)}, {"Y", Rational(2)}}));
  EXPECT_FALSE(AcSolver::SatisfiedBy(
      cs, {{"X", Rational(1)}, {"Y", Rational(4)}}));
  // Missing binding -> false.
  EXPECT_FALSE(AcSolver::SatisfiedBy(cs, {{"X", Rational(1)}}));
}

TEST(AcSolverTest, RemoveRedundantDropsImplied) {
  const std::vector<Comparison> reduced =
      AcSolver::RemoveRedundant(Comps("X < Y, Y < Z, X < Z"));
  EXPECT_EQ(reduced.size(), 2u);
  EXPECT_TRUE(AcSolver::Equivalent(reduced, Comps("X < Y, Y < Z, X < Z")));
}

TEST(AcSolverTest, RemoveRedundantDropsConstantTautologies) {
  const std::vector<Comparison> reduced =
      AcSolver::RemoveRedundant(Comps("3 < 5, X < Y"));
  EXPECT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0].ToString(), "X < Y");
}

TEST(AcSolverTest, RemoveRedundantKeepsIndependentConstraints) {
  const std::vector<Comparison> original = Comps("X < Y, Z < W");
  EXPECT_EQ(AcSolver::RemoveRedundant(original).size(), 2u);
}

// Property sweep: implication must agree with brute-force evaluation on a
// small grid of assignments (soundness direction: implied formulas hold
// under every satisfying grid assignment).
class AcSolverGridProperty : public ::testing::TestWithParam<int> {};

TEST_P(AcSolverGridProperty, ImpliedComparisonsHoldOnGrid) {
  const int seed = GetParam();
  // Small deterministic family of axiom sets, varied by seed.
  const std::vector<std::vector<Comparison>> axiom_sets = {
      Comps("X < Y, Y <= Z"),
      Comps("X <= Y, Y <= X"),
      Comps("X <= 2, 1 <= X"),
      Comps("X < Y, Y < 3"),
      Comps("X != Y, X <= Y"),
  };
  const std::vector<Comparison>& axioms =
      axiom_sets[seed % axiom_sets.size()];
  const std::vector<Comparison> candidates = Comps(
      "X < Y, X <= Y, X = Y, X != Y, X >= Y, X > Y, X < Z, X <= Z, X < 3, "
      "X <= 2, Y > 1, Z != 0");
  for (const Comparison& candidate : candidates) {
    if (!AcSolver::Implies(axioms, candidate)) continue;
    // Check the implication on all grid points.
    for (int x = 0; x <= 4; ++x) {
      for (int y = 0; y <= 4; ++y) {
        for (int z = 0; z <= 4; ++z) {
          const std::map<std::string, Rational> assignment = {
              {"X", Rational(x)}, {"Y", Rational(y)}, {"Z", Rational(z)}};
          if (AcSolver::SatisfiedBy(axioms, assignment)) {
            EXPECT_TRUE(AcSolver::SatisfiedBy({candidate}, assignment))
                << "axioms satisfied but implied candidate "
                << candidate.ToString() << " fails at x=" << x << " y=" << y
                << " z=" << z;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AcSolverGridProperty,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace cqac
