#include "runtime/task_queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(TaskQueueTest, OwnerPopsOldestFirst) {
  TaskQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    queue.Push([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(queue.Size(), 3u);
  TaskQueue::Task task;
  while (queue.TryPop(&task)) task();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(queue.Empty());
}

TEST(TaskQueueTest, ThiefStealsNewestFirst) {
  TaskQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    queue.Push([&order, i] { order.push_back(i); });
  }
  TaskQueue::Task task;
  while (queue.TrySteal(&task)) task();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(TaskQueueTest, PopAndStealTakeOppositeEnds) {
  TaskQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    queue.Push([&order, i] { order.push_back(i); });
  }
  TaskQueue::Task task;
  ASSERT_TRUE(queue.TryPop(&task));
  task();  // oldest: 0
  ASSERT_TRUE(queue.TrySteal(&task));
  task();  // newest: 3
  ASSERT_TRUE(queue.TryPop(&task));
  task();  // 1
  ASSERT_TRUE(queue.TrySteal(&task));
  task();  // 2
  EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 2}));
  EXPECT_FALSE(queue.TryPop(&task));
  EXPECT_FALSE(queue.TrySteal(&task));
}

TEST(TaskQueueTest, ConcurrentPushPopStealLosesNothing) {
  TaskQueue queue;
  constexpr int kTasks = 2000;
  std::atomic<int> executed{0};

  std::thread producer([&] {
    for (int i = 0; i < kTasks; ++i) {
      queue.Push([&executed] { executed.fetch_add(1); });
    }
  });
  std::atomic<bool> done{false};
  auto drain = [&](bool steal) {
    TaskQueue::Task task;
    while (!done.load() || !queue.Empty()) {
      const bool got = steal ? queue.TrySteal(&task) : queue.TryPop(&task);
      if (got) {
        task();
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::thread owner(drain, false);
  std::thread thief(drain, true);
  producer.join();
  done.store(true);
  owner.join();
  thief.join();

  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace cqac
