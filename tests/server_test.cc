// End-to-end tests of the rewrite service (server/server.h) over real
// Unix-domain sockets: response parity with the batch driver, concurrent
// connections, malformed/truncated/oversized frames, deadlines,
// admission control, and graceful drain.

#include "server/server.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "runtime/batch_driver.h"
#include "server/json.h"
#include "server/protocol.h"

namespace cqac {
namespace server {
namespace {

// The paper's running example; finishes in well under a millisecond.
constexpr char kPaperJob[] =
    "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z\n"
    "query q(A) :- r(A), s(A,A), A <= 8\n";

// A 7-variable chain: ~1 s of Phase 1 on one core when uncancelled, so a
// deadline of a few ms reliably fires mid-run.
constexpr char kHeavyJob[] =
    "view v(A) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F), r6(F,G)\n"
    "query q(A) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F), r6(F,G), "
    "A <= 8\n";

// A 6-variable chain: tens of milliseconds — long enough to observe
// in-flight behavior, short enough to run to completion in tests.
constexpr char kMediumJob[] =
    "view v(A) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F)\n"
    "query q(A) :- r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F), A <= 8\n";

std::string TestSocketPath() {
  static int counter = 0;
  return "/tmp/cqacs_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + ".sock";
}

std::string RequestBody(const std::string& job_text, int64_t index = 0,
                        int64_t deadline_ms = 0) {
  std::string body = "{\"job\": ";
  AppendJsonString(&body, job_text);
  body += ", \"index\": " + std::to_string(index);
  if (deadline_ms > 0) {
    body += ", \"deadline_ms\": " + std::to_string(deadline_ms);
  }
  body += "}";
  return body;
}

/// A blocking test client over one connection.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ >= 0 && ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                              sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestClient() { Close(); }

  bool connected() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendRequest(uint64_t id, const std::string& body) {
    Frame frame;
    frame.id = id;
    frame.body = body;
    return SendRaw(EncodeFrame(frame));
  }

  /// Reads until one full frame arrives; false on EOF or error.
  bool ReadFrame(Frame* frame) {
    char buf[16384];
    for (;;) {
      std::string error;
      const FrameDecoder::Status status = decoder_.Next(frame, &error);
      if (status == FrameDecoder::Status::kFrame) return true;
      if (status == FrameDecoder::Status::kError) return false;
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      decoder_.Feed(buf, static_cast<size_t>(n));
    }
  }

  /// Reads a frame and parses its body; false on transport failure.
  bool ReadResponse(uint64_t* id, ServiceResponse* response) {
    Frame frame;
    if (!ReadFrame(&frame)) return false;
    *id = frame.id;
    std::string error;
    return ParseServiceResponse(frame.body, response, &error);
  }

  /// True when read() reports EOF (the server closed the connection).
  bool AtEof() {
    char byte = 0;
    for (;;) {
      const ssize_t n = ::read(fd_, &byte, 1);
      if (n < 0 && errno == EINTR) continue;
      return n == 0;
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// Starts a server on a fresh Unix socket; fails the test on error.
struct TestServer {
  explicit TestServer(ServerOptions options = {}) : path(TestSocketPath()) {
    options.unix_socket_path = path;
    server = std::make_unique<Server>(std::move(options));
    std::string error;
    started = server->Start(&error);
    EXPECT_TRUE(started) << error;
  }

  std::string path;
  std::unique_ptr<Server> server;
  bool started = false;
};

TEST(ServerTest, ResponseBodyMatchesServeBatchByteForByte) {
  TestServer ts;
  ASSERT_TRUE(ts.started);

  std::istringstream batch_in(kPaperJob);
  std::ostringstream batch_out;
  RunBatch(batch_in, batch_out);
  const std::string batch_block =
      batch_out.str().substr(0, batch_out.str().find("batch: "));

  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRequest(7, RequestBody(kPaperJob)));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.outcome, JobOutcome::kFound);
  EXPECT_EQ(response.body, batch_block);
}

TEST(ServerTest, ServesEightConcurrentConnections) {
  TestServer ts;
  ASSERT_TRUE(ts.started);

  constexpr int kConnections = 8;
  constexpr int kRequestsPerConnection = 4;
  std::vector<std::string> bodies(kConnections * kRequestsPerConnection);
  std::vector<int> failures(kConnections, 0);

  std::vector<std::thread> clients;
  for (int c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(ts.path);
      if (!client.connected()) {
        failures[c] = 1;
        return;
      }
      for (int r = 0; r < kRequestsPerConnection; ++r) {
        const uint64_t id = static_cast<uint64_t>(c) * 100 + r;
        if (!client.SendRequest(id, RequestBody(kPaperJob))) {
          failures[c] = 2;
          return;
        }
        uint64_t got = 0;
        ServiceResponse response;
        if (!client.ReadResponse(&got, &response) || got != id ||
            response.status != ResponseStatus::kOk ||
            response.outcome != JobOutcome::kFound) {
          failures[c] = 3;
          return;
        }
        bodies[c * kRequestsPerConnection + r] = response.body;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kConnections; ++c) {
    EXPECT_EQ(failures[c], 0) << "connection " << c;
  }
  // Identical jobs produce identical bodies on every connection.
  for (const std::string& body : bodies) EXPECT_EQ(body, bodies[0]);

  const BatchSummary summary = ts.server->summary();
  EXPECT_EQ(summary.jobs_total, kConnections * kRequestsPerConnection);
  EXPECT_EQ(summary.found, kConnections * kRequestsPerConnection);
  // One shared memo cache across connections: repeats hit.
  EXPECT_GT(summary.cache.hits, 0);
}

TEST(ServerTest, MalformedJsonGetsStructuredErrorAndKeepsConnection) {
  TestServer ts;
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.SendRequest(9, "this is not json"));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(id, 9u);  // Framing survived, so the id is echoed.
  EXPECT_EQ(response.status, ResponseStatus::kBadRequest);
  EXPECT_EQ(response.outcome, JobOutcome::kError);
  EXPECT_FALSE(response.error.empty());

  // Request JSON is a per-request problem; the connection still works.
  ASSERT_TRUE(client.SendRequest(10, RequestBody(kPaperJob)));
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(id, 10u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
}

TEST(ServerTest, UndersizedFrameGetsErrorThenClose) {
  TestServer ts;
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  // length=3 < the 8-byte id: the stream is unframeable.
  ASSERT_TRUE(client.SendRaw(std::string("\x03\x00\x00\x00xyz", 7)));
  uint64_t id = 77;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(id, 0u);  // No id is recoverable from a broken stream.
  EXPECT_EQ(response.status, ResponseStatus::kBadRequest);
  EXPECT_NE(response.error.find("shorter than"), std::string::npos);
  EXPECT_TRUE(client.AtEof());
}

TEST(ServerTest, OversizedFrameGetsErrorThenClose) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  TestServer ts(std::move(options));
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  // Claim a 1 MiB frame against a 1 KiB limit; send only the prefix —
  // the server must reject on the length alone.
  const uint32_t claimed = 1u << 20;
  std::string prefix;
  for (int i = 0; i < 4; ++i) {
    prefix.push_back(static_cast<char>((claimed >> (8 * i)) & 0xFF));
  }
  ASSERT_TRUE(client.SendRaw(prefix));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(response.status, ResponseStatus::kBadRequest);
  EXPECT_NE(response.error.find("exceeds the limit"), std::string::npos);
  EXPECT_TRUE(client.AtEof());
}

TEST(ServerTest, TruncatedFrameAtCloseIsDiscardedQuietly) {
  TestServer ts;
  ASSERT_TRUE(ts.started);
  {
    TestClient client(ts.path);
    ASSERT_TRUE(client.connected());
    Frame frame;
    frame.id = 5;
    frame.body = RequestBody(kPaperJob);
    const std::string wire = EncodeFrame(frame);
    // Half a frame, then close: no response is owed, and nothing crashes.
    ASSERT_TRUE(client.SendRaw(wire.substr(0, wire.size() / 2)));
  }
  // The server is still healthy for the next connection.
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRequest(6, RequestBody(kPaperJob)));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  const BatchSummary summary = ts.server->summary();
  EXPECT_EQ(summary.jobs_total, 1);  // The truncated frame never became a job.
}

TEST(ServerTest, DeadlineCancelsMidRunWithinBound) {
  obs::EnableMetrics(true);
  const int64_t drains_before =
      obs::MetricsRegistry::Global().histogram("server.cancel_drain_ns")
          .count();

  TestServer ts;
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.SendRequest(
      1, RequestBody(kHeavyJob, 0, /*deadline_ms=*/25)));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(response.status, ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(response.outcome, JobOutcome::kDeadlineExceeded);
  EXPECT_NE(response.error.find("deadline exceeded"), std::string::npos);
  // Uncancelled the job runs ~1 s; cancellation is bounded by one work
  // unit past the 25 ms deadline.  10 s allows for arbitrarily slow CI.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);

  const int64_t drains_after =
      obs::MetricsRegistry::Global().histogram("server.cancel_drain_ns")
          .count();
  EXPECT_GT(drains_after, drains_before);

  const BatchSummary summary = ts.server->summary();
  EXPECT_EQ(summary.deadline_exceeded, 1);
  EXPECT_EQ(summary.found, 0);
  obs::EnableMetrics(false);
}

TEST(ServerTest, QueuedJobsExpireBeforeStarting) {
  ServerOptions options;
  options.jobs = 1;  // One worker: later jobs queue behind the first.
  TestServer ts(std::move(options));
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  // The medium job holds the only worker for tens of ms; the pipelined
  // followers carry 5 ms deadlines, which expire while they queue.
  ASSERT_TRUE(client.SendRequest(1, RequestBody(kMediumJob)));
  ASSERT_TRUE(client.SendRequest(2, RequestBody(kPaperJob, 1, 5)));
  ASSERT_TRUE(client.SendRequest(3, RequestBody(kPaperJob, 2, 5)));

  int ok = 0;
  int expired = 0;
  for (int i = 0; i < 3; ++i) {
    uint64_t id = 0;
    ServiceResponse response;
    ASSERT_TRUE(client.ReadResponse(&id, &response));
    if (response.status == ResponseStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response.status, ResponseStatus::kDeadlineExceeded);
      ++expired;
    }
  }
  // The blocker always completes; the followers' fates depend on timing,
  // but everything must be answered exactly once.
  EXPECT_GE(ok, 1);
  EXPECT_EQ(ok + expired, 3);
}

TEST(ServerTest, AdmissionControlShedsWithOverloaded) {
  ServerOptions options;
  options.max_inflight = 0;  // Degenerate limit: everything sheds.
  TestServer ts(std::move(options));
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.SendRequest(4, RequestBody(kPaperJob)));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(id, 4u);
  EXPECT_EQ(response.status, ResponseStatus::kOverloaded);
  EXPECT_EQ(response.outcome, JobOutcome::kRejected);
  EXPECT_NE(response.error.find("overloaded"), std::string::npos);

  const BatchSummary summary = ts.server->summary();
  EXPECT_EQ(summary.rejected, 1);
  EXPECT_EQ(summary.jobs_total, 1);
}

TEST(ServerTest, GracefulDrainDeliversInFlightResponses) {
  TestServer ts;
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.SendRequest(11, RequestBody(kMediumJob)));
  // Let the request reach the worker, then drain mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ts.server->BeginDrain();

  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(id, 11u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.outcome, JobOutcome::kFound);
  EXPECT_TRUE(client.AtEof());

  ts.server->Wait();
  const BatchSummary summary = ts.server->summary();
  EXPECT_EQ(summary.jobs_total, 1);
  EXPECT_EQ(summary.found, 1);

  // Fully drained: new connections are refused.
  TestClient late(ts.path);
  EXPECT_FALSE(late.connected());
}

TEST(ServerTest, JobsOneAndJobsManyProduceIdenticalBodies) {
  ServerOptions serial;
  serial.jobs = 1;
  ServerOptions parallel;
  parallel.jobs = 4;
  TestServer ts1(std::move(serial));
  TestServer tsN(std::move(parallel));
  ASSERT_TRUE(ts1.started);
  ASSERT_TRUE(tsN.started);

  const std::string jobs[] = {std::string(kPaperJob), std::string(kMediumJob),
                              "query q(X) :- p(X,Y), X <= 3\n",
                              std::string(kPaperJob)};
  TestClient c1(ts1.path);
  TestClient cN(tsN.path);
  ASSERT_TRUE(c1.connected());
  ASSERT_TRUE(cN.connected());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(c1.SendRequest(i + 1, RequestBody(jobs[i], i)));
    ASSERT_TRUE(cN.SendRequest(i + 1, RequestBody(jobs[i], i)));
  }
  // Responses may arrive in any order on the parallel server; match by id.
  std::map<uint64_t, std::string> bodies1, bodiesN;
  for (size_t i = 0; i < 4; ++i) {
    uint64_t id1 = 0, idN = 0;
    ServiceResponse r1, rN;
    ASSERT_TRUE(c1.ReadResponse(&id1, &r1));
    ASSERT_TRUE(cN.ReadResponse(&idN, &rN));
    EXPECT_EQ(r1.status, ResponseStatus::kOk);
    EXPECT_EQ(rN.status, ResponseStatus::kOk);
    bodies1[id1] = r1.body;
    bodiesN[idN] = rN.body;
  }
  EXPECT_EQ(bodies1, bodiesN);
  // Outcome totals agree regardless of worker count.
  const BatchSummary s1 = ts1.server->summary();
  const BatchSummary sN = tsN.server->summary();
  EXPECT_EQ(s1.jobs_total, sN.jobs_total);
  EXPECT_EQ(s1.found, sN.found);
  EXPECT_EQ(s1.none, sN.none);
  EXPECT_EQ(s1.errors, sN.errors);
}

TEST(ServerTest, CatalogModeMatchesClassicByteForByte) {
  ServerOptions classic;
  ServerOptions catalog;
  catalog.use_catalog = true;
  TestServer ts_classic(std::move(classic));
  TestServer ts_catalog(std::move(catalog));
  ASSERT_TRUE(ts_classic.started);
  ASSERT_TRUE(ts_catalog.started);

  TestClient c1(ts_classic.path);
  TestClient c2(ts_catalog.path);
  ASSERT_TRUE(c1.connected());
  ASSERT_TRUE(c2.connected());

  // Same job twice: the catalog server's second answer replays from the
  // semantic cache but the body stays byte-identical.
  for (uint64_t id = 1; id <= 2; ++id) {
    ASSERT_TRUE(c1.SendRequest(id, RequestBody(kPaperJob)));
    ASSERT_TRUE(c2.SendRequest(id, RequestBody(kPaperJob)));
    uint64_t id1 = 0, id2 = 0;
    ServiceResponse r1, r2;
    ASSERT_TRUE(c1.ReadResponse(&id1, &r1));
    ASSERT_TRUE(c2.ReadResponse(&id2, &r2));
    EXPECT_EQ(r1.status, ResponseStatus::kOk);
    EXPECT_EQ(r2.status, ResponseStatus::kOk);
    EXPECT_EQ(r1.body, r2.body);
    EXPECT_EQ(r1.catalog_epoch, 0u);  // classic server: no catalog
    EXPECT_GT(r2.catalog_epoch, 0u);
    EXPECT_EQ(r2.from_semantic_cache, id == 2);
  }

  const BatchSummary summary = ts_catalog.server->summary();
  EXPECT_TRUE(summary.catalog_enabled);
  EXPECT_EQ(summary.catalogs_built, 1);
  EXPECT_EQ(summary.catalog_semantic_hits, 1);
  EXPECT_EQ(summary.catalog_semantic_misses, 1);
  EXPECT_GT(summary.catalog_epoch, 0u);
}

TEST(ServerTest, SetCatalogServesQueryOnlyRequestsAndSwaps) {
  ServerOptions options;
  options.use_catalog = true;
  TestServer ts(std::move(options));
  ASSERT_TRUE(ts.started);

  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  // Install the paper example's view as the default catalog.
  ASSERT_TRUE(client.SendRequest(
      1,
      "{\"type\": \"set_catalog\", \"views\": "
      "[\"v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z\"]}"));
  uint64_t id = 0;
  ServiceResponse ack;
  ASSERT_TRUE(client.ReadResponse(&id, &ack));
  EXPECT_EQ(ack.status, ResponseStatus::kOk);
  EXPECT_EQ(ack.catalog_views, 1);
  ASSERT_GT(ack.catalog_epoch, 0u);

  // A query-only request runs against the installed catalog and renders
  // the same block as the full job.
  std::istringstream batch_in(kPaperJob);
  std::ostringstream batch_out;
  RunBatch(batch_in, batch_out);
  const std::string batch_block =
      batch_out.str().substr(0, batch_out.str().find("batch: "));

  ASSERT_TRUE(client.SendRequest(
      2, "{\"query\": \"q(A) :- r(A), s(A,A), A <= 8\"}"));
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.outcome, JobOutcome::kFound);
  EXPECT_EQ(response.body, batch_block);
  EXPECT_EQ(response.catalog_epoch, ack.catalog_epoch);

  // Swapping to a different view set bumps the epoch; subsequent
  // query-only requests land on the new catalog.
  ASSERT_TRUE(client.SendRequest(
      3,
      "{\"type\": \"set_catalog\", \"views\": "
      "[\"w(A,B) :- t(A,B), A <= B\"]}"));
  ServiceResponse ack2;
  ASSERT_TRUE(client.ReadResponse(&id, &ack2));
  EXPECT_EQ(ack2.status, ResponseStatus::kOk);
  EXPECT_GT(ack2.catalog_epoch, ack.catalog_epoch);

  ASSERT_TRUE(client.SendRequest(
      4, "{\"query\": \"q(A) :- r(A), s(A,A), A <= 8\"}"));
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.catalog_epoch, ack2.catalog_epoch);
  EXPECT_FALSE(response.from_semantic_cache);  // new epoch starts cold
}

TEST(ServerTest, SetCatalogRejectedWithoutCatalogSupport) {
  TestServer ts;  // classic server, no --catalog
  ASSERT_TRUE(ts.started);

  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRequest(
      1, "{\"type\": \"set_catalog\", \"views\": []}"));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(response.status, ResponseStatus::kBadRequest);
  EXPECT_NE(response.error.find("--catalog"), std::string::npos);

  // The connection survives; an ordinary job still runs.
  ASSERT_TRUE(client.SendRequest(2, RequestBody(kPaperJob)));
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.outcome, JobOutcome::kFound);
}

// ---------------------------------------------------------------------------
// Request-scoped telemetry

TEST(ServerTest, ClientTraceIdIsEchoedAndAbsentOnesAreStamped) {
  TestServer ts;
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  // A client-sent trace id propagates through the wire and back.
  std::string body = RequestBody(kPaperJob);
  body.insert(body.size() - 1,
              ", \"trace_id\": \"0123456789abcdef0123456789abcdef\"");
  ASSERT_TRUE(client.SendRequest(1, body));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(obs::TraceIdHex(response.trace_id),
            "0123456789abcdef0123456789abcdef");
  // The per-request attribution rides the response: a served job always
  // reports the tier it ran on.
  EXPECT_GE(response.tier, 0);
  EXPECT_LE(response.tier, 2);

  // An old client that sends none gets a server-stamped id back.
  ASSERT_TRUE(client.SendRequest(2, RequestBody(kPaperJob)));
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_FALSE(response.trace_id.IsZero());
}

TEST(ServerTest, GetMetricsServesPrometheusTextWithSloSeries) {
  TestServer ts;
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  // One served job so the tier SLO window has a sample.
  ASSERT_TRUE(client.SendRequest(1, RequestBody(kPaperJob)));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  ASSERT_EQ(response.status, ResponseStatus::kOk);

  ASSERT_TRUE(client.SendRequest(2, "{\"type\": \"get_metrics\"}"));
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.outcome, JobOutcome::kNone);
  // The body is the exposition format, including the per-tier SLO
  // summaries the server registers eagerly at construction.
  EXPECT_NE(response.body.find(
                "# TYPE cqac_server_slo_request_latency_ns summary"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("cqac_server_slo_request_latency_ns{tier="),
            std::string::npos);
}

TEST(ServerTest, DumpTelemetryReturnsDeadlineKilledRequestsSpans) {
  obs::ResetFlightRecorderForTest();
  TestServer ts;
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  // The acceptance scenario: a deadline kills a heavy request; with NO
  // tracing session armed, its trace id must still be enough to pull the
  // request's span history out of the always-on flight recorder.
  const char* trace_hex = "feedfacefeedfacefeedfacefeedface";
  std::string body = RequestBody(kHeavyJob, 0, /*deadline_ms=*/30);
  body.insert(body.size() - 1,
              std::string(", \"trace_id\": \"") + trace_hex + "\"");
  ASSERT_TRUE(client.SendRequest(1, body));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  ASSERT_EQ(response.status, ResponseStatus::kDeadlineExceeded);
  ASSERT_EQ(obs::TraceIdHex(response.trace_id), trace_hex);

  if (!obs::TracingCompiledIn()) {
    GTEST_SKIP() << "CQAC_TRACING=OFF: span sites are compiled out";
  }
  // The job thread finishes writing its ring shortly after the response
  // is delivered (the server.job span closes after the write); poll.
  std::string excerpt;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ASSERT_TRUE(client.SendRequest(
        2 + attempt, std::string("{\"type\": \"dump_telemetry\", "
                                 "\"trace_id\": \"") +
                         trace_hex + "\"}"));
    ASSERT_TRUE(client.ReadResponse(&id, &response));
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    excerpt = response.body;
    if (excerpt.find("server.job") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Meta line first, then one JSON line per span of this trace only.
  EXPECT_EQ(excerpt.find("{\"event\": \"telemetry\""), 0u) << excerpt;
  EXPECT_NE(excerpt.find("\"tracing_compiled_in\": true"),
            std::string::npos);
  EXPECT_NE(excerpt.find(std::string("\"trace_id\": \"") + trace_hex),
            std::string::npos)
      << excerpt;
  EXPECT_NE(excerpt.find("\"name\": \"structure.tier\""), std::string::npos)
      << excerpt;
  EXPECT_NE(excerpt.find("\"name\": \"server.job\""), std::string::npos);
}

TEST(ServerTest, SlowLogRecordsDeadlineExceededRequests) {
  obs::ResetFlightRecorderForTest();
  const std::string log_path = TestSocketPath() + ".slowlog";
  ServerOptions options;
  options.slow_log_path = log_path;
  TestServer ts(options);
  ASSERT_TRUE(ts.started);
  TestClient client(ts.path);
  ASSERT_TRUE(client.connected());

  const char* trace_hex = "abadcafeabadcafeabadcafeabadcafe";
  std::string body = RequestBody(kHeavyJob, 0, /*deadline_ms=*/30);
  body.insert(body.size() - 1,
              std::string(", \"trace_id\": \"") + trace_hex + "\"");
  ASSERT_TRUE(client.SendRequest(1, body));
  uint64_t id = 0;
  ServiceResponse response;
  ASSERT_TRUE(client.ReadResponse(&id, &response));
  ASSERT_EQ(response.status, ResponseStatus::kDeadlineExceeded);

  // The slow-log line is appended after the response goes out; poll.
  std::string log;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::ifstream in(log_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    log = buffer.str();
    if (log.find("slow_request") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(log.find("\"event\": \"slow_request\""), std::string::npos)
      << log;
  EXPECT_NE(log.find(std::string("\"trace_id\": \"") + trace_hex),
            std::string::npos)
      << log;
  EXPECT_NE(log.find("\"outcome\": \"deadline_exceeded\""),
            std::string::npos);
  EXPECT_NE(log.find("\"tier\": "), std::string::npos);
  EXPECT_NE(log.find("\"deadline_ms\": 30"), std::string::npos);
  EXPECT_NE(log.find("\"latency_ns\": "), std::string::npos);
  if (obs::TracingCompiledIn()) {
    // The flight excerpt follows the header: the killed request's own
    // span history, available with session tracing disabled.
    EXPECT_NE(log.find("\"event\": \"span\""), std::string::npos) << log;
    EXPECT_NE(log.find("\"name\": \"structure.tier\""), std::string::npos)
        << log;
  }
  ::unlink(log_path.c_str());
}

}  // namespace
}  // namespace server
}  // namespace cqac
