#include "containment/normalization.h"

#include "containment/cqac_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(NormalizationTest, FreshVariablePerPosition) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,X), b(3)");
  const ConjunctiveQuery n = NormalizeQuery(q);
  ASSERT_EQ(n.body().size(), 2u);
  EXPECT_EQ(n.body()[0].ToString(), "a(_n0,_n1)");
  EXPECT_EQ(n.body()[1].ToString(), "b(_n2)");
  ASSERT_EQ(n.comparisons().size(), 3u);
  EXPECT_EQ(n.comparisons()[0].ToString(), "_n0 = X");
  EXPECT_EQ(n.comparisons()[1].ToString(), "_n1 = X");
  EXPECT_EQ(n.comparisons()[2].ToString(), "_n2 = 3");
}

TEST(NormalizationTest, HeadUntouchedAndComparisonsKept) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,5) :- a(X,Y), X < Y");
  const ConjunctiveQuery n = NormalizeQuery(q);
  EXPECT_EQ(n.head(), q.head());
  EXPECT_EQ(n.comparisons().back().ToString(), "X < Y");
}

TEST(NormalizationTest, PreservesSemantics) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X,X), b(3), X < 7");
  const ConjunctiveQuery n = NormalizeQuery(q);
  EXPECT_TRUE(CqacEquivalent(q, n));
}

TEST(NormalizationTest, EmptyBodyStable) {
  const ConjunctiveQuery q(Atom("q", {}), {});
  const ConjunctiveQuery n = NormalizeQuery(q);
  EXPECT_TRUE(n.body().empty());
  EXPECT_TRUE(n.comparisons().empty());
}

// All four containment implementations must agree.
struct Case {
  const char* q1;
  const char* q2;
};

class AllMethodsAgreeProperty : public ::testing::TestWithParam<Case> {};

TEST_P(AllMethodsAgreeProperty, CanonicalImplicationNormalized) {
  const ConjunctiveQuery q1 = Parser::MustParseRule(GetParam().q1);
  const ConjunctiveQuery q2 = Parser::MustParseRule(GetParam().q2);
  const bool canonical = CqacContainedCanonical(q1, q2);
  EXPECT_EQ(canonical, CqacContainedImplication(q1, q2))
      << q1.ToString() << " vs " << q2.ToString();
  EXPECT_EQ(canonical, CqacContainedNormalized(q1, q2))
      << q1.ToString() << " vs " << q2.ToString();
  // The single-mapping test is sound: a positive answer must agree.
  if (CqacContainedSingleMapping(q1, q2)) {
    EXPECT_TRUE(canonical) << q1.ToString() << " vs " << q2.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllMethodsAgreeProperty,
    ::testing::Values(
        Case{"q(X) :- a(X), X < 3", "q(X) :- a(X), X < 5"},
        Case{"q(X) :- a(X), X < 5", "q(X) :- a(X), X < 3"},
        Case{"q() :- p(X), X = 3", "q() :- p(3)"},
        Case{"q() :- p(3)", "q() :- p(X), X = 3"},
        Case{"q() :- p(X,Y), p(Y,X)", "q() :- p(U,V), U <= V"},
        Case{"q() :- p(X,Y)", "q() :- p(U,V), U <= V"},
        Case{"q(X) :- a(X,X)", "q(X) :- a(X,Y)"},
        Case{"q(X) :- a(X,Y)", "q(X) :- a(X,X)"},
        Case{"q(X) :- a(X,Y), X < Y", "q(X) :- a(X,Y), X <= Y"},
        Case{"q(X) :- a(X,3)", "q(X) :- a(X,Y), X < Y"}));

TEST(SingleMappingTest, CompleteOnLeftSemiInterval) {
  // Both queries left semi-interval: the NP test must agree exactly.
  const std::vector<Case> cases = {
      {"q(X) :- a(X), X < 3", "q(X) :- a(X), X < 5"},
      {"q(X) :- a(X), X < 5", "q(X) :- a(X), X < 3"},
      {"q(X) :- a(X,Y), X <= 3, Y < 2", "q(X) :- a(X,Y), X <= 5"},
      {"q(X) :- a(X,Y), a(Y,X), X < 1", "q(X) :- a(X,Y), X <= 1"},
      {"q(X) :- a(X), X = 3", "q(X) :- a(X), X <= 3"},
  };
  for (const Case& c : cases) {
    const ConjunctiveQuery q1 = Parser::MustParseRule(c.q1);
    const ConjunctiveQuery q2 = Parser::MustParseRule(c.q2);
    ASSERT_TRUE(IsLeftSemiInterval(q1));
    ASSERT_TRUE(IsLeftSemiInterval(q2));
    EXPECT_EQ(CqacContainedSingleMapping(q1, q2),
              CqacContainedCanonical(q1, q2))
        << c.q1 << " vs " << c.q2;
  }
}

TEST(SingleMappingTest, IncompleteInGeneral) {
  // Klug's phenomenon: containment holds but no single mapping works.
  const ConjunctiveQuery q1 =
      Parser::MustParseRule("q() :- p(X,Y), p(Y,X)");
  const ConjunctiveQuery q2 =
      Parser::MustParseRule("q() :- p(U,V), U <= V");
  EXPECT_TRUE(CqacContainedCanonical(q1, q2));
  EXPECT_FALSE(CqacContainedSingleMapping(q1, q2));
}

TEST(IsLeftSemiIntervalTest, Classification) {
  EXPECT_TRUE(IsLeftSemiInterval(
      Parser::MustParseRule("q(X) :- a(X), X < 3, 5 >= X, X = 1")));
  EXPECT_FALSE(IsLeftSemiInterval(
      Parser::MustParseRule("q(X) :- a(X), X > 3")));
  EXPECT_FALSE(IsLeftSemiInterval(
      Parser::MustParseRule("q(X) :- a(X,Y), X < Y")));
  EXPECT_TRUE(
      IsLeftSemiInterval(Parser::MustParseRule("q(X) :- a(X)")));
}

}  // namespace
}  // namespace cqac
