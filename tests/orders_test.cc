#include "constraints/orders.h"

#include <set>

#include "constraints/ac_solver.h"
#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(OrdersTest, SingleVariableNoConstants) {
  const auto orders = EnumerateTotalOrders({"X"}, {});
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].ToString(), "X");
}

TEST(OrdersTest, TwoVariablesNoConstants) {
  const auto orders = EnumerateTotalOrders({"X", "Y"}, {});
  // X<Y, Y<X, X=Y.
  ASSERT_EQ(orders.size(), 3u);
  std::set<std::string> rendered;
  for (const TotalOrder& o : orders) rendered.insert(o.ToString());
  EXPECT_TRUE(rendered.count("X < Y"));
  EXPECT_TRUE(rendered.count("Y < X"));
  EXPECT_TRUE(rendered.count("X = Y"));
}

TEST(OrdersTest, CountsMatchOrderedBellNumbers) {
  EXPECT_EQ(EnumerateTotalOrders({}, {}).size(), 1u);
  EXPECT_EQ(EnumerateTotalOrders({"A"}, {}).size(), 1u);
  EXPECT_EQ(EnumerateTotalOrders({"A", "B"}, {}).size(), 3u);
  EXPECT_EQ(EnumerateTotalOrders({"A", "B", "C"}, {}).size(), 13u);
  EXPECT_EQ(EnumerateTotalOrders({"A", "B", "C", "D"}, {}).size(), 75u);
  EXPECT_EQ(EnumerateTotalOrders({"A", "B", "C", "D", "E"}, {}).size(), 541u);
}

TEST(OrdersTest, CountTotalOrdersClosedForm) {
  EXPECT_EQ(CountTotalOrders(0), 1);
  EXPECT_EQ(CountTotalOrders(1), 1);
  EXPECT_EQ(CountTotalOrders(2), 3);
  EXPECT_EQ(CountTotalOrders(3), 13);
  EXPECT_EQ(CountTotalOrders(4), 75);
  EXPECT_EQ(CountTotalOrders(5), 541);
  EXPECT_EQ(CountTotalOrders(6), 4683);
  EXPECT_EQ(CountTotalOrders(7), 47293);
  EXPECT_EQ(CountTotalOrders(8), 545835);
}

TEST(OrdersTest, OneVariableOneConstant) {
  const auto orders = EnumerateTotalOrders({"X"}, {Rational(8)});
  // X<8, X=8, X>8 — the three canonical databases of the paper's Example 5.
  ASSERT_EQ(orders.size(), 3u);
  std::set<std::string> rendered;
  for (const TotalOrder& o : orders) rendered.insert(o.ToString());
  EXPECT_TRUE(rendered.count("X < 8"));
  EXPECT_TRUE(rendered.count("X = 8"));
  EXPECT_TRUE(rendered.count("8 < X"));
}

TEST(OrdersTest, ConstantsStayInAscendingOrder) {
  const auto orders =
      EnumerateTotalOrders({"X"}, {Rational(5), Rational(3)});
  // Gaps: <3, =3, (3,5), =5, >5 — five placements.
  ASSERT_EQ(orders.size(), 5u);
  for (const TotalOrder& o : orders) {
    std::vector<Rational> consts;
    for (const OrderBlock& b : o.blocks) {
      if (b.constant.has_value()) consts.push_back(*b.constant);
    }
    ASSERT_EQ(consts.size(), 2u);
    EXPECT_LT(consts[0], consts[1]);
  }
}

TEST(OrdersTest, DuplicateConstantsAreDeduped) {
  const auto orders =
      EnumerateTotalOrders({"X"}, {Rational(3), Rational(3)});
  EXPECT_EQ(orders.size(), 3u);
}

TEST(OrdersTest, AllOrdersDistinct) {
  const auto orders = EnumerateTotalOrders({"A", "B", "C"}, {Rational(1)});
  std::set<std::string> rendered;
  for (const TotalOrder& o : orders) rendered.insert(o.ToString());
  EXPECT_EQ(rendered.size(), orders.size());
}

TEST(OrdersTest, AssignmentRespectsOrderAndConstants) {
  const auto orders =
      EnumerateTotalOrders({"X", "Y"}, {Rational(3), Rational(5)});
  for (const TotalOrder& order : orders) {
    const auto assignment = order.ToAssignment();
    // Walk the blocks: values must strictly increase and match constants.
    std::vector<Rational> block_values;
    for (const OrderBlock& b : order.blocks) {
      Rational value;
      if (b.constant.has_value()) {
        value = *b.constant;
      } else {
        value = assignment.at(b.variables.front());
      }
      // All variables in the block share the value.
      for (const std::string& v : b.variables) {
        EXPECT_EQ(assignment.at(v), value) << order.ToString();
      }
      block_values.push_back(value);
    }
    for (size_t i = 0; i + 1 < block_values.size(); ++i) {
      EXPECT_LT(block_values[i], block_values[i + 1]) << order.ToString();
    }
  }
}

TEST(OrdersTest, AssignmentSatisfiesOwnComparisons) {
  const auto orders =
      EnumerateTotalOrders({"X", "Y", "Z"}, {Rational(0), Rational(10)});
  for (const TotalOrder& order : orders) {
    EXPECT_TRUE(
        AcSolver::SatisfiedBy(order.ToComparisons(), order.ToAssignment()))
        << order.ToString();
  }
}

TEST(OrdersTest, ComparisonsPinDownTheOrder) {
  // The comparisons of an order must be satisfiable and force every pair's
  // relation.
  const auto orders = EnumerateTotalOrders({"X", "Y"}, {Rational(4)});
  for (const TotalOrder& order : orders) {
    const std::vector<Comparison> cs = order.ToComparisons();
    EXPECT_TRUE(AcSolver::IsSatisfiable(cs)) << order.ToString();
    const auto rel = AcSolver::ImpliedRelation(cs, Term::Variable("X"),
                                               Term::Variable("Y"));
    ASSERT_TRUE(rel.has_value()) << order.ToString();
    EXPECT_TRUE(*rel == CompOp::kLt || *rel == CompOp::kGt ||
                *rel == CompOp::kEq)
        << order.ToString();
  }
}

TEST(OrdersTest, ForEachStopsEarly) {
  int count = 0;
  ForEachTotalOrder({"A", "B", "C"}, {}, [&count](const TotalOrder&) {
    ++count;
    return count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(OrdersTest, ProjectionKeepsOnlyRequestedVariables) {
  // Find the order X < Y = 3 < Z and project away Y.
  const auto orders =
      EnumerateTotalOrders({"X", "Y", "Z"}, {Rational(3)});
  bool found = false;
  for (const TotalOrder& order : orders) {
    if (order.ToString() != "X < Y = 3 < Z") continue;
    found = true;
    const std::vector<Comparison> projected =
        order.ProjectedComparisons({"X", "Z"});
    // Expect X < 3 and 3 < Z, no mention of Y.
    ASSERT_EQ(projected.size(), 2u);
    for (const Comparison& c : projected) {
      EXPECT_NE(c.lhs(), Term::Variable("Y"));
      EXPECT_NE(c.rhs(), Term::Variable("Y"));
    }
    EXPECT_TRUE(AcSolver::Implies(projected,
                                  Comparison(Term::Variable("X"), CompOp::kLt,
                                             Term::Variable("Z"))));
  }
  EXPECT_TRUE(found);
}

TEST(OrdersTest, ProjectionDropsConstantOnlyTautologies) {
  const auto orders = EnumerateTotalOrders({"X"}, {Rational(1), Rational(2)});
  for (const TotalOrder& order : orders) {
    for (const Comparison& c : order.ProjectedComparisons({})) {
      EXPECT_FALSE(c.lhs().IsConstant() && c.rhs().IsConstant())
          << order.ToString();
    }
  }
}

TEST(OrdersTest, ProjectionOfFullVariableSetIsEquivalentToFullOrder) {
  const auto orders = EnumerateTotalOrders({"X", "Y"}, {Rational(7)});
  for (const TotalOrder& order : orders) {
    EXPECT_TRUE(AcSolver::Equivalent(order.ToComparisons(),
                                     order.ProjectedComparisons({"X", "Y"})))
        << order.ToString();
  }
}

// Property sweep: for n in 1..5, enumeration count matches the closed form
// and each assignment is injective across blocks.
class OrdersCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(OrdersCountProperty, EnumerationMatchesFubini) {
  const int n = GetParam();
  std::vector<std::string> vars;
  for (int i = 0; i < n; ++i) vars.push_back("V" + std::to_string(i));
  int64_t count = 0;
  ForEachTotalOrder(vars, {}, [&count](const TotalOrder&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, CountTotalOrders(n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrdersCountProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace cqac
