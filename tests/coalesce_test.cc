#include "rewriting/coalesce.h"

#include "containment/cqac_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/view_set.h"

namespace cqac {
namespace {

TEST(CoalesceTest, MergesLessThanWithEquals) {
  // The paper's Example 9 output compacts to A <= 8.
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v(A,A), A < 8.\n"
      "q(A) :- v(A,A), A = 8.");
  const UnionQuery c = CoalesceUnion(u);
  ASSERT_EQ(c.size(), 1);
  EXPECT_EQ(c.disjuncts()[0].ToString(), "q(A) :- v(A,A), A <= 8");
}

TEST(CoalesceTest, MergesGreaterThanWithEquals) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v(A), A > 3.\n"
      "q(A) :- v(A), A = 3.");
  const UnionQuery c = CoalesceUnion(u);
  ASSERT_EQ(c.size(), 1);
  EXPECT_EQ(c.disjuncts()[0].comparisons()[0].op(), CompOp::kGe);
}

TEST(CoalesceTest, ComplementaryPairVanishes) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(P) :- free(P), P <= 0.\n"
      "q(P) :- free(P), P > 0.");
  const UnionQuery c = CoalesceUnion(u);
  ASSERT_EQ(c.size(), 1);
  EXPECT_TRUE(c.disjuncts()[0].comparisons().empty());
}

TEST(CoalesceTest, ThreeWayRegionCollapses) {
  // P < 0, P = 0, P > 0 covers everything.
  const UnionQuery u = Parser::MustParseUnion(
      "q(P) :- free(P), P < 0.\n"
      "q(P) :- free(P), P = 0.\n"
      "q(P) :- free(P), 0 < P.");
  const UnionQuery c = CoalesceUnion(u);
  ASSERT_EQ(c.size(), 1);
  EXPECT_TRUE(c.disjuncts()[0].comparisons().empty());
}

TEST(CoalesceTest, DifferentBodiesStayApart) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v1(A), A < 8.\n"
      "q(A) :- v2(A), A = 8.");
  EXPECT_EQ(CoalesceUnion(u).size(), 2);
}

TEST(CoalesceTest, BodyOrderIrrelevant) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v1(A), v2(A), A < 8.\n"
      "q(A) :- v2(A), v1(A), A = 8.");
  EXPECT_EQ(CoalesceUnion(u).size(), 1);
}

TEST(CoalesceTest, SubsumedRegionDropped) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v(A), A < 3.\n"
      "q(A) :- v(A), A < 8.");
  const UnionQuery c = CoalesceUnion(u);
  ASSERT_EQ(c.size(), 1);
  EXPECT_EQ(c.disjuncts()[0].comparisons()[0].ToString(), "A < 8");
}

TEST(CoalesceTest, UnsatisfiableDisjunctDropped) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v(A), A < 3, A > 4.\n"
      "q(A) :- v(A), A < 8.");
  EXPECT_EQ(CoalesceUnion(u).size(), 1);
}

TEST(CoalesceTest, DuplicatesDropped) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v(A), A < 8.\n"
      "q(A) :- v(A), A < 8.");
  EXPECT_EQ(CoalesceUnion(u).size(), 1);
}

TEST(CoalesceTest, FlippedOrientationRecognized) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v(A), A < 8.\n"
      "q(A) :- v(A), 8 <= A.");
  const UnionQuery c = CoalesceUnion(u);
  ASSERT_EQ(c.size(), 1);
  EXPECT_TRUE(c.disjuncts()[0].comparisons().empty());
}

TEST(CoalesceTest, MultiComparisonSetsMergeOnSingleDifference) {
  const UnionQuery u = Parser::MustParseUnion(
      "q(A,B) :- v(A,B), A < B, B < 5.\n"
      "q(A,B) :- v(A,B), A = B, B < 5.");
  const UnionQuery c = CoalesceUnion(u);
  ASSERT_EQ(c.size(), 1);
  EXPECT_EQ(c.disjuncts()[0].comparisons().size(), 2u);
}

TEST(CoalesceTest, NonAdjacentOperatorsKept) {
  // < and > cannot merge without != in the language.
  const UnionQuery u = Parser::MustParseUnion(
      "q(A) :- v(A), A < 8.\n"
      "q(A) :- v(A), A > 8.");
  EXPECT_EQ(CoalesceUnion(u).size(), 2);
}

TEST(CoalesceTest, SemanticsPreservedOnExample2) {
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- p(X), X >= 0");
  const ViewSet views(Parser::MustParseProgram(
      "v1() :- p(X), X = 0.\n"
      "v2() :- p(X), X > 0."));
  RewriteOptions options;
  options.coalesce_output = true;
  options.verify = true;
  const RewriteResult result = EquivalentRewriter(q, views, options).Run();
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_TRUE(result.verified);
}

TEST(CoalesceTest, RewriterOptionShrinksExample9) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));
  RewriteOptions options;
  options.coalesce_output = true;
  options.minimize_output = true;
  options.verify = true;
  const RewriteResult result = EquivalentRewriter(q, views, options).Run();
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_TRUE(result.verified);
  ASSERT_EQ(result.rewriting.size(), 1);
  EXPECT_EQ(result.rewriting.disjuncts()[0].ToString(),
            "q(A) :- v(A,A), A <= 8");
}

}  // namespace
}  // namespace cqac
