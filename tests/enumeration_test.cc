#include "rewriting/enumeration.h"

#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"

namespace cqac {
namespace {

ViewSet Views(const std::string& program) {
  return ViewSet(Parser::MustParseProgram(program));
}

TEST(EnumerationTest, PaperExample2Union) {
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- p(X), X >= 0");
  const ViewSet views = Views(
      "v1() :- p(X), X = 0.\n"
      "v2() :- p(X), X > 0.");
  EnumerationOptions options;
  options.max_subgoals = 2;
  const EnumerationResult result =
      EnumerateEquivalentRewriting(q, views, options);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(RewritingIsEquivalent(q, result.rewriting, views));
  EXPECT_GE(result.rewriting.size(), 2);
}

TEST(EnumerationTest, PaperExample5) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views =
      Views("v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.");
  const EnumerationResult result = EnumerateEquivalentRewriting(q, views);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(RewritingIsEquivalent(q, result.rewriting, views));
}

TEST(EnumerationTest, NoRewritingWithinBudget) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views =
      Views("v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z.");
  const EnumerationResult result = EnumerateEquivalentRewriting(q, views);
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.budget_exhausted);  // Exhausted the space, not budget.
}

TEST(EnumerationTest, BudgetExhaustion) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Y) :- a(X,Z), b(Z,Y), X < 5");
  const ViewSet views = Views(
      "v1(T,W) :- a(T,W).\n"
      "v2(W,U) :- b(W,U).");
  EnumerationOptions options;
  options.max_candidates = 1;
  options.max_fresh_variables = 1;
  const EnumerationResult result =
      EnumerateEquivalentRewriting(q, views, options);
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.candidate_bodies, 2);  // Stopped on the second body.
}

TEST(EnumerationTest, UnsatisfiableQueryTriviallyRewritten) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X), X < 0, X > 1");
  const EnumerationResult result =
      EnumerateEquivalentRewriting(q, Views("v(T) :- a(T)."));
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.rewriting.empty());
}

TEST(EnumerationTest, CountersAdvance) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ViewSet views = Views("v(T) :- a(T).");
  const EnumerationResult result = EnumerateEquivalentRewriting(q, views);
  ASSERT_TRUE(result.found);
  EXPECT_GT(result.candidate_bodies, 0);
  EXPECT_GT(result.candidate_disjuncts, 0);
  EXPECT_GT(result.containment_checks, 0);
}

// The baseline and the paper's algorithm must agree on existence for
// small instances.
struct AgreementCase {
  const char* query;
  const char* views;
};

class EnumerationAgreementProperty
    : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(EnumerationAgreementProperty, AgreesWithEquivalentRewriter) {
  const ConjunctiveQuery q = Parser::MustParseRule(GetParam().query);
  const ViewSet views = Views(GetParam().views);

  const RewriteResult fast = FindEquivalentRewriting(q, views);
  EnumerationOptions options;
  options.max_subgoals = 2;
  const EnumerationResult naive =
      EnumerateEquivalentRewriting(q, views, options);

  EXPECT_EQ(fast.outcome == RewriteOutcome::kRewritingFound, naive.found)
      << GetParam().query;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnumerationAgreementProperty,
    ::testing::Values(
        AgreementCase{"q(X) :- a(X), X < 7", "v(T) :- a(T)."},
        AgreementCase{"q(X) :- a(X), X < 7", "v(T) :- a(T), T < 3."},
        AgreementCase{"q(X) :- a(X), X < 7", "v(T) :- a(T), T < 7."},
        AgreementCase{"q(A) :- r(A), s(A,A), A <= 8",
                      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."},
        AgreementCase{"q(A) :- r(A), s(A,A), A <= 8",
                      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z."},
        AgreementCase{"q() :- p(X), X >= 0",
                      "v1() :- p(X), X = 0.\nv2() :- p(X), X > 0."},
        AgreementCase{"q() :- p(X), X >= 0",
                      "v1() :- p(X), X > 0.\nv2() :- p(X), X > 1."}));

}  // namespace
}  // namespace cqac
