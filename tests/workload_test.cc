#include "workload/generator.h"

#include "constraints/ac_solver.h"
#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(WorkloadTest, DeterministicForFixedSeed) {
  WorkloadConfig config;
  config.seed = 42;
  WorkloadGenerator g1(config);
  WorkloadGenerator g2(config);
  const WorkloadInstance a = g1.Generate();
  const WorkloadInstance b = g2.Generate();
  EXPECT_EQ(a.query.ToString(), b.query.ToString());
  ASSERT_EQ(a.views.size(), b.views.size());
  for (int i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views.views()[i].ToString(), b.views.views()[i].ToString());
  }
}

TEST(WorkloadTest, GoldenInstanceForSeed42) {
  // Every draw goes through workload/prand.h on std::mt19937_64, whose
  // stream the standard pins down, so a fixed seed must reproduce this
  // exact instance on every platform and standard library.  If this test
  // fails after an intentional generator change, update the strings.
  WorkloadConfig config;
  config.seed = 42;
  WorkloadGenerator g(config);
  const WorkloadInstance instance = g.Generate();
  EXPECT_EQ(instance.query.ToString(),
            "q(X0,X1) :- p0(X0,X1), p2(X1,X2), p1(X2,X3), X0 < X1");
  std::string views;
  for (const ConjunctiveQuery& v : instance.views.views()) {
    views += v.ToString() + "\n";
  }
  EXPECT_EQ(views,
            "v0(Y0_0,Y0_1,Y0_2) :- p0(Y0_0,Y0_1), p2(Y0_1,Y0_2), Y0_0 < Y0_1\n"
            "v1(Y1_0,Y1_1,Y1_2) :- p2(Y1_0,Y1_1), p1(Y1_1,Y1_2)\n"
            "v2(Y2_0,Y2_1,Y2_2) :- p0(Y2_0,Y2_1), p2(Y2_1,Y2_2), Y2_0 < Y2_1\n"
            "v3(Z3_0,Z3_1) :- p2(Z3_0,Z3_0), p1(Z3_1,Z3_1), Z3_0 <= 10\n");
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig config;
  config.seed = 1;
  WorkloadGenerator g1(config);
  config.seed = 2;
  WorkloadGenerator g2(config);
  EXPECT_NE(g1.Generate().query.ToString(), g2.Generate().query.ToString());
}

TEST(WorkloadTest, SuccessiveInstancesDiffer) {
  WorkloadGenerator g(WorkloadConfig{});
  const std::string first = g.Generate().query.ToString();
  const std::string second = g.Generate().query.ToString();
  EXPECT_NE(first, second);
}

TEST(WorkloadTest, RespectsConfiguredSizes) {
  WorkloadConfig config;
  config.num_variables = 5;
  config.num_subgoals = 4;
  config.num_views = 7;
  config.view_subgoals = 2;
  config.seed = 7;
  WorkloadGenerator g(config);
  const WorkloadInstance instance = g.Generate();
  EXPECT_EQ(instance.query.body().size(), 4u);
  EXPECT_LE(instance.query.AllVariables().size(), 5u);
  EXPECT_EQ(instance.views.size(), 7);
  for (const ConjunctiveQuery& v : instance.views.views()) {
    EXPECT_LE(v.body().size(), 2u);
  }
}

TEST(WorkloadTest, QueriesAreSafeAndSatisfiable) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    WorkloadGenerator g(config);
    const WorkloadInstance instance = g.Generate();
    EXPECT_TRUE(instance.query.IsSafe()) << instance.query.ToString();
    EXPECT_TRUE(AcSolver::IsSatisfiable(instance.query.comparisons()))
        << instance.query.ToString();
  }
}

TEST(WorkloadTest, ViewsAreSafeAndSatisfiableAndNamed) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    WorkloadGenerator g(config);
    const WorkloadInstance instance = g.Generate();
    std::set<std::string> names;
    for (const ConjunctiveQuery& v : instance.views.views()) {
      EXPECT_TRUE(v.IsSafe()) << v.ToString();
      EXPECT_TRUE(AcSolver::IsSatisfiable(v.comparisons())) << v.ToString();
      EXPECT_TRUE(names.insert(v.name()).second) << "duplicate " << v.name();
    }
  }
}

TEST(WorkloadTest, VariableBudgetDrivesDistinctVariables) {
  WorkloadConfig config;
  config.num_variables = 3;
  config.num_subgoals = 6;
  config.seed = 5;
  WorkloadGenerator g(config);
  const WorkloadInstance instance = g.Generate();
  EXPECT_LE(instance.query.AllVariables().size(), 3u);
}

TEST(WorkloadTest, NoConstantsWhenConfigured) {
  WorkloadConfig config;
  config.num_constants = 0;
  config.seed = 3;
  WorkloadGenerator g(config);
  const WorkloadInstance instance = g.Generate();
  EXPECT_TRUE(instance.query.Constants().empty());
}

}  // namespace
}  // namespace cqac
