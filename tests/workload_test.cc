#include "workload/generator.h"

#include "constraints/ac_solver.h"
#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(WorkloadTest, DeterministicForFixedSeed) {
  WorkloadConfig config;
  config.seed = 42;
  WorkloadGenerator g1(config);
  WorkloadGenerator g2(config);
  const WorkloadInstance a = g1.Generate();
  const WorkloadInstance b = g2.Generate();
  EXPECT_EQ(a.query.ToString(), b.query.ToString());
  ASSERT_EQ(a.views.size(), b.views.size());
  for (int i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views.views()[i].ToString(), b.views.views()[i].ToString());
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig config;
  config.seed = 1;
  WorkloadGenerator g1(config);
  config.seed = 2;
  WorkloadGenerator g2(config);
  EXPECT_NE(g1.Generate().query.ToString(), g2.Generate().query.ToString());
}

TEST(WorkloadTest, SuccessiveInstancesDiffer) {
  WorkloadGenerator g(WorkloadConfig{});
  const std::string first = g.Generate().query.ToString();
  const std::string second = g.Generate().query.ToString();
  EXPECT_NE(first, second);
}

TEST(WorkloadTest, RespectsConfiguredSizes) {
  WorkloadConfig config;
  config.num_variables = 5;
  config.num_subgoals = 4;
  config.num_views = 7;
  config.view_subgoals = 2;
  config.seed = 7;
  WorkloadGenerator g(config);
  const WorkloadInstance instance = g.Generate();
  EXPECT_EQ(instance.query.body().size(), 4u);
  EXPECT_LE(instance.query.AllVariables().size(), 5u);
  EXPECT_EQ(instance.views.size(), 7);
  for (const ConjunctiveQuery& v : instance.views.views()) {
    EXPECT_LE(v.body().size(), 2u);
  }
}

TEST(WorkloadTest, QueriesAreSafeAndSatisfiable) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    WorkloadGenerator g(config);
    const WorkloadInstance instance = g.Generate();
    EXPECT_TRUE(instance.query.IsSafe()) << instance.query.ToString();
    EXPECT_TRUE(AcSolver::IsSatisfiable(instance.query.comparisons()))
        << instance.query.ToString();
  }
}

TEST(WorkloadTest, ViewsAreSafeAndSatisfiableAndNamed) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    WorkloadGenerator g(config);
    const WorkloadInstance instance = g.Generate();
    std::set<std::string> names;
    for (const ConjunctiveQuery& v : instance.views.views()) {
      EXPECT_TRUE(v.IsSafe()) << v.ToString();
      EXPECT_TRUE(AcSolver::IsSatisfiable(v.comparisons())) << v.ToString();
      EXPECT_TRUE(names.insert(v.name()).second) << "duplicate " << v.name();
    }
  }
}

TEST(WorkloadTest, VariableBudgetDrivesDistinctVariables) {
  WorkloadConfig config;
  config.num_variables = 3;
  config.num_subgoals = 6;
  config.seed = 5;
  WorkloadGenerator g(config);
  const WorkloadInstance instance = g.Generate();
  EXPECT_LE(instance.query.AllVariables().size(), 3u);
}

TEST(WorkloadTest, NoConstantsWhenConfigured) {
  WorkloadConfig config;
  config.num_constants = 0;
  config.seed = 3;
  WorkloadGenerator g(config);
  const WorkloadInstance instance = g.Generate();
  EXPECT_TRUE(instance.query.Constants().empty());
}

}  // namespace
}  // namespace cqac
