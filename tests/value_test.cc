#include "ast/value.h"

#include <set>
#include <unordered_set>

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.IsInteger());
}

TEST(RationalTest, IntegerConstruction) {
  Rational r(7);
  EXPECT_EQ(r.num(), 7);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.IsInteger());
}

TEST(RationalTest, NormalizesToLowestTerms) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_FALSE(r.IsInteger());
}

TEST(RationalTest, NormalizesSignToDenominatorPositive) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(RationalTest, NegativeOverNegativeIsPositive) {
  Rational r(-4, -8);
  EXPECT_EQ(r.num(), 1);
  EXPECT_EQ(r.den(), 2);
}

TEST(RationalTest, ZeroNormalizes) {
  Rational r(0, 17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(RationalTest, EqualityIgnoresRepresentation) {
  EXPECT_EQ(Rational(1, 2), Rational(2, 4));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(RationalTest, OrderingBasics) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1), Rational(0));
  EXPECT_LE(Rational(5), Rational(5));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_GE(Rational(3), Rational(3));
  EXPECT_FALSE(Rational(2) < Rational(2));
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(RationalTest, MidpointIsStrictlyBetween) {
  const Rational a(1);
  const Rational b(2);
  const Rational m = a.MidpointWith(b);
  EXPECT_LT(a, m);
  EXPECT_LT(m, b);
  EXPECT_EQ(m, Rational(3, 2));
}

TEST(RationalTest, MidpointOfEqualValuesIsThatValue) {
  const Rational a(5, 3);
  EXPECT_EQ(a.MidpointWith(a), a);
}

TEST(RationalTest, MidpointDensitySweep) {
  // Repeated midpoints stay strictly ordered: the domain is dense.
  Rational lo(0);
  Rational hi(1);
  for (int i = 0; i < 20; ++i) {
    const Rational mid = lo.MidpointWith(hi);
    ASSERT_LT(lo, mid);
    ASSERT_LT(mid, hi);
    hi = mid;
  }
}

TEST(RationalTest, ToStringIntegers) {
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(-3).ToString(), "-3");
  EXPECT_EQ(Rational().ToString(), "0");
}

TEST(RationalTest, ToStringFractions) {
  EXPECT_EQ(Rational(1, 2).ToString(), "1/2");
  EXPECT_EQ(Rational(-7, 3).ToString(), "-7/3");
}

TEST(RationalTest, HashConsistentWithEquality) {
  EXPECT_EQ(Rational(2, 4).Hash(), Rational(1, 2).Hash());
  std::unordered_set<Rational> set;
  set.insert(Rational(1, 2));
  set.insert(Rational(2, 4));
  EXPECT_EQ(set.size(), 1u);
}

TEST(RationalTest, UsableInOrderedSet) {
  std::set<Rational> set;
  set.insert(Rational(3));
  set.insert(Rational(1, 2));
  set.insert(Rational(3));
  set.insert(Rational(-1));
  ASSERT_EQ(set.size(), 3u);
  auto it = set.begin();
  EXPECT_EQ(*it++, Rational(-1));
  EXPECT_EQ(*it++, Rational(1, 2));
  EXPECT_EQ(*it++, Rational(3));
}

}  // namespace
}  // namespace cqac
