#include "rewriting/explain.h"

#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"

namespace cqac {
namespace {

RewriteResult RunExplained(const std::string& query,
                           const std::string& views) {
  RewriteOptions options;
  options.explain = true;
  return EquivalentRewriter(Parser::MustParseRule(query),
                            ViewSet(Parser::MustParseProgram(views)), options)
      .Run();
}

TEST(ExplainTest, PaperExample9Tableau) {
  const RewriteResult result = RunExplained(
      "q(A) :- r(A), s(A,A), A <= 8",
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  // Three canonical databases: A < 8, A = 8 (kept), A > 8 (skipped).
  ASSERT_EQ(result.trace.databases.size(), 3u);
  int skipped = 0, ok = 0;
  for (const CanonicalDatabaseTrace& db : result.trace.databases) {
    if (db.status == "skipped") ++skipped;
    if (db.status == "ok") {
      ++ok;
      EXPECT_TRUE(db.computes_head);
      EXPECT_TRUE(db.combination_exists);
      EXPECT_TRUE(db.expansion_contained);
      EXPECT_EQ(db.view_tuples, 1);
      EXPECT_FALSE(db.pre_rewriting.empty());
    }
  }
  EXPECT_EQ(skipped, 1);
  EXPECT_EQ(ok, 2);
  // The paper's tableau: both orders in the left column, none right.
  EXPECT_EQ(result.trace.left_column.size(), 2u);
  EXPECT_TRUE(result.trace.right_column.empty());
}

TEST(ExplainTest, Example10FailureRecorded) {
  const RewriteResult result = RunExplained(
      "q(A) :- r(A), s(A,A), A <= 8",
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
  ASSERT_FALSE(result.trace.databases.empty());
  const CanonicalDatabaseTrace& last = result.trace.databases.back();
  EXPECT_EQ(last.status, "no-view-tuples");
  EXPECT_TRUE(last.computes_head);
  EXPECT_EQ(last.view_tuples, 0);
}

TEST(ExplainTest, TraceEmptyWithoutOption) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ViewSet views(Parser::MustParseProgram("v(T) :- a(T)."));
  const RewriteResult result = FindEquivalentRewriting(q, views);
  EXPECT_TRUE(result.trace.databases.empty());
  EXPECT_TRUE(result.trace.left_column.empty());
}

TEST(ExplainTest, TableauRenders) {
  const RewriteResult result = RunExplained(
      "q(A) :- r(A), s(A,A), A <= 8",
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.");
  const std::string rendered = TableauToString(result.trace);
  EXPECT_NE(rendered.find("two-column tableau"), std::string::npos);
  EXPECT_NE(rendered.find("A < 8"), std::string::npos);
  EXPECT_NE(rendered.find("A = 8"), std::string::npos);
  EXPECT_NE(rendered.find("skipped"), std::string::npos);
  EXPECT_NE(rendered.find("PR:"), std::string::npos);
}

TEST(ExplainTest, RightColumnPopulatedOnPhase2Failure) {
  // A query whose Phase 1 succeeds (the view covers the subgoal with a
  // weaker comparison) but Phase 2 rejects: the view exposes too little.
  // Construct one via a view projecting away the compared variable.
  const RewriteResult result = RunExplained(
      "q(X) :- a(X,Y), Y < 5", "v(T) :- a(T,U), U < 9.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
  if (!result.trace.right_column.empty()) {
    // At least one kept database must land in the right column.
    EXPECT_FALSE(result.trace.right_column.empty());
  } else {
    // Or the failure happened in Phase 1 — also visible in the trace.
    bool phase1_failure = false;
    for (const CanonicalDatabaseTrace& db : result.trace.databases) {
      if (db.status == "no-view-tuples" || db.status == "no-mcr") {
        phase1_failure = true;
      }
    }
    EXPECT_TRUE(phase1_failure);
  }
}

}  // namespace
}  // namespace cqac
