#include "runtime/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_GE(ThreadPool::ResolveJobs(0), 1);
  EXPECT_EQ(ThreadPool::ResolveJobs(1), 1);
  EXPECT_EQ(ThreadPool::ResolveJobs(4), 4);
  EXPECT_EQ(ThreadPool::ResolveJobs(-3), 1);
}

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains all queues before joining.
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInSubmissionOrder) {
  // With one worker and round-robin landing everything on its queue, the
  // owner's oldest-first pop preserves submission order exactly.
  std::vector<int> order;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&order, i] { order.push_back(i); });
    }
  }
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, RecursiveSubmitFromWorkerCompletes) {
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 10 + 10 * 5;
  auto finish = [&] {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_one();
  };
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&, i] {
        for (int j = 0; j < 5; ++j) {
          pool.Submit([&] {
            counter.fetch_add(1);
            finish();
          });
        }
        counter.fetch_add(1);
        finish();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
  EXPECT_EQ(counter.load(), 60);
}

TEST(ThreadPoolTest, CountsExecutionsAndIdleWorkersSteal) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 200;
  std::mutex mu;
  std::condition_variable cv;
  int remaining = kTasks;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      // A little work so queues stay non-empty long enough to steal from.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      counter.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(pool.tasks_executed(), kTasks);
  EXPECT_GE(pool.tasks_stolen(), 0);
  EXPECT_LE(pool.tasks_stolen(), pool.tasks_executed());
}

TEST(ParseJobsFlagTest, AcceptsPlainCounts) {
  int jobs = -1;
  EXPECT_TRUE(ThreadPool::ParseJobsFlag("0", &jobs));
  EXPECT_EQ(jobs, 0);
  EXPECT_TRUE(ThreadPool::ParseJobsFlag("16", &jobs));
  EXPECT_EQ(jobs, 16);
  EXPECT_TRUE(ThreadPool::ParseJobsFlag("4096", &jobs));
  EXPECT_EQ(jobs, ThreadPool::kMaxJobs);
}

TEST(ParseJobsFlagTest, RejectsGarbageWithAReason) {
  int jobs = 7;
  std::string error;
  for (const char* bad : {"", "4x", "abc", "-1", " 3", "3 "}) {
    EXPECT_FALSE(ThreadPool::ParseJobsFlag(bad, &jobs, &error)) << bad;
    EXPECT_NE(error.find("non-negative integer"), std::string::npos) << bad;
    EXPECT_EQ(jobs, 7) << "rejected input must not modify the output";
  }
}

TEST(ParseJobsFlagTest, ClampsAtKMaxJobsWithAClearError) {
  // The old parser accepted anything up to 1<<20 "worker threads" — a
  // configuration mistake, not a workload.  Past kMaxJobs is now an error
  // that names the limit.
  int jobs = 7;
  std::string error;
  EXPECT_FALSE(ThreadPool::ParseJobsFlag("4097", &jobs, &error));
  EXPECT_NE(error.find("at most 4096"), std::string::npos);
  EXPECT_FALSE(ThreadPool::ParseJobsFlag("1048576", &jobs, &error));
  EXPECT_NE(error.find("at most 4096"), std::string::npos);
  EXPECT_EQ(jobs, 7);
}

}  // namespace
}  // namespace cqac
