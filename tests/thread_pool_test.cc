#include "runtime/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_GE(ThreadPool::ResolveJobs(0), 1);
  EXPECT_EQ(ThreadPool::ResolveJobs(1), 1);
  EXPECT_EQ(ThreadPool::ResolveJobs(4), 4);
  EXPECT_EQ(ThreadPool::ResolveJobs(-3), 1);
}

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains all queues before joining.
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInSubmissionOrder) {
  // With one worker and round-robin landing everything on its queue, the
  // owner's oldest-first pop preserves submission order exactly.
  std::vector<int> order;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&order, i] { order.push_back(i); });
    }
  }
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, RecursiveSubmitFromWorkerCompletes) {
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 10 + 10 * 5;
  auto finish = [&] {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_one();
  };
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&, i] {
        for (int j = 0; j < 5; ++j) {
          pool.Submit([&] {
            counter.fetch_add(1);
            finish();
          });
        }
        counter.fetch_add(1);
        finish();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
  EXPECT_EQ(counter.load(), 60);
}

TEST(ThreadPoolTest, CountsExecutionsAndIdleWorkersSteal) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 200;
  std::mutex mu;
  std::condition_variable cv;
  int remaining = kTasks;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      // A little work so queues stay non-empty long enough to steal from.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      counter.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(pool.tasks_executed(), kTasks);
  EXPECT_GE(pool.tasks_stolen(), 0);
  EXPECT_LE(pool.tasks_stolen(), pool.tasks_executed());
}

}  // namespace
}  // namespace cqac
