// End-to-end tests: the full pipeline (workload generation -> the paper's
// algorithm -> independent verification), plus cross-checks between the
// algorithm and the naive enumeration baseline.

#include "containment/cqac_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/enumeration.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/expansion.h"
#include "workload/generator.h"

namespace cqac {
namespace {

// Every rewriting the algorithm emits on random workloads must verify as
// equivalent; every kNoRewriting answer is trusted per the completeness
// proof but spot-checked against the enumeration baseline below.
class RandomWorkloadSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWorkloadSoundness, ProducedRewritingsVerify) {
  WorkloadConfig config;
  config.num_variables = 3;
  config.num_constants = 1;
  config.num_subgoals = 2;
  config.num_views = 3;
  config.view_subgoals = 2;
  config.seed = GetParam();
  WorkloadGenerator generator(config);
  const WorkloadInstance instance = generator.Generate();

  RewriteOptions options;
  options.verify = true;
  const RewriteResult result =
      EquivalentRewriter(instance.query, instance.views, options).Run();
  if (result.outcome == RewriteOutcome::kRewritingFound) {
    EXPECT_TRUE(result.verified)
        << "query: " << instance.query.ToString() << "\nrewriting:\n"
        << result.rewriting.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSoundness,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

// Agreement with the enumeration baseline on tiny random instances (the
// baseline is complete within its bounds; bounds are chosen to cover the
// instance sizes generated here).
class RandomWorkloadAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWorkloadAgreement, ExistenceMatchesEnumeration) {
  WorkloadConfig config;
  config.num_variables = 2;
  config.num_constants = 1;
  config.num_subgoals = 2;
  config.num_views = 2;
  config.view_subgoals = 2;
  config.distractor_fraction = 0.0;
  config.seed = GetParam();
  WorkloadGenerator generator(config);
  const WorkloadInstance instance = generator.Generate();

  const RewriteResult fast =
      FindEquivalentRewriting(instance.query, instance.views);
  ASSERT_NE(fast.outcome, RewriteOutcome::kAborted);

  EnumerationOptions options;
  options.max_subgoals = 3;
  options.max_fresh_variables = 1;
  const EnumerationResult naive =
      EnumerateEquivalentRewriting(instance.query, instance.views, options);

  // The baseline is bounded; it can only miss rewritings that need more
  // subgoals or fresh variables than budgeted, so a one-sided check:
  if (naive.found) {
    EXPECT_EQ(fast.outcome, RewriteOutcome::kRewritingFound)
        << "query: " << instance.query.ToString();
  }
  if (fast.outcome == RewriteOutcome::kRewritingFound && !naive.found) {
    // Document the discrepancy: it must be a budget artifact, i.e. the
    // found rewriting uses more than max_subgoals distinct view tuples.
    bool any_small = true;
    for (const ConjunctiveQuery& d : fast.rewriting.disjuncts()) {
      if (static_cast<int>(d.body().size()) > options.max_subgoals) {
        any_small = false;
      }
    }
    EXPECT_FALSE(any_small)
        << "baseline missed a small rewriting\nquery: "
        << instance.query.ToString() << "\nrewriting:\n"
        << fast.rewriting.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadAgreement,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// A curated multi-view scenario exercising every module at once: exported
// variables, unions, and joins across views.
TEST(IntegrationTest, MaterializedViewScenario) {
  const ConjunctiveQuery query = Parser::MustParseRule(
      "q(O,P) :- order(O,C), lineitem(O,P), price(P,V), V <= 100");
  const ViewSet views(Parser::MustParseProgram(
      "cheap(P) :- price(P,V), V <= 100.\n"
      "orders(O,P) :- order(O,C), lineitem(O,P).\n"
      "expensive(P) :- price(P,V), V > 100."));
  RewriteOptions options;
  options.verify = true;
  const RewriteResult result =
      EquivalentRewriter(query, views, options).Run();
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
  // The rewriting must join `orders` with `cheap` and never touch
  // `expensive`.
  for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    std::set<std::string> predicates;
    for (const Atom& a : d.body()) predicates.insert(a.predicate());
    EXPECT_TRUE(predicates.count("orders")) << d.ToString();
    EXPECT_TRUE(predicates.count("cheap")) << d.ToString();
    EXPECT_FALSE(predicates.count("expensive")) << d.ToString();
  }
}

// The half-open split scenario: the query's closed interval is covered by
// an open view and a point view.
TEST(IntegrationTest, IntervalSplitAcrossViews) {
  const ConjunctiveQuery query =
      Parser::MustParseRule("q(X) :- item(X,V), V <= 50");
  const ViewSet views(Parser::MustParseProgram(
      "below(X) :- item(X,V), V < 50.\n"
      "exactly(X) :- item(X,V), V = 50."));
  RewriteOptions options;
  options.verify = true;
  const RewriteResult result =
      EquivalentRewriter(query, views, options).Run();
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
  std::set<std::string> used;
  for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    for (const Atom& a : d.body()) used.insert(a.predicate());
  }
  EXPECT_EQ(used, (std::set<std::string>{"below", "exactly"}));
}

// Negative twin of the above: remove the point view and the gap at V = 50
// kills the rewriting.
TEST(IntegrationTest, IntervalGapNoRewriting) {
  const ConjunctiveQuery query =
      Parser::MustParseRule("q(X) :- item(X,V), V <= 50");
  const ViewSet views(
      Parser::MustParseProgram("below(X) :- item(X,V), V < 50."));
  const RewriteResult result = FindEquivalentRewriting(query, views);
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
}

}  // namespace
}  // namespace cqac
