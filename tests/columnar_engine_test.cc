// Unit tests for the data-oriented evaluation core: the bump arena, the
// order-preserving value dictionary and its canonical-pool seeding, the
// column-major coded instance, and the coded evaluator's contract with
// the freezer.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/orders.h"
#include "containment/cqac_containment.h"
#include "engine/arena.h"
#include "engine/canonical.h"
#include "engine/coded_eval.h"
#include "engine/columnar.h"
#include "engine/evaluate.h"
#include "engine/value_dict.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(ArenaTest, ResetKeepsCapacityAndStopsAllocating) {
  Arena arena(/*initial_bytes=*/64);
  // First epoch overflows the tiny initial block several times.
  for (int i = 0; i < 8; ++i) arena.AllocateArray<uint64_t>(16);
  const size_t high_water = arena.high_water();
  EXPECT_GE(high_water, 8 * 16 * sizeof(uint64_t));
  // After one Reset the blocks are coalesced; the same working set now
  // fits in block 0 and the high-water mark no longer moves.
  arena.Reset();
  for (int epoch = 0; epoch < 3; ++epoch) {
    arena.Reset();
    for (int i = 0; i < 8; ++i) {
      uint64_t* p = arena.AllocateArray<uint64_t>(16);
      ASSERT_NE(p, nullptr);
      p[0] = 1;  // must be writable
    }
    EXPECT_EQ(arena.high_water(), high_water);
  }
}

TEST(ArenaTest, AlignmentIsRespected) {
  Arena arena(/*initial_bytes=*/128);
  arena.AllocateArray<uint8_t>(3);  // misalign the bump pointer
  uint64_t* p = arena.AllocateArray<uint64_t>(1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(uint64_t), 0u);
  uint8_t* z = arena.AllocateZeroedArray<uint8_t>(16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(z[i], 0);
}

TEST(ValueDictionaryTest, CodesAreSortedRanks) {
  ValueDictionary dict;
  dict.Add(Rational(5));
  dict.Add(Rational(1));
  dict.Add(Rational(7, 2));
  dict.Add(Rational(5));  // duplicate: staged once
  dict.Rebuild();
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.Find(Rational(1)), 0u);
  EXPECT_EQ(dict.Find(Rational(7, 2)), 1u);
  EXPECT_EQ(dict.Find(Rational(5)), 2u);
  EXPECT_EQ(dict.Value(1), Rational(7, 2));
  EXPECT_EQ(dict.Find(Rational(2)), ValueDictionary::kNotFound);
}

TEST(ValueDictionaryTest, RebuildRenumbersAndBumpsEpoch) {
  ValueDictionary dict;
  dict.Add(Rational(10));
  dict.Rebuild();
  const uint64_t epoch1 = dict.epoch();
  EXPECT_EQ(dict.Find(Rational(10)), 0u);
  // Inserting a smaller value shifts the existing rank.
  EXPECT_TRUE(dict.Add(Rational(3)));
  EXPECT_TRUE(dict.has_staged());
  dict.Rebuild();
  EXPECT_GT(dict.epoch(), epoch1);
  EXPECT_EQ(dict.Find(Rational(3)), 0u);
  EXPECT_EQ(dict.Find(Rational(10)), 1u);
  // Re-adding known values stages nothing and a Rebuild keeps the epoch.
  const uint64_t epoch2 = dict.epoch();
  EXPECT_FALSE(dict.Add(Rational(3)));
  dict.Rebuild();
  EXPECT_EQ(dict.epoch(), epoch2);
}

TEST(ValueDictionaryTest, CodeOrderMatchesValueOrderForEveryOp) {
  ValueDictionary dict;
  const std::vector<Rational> values = {Rational(-2), Rational(0),
                                        Rational(1, 3), Rational(1),
                                        Rational(9, 2), Rational(7)};
  for (const Rational& v : values) dict.Add(v);
  dict.Rebuild();
  for (const Rational& a : values) {
    for (const Rational& b : values) {
      const uint32_t ca = dict.Find(a);
      const uint32_t cb = dict.Find(b);
      EXPECT_EQ(a < b, ca < cb);
      EXPECT_EQ(a == b, ca == cb);
      EXPECT_EQ(a <= b, ca <= cb);
    }
  }
}

TEST(ValueDictionaryTest, SeededPoolCoversEveryBlockValue) {
  // Every value any satisfying order can surface must be findable after
  // seeding — the no-mid-run-rebuild property the coded engine's
  // steady-state zero-allocation claim rests on.
  const std::vector<std::vector<Rational>> constant_sets = {
      {},
      {Rational(4)},
      {Rational(2), Rational(8)},
      {Rational(0), Rational(1), Rational(10)}};
  const std::vector<std::string> variables = {"A", "B", "C"};
  for (const auto& constants : constant_sets) {
    ValueDictionary dict;
    SeedCanonicalValuePool(variables.size(), constants, &dict);
    dict.Rebuild();
    std::vector<Rational> block_values;
    ForEachSatisfyingOrderPruned(
        variables, constants, /*axioms=*/{}, OrderSymmetry{},
        [&](const TotalOrder& order, int64_t) {
          order.BlockValues(&block_values);
          for (const Rational& v : block_values) {
            EXPECT_NE(dict.Find(v), ValueDictionary::kNotFound)
                << "unseeded value " << v.ToString() << " with "
                << constants.size() << " constants";
          }
          return true;
        });
  }
}

TEST(ColumnarInstanceTest, ColumnMajorLayout) {
  ColumnarInstance inst;
  const uint32_t r0 = inst.AddRelation(/*arity=*/2, /*rows=*/3);
  const uint32_t r1 = inst.AddRelation(/*arity=*/1, /*rows=*/2);
  ASSERT_EQ(inst.NumRelations(), 2u);
  EXPECT_EQ(inst.Arity(r0), 2);
  EXPECT_EQ(inst.RowCount(r1), 2u);
  for (uint32_t row = 0; row < 3; ++row) {
    inst.Set(r0, row, 0, 10 + row);
    inst.Set(r0, row, 1, 20 + row);
  }
  inst.Set(r1, 0, 0, 7);
  inst.Set(r1, 1, 0, 8);
  // Columns are contiguous runs of RowCount codes.
  const uint32_t* col0 = inst.Column(r0, 0);
  const uint32_t* col1 = inst.Column(r0, 1);
  EXPECT_EQ(col1 - col0, 3);
  for (uint32_t row = 0; row < 3; ++row) {
    EXPECT_EQ(col0[row], 10 + row);
    EXPECT_EQ(col1[row], 20 + row);
    EXPECT_EQ(inst.At(r0, row, 1), 20 + row);
  }
  EXPECT_EQ(inst.Column(r1, 0)[1], 8u);
}

TEST(CodedEvaluatorTest, ZeroArityHeadMatchesFrozenHead) {
  // Regression: a boolean head has an empty frozen-head code vector whose
  // data() may be null; match mode must still be match mode.
  const ConjunctiveQuery q1 = Parser::MustParseRule("q() :- p(X), X = 3");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q() :- p(3)");
  EXPECT_TRUE(CqacContained(q1, q2));
  EXPECT_TRUE(CqacContained(q2, q1));
}

TEST(CodedEvaluatorTest, MatchAndCollectAgreeWithRowEngine) {
  const ConjunctiveQuery q1 = Parser::MustParseRule(
      "q(X) :- e(X,Y), e(Y,Z), X < Z, Y < 5");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(A) :- e(A,B), A < 5");

  std::vector<Rational> constants = q1.Constants();
  CanonicalFreezer freezer(q1);
  const PreparedQuery prepared(q2);
  PreparedQuery::Scratch scratch;
  CodedEvaluator coded(&prepared.plan());
  freezer.PrimeDictionary(constants, q1.AllVariables().size());
  coded.BindTo(&freezer);

  int orders = 0;
  ForEachSatisfyingOrderPruned(
      q1.AllVariables(), constants, q1.comparisons(), OrderSymmetry{},
      [&](const TotalOrder& order, int64_t) {
        const FlatInstance& inst = freezer.Freeze(order);
        const bool row_match =
            prepared.Run(inst, &freezer.frozen_head(), nullptr, &scratch);
        const bool coded_match =
            coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
        EXPECT_EQ(row_match, coded_match) << "order " << orders;
        Relation row_out;
        Relation coded_out;
        prepared.Run(inst, nullptr, &row_out, &scratch);
        coded.Run(freezer, /*match_frozen_head=*/false, &coded_out);
        EXPECT_EQ(row_out.tuples(), coded_out.tuples()) << "order " << orders;
        ++orders;
        return true;
      });
  EXPECT_GT(orders, 0);
}

TEST(CodedEvaluatorTest, SteadyStateArenaStopsGrowing) {
  const ConjunctiveQuery q1 =
      Parser::MustParseRule("q(X) :- e(X,Y), e(Y,Z), e(Z,W)");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(A) :- e(A,B)");
  CanonicalFreezer freezer(q1);
  const PreparedQuery prepared(q2);
  CodedEvaluator coded(&prepared.plan());
  freezer.PrimeDictionary(q1.Constants(), q1.AllVariables().size());
  coded.BindTo(&freezer);
  size_t high_water_after_first = 0;
  int orders = 0;
  ForEachSatisfyingOrderPruned(
      q1.AllVariables(), q1.Constants(), q1.comparisons(), OrderSymmetry{},
      [&](const TotalOrder& order, int64_t) {
        freezer.Freeze(order);
        coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
        if (orders == 0) {
          high_water_after_first = coded.arena_high_water();
        } else {
          // Same plan, same instance shape: the arena never grows after
          // the first run.
          EXPECT_EQ(coded.arena_high_water(), high_water_after_first)
              << "order " << orders;
        }
        ++orders;
        return true;
      });
  EXPECT_GT(orders, 1);
}

}  // namespace
}  // namespace cqac
