#include "rewriting/equiv_rewriter.h"

#include <set>

#include "containment/cqac_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/expansion.h"

namespace cqac {
namespace {

ViewSet Views(const std::string& program) {
  return ViewSet(Parser::MustParseProgram(program));
}

RewriteResult Rewrite(const std::string& query, const std::string& views,
                      RewriteOptions options = {}) {
  options.verify = true;
  return EquivalentRewriter(Parser::MustParseRule(query), Views(views),
                            options)
      .Run();
}

// --- The paper's worked examples ---

TEST(EquivRewriterTest, PaperExample1RewritingViaV1) {
  const RewriteResult result = Rewrite(
      "q(X,X) :- a(X,X), b(X), X < 7",
      "v1(T,U) :- a(S,T), b(U), T <= S, S <= U.\n"
      "v2(T,U) :- a(S,T), b(U), T <= S, S < U.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
  // Only v1 can participate: v2 yields no tuples on any kept database.
  for (const ConjunctiveQuery& disjunct : result.rewriting.disjuncts()) {
    for (const Atom& atom : disjunct.body()) {
      EXPECT_EQ(atom.predicate(), "v1");
    }
  }
}

TEST(EquivRewriterTest, PaperExample1NoRewritingWithOnlyV2) {
  const RewriteResult result = Rewrite(
      "q(X,X) :- a(X,X), b(X), X < 7",
      "v2(T,U) :- a(S,T), b(U), T <= S, S < U.");
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(EquivRewriterTest, PaperExample2UnionRequired) {
  const RewriteResult result = Rewrite(
      "q() :- p(X), X >= 0",
      "v1() :- p(X), X = 0.\n"
      "v2() :- p(X), X > 0.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
  ASSERT_EQ(result.rewriting.size(), 2);
  // One disjunct uses v1 (the X = 0 case), the other v2 (X > 0).
  std::set<std::string> predicates;
  for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    ASSERT_EQ(d.body().size(), 1u);
    predicates.insert(d.body()[0].predicate());
  }
  EXPECT_EQ(predicates, (std::set<std::string>{"v1", "v2"}));
}

TEST(EquivRewriterTest, PaperExample4BothViewsNeeded) {
  const RewriteResult result = Rewrite(
      "q(X,Y) :- a(X,Z1), a(Z1,2), b(2,Z2), b(Z2,Y), Z1 < 5, Z2 > 8",
      "v1(X,Y) :- a(X,Z1), a(Z1,2), b(2,Z2), b(Z2,Y), Z1 < 5.\n"
      "v2(X,Y) :- a(X,Z1), a(Z1,2), b(2,Z2), b(Z2,Y), Z2 > 8.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
  // Every disjunct must join v1 and v2 (neither view alone suffices).
  for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    std::set<std::string> predicates;
    for (const Atom& atom : d.body()) predicates.insert(atom.predicate());
    EXPECT_EQ(predicates, (std::set<std::string>{"v1", "v2"}))
        << d.ToString();
  }
}

TEST(EquivRewriterTest, PaperExample5And9) {
  const RewriteResult result = Rewrite(
      "q(A) :- r(A), s(A,A), A <= 8",
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
  // Example 9's answer: the union of A < 8 and A = 8 disjuncts over
  // v(A,A).
  ASSERT_EQ(result.rewriting.size(), 2);
  std::set<std::string> rendered;
  for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    rendered.insert(d.ToString());
  }
  EXPECT_TRUE(rendered.count("q(A) :- v(A,A), A < 8") == 1 ||
              rendered.count("q(A) :- v(A,A), A < 8.") == 1)
      << result.rewriting.ToString();
  EXPECT_EQ(rendered.count("q(A) :- v(A,A), A = 8"), 1u)
      << result.rewriting.ToString();
}

TEST(EquivRewriterTest, PaperExample10NoRewriting) {
  const RewriteResult result = Rewrite(
      "q(A) :- r(A), s(A,A), A <= 8",
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z.");
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
  // It fails in Phase 1: the view produces no tuples on D1/D2.
  EXPECT_NE(result.failure_reason.find("no "), std::string::npos);
}

// --- Structural and edge cases ---

TEST(EquivRewriterTest, IdentityViewPlainCQ) {
  const RewriteResult result =
      Rewrite("q(X,Y) :- a(X,Y)", "v(T,U) :- a(T,U).");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
}

TEST(EquivRewriterTest, JoinOfTwoViews) {
  const RewriteResult result = Rewrite(
      "q(X,Z) :- a(X,Y), b(Y,Z), X < 3",
      "v1(T,W) :- a(T,W).\n"
      "v2(W,U) :- b(W,U).");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
}

TEST(EquivRewriterTest, UnsatisfiableQueryGetsEmptyRewriting) {
  const RewriteResult result = Rewrite(
      "q(X) :- a(X), X < 1, X > 2", "v(T) :- a(T).");
  EXPECT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_TRUE(result.rewriting.empty());
}

TEST(EquivRewriterTest, NoViewsNoRewriting) {
  const RewriteResult result =
      EquivalentRewriter(Parser::MustParseRule("q(X) :- a(X)"), ViewSet())
          .Run();
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
}

TEST(EquivRewriterTest, UncoverableSubgoalNoRewriting) {
  const RewriteResult result =
      Rewrite("q(X) :- a(X), c(X)", "v(T) :- a(T).");
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
}

TEST(EquivRewriterTest, ViewTooTightNoRewriting) {
  // The view only returns values below 3; the query wants everything
  // below 7.
  const RewriteResult result =
      Rewrite("q(X) :- a(X), X < 7", "v(T) :- a(T), T < 3.");
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
}

TEST(EquivRewriterTest, ViewLooserThanQueryWorks) {
  // The view returns everything; the rewriting adds the comparison.
  const RewriteResult result =
      Rewrite("q(X) :- a(X), X < 7", "v(T) :- a(T).");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
}

TEST(EquivRewriterTest, SemiIntervalViewMatchingQueryBound) {
  const RewriteResult result =
      Rewrite("q(X) :- a(X), X < 7", "v(T) :- a(T), T < 7.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound)
      << result.failure_reason;
  EXPECT_TRUE(result.verified);
}

TEST(EquivRewriterTest, BudgetAborts) {
  RewriteOptions options;
  options.max_canonical_databases = 2;
  const RewriteResult result =
      EquivalentRewriter(
          Parser::MustParseRule("q(X,Y) :- a(X,Y), X < 5"),
          Views("v(T,U) :- a(T,U)."), options)
          .Run();
  EXPECT_EQ(result.outcome, RewriteOutcome::kAborted);
}

TEST(EquivRewriterTest, StatsPopulated) {
  const RewriteResult result = Rewrite(
      "q(A) :- r(A), s(A,A), A <= 8",
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.");
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  // One variable + one constant: 3 canonical databases, 2 kept.
  EXPECT_EQ(result.stats.canonical_databases, 3);
  EXPECT_EQ(result.stats.kept_canonical_databases, 2);
  EXPECT_GT(result.stats.v0_variants, 0);
  EXPECT_GT(result.stats.mcds_formed, 0);
  EXPECT_GT(result.stats.view_tuples_total, 0);
  EXPECT_EQ(result.stats.phase2_checks, 2);
}

TEST(EquivRewriterTest, MinimizeOutputDropsCoveredDisjuncts) {
  RewriteOptions options;
  options.minimize_output = true;
  const RewriteResult with_min =
      EquivalentRewriter(Parser::MustParseRule("q(X) :- a(X), X < 7"),
                         Views("v(T) :- a(T), T < 7."), options)
          .Run();
  const RewriteResult without_min =
      Rewrite("q(X) :- a(X), X < 7", "v(T) :- a(T), T < 7.");
  ASSERT_EQ(with_min.outcome, RewriteOutcome::kRewritingFound);
  ASSERT_EQ(without_min.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_LE(with_min.rewriting.size(), without_min.rewriting.size());
  EXPECT_TRUE(RewritingIsEquivalent(Parser::MustParseRule(
                                        "q(X) :- a(X), X < 7"),
                                    with_min.rewriting,
                                    Views("v(T) :- a(T), T < 7.")));
}

// Ablations: all pruning modes must agree on the answer.
class PruningModeProperty
    : public ::testing::TestWithParam<RewriteOptions::Pruning> {};

TEST_P(PruningModeProperty, ModesAgreeOnExamples) {
  struct Case {
    const char* query;
    const char* views;
    RewriteOutcome expected;
  };
  const std::vector<Case> cases = {
      {"q(A) :- r(A), s(A,A), A <= 8",
       "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.",
       RewriteOutcome::kRewritingFound},
      {"q(A) :- r(A), s(A,A), A <= 8",
       "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z.",
       RewriteOutcome::kNoRewriting},
      {"q() :- p(X), X >= 0", "v1() :- p(X), X = 0.\nv2() :- p(X), X > 0.",
       RewriteOutcome::kRewritingFound},
      {"q(X) :- a(X), X < 7", "v(T) :- a(T), T < 3.",
       RewriteOutcome::kNoRewriting},
  };
  for (const Case& c : cases) {
    RewriteOptions options;
    options.pruning = GetParam();
    options.verify = true;
    const RewriteResult result =
        EquivalentRewriter(Parser::MustParseRule(c.query), Views(c.views),
                           options)
            .Run();
    EXPECT_EQ(result.outcome, c.expected) << c.query;
    if (result.outcome == RewriteOutcome::kRewritingFound) {
      EXPECT_TRUE(result.verified) << c.query;
    }
  }
}

// kNone is excluded: without the paper's step 3.4 the union of
// Pre-Rewritings can fail to contain the query (see the dedicated test
// below); only the pruning-enabled modes carry the full guarantee.
INSTANTIATE_TEST_SUITE_P(SoundModes, PruningModeProperty,
                         ::testing::Values(
                             RewriteOptions::Pruning::kRelaxedForm,
                             RewriteOptions::Pruning::kFrozenMatch));

// Without pruning, Example 2's Pre-Rewritings conjoin v1 and v2 — whose
// expansions demand both an X = 0 and an X > 0 witness — so the union no
// longer contains the query.  The safety net detects this and reports
// kNoRewriting, demonstrating that the pruning step is load-bearing for
// correctness, not just for speed.
TEST(EquivRewriterTest, NoPruningLosesExample2) {
  RewriteOptions options;
  options.pruning = RewriteOptions::Pruning::kNone;
  const RewriteResult result =
      EquivalentRewriter(Parser::MustParseRule("q() :- p(X), X >= 0"),
                         Views("v1() :- p(X), X = 0.\n"
                               "v2() :- p(X), X > 0."),
                         options)
          .Run();
  EXPECT_EQ(result.outcome, RewriteOutcome::kNoRewriting);
  EXPECT_NE(result.failure_reason.find("Lemma 2"), std::string::npos);
}

}  // namespace
}  // namespace cqac
