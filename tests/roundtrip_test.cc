// Semantic round-trip property: whenever the algorithm produces a
// rewriting, materializing the views over a concrete database and
// evaluating the rewriting must return exactly the query's own answer.
// This is an end-to-end check through a *different* stack than the
// containment-based verification (the engine instead of the logic).

#include "engine/canonical.h"
#include "engine/evaluate.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "workload/generator.h"

namespace cqac {
namespace {

/// Evaluates the views over `base` into a view-vocabulary database.
Database Materialize(const ViewSet& views, const Database& base) {
  Database out;
  for (const ConjunctiveQuery& view : views.views()) {
    const Relation result = Evaluate(view, base);
    for (const Tuple& t : result.tuples()) out.Insert(view.name(), t);
  }
  return out;
}

/// Checks the round trip on every canonical database of the query — a
/// base-data family rich enough to separate inequivalent plans.
void ExpectRoundTrip(const ConjunctiveQuery& query, const ViewSet& views,
                     const UnionQuery& rewriting) {
  std::vector<Rational> constants = query.Constants();
  for (const Rational& c : views.Constants()) {
    if (std::find(constants.begin(), constants.end(), c) ==
        constants.end()) {
      constants.push_back(c);
    }
  }
  ForEachTotalOrder(
      query.AllVariables(), constants, [&](const TotalOrder& order) {
        const CanonicalDatabase cdb = FreezeQuery(query, order);
        const Relation direct = Evaluate(query, cdb.db);
        const Relation via_views =
            Evaluate(rewriting, Materialize(views, cdb.db));
        EXPECT_EQ(direct, via_views)
            << "on [" << order.ToString() << "]\n  direct "
            << direct.ToString() << "\n  views  " << via_views.ToString();
        return true;
      });
}

TEST(RoundTripTest, PaperExample1) {
  const ConjunctiveQuery query =
      Parser::MustParseRule("q(X,X) :- a(X,X), b(X), X < 7");
  const ViewSet views(Parser::MustParseProgram(
      "v1(T,U) :- a(S,T), b(U), T <= S, S <= U.\n"
      "v2(T,U) :- a(S,T), b(U), T <= S, S < U."));
  const RewriteResult result = FindEquivalentRewriting(query, views);
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  ExpectRoundTrip(query, views, result.rewriting);
}

TEST(RoundTripTest, PaperExample5) {
  const ConjunctiveQuery query =
      Parser::MustParseRule("q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));
  const RewriteResult result = FindEquivalentRewriting(query, views);
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  ExpectRoundTrip(query, views, result.rewriting);
}

TEST(RoundTripTest, CoalescedAndMinimizedOutputsAgreeToo) {
  const ConjunctiveQuery query =
      Parser::MustParseRule("q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z."));
  RewriteOptions options;
  options.coalesce_output = true;
  options.minimize_output = true;
  const RewriteResult result =
      EquivalentRewriter(query, views, options).Run();
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  ExpectRoundTrip(query, views, result.rewriting);
}

class RandomRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRoundTrip, RewritingMatchesQueryOnCanonicalDatabases) {
  WorkloadConfig config;
  config.num_variables = 3;
  config.num_constants = 1;
  config.num_subgoals = 3;
  config.num_views = 3;
  config.seed = GetParam();
  WorkloadGenerator generator(config);
  const WorkloadInstance instance = generator.Generate();
  const RewriteResult result =
      FindEquivalentRewriting(instance.query, instance.views);
  if (result.outcome != RewriteOutcome::kRewritingFound) return;
  ExpectRoundTrip(instance.query, instance.views, result.rewriting);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

}  // namespace
}  // namespace cqac
