// Tier-1 replay of the persistent fuzz corpus (tests/corpus/*.cqac):
// every case must load, round-trip through the serializer, agree across
// the smoke configuration lattice, and — when a rewriting is found —
// satisfy the brute-force semantic oracle.  cqacfuzz findings get
// promoted into the corpus so each one stays fixed forever.

#ifndef CQAC_CORPUS_DIR
#error "CQAC_CORPUS_DIR must point at tests/corpus"
#endif

#include <vector>

#include "gtest/gtest.h"
#include "testing/corpus.h"
#include "testing/differential.h"
#include "testing/oracle.h"

namespace cqac {
namespace testing {
namespace {

std::vector<CorpusEntry> LoadCorpusOrDie() {
  std::string error;
  std::optional<std::vector<CorpusEntry>> corpus =
      LoadCorpusDir(CQAC_CORPUS_DIR, &error);
  EXPECT_TRUE(corpus.has_value()) << error;
  return corpus.value_or(std::vector<CorpusEntry>{});
}

TEST(CorpusTest, HasAtLeastTwentyFiveCases) {
  EXPECT_GE(LoadCorpusOrDie().size(), 25u);
}

TEST(CorpusTest, EveryCaseIsWellFormed) {
  for (const CorpusEntry& entry : LoadCorpusOrDie()) {
    EXPECT_TRUE(entry.c.query.IsSafe()) << entry.name;
    EXPECT_FALSE(entry.c.query.body().empty()) << entry.name;
    for (const ConjunctiveQuery& v : entry.c.views.views()) {
      EXPECT_TRUE(v.IsSafe()) << entry.name << " view " << v.name();
    }
  }
}

TEST(CorpusTest, SerializationRoundTrips) {
  for (const CorpusEntry& entry : LoadCorpusOrDie()) {
    std::string error;
    const std::optional<FuzzCase> reparsed =
        ParseCase(SerializeCase(entry.c), &error);
    ASSERT_TRUE(reparsed.has_value()) << entry.name << ": " << error;
    EXPECT_EQ(reparsed->query.ToString(), entry.c.query.ToString())
        << entry.name;
    ASSERT_EQ(reparsed->views.size(), entry.c.views.size()) << entry.name;
    for (int i = 0; i < entry.c.views.size(); ++i) {
      EXPECT_EQ(reparsed->views.views()[i].ToString(),
                entry.c.views.views()[i].ToString())
          << entry.name;
    }
  }
}

TEST(CorpusTest, SmokeLatticeAgreesAndOracleAcceptsEveryCase) {
  const std::vector<LatticeConfig> lattice = SmokeConfigLattice();
  OracleOptions oracle_options;
  // Corpus cases include paper examples bigger than fuzz workloads; keep
  // the replay inside the tier-1 time budget.
  oracle_options.random_databases = 16;
  oracle_options.exhaustive_max_facts = 0;
  for (const CorpusEntry& entry : LoadCorpusOrDie()) {
    const DifferentialReport report = RunConfigLattice(entry.c, lattice);
    EXPECT_TRUE(report.ok) << entry.name << " config ["
                           << report.divergent_config
                           << "]: " << report.failure;
    if (report.baseline_result.outcome == RewriteOutcome::kRewritingFound) {
      const OracleVerdict verdict = CheckRewritingWithOracle(
          entry.c, report.baseline_result.rewriting, oracle_options);
      EXPECT_TRUE(verdict.ok) << entry.name << ": " << verdict.failure;
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace cqac
