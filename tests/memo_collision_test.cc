// Satellite coverage for the Phase-1 memo's verify-on-hit contract: a
// fingerprint collision between distinct keys must degrade to a miss,
// never serve another key's entry — and the rewriter's results must be
// unchanged by fingerprint width as long as verification stays on.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "runtime/memo_cache.h"
#include "testing/differential.h"
#include "workload/generator.h"

namespace cqac {
namespace testing {
namespace {

class MemoCollisionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    internal::SetPhase1FingerprintBitsForTest(0);
    internal::SetPhase1MemoVerifyOnHitForTest(true);
  }
};

/// Two distinct keys whose (possibly narrowed) fingerprints collide.
/// With 1-bit fingerprints there are only 4 possible values, so 5 keys
/// pigeonhole a collision.
std::pair<std::string, std::string> FindCollidingKeys() {
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("key" + std::to_string(i));
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      if (FingerprintPhase1Key(keys[i]) == FingerprintPhase1Key(keys[j])) {
        return {keys[i], keys[j]};
      }
    }
  }
  return {"", ""};
}

TEST_F(MemoCollisionTest, CraftedCollisionDegradesToMiss) {
  internal::SetPhase1FingerprintBitsForTest(1);
  const auto [k1, k2] = FindCollidingKeys();
  ASSERT_FALSE(k1.empty()) << "no collision among 64 keys at 1 bit?";
  ASSERT_NE(k1, k2);
  const Phase1Fingerprint fp1 = FingerprintPhase1Key(k1);
  const Phase1Fingerprint fp2 = FingerprintPhase1Key(k2);
  ASSERT_TRUE(fp1 == fp2);

  Phase1Memo memo;
  Phase1Entry entry;
  entry.key = k1;
  entry.combination_exists = true;
  entry.mcds_kept = 7;
  memo.Put(fp1, entry);

  Phase1Entry out;
  // The owning key hits...
  EXPECT_TRUE(memo.Get(fp1, k1, &out));
  EXPECT_EQ(out.mcds_kept, 7);
  // ...the colliding key does NOT: verify-on-hit compares the full key
  // and turns the collision into a miss.
  EXPECT_FALSE(memo.Get(fp2, k2, &out));
}

TEST_F(MemoCollisionTest, DisablingVerifyOnHitServesWrongEntry) {
  // The fault-injection hook cqacfuzz --inject-fault memo uses: without
  // the key compare, the colliding key is (wrongly) served k1's entry.
  // This is the bug the fuzzer harness must be able to catch end-to-end.
  internal::SetPhase1FingerprintBitsForTest(1);
  const auto [k1, k2] = FindCollidingKeys();
  ASSERT_FALSE(k1.empty());

  Phase1Memo memo;
  Phase1Entry entry;
  entry.key = k1;
  entry.mcds_kept = 7;
  memo.Put(FingerprintPhase1Key(k1), entry);

  internal::SetPhase1MemoVerifyOnHitForTest(false);
  Phase1Entry out;
  ASSERT_TRUE(memo.Get(FingerprintPhase1Key(k2), k2, &out));
  EXPECT_EQ(out.key, k1);  // the wrong reuse, observable
}

TEST_F(MemoCollisionTest, FullWidthFingerprintsDoNotCollideHere) {
  const auto [k1, k2] = FindCollidingKeys();
  EXPECT_TRUE(k1.empty()) << k1 << " and " << k2
                          << " collide at full 128-bit width";
}

TEST_F(MemoCollisionTest, RewriterResultsInvariantUnderFingerprintWidth) {
  // With verify-on-hit ON, narrowing fingerprints only converts would-be
  // hits into verified misses: every invariant output of the rewriter
  // must be byte-identical (the phase1_memo_* counters, excluded from the
  // signature, are exactly what changes).
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    config.num_variables = 3;
    config.num_constants = 1;
    WorkloadGenerator g(config);
    const WorkloadInstance instance = g.Generate();
    const FuzzCase c{instance.query, instance.views};
    LatticeConfig lattice_config;  // serial, phase1_dedup on

    internal::SetPhase1FingerprintBitsForTest(0);
    const RunSignature full = SignatureOf(RunWithConfig(c, lattice_config));
    internal::SetPhase1FingerprintBitsForTest(4);
    const RunSignature narrow = SignatureOf(RunWithConfig(c, lattice_config));
    EXPECT_EQ(full, narrow) << "seed " << seed << "\n--- full\n"
                            << full.ToString() << "\n--- narrow\n"
                            << narrow.ToString();
  }
}

}  // namespace
}  // namespace testing
}  // namespace cqac
