#include "ast/substitution.h"

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(SubstitutionTest, EmptyIsIdentity) {
  Substitution s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Apply(Term::Variable("X")), Term::Variable("X"));
  EXPECT_EQ(s.Apply(Term::Constant(3)), Term::Constant(3));
}

TEST(SubstitutionTest, BindAndLookup) {
  Substitution s;
  s.Bind("X", Term::Constant(5));
  EXPECT_TRUE(s.IsBound("X"));
  EXPECT_FALSE(s.IsBound("Y"));
  EXPECT_EQ(s.Lookup("X"), Term::Constant(5));
  EXPECT_EQ(s.size(), 1);
}

TEST(SubstitutionTest, BindOverwrites) {
  Substitution s;
  s.Bind("X", Term::Constant(5));
  s.Bind("X", Term::Variable("Y"));
  EXPECT_EQ(s.Lookup("X"), Term::Variable("Y"));
}

TEST(SubstitutionTest, Unbind) {
  Substitution s;
  s.Bind("X", Term::Constant(5));
  s.Unbind("X");
  EXPECT_FALSE(s.IsBound("X"));
}

TEST(SubstitutionTest, ApplyToTermLeavesConstantsAlone) {
  Substitution s;
  s.Bind("X", Term::Variable("Y"));
  EXPECT_EQ(s.Apply(Term::Constant(9)), Term::Constant(9));
  EXPECT_EQ(s.Apply(Term::Variable("X")), Term::Variable("Y"));
  EXPECT_EQ(s.Apply(Term::Variable("Z")), Term::Variable("Z"));
}

TEST(SubstitutionTest, ApplyToAtom) {
  Substitution s;
  s.Bind("X", Term::Constant(1));
  s.Bind("Y", Term::Variable("Z"));
  const Atom a("p", {Term::Variable("X"), Term::Variable("Y"),
                     Term::Variable("W")});
  const Atom result = s.Apply(a);
  EXPECT_EQ(result.ToString(), "p(1,Z,W)");
}

TEST(SubstitutionTest, ApplyToComparison) {
  Substitution s;
  s.Bind("X", Term::Constant(4));
  const Comparison c(Term::Variable("X"), CompOp::kLt, Term::Variable("Y"));
  EXPECT_EQ(s.Apply(c).ToString(), "4 < Y");
}

TEST(SubstitutionTest, ApplyIsNotTransitive) {
  // Application is simultaneous, not iterated: X -> Y, Y -> Z maps X to Y.
  Substitution s;
  s.Bind("X", Term::Variable("Y"));
  s.Bind("Y", Term::Variable("Z"));
  EXPECT_EQ(s.Apply(Term::Variable("X")), Term::Variable("Y"));
}

TEST(SubstitutionTest, ComposeAppliesSecondToFirstImages) {
  Substitution first;
  first.Bind("X", Term::Variable("Y"));
  Substitution second;
  second.Bind("Y", Term::Constant(2));
  const Substitution composed = first.ComposeWith(second);
  EXPECT_EQ(composed.Apply(Term::Variable("X")), Term::Constant(2));
  // Variables only mapped by `second` keep that mapping.
  EXPECT_EQ(composed.Apply(Term::Variable("Y")), Term::Constant(2));
}

TEST(SubstitutionTest, ComposeFirstBindingWinsOnOverlap) {
  Substitution first;
  first.Bind("X", Term::Constant(1));
  Substitution second;
  second.Bind("X", Term::Constant(2));
  const Substitution composed = first.ComposeWith(second);
  EXPECT_EQ(composed.Apply(Term::Variable("X")), Term::Constant(1));
}

TEST(SubstitutionTest, ToString) {
  Substitution s;
  s.Bind("X", Term::Constant(1));
  s.Bind("Y", Term::Variable("Z"));
  EXPECT_EQ(s.ToString(), "{X -> 1, Y -> Z}");
}

}  // namespace
}  // namespace cqac
