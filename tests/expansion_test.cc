#include "rewriting/expansion.h"

#include "containment/cqac_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

ViewSet Views(const std::string& program) {
  return ViewSet(Parser::MustParseProgram(program));
}

TEST(ExpansionTest, SingleViewSubgoal) {
  const ViewSet views = Views("v(T,U) :- a(T,W), b(W,U)");
  const ConjunctiveQuery rewriting = Parser::MustParseRule("q(X,Y) :- v(X,Y)");
  const ConjunctiveQuery expansion = Expand(rewriting, views);
  EXPECT_EQ(expansion.body().size(), 2u);
  EXPECT_EQ(expansion.body()[0].predicate(), "a");
  EXPECT_EQ(expansion.body()[0].args()[0], Term::Variable("X"));
  EXPECT_EQ(expansion.body()[1].args()[1], Term::Variable("Y"));
  // The view's existential W became a fresh variable shared by both atoms.
  EXPECT_EQ(expansion.body()[0].args()[1], expansion.body()[1].args()[0]);
  EXPECT_NE(expansion.body()[0].args()[1], Term::Variable("W"));
}

TEST(ExpansionTest, ViewComparisonsCarriedOver) {
  const ViewSet views = Views("v(T) :- a(T,S), T <= S, S < 9");
  const ConjunctiveQuery expansion =
      Expand(Parser::MustParseRule("q(X) :- v(X)"), views);
  ASSERT_EQ(expansion.comparisons().size(), 2u);
  EXPECT_EQ(expansion.comparisons()[0].lhs(), Term::Variable("X"));
}

TEST(ExpansionTest, RewritingComparisonsKept) {
  const ViewSet views = Views("v(T) :- a(T)");
  const ConjunctiveQuery expansion =
      Expand(Parser::MustParseRule("q(X) :- v(X), X < 7"), views);
  ASSERT_EQ(expansion.comparisons().size(), 1u);
  EXPECT_EQ(expansion.comparisons()[0].ToString(), "X < 7");
}

TEST(ExpansionTest, PaperExample1Expansion) {
  // Q' : q(A,A) :- v1(A,A), A < 7 expands to
  // q(A,A) :- a(S,A), b(A), A <= S, S <= A, A < 7 (up to renaming).
  const ViewSet views = Views("v1(T,U) :- a(S,T), b(U), T <= S, S <= U");
  const ConjunctiveQuery rewriting =
      Parser::MustParseRule("q(A,A) :- v1(A,A), A < 7");
  const ConjunctiveQuery expansion = Expand(rewriting, views);
  const ConjunctiveQuery expected = Parser::MustParseRule(
      "q(A,A) :- a(S,A), b(A), A <= S, S <= A, A < 7");
  EXPECT_TRUE(CqacEquivalent(expansion, expected));
  // And equivalent to the original query Q (the paper's claim).
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,X) :- a(X,X), b(X), X < 7");
  EXPECT_TRUE(CqacEquivalent(expansion, q));
}

TEST(ExpansionTest, RepeatedViewHeadVariableAddsEquality) {
  // Exported variant with repeated head variable: v(T,T).
  const ViewSet views = Views("v(T,T) :- a(T)");
  const ConjunctiveQuery expansion =
      Expand(Parser::MustParseRule("q(X,Y) :- v(X,Y)"), views);
  ASSERT_EQ(expansion.comparisons().size(), 1u);
  EXPECT_EQ(expansion.comparisons()[0].ToString(), "X = Y");
  EXPECT_EQ(expansion.body()[0].ToString(), "a(X)");
}

TEST(ExpansionTest, ConstantInViewHeadAddsEquality) {
  const ViewSet views = Views("v(3,T) :- a(T)");
  const ConjunctiveQuery expansion =
      Expand(Parser::MustParseRule("q(X,Y) :- v(X,Y)"), views);
  ASSERT_EQ(expansion.comparisons().size(), 1u);
  EXPECT_EQ(expansion.comparisons()[0].ToString(), "X = 3");
}

TEST(ExpansionTest, ConstantArgumentInRewriting) {
  const ViewSet views = Views("v(T,U) :- a(T,U)");
  const ConjunctiveQuery expansion =
      Expand(Parser::MustParseRule("q(X) :- v(X,5)"), views);
  EXPECT_EQ(expansion.body()[0].ToString(), "a(X,5)");
}

TEST(ExpansionTest, BaseRelationsPassThrough) {
  const ViewSet views = Views("v(T) :- a(T)");
  const ConjunctiveQuery expansion =
      Expand(Parser::MustParseRule("q(X) :- v(X), c(X)"), views);
  EXPECT_EQ(expansion.body().size(), 2u);
  EXPECT_EQ(expansion.body()[1].predicate(), "c");
}

TEST(ExpansionTest, TwoSubgoalsGetDisjointFreshVariables) {
  const ViewSet views = Views("v(T) :- a(T,W)");
  const ConjunctiveQuery expansion =
      Expand(Parser::MustParseRule("q(X,Y) :- v(X), v(Y)"), views);
  ASSERT_EQ(expansion.body().size(), 2u);
  EXPECT_NE(expansion.body()[0].args()[1], expansion.body()[1].args()[1]);
}

TEST(ExpansionTest, UnionExpansion) {
  const ViewSet views = Views(
      "v1() :- p(X), X = 0.\n"
      "v2() :- p(X), X > 0.");
  const UnionQuery rewriting = Parser::MustParseUnion(
      "r0() :- v1().\n"
      "r0() :- v2().");
  const UnionQuery expanded = Expand(rewriting, views);
  ASSERT_EQ(expanded.size(), 2);
  EXPECT_EQ(expanded.disjuncts()[0].body()[0].predicate(), "p");
  EXPECT_EQ(expanded.disjuncts()[1].comparisons()[0].op(), CompOp::kGt);
}

TEST(SimplifyQueryTest, PaperExample8Simplification) {
  // PR1(A) :- r(X), s(A,A), A < 8, A <= X, X <= A simplifies to
  // PR1(A) :- r(A), s(A,A), A < 8.
  const ConjunctiveQuery raw = Parser::MustParseRule(
      "pr1(A) :- r(X), s(A,A), A < 8, A <= X, X <= A");
  const std::optional<ConjunctiveQuery> simplified = SimplifyQuery(raw);
  ASSERT_TRUE(simplified.has_value());
  const ConjunctiveQuery expected =
      Parser::MustParseRule("pr1(A) :- r(A), s(A,A), A < 8");
  EXPECT_EQ(simplified->ToString(), expected.ToString());
}

TEST(SimplifyQueryTest, UnsatisfiableReturnsNullopt) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X), X < 1, X > 2");
  EXPECT_FALSE(SimplifyQuery(q).has_value());
}

TEST(SimplifyQueryTest, RemovesImpliedComparisons) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X,Y), X < Y, Y < 3, X < 3");
  const std::optional<ConjunctiveQuery> s = SimplifyQuery(q);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->comparisons().size(), 2u);
}

TEST(SimplifyQueryTest, CollapsesConstantEqualities) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y), Y = 4");
  const std::optional<ConjunctiveQuery> s = SimplifyQuery(q);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ToString(), "q(X) :- a(X,4)");
}

TEST(SimplifyQueryTest, PreservesEquivalence) {
  const ConjunctiveQuery q = Parser::MustParseRule(
      "q(A) :- r(X), s(A,B), A <= X, X <= A, B >= A, A >= B, A < 8");
  const std::optional<ConjunctiveQuery> s = SimplifyQuery(q);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(CqacEquivalent(q, *s));
}

TEST(SimplifyQueryTest, DeduplicatesSubgoals) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(A) :- r(A), r(B), A <= B, B <= A");
  const std::optional<ConjunctiveQuery> s = SimplifyQuery(q);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->body().size(), 1u);
}

}  // namespace
}  // namespace cqac
