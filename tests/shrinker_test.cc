#include "testing/shrinker.h"

#include "gtest/gtest.h"
#include "parser/parser.h"
#include "testing/differential.h"

namespace cqac {
namespace testing {
namespace {

FuzzCase BloatedCase() {
  FuzzCase c;
  c.query = Parser::MustParseRule(
      "q(X) :- bad(X,Y), p(Y,Z), r(Z), s(X,X), X < Y, Y <= 4, Z < 9");
  c.views = ViewSet(Parser::MustParseProgram(
      "v1(X,Y) :- bad(X,Y).\n"
      "v2(Y,Z) :- p(Y,Z), Y <= 4.\n"
      "v3(Z) :- r(Z), Z < 9.\n"
      "v4(X) :- s(X,X)"));
  return c;
}

/// The synthetic failure: the query still mentions the `bad` relation.
bool MentionsBad(const FuzzCase& c) {
  for (const Atom& a : c.query.body()) {
    if (a.predicate() == "bad") return true;
  }
  return false;
}

TEST(ShrinkerTest, RemovesEverythingIrrelevantToTheFailure) {
  const ShrinkResult result = ShrinkFailingCase(BloatedCase(), MentionsBad);
  EXPECT_TRUE(MentionsBad(result.c));
  EXPECT_EQ(result.c.query.body().size(), 1u);  // just bad(X,Y)
  EXPECT_TRUE(result.c.query.comparisons().empty());
  EXPECT_EQ(result.c.views.size(), 0);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(result.evaluations, 0);
}

TEST(ShrinkerTest, KeepsQueriesWellFormed) {
  // A predicate that always fails would invite dropping the head
  // variable's last subgoal; the well-formedness gate must refuse.
  FuzzCase c;
  c.query = Parser::MustParseRule("q(X) :- p(X), r(Y), X < 3");
  const ShrinkResult result =
      ShrinkFailingCase(c, [](const FuzzCase&) { return true; });
  EXPECT_TRUE(result.c.query.IsSafe());
  EXPECT_FALSE(result.c.query.body().empty());
  // p(X) must survive (head safety); r(Y) and the comparison can go.
  EXPECT_EQ(result.c.query.body().size(), 1u);
  EXPECT_EQ(result.c.query.body()[0].predicate(), "p");
}

TEST(ShrinkerTest, RespectsEvaluationBudget) {
  ShrinkOptions options;
  options.max_evaluations = 2;
  const ShrinkResult result =
      ShrinkFailingCase(BloatedCase(), MentionsBad, options);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LE(result.evaluations, 2);
  EXPECT_TRUE(MentionsBad(result.c));  // best-so-far still fails
}

TEST(ShrinkerTest, ShrinksARealLatticeStyleFailure) {
  // Failure defined on the rewriter's actual output: "a rewriting is
  // found".  The minimal such core of the bloated case must keep a view
  // for every surviving subgoal.
  FuzzCase c;
  c.query = Parser::MustParseRule("q(X) :- p(X,Y), r(Y), Y <= 4");
  c.views = ViewSet(Parser::MustParseProgram(
      "v1(X,Y) :- p(X,Y).\n"
      "v2(Y) :- r(Y).\n"
      "v3(Y) :- r(Y), Y <= 4"));
  auto finds_rewriting = [](const FuzzCase& candidate) {
    return RunWithConfig(candidate, LatticeConfig{}).outcome ==
           RewriteOutcome::kRewritingFound;
  };
  ASSERT_TRUE(finds_rewriting(c));
  const ShrinkResult result = ShrinkFailingCase(c, finds_rewriting);
  EXPECT_TRUE(finds_rewriting(result.c));
  EXPECT_LE(result.c.query.body().size(), c.query.body().size());
  EXPECT_LE(result.c.views.size(), c.views.size());
}

TEST(RegressionTextTest, RoundTripsThroughParseCase) {
  const FuzzCase c = BloatedCase();
  const std::string text = RegressionText(c, "why it failed\nsecond line");
  std::string error;
  const std::optional<FuzzCase> parsed = ParseCase(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->query.ToString(), c.query.ToString());
  ASSERT_EQ(parsed->views.size(), c.views.size());
  for (int i = 0; i < c.views.size(); ++i) {
    EXPECT_EQ(parsed->views.views()[i].ToString(),
              c.views.views()[i].ToString());
  }
}

}  // namespace
}  // namespace testing
}  // namespace cqac
