#include "containment/homomorphism.h"

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(UnifyAtomOntoTest, SimpleVariableBinding) {
  const Atom from = Parser::MustParseRule("x() :- a(X,Y)").body()[0];
  const Atom to = Parser::MustParseRule("x() :- a(1,2)").body()[0];
  const auto s = UnifyAtomOnto(from, to, Substitution());
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->Lookup("X"), Term::Constant(1));
  EXPECT_EQ(s->Lookup("Y"), Term::Constant(2));
}

TEST(UnifyAtomOntoTest, PredicateMismatch) {
  const Atom from("a", {Term::Variable("X")});
  const Atom to("b", {Term::Variable("X")});
  EXPECT_FALSE(UnifyAtomOnto(from, to, Substitution()).has_value());
}

TEST(UnifyAtomOntoTest, ArityMismatch) {
  const Atom from("a", {Term::Variable("X")});
  const Atom to("a", {Term::Variable("X"), Term::Variable("Y")});
  EXPECT_FALSE(UnifyAtomOnto(from, to, Substitution()).has_value());
}

TEST(UnifyAtomOntoTest, ConstantMustMatchExactly) {
  const Atom from("a", {Term::Constant(3)});
  EXPECT_TRUE(
      UnifyAtomOnto(from, Atom("a", {Term::Constant(3)}), Substitution())
          .has_value());
  EXPECT_FALSE(
      UnifyAtomOnto(from, Atom("a", {Term::Constant(4)}), Substitution())
          .has_value());
  EXPECT_FALSE(
      UnifyAtomOnto(from, Atom("a", {Term::Variable("X")}), Substitution())
          .has_value());
}

TEST(UnifyAtomOntoTest, RepeatedVariableNeedsEqualImages) {
  const Atom from("a", {Term::Variable("X"), Term::Variable("X")});
  EXPECT_TRUE(UnifyAtomOnto(
                  from, Atom("a", {Term::Constant(1), Term::Constant(1)}),
                  Substitution())
                  .has_value());
  EXPECT_FALSE(UnifyAtomOnto(
                   from, Atom("a", {Term::Constant(1), Term::Constant(2)}),
                   Substitution())
                   .has_value());
}

TEST(UnifyAtomOntoTest, RespectsBaseBindings) {
  Substitution base;
  base.Bind("X", Term::Constant(7));
  const Atom from("a", {Term::Variable("X")});
  EXPECT_FALSE(
      UnifyAtomOnto(from, Atom("a", {Term::Constant(3)}), base).has_value());
  EXPECT_TRUE(
      UnifyAtomOnto(from, Atom("a", {Term::Constant(7)}), base).has_value());
}

TEST(ContainmentMappingTest, IdentityMappingExists) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  EXPECT_TRUE(FindContainmentMapping(q, q).has_value());
}

TEST(ContainmentMappingTest, MapsOntoSpecializedQuery) {
  const ConjunctiveQuery general = Parser::MustParseRule("q(X) :- a(X,Y)");
  const ConjunctiveQuery special = Parser::MustParseRule("q(X) :- a(X,X)");
  // general -> special exists (Y -> X); witnesses special ⊑ general.
  EXPECT_TRUE(FindContainmentMapping(general, special).has_value());
  // special -> general requires a(X,X) in the target; absent.
  EXPECT_FALSE(FindContainmentMapping(special, general).has_value());
}

TEST(ContainmentMappingTest, HeadMustMapExactly) {
  const ConjunctiveQuery q1 = Parser::MustParseRule("q(X) :- a(X,Y)");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(Y) :- a(X,Y)");
  // Mapping q1 -> q2 must send X to Y (head) and then a(Y, ?) must match
  // a(X,Y): fails.
  EXPECT_FALSE(FindContainmentMapping(q1, q2).has_value());
}

TEST(ContainmentMappingTest, HeadConstantsMustAgree) {
  const ConjunctiveQuery q1 = Parser::MustParseRule("q(3) :- a(X)");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(4) :- a(X)");
  EXPECT_FALSE(FindContainmentMapping(q1, q2).has_value());
  const ConjunctiveQuery q3 = Parser::MustParseRule("q(3) :- a(Y)");
  EXPECT_TRUE(FindContainmentMapping(q1, q3).has_value());
}

TEST(ContainmentMappingTest, HeadVariableOntoConstant) {
  const ConjunctiveQuery q1 = Parser::MustParseRule("q(X) :- a(X)");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(3) :- a(3)");
  EXPECT_TRUE(FindContainmentMapping(q1, q2).has_value());
}

TEST(ContainmentMappingTest, AllMappingsEnumerated) {
  const ConjunctiveQuery from = Parser::MustParseRule("q() :- a(X)");
  const ConjunctiveQuery to = Parser::MustParseRule("q() :- a(U), a(V)");
  const std::vector<Substitution> all = AllContainmentMappings(from, to);
  EXPECT_EQ(all.size(), 2u);
}

TEST(ContainmentMappingTest, MappingCountMultiplies) {
  const ConjunctiveQuery from = Parser::MustParseRule("q() :- a(X), b(Y)");
  const ConjunctiveQuery to =
      Parser::MustParseRule("q() :- a(U), a(V), b(W), b(S), b(T)");
  EXPECT_EQ(AllContainmentMappings(from, to).size(), 6u);
}

TEST(ContainmentMappingTest, SharedVariableConstrainsChoices) {
  const ConjunctiveQuery from = Parser::MustParseRule("q() :- a(X), b(X)");
  const ConjunctiveQuery to =
      Parser::MustParseRule("q() :- a(1), a(2), b(2), b(3)");
  const std::vector<Substitution> all = AllContainmentMappings(from, to);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].Lookup("X"), Term::Constant(2));
}

TEST(ContainmentMappingTest, ForEachStopsEarly) {
  const ConjunctiveQuery from = Parser::MustParseRule("q() :- a(X)");
  const ConjunctiveQuery to =
      Parser::MustParseRule("q() :- a(1), a(2), a(3)");
  int seen = 0;
  ForEachContainmentMapping(from, to, [&seen](const Substitution&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_EQ(seen, 2);
}

TEST(ContainmentMappingTest, NoMappingWhenPredicateMissing) {
  const ConjunctiveQuery from = Parser::MustParseRule("q() :- c(X)");
  const ConjunctiveQuery to = Parser::MustParseRule("q() :- a(X)");
  EXPECT_FALSE(FindContainmentMapping(from, to).has_value());
}

}  // namespace
}  // namespace cqac
