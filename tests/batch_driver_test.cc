#include "runtime/batch_driver.h"

#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace cqac {
namespace {

// The paper's running example as a batch job block.
constexpr char kPaperJob[] =
    "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z\n"
    "query q(A) :- r(A), s(A,A), A <= 8\n";

TEST(BatchDriverTest, EmptyInput) {
  std::istringstream in("");
  std::ostringstream out;
  const BatchSummary summary = RunBatch(in, out);
  EXPECT_EQ(summary.jobs_total, 0);
  EXPECT_EQ(out.str(), "batch: 0 jobs\n");
}

TEST(BatchDriverTest, CommentsAndSeparatorsProduceNoJobs) {
  std::istringstream in("% a comment\n# another\n---\nrun\n\n\n");
  std::ostringstream out;
  const BatchSummary summary = RunBatch(in, out);
  EXPECT_EQ(summary.jobs_total, 0);
}

TEST(BatchDriverTest, SingleJobFindsPaperRewriting) {
  std::istringstream in(kPaperJob);
  std::ostringstream out;
  const BatchSummary summary = RunBatch(in, out);
  EXPECT_EQ(summary.jobs_total, 1);
  EXPECT_EQ(summary.found, 1);
  EXPECT_EQ(summary.errors, 0);
  EXPECT_NE(out.str().find("job 0: equivalent rewriting"), std::string::npos);
}

TEST(BatchDriverTest, OutputsAppearInInputOrder) {
  std::string input;
  for (int i = 0; i < 6; ++i) {
    input += kPaperJob;
    input += "run\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  BatchOptions options;
  options.jobs = 4;
  const BatchSummary summary = RunBatch(in, out, options);
  EXPECT_EQ(summary.jobs_total, 6);
  EXPECT_EQ(summary.found, 6);

  size_t previous = 0;
  for (int i = 0; i < 6; ++i) {
    const size_t at = out.str().find("job " + std::to_string(i) + ":");
    ASSERT_NE(at, std::string::npos) << "missing job " << i;
    EXPECT_GE(at, previous) << "job " << i << " printed out of order";
    previous = at;
  }
}

TEST(BatchDriverTest, SharedCacheServesDuplicateJobs) {
  std::istringstream in(std::string(kPaperJob) + "run\n" + kPaperJob);
  std::ostringstream out;
  const BatchSummary summary = RunBatch(in, out);
  EXPECT_EQ(summary.jobs_total, 2);
  EXPECT_EQ(summary.found, 2);
  // The second job's containment checks are verdicts the first already
  // computed; at least one must be a hit whichever order they ran in.
  EXPECT_GT(summary.cache.hits, 0);
  EXPECT_NE(out.str().find("cache: "), std::string::npos);
}

TEST(BatchDriverTest, ParseErrorsAreLocalizedToTheirJob) {
  std::istringstream in(
      "query this is not datalog\n"
      "run\n" +
      std::string(kPaperJob) +
      "run\n"
      "view v(X) :- p(X,Y)\n");
  std::ostringstream out;
  const BatchSummary summary = RunBatch(in, out);
  EXPECT_EQ(summary.jobs_total, 3);
  EXPECT_EQ(summary.errors, 2);
  EXPECT_EQ(summary.found, 1);
  EXPECT_NE(out.str().find("job 0: error: bad query"), std::string::npos);
  EXPECT_NE(out.str().find("job 1: equivalent rewriting"), std::string::npos);
  EXPECT_NE(out.str().find("job 2: error: job has views but no query"),
            std::string::npos);
}

TEST(BatchDriverTest, UnknownDirectiveIsAnError) {
  std::istringstream in("frobnicate everything\n");
  std::ostringstream out;
  const BatchSummary summary = RunBatch(in, out);
  EXPECT_EQ(summary.jobs_total, 1);
  EXPECT_EQ(summary.errors, 1);
  EXPECT_NE(out.str().find("unknown directive 'frobnicate'"),
            std::string::npos);
}

TEST(BatchDriverTest, NoRewritingJobCountedAsNone) {
  std::istringstream in(
      "view v(A) :- z9(A,B)\n"
      "query q(X) :- p0(X,Y)\n");
  std::ostringstream out;
  const BatchSummary summary = RunBatch(in, out);
  EXPECT_EQ(summary.jobs_total, 1);
  EXPECT_EQ(summary.none, 1);
  EXPECT_NE(out.str().find("no equivalent rewriting"), std::string::npos);
}

TEST(BatchDriverTest, EchoIncludesDefinitions) {
  std::istringstream in(kPaperJob);
  std::ostringstream out;
  BatchOptions options;
  options.echo = true;
  RunBatch(in, out, options);
  EXPECT_NE(out.str().find("query q(A)"), std::string::npos);
  EXPECT_NE(out.str().find("view v(Y,Z)"), std::string::npos);
}

TEST(BatchDriverTest, StatsFooterAggregatesPhase1AcrossJobs) {
  std::istringstream in(std::string(kPaperJob) + "\nrun\n" + kPaperJob);
  std::ostringstream out;
  BatchOptions options;
  options.print_stats = true;
  const BatchSummary summary = RunBatch(in, out, options);
  EXPECT_EQ(summary.jobs_total, 2);
  EXPECT_NE(out.str().find("phase-1: "), std::string::npos);
  EXPECT_GT(summary.rewrite.canonical_databases, 0);
  // Each job's canonical databases land in the merged total, and the memo
  // split accounts for every kept database.
  EXPECT_EQ(summary.rewrite.phase1_memo_hits +
                summary.rewrite.phase1_memo_misses,
            summary.rewrite.kept_canonical_databases);
}

TEST(BatchDriverTest, JsonSummaryIncludesMemoCounters) {
  std::istringstream in(kPaperJob);
  std::ostringstream out;
  BatchOptions options;
  options.json_summary = true;
  RunBatch(in, out, options);
  EXPECT_NE(out.str().find("{\"schema_version\": 5, \"jobs\": 1"),
            std::string::npos);
  EXPECT_NE(out.str().find("\"phase1_memo_hits\": "), std::string::npos);
  EXPECT_NE(out.str().find("\"phase1_memo_misses\": "), std::string::npos);
  EXPECT_NE(out.str().find("\"phase1_ns\": "), std::string::npos);
  EXPECT_NE(out.str().find("\"tier1_grid_hits\": "), std::string::npos);
  EXPECT_NE(out.str().find("\"tier2_jointree_evals\": "), std::string::npos);
}

TEST(BatchDriverTest, FooterCarriesTheServiceCounters) {
  std::istringstream in(kPaperJob);
  std::ostringstream out;
  RunBatch(in, out);
  // The stdin driver has no deadlines or admission control, but the
  // footer reports the shared taxonomy either way so batch and service
  // outputs stay aligned.
  EXPECT_NE(out.str().find("0 deadline-exceeded, 0 rejected"),
            std::string::npos);
}

TEST(BatchDriverTest, JsonSummaryCarriesTheServiceCounters) {
  std::istringstream in(kPaperJob);
  std::ostringstream out;
  BatchOptions options;
  options.json_summary = true;
  RunBatch(in, out, options);
  EXPECT_NE(out.str().find("\"deadline_exceeded\": 0"), std::string::npos);
  EXPECT_NE(out.str().find("\"rejected\": 0"), std::string::npos);
}

TEST(WriteBatchFooterTest, ReportsNonzeroServiceCounters) {
  BatchSummary summary;
  summary.jobs_total = 5;
  summary.found = 2;
  summary.deadline_exceeded = 2;
  summary.rejected = 1;
  std::ostringstream out;
  WriteBatchFooter(out, summary, BatchOptions());
  EXPECT_NE(out.str().find(
                "batch: 5 jobs, 2 found, 0 none, 0 aborted, "
                "2 deadline-exceeded, 1 rejected, 0 errors"),
            std::string::npos);
}

TEST(ParseJobBlockTest, ParsesOneBlock) {
  const BatchJob job = ParseJobBlock(kPaperJob);
  EXPECT_TRUE(job.error.empty()) << job.error;
  ASSERT_TRUE(job.query.has_value());
  EXPECT_EQ(job.query->name(), "q");
  EXPECT_EQ(job.views.views().size(), 1u);
}

TEST(ParseJobBlockTest, EmptyAndMultiJobTextsAreErrors) {
  EXPECT_EQ(ParseJobBlock("").error, "empty job");
  EXPECT_EQ(ParseJobBlock("% only a comment\n").error, "empty job");
  const BatchJob multi =
      ParseJobBlock(std::string(kPaperJob) + "run\n" + kPaperJob);
  EXPECT_NE(multi.error.find("send one job per request"), std::string::npos);
}

TEST(ParseJobBlockTest, SharesStreamParserErrorWording) {
  // The service parses request blocks with the same code as the stdin
  // driver, so error strings match verbatim.
  EXPECT_EQ(ParseJobBlock("view v(X) :- p(X,Y)\n").error,
            "job has views but no query");
  EXPECT_NE(ParseJobBlock("frobnicate\n").error.find("unknown directive"),
            std::string::npos);
}

TEST(BatchDriverTest, FootersAbsentByDefault) {
  std::istringstream in(kPaperJob);
  std::ostringstream out;
  RunBatch(in, out);
  EXPECT_EQ(out.str().find("phase-1: "), std::string::npos);
  EXPECT_EQ(out.str().find("{\"jobs\""), std::string::npos);
}

}  // namespace
}  // namespace cqac
