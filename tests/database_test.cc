#include "engine/database.h"

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(RelationTest, InsertAndContains) {
  Relation r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert({Rational(1), Rational(2)}));
  EXPECT_FALSE(r.Insert({Rational(1), Rational(2)}));  // Duplicate.
  EXPECT_TRUE(r.Insert({Rational(1), Rational(3)}));
  EXPECT_EQ(r.size(), 2);
  EXPECT_TRUE(r.Contains({Rational(1), Rational(2)}));
  EXPECT_FALSE(r.Contains({Rational(2), Rational(1)}));
}

TEST(RelationTest, SubsetOf) {
  Relation small, big;
  small.Insert({Rational(1)});
  big.Insert({Rational(1)});
  big.Insert({Rational(2)});
  EXPECT_TRUE(small.SubsetOf(big));
  EXPECT_FALSE(big.SubsetOf(small));
  EXPECT_TRUE(small.SubsetOf(small));
  EXPECT_TRUE(Relation().SubsetOf(small));
}

TEST(RelationTest, EqualityAndToString) {
  Relation a, b;
  a.Insert({Rational(1), Rational(2)});
  b.Insert({Rational(1), Rational(2)});
  EXPECT_EQ(a, b);
  b.Insert({Rational(3), Rational(4)});
  EXPECT_NE(a, b);
  EXPECT_EQ(b.ToString(), "{(1,2), (3,4)}");
}

TEST(DatabaseTest, InsertAndGet) {
  Database db;
  db.Insert("a", {Rational(1), Rational(2)});
  db.Insert("b", {Rational(3)});
  EXPECT_EQ(db.Get("a").size(), 1);
  EXPECT_EQ(db.Get("b").size(), 1);
  EXPECT_TRUE(db.Get("missing").empty());
}

TEST(DatabaseTest, InsertFactRequiresGroundAtom) {
  Database db;
  EXPECT_TRUE(db.InsertFact(Atom("a", {Term::Constant(1)})));
  EXPECT_FALSE(db.InsertFact(Atom("a", {Term::Variable("X")})));
  EXPECT_EQ(db.Get("a").size(), 1);
}

TEST(DatabaseTest, ZeroArityFact) {
  Database db;
  EXPECT_TRUE(db.InsertFact(Atom("flag", {})));
  EXPECT_TRUE(db.Get("flag").Contains({}));
}

TEST(DatabaseTest, ToStringListsRelations) {
  Database db;
  db.Insert("a", {Rational(1)});
  db.Insert("b", {Rational(2)});
  EXPECT_EQ(db.ToString(), "a: {(1)}\nb: {(2)}");
}

TEST(DatabaseTest, RationalValuedTuples) {
  Database db;
  db.Insert("p", {Rational(1, 2)});
  EXPECT_TRUE(db.Get("p").Contains({Rational(2, 4)}));
}

}  // namespace
}  // namespace cqac
