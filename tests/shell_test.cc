#include "cli/shell.h"

#include <sstream>

#include "gtest/gtest.h"

namespace cqac {
namespace {

/// Runs a scripted session and returns everything the shell printed.
std::string RunSession(const std::string& script) {
  std::ostringstream out;
  Shell shell(out);
  std::istringstream in(script);
  shell.ProcessStream(in, /*interactive=*/false);
  return out.str();
}

TEST(ShellTest, HelpListsCommands) {
  const std::string out = RunSession("help\n");
  EXPECT_NE(out.find("rewrite"), std::string::npos);
  EXPECT_NE(out.find("contained"), std::string::npos);
}

TEST(ShellTest, UnknownCommandReported) {
  const std::string out = RunSession("frobnicate\n");
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST(ShellTest, CommentsAndBlankLinesIgnored) {
  EXPECT_EQ(RunSession("% a comment\n\n   \n"), "");
}

TEST(ShellTest, QuitStopsProcessing) {
  const std::string out = RunSession("quit\nhelp\n");
  EXPECT_EQ(out.find("commands"), std::string::npos);
}

TEST(ShellTest, AddViewAndQuery) {
  const std::string out = RunSession(
      "view v(T) :- a(T).\n"
      "query q(X) :- a(X), X < 7.\n"
      "show\n");
  EXPECT_NE(out.find("view added"), std::string::npos);
  EXPECT_NE(out.find("query set"), std::string::npos);
  EXPECT_NE(out.find("query: q(X) :- a(X), X < 7"), std::string::npos);
}

TEST(ShellTest, DuplicateViewNameRejected) {
  const std::string out = RunSession(
      "view v(T) :- a(T).\n"
      "view v(T) :- b(T).\n");
  EXPECT_NE(out.find("already exists"), std::string::npos);
}

TEST(ShellTest, UnsafeQueryRejected) {
  const std::string out = RunSession("query q(X) :- a(Y).\n");
  EXPECT_NE(out.find("unsafe"), std::string::npos);
}

TEST(ShellTest, ParseErrorSurfaced) {
  const std::string out = RunSession("view v(T) :- \n");
  EXPECT_NE(out.find("error"), std::string::npos);
}

TEST(ShellTest, RewritePaperExample5) {
  const std::string out = RunSession(
      "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.\n"
      "query q(A) :- r(A), s(A,A), A <= 8.\n"
      "rewrite verify coalesce minimize\n");
  EXPECT_NE(out.find("equivalent rewriting"), std::string::npos);
  EXPECT_NE(out.find("verified=yes"), std::string::npos);
  EXPECT_NE(out.find("q(A) :- v(A,A), A <= 8"), std::string::npos);
}

TEST(ShellTest, RewriteReportsNoRewriting) {
  const std::string out = RunSession(
      "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z.\n"
      "query q(A) :- r(A), s(A,A), A <= 8.\n"
      "rewrite\n");
  EXPECT_NE(out.find("no equivalent rewriting"), std::string::npos);
}

TEST(ShellTest, RewriteExplainPrintsTableau) {
  const std::string out = RunSession(
      "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.\n"
      "query q(A) :- r(A), s(A,A), A <= 8.\n"
      "rewrite explain\n");
  EXPECT_NE(out.find("two-column tableau"), std::string::npos);
}

TEST(ShellTest, RewriteWithoutQueryErrors) {
  const std::string out = RunSession("rewrite\n");
  EXPECT_NE(out.find("set a query first"), std::string::npos);
}

TEST(ShellTest, ContainedRewrite) {
  const std::string out = RunSession(
      "view v(T) :- a(T), T < 10.\n"
      "query q(X) :- a(X), X < 7.\n"
      "contained-rewrite\n");
  EXPECT_NE(out.find("contained rewritings"), std::string::npos);
  EXPECT_NE(out.find("v(X)"), std::string::npos);
}

TEST(ShellTest, LetAndContainment) {
  const std::string out = RunSession(
      "let tight q(X) :- a(X), X < 3.\n"
      "let loose q(X) :- a(X), X < 5.\n"
      "contained tight loose\n"
      "contained loose tight\n"
      "equivalent tight tight\n");
  EXPECT_NE(out.find("tight = "), std::string::npos);
  // First check: contained; second: not contained; third: equivalent.
  const size_t first = out.find("contained\n");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(out.find("not contained"), std::string::npos);
  EXPECT_NE(out.find("equivalent\n"), std::string::npos);
}

TEST(ShellTest, MinimizeFoldsRedundantSubgoal) {
  // One of the two interchangeable subgoals must fold away.
  const std::string out =
      RunSession("minimize q(X) :- a(X,Y), a(X,Z)\n");
  const bool kept_y = out.find("q(X) :- a(X,Y)\n") != std::string::npos;
  const bool kept_z = out.find("q(X) :- a(X,Z)\n") != std::string::npos;
  EXPECT_TRUE(kept_y || kept_z) << out;
  EXPECT_EQ(out.find("), a("), std::string::npos) << out;
}

TEST(ShellTest, AcyclicCheck) {
  const std::string out = RunSession(
      "acyclic q() :- a(X,Y), b(Y,Z), c(Z,X)\n"
      "acyclic q(X) :- a(X,Y)\n");
  EXPECT_NE(out.find("cyclic"), std::string::npos);
  EXPECT_NE(out.find("acyclic"), std::string::npos);
}

TEST(ShellTest, FactsAndEvaluation) {
  const std::string out = RunSession(
      "fact a(1,2).\n"
      "fact a(2,3).\n"
      "eval q(X,Z) :- a(X,Y), a(Y,Z)\n");
  EXPECT_NE(out.find("fact added"), std::string::npos);
  EXPECT_NE(out.find("{(1,3)}"), std::string::npos);
}

TEST(ShellTest, NonGroundFactRejected) {
  const std::string out = RunSession("fact a(X).\n");
  EXPECT_NE(out.find("error"), std::string::npos);
}

TEST(ShellTest, EvalRewritingRunsOverMaterializedViews) {
  const std::string out = RunSession(
      "view v(T) :- a(T), T < 10.\n"
      "query q(X) :- a(X), X < 7.\n"
      "fact a(5).\n"
      "fact a(8).\n"
      "fact a(12).\n"
      "rewrite coalesce minimize\n"
      "eval-rewriting\n"
      "eval q(X) :- a(X), X < 7\n");
  // The rewriting over the views returns exactly the direct answer {5}.
  const size_t rewriting_answer = out.find("{(5)}");
  ASSERT_NE(rewriting_answer, std::string::npos);
  EXPECT_NE(out.find("{(5)}", rewriting_answer + 1), std::string::npos);
}

TEST(ShellTest, RewriteStatsFlagPrintsPhase1Breakdown) {
  const std::string out = RunSession(
      "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.\n"
      "query q(A) :- r(A), s(A,A), A <= 8.\n"
      "rewrite stats\n");
  EXPECT_NE(out.find("phase-1: "), std::string::npos);
  EXPECT_NE(out.find("databases visited"), std::string::npos);
  EXPECT_NE(out.find("deduped (memo hits)"), std::string::npos);
  // Without the flag, the breakdown is absent.
  const std::string quiet = RunSession(
      "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.\n"
      "query q(A) :- r(A), s(A,A), A <= 8.\n"
      "rewrite\n");
  EXPECT_EQ(quiet.find("phase-1: "), std::string::npos);
}

TEST(ShellTest, RewriteJsonFlagEmitsCounterRecord) {
  const std::string out = RunSession(
      "view v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z.\n"
      "query q(A) :- r(A), s(A,A), A <= 8.\n"
      "rewrite json\n");
  EXPECT_NE(out.find("{\"schema_version\": 5, \"outcome\": \"found\""),
            std::string::npos);
  EXPECT_NE(out.find("\"phase1_memo_hits\": "), std::string::npos);
  EXPECT_NE(out.find("\"phase1_memo_misses\": "), std::string::npos);
  EXPECT_NE(out.find("\"phase1_ns\": "), std::string::npos);
  EXPECT_NE(out.find("\"phase2_ns\": "), std::string::npos);
  EXPECT_NE(out.find("\"tier\": "), std::string::npos);
  EXPECT_NE(out.find("\"tier_reason\": \""), std::string::npos);
}

TEST(ShellTest, ClearResetsState) {
  const std::string out = RunSession(
      "view v(T) :- a(T).\n"
      "clear\n"
      "rewrite\n");
  EXPECT_NE(out.find("state cleared"), std::string::npos);
  EXPECT_NE(out.find("set a query first"), std::string::npos);
}

}  // namespace
}  // namespace cqac
