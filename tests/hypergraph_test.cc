#include "ast/hypergraph.h"

#include <set>

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(HypergraphTest, SingleAtomIsAcyclic) {
  EXPECT_TRUE(IsAcyclic(Parser::MustParseRule("q(X) :- a(X,Y)")));
}

TEST(HypergraphTest, EmptyBodyIsAcyclic) {
  ConjunctiveQuery q(Atom("q", {}), {});
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(HypergraphTest, ChainIsAcyclic) {
  EXPECT_TRUE(IsAcyclic(
      Parser::MustParseRule("q(X,W) :- a(X,Y), b(Y,Z), c(Z,W)")));
}

TEST(HypergraphTest, StarIsAcyclic) {
  EXPECT_TRUE(IsAcyclic(
      Parser::MustParseRule("q(X) :- a(X,Y), b(X,Z), c(X,W)")));
}

TEST(HypergraphTest, TriangleIsCyclic) {
  EXPECT_FALSE(IsAcyclic(
      Parser::MustParseRule("q() :- a(X,Y), b(Y,Z), c(Z,X)")));
}

TEST(HypergraphTest, PaperExample3HeptagonIsCyclic) {
  EXPECT_FALSE(IsAcyclic(Parser::MustParseRule(
      "q() :- a(X1,X2), a(X2,X3), a(X3,X4), a(X4,X5), a(X5,X6), a(X6,X7), "
      "a(X7,X1)")));
}

TEST(HypergraphTest, TriangleWithCoveringEdgeIsAcyclic) {
  // A ternary atom covering all three variables absorbs the cycle
  // (alpha-acyclicity is not closed under subqueries).
  EXPECT_TRUE(IsAcyclic(Parser::MustParseRule(
      "q() :- a(X,Y), b(Y,Z), c(Z,X), t(X,Y,Z)")));
}

TEST(HypergraphTest, ComparisonsDoNotCreateCycles) {
  EXPECT_TRUE(IsAcyclic(Parser::MustParseRule(
      "q(X) :- a(X,Y), b(Y,Z), X < Z, Z < X")));
}

TEST(HypergraphTest, EliminationOrderCoversAllAtoms) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,W) :- a(X,Y), b(Y,Z), c(Z,W)");
  const std::vector<int> order = GyoEliminationOrder(q);
  ASSERT_EQ(order.size(), 3u);
  std::set<int> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(HypergraphTest, EliminationOrderEmptyForCyclic) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q() :- a(X,Y), b(Y,Z), c(Z,X)");
  EXPECT_TRUE(GyoEliminationOrder(q).empty());
}

TEST(HypergraphTest, JoinVariables) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X,Y), b(Y,Z), c(W)");
  EXPECT_EQ(JoinVariables(q), (std::vector<std::string>{"Y"}));
}

TEST(HypergraphTest, JoinVariablesOfSelfJoin) {
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- a(X,Y), a(Y,X)");
  const std::vector<std::string> joins = JoinVariables(q);
  EXPECT_EQ(joins.size(), 2u);
}

TEST(HypergraphTest, DuplicateAtomsStayAcyclic) {
  EXPECT_TRUE(IsAcyclic(Parser::MustParseRule("q() :- a(X,Y), a(X,Y)")));
}

}  // namespace
}  // namespace cqac
