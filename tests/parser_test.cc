#include "parser/parser.h"

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(ParserTest, SimpleRule) {
  std::string error;
  auto q = Parser::ParseRule("q(X) :- a(X,Y), b(Y)", &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ(q->ToString(), "q(X) :- a(X,Y), b(Y)");
}

TEST(ParserTest, RuleWithComparisons) {
  auto q = Parser::ParseRule("q(X,X) :- a(X,X), b(X), X < 7");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->comparisons().size(), 1u);
  EXPECT_EQ(q->comparisons()[0].ToString(), "X < 7");
}

TEST(ParserTest, AllComparisonOperators) {
  auto q = Parser::ParseRule(
      "q(A,B) :- a(A,B), A < 1, A <= 2, A = 3, A != 4, A >= 5, A > 6, A == B");
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->comparisons().size(), 7u);
  EXPECT_EQ(q->comparisons()[0].op(), CompOp::kLt);
  EXPECT_EQ(q->comparisons()[1].op(), CompOp::kLe);
  EXPECT_EQ(q->comparisons()[2].op(), CompOp::kEq);
  EXPECT_EQ(q->comparisons()[3].op(), CompOp::kNe);
  EXPECT_EQ(q->comparisons()[4].op(), CompOp::kGe);
  EXPECT_EQ(q->comparisons()[5].op(), CompOp::kGt);
  EXPECT_EQ(q->comparisons()[6].op(), CompOp::kEq);  // `==` accepted.
}

TEST(ParserTest, BooleanHeadAndTrailingPeriod) {
  auto q = Parser::ParseRule("q() :- p(X), X >= 0.");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->IsBoolean());
}

TEST(ParserTest, NumericConstants) {
  auto q = Parser::ParseRule("q(X) :- a(X, 3, -2, 2.5, -0.25)");
  ASSERT_TRUE(q.has_value());
  const auto& args = q->body()[0].args();
  EXPECT_EQ(args[1], Term::Constant(3));
  EXPECT_EQ(args[2], Term::Constant(-2));
  EXPECT_EQ(args[3], Term::Constant(Rational(5, 2)));
  EXPECT_EQ(args[4], Term::Constant(Rational(-1, 4)));
}

TEST(ParserTest, RationalLiteralRoundTripsToString) {
  // Rational::ToString emits num/den; the lexer must accept that form so
  // serialized queries reparse identically.
  auto q = Parser::ParseRule("q(X) :- a(X), X <= 5/2, -7/4 < X");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->comparisons()[0].ToString(), "X <= 5/2");
  EXPECT_EQ(q->comparisons()[1].ToString(), "-7/4 < X");
  auto again = Parser::ParseRule(q->ToString());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->ToString(), q->ToString());
}

TEST(ParserTest, ComparisonBetweenConstants) {
  auto q = Parser::ParseRule("q() :- a(X), 3 < 5");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->comparisons()[0].ToString(), "3 < 5");
}

TEST(ParserTest, ComparisonWithConstantOnLeft) {
  auto q = Parser::ParseRule("q(X) :- a(X), 5 > X");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->comparisons()[0].lhs(), Term::Constant(5));
  EXPECT_EQ(q->comparisons()[0].op(), CompOp::kGt);
}

TEST(ParserTest, CommentsAndWhitespace) {
  auto q = Parser::ParseRule(
      "% the running example\n"
      "q(X)  :-\n"
      "   a(X, Y),   % join\n"
      "   X < 7.\n");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->ToString(), "q(X) :- a(X,Y), X < 7");
}

TEST(ParserTest, PrimedVariableNames) {
  // The paper uses names like X2' in Example 3.
  auto q = Parser::ParseRule("q(X') :- a(X', X2')");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->HeadVariables(), (std::vector<std::string>{"X'"}));
}

TEST(ParserTest, ProgramWithMultipleRules) {
  auto rules = Parser::ParseProgram(
      "q(X) :- a(X,Y), X < 7.\n"
      "v1(T,U) :- a(S,T), b(U), T <= S, S <= U.\n"
      "v2(T,U) :- a(S,T), b(U), T <= S, S < U.");
  ASSERT_TRUE(rules.has_value());
  ASSERT_EQ(rules->size(), 3u);
  EXPECT_EQ((*rules)[1].name(), "v1");
  EXPECT_EQ((*rules)[2].comparisons()[1].op(), CompOp::kLt);
}

TEST(ParserTest, MustParseUnion) {
  const UnionQuery u = Parser::MustParseUnion(
      "r0() :- v1().\n"
      "r0() :- v2().");
  EXPECT_EQ(u.size(), 2);
}

TEST(ParserTest, ErrorOnLowercaseArgument) {
  std::string error;
  auto q = Parser::ParseRule("q(X) :- a(X, foo)", &error);
  EXPECT_FALSE(q.has_value());
  EXPECT_NE(error.find("constants must be numeric"), std::string::npos);
}

TEST(ParserTest, ErrorOnMissingTurnstile) {
  std::string error;
  auto q = Parser::ParseRule("q(X) a(X)", &error);
  EXPECT_FALSE(q.has_value());
  EXPECT_NE(error.find("':-'"), std::string::npos);
}

TEST(ParserTest, ErrorOnUnbalancedParen) {
  std::string error;
  auto q = Parser::ParseRule("q(X :- a(X)", &error);
  EXPECT_FALSE(q.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ParserTest, ErrorOnBareBang) {
  std::string error;
  auto q = Parser::ParseRule("q(X) :- a(X), X ! 3", &error);
  EXPECT_FALSE(q.has_value());
}

TEST(ParserTest, ErrorOnTrailingGarbage) {
  std::string error;
  auto q = Parser::ParseRule("q(X) :- a(X). garbage", &error);
  EXPECT_FALSE(q.has_value());
}

TEST(ParserTest, ErrorMentionsLineAndColumn) {
  std::string error;
  auto q = Parser::ParseRule("q(X) :-\n a(X,", &error);
  EXPECT_FALSE(q.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ParserTest, ErrorOnUpperCasePredicate) {
  std::string error;
  auto q = Parser::ParseRule("Q(X) :- a(X)", &error);
  EXPECT_FALSE(q.has_value());
}

TEST(ParserTest, RoundTripThroughToString) {
  const std::string text = "q(X,Y) :- a(X,Z), b(Z,Y), X < 5, Y >= 1/1";
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Y) :- a(X,Z), b(Z,Y), X < 5, Y >= 1");
  const ConjunctiveQuery again = Parser::MustParseRule(q.ToString());
  EXPECT_EQ(q, again);
  (void)text;
}

TEST(ParserTest, PaperExample1) {
  const std::vector<ConjunctiveQuery> rules = Parser::MustParseProgram(
      "q(X, X) :- a(X, X), b(X), X < 7.\n"
      "v1(T, U) :- a(S, T), b(U), T <= S, S <= U.\n"
      "v2(T, U) :- a(S, T), b(U), T <= S, S < U.");
  EXPECT_EQ(rules.size(), 3u);
}

}  // namespace
}  // namespace cqac
