#include "rewriting/contained_rewriter.h"

#include "containment/cqac_containment.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/expansion.h"

namespace cqac {
namespace {

ViewSet Views(const std::string& program) {
  return ViewSet(Parser::MustParseProgram(program));
}

UnionQuery ExpandedSimplified(const UnionQuery& rewriting,
                              const ViewSet& views) {
  UnionQuery out;
  for (const ConjunctiveQuery& d : rewriting.disjuncts()) {
    std::optional<ConjunctiveQuery> s = SimplifyQuery(Expand(d, views));
    if (s.has_value()) out.Add(*std::move(s));
  }
  return out;
}

TEST(IsSemiIntervalTest, Classification) {
  EXPECT_TRUE(IsSemiInterval(
      Parser::MustParseRule("q(X) :- a(X), X < 7, X >= 0")));
  EXPECT_TRUE(IsSemiInterval(Parser::MustParseRule("q(X) :- a(X)")));
  EXPECT_TRUE(IsSemiInterval(
      Parser::MustParseRule("q(X) :- a(X,Y), X = Y, 3 <= X")));
  EXPECT_FALSE(IsSemiInterval(
      Parser::MustParseRule("q(X) :- a(X,Y), X < Y")));
}

TEST(ContainedRewriterTest, EveryDisjunctIsContained) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ViewSet views = Views(
      "v1(T) :- a(T), T < 3.\n"
      "v2(T) :- a(T), T < 10.");
  const ContainedRewriteResult result = FindContainedRewritings(q, views);
  ASSERT_GT(result.rewriting.size(), 0);
  for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    std::optional<ConjunctiveQuery> exp = SimplifyQuery(Expand(d, views));
    ASSERT_TRUE(exp.has_value());
    EXPECT_TRUE(CqacContainedCanonical(*exp, q)) << d.ToString();
  }
}

TEST(ContainedRewriterTest, CoversTheSemiIntervalMaximum) {
  // v2 restricted by X < 7 IS the query; the MCR must be equivalent.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ViewSet views = Views("v2(T) :- a(T), T < 10.");
  const ContainedRewriteResult result = FindContainedRewritings(q, views);
  const UnionQuery expanded = ExpandedSimplified(result.rewriting, views);
  EXPECT_TRUE(CqacContainedInUnion(q, expanded));
  EXPECT_TRUE(UnionCqacContained(expanded, UnionQuery({q})));
}

TEST(ContainedRewriterTest, PartialCoverageStaysPartial) {
  // Only values below 3 are reachable: contained but not equivalent.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ViewSet views = Views("v1(T) :- a(T), T < 3.");
  const ContainedRewriteResult result = FindContainedRewritings(q, views);
  ASSERT_GT(result.rewriting.size(), 0);
  const UnionQuery expanded = ExpandedSimplified(result.rewriting, views);
  EXPECT_TRUE(UnionCqacContained(expanded, UnionQuery({q})));
  EXPECT_FALSE(CqacContainedInUnion(q, expanded));
  // And the equivalent rewriter agrees nothing equivalent exists.
  EXPECT_EQ(FindEquivalentRewriting(q, views).outcome,
            RewriteOutcome::kNoRewriting);
}

TEST(ContainedRewriterTest, MatchesEquivalentRewriterWhenOneExists) {
  // Paper Example 2: the MCR and the equivalent rewriting coincide.
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- p(X), X >= 0");
  const ViewSet views = Views(
      "v1() :- p(X), X = 0.\n"
      "v2() :- p(X), X > 0.");
  const ContainedRewriteResult contained =
      FindContainedRewritings(q, views);
  const UnionQuery expanded = ExpandedSimplified(contained.rewriting, views);
  EXPECT_TRUE(UnionCqacEquivalent(UnionQuery({q}), expanded));
}

TEST(ContainedRewriterTest, EmptyWhenNoViewApplies) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ContainedRewriteResult result =
      FindContainedRewritings(q, Views("v(T) :- b(T)."));
  EXPECT_TRUE(result.rewriting.empty());
}

TEST(ContainedRewriterTest, UnsatisfiableQueryYieldsEmptyUnion) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X), X < 0, X > 1");
  const ContainedRewriteResult result =
      FindContainedRewritings(q, Views("v(T) :- a(T)."));
  EXPECT_TRUE(result.rewriting.empty());
}

TEST(ContainedRewriterTest, SubsumptionShrinksOutput) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ViewSet views = Views("v2(T) :- a(T), T < 10.");
  ContainedRewriteOptions keep_all;
  keep_all.drop_subsumed = false;
  const ContainedRewriteResult full =
      FindContainedRewritings(q, views, keep_all);
  const ContainedRewriteResult reduced = FindContainedRewritings(q, views);
  EXPECT_LE(reduced.rewriting.size(), full.rewriting.size());
  // Same semantics either way.
  EXPECT_TRUE(UnionCqacEquivalent(ExpandedSimplified(full.rewriting, views),
                                  ExpandedSimplified(reduced.rewriting,
                                                     views)));
}

TEST(ContainedRewriterTest, MaxDisjunctsTruncates) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ViewSet views = Views(
      "v1(T) :- a(T), T < 3.\n"
      "v2(T) :- a(T), T < 10.");
  ContainedRewriteOptions options;
  options.max_disjuncts = 1;
  options.drop_subsumed = false;
  const ContainedRewriteResult result =
      FindContainedRewritings(q, views, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.rewriting.size(), 1);
}

TEST(ContainedRewriterTest, CountersPopulated) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 7");
  const ViewSet views = Views("v2(T) :- a(T), T < 10.");
  const ContainedRewriteResult result = FindContainedRewritings(q, views);
  EXPECT_GT(result.combinations, 0);
  EXPECT_GT(result.candidates, 0);
  EXPECT_GT(result.kept, 0);
  EXPECT_FALSE(result.truncated);
}

}  // namespace
}  // namespace cqac
