#include "obs/prometheus.h"

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace cqac {
namespace {

// ---------------------------------------------------------------------
// A strict checker for the Prometheus text exposition format (v0.0.4):
// metric-name and label-name character sets, label value quoting and
// escapes, numeric sample values, HELP/TYPE headers preceding their
// family's samples, counters ending in _total, and histogram bucket
// monotonicity with a closing +Inf bucket equal to _count.

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

class ExpositionChecker {
 public:
  /// Parses and validates; on failure `error()` says what broke.
  bool Check(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      const bool ok = line[0] == '#' ? Header(line) : SampleLine(line);
      if (!ok) {
        error_ = "line " + std::to_string(line_no) + ": " + error_ +
                 " in: " + line;
        return false;
      }
    }
    return Families();
  }

  const std::string& error() const { return error_; }
  const std::vector<Sample>& samples() const { return samples_; }

 private:
  static bool ValidMetricName(const std::string& name) {
    if (name.empty()) return false;
    auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
             c == ':';
    };
    if (!head(name[0])) return false;
    for (const char c : name) {
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
  }

  static bool ValidLabelName(const std::string& name) {
    if (name.empty()) return false;
    auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    };
    if (!head(name[0])) return false;
    for (const char c : name) {
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
  }

  bool Header(const std::string& line) {
    std::istringstream in(line);
    std::string hash, kind, name;
    in >> hash >> kind >> name;
    if (kind != "HELP" && kind != "TYPE") {
      error_ = "unknown comment kind '" + kind + "'";
      return false;
    }
    if (!ValidMetricName(name)) {
      error_ = "bad metric name '" + name + "'";
      return false;
    }
    if (kind == "HELP") {
      if (!help_seen_.insert(name).second) {
        error_ = "duplicate HELP for '" + name + "'";
        return false;
      }
      return true;
    }
    std::string type;
    in >> type;
    if (type != "counter" && type != "gauge" && type != "histogram" &&
        type != "summary" && type != "untyped") {
      error_ = "bad TYPE '" + type + "'";
      return false;
    }
    if (!types_.emplace(name, type).second) {
      error_ = "duplicate TYPE for '" + name + "'";
      return false;
    }
    if (sampled_.count(name) != 0) {
      error_ = "TYPE for '" + name + "' after its samples";
      return false;
    }
    return true;
  }

  bool SampleLine(const std::string& line) {
    Sample sample;
    size_t pos = line.find_first_of("{ ");
    if (pos == std::string::npos) {
      error_ = "no value";
      return false;
    }
    sample.name = line.substr(0, pos);
    if (!ValidMetricName(sample.name)) {
      error_ = "bad metric name '" + sample.name + "'";
      return false;
    }
    if (line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        const size_t eq = line.find('=', pos);
        if (eq == std::string::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"') {
          error_ = "malformed label pair";
          return false;
        }
        const std::string label = line.substr(pos, eq - pos);
        if (!ValidLabelName(label)) {
          error_ = "bad label name '" + label + "'";
          return false;
        }
        // Scan the quoted value honoring escapes; only \\ \" \n are legal.
        std::string value;
        size_t i = eq + 2;
        for (; i < line.size() && line[i] != '"'; ++i) {
          if (line[i] == '\\') {
            if (i + 1 >= line.size() ||
                (line[i + 1] != '\\' && line[i + 1] != '"' &&
                 line[i + 1] != 'n')) {
              error_ = "bad escape in label value";
              return false;
            }
            ++i;
          }
          if (line[i] == '\n') {
            error_ = "raw newline in label value";
            return false;
          }
          value.push_back(line[i]);
        }
        if (i >= line.size()) {
          error_ = "unterminated label value";
          return false;
        }
        if (!sample.labels.emplace(label, value).second) {
          error_ = "duplicate label '" + label + "'";
          return false;
        }
        pos = i + 1;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}') {
        error_ = "unterminated label block";
        return false;
      }
      ++pos;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      error_ = "no space before value";
      return false;
    }
    const std::string value_text = line.substr(pos + 1);
    if (value_text == "+Inf" || value_text == "-Inf" || value_text == "NaN") {
      sample.value = 0;
    } else {
      size_t parsed = 0;
      try {
        sample.value = std::stod(value_text, &parsed);
      } catch (...) {
        parsed = 0;
      }
      if (parsed != value_text.size()) {
        error_ = "bad sample value '" + value_text + "'";
        return false;
      }
    }
    sampled_.insert(FamilyOf(sample.name));
    samples_.push_back(std::move(sample));
    return true;
  }

  /// The TYPE-declared family a sample belongs to: its own name, or the
  /// name with a _bucket/_sum/_count suffix stripped when that matches a
  /// declared histogram or summary.
  std::string FamilyOf(const std::string& name) const {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string base = name.substr(0, name.size() - s.size());
        const auto it = types_.find(base);
        if (it != types_.end() &&
            (it->second == "histogram" || it->second == "summary")) {
          return base;
        }
      }
    }
    return name;
  }

  /// Whole-text checks that need all samples: every sample belongs to a
  /// declared family, counters end in _total, histogram buckets are
  /// cumulative and closed by +Inf == _count.
  bool Families() {
    std::map<std::string, std::vector<const Sample*>> by_family;
    for (const Sample& sample : samples_) {
      const std::string family = FamilyOf(sample.name);
      const auto it = types_.find(family);
      if (it == types_.end()) {
        error_ = "sample '" + sample.name + "' has no TYPE header";
        return false;
      }
      if (help_seen_.count(family) == 0) {
        error_ = "sample '" + sample.name + "' has no HELP header";
        return false;
      }
      if (it->second == "counter" &&
          (family.size() < 6 ||
           family.compare(family.size() - 6, 6, "_total") != 0)) {
        error_ = "counter '" + family + "' does not end in _total";
        return false;
      }
      by_family[family].push_back(&sample);
    }
    for (const auto& [family, type] : types_) {
      if (type != "histogram") continue;
      // Group this family's bucket samples by their non-le labels: each
      // labeled series must be independently monotone and +Inf-closed.
      std::map<std::string, std::vector<const Sample*>> series;
      std::map<std::string, double> counts;
      for (const Sample* sample : by_family[family]) {
        std::map<std::string, std::string> labels = sample->labels;
        labels.erase("le");
        std::string key;
        for (const auto& [k, v] : labels) key += k + "=" + v + ";";
        if (sample->name == family + "_bucket") {
          series[key].push_back(sample);
        } else if (sample->name == family + "_count") {
          counts[key] = sample->value;
        }
      }
      for (const auto& [key, buckets] : series) {
        double prev = -1;
        bool saw_inf = false;
        double inf_value = -1;
        for (const Sample* bucket : buckets) {
          const auto le = bucket->labels.find("le");
          if (le == bucket->labels.end()) {
            error_ = family + "_bucket sample without an le label";
            return false;
          }
          if (bucket->value < prev) {
            error_ = family + " buckets are not cumulative";
            return false;
          }
          prev = bucket->value;
          if (le->second == "+Inf") {
            saw_inf = true;
            inf_value = bucket->value;
          }
        }
        if (!saw_inf) {
          error_ = family + " has no +Inf bucket";
          return false;
        }
        if (counts.count(key) == 0 || inf_value != counts[key]) {
          error_ = family + " +Inf bucket does not equal _count";
          return false;
        }
      }
    }
    return true;
  }

  std::string error_;
  std::vector<Sample> samples_;
  std::map<std::string, std::string> types_;  // family -> TYPE
  std::set<std::string> help_seen_;
  std::set<std::string> sampled_;
};

class PrometheusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().Reset();
    obs::EnableMetrics(true);
  }
  void TearDown() override {
    obs::MetricsRegistry::Global().Reset();
    obs::EnableMetrics(false);
  }
};

TEST_F(PrometheusTest, EmptyRegistryRendersEmpty) {
  EXPECT_EQ(obs::PrometheusText(obs::MetricsRegistry::Global()), "");
}

TEST_F(PrometheusTest, FullRegistryPassesStrictGrammar) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.counter("server.requests_accepted").Add(7);
  reg.counter("trace.dropped_spans").Add(0);
  reg.gauge("flight.overwritten_events").Set(12);
  obs::Histogram& h = reg.histogram("server.request_latency_ns");
  for (int64_t v : {100, 1000, 50000, 1 << 20}) h.Observe(v);
  obs::WindowedHistogram& w =
      reg.windowed("server.slo_request_latency_ns{tier=\"1\"}");
  for (int64_t v = 1; v <= 100; ++v) w.Observe(v * 1000);

  const std::string text = obs::PrometheusText(reg);
  ExpositionChecker checker;
  EXPECT_TRUE(checker.Check(text)) << checker.error() << "\n" << text;

  // Spot-check the mapping: dots become underscores, the cqac_ prefix is
  // applied, counters gain _total, the label block survives.
  EXPECT_NE(text.find("cqac_server_requests_accepted_total 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cqac_flight_overwritten_events 12"),
            std::string::npos);
  EXPECT_NE(
      text.find("cqac_server_slo_request_latency_ns{tier=\"1\",quantile="),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("cqac_server_request_latency_ns_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << text;
}

TEST_F(PrometheusTest, HostileNamesAreSanitizedToValidExposition) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  // Names with characters illegal in the exposition format, a label
  // value needing every escape, a digit-leading label key, and a
  // malformed label block that must be folded, not emitted broken.
  reg.counter("weird-name.with spaces").Add(1);
  reg.counter("labeled{path=\"a\\b\"quote\"}").Add(2);
  reg.gauge("g{9lives=\"x\"}").Set(3);
  reg.gauge("broken{not a label block").Set(4);
  reg.histogram("h{unclosed=\"").Observe(5);

  const std::string text = obs::PrometheusText(reg);
  ExpositionChecker checker;
  EXPECT_TRUE(checker.Check(text)) << checker.error() << "\n" << text;
}

TEST_F(PrometheusTest, HistogramBucketsAreCumulativeAndCapped) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Histogram& h = reg.histogram("cap");
  for (int i = 0; i < 1000; ++i) h.Observe(50);  // all in one bucket

  const std::string text = obs::PrometheusText(reg);
  ExpositionChecker checker;
  ASSERT_TRUE(checker.Check(text)) << checker.error() << "\n" << text;
  // Emission stops at the first bucket covering the max: with max=50
  // (bucket upper bound 63) there must be no le="127" sample.
  EXPECT_NE(text.find("cqac_cap_bucket{le=\"63\"} 1000"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("le=\"127\""), std::string::npos) << text;
  EXPECT_NE(text.find("cqac_cap_bucket{le=\"+Inf\"} 1000"),
            std::string::npos);
  EXPECT_NE(text.find("cqac_cap_count 1000"), std::string::npos);
  EXPECT_NE(text.find("cqac_cap_sum 50000"), std::string::npos);
}

TEST_F(PrometheusTest, PerTierSeriesShareOneHeader) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.windowed("slo{tier=\"0\"}").Observe(10);
  reg.windowed("slo{tier=\"1\"}").Observe(20);

  const std::string text = obs::PrometheusText(reg);
  ExpositionChecker checker;
  ASSERT_TRUE(checker.Check(text)) << checker.error() << "\n" << text;
  // Two labeled series of one family get exactly one HELP/TYPE pair.
  size_t count = 0;
  for (size_t pos = text.find("# TYPE cqac_slo summary");
       pos != std::string::npos;
       pos = text.find("# TYPE cqac_slo summary", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << text;
}

}  // namespace
}  // namespace cqac
