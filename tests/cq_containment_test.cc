#include "containment/cq_containment.h"

#include "engine/canonical.h"
#include "engine/evaluate.h"
#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(CqContainmentTest, SelfContainment) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y), b(Y)");
  EXPECT_TRUE(CqContained(q, q));
  EXPECT_TRUE(CqEquivalent(q, q));
}

TEST(CqContainmentTest, SpecializationIsContained) {
  const ConjunctiveQuery special = Parser::MustParseRule("q(X) :- a(X,X)");
  const ConjunctiveQuery general = Parser::MustParseRule("q(X) :- a(X,Y)");
  EXPECT_TRUE(CqContained(special, general));
  EXPECT_FALSE(CqContained(general, special));
}

TEST(CqContainmentTest, MoreSubgoalsMeansContained) {
  const ConjunctiveQuery longer =
      Parser::MustParseRule("q(X) :- a(X,Y), a(Y,Z)");
  const ConjunctiveQuery shorter = Parser::MustParseRule("q(X) :- a(X,Y)");
  EXPECT_TRUE(CqContained(longer, shorter));
  EXPECT_FALSE(CqContained(shorter, longer));
}

TEST(CqContainmentTest, PathFoldsOntoShorterPathViaCycle) {
  // Classic: a length-2 path query contains the query asking for a self
  // loop; mapping collapses variables.
  const ConjunctiveQuery loop = Parser::MustParseRule("q() :- a(X,X)");
  const ConjunctiveQuery path = Parser::MustParseRule("q() :- a(U,V)");
  EXPECT_TRUE(CqContained(loop, path));
  EXPECT_FALSE(CqContained(path, loop));
}

TEST(CqContainmentTest, ConstantsBlockContainment) {
  const ConjunctiveQuery with_const = Parser::MustParseRule("q() :- a(3,Y)");
  const ConjunctiveQuery general = Parser::MustParseRule("q() :- a(X,Y)");
  EXPECT_TRUE(CqContained(with_const, general));
  EXPECT_FALSE(CqContained(general, with_const));
}

TEST(CqContainmentTest, RejectsQueriesWithComparisons) {
  const ConjunctiveQuery q1 = Parser::MustParseRule("q(X) :- a(X), X < 3");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(X) :- a(X)");
  EXPECT_FALSE(CqContained(q1, q2));
}

TEST(CqContainmentTest, EquivalentUpToRedundantSubgoal) {
  const ConjunctiveQuery redundant =
      Parser::MustParseRule("q(X) :- a(X,Y), a(X,Z)");
  const ConjunctiveQuery minimal = Parser::MustParseRule("q(X) :- a(X,Y)");
  EXPECT_TRUE(CqEquivalent(redundant, minimal));
}

TEST(CqMinimizeTest, DropsRedundantSubgoal) {
  const ConjunctiveQuery redundant =
      Parser::MustParseRule("q(X) :- a(X,Y), a(X,Z)");
  const ConjunctiveQuery minimized = CqMinimize(redundant);
  EXPECT_EQ(minimized.body().size(), 1u);
  EXPECT_TRUE(CqEquivalent(minimized, redundant));
}

TEST(CqMinimizeTest, KeepsCore) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Z) :- a(X,Y), a(Y,Z)");
  EXPECT_EQ(CqMinimize(q).body().size(), 2u);
}

TEST(CqMinimizeTest, DropsDuplicates) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), a(X)");
  EXPECT_EQ(CqMinimize(q).body().size(), 1u);
}

TEST(CqMinimizeTest, CollapsesLongRedundantPath) {
  // A path of length 3 with a loop shortcut: q() :- a(X,Y),a(Y,Z),a(Z,W)
  // is minimal; but with all variables free to fold onto a(U,U) when a
  // self loop subgoal exists, the path is redundant.
  const ConjunctiveQuery q =
      Parser::MustParseRule("q() :- a(U,U), a(X,Y), a(Y,Z)");
  const ConjunctiveQuery minimized = CqMinimize(q);
  EXPECT_EQ(minimized.body().size(), 1u);
  EXPECT_EQ(minimized.body()[0].ToString(), "a(U,U)");
}

TEST(CqMinimizeTest, HeadVariablesAnchorSubgoals) {
  // Same shape as above, but head variables prevent folding the path onto
  // the self loop (X and Z are anchored), and the self loop cannot fold
  // into the path either: the query is already minimal.
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Z) :- a(U,U), a(X,Y), a(Y,Z)");
  const ConjunctiveQuery minimized = CqMinimize(q);
  EXPECT_EQ(minimized.body().size(), 3u);
}

TEST(UnionCqContainmentTest, DisjunctwiseCriterion) {
  const UnionQuery p = Parser::MustParseUnion(
      "q(X) :- a(X,X).\n"
      "q(X) :- a(X,Y), b(Y).");
  const UnionQuery q = Parser::MustParseUnion(
      "q(X) :- a(X,Y).\n"
      "q(X) :- c(X).");
  EXPECT_TRUE(UnionCqContained(p, q));
  EXPECT_FALSE(UnionCqContained(q, p));
}

TEST(UnionCqContainmentTest, EmptyUnionContainedInAnything) {
  const UnionQuery empty;
  const UnionQuery q = Parser::MustParseUnion("q(X) :- a(X).");
  EXPECT_TRUE(UnionCqContained(empty, q));
  EXPECT_FALSE(UnionCqContained(q, empty));
}

// Property: containment verdicts agree with evaluation on the canonical
// database of the would-be contained query (the classical proof skeleton).
class CqContainmentProperty
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(CqContainmentProperty, VerdictMatchesCanonicalEvaluation) {
  const ConjunctiveQuery q1 = Parser::MustParseRule(GetParam().first);
  const ConjunctiveQuery q2 = Parser::MustParseRule(GetParam().second);
  const bool contained = CqContained(q1, q2);
  const CanonicalDatabase cdb = FreezeQueryDistinct(q1);
  const bool canonical_ok = ComputesTuple(q2, cdb.db, cdb.frozen_head);
  EXPECT_EQ(contained, canonical_ok)
      << q1.ToString() << "  vs  " << q2.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CqContainmentProperty,
    ::testing::Values(
        std::make_pair("q(X) :- a(X,Y)", "q(X) :- a(X,Y)"),
        std::make_pair("q(X) :- a(X,X)", "q(X) :- a(X,Y)"),
        std::make_pair("q(X) :- a(X,Y)", "q(X) :- a(X,X)"),
        std::make_pair("q() :- a(X,Y), a(Y,Z)", "q() :- a(U,V)"),
        std::make_pair("q() :- a(U,V)", "q() :- a(X,Y), a(Y,Z)"),
        std::make_pair("q(X) :- a(X,3)", "q(X) :- a(X,Y)"),
        std::make_pair("q(X) :- a(X,Y)", "q(X) :- a(X,3)"),
        std::make_pair("q() :- a(X,Y), b(Y)", "q() :- a(X,Y)"),
        std::make_pair("q() :- a(X,Y)", "q() :- a(X,Y), b(Y)"),
        std::make_pair("q(X,Y) :- a(X,Y)", "q(X,Y) :- a(Y,X)")));

}  // namespace
}  // namespace cqac
