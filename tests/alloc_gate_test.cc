// The zero-allocation gate: after warm-up, a freeze → coded-evaluate
// cycle over canonical databases performs no heap allocations at all.
// This is the structural property the data-oriented core was built for —
// the arena, the fixed-capacity columnar instance, and the seeded value
// dictionary exist so the steady state is pure pointer arithmetic — and
// this test keeps it from regressing one std::vector at a time.
//
// The counting allocator (testing/alloc_hook.h) replaces global operator
// new for this binary; under sanitizer builds it compiles out and the
// gate skips.

#include <vector>

#include <gtest/gtest.h>

#include "constraints/orders.h"
#include "engine/canonical.h"
#include "engine/coded_eval.h"
#include "engine/evaluate.h"
#include "parser/parser.h"
#include "testing/alloc_hook.h"

namespace cqac {
namespace {

TEST(AllocGateTest, SteadyStateFreezeAndEvaluateAllocatesNothing) {
  if (!testing::AllocCountingAvailable()) {
    GTEST_SKIP() << "counting allocator unavailable under sanitizers";
  }

  // A containment-shaped workload: enumerate q1's satisfying orders once
  // (enumeration may allocate; it is not under the gate), then replay
  // freeze + match-mode evaluation over the captured orders.
  const ConjunctiveQuery q1 = Parser::MustParseRule(
      "q(X) :- e(X,Y), e(Y,Z), e(Z,W), X < 5, Y < W");
  const ConjunctiveQuery q2 =
      Parser::MustParseRule("q(A) :- e(A,B), e(B,C), A < 5");

  CanonicalFreezer freezer(q1);
  const PreparedQuery prepared(q2);
  CodedEvaluator coded(&prepared.plan());
  freezer.PrimeDictionary(q1.Constants(), q1.AllVariables().size());
  coded.BindTo(&freezer);

  std::vector<TotalOrder> orders;
  ForEachSatisfyingOrderPruned(
      q1.AllVariables(), q1.Constants(), q1.comparisons(), OrderSymmetry{},
      [&](const TotalOrder& order, int64_t) {
        orders.push_back(order);
        return orders.size() < 64;
      });
  ASSERT_GT(orders.size(), 4u);

  // Warm-up: first pass grows the arena to its high-water mark, takes the
  // one-time full-freeze path, and faults in any lazily sized scratch.
  for (const TotalOrder& order : orders) {
    freezer.Freeze(order);
    coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
  }

  // Steady state: two more full passes, each individually allocation-free.
  for (int pass = 0; pass < 2; ++pass) {
    const testing::AllocCounterScope scope;
    for (const TotalOrder& order : orders) {
      freezer.Freeze(order);
      coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
    }
    EXPECT_EQ(scope.delta(), 0)
        << "pass " << pass << ": steady-state freeze+evaluate allocated";
  }
}

}  // namespace
}  // namespace cqac
