// Unit tests for the structural tier classifier, the forced-tier
// resolution, the grid-class key construction, and the join-tree engine's
// parity with the general evaluator (rewriting/structure.h,
// engine/jointree.h).  Every classifier boundary the tiers depend on gets
// a case: a single var-var comparison among semi-intervals, a
// cycle-closing atom, self-joins, zero comparisons, and unsatisfiable
// comparisons.

#include "rewriting/structure.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/hypergraph.h"
#include "constraints/orders.h"
#include "engine/canonical.h"
#include "engine/evaluate.h"
#include "engine/jointree.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/view_set.h"

namespace cqac {
namespace {

ViewSet Views(std::initializer_list<const char*> rules) {
  ViewSet views;
  for (const char* r : rules) views.Add(Parser::MustParseRule(r));
  return views;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// ClassifyStructure boundaries.

TEST(ClassifyStructureTest, SemiIntervalComparisonsRouteToTier1) {
  const TierDecision d = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), X < 5, Y > 2"),
      Views({"v0(A,B) :- p(A,B), A < 5"}));
  EXPECT_EQ(d.tier, ExecutionTier::kSemiInterval);
  EXPECT_TRUE(d.semi_interval_eligible);
  EXPECT_FALSE(d.acyclic_eligible);  // comparisons block the acyclic tier
  EXPECT_TRUE(Contains(d.reason, "semi-interval")) << d.reason;
}

TEST(ClassifyStructureTest, OneVarVarComparisonAmongSemiIntervalsBlocksTier1) {
  // Everything else is var-vs-const; the single X < Y must be named as
  // the blocker.
  const TierDecision d = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), X < 5, Y > 2, X < Y"),
      Views({"v0(A,B) :- p(A,B), A < 5"}));
  EXPECT_EQ(d.tier, ExecutionTier::kGeneral);
  EXPECT_FALSE(d.semi_interval_eligible);
  EXPECT_TRUE(Contains(d.reason, "X < Y")) << d.reason;
  EXPECT_TRUE(Contains(d.reason, "on the query")) << d.reason;
}

TEST(ClassifyStructureTest, VarVarComparisonOnViewBlocksTier1) {
  const TierDecision d = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), X < 5"),
      Views({"v0(A,B) :- p(A,B), A <= B"}));
  EXPECT_EQ(d.tier, ExecutionTier::kGeneral);
  EXPECT_FALSE(d.semi_interval_eligible);
  EXPECT_TRUE(Contains(d.reason, "on a view")) << d.reason;
}

TEST(ClassifyStructureTest, ComparisonFreeAcyclicRoutesToTier2) {
  const TierDecision d = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y)"),
      Views({"v0(A,B) :- p(A,B)", "v1(B) :- r(B)"}));
  EXPECT_EQ(d.tier, ExecutionTier::kAcyclic);
  EXPECT_TRUE(d.semi_interval_eligible);  // vacuously: zero comparisons
  EXPECT_TRUE(d.acyclic_eligible);
  EXPECT_TRUE(Contains(d.reason, "GYO-acyclic")) << d.reason;
}

TEST(ClassifyStructureTest, CycleClosingAtomDowngradesToTier1) {
  // The triangle-closing p(Z,X) is the only difference from an acyclic
  // chain; zero comparisons keep it semi-interval-eligible.
  const TierDecision d = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), p(Y,Z), p(Z,X)"),
      Views({"v0(A,B) :- p(A,B)"}));
  EXPECT_EQ(d.tier, ExecutionTier::kSemiInterval);
  EXPECT_TRUE(d.semi_interval_eligible);
  EXPECT_FALSE(d.acyclic_eligible);
  EXPECT_TRUE(Contains(d.reason, "cyclic")) << d.reason;
}

TEST(ClassifyStructureTest, SelfJoinStaysTier2) {
  // a(X,Y), a(Y,X) is a repeated hyperedge {X,Y}: still GYO-acyclic.
  const TierDecision d = ClassifyStructure(
      Parser::MustParseRule("q(X) :- a(X,Y), a(Y,X)"),
      Views({"v0(A,B) :- a(A,B)"}));
  EXPECT_EQ(d.tier, ExecutionTier::kAcyclic);
  EXPECT_TRUE(d.acyclic_eligible);
}

TEST(ClassifyStructureTest, ViewComparisonBlocksTier2ButNotTier1) {
  // The query is comparison-free and acyclic, but a view carries a
  // (semi-interval) comparison: T2 requires comparison-free views, T1
  // does not.
  const TierDecision d = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y)"),
      Views({"v0(A,B) :- p(A,B), A < 5", "v1(B) :- r(B)"}));
  EXPECT_EQ(d.tier, ExecutionTier::kSemiInterval);
  EXPECT_TRUE(d.semi_interval_eligible);
  EXPECT_FALSE(d.acyclic_eligible);
}

TEST(ClassifyStructureTest, UnsatisfiableSemiIntervalsStillClassifyTier1) {
  // Classification is purely syntactic; the rewriter's unsat shortcut
  // (tested below) fires before the tier machinery matters.
  const TierDecision d = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), X < 1, X > 2"),
      Views({"v0(A,B) :- p(A,B)"}));
  EXPECT_EQ(d.tier, ExecutionTier::kSemiInterval);
}

// ---------------------------------------------------------------------------
// ResolveTier: forcing honors eligibility, never overrides it.

TEST(ResolveTierTest, AutoPassesClassificationThrough) {
  const TierDecision classified = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y)"),
      Views({"v0(A,B) :- p(A,B)"}));
  const TierDecision d = ResolveTier(classified, -1);
  EXPECT_EQ(d.tier, classified.tier);
  EXPECT_EQ(d.reason, classified.reason);
}

TEST(ResolveTierTest, ForcedGeneralAlwaysApplies) {
  const TierDecision classified = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y)"),
      Views({"v0(A,B) :- p(A,B)"}));
  const TierDecision d = ResolveTier(classified, 0);
  EXPECT_EQ(d.tier, ExecutionTier::kGeneral);
  EXPECT_TRUE(Contains(d.reason, "forced tier0")) << d.reason;
  // Eligibility is reported unchanged: forcing routes, it does not
  // reclassify.
  EXPECT_TRUE(d.acyclic_eligible);
}

TEST(ResolveTierTest, ForcedTierHonoredWhenEligible) {
  const TierDecision classified = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), X < 5"),
      Views({"v0(A,B) :- p(A,B)"}));
  EXPECT_EQ(ResolveTier(classified, 1).tier, ExecutionTier::kSemiInterval);

  const TierDecision acyclic = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y)"),
      Views({"v0(A,B) :- p(A,B)"}));
  EXPECT_EQ(ResolveTier(acyclic, 2).tier, ExecutionTier::kAcyclic);
}

TEST(ResolveTierTest, IneligibleForcedTierFallsBackToGeneral) {
  // Var-var comparison: neither fast tier may apply, forced or not.
  const TierDecision classified = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), X < Y"),
      Views({"v0(A,B) :- p(A,B)"}));
  for (const int force : {1, 2}) {
    const TierDecision d = ResolveTier(classified, force);
    EXPECT_EQ(d.tier, ExecutionTier::kGeneral) << "force " << force;
    EXPECT_TRUE(Contains(d.reason, "falling back")) << d.reason;
    EXPECT_TRUE(Contains(d.reason, "X < Y")) << d.reason;
  }
  // Cyclic comparison-free query: tier2 ineligible, tier1 fine.
  const TierDecision cyclic = ClassifyStructure(
      Parser::MustParseRule("q(X) :- p(X,Y), p(Y,Z), p(Z,X)"),
      Views({"v0(A,B) :- p(A,B)"}));
  EXPECT_EQ(ResolveTier(cyclic, 2).tier, ExecutionTier::kGeneral);
  EXPECT_EQ(ResolveTier(cyclic, 1).tier, ExecutionTier::kSemiInterval);
}

// ---------------------------------------------------------------------------
// GridVerdictCache: the key is the grid class, nothing more.

TotalOrder MakeOrder(std::initializer_list<OrderBlock> blocks) {
  TotalOrder order;
  for (const OrderBlock& b : blocks) order.blocks.push_back(b);
  return order;
}

OrderBlock VarBlock(std::initializer_list<const char*> vars) {
  OrderBlock b;
  for (const char* v : vars) b.variables.emplace_back(v);
  return b;
}

OrderBlock ConstBlock(int value) {
  OrderBlock b;
  b.constant = Rational(value);
  return b;
}

TEST(GridVerdictCacheTest, IntraCellBlockRankIsQuotientedAway) {
  const GridVerdictCache cache({"X", "Y"});
  // X < Y < 5 and Y < X < 5: same partition, both blocks below the
  // constant — one grid class.
  std::string k1, k2;
  cache.BuildKey(
      MakeOrder({VarBlock({"X"}), VarBlock({"Y"}), ConstBlock(5)}), &k1);
  cache.BuildKey(
      MakeOrder({VarBlock({"Y"}), VarBlock({"X"}), ConstBlock(5)}), &k2);
  EXPECT_EQ(k1, k2);
}

TEST(GridVerdictCacheTest, CellCrossingChangesTheKey) {
  const GridVerdictCache cache({"X", "Y"});
  std::string below, above;
  cache.BuildKey(
      MakeOrder({VarBlock({"X"}), VarBlock({"Y"}), ConstBlock(5)}), &below);
  cache.BuildKey(
      MakeOrder({VarBlock({"X"}), ConstBlock(5), VarBlock({"Y"})}), &above);
  EXPECT_NE(below, above);
}

TEST(GridVerdictCacheTest, PartitionChangesTheKey) {
  const GridVerdictCache cache({"X", "Y"});
  std::string merged, split;
  cache.BuildKey(MakeOrder({VarBlock({"X", "Y"}), ConstBlock(5)}), &merged);
  cache.BuildKey(
      MakeOrder({VarBlock({"X"}), VarBlock({"Y"}), ConstBlock(5)}), &split);
  EXPECT_NE(merged, split);
}

TEST(GridVerdictCacheTest, VariableAtConstantSharesTheConstantCell) {
  const GridVerdictCache cache({"X"});
  // X = 5 (variable in the constant's block) vs X just below 5: distinct
  // cells, distinct keys.
  std::string at, below;
  OrderBlock pinned = ConstBlock(5);
  pinned.variables.emplace_back("X");
  cache.BuildKey(MakeOrder({pinned}), &at);
  cache.BuildKey(MakeOrder({VarBlock({"X"}), ConstBlock(5)}), &below);
  EXPECT_NE(at, below);
}

TEST(GridVerdictCacheTest, FirstWriterWins) {
  GridVerdictCache cache({"X"});
  std::string key;
  cache.BuildKey(MakeOrder({VarBlock({"X"}), ConstBlock(5)}), &key);
  EXPECT_FALSE(cache.Get(key).has_value());
  cache.Put(key, false);
  cache.Put(key, true);  // no-op: verdicts are pure functions of the key
  ASSERT_TRUE(cache.Get(key).has_value());
  EXPECT_FALSE(*cache.Get(key));
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// GyoJoinForest: children are eliminated before their parents.

TEST(GyoJoinForestTest, ChainForestIsConsistent) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,W) :- a(X,Y), b(Y,Z), c(Z,W)");
  const JoinForest forest = GyoJoinForest(q);
  ASSERT_EQ(forest.elimination_order.size(), 3u);
  ASSERT_EQ(forest.parent.size(), 3u);
  std::vector<int> removed_at(3, -1);
  for (int i = 0; i < 3; ++i) removed_at[forest.elimination_order[i]] = i;
  for (int atom = 0; atom < 3; ++atom) {
    const int parent = forest.parent[atom];
    ASSERT_GE(parent, -1);
    ASSERT_LT(parent, 3);
    if (parent != -1) {
      EXPECT_LT(removed_at[atom], removed_at[parent])
          << "atom " << atom << " must be eliminated before its parent";
    }
  }
}

TEST(GyoJoinForestTest, CyclicQueryYieldsNoForest) {
  const JoinForest forest =
      GyoJoinForest(Parser::MustParseRule("q() :- a(X,Y), b(Y,Z), c(Z,X)"));
  EXPECT_TRUE(forest.elimination_order.empty());
}

TEST(GyoJoinForestTest, DisconnectedComponentsYieldMultipleRoots) {
  const JoinForest forest =
      GyoJoinForest(Parser::MustParseRule("q() :- a(X,Y), b(Z,W)"));
  ASSERT_EQ(forest.parent.size(), 2u);
  EXPECT_EQ(forest.parent[0], -1);
  EXPECT_EQ(forest.parent[1], -1);
}

// ---------------------------------------------------------------------------
// AcyclicPlan parity: the join-tree engine agrees with the general
// evaluator on every canonical database.

void ExpectPlanMatchesPrepared(const char* base_rule, const char* probe_rule) {
  const ConjunctiveQuery base = Parser::MustParseRule(base_rule);
  const ConjunctiveQuery probe = Parser::MustParseRule(probe_rule);
  const std::optional<AcyclicPlan> plan = AcyclicPlanFor(probe);
  ASSERT_TRUE(plan.has_value()) << probe_rule;

  CanonicalFreezer freezer(base);
  const PreparedQuery prepared(probe);
  PreparedQuery::Scratch scratch;
  AcyclicPlan::Scratch jointree_scratch;
  const std::vector<Rational> constants = base.Constants();
  freezer.PrimeDictionary(constants, base.AllVariables().size());

  int orders = 0;
  ForEachTotalOrder(base.AllVariables(), constants, [&](const TotalOrder& o) {
    const FlatInstance& inst = freezer.Freeze(o);
    const bool general =
        prepared.Run(inst, &freezer.frozen_head(), nullptr, &scratch);
    const bool jointree =
        plan->Run(inst, freezer.frozen_head(), &jointree_scratch);
    EXPECT_EQ(general, jointree)
        << "base " << base_rule << "\nprobe " << probe_rule << "\norder "
        << o.ToString();
    return ++orders < 600;
  });
  EXPECT_GT(orders, 0);
}

TEST(AcyclicPlanTest, MatchesGeneralEvaluatorOnSelfCheck) {
  ExpectPlanMatchesPrepared("q(X) :- p(X,Y), r(Y)", "q(X) :- p(X,Y), r(Y)");
}

TEST(AcyclicPlanTest, MatchesGeneralEvaluatorAcrossQueries) {
  ExpectPlanMatchesPrepared("q(X) :- p(X,Y), r(Y)", "q(X) :- p(X,X)");
  ExpectPlanMatchesPrepared("q(X) :- p(X,Y), p(Y,Z)",
                            "q(X) :- p(X,Y), p(X,Z)");
  ExpectPlanMatchesPrepared("q(X) :- p(X,Y), p(Y,X)",
                            "q(X) :- p(X,Y), p(Y,X)");
}

TEST(AcyclicPlanTest, RefusesCyclicAndComparisonQueries) {
  EXPECT_FALSE(
      AcyclicPlanFor(Parser::MustParseRule("q() :- a(X,Y), b(Y,Z), c(Z,X)"))
          .has_value());
  EXPECT_FALSE(
      AcyclicPlanFor(Parser::MustParseRule("q(X) :- a(X,Y), X < 5"))
          .has_value());
}

// ---------------------------------------------------------------------------
// End-to-end: the rewriter reports the routed tier and its counters, and
// forced tiers return the identical rewriting.

RewriteResult RunWithForcedTier(const char* query, ViewSet views, int tier) {
  RewriteOptions options;
  options.force_tier = tier;
  EquivalentRewriter rewriter(Parser::MustParseRule(query), std::move(views),
                              options);
  return rewriter.Run();
}

TEST(TieredRewriteTest, SemiIntervalCaseRoutesToTier1AndMatchesGeneral) {
  const char* query = "q(A) :- p(A,B), A <= 5";
  const RewriteResult general =
      RunWithForcedTier(query, Views({"v0(A,B) :- p(A,B), A <= 5"}), 0);
  const RewriteResult routed =
      RunWithForcedTier(query, Views({"v0(A,B) :- p(A,B), A <= 5"}), -1);
  EXPECT_EQ(routed.tier, 1);
  EXPECT_EQ(general.tier, 0);
  EXPECT_EQ(routed.outcome, general.outcome);
  EXPECT_EQ(routed.rewriting.ToString(), general.rewriting.ToString());
  EXPECT_EQ(routed.stats.kept_canonical_databases,
            general.stats.kept_canonical_databases);
  // The grid cache actually ran: every enumerated order probed it.
  EXPECT_GT(routed.stats.tier1_grid_misses, 0);
  EXPECT_EQ(general.stats.tier1_grid_misses, 0);
}

TEST(TieredRewriteTest, AcyclicCaseRoutesToTier2AndMatchesGeneral) {
  const char* query = "q(A) :- p(A,B), r(B)";
  const auto views = [] {
    return Views({"v0(A,B) :- p(A,B)", "v1(B) :- r(B)"});
  };
  const RewriteResult general = RunWithForcedTier(query, views(), 0);
  const RewriteResult routed = RunWithForcedTier(query, views(), -1);
  EXPECT_EQ(routed.tier, 2);
  EXPECT_EQ(routed.outcome, general.outcome);
  EXPECT_EQ(routed.rewriting.ToString(), general.rewriting.ToString());
  EXPECT_EQ(routed.stats.kept_canonical_databases,
            general.stats.kept_canonical_databases);
  EXPECT_GT(routed.stats.tier2_jointree_evals, 0);
  EXPECT_EQ(general.stats.tier2_jointree_evals, 0);
}

TEST(TieredRewriteTest, UnsatisfiableComparisonsShortCircuitAsTier0) {
  const RewriteResult result = RunWithForcedTier(
      "q(X) :- p(X,Y), X < 1, X > 2", Views({"v0(A,B) :- p(A,B)"}), -1);
  EXPECT_EQ(result.tier, 0);
  EXPECT_TRUE(Contains(result.tier_reason, "unsatisfiable"))
      << result.tier_reason;
}

}  // namespace
}  // namespace cqac
