#include "rewriting/view_set.h"

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(ViewSetTest, EmptyByDefault) {
  ViewSet views;
  EXPECT_TRUE(views.empty());
  EXPECT_EQ(views.size(), 0);
  EXPECT_EQ(views.Find("v"), nullptr);
  EXPECT_TRUE(views.Constants().empty());
}

TEST(ViewSetTest, FindByHeadPredicate) {
  ViewSet views(Parser::MustParseProgram(
      "v1(T) :- a(T).\n"
      "v2(T,U) :- b(T,U)."));
  ASSERT_NE(views.Find("v1"), nullptr);
  EXPECT_EQ(views.Find("v1")->head().arity(), 1);
  ASSERT_NE(views.Find("v2"), nullptr);
  EXPECT_EQ(views.Find("missing"), nullptr);
}

TEST(ViewSetTest, AddAppends) {
  ViewSet views;
  views.Add(Parser::MustParseRule("v(T) :- a(T)"));
  EXPECT_EQ(views.size(), 1);
  EXPECT_NE(views.Find("v"), nullptr);
}

TEST(ViewSetTest, ConstantsMergedSortedDeduped) {
  ViewSet views(Parser::MustParseProgram(
      "v1(T) :- a(T,7), T < 3.\n"
      "v2(T) :- b(T), T >= 7, T != 0.5."));
  EXPECT_EQ(views.Constants(),
            (std::vector<Rational>{Rational(1, 2), Rational(3), Rational(7)}));
}

TEST(ViewSetTest, FindReturnsFirstOnDuplicateNames) {
  // Duplicate names are the caller's bug, but Find stays deterministic.
  ViewSet views;
  views.Add(Parser::MustParseRule("v(T) :- a(T)"));
  views.Add(Parser::MustParseRule("v(T) :- b(T)"));
  ASSERT_NE(views.Find("v"), nullptr);
  EXPECT_EQ(views.Find("v")->body()[0].predicate(), "a");
}

}  // namespace
}  // namespace cqac
