#include "ast/atom.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace cqac {
namespace {

Atom MakeAtom() {
  return Atom("a", {Term::Variable("X"), Term::Constant(3)});
}

TEST(AtomTest, Accessors) {
  const Atom a = MakeAtom();
  EXPECT_EQ(a.predicate(), "a");
  EXPECT_EQ(a.arity(), 2);
  EXPECT_EQ(a.args()[0], Term::Variable("X"));
  EXPECT_EQ(a.args()[1], Term::Constant(3));
}

TEST(AtomTest, ZeroAryAtom) {
  const Atom a("q", {});
  EXPECT_EQ(a.arity(), 0);
  EXPECT_EQ(a.ToString(), "q()");
}

TEST(AtomTest, ToString) {
  EXPECT_EQ(MakeAtom().ToString(), "a(X,3)");
}

TEST(AtomTest, Equality) {
  EXPECT_EQ(MakeAtom(), MakeAtom());
  EXPECT_NE(MakeAtom(), Atom("b", {Term::Variable("X"), Term::Constant(3)}));
  EXPECT_NE(MakeAtom(), Atom("a", {Term::Variable("Y"), Term::Constant(3)}));
  EXPECT_NE(MakeAtom(), Atom("a", {Term::Variable("X")}));
}

TEST(AtomTest, OrderingByPredicateThenArgs) {
  const Atom a("a", {Term::Variable("X")});
  const Atom b("b", {Term::Variable("X")});
  const Atom a2("a", {Term::Variable("Y")});
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < a2);
  EXPECT_FALSE(a < a);
}

TEST(AtomTest, HashConsistentWithEquality) {
  std::unordered_set<Atom> set;
  set.insert(MakeAtom());
  set.insert(MakeAtom());
  set.insert(Atom("a", {Term::Variable("X")}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(AtomTest, MutableArgs) {
  Atom a = MakeAtom();
  a.mutable_args()[0] = Term::Variable("Z");
  EXPECT_EQ(a.args()[0], Term::Variable("Z"));
}

}  // namespace
}  // namespace cqac
