#include "rewriting/view_tuples.h"

#include "constraints/orders.h"
#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(MoreRelaxedFormTest, IdenticalTuples) {
  const Atom t("v", {Term::Variable("A"), Term::Variable("B")});
  EXPECT_TRUE(IsMoreRelaxedForm(t, t));
}

TEST(MoreRelaxedFormTest, GeneralToSpecific) {
  const Atom general("v", {Term::Variable("A"), Term::Variable("B")});
  const Atom specific("v", {Term::Variable("A"), Term::Variable("A")});
  // v(A,B) is a more relaxed form of v(A,A) (map B -> A)...
  EXPECT_TRUE(IsMoreRelaxedForm(general, specific));
  // ...but not the other way around.
  EXPECT_FALSE(IsMoreRelaxedForm(specific, general));
}

TEST(MoreRelaxedFormTest, VariableToConstant) {
  const Atom var("v", {Term::Variable("A")});
  const Atom constant("v", {Term::Constant(3)});
  EXPECT_TRUE(IsMoreRelaxedForm(var, constant));
  EXPECT_FALSE(IsMoreRelaxedForm(constant, var));
}

TEST(MoreRelaxedFormTest, ConstantsMustMatch) {
  const Atom three("v", {Term::Constant(3)});
  const Atom four("v", {Term::Constant(4)});
  EXPECT_TRUE(IsMoreRelaxedForm(three, three));
  EXPECT_FALSE(IsMoreRelaxedForm(three, four));
}

TEST(MoreRelaxedFormTest, PredicateAndArityMustMatch) {
  const Atom v1("v", {Term::Variable("A")});
  const Atom w1("w", {Term::Variable("A")});
  const Atom v2("v", {Term::Variable("A"), Term::Variable("B")});
  EXPECT_FALSE(IsMoreRelaxedForm(v1, w1));
  EXPECT_FALSE(IsMoreRelaxedForm(v1, v2));
}

TEST(MoreRelaxedFormTest, ConsistencyAcrossPositions) {
  const Atom from("v", {Term::Variable("A"), Term::Variable("A")});
  const Atom to("v", {Term::Variable("B"), Term::Variable("C")});
  EXPECT_FALSE(IsMoreRelaxedForm(from, to));
  const Atom to_same("v", {Term::Variable("B"), Term::Variable("B")});
  EXPECT_TRUE(IsMoreRelaxedForm(from, to_same));
}

class ViewTuplesFixture : public ::testing::Test {
 protected:
  // The paper's Example 5 setting.
  const ConjunctiveQuery query_ =
      Parser::MustParseRule("q(A) :- r(A), s(A,A), A <= 8");
  const ViewSet views_{Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z")};

  // Returns the canonical database for the given order string.
  CanonicalDatabase Freeze(const std::string& order_string) {
    for (const TotalOrder& order :
         EnumerateTotalOrders(query_.AllVariables(), {Rational(8)})) {
      if (order.ToString() == order_string) return FreezeQuery(query_, order);
    }
    ADD_FAILURE() << "order not found: " << order_string;
    return CanonicalDatabase();
  }
};

TEST_F(ViewTuplesFixture, PaperExample5TuplesOnD1) {
  const CanonicalDatabase cdb = Freeze("A < 8");
  const ViewTuples tuples = ComputeViewTuples(views_, cdb);
  ASSERT_EQ(tuples.total, 1);
  ASSERT_EQ(tuples.unfrozen.at("v").size(), 1u);
  EXPECT_EQ(tuples.unfrozen.at("v")[0].ToString(), "v(A,A)");
}

TEST_F(ViewTuplesFixture, PaperExample5TuplesOnD2) {
  const CanonicalDatabase cdb = Freeze("A = 8");
  const ViewTuples tuples = ComputeViewTuples(views_, cdb);
  ASSERT_EQ(tuples.total, 1);
  // On A = 8 the block representative is the constant 8.
  EXPECT_EQ(tuples.unfrozen.at("v")[0].ToString(), "v(8,8)");
}

TEST_F(ViewTuplesFixture, ViewWithViolatedComparisonsYieldsNothing) {
  // Example 10's view requires X < Z, impossible on r(a), s(a,a).
  const ViewSet strict(Parser::MustParseProgram(
      "v(Y,Z) :- r(X), s(Y,Z), Y <= X, X < Z"));
  const CanonicalDatabase cdb = Freeze("A < 8");
  const ViewTuples tuples = ComputeViewTuples(strict, cdb);
  EXPECT_TRUE(tuples.empty());
}

TEST_F(ViewTuplesFixture, FrozenMatchPinsQueryVariables) {
  const CanonicalDatabase cdb = Freeze("A < 8");
  const ViewTuples tuples = ComputeViewTuples(views_, cdb);
  // v(A,A) matches the ground tuple (a,a).
  EXPECT_TRUE(MatchesFrozenViewTuple(
      Atom("v", {Term::Variable("A"), Term::Variable("A")}), tuples, cdb));
  // v(A,B) with fresh B also matches (B free).
  EXPECT_TRUE(MatchesFrozenViewTuple(
      Atom("v", {Term::Variable("A"), Term::Variable("_f0")}), tuples, cdb));
  // A constant that is not the frozen value does not match.
  EXPECT_FALSE(MatchesFrozenViewTuple(
      Atom("v", {Term::Constant(8), Term::Constant(8)}), tuples, cdb));
  // Unknown view name: no match.
  EXPECT_FALSE(MatchesFrozenViewTuple(
      Atom("w", {Term::Variable("A"), Term::Variable("A")}), tuples, cdb));
}

TEST_F(ViewTuplesFixture, FrozenMatchFreshVariablesMustBeConsistent) {
  // A database where the view produces (a, b) with a != b.
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(A,B) :- r(A), s(A,B)");
  const ViewSet plain(Parser::MustParseProgram("v(Y,Z) :- s(Y,Z)"));
  for (const TotalOrder& order : EnumerateTotalOrders({"A", "B"}, {})) {
    if (order.ToString() != "A < B") continue;
    const CanonicalDatabase cdb = FreezeQuery(q2, order);
    const ViewTuples tuples = ComputeViewTuples(plain, cdb);
    ASSERT_EQ(tuples.total, 1);
    // v(_x,_x) requires both positions equal; the only tuple is (a,b).
    EXPECT_FALSE(MatchesFrozenViewTuple(
        Atom("v", {Term::Variable("_x"), Term::Variable("_x")}), tuples,
        cdb));
    EXPECT_TRUE(MatchesFrozenViewTuple(
        Atom("v", {Term::Variable("_x"), Term::Variable("_y")}), tuples,
        cdb));
    return;
  }
  FAIL() << "order A < B not found";
}

}  // namespace
}  // namespace cqac
