// Randomized cross-validation of the containment substrates and the
// solver, driven by the workload generator.  These sweeps are the
// library's strongest correctness evidence beyond the paper's worked
// examples: four independent containment implementations must agree on
// arbitrary CQAC pairs, and containment verdicts must be consistent with
// concrete evaluation.

#include "constraints/ac_solver.h"
#include "containment/cqac_containment.h"
#include "engine/canonical.h"
#include "engine/evaluate.h"
#include "gtest/gtest.h"
#include "workload/generator.h"

namespace cqac {
namespace {

ConjunctiveQuery RandomQuery(uint64_t seed) {
  WorkloadConfig config;
  config.num_variables = 3;
  config.num_constants = 1;
  config.num_subgoals = 3;
  config.num_predicates = 2;
  config.num_query_comparisons = 2;
  config.seed = seed;
  WorkloadGenerator generator(config);
  return generator.Generate().query;
}

class ContainmentMethodsProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ContainmentMethodsProperty, FourImplementationsAgree) {
  const ConjunctiveQuery q1 = RandomQuery(GetParam());
  const ConjunctiveQuery q2 = RandomQuery(GetParam() + 1000);
  for (const auto& [a, b] : {std::make_pair(&q1, &q2),
                             std::make_pair(&q2, &q1),
                             std::make_pair(&q1, &q1)}) {
    const bool canonical = CqacContainedCanonical(*a, *b);
    EXPECT_EQ(canonical, CqacContainedImplication(*a, *b))
        << a->ToString() << "  vs  " << b->ToString();
    EXPECT_EQ(canonical, CqacContainedNormalized(*a, *b))
        << a->ToString() << "  vs  " << b->ToString();
    if (CqacContainedSingleMapping(*a, *b)) {
      EXPECT_TRUE(canonical)
          << a->ToString() << "  vs  " << b->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentMethodsProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

class ContainmentVsEvaluationProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContainmentVsEvaluationProperty, ContainmentImpliesAnswerInclusion) {
  const ConjunctiveQuery q1 = RandomQuery(GetParam());
  const ConjunctiveQuery q2 = RandomQuery(GetParam() + 500);
  if (!CqacContainedCanonical(q1, q2)) return;
  // Containment must hold on every canonical database of q1 — including
  // the all-distinct one — as concrete answer inclusion.
  ForEachTotalOrder(
      q1.AllVariables(), q1.Constants(), [&](const TotalOrder& order) {
        const CanonicalDatabase cdb = FreezeQuery(q1, order);
        const Relation r1 = Evaluate(q1, cdb.db);
        const Relation r2 = Evaluate(q2, cdb.db);
        EXPECT_TRUE(r1.SubsetOf(r2))
            << "on " << order.ToString() << "\n  q1=" << q1.ToString()
            << "\n  q2=" << q2.ToString();
        return true;
      });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentVsEvaluationProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

class SolverConsistencyProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SolverConsistencyProperty, SatisfiableComparisonsHaveWitnessOrder) {
  // Every satisfiable comparison set must admit at least one satisfying
  // total order, and ForEachSatisfyingOrder must visit only orders whose
  // witness satisfies the set.
  const ConjunctiveQuery q = RandomQuery(GetParam());
  const bool satisfiable = AcSolver::IsSatisfiable(q.comparisons());
  int satisfying = 0;
  ForEachSatisfyingOrder(
      q.AllVariables(), q.Constants(), q.comparisons(),
      [&](const TotalOrder& order) {
        EXPECT_TRUE(AcSolver::SatisfiedBy(q.comparisons(),
                                          order.ToAssignment()))
            << order.ToString();
        ++satisfying;
        return true;
      });
  EXPECT_EQ(satisfiable, satisfying > 0) << q.ToString();
  // Cross-check against unpruned enumeration.
  int brute = 0;
  ForEachTotalOrder(q.AllVariables(), q.Constants(),
                    [&](const TotalOrder& order) {
                      if (AcSolver::SatisfiedBy(q.comparisons(),
                                                order.ToAssignment())) {
                        ++brute;
                      }
                      return true;
                    });
  EXPECT_EQ(satisfying, brute) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverConsistencyProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{31}));

class ForcedEqualityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForcedEqualityProperty, ForcedEqualitiesHoldInEveryWitness) {
  const ConjunctiveQuery q = RandomQuery(GetParam());
  const auto forced = AcSolver::ForcedEqualities(q.comparisons());
  if (!forced.has_value()) {
    EXPECT_FALSE(AcSolver::IsSatisfiable(q.comparisons()));
    return;
  }
  ForEachSatisfyingOrder(
      q.AllVariables(), q.Constants(), q.comparisons(),
      [&](const TotalOrder& order) {
        const auto assignment = order.ToAssignment();
        for (const auto& [var, term] : forced->bindings()) {
          const Rational lhs = assignment.at(var);
          const Rational rhs = term.IsConstant()
                                   ? term.value()
                                   : assignment.at(term.name());
          EXPECT_EQ(lhs, rhs) << var << " vs " << term.ToString() << " in "
                              << order.ToString();
        }
        return true;
      });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForcedEqualityProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace cqac
