#include "ast/query.h"

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(QueryTest, AccessorsAndToString) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,Y) :- a(X,Z), b(Z,Y), X < 5");
  EXPECT_EQ(q.name(), "q");
  EXPECT_EQ(q.head().arity(), 2);
  EXPECT_EQ(q.body().size(), 2u);
  EXPECT_EQ(q.comparisons().size(), 1u);
  EXPECT_EQ(q.ToString(), "q(X,Y) :- a(X,Z), b(Z,Y), X < 5");
}

TEST(QueryTest, IsPlainCQ) {
  EXPECT_TRUE(Parser::MustParseRule("q(X) :- a(X)").IsPlainCQ());
  EXPECT_FALSE(Parser::MustParseRule("q(X) :- a(X), X < 1").IsPlainCQ());
}

TEST(QueryTest, IsBoolean) {
  EXPECT_TRUE(Parser::MustParseRule("q() :- a(X)").IsBoolean());
  EXPECT_FALSE(Parser::MustParseRule("q(X) :- a(X)").IsBoolean());
}

TEST(QueryTest, HeadVariablesDedupedInOrder) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X,Y,X) :- a(X,Y)");
  EXPECT_EQ(q.HeadVariables(), (std::vector<std::string>{"X", "Y"}));
}

TEST(QueryTest, HeadVariablesSkipConstants) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(3,Y) :- a(Y)");
  EXPECT_EQ(q.HeadVariables(), (std::vector<std::string>{"Y"}));
}

TEST(QueryTest, BodyVariablesInFirstSeenOrder) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(Z,X), b(Y,Z)");
  EXPECT_EQ(q.BodyVariables(), (std::vector<std::string>{"Z", "X", "Y"}));
}

TEST(QueryTest, AllVariablesIncludesComparisonOnlyVars) {
  // Unsafe query, but AllVariables should still see W.
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), W < 3");
  EXPECT_EQ(q.AllVariables(), (std::vector<std::string>{"X", "W"}));
}

TEST(QueryTest, NondistinguishedVariables) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y), b(Y,Z)");
  EXPECT_EQ(q.NondistinguishedVariables(),
            (std::vector<std::string>{"Y", "Z"}));
}

TEST(QueryTest, ConstantsSortedAndDeduped) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X,7), b(2,X), X < 7, X > 0.5");
  EXPECT_EQ(q.Constants(),
            (std::vector<Rational>{Rational(1, 2), Rational(2), Rational(7)}));
}

TEST(QueryTest, IsDistinguished) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y)");
  EXPECT_TRUE(q.IsDistinguished("X"));
  EXPECT_FALSE(q.IsDistinguished("Y"));
}

TEST(QueryTest, SafetyHolds) {
  EXPECT_TRUE(Parser::MustParseRule("q(X) :- a(X,Y), X < Y").IsSafe());
}

TEST(QueryTest, SafetyFailsForUnboundHeadVariable) {
  EXPECT_FALSE(Parser::MustParseRule("q(X) :- a(Y)").IsSafe());
}

TEST(QueryTest, SafetyFailsForUnboundComparisonVariable) {
  EXPECT_FALSE(Parser::MustParseRule("q(X) :- a(X), W < 3").IsSafe());
}

TEST(QueryTest, WithoutComparisons) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X,Y), X < 5, Y >= 0");
  const ConjunctiveQuery q0 = q.WithoutComparisons();
  EXPECT_TRUE(q0.IsPlainCQ());
  EXPECT_EQ(q0.body(), q.body());
  EXPECT_EQ(q0.head(), q.head());
}

TEST(QueryTest, ApplySubstitution) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X,Y), X < Y");
  Substitution s;
  s.Bind("Y", Term::Constant(3));
  EXPECT_EQ(q.ApplySubstitution(s).ToString(), "q(X) :- a(X,3), X < 3");
}

TEST(QueryTest, RenameVariablesIsConsistent) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X,Y) :- a(X,Z), b(Z,Y)");
  Substitution renaming;
  const ConjunctiveQuery renamed = q.RenameVariables("V", &renaming);
  EXPECT_EQ(renamed.ToString(), "q(V0,V1) :- a(V0,V2), b(V2,V1)");
  EXPECT_EQ(renaming.Apply(Term::Variable("Z")), Term::Variable("V2"));
}

TEST(QueryTest, DeduplicatedDropsRepeats) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X), a(X), X < 3, X < 3");
  const ConjunctiveQuery d = q.Deduplicated();
  EXPECT_EQ(d.body().size(), 1u);
  EXPECT_EQ(d.comparisons().size(), 1u);
}

TEST(QueryTest, EqualityIsStructural) {
  const ConjunctiveQuery a = Parser::MustParseRule("q(X) :- a(X), X < 3");
  const ConjunctiveQuery b = Parser::MustParseRule("q(X) :- a(X), X < 3");
  const ConjunctiveQuery c = Parser::MustParseRule("q(X) :- a(X), X < 4");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(UnionQueryTest, BasicsAndToString) {
  UnionQuery u;
  EXPECT_TRUE(u.empty());
  u.Add(Parser::MustParseRule("r() :- v1()"));
  u.Add(Parser::MustParseRule("r() :- v2()"));
  EXPECT_EQ(u.size(), 2);
  EXPECT_EQ(u.ToString(), "r() :- v1()\nr() :- v2()");
}

}  // namespace
}  // namespace cqac
