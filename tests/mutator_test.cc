#include "testing/mutators.h"

#include <set>

#include "gtest/gtest.h"
#include "parser/parser.h"
#include "testing/differential.h"
#include "workload/generator.h"

namespace cqac {
namespace testing {
namespace {

FuzzCase SampleCase() {
  FuzzCase c;
  c.query = Parser::MustParseRule(
      "q(X,Y) :- p(X,Z), p(Z,Y), r(Y), X < Z, Z <= 4");
  c.views = ViewSet(Parser::MustParseProgram(
      "v1(X,Z) :- p(X,Z), X < Z.\n"
      "v2(Z,Y) :- p(Z,Y), Z <= 4.\n"
      "v3(Y) :- r(Y)"));
  return c;
}

TEST(MutatorTest, RenameKeepsStructure) {
  std::mt19937_64 rng(1);
  const FuzzCase c = SampleCase();
  const std::optional<Mutation> m = RenameVariablesMutation(c, rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->effect, MutationEffect::kPreservesEverything);
  EXPECT_EQ(m->c.query.body().size(), c.query.body().size());
  EXPECT_EQ(m->c.query.comparisons().size(), c.query.comparisons().size());
  EXPECT_EQ(m->c.views.size(), c.views.size());
  EXPECT_NE(m->c.query.ToString(), c.query.ToString());
}

TEST(MutatorTest, AddImpliedComparisonChainsThroughSharedTerm) {
  std::mt19937_64 rng(1);
  const FuzzCase c = SampleCase();  // X < Z, Z <= 4 chains to X < 4
  const std::optional<Mutation> m = AddImpliedComparisonMutation(c, rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->effect, MutationEffect::kPreservesEverything);
  ASSERT_EQ(m->c.query.comparisons().size(),
            c.query.comparisons().size() + 1);
  const Comparison& added = m->c.query.comparisons().back();
  EXPECT_EQ(added.ToString(), "X < 4");
}

TEST(MutatorTest, AddImpliedFallsBackToDuplicate) {
  std::mt19937_64 rng(1);
  FuzzCase c = SampleCase();
  c.query = Parser::MustParseRule("q(X) :- p(X,Y), X < 3");  // no chain
  const std::optional<Mutation> m = AddImpliedComparisonMutation(c, rng);
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->c.query.comparisons().size(), 2u);
  EXPECT_EQ(m->c.query.comparisons()[0], m->c.query.comparisons()[1]);
}

TEST(MutatorTest, PermuteSubgoalsKeepsMultiset) {
  std::mt19937_64 rng(3);
  const FuzzCase c = SampleCase();
  const std::optional<Mutation> m = PermuteSubgoalsMutation(c, rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->effect, MutationEffect::kPreservesOutcome);
  std::multiset<std::string> before, after;
  for (const Atom& a : c.query.body()) before.insert(a.ToString());
  for (const Atom& a : m->c.query.body()) after.insert(a.ToString());
  EXPECT_EQ(before, after);
}

TEST(MutatorTest, DuplicateViewGetsFreshNameAndRenamedVariables) {
  std::mt19937_64 rng(2);
  const FuzzCase c = SampleCase();
  const std::optional<Mutation> m = DuplicateViewMutation(c, rng);
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->c.views.size(), c.views.size() + 1);
  const ConjunctiveQuery& dup = m->c.views.views().back();
  EXPECT_EQ(c.views.Find(dup.name()), nullptr);  // fresh predicate
  const ConjunctiveQuery* original =
      c.views.Find(dup.name().substr(0, 2));  // v1/v2/v3
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(dup.body().size(), original->body().size());
}

TEST(MutatorTest, TightenAndRelaxFlipExactlyOneOperator) {
  std::mt19937_64 rng(4);
  const FuzzCase c = SampleCase();
  const std::optional<Mutation> tightened =
      TightenViewComparisonMutation(c, rng);
  ASSERT_TRUE(tightened.has_value());
  EXPECT_EQ(tightened->effect, MutationEffect::kMayChange);
  int strict_before = 0, strict_after = 0;
  for (const ConjunctiveQuery& v : c.views.views()) {
    for (const Comparison& cmp : v.comparisons()) {
      strict_before += cmp.op() == CompOp::kLt || cmp.op() == CompOp::kGt;
    }
  }
  for (const ConjunctiveQuery& v : tightened->c.views.views()) {
    for (const Comparison& cmp : v.comparisons()) {
      strict_after += cmp.op() == CompOp::kLt || cmp.op() == CompOp::kGt;
    }
  }
  EXPECT_EQ(strict_after, strict_before + 1);

  const std::optional<Mutation> relaxed =
      RelaxViewComparisonMutation(c, rng);
  ASSERT_TRUE(relaxed.has_value());
  int strict_relaxed = 0;
  for (const ConjunctiveQuery& v : relaxed->c.views.views()) {
    for (const Comparison& cmp : v.comparisons()) {
      strict_relaxed += cmp.op() == CompOp::kLt || cmp.op() == CompOp::kGt;
    }
  }
  EXPECT_EQ(strict_relaxed, strict_before - 1);
}

TEST(MutatorTest, MutatorsReturnNulloptWithoutMaterial) {
  std::mt19937_64 rng(1);
  FuzzCase bare;
  bare.query = Parser::MustParseRule("q(X) :- p(X)");
  EXPECT_FALSE(PermuteSubgoalsMutation(bare, rng).has_value());
  EXPECT_FALSE(PermuteViewsMutation(bare, rng).has_value());
  EXPECT_FALSE(DuplicateViewMutation(bare, rng).has_value());
  EXPECT_FALSE(AddImpliedComparisonMutation(bare, rng).has_value());
  EXPECT_FALSE(TightenViewComparisonMutation(bare, rng).has_value());
  EXPECT_TRUE(RenameVariablesMutation(bare, rng).has_value());
}

TEST(MutatorTest, ApplyRandomMutationIsDeterministicPerSeed) {
  const FuzzCase c = SampleCase();
  std::mt19937_64 rng1(11), rng2(11);
  const std::optional<Mutation> a = ApplyRandomMutation(c, rng1);
  const std::optional<Mutation> b = ApplyRandomMutation(c, rng2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->name, b->name);
  EXPECT_EQ(SerializeCase(a->c), SerializeCase(b->c));
}

TEST(MutatorTest, DeclaredEffectsHoldOnRealRuns) {
  // The metamorphic theory itself, spot-checked: run the serial baseline
  // on original and mutants and assert each declared effect.
  const LatticeConfig baseline_config;
  std::mt19937_64 rng(5);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    config.num_variables = 3;
    config.num_constants = 1;
    config.num_subgoals = 2;
    config.num_views = 2;
    WorkloadGenerator g(config);
    const WorkloadInstance instance = g.Generate();
    const FuzzCase c{instance.query, instance.views};
    const RunSignature base = SignatureOf(RunWithConfig(c, baseline_config));
    for (int i = 0; i < 4; ++i) {
      const std::optional<Mutation> m = ApplyRandomMutation(c, rng);
      ASSERT_TRUE(m.has_value());
      const RunSignature mutant =
          SignatureOf(RunWithConfig(m->c, baseline_config));
      std::string why;
      EXPECT_TRUE(MutationEffectHolds(m->effect, base, mutant, &why))
          << "seed " << seed << " mutation " << m->name << ": " << why;
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace cqac
