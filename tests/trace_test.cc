#include "obs/trace.h"

#include <map>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/view_set.h"

namespace cqac {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON syntax checker, enough to prove WriteChromeTrace emits
// well-formed JSON (balanced structure, valid literals) without pulling
// in a JSON library.  Whitespace-tolerant; rejects trailing garbage.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    return Value() && (SkipWs(), pos_ == text_.size());
  }

 private:
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == '}') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ']') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    for (++pos_; pos_ < text_.size(); ++pos_) {
      if (text_[pos_] == '\\') {
        ++pos_;
      } else if (text_[pos_] == '"') {
        return ++pos_, true;
      }
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------

ConjunctiveQuery Parse(const std::string& text) {
  std::string error;
  auto rule = Parser::ParseRule(text, &error);
  EXPECT_TRUE(rule.has_value()) << error;
  return *rule;
}

/// A workload with 75 canonical databases and a rewriting, large enough
/// that the parallel run genuinely interleaves.
struct Workload {
  ConjunctiveQuery query =
      Parse("q(A) :- r(A), s(A,B), t(B,C), A <= 8.");
  ViewSet views;
  Workload() { views.Add(Parse("v(A,B,C) :- r(A), s(A,B), t(B,C).")); }
};

/// Span-name multiset of one traced rewrite at the given thread count.
/// `phase1_dedup` is off: which worker takes the memo miss for a given
/// structural key races, so the probe/replay span split is the one part
/// of the pipeline that is thread-count-dependent by design.
std::map<std::string, int> SpanCounts(int jobs) {
  Workload w;
  RewriteOptions options;
  options.jobs = jobs;
  options.phase1_dedup = false;
  obs::StartTracing();
  const RewriteResult result =
      EquivalentRewriter(w.query, w.views, options).Run();
  const obs::CollectedTrace trace = obs::StopTracing();
  EXPECT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_EQ(trace.dropped_spans, 0);
  std::map<std::string, int> counts;
  for (const obs::TraceEvent& e : trace.events) ++counts[e.name];
  return counts;
}

TEST(TraceTest, SpansInactiveWithoutSession) {
  Workload w;
  RewriteOptions options;
  EXPECT_FALSE(obs::TracingActive());
  EquivalentRewriter(w.query, w.views, options).Run();
  obs::StartTracing();
  const obs::CollectedTrace trace = obs::StopTracing();
  // Nothing recorded outside the session leaks into it.
  EXPECT_TRUE(trace.events.empty());
  EXPECT_EQ(trace.dropped_spans, 0);
}

TEST(TraceTest, SessionRecordsPipelinePhases) {
  Workload w;
  RewriteOptions options;
  obs::StartTracing();
  EXPECT_EQ(obs::TracingActive(), obs::TracingCompiledIn());
  EquivalentRewriter(w.query, w.views, options).Run();
  const obs::CollectedTrace trace = obs::StopTracing();
  EXPECT_FALSE(obs::TracingActive());
  if (!obs::TracingCompiledIn()) {
    // The CQAC_TRACING=OFF build compiles every span to a no-op; the
    // session must observe nothing at all.
    EXPECT_TRUE(trace.events.empty());
    return;
  }
  std::map<std::string, int> counts;
  for (const obs::TraceEvent& e : trace.events) ++counts[e.name];
  // The acceptance bar: at least 6 distinct phases of the pipeline.
  for (const char* phase :
       {"prepare.work", "prepare.mcd_formation", "phase1.enumerate",
        "phase1.database", "phase1.freeze", "phase1.view_tuples",
        "phase2.check", "phase2.expand", "finalize"}) {
    EXPECT_GT(counts[phase], 0) << "missing span: " << phase;
  }
  // One database span per canonical database of this workload.
  EXPECT_EQ(counts["phase1.database"], 75);
}

TEST(TraceTest, SpanMultisetIdenticalAcrossThreadCounts) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  const std::map<std::string, int> serial = SpanCounts(1);
  const std::map<std::string, int> parallel = SpanCounts(4);
  EXPECT_EQ(serial, parallel);
}

TEST(TraceTest, ChromeTraceExportIsValidJson) {
  Workload w;
  RewriteOptions options;
  obs::StartTracing();
  EquivalentRewriter(w.query, w.views, options).Run();
  const obs::CollectedTrace trace = obs::StopTracing();
  std::ostringstream out;
  obs::WriteChromeTrace(out, trace);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cqacDroppedSpans\": 0"), std::string::npos);
  if (obs::TracingCompiledIn()) {
    // Spot-check the Chrome trace-event schema on one complete event.
    EXPECT_NE(json.find("\"name\": \"phase1.database\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"cqac\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": "), std::string::npos);
    EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  } else {
    EXPECT_EQ(json.find("\"ph\""), std::string::npos);
  }
}

TEST(TraceTest, OverflowDropsNewestAndCounts) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  constexpr int kSpans = obs::kSpanBufferCapacity + 1000;
  obs::StartTracing();
  for (int i = 0; i < kSpans; ++i) {
    CQAC_TRACE_SPAN("overflow");
  }
  const obs::CollectedTrace trace = obs::StopTracing();
  EXPECT_EQ(trace.events.size(),
            static_cast<size_t>(obs::kSpanBufferCapacity));
  EXPECT_EQ(trace.dropped_spans, 1000);
}

TEST(TraceTest, SpanStraddlingSessionsIsDiscarded) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "CQAC_TRACING=OFF build";
  obs::StartTracing();
  {
    CQAC_TRACE_SPAN("straddler");
    // The session the span started in ends before the span does; its
    // timestamps are relative to a dead session base, so it must not be
    // recorded into the next session either.
    obs::CollectedTrace first = obs::StopTracing();
    EXPECT_TRUE(first.events.empty());
    obs::StartTracing();
  }
  const obs::CollectedTrace second = obs::StopTracing();
  EXPECT_TRUE(second.events.empty());
}

}  // namespace
}  // namespace cqac
