#include "testing/oracle.h"

#include "engine/evaluate.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "workload/generator.h"
#include "workload/prand.h"

namespace cqac {
namespace testing {
namespace {

FuzzCase MakeCase(const char* query, const char* views_program) {
  FuzzCase c;
  c.query = Parser::MustParseRule(query);
  if (views_program != nullptr && *views_program != '\0') {
    c.views = ViewSet(Parser::MustParseProgram(views_program));
  }
  return c;
}

UnionQuery OneDisjunct(const char* rule) {
  UnionQuery u;
  u.Add(Parser::MustParseRule(rule));
  return u;
}

TEST(NaiveEvaluateTest, MatchesHandComputation) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- p(X,Y), r(Y), Y <= 3");
  Database db;
  db.Insert("p", {Rational(1), Rational(2)});
  db.Insert("p", {Rational(1), Rational(5)});
  db.Insert("p", {Rational(7), Rational(3)});
  db.Insert("r", {Rational(2)});
  db.Insert("r", {Rational(3)});
  db.Insert("r", {Rational(5)});
  const Relation out = NaiveEvaluate(q, db);
  // (1,2) passes via Y=2; (1,5) fails the comparison; (7,3) passes.
  EXPECT_EQ(out.size(), 2);
  EXPECT_TRUE(out.Contains({Rational(1)}));
  EXPECT_TRUE(out.Contains({Rational(7)}));
}

TEST(NaiveEvaluateTest, RepeatedVariablesForceEquality) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- p(X,X)");
  Database db;
  db.Insert("p", {Rational(1), Rational(2)});
  db.Insert("p", {Rational(3), Rational(3)});
  const Relation out = NaiveEvaluate(q, db);
  EXPECT_EQ(out.size(), 1);
  EXPECT_TRUE(out.Contains({Rational(3)}));
}

TEST(NaiveEvaluateTest, AgreesWithProductionEvaluatorOnRandomInputs) {
  // The independence claim cuts both ways: the naive evaluator is only a
  // useful referee if it matches the compiled one on non-adversarial
  // inputs.
  std::mt19937_64 rng(7);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    WorkloadGenerator g(config);
    const WorkloadInstance instance = g.Generate();
    const FuzzCase c{instance.query, instance.views};
    const std::vector<Rational> pool = OracleValuePool(c, nullptr);
    Database db;
    for (const Atom& a : c.query.body()) {
      for (int row = 0; row < 3; ++row) {
        Tuple t;
        for (int i = 0; i < a.arity(); ++i) {
          t.push_back(pool[PortableBoundedDraw(rng, pool.size())]);
        }
        db.Insert(a.predicate(), std::move(t));
      }
    }
    EXPECT_EQ(NaiveEvaluate(c.query, db), Evaluate(c.query, db))
        << "seed " << seed;
    for (const ConjunctiveQuery& v : c.views.views()) {
      EXPECT_EQ(NaiveEvaluate(v, db), Evaluate(v, db)) << "seed " << seed;
    }
  }
}

TEST(OracleValuePoolTest, HasConstantsMidpointsAndExtremes) {
  const FuzzCase c =
      MakeCase("q(X) :- p(X,Y), X <= 5, Y < 8", "v(X,Y) :- p(X,Y)");
  const std::vector<Rational> pool = OracleValuePool(c, nullptr);
  EXPECT_NE(std::find(pool.begin(), pool.end(), Rational(5)), pool.end());
  EXPECT_NE(std::find(pool.begin(), pool.end(), Rational(8)), pool.end());
  EXPECT_NE(std::find(pool.begin(), pool.end(), Rational(13, 2)), pool.end());
  EXPECT_NE(std::find(pool.begin(), pool.end(), Rational(4)), pool.end());
  EXPECT_NE(std::find(pool.begin(), pool.end(), Rational(9)), pool.end());
}

TEST(OracleValuePoolTest, ConstantFreeCaseGetsDefaults) {
  const FuzzCase c = MakeCase("q(X) :- p(X,Y)", "v(X) :- p(X,X)");
  const std::vector<Rational> pool = OracleValuePool(c, nullptr);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(OracleTest, AcceptsCorrectRewriting) {
  const FuzzCase c =
      MakeCase("q(X) :- p(X,Y), Y <= 3", "v(X,Y) :- p(X,Y)");
  const UnionQuery rewriting = OneDisjunct("q(X) :- v(X,Y), Y <= 3");
  const OracleVerdict verdict = CheckRewritingWithOracle(c, rewriting);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
  EXPECT_TRUE(verdict.checked);
  EXPECT_GT(verdict.orders_checked, 0);
  EXPECT_GT(verdict.databases_checked, 0);
}

TEST(OracleTest, RejectsTooLooseRewriting) {
  // Dropping the comparison makes the expansion strictly larger than the
  // query: the reverse containment direction must fail.
  const FuzzCase c =
      MakeCase("q(X) :- p(X,Y), Y <= 3", "v(X,Y) :- p(X,Y)");
  const UnionQuery rewriting = OneDisjunct("q(X) :- v(X,Y)");
  const OracleVerdict verdict = CheckRewritingWithOracle(c, rewriting);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.failure.empty());
}

TEST(OracleTest, RejectsTooTightRewriting) {
  // Tightening the bound loses answers with Y in (2, 3]: the forward
  // direction must fail.
  const FuzzCase c =
      MakeCase("q(X) :- p(X,Y), Y <= 3", "v(X,Y) :- p(X,Y)");
  const UnionQuery rewriting = OneDisjunct("q(X) :- v(X,Y), Y <= 2");
  const OracleVerdict verdict = CheckRewritingWithOracle(c, rewriting);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.failure.empty());
}

TEST(OracleTest, CatchesStrictnessFlip) {
  // < vs <= differs only on the boundary; the midpoint/constant pool is
  // what lets plain databases see it.
  const FuzzCase c =
      MakeCase("q(X) :- p(X,Y), Y < 3", "v(X,Y) :- p(X,Y)");
  const UnionQuery rewriting = OneDisjunct("q(X) :- v(X,Y), Y <= 3");
  const OracleVerdict verdict = CheckRewritingWithOracle(c, rewriting);
  EXPECT_FALSE(verdict.ok);
}

TEST(OracleTest, AcceptsRewriterOutputOnPaperStyleCase) {
  const FuzzCase c = MakeCase(
      "q(X,Y) :- p(X,Z), p(Z,Y), Z <= 4",
      "v1(X,Z) :- p(X,Z), Z <= 4.\n"
      "v2(Z,Y) :- p(Z,Y)");
  RewriteOptions options;
  options.verify = true;
  EquivalentRewriter rewriter(c.query, c.views, options);
  const RewriteResult result = rewriter.Run();
  ASSERT_EQ(result.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_TRUE(result.verified);
  const OracleVerdict verdict = CheckRewritingWithOracle(c, result.rewriting);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
}

TEST(OracleTest, EmptyUnionEquivalentToUnsatisfiableQuery) {
  const FuzzCase c =
      MakeCase("q(X) :- p(X), X < 3, 5 < X", "v(X) :- p(X)");
  const UnionQuery empty;
  const OracleVerdict verdict = CheckRewritingWithOracle(c, empty);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
}

TEST(OracleTest, EmptyUnionNotEquivalentToSatisfiableQuery) {
  const FuzzCase c = MakeCase("q(X) :- p(X), X < 3", "v(X) :- p(X)");
  const UnionQuery empty;
  const OracleVerdict verdict = CheckRewritingWithOracle(c, empty);
  EXPECT_FALSE(verdict.ok);
}

TEST(OracleTest, OverBudgetDirectionReportsUnchecked) {
  OracleOptions options;
  options.max_order_terms = 2;  // even the 3-variable query is over budget
  const FuzzCase c =
      MakeCase("q(X) :- p(X,Y), p(Y,Z)", "v(X,Y) :- p(X,Y)");
  const UnionQuery rewriting = OneDisjunct("q(X) :- v(X,Y), v(Y,Z)");
  const OracleVerdict verdict =
      CheckEquivalenceByCanonicalDatabases(c, rewriting, options);
  EXPECT_FALSE(verdict.checked);
}

TEST(OracleVerdictTest, MergeKeepsFirstFailure) {
  OracleVerdict a;
  a.ok = false;
  a.failure = "first";
  a.orders_checked = 3;
  OracleVerdict b;
  b.ok = false;
  b.failure = "second";
  b.databases_checked = 5;
  a.Merge(b);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.failure, "first");
  EXPECT_EQ(a.orders_checked, 3);
  EXPECT_EQ(a.databases_checked, 5);
}

}  // namespace
}  // namespace testing
}  // namespace cqac
