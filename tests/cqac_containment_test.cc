#include "containment/cqac_containment.h"

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

TEST(CqacContainmentTest, SelfContainmentWithComparisons) {
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X) :- a(X,Y), X < Y, Y < 7");
  EXPECT_TRUE(CqacContained(q, q));
  EXPECT_TRUE(CqacEquivalent(q, q));
}

TEST(CqacContainmentTest, TighterComparisonIsContained) {
  const ConjunctiveQuery tight = Parser::MustParseRule("q(X) :- a(X), X < 3");
  const ConjunctiveQuery loose = Parser::MustParseRule("q(X) :- a(X), X < 5");
  EXPECT_TRUE(CqacContained(tight, loose));
  EXPECT_FALSE(CqacContained(loose, tight));
}

TEST(CqacContainmentTest, OpenVersusClosedInterval) {
  const ConjunctiveQuery open = Parser::MustParseRule("q(X) :- a(X), X < 3");
  const ConjunctiveQuery closed =
      Parser::MustParseRule("q(X) :- a(X), X <= 3");
  EXPECT_TRUE(CqacContained(open, closed));
  EXPECT_FALSE(CqacContained(closed, open));
}

TEST(CqacContainmentTest, UnsatisfiableQueryContainedInAnything) {
  const ConjunctiveQuery empty =
      Parser::MustParseRule("q(X) :- a(X), X < 2, X > 3");
  const ConjunctiveQuery other = Parser::MustParseRule("q(X) :- b(X)");
  EXPECT_TRUE(CqacContained(empty, other));
  EXPECT_FALSE(CqacContained(other, empty));
}

TEST(CqacContainmentTest, ComparisonDerivedFromConstantPropagation) {
  // X = 3 in the body makes q1 equivalent to using the constant directly.
  const ConjunctiveQuery q1 = Parser::MustParseRule("q() :- p(X), X = 3");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q() :- p(3)");
  EXPECT_TRUE(CqacContained(q1, q2));
  EXPECT_TRUE(CqacContained(q2, q1));
}

// The classical example where multiple containment mappings are needed:
// no single mapping witnesses the containment, but for every order one of
// the two mappings works.
TEST(CqacContainmentTest, MultipleMappingsNeeded) {
  const ConjunctiveQuery q1 = Parser::MustParseRule(
      "q() :- p(X), p(Y), X <= Y");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q() :- p(Z)");
  EXPECT_TRUE(CqacContained(q1, q2));
}

TEST(CqacContainmentTest, CaseSplitOnOrderOfTwoVariables) {
  // q1 has no comparisons; q2 requires U <= V but the database can supply
  // either orientation of p's two attributes, so containment fails.
  const ConjunctiveQuery q1 = Parser::MustParseRule("q() :- p(X,Y)");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q() :- p(U,V), U <= V");
  EXPECT_FALSE(CqacContained(q1, q2));
}

TEST(CqacContainmentTest, SymmetricBodyMakesCaseSplitWork) {
  // With both orientations present, some mapping works for every order:
  // this is the textbook example requiring the union of mappings.
  const ConjunctiveQuery q1 = Parser::MustParseRule("q() :- p(X,Y), p(Y,X)");
  const ConjunctiveQuery q2 = Parser::MustParseRule("q() :- p(U,V), U <= V");
  EXPECT_TRUE(CqacContained(q1, q2));
  EXPECT_FALSE(CqacContained(q2, q1));
}

TEST(CqacContainmentTest, PaperExample1RewritingExpansion) {
  // Q: q(X,X) :- a(X,X), b(X), X < 7.  Expansion of the rewriting via V1:
  // q(A,A) :- a(S,A), b(A), A <= S, S <= A, A < 7.  They are equivalent.
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,X) :- a(X,X), b(X), X < 7");
  const ConjunctiveQuery exp = Parser::MustParseRule(
      "q(A,A) :- a(S,A), b(A), A <= S, S <= A, A < 7");
  EXPECT_TRUE(CqacContained(q, exp));
  EXPECT_TRUE(CqacContained(exp, q));
}

TEST(CqacContainmentTest, PaperExample1WrongViewNotEquivalent) {
  // With V2 (S < U instead of S <= U) the expansion is strictly contained.
  const ConjunctiveQuery q =
      Parser::MustParseRule("q(X,X) :- a(X,X), b(X), X < 7");
  const ConjunctiveQuery exp_v2 = Parser::MustParseRule(
      "q(A,A) :- a(S,A), b(A), A <= S, S < A, A < 7");
  // The V2 expansion's comparisons force A <= S < A: unsatisfiable, hence
  // contained in Q but certainly not containing it.
  EXPECT_TRUE(CqacContained(exp_v2, q));
  EXPECT_FALSE(CqacContained(q, exp_v2));
}

TEST(CqacContainmentTest, NotEqualVersusStrictSplit) {
  // X != Y with p symmetric closure: q1 requires a strict comparison both
  // ways.  Checks the solver's != handling through containment.
  const ConjunctiveQuery q1 =
      Parser::MustParseRule("q() :- p(X,Y), X < Y");
  const ConjunctiveQuery q2 =
      Parser::MustParseRule("q() :- p(U,V), U != V");
  EXPECT_TRUE(CqacContained(q1, q2));
  EXPECT_FALSE(CqacContained(q2, q1));
}

TEST(CqacContainmentTest, ConstantsOfContainingQueryMatter) {
  // q1: X < 10; q2: X < 10, X != 5.  The order X = 5 separates them, and
  // only shows up because q2's constant 5 joins the enumeration.
  const ConjunctiveQuery q1 = Parser::MustParseRule("q(X) :- a(X), X < 10");
  const ConjunctiveQuery q2 =
      Parser::MustParseRule("q(X) :- a(X), X < 10, X != 5");
  EXPECT_TRUE(CqacContained(q2, q1));
  EXPECT_FALSE(CqacContained(q1, q2));
}

TEST(CqacContainmentTest, StatsArePopulated) {
  const ConjunctiveQuery q = Parser::MustParseRule("q(X) :- a(X), X < 3");
  ContainmentStats stats;
  EXPECT_TRUE(CqacContainedCanonical(q, q, &stats));
  // One variable, one constant: of the 3 total orders only X < 3
  // satisfies the comparisons, and pruning visits exactly that one.
  EXPECT_EQ(stats.orders_enumerated, 1);
  EXPECT_EQ(stats.orders_satisfying, 1);
}

TEST(CqacContainmentInUnionTest, PaperExample2) {
  // Q: q() :- p(X), X >= 0 has no single-CQAC rewriting over
  // V1 (X = 0) and V2 (X > 0), but the union of both covers it.
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- p(X), X >= 0");
  const ConjunctiveQuery v1_exp = Parser::MustParseRule("q() :- p(X), X = 0");
  const ConjunctiveQuery v2_exp = Parser::MustParseRule("q() :- p(X), X > 0");
  EXPECT_FALSE(CqacContained(q, v1_exp));
  EXPECT_FALSE(CqacContained(q, v2_exp));
  UnionQuery both;
  both.Add(v1_exp);
  both.Add(v2_exp);
  EXPECT_TRUE(CqacContainedInUnion(q, both));
  EXPECT_TRUE(UnionCqacContained(both, UnionQuery({q})));
  EXPECT_TRUE(UnionCqacEquivalent(UnionQuery({q}), both));
}

TEST(CqacContainmentInUnionTest, UnionDoesNotCoverGap) {
  const ConjunctiveQuery q = Parser::MustParseRule("q() :- p(X), X >= 0");
  UnionQuery gap;
  gap.Add(Parser::MustParseRule("q() :- p(X), X > 0"));
  gap.Add(Parser::MustParseRule("q() :- p(X), X > 1"));
  EXPECT_FALSE(CqacContainedInUnion(q, gap));
}

TEST(CqacContainmentInUnionTest, EmptyUnionOnlyContainsEmpty) {
  const ConjunctiveQuery sat = Parser::MustParseRule("q() :- p(X)");
  const ConjunctiveQuery unsat =
      Parser::MustParseRule("q() :- p(X), X < 0, X > 0");
  EXPECT_FALSE(CqacContainedInUnion(sat, UnionQuery()));
  EXPECT_TRUE(CqacContainedInUnion(unsat, UnionQuery()));
}

// The two independent tests must agree on a diverse family of pairs.
struct ContainmentCase {
  const char* q1;
  const char* q2;
};

class CqacMethodsAgreeProperty
    : public ::testing::TestWithParam<ContainmentCase> {};

TEST_P(CqacMethodsAgreeProperty, CanonicalAndImplicationAgree) {
  const ConjunctiveQuery q1 = Parser::MustParseRule(GetParam().q1);
  const ConjunctiveQuery q2 = Parser::MustParseRule(GetParam().q2);
  EXPECT_EQ(CqacContainedCanonical(q1, q2), CqacContainedImplication(q1, q2))
      << q1.ToString() << "  vs  " << q2.ToString();
  EXPECT_EQ(CqacContainedCanonical(q2, q1), CqacContainedImplication(q2, q1))
      << q2.ToString() << "  vs  " << q1.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CqacMethodsAgreeProperty,
    ::testing::Values(
        ContainmentCase{"q(X) :- a(X), X < 3", "q(X) :- a(X), X < 5"},
        ContainmentCase{"q(X) :- a(X), X <= 3", "q(X) :- a(X), X < 3"},
        ContainmentCase{"q() :- p(X), p(Y), X <= Y", "q() :- p(Z)"},
        ContainmentCase{"q() :- p(X,Y), p(Y,X)", "q() :- p(U,V), U <= V"},
        ContainmentCase{"q() :- p(X,Y)", "q() :- p(U,V), U <= V"},
        ContainmentCase{"q(X,X) :- a(X,X), b(X), X < 7",
                        "q(A,A) :- a(S,A), b(A), A <= S, S <= A, A < 7"},
        ContainmentCase{"q() :- p(X), X = 3", "q() :- p(3)"},
        ContainmentCase{"q(X) :- a(X,Y), X < Y", "q(X) :- a(X,Y)"},
        ContainmentCase{"q(X) :- a(X,Y), X < Y", "q(X) :- a(X,Y), X <= Y"},
        ContainmentCase{"q() :- a(X,Y), a(Y,X), X <= Y",
                        "q() :- a(U,V), U <= V"},
        ContainmentCase{"q(X) :- a(X), X < 10, X != 5",
                        "q(X) :- a(X), X < 10"},
        ContainmentCase{"q() :- a(X,3)", "q() :- a(X,Y), X < Y"}));

}  // namespace
}  // namespace cqac
