#include "constraints/inequality_graph.h"

#include "gtest/gtest.h"
#include "parser/parser.h"

namespace cqac {
namespace {

std::vector<Comparison> Comps(const std::string& text) {
  return Parser::MustParseRule("q() :- d(X), " + text).comparisons();
}

TEST(InequalityGraphTest, ImpliesLeqAlongPath) {
  const InequalityGraph g(Comps("A <= B, B <= C"));
  EXPECT_TRUE(g.ImpliesLeq(Term::Variable("A"), Term::Variable("C")));
  EXPECT_FALSE(g.ImpliesLeq(Term::Variable("C"), Term::Variable("A")));
}

TEST(InequalityGraphTest, ImpliesLeqReflexive) {
  const InequalityGraph g(Comps("A <= B"));
  EXPECT_TRUE(g.ImpliesLeq(Term::Variable("A"), Term::Variable("A")));
}

TEST(InequalityGraphTest, ImpliesLtRequiresStrictEdge) {
  const InequalityGraph g(Comps("A <= B, B < C, C <= D"));
  EXPECT_TRUE(g.ImpliesLt(Term::Variable("A"), Term::Variable("D")));
  EXPECT_FALSE(g.ImpliesLt(Term::Variable("A"), Term::Variable("B")));
}

TEST(InequalityGraphTest, EqualityGivesBothDirections) {
  const InequalityGraph g(Comps("A = B"));
  EXPECT_TRUE(g.ImpliesLeq(Term::Variable("A"), Term::Variable("B")));
  EXPECT_TRUE(g.ImpliesLeq(Term::Variable("B"), Term::Variable("A")));
}

TEST(InequalityGraphTest, FlippedOperatorsNormalized) {
  const InequalityGraph g(Comps("B >= A, C > B"));
  EXPECT_TRUE(g.ImpliesLeq(Term::Variable("A"), Term::Variable("C")));
  EXPECT_TRUE(g.ImpliesLt(Term::Variable("A"), Term::Variable("C")));
}

TEST(InequalityGraphTest, ConstantOrderEdgesAreImplicit) {
  const InequalityGraph g(Comps("A <= 3, 5 <= B"));
  EXPECT_TRUE(g.ImpliesLt(Term::Variable("A"), Term::Variable("B")));
}

// The paper's Example 5 view: v(Y, Z) :- r(X), s(Y, Z), Y <= X, X <= Z.
// X is nondistinguished, sandwiched between distinguished Y and Z.
TEST(InequalityGraphTest, Example5LeqGeqSets) {
  const InequalityGraph g(Comps("Y <= X, X <= Z"));
  const std::vector<std::string> distinguished = {"Y", "Z"};
  EXPECT_EQ(g.LeqSet("X", distinguished), (std::vector<std::string>{"Y"}));
  EXPECT_EQ(g.GeqSet("X", distinguished), (std::vector<std::string>{"Z"}));
  EXPECT_TRUE(g.IsExportable("X", distinguished));
}

// Example 10's view has Y <= X, X < Z: the strict edge kills the geq-set.
TEST(InequalityGraphTest, Example10NotExportable) {
  const InequalityGraph g(Comps("Y <= X, X < Z"));
  const std::vector<std::string> distinguished = {"Y", "Z"};
  EXPECT_EQ(g.LeqSet("X", distinguished), (std::vector<std::string>{"Y"}));
  EXPECT_TRUE(g.GeqSet("X", distinguished).empty());
  EXPECT_FALSE(g.IsExportable("X", distinguished));
}

// Example 6's view: v(X, Y, W) with X <= Z1, W <= Z1, Z1 <= Y.
TEST(InequalityGraphTest, Example6ExportableThroughEitherSide) {
  const InequalityGraph g(Comps("X <= Z1, W <= Z1, Z1 <= Y"));
  const std::vector<std::string> distinguished = {"X", "Y", "W"};
  const std::vector<std::string> leq = g.LeqSet("Z1", distinguished);
  // Both X and W sit below Z1 with pure <= paths.
  EXPECT_EQ(leq, (std::vector<std::string>{"X", "W"}));
  EXPECT_EQ(g.GeqSet("Z1", distinguished), (std::vector<std::string>{"Y"}));
  EXPECT_TRUE(g.IsExportable("Z1", distinguished));
}

TEST(InequalityGraphTest, IntermediateDistinguishedVariableBlocksPath) {
  // Y <= D <= X with D distinguished: Y is not in the leq-set (every path
  // passes through D); D is.
  const InequalityGraph g(Comps("Y <= D, D <= X"));
  const std::vector<std::string> distinguished = {"Y", "D"};
  EXPECT_EQ(g.LeqSet("X", distinguished), (std::vector<std::string>{"D"}));
}

TEST(InequalityGraphTest, StrictEdgeOnAlternatePathDisqualifies) {
  // Y <= X via one path but also Y < X via another: equating would be
  // inconsistent, so Y must not be in the leq-set.
  const InequalityGraph g(Comps("Y <= X, Y <= M, M < X"));
  const std::vector<std::string> distinguished = {"Y", "Z"};
  EXPECT_TRUE(g.LeqSet("X", distinguished).empty());
}

TEST(InequalityGraphTest, UnknownVariableHasEmptySets) {
  const InequalityGraph g(Comps("A <= B"));
  EXPECT_TRUE(g.LeqSet("Q", {"A", "B"}).empty());
  EXPECT_FALSE(g.IsExportable("Q", {"A", "B"}));
}

TEST(InequalityGraphTest, NotEqualIgnored) {
  const InequalityGraph g(Comps("A != B"));
  EXPECT_FALSE(g.ImpliesLeq(Term::Variable("A"), Term::Variable("B")));
}

TEST(InequalityGraphTest, VariableEqualToDistinguishedIsExportable) {
  const InequalityGraph g(Comps("X = Y"));
  EXPECT_TRUE(g.IsExportable("X", {"Y"}));
}

}  // namespace
}  // namespace cqac
