// Satellite coverage for Phase-2 edge cases, each cross-checked three
// ways: the rewriter's answer, the configuration lattice's agreement on
// it, and the brute-force oracle's verdict on any produced rewriting.

#include "gtest/gtest.h"
#include "parser/parser.h"
#include "rewriting/minicon.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "workload/generator.h"

namespace cqac {
namespace testing {
namespace {

/// Lattice + oracle in one assertion helper.
void ExpectConsistent(const FuzzCase& c, RewriteOutcome expected) {
  const DifferentialReport report = RunConfigLattice(c, FullConfigLattice());
  EXPECT_TRUE(report.ok) << report.divergent_config << ": " << report.failure;
  EXPECT_EQ(report.baseline.outcome, expected);
  if (report.baseline_result.outcome == RewriteOutcome::kRewritingFound) {
    const OracleVerdict verdict =
        CheckRewritingWithOracle(c, report.baseline_result.rewriting);
    EXPECT_TRUE(verdict.ok) << verdict.failure;
  }
}

TEST(RewriterEdgeTest, ZeroViews) {
  FuzzCase c;
  c.query = Parser::MustParseRule("q(X) :- p(X,Y), X < 3");
  ExpectConsistent(c, RewriteOutcome::kNoRewriting);
}

TEST(RewriterEdgeTest, SelfJoinOnlyQuery) {
  FuzzCase c;
  c.query = Parser::MustParseRule("q(X) :- p(X,X), p(X,X)");
  c.views = ViewSet(Parser::MustParseProgram("v(X) :- p(X,X)"));
  ExpectConsistent(c, RewriteOutcome::kRewritingFound);
}

TEST(RewriterEdgeTest, SelfJoinWithComparisons) {
  FuzzCase c;
  c.query = Parser::MustParseRule("q(X,Y) :- p(X,Y), p(Y,X), X < Y");
  c.views = ViewSet(
      Parser::MustParseProgram("v(X,Y) :- p(X,Y), p(Y,X)"));
  ExpectConsistent(c, RewriteOutcome::kRewritingFound);
}

TEST(RewriterEdgeTest, AllComparisonsUnsatisfiable) {
  // An unsatisfiable query computes the empty set everywhere; the empty
  // union is its (vacuous) equivalent rewriting, and the oracle must
  // agree with that reading.
  FuzzCase c;
  c.query = Parser::MustParseRule("q(X) :- p(X), X < 3, 5 < X");
  c.views = ViewSet(Parser::MustParseProgram("v(X) :- p(X)"));
  const DifferentialReport report = RunConfigLattice(c, FullConfigLattice());
  EXPECT_TRUE(report.ok) << report.divergent_config << ": " << report.failure;
  ASSERT_EQ(report.baseline.outcome, RewriteOutcome::kRewritingFound);
  EXPECT_TRUE(report.baseline_result.rewriting.empty());
  const OracleVerdict verdict =
      CheckRewritingWithOracle(c, report.baseline_result.rewriting);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
}

TEST(RewriterEdgeTest, UnsatisfiableViewIsNeverUsed) {
  FuzzCase c;
  c.query = Parser::MustParseRule("q(X) :- p(X,Y)");
  c.views = ViewSet(Parser::MustParseProgram(
      "dead(X,Y) :- p(X,Y), X < 2, 4 < X.\n"
      "live(X,Y) :- p(X,Y)"));
  const DifferentialReport report = RunConfigLattice(c, FullConfigLattice());
  EXPECT_TRUE(report.ok) << report.divergent_config << ": " << report.failure;
  ASSERT_EQ(report.baseline.outcome, RewriteOutcome::kRewritingFound);
  const OracleVerdict verdict =
      CheckRewritingWithOracle(c, report.baseline_result.rewriting);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
}

TEST(McdCombinationTest, ExistenceAgreesWithEnumerationOnEdgeInputs) {
  // McdCombinationExists must say true exactly when ForEachMcdCombination
  // emits at least one combination — including the edge shapes: no MCDs,
  // overlapping-only coverage, and self-join bodies.
  struct Shape {
    const char* query;
    const char* views;
  };
  const Shape shapes[] = {
      {"q(X) :- p(X,X), p(X,X)", "v(X) :- p(X,X)"},
      {"q(X) :- p(X,Y), p(Y,X)", "v(X,Y) :- p(X,Y), p(Y,X)"},
      {"q(X) :- p(X,Y), r(Y)", "v(X,Y) :- p(X,Y)"},  // r uncoverable
      {"q(X,Y) :- p(X,Z), p(Z,Y)", "v(X,Z) :- p(X,Z)"},
  };
  for (const Shape& shape : shapes) {
    const ConjunctiveQuery q = Parser::MustParseRule(shape.query);
    const std::vector<ConjunctiveQuery> views =
        Parser::MustParseProgram(shape.views);
    const std::vector<Mcd> mcds = FormMcds(q, views);
    const int num_subgoals = static_cast<int>(q.body().size());
    int combinations = 0;
    ForEachMcdCombination(mcds, num_subgoals,
                          [&combinations](const std::vector<const Mcd*>&) {
                            ++combinations;
                            return true;
                          });
    EXPECT_EQ(McdCombinationExists(mcds, num_subgoals), combinations > 0)
        << shape.query;
  }
}

TEST(McdCombinationTest, ExistenceAgreesWithEnumerationOnRandomWorkloads) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    WorkloadGenerator g(config);
    const WorkloadInstance instance = g.Generate();
    // MiniCon runs on the comparison-stripped skeletons, as in Phase 1.
    ConjunctiveQuery q0 = instance.query;
    q0.mutable_comparisons().clear();
    std::vector<ConjunctiveQuery> v0;
    for (const ConjunctiveQuery& v : instance.views.views()) {
      ConjunctiveQuery stripped = v;
      stripped.mutable_comparisons().clear();
      v0.push_back(std::move(stripped));
    }
    const std::vector<Mcd> mcds = FormMcds(q0, v0);
    const int num_subgoals = static_cast<int>(q0.body().size());
    bool any = false;
    ForEachMcdCombination(mcds, num_subgoals,
                          [&any](const std::vector<const Mcd*>&) {
                            any = true;
                            return false;  // existence established
                          });
    EXPECT_EQ(McdCombinationExists(mcds, num_subgoals), any)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace testing
}  // namespace cqac
