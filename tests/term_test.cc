#include "ast/term.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(TermTest, VariableBasics) {
  const Term t = Term::Variable("X");
  EXPECT_TRUE(t.IsVariable());
  EXPECT_FALSE(t.IsConstant());
  EXPECT_EQ(t.name(), "X");
  EXPECT_EQ(t.ToString(), "X");
}

TEST(TermTest, ConstantBasics) {
  const Term t = Term::Constant(Rational(7, 2));
  EXPECT_TRUE(t.IsConstant());
  EXPECT_FALSE(t.IsVariable());
  EXPECT_EQ(t.value(), Rational(7, 2));
  EXPECT_EQ(t.ToString(), "7/2");
}

TEST(TermTest, IntegerConstantConvenience) {
  const Term t = Term::Constant(5);
  EXPECT_TRUE(t.IsConstant());
  EXPECT_EQ(t.value(), Rational(5));
}

TEST(TermTest, DefaultIsConstantZero) {
  const Term t;
  EXPECT_TRUE(t.IsConstant());
  EXPECT_EQ(t.value(), Rational(0));
}

TEST(TermTest, Equality) {
  EXPECT_EQ(Term::Variable("X"), Term::Variable("X"));
  EXPECT_NE(Term::Variable("X"), Term::Variable("Y"));
  EXPECT_EQ(Term::Constant(3), Term::Constant(3));
  EXPECT_NE(Term::Constant(3), Term::Constant(4));
  EXPECT_NE(Term::Variable("X"), Term::Constant(3));
}

TEST(TermTest, OrderingIsTotal) {
  const Term x = Term::Variable("X");
  const Term y = Term::Variable("Y");
  const Term c = Term::Constant(1);
  EXPECT_TRUE(x < y);
  EXPECT_FALSE(y < x);
  // Variables sort before constants per the arbitrary total order.
  EXPECT_TRUE(x < c);
  EXPECT_FALSE(c < x);
  EXPECT_FALSE(x < x);
}

TEST(TermTest, HashDistinguishesVariableFromConstant) {
  std::unordered_set<Term> set;
  set.insert(Term::Variable("X"));
  set.insert(Term::Constant(1));
  set.insert(Term::Variable("X"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(TermTest, HashIsConsistentWithEquality) {
  // Equal terms must hash equal — across copies, not just identical
  // objects — for every kind of term.
  const std::vector<Term> terms = {
      Term::Variable("X"),    Term::Variable("Y"),
      Term::Variable("_f0"),  Term::Variable(""),
      Term::Constant(0),      Term::Constant(3),
      Term::Constant(-3),     Term::Constant(Rational(7, 2)),
      Term::Constant(Rational(-7, 2)),
  };
  for (const Term& a : terms) {
    const Term copy = a;
    EXPECT_EQ(a.Hash(), copy.Hash()) << a.ToString();
    for (const Term& b : terms) {
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " == " << b.ToString();
      }
    }
  }
}

TEST(TermTest, HashSpreadsSimilarVariables) {
  // Workload variable names are short and highly regular (X0, X1, ...);
  // the hash must not collapse them onto a handful of buckets.
  std::unordered_set<size_t> hashes;
  for (int i = 0; i < 64; ++i) {
    hashes.insert(Term::Variable("X" + std::to_string(i)).Hash());
    hashes.insert(Term::Constant(i).Hash());
  }
  EXPECT_GE(hashes.size(), 120u);  // allow a couple of benign collisions
}

}  // namespace
}  // namespace cqac
