#include "obs/metrics.h"

#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add(1);
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsTest, GaugeSetAndMax) {
  obs::Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Max(3);  // Lower value does not regress the gauge.
  EXPECT_EQ(g.value(), 7);
  g.Max(9);
  EXPECT_EQ(g.value(), 9);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsTest, HistogramStatsAndQuantiles) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0);
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.sum(), 5050);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  // Power-of-two buckets: the quantile is an inclusive upper bound that
  // never undershoots the true value's bucket.
  EXPECT_GE(h.ApproxQuantile(0.5), 50);
  EXPECT_GE(h.ApproxQuantile(0.99), 99);
  EXPECT_LE(h.ApproxQuantile(0.5), 127);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
}

TEST(MetricsTest, HistogramNegativeClampsToZero) {
  obs::Histogram h;
  h.Observe(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("a");
  a.Add(1);
  // Registering more metrics must not invalidate earlier references —
  // instrumentation caches them in static locals.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler" + std::to_string(i));
  }
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(a.value(), 1);
  // Reset zeroes in place rather than discarding the object.
  reg.Reset();
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(a.value(), 0);
}

TEST(MetricsTest, DumpTextFormat) {
  obs::MetricsRegistry reg;
  reg.counter("hits").Add(3);
  reg.gauge("depth").Set(5);
  reg.histogram("wall").Observe(10);
  std::ostringstream out;
  reg.DumpText(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("counter hits 3\n"), std::string::npos);
  EXPECT_NE(text.find("gauge depth 5\n"), std::string::npos);
  EXPECT_NE(text.find("histogram wall count=1 sum=10 min=10 max=10"),
            std::string::npos);
}

TEST(MetricsTest, DumpJsonFormat) {
  obs::MetricsRegistry reg;
  reg.counter("hits").Add(3);
  reg.histogram("wall").Observe(10);
  std::ostringstream out;
  reg.DumpJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\": {\"hits\": 3}"), std::string::npos);
  EXPECT_NE(json.find("\"wall\": {\"count\": 1, \"sum\": 10"),
            std::string::npos);
}

TEST(MetricsTest, EnableGateTogglesGlobalCollection) {
  EXPECT_FALSE(obs::MetricsActive());
  obs::EnableMetrics(true);
  EXPECT_TRUE(obs::MetricsActive());
  obs::EnableMetrics(false);
  EXPECT_FALSE(obs::MetricsActive());
}

/// Hammer a shared counter, gauge, and histogram from many threads; run
/// under ThreadSanitizer via `ctest -L tsan` this proves the relaxed
/// atomics are race-free, and the totals prove no update is lost.
TEST(MetricsTest, ConcurrentUpdatesAreRaceFreeAndLossless) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Registration races on the name map are part of the test.
      obs::Counter& c = reg.counter("hammer.count");
      obs::Gauge& g = reg.gauge("hammer.depth");
      obs::Histogram& h = reg.histogram("hammer.wall");
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(1);
        g.Max(t * kPerThread + i);
        h.Observe(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("hammer.count").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.gauge("hammer.depth").value(), kThreads * kPerThread - 1);
  EXPECT_EQ(reg.histogram("hammer.wall").count(), kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("hammer.wall").max(), kPerThread - 1);
}

}  // namespace
}  // namespace cqac
