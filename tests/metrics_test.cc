#include "obs/metrics.h"

#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cqac {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add(1);
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsTest, GaugeSetAndMax) {
  obs::Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Max(3);  // Lower value does not regress the gauge.
  EXPECT_EQ(g.value(), 7);
  g.Max(9);
  EXPECT_EQ(g.value(), 9);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsTest, HistogramStatsAndQuantiles) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0);
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.sum(), 5050);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  // Power-of-two buckets: the quantile is an inclusive upper bound that
  // never undershoots the true value's bucket.
  EXPECT_GE(h.ApproxQuantile(0.5), 50);
  EXPECT_GE(h.ApproxQuantile(0.99), 99);
  EXPECT_LE(h.ApproxQuantile(0.5), 127);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
}

TEST(MetricsTest, HistogramNegativeClampsToZero) {
  obs::Histogram h;
  h.Observe(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("a");
  a.Add(1);
  // Registering more metrics must not invalidate earlier references —
  // instrumentation caches them in static locals.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler" + std::to_string(i));
  }
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(a.value(), 1);
  // Reset zeroes in place rather than discarding the object.
  reg.Reset();
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(a.value(), 0);
}

TEST(MetricsTest, DumpTextFormat) {
  obs::MetricsRegistry reg;
  reg.counter("hits").Add(3);
  reg.gauge("depth").Set(5);
  reg.histogram("wall").Observe(10);
  std::ostringstream out;
  reg.DumpText(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("counter hits 3\n"), std::string::npos);
  EXPECT_NE(text.find("gauge depth 5\n"), std::string::npos);
  EXPECT_NE(text.find("histogram wall count=1 sum=10 min=10 max=10"),
            std::string::npos);
}

TEST(MetricsTest, DumpJsonFormat) {
  obs::MetricsRegistry reg;
  reg.counter("hits").Add(3);
  reg.histogram("wall").Observe(10);
  std::ostringstream out;
  reg.DumpJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\": {\"hits\": 3}"), std::string::npos);
  EXPECT_NE(json.find("\"wall\": {\"count\": 1, \"sum\": 10"),
            std::string::npos);
}

TEST(MetricsTest, EnableGateTogglesGlobalCollection) {
  EXPECT_FALSE(obs::MetricsActive());
  obs::EnableMetrics(true);
  EXPECT_TRUE(obs::MetricsActive());
  obs::EnableMetrics(false);
  EXPECT_FALSE(obs::MetricsActive());
}

/// Hammer a shared counter, gauge, and histogram from many threads; run
/// under ThreadSanitizer via `ctest -L tsan` this proves the relaxed
/// atomics are race-free, and the totals prove no update is lost.
TEST(MetricsTest, ConcurrentUpdatesAreRaceFreeAndLossless) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Registration races on the name map are part of the test.
      obs::Counter& c = reg.counter("hammer.count");
      obs::Gauge& g = reg.gauge("hammer.depth");
      obs::Histogram& h = reg.histogram("hammer.wall");
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(1);
        g.Max(t * kPerThread + i);
        h.Observe(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("hammer.count").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.gauge("hammer.depth").value(), kThreads * kPerThread - 1);
  EXPECT_EQ(reg.histogram("hammer.wall").count(), kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("hammer.wall").max(), kPerThread - 1);
}

// --------------------------------------------------- quantile estimation

// Midpoint interpolation pinned on known distributions.  The log2
// buckets bound the achievable precision, but at bucket boundaries the
// estimate must neither undershoot the lower bucket edge nor jump to the
// upper edge the way pure upper-bound reporting did.
TEST(MetricsTest, QuantileInterpolationPinnedDistributions) {
  obs::Histogram h;
  // Uniform 1..100: every value lands in a low bucket with tight edges,
  // so interpolation should be close to the exact percentile.
  for (int64_t v = 1; v <= 100; ++v) h.Observe(v);
  EXPECT_NEAR(static_cast<double>(h.ApproxQuantile(0.5)), 50.0, 14.0);
  EXPECT_NEAR(static_cast<double>(h.ApproxQuantile(0.95)), 95.0, 17.0);
  EXPECT_NEAR(static_cast<double>(h.ApproxQuantile(0.99)), 99.0, 15.0);
  // No estimate may leave the observed range.
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.ApproxQuantile(q), 1);
    EXPECT_LE(h.ApproxQuantile(q), 100);
  }
}

TEST(MetricsTest, QuantileDegenerateDistributionIsExact) {
  // All observations equal: clamping to [min, max] makes every quantile
  // exactly that value, where upper-bound reporting said 127.
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(100);
  EXPECT_EQ(h.ApproxQuantile(0.5), 100);
  EXPECT_EQ(h.ApproxQuantile(0.99), 100);
  EXPECT_EQ(h.ApproxQuantile(1.0), 100);
}

TEST(MetricsTest, QuantileAtBucketBoundary) {
  // 64 is the first value of the [64, 127] bucket; a boundary value must
  // not be reported as the bucket's upper edge.
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(64);
  EXPECT_EQ(h.ApproxQuantile(0.5), 64);
  // Mixed boundary: half at 64, half at 127 (same bucket's two edges).
  obs::Histogram mixed;
  for (int i = 0; i < 50; ++i) mixed.Observe(64);
  for (int i = 0; i < 50; ++i) mixed.Observe(127);
  const int64_t p50 = mixed.ApproxQuantile(0.5);
  EXPECT_GE(p50, 64);
  EXPECT_LE(p50, 127);
  // The midpoint rule lands mid-bucket rather than pinning to an edge.
  EXPECT_NEAR(static_cast<double>(p50), 95.5, 16.0);
}

TEST(MetricsTest, QuantileTwoBucketSplit) {
  // 90 observations in the [32, 63] bucket, 10 in [1024, 2047]: p50 must
  // come from the low bucket, p99 from the high one.
  obs::Histogram h;
  for (int i = 0; i < 90; ++i) h.Observe(40);
  for (int i = 0; i < 10; ++i) h.Observe(1500);
  EXPECT_GE(h.ApproxQuantile(0.5), 32);
  EXPECT_LE(h.ApproxQuantile(0.5), 63);
  EXPECT_GE(h.ApproxQuantile(0.99), 1024);
  EXPECT_LE(h.ApproxQuantile(0.99), 1500);  // clamped to observed max
}

TEST(MetricsTest, QuantileEmptyHistogramIsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.ApproxQuantile(0.5), 0);
  EXPECT_EQ(h.ApproxQuantile(0.99), 0);
}

// ----------------------------------------------------- windowed histogram

TEST(MetricsTest, WindowedHistogramMergesLiveSlots) {
  const int64_t kWindow = 60LL * 1000 * 1000 * 1000;
  obs::WindowedHistogram w(kWindow);
  const int64_t t0 = 1000 * kWindow;
  for (int64_t v = 1; v <= 100; ++v) w.ObserveAt(t0 + v, v);
  const obs::WindowedHistogram::Snapshot snap = w.SnapAt(t0 + 1000);
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.sum, 5050);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 100);
  EXPECT_NEAR(static_cast<double>(snap.p50), 50.0, 14.0);
  EXPECT_NEAR(static_cast<double>(snap.p99), 99.0, 15.0);
}

TEST(MetricsTest, WindowedHistogramExpiresOldSlots) {
  const int64_t kWindow = 60LL * 1000 * 1000 * 1000;
  obs::WindowedHistogram w(kWindow);
  const int64_t t0 = 1000 * kWindow;
  w.ObserveAt(t0, 7);
  // Within the window the observation is visible...
  EXPECT_EQ(w.SnapAt(t0 + kWindow / 2).count, 1);
  // ...after more than a full window has passed, it is not.
  EXPECT_EQ(w.SnapAt(t0 + 2 * kWindow + 1).count, 0);
}

TEST(MetricsTest, WindowedHistogramReusesExpiredSlots) {
  const int64_t kWindow = 6LL * 1000;  // 1us slots for a fast wrap
  obs::WindowedHistogram w(kWindow);
  const int64_t t0 = 100 * kWindow;
  // Drive enough slot epochs to wrap the ring several times; counts from
  // reused slots must never leak into later windows.
  for (int64_t epoch = 0; epoch < 30; ++epoch) {
    w.ObserveAt(t0 + epoch * (kWindow / 6), 5);
  }
  const obs::WindowedHistogram::Snapshot snap =
      w.SnapAt(t0 + 29 * (kWindow / 6));
  EXPECT_LE(snap.count, 6);
  EXPECT_GE(snap.count, 1);
}

TEST(MetricsTest, RegistryWindowedIsStableAndResets) {
  obs::MetricsRegistry reg;
  obs::WindowedHistogram& w = reg.windowed("slo");
  EXPECT_EQ(&w, &reg.windowed("slo"));
  w.Observe(42);
  EXPECT_EQ(w.Snap().count, 1);
  reg.Reset();
  EXPECT_EQ(w.Snap().count, 0);
}

}  // namespace
}  // namespace cqac
