// Microbenchmark: the incremental Phase-1 pipeline.  Three layers are
// pinned separately so regressions localize:
//
//  * enumeration — nodes visited by the prefix-pruned satisfying-order
//    tree vs the naive enumerate-then-filter reference on the chained
//    workload (the bench_canonical /N family);
//  * freezing — delta Freeze (patch moved rows only) vs FreezeFull
//    (clear + refill) over a full total-order sweep;
//  * end-to-end Phase 1 — PrepareRewriteWork + ProcessCanonicalDatabase
//    over every order of a generated workload, cold (no memo) and with
//    the fingerprint memo deduplicating structurally equal databases.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "constraints/orders.h"
#include "engine/canonical.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "runtime/memo_cache.h"
#include "workload/generator.h"

namespace {

std::vector<std::string> Vars(int n) {
  std::vector<std::string> vars;
  for (int i = 0; i < n; ++i) vars.push_back("X" + std::to_string(i));
  return vars;
}

std::vector<cqac::Comparison> Chain(const std::vector<std::string>& vars) {
  std::vector<cqac::Comparison> axioms;
  for (size_t i = 0; i + 1 < vars.size(); ++i) {
    axioms.push_back(cqac::Comparison(cqac::Term::Variable(vars[i]),
                                      cqac::CompOp::kLt,
                                      cqac::Term::Variable(vars[i + 1])));
  }
  return axioms;
}

// The pruned enumeration tree on the fully chained axioms: one satisfying
// order, found after exactly one accepted placement per level.  Counters
// expose the visited/pruned split and the legacy reference's node count
// for the same inputs.
void BM_PrunedChainedOrders(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<std::string> vars = Vars(n);
  const std::vector<cqac::Comparison> axioms = Chain(vars);
  cqac::OrderEnumerationStats stats;
  for (auto _ : state) {
    stats = {};
    cqac::ForEachSatisfyingOrderPruned(
        vars, {}, axioms, cqac::OrderSymmetry{},
        [](const cqac::TotalOrder&, int64_t) { return true; }, &stats);
    benchmark::DoNotOptimize(stats);
  }
  cqac::OrderEnumerationStats legacy;
  cqac::internal::ForEachSatisfyingOrderLegacy(
      vars, {}, axioms, [](const cqac::TotalOrder&) { return true; },
      &legacy);
  state.counters["nodes_visited"] = static_cast<double>(stats.nodes_visited);
  state.counters["nodes_pruned"] = static_cast<double>(stats.nodes_pruned);
  state.counters["legacy_nodes"] = static_cast<double>(legacy.nodes_visited);
  state.counters["orders"] = static_cast<double>(stats.orders_emitted);
}

// The legacy enumerate-then-filter reference on the same chained axioms,
// so the two timing rows sit side by side in the console output.
void BM_LegacyChainedOrders(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<std::string> vars = Vars(n);
  const std::vector<cqac::Comparison> axioms = Chain(vars);
  cqac::OrderEnumerationStats stats;
  for (auto _ : state) {
    stats = {};
    cqac::internal::ForEachSatisfyingOrderLegacy(
        vars, {}, axioms, [](const cqac::TotalOrder&) { return true; },
        &stats);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["nodes_visited"] = static_cast<double>(stats.nodes_visited);
}

// Dense enough that refilling every row costs real work; the delta path
// additionally feeds the per-relation change epochs that let the view
// evaluator skip untouched relations (measured end to end below).
const char* const kFreezeQuery =
    "q(X0) :- r(X0, X1), r(X1, X2), r(X2, X3), r(X3, X4), s(X0, X2), "
    "s(X1, X3), s(X2, X4), t(X0, X3), t(X1, X4), t(X0, X4), u(X0, X1, "
    "X2, X3), u(X1, X2, X3, X4)";

// Delta freezing over a full sweep: consecutive orders differ in a few
// blocks, so most rows survive untouched.
void BM_DeltaFreezeSweep(benchmark::State& state) {
  const cqac::ConjunctiveQuery q = cqac::Parser::MustParseRule(kFreezeQuery);
  cqac::CanonicalFreezer freezer(q);
  int64_t orders = 0;
  for (auto _ : state) {
    orders = 0;
    cqac::ForEachTotalOrder(q.AllVariables(), {},
                            [&](const cqac::TotalOrder& order) {
                              benchmark::DoNotOptimize(freezer.Freeze(order));
                              ++orders;
                              return true;
                            });
  }
  state.counters["orders"] = static_cast<double>(orders);
}

// The reference path: clear + refill every row on every order.
void BM_FullFreezeSweep(benchmark::State& state) {
  const cqac::ConjunctiveQuery q = cqac::Parser::MustParseRule(kFreezeQuery);
  cqac::CanonicalFreezer freezer(q);
  int64_t orders = 0;
  for (auto _ : state) {
    orders = 0;
    cqac::ForEachTotalOrder(
        q.AllVariables(), {}, [&](const cqac::TotalOrder& order) {
          benchmark::DoNotOptimize(freezer.FreezeFull(order));
          ++orders;
          return true;
        });
  }
  state.counters["orders"] = static_cast<double>(orders);
}

// End-to-end Phase 1 (no Phase-2 containment): every canonical database
// of the generated workload is processed, with no early failure exit so
// every run does identical work.  range(1) toggles the fingerprint memo.
void BM_Phase1Sweep(benchmark::State& state) {
  cqac::WorkloadConfig config;
  const int point = static_cast<int>(state.range(0));
  const bool use_memo = state.range(1) != 0;
  switch (point) {
    case 0:
      config.num_variables = 4;
      config.num_constants = 2;
      config.num_subgoals = 3;
      config.num_views = 4;
      break;
    case 1:
      config.num_variables = 5;
      config.num_constants = 2;
      config.num_subgoals = 4;
      config.num_views = 4;
      break;
    default:
      config.num_variables = 6;
      config.num_constants = 2;
      config.num_subgoals = 4;
      config.num_views = 5;
      break;
  }
  int64_t dbs = 0, kept = 0, hits = 0, misses = 0;
  for (auto _ : state) {
    dbs = kept = hits = misses = 0;
    for (int i = 0; i < 3; ++i) {
      config.seed = 1000 + i;
      cqac::WorkloadGenerator generator(config);
      const cqac::WorkloadInstance instance = generator.Generate();
      cqac::RewriteOptions options;
      const cqac::RewriteWork work = cqac::PrepareRewriteWork(
          instance.query, instance.views, options);
      cqac::Phase1Memo memo;
      cqac::ForEachTotalOrder(
          instance.query.AllVariables(), work.constants,
          [&](const cqac::TotalOrder& order) {
            ++dbs;
            const cqac::DatabaseOutcome out = cqac::ProcessCanonicalDatabase(
                work, order, use_memo ? &memo : nullptr);
            kept += out.stats.kept_canonical_databases;
            hits += out.stats.phase1_memo_hits;
            misses += out.stats.phase1_memo_misses;
            benchmark::DoNotOptimize(out);
            return true;
          });
    }
  }
  state.counters["canonical_dbs"] = static_cast<double>(dbs);
  state.counters["kept_dbs"] = static_cast<double>(kept);
  state.counters["memo_hits"] = static_cast<double>(hits);
  state.counters["memo_misses"] = static_cast<double>(misses);
}

BENCHMARK(BM_PrunedChainedOrders)
    ->DenseRange(3, 7)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LegacyChainedOrders)
    ->DenseRange(3, 7)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeltaFreezeSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullFreezeSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Phase1Sweep)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

CQAC_BENCH_MAIN();
