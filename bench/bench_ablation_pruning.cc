// Ablation A: the value of Phase 1's bucket pruning (step 3.4 of the
// paper's Figure 2) — the "preliminary test to decide for each view
// whether it is potentially useful" that the paper credits for its
// efficiency.  Compares:
//   * no pruning (every MCD stays in every Pre-Rewriting),
//   * the literal Definition-2 relaxed-form pruning,
//   * the canonical-database-grounded frozen-match pruning (the default).
// Less pruning means fatter Pre-Rewritings and costlier Phase-2 checks.

#include "bench/bench_common.h"

namespace {

void RunWithPruning(benchmark::State& state,
                    cqac::RewriteOptions::Pruning pruning) {
  cqac::WorkloadConfig config;
  config.num_variables = static_cast<int>(state.range(0));
  config.num_constants = 1;
  config.num_subgoals = 3;
  config.view_subgoals = 2;
  config.num_views = 4;
  int64_t kept_mcds = 0;
  int64_t found = 0;
  for (auto _ : state) {
    for (int i = 0; i < 3; ++i) {
      config.seed = 1000 + i;
      cqac::WorkloadGenerator generator(config);
      const cqac::WorkloadInstance instance = generator.Generate();
      cqac::RewriteOptions options;
      options.pruning = pruning;
      const cqac::RewriteResult result =
          cqac::EquivalentRewriter(instance.query, instance.views, options)
              .Run();
      kept_mcds += result.stats.mcds_kept_total;
      found += result.outcome == cqac::RewriteOutcome::kRewritingFound;
      benchmark::DoNotOptimize(result);
    }
  }
  state.counters["kept_mcds"] = static_cast<double>(kept_mcds);
  state.counters["found"] = static_cast<double>(found);
}

void BM_Pruning_None(benchmark::State& state) {
  RunWithPruning(state, cqac::RewriteOptions::Pruning::kNone);
}
void BM_Pruning_RelaxedForm(benchmark::State& state) {
  RunWithPruning(state, cqac::RewriteOptions::Pruning::kRelaxedForm);
}
void BM_Pruning_FrozenMatch(benchmark::State& state) {
  RunWithPruning(state, cqac::RewriteOptions::Pruning::kFrozenMatch);
}

BENCHMARK(BM_Pruning_None)->DenseRange(3, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pruning_RelaxedForm)
    ->DenseRange(3, 5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pruning_FrozenMatch)
    ->DenseRange(3, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CQAC_BENCH_MAIN();
