// Figure 4(b): runtime as a function of the NUMBER OF DISTINCT VARIABLES
// AND CONSTANTS, for small view sets (2-6 views).
//
// Expected shape (paper): strong, ordered-Bell-like growth in the number
// of variables+constants — this is the axis that dominates the cost.

#include <algorithm>

#include "bench/bench_common.h"

namespace {

// range(0) = total distinct variables+constants; range(1) = views.
void BM_Fig4b_RuntimeVsVariables(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  cqac::WorkloadConfig config;
  config.num_constants = total >= 4 ? 1 : 0;
  config.num_variables = total - config.num_constants;
  // Enough subgoals for all variables to occur (the generator caps the
  // variable count at num_subgoals + 1).
  config.num_subgoals = std::max(3, config.num_variables - 1);
  config.view_subgoals = 2;
  config.num_views = static_cast<int>(state.range(1));
  for (auto _ : state) {
    cqac_bench::RunRewriterPoint(state, config);
  }
  state.counters["vars_plus_consts"] = static_cast<double>(total);
  state.counters["views"] = static_cast<double>(config.num_views);
}

BENCHMARK(BM_Fig4b_RuntimeVsVariables)
    ->ArgsProduct({{3, 4, 5, 6, 7}, {2, 4, 6}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

CQAC_BENCH_MAIN();
