// Microbenchmark: the canonical-database substrate itself.  The number of
// total orders of n variables is the ordered Bell number (1, 3, 13, 75,
// 541, 4683, 47293, 545835, ...), which is the engine behind the runtime
// growth of Figures 4(b,c); this bench pins the constant factor per order
// and the effect of comparison-driven pruning.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "constraints/orders.h"

namespace {

std::vector<std::string> Vars(int n) {
  std::vector<std::string> vars;
  for (int i = 0; i < n; ++i) vars.push_back("X" + std::to_string(i));
  return vars;
}

void BM_EnumerateAllOrders(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<std::string> vars = Vars(n);
  int64_t count = 0;
  for (auto _ : state) {
    count = 0;
    cqac::ForEachTotalOrder(vars, {}, [&count](const cqac::TotalOrder&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.counters["orders"] = static_cast<double>(count);
  state.counters["expected"] =
      static_cast<double>(cqac::CountTotalOrders(n));
}

void BM_EnumerateWithConstants(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<std::string> vars = Vars(n);
  const std::vector<cqac::Rational> constants = {cqac::Rational(10),
                                                 cqac::Rational(20)};
  int64_t count = 0;
  for (auto _ : state) {
    count = 0;
    cqac::ForEachTotalOrder(vars, constants,
                            [&count](const cqac::TotalOrder&) {
                              ++count;
                              return true;
                            });
    benchmark::DoNotOptimize(count);
  }
  state.counters["orders"] = static_cast<double>(count);
}

// A fully chained constraint set prunes the enumeration to a single
// satisfying order; measures the pruning machinery's overhead.
void BM_EnumerateSatisfyingChained(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<std::string> vars = Vars(n);
  std::vector<cqac::Comparison> axioms;
  for (int i = 0; i + 1 < n; ++i) {
    axioms.push_back(cqac::Comparison(
        cqac::Term::Variable("X" + std::to_string(i)), cqac::CompOp::kLt,
        cqac::Term::Variable("X" + std::to_string(i + 1))));
  }
  int64_t count = 0;
  for (auto _ : state) {
    count = 0;
    cqac::ForEachSatisfyingOrder(vars, {}, axioms,
                                 [&count](const cqac::TotalOrder&) {
                                   ++count;
                                   return true;
                                 });
    benchmark::DoNotOptimize(count);
  }
  state.counters["satisfying_orders"] = static_cast<double>(count);
}

BENCHMARK(BM_EnumerateAllOrders)
    ->DenseRange(1, 8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EnumerateWithConstants)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EnumerateSatisfyingChained)
    ->DenseRange(2, 10)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

CQAC_BENCH_MAIN();
