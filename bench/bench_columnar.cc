// Row engine vs coded columnar engine, head to head on the canonical-
// database workloads the rewriter actually runs:
//
//   - BM_Containment_Canonical_{Row,Columnar}: full CqacContainedCanonical
//     over a chain query family (ordered-Bell-sized enumerations).  Both
//     variants report satisfying_orders; identical counters prove the
//     engines walked the same databases, so wall-time ratios are
//     apples-to-apples.
//   - BM_FreezeEvaluate_{Row,Columnar}: the per-database inner loop in
//     isolation (enumeration excluded) — delta freeze plus match-mode
//     evaluation over a pre-collected order list.  The columnar variant's
//     allocs_per_iter counter should read 0 in steady state (the
//     alloc_gate_test enforces the same property as a hard gate).
//   - BM_DictionaryBuild: ahead-of-time cost of seeding + ranking the
//     canonical value pool — the price paid once per RewriteWork for the
//     no-mid-run-rebuild guarantee.
//   - BM_IndexGateCrossover_{Row,Columnar}: match-mode evaluation against
//     a single frozen chain database of `rows` subgoal tuples, sweeping
//     rows across the kFilterGate=8 and kIndexGate=32 strategy gates.
//
// tools/run_benches.sh columnar_engine records this binary's --json
// trajectory as results/BENCH_columnar_engine.json.

#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "constraints/orders.h"
#include "containment/cqac_containment.h"
#include "engine/canonical.h"
#include "engine/coded_eval.h"
#include "engine/evaluate.h"
#include "engine/value_dict.h"
#include "parser/parser.h"

namespace {

using cqac::CanonicalFreezer;
using cqac::CodedEvaluator;
using cqac::ConjunctiveQuery;
using cqac::ContainmentStats;
using cqac::FlatInstance;
using cqac::OrderSymmetry;
using cqac::Parser;
using cqac::PreparedQuery;
using cqac::Rational;
using cqac::TotalOrder;

/// q(X0) :- e(X0,X1), ..., e(X_{v-2},X_{v-1}), p(X0,X_{v-1}) — `v`
/// variables, ordered-Bell-many satisfying orders.
ConjunctiveQuery ChainQuery(int v, bool with_comparison) {
  std::ostringstream rule;
  rule << "q(X0) :- ";
  for (int i = 0; i + 1 < v; ++i) {
    rule << "e(X" << i << ",X" << i + 1 << "), ";
  }
  rule << "p(X0,X" << v - 1 << ")";
  if (with_comparison) rule << ", X0 < 8";
  return Parser::MustParseRule(rule.str());
}

/// RAII row-engine selection for the timed region.
class ScopedRowEngine {
 public:
  explicit ScopedRowEngine(bool row)
      : saved_(cqac::internal::RowEngineForced()) {
    cqac::internal::ForceRowEngineForTest(row);
  }
  ~ScopedRowEngine() { cqac::internal::ForceRowEngineForTest(saved_); }

 private:
  bool saved_;
};

void RunContainment(benchmark::State& state, bool row_engine,
                    bool with_comparison) {
  const int v = static_cast<int>(state.range(0));
  const ConjunctiveQuery q1 = ChainQuery(v, with_comparison);
  const ConjunctiveQuery q2 = Parser::MustParseRule(
      with_comparison ? "q(A) :- e(A,B), A < 8" : "q(A) :- e(A,B)");
  const ScopedRowEngine engine(row_engine);
  ContainmentStats stats;
  bool contained = false;
  const cqac::testing::AllocCounterScope allocs;
  for (auto _ : state) {
    stats = ContainmentStats{};
    contained = cqac::CqacContainedCanonical(q1, q2, &stats);
    benchmark::DoNotOptimize(contained);
  }
  cqac_bench::RecordAllocsPerIter(state, allocs);
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["satisfying_orders"] =
      static_cast<double>(stats.orders_satisfying);
}

void BM_Containment_Canonical_Row(benchmark::State& state) {
  RunContainment(state, /*row_engine=*/true, /*with_comparison=*/false);
}
BENCHMARK(BM_Containment_Canonical_Row)->DenseRange(3, 6);

void BM_Containment_Canonical_Columnar(benchmark::State& state) {
  RunContainment(state, /*row_engine=*/false, /*with_comparison=*/false);
}
BENCHMARK(BM_Containment_Canonical_Columnar)->DenseRange(3, 6);

/// q(X0) :- e(Xi,Xj) for all i != j — a complete digraph on `v`
/// variables, so the canonical database has v(v-1) e-rows and q2's chain
/// walk genuinely backtracks.  This is the workload class where
/// per-database evaluation (not freezing or enumeration) dominates.
ConjunctiveQuery DenseQuery(int v) {
  std::ostringstream rule;
  rule << "q(X0) :- ";
  bool first = true;
  for (int i = 0; i < v; ++i) {
    for (int j = 0; j < v; ++j) {
      if (i == j) continue;
      if (!first) rule << ", ";
      first = false;
      rule << "e(X" << i << ",X" << j << ")";
    }
  }
  return Parser::MustParseRule(rule.str());
}

void RunContainmentDense(benchmark::State& state, bool row_engine) {
  const int v = static_cast<int>(state.range(0));
  const ConjunctiveQuery q1 = DenseQuery(v);
  const ConjunctiveQuery q2 =
      Parser::MustParseRule("q(A) :- e(A,B), e(B,C), e(C,D), e(D,E)");
  const ScopedRowEngine engine(row_engine);
  ContainmentStats stats;
  bool contained = false;
  const cqac::testing::AllocCounterScope allocs;
  for (auto _ : state) {
    stats = ContainmentStats{};
    contained = cqac::CqacContainedCanonical(q1, q2, &stats);
    benchmark::DoNotOptimize(contained);
  }
  cqac_bench::RecordAllocsPerIter(state, allocs);
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["satisfying_orders"] =
      static_cast<double>(stats.orders_satisfying);
}

void BM_Containment_Canonical_Dense_Row(benchmark::State& state) {
  RunContainmentDense(state, /*row_engine=*/true);
}
BENCHMARK(BM_Containment_Canonical_Dense_Row)->DenseRange(4, 5);

void BM_Containment_Canonical_Dense_Columnar(benchmark::State& state) {
  RunContainmentDense(state, /*row_engine=*/false);
}
BENCHMARK(BM_Containment_Canonical_Dense_Columnar)->DenseRange(4, 5);

/// Wide canonical databases: the canonical-containment evaluation loop
/// (delta freeze + match-mode evaluation per satisfying order) over a q1
/// that is a strict chain of `rows` e-subgoals with a two-variable free
/// tail, q2 a five-step walk.  Order enumeration is hoisted out of the
/// timed region — it is shared, engine-independent work that at 30+
/// variables would otherwise drown the per-database numbers (the
/// end-to-end variants above keep it in).  Past rows = 32 the row engine
/// re-derives a node-based hash index for every database while the coded
/// engine probes a flat open-addressing table carved from the arena —
/// the regime the data-oriented core is built for.
void RunContainmentWide(benchmark::State& state, bool row_engine) {
  const int rows = static_cast<int>(state.range(0));
  std::ostringstream rule;
  rule << "q(X0) :- ";
  for (int i = 0; i < rows; ++i) {
    rule << (i > 0 ? ", " : "") << "e(X" << i << ",X" << i + 1 << ")";
  }
  // Chain the order axioms over all but the last two variables: the free
  // tail gives the enumeration a real (but pre-collected) order list and
  // makes every timed freeze a genuine delta patch.
  for (int i = 0; i + 2 < rows; ++i) {
    rule << ", X" << i << " < X" << i + 1;
  }
  const ConjunctiveQuery q1 = Parser::MustParseRule(rule.str());
  const ConjunctiveQuery q2 = Parser::MustParseRule(
      "q(A) :- e(A,B), e(B,C), e(C,D), e(D,E), e(E,F)");

  CanonicalFreezer freezer(q1);
  const PreparedQuery prepared(q2);
  PreparedQuery::Scratch scratch;
  CodedEvaluator coded(&prepared.plan());
  freezer.PrimeDictionary(q1.Constants(), q1.AllVariables().size());
  coded.BindTo(&freezer);

  std::vector<TotalOrder> orders;
  cqac::ForEachSatisfyingOrderPruned(
      q1.AllVariables(), q1.Constants(), q1.comparisons(), OrderSymmetry{},
      [&](const TotalOrder& order, int64_t) {
        orders.push_back(order);
        return orders.size() < 64;  // Plenty of databases, bounded setup.
      });

  int64_t matched = 0;
  for (const TotalOrder& order : orders) {  // Warm-up: arena high water.
    freezer.Freeze(order);
    matched += row_engine
                   ? prepared.Run(freezer.instance(), &freezer.frozen_head(),
                                  nullptr, &scratch)
                   : coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
  }

  const cqac::testing::AllocCounterScope allocs;
  for (auto _ : state) {
    matched = 0;
    for (const TotalOrder& order : orders) {
      freezer.Freeze(order);
      matched += row_engine
                     ? prepared.Run(freezer.instance(), &freezer.frozen_head(),
                                    nullptr, &scratch)
                     : coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
    }
    benchmark::DoNotOptimize(matched);
  }
  cqac_bench::RecordAllocsPerIter(state, allocs);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(orders.size()));
  state.counters["rows"] = rows;
  state.counters["satisfying_orders"] = static_cast<double>(orders.size());
  state.counters["matched"] = static_cast<double>(matched);
}

void BM_Containment_Canonical_Wide_Row(benchmark::State& state) {
  RunContainmentWide(state, /*row_engine=*/true);
}
BENCHMARK(BM_Containment_Canonical_Wide_Row)->RangeMultiplier(2)->Range(32, 128);

void BM_Containment_Canonical_Wide_Columnar(benchmark::State& state) {
  RunContainmentWide(state, /*row_engine=*/false);
}
BENCHMARK(BM_Containment_Canonical_Wide_Columnar)
    ->RangeMultiplier(2)
    ->Range(32, 128);

void BM_Containment_Comparisons_Row(benchmark::State& state) {
  RunContainment(state, /*row_engine=*/true, /*with_comparison=*/true);
}
BENCHMARK(BM_Containment_Comparisons_Row)->DenseRange(3, 6);

void BM_Containment_Comparisons_Columnar(benchmark::State& state) {
  RunContainment(state, /*row_engine=*/false, /*with_comparison=*/true);
}
BENCHMARK(BM_Containment_Comparisons_Columnar)->DenseRange(3, 6);

/// The inner loop in isolation: orders are pre-collected, each iteration
/// replays freeze + match-mode evaluation over the whole list.
void RunFreezeEvaluate(benchmark::State& state, bool row_engine) {
  const int v = static_cast<int>(state.range(0));
  const ConjunctiveQuery q1 = ChainQuery(v, /*with_comparison=*/false);
  const ConjunctiveQuery q2 = Parser::MustParseRule("q(A) :- e(A,B)");

  CanonicalFreezer freezer(q1);
  const PreparedQuery prepared(q2);
  PreparedQuery::Scratch scratch;
  CodedEvaluator coded(&prepared.plan());
  freezer.PrimeDictionary(q1.Constants(), q1.AllVariables().size());
  coded.BindTo(&freezer);

  std::vector<TotalOrder> orders;
  cqac::ForEachSatisfyingOrderPruned(
      q1.AllVariables(), q1.Constants(), q1.comparisons(), OrderSymmetry{},
      [&](const TotalOrder& order, int64_t) {
        orders.push_back(order);
        return true;
      });

  // Warm-up pass: arena high-water mark, retained scratch capacities.
  int64_t matched = 0;
  for (const TotalOrder& order : orders) {
    const FlatInstance& inst = freezer.Freeze(order);
    matched += row_engine
                   ? prepared.Run(inst, &freezer.frozen_head(), nullptr,
                                  &scratch)
                   : coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
  }

  const cqac::testing::AllocCounterScope allocs;
  for (auto _ : state) {
    matched = 0;
    for (const TotalOrder& order : orders) {
      const FlatInstance& inst = freezer.Freeze(order);
      matched += row_engine
                     ? prepared.Run(inst, &freezer.frozen_head(), nullptr,
                                    &scratch)
                     : coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
    }
    benchmark::DoNotOptimize(matched);
  }
  cqac_bench::RecordAllocsPerIter(state, allocs);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(orders.size()));
  state.counters["satisfying_orders"] = static_cast<double>(orders.size());
  state.counters["matched"] = static_cast<double>(matched);
}

void BM_FreezeEvaluate_Row(benchmark::State& state) {
  RunFreezeEvaluate(state, /*row_engine=*/true);
}
BENCHMARK(BM_FreezeEvaluate_Row)->DenseRange(4, 6);

void BM_FreezeEvaluate_Columnar(benchmark::State& state) {
  RunFreezeEvaluate(state, /*row_engine=*/false);
}
BENCHMARK(BM_FreezeEvaluate_Columnar)->DenseRange(4, 6);

/// Seeding + ranking the canonical value pool for `num_vars` variables
/// and three constants — the ahead-of-time price of the coded path.
void BM_DictionaryBuild(benchmark::State& state) {
  const size_t num_vars = static_cast<size_t>(state.range(0));
  const std::vector<Rational> constants = {Rational(2), Rational(8),
                                           Rational(20)};
  size_t pool = 0;
  for (auto _ : state) {
    cqac::ValueDictionary dict;
    cqac::SeedCanonicalValuePool(num_vars, constants, &dict);
    dict.Rebuild();
    pool = dict.size();
    benchmark::DoNotOptimize(pool);
  }
  state.counters["pool_size"] = static_cast<double>(pool);
}
BENCHMARK(BM_DictionaryBuild)->RangeMultiplier(2)->Range(4, 32);

/// One frozen chain database with `rows` e-tuples (X0 < X1 < ... pins a
/// single satisfying order); q2's second subgoal enters with its first
/// column bound, so the evaluator's per-depth strategy sweeps kScan →
/// kFilter → kIndex as rows crosses 8 and 32.
void RunIndexGateCrossover(benchmark::State& state, bool row_engine) {
  const int rows = static_cast<int>(state.range(0));
  std::ostringstream rule;
  rule << "q(X0) :- ";
  for (int i = 0; i < rows; ++i) {
    rule << (i > 0 ? ", " : "") << "e(X" << i << ",X" << i + 1 << ")";
  }
  for (int i = 0; i < rows; ++i) {
    rule << ", X" << i << " < X" << i + 1;
  }
  const ConjunctiveQuery q1 = Parser::MustParseRule(rule.str());
  const ConjunctiveQuery q2 =
      Parser::MustParseRule("q(A) :- e(A,B), e(B,C), e(C,D)");

  CanonicalFreezer freezer(q1);
  const PreparedQuery prepared(q2);
  PreparedQuery::Scratch scratch;
  CodedEvaluator coded(&prepared.plan());
  freezer.PrimeDictionary(q1.Constants(), q1.AllVariables().size());
  coded.BindTo(&freezer);

  bool frozen = false;
  cqac::ForEachSatisfyingOrderPruned(
      q1.AllVariables(), q1.Constants(), q1.comparisons(), OrderSymmetry{},
      [&](const TotalOrder& order, int64_t) {
        freezer.Freeze(order);
        frozen = true;
        return false;  // The chain admits exactly one order.
      });
  if (!frozen) {
    state.SkipWithError("no satisfying order");
    return;
  }

  bool matched = false;
  // Warm-up for the arena, then the timed evaluations.
  matched = row_engine
                ? prepared.Run(freezer.instance(), &freezer.frozen_head(),
                               nullptr, &scratch)
                : coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
  const cqac::testing::AllocCounterScope allocs;
  for (auto _ : state) {
    matched = row_engine
                  ? prepared.Run(freezer.instance(), &freezer.frozen_head(),
                                 nullptr, &scratch)
                  : coded.Run(freezer, /*match_frozen_head=*/true, nullptr);
    benchmark::DoNotOptimize(matched);
  }
  cqac_bench::RecordAllocsPerIter(state, allocs);
  state.counters["rows"] = rows;
  state.counters["matched"] = matched ? 1 : 0;
}

void BM_IndexGateCrossover_Row(benchmark::State& state) {
  RunIndexGateCrossover(state, /*row_engine=*/true);
}
BENCHMARK(BM_IndexGateCrossover_Row)->RangeMultiplier(2)->Range(4, 256);

void BM_IndexGateCrossover_Columnar(benchmark::State& state) {
  RunIndexGateCrossover(state, /*row_engine=*/false);
}
BENCHMARK(BM_IndexGateCrossover_Columnar)->RangeMultiplier(2)->Range(4, 256);

}  // namespace

CQAC_BENCH_MAIN()
