// Figure 4(c): the same variable sweep as Figure 4(b) but with larger view
// sets (10-18 views), showing that the variable/constant count still
// dominates and extra views shift the curves only mildly upward.

#include <algorithm>

#include "bench/bench_common.h"

namespace {

void BM_Fig4c_RuntimeVsVariables(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  cqac::WorkloadConfig config;
  config.num_constants = total >= 4 ? 1 : 0;
  config.num_variables = total - config.num_constants;
  // Enough subgoals for all variables to occur (the generator caps the
  // variable count at num_subgoals + 1).
  config.num_subgoals = std::max(3, config.num_variables - 1);
  config.view_subgoals = 2;
  config.num_views = static_cast<int>(state.range(1));
  for (auto _ : state) {
    cqac_bench::RunRewriterPoint(state, config);
  }
  state.counters["vars_plus_consts"] = static_cast<double>(total);
  state.counters["views"] = static_cast<double>(config.num_views);
}

BENCHMARK(BM_Fig4c_RuntimeVsVariables)
    ->ArgsProduct({{3, 4, 5, 6, 7}, {10, 14, 18}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

CQAC_BENCH_MAIN();
