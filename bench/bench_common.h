#ifndef CQAC_BENCH_BENCH_COMMON_H_
#define CQAC_BENCH_BENCH_COMMON_H_

#include <cstdint>

#include "benchmark/benchmark.h"
#include "rewriting/equiv_rewriter.h"
#include "workload/generator.h"

namespace cqac_bench {

/// Runs the paper's algorithm on `instances_per_point` deterministic
/// workload instances for this config and accumulates counters into the
/// benchmark state.  Returns the number of instances with a rewriting.
inline int RunRewriterPoint(benchmark::State& state,
                            cqac::WorkloadConfig config,
                            int instances_per_point = 3) {
  int found = 0;
  int64_t canonical = 0;
  int64_t kept = 0;
  int64_t mcds = 0;
  for (int i = 0; i < instances_per_point; ++i) {
    config.seed = 1000 + i;
    cqac::WorkloadGenerator generator(config);
    const cqac::WorkloadInstance instance = generator.Generate();
    cqac::RewriteOptions options;
    options.verify = false;
    const cqac::RewriteResult result =
        cqac::EquivalentRewriter(instance.query, instance.views, options)
            .Run();
    if (result.outcome == cqac::RewriteOutcome::kRewritingFound) ++found;
    canonical += result.stats.canonical_databases;
    kept += result.stats.kept_canonical_databases;
    mcds += result.stats.mcds_formed;
    benchmark::DoNotOptimize(result);
  }
  state.counters["canonical_dbs"] = static_cast<double>(canonical);
  state.counters["kept_dbs"] = static_cast<double>(kept);
  state.counters["mcds"] = static_cast<double>(mcds);
  state.counters["found"] = static_cast<double>(found);
  return found;
}

}  // namespace cqac_bench

#endif  // CQAC_BENCH_BENCH_COMMON_H_
