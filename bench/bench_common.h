#ifndef CQAC_BENCH_BENCH_COMMON_H_
#define CQAC_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "benchmark/benchmark.h"
#include "rewriting/equiv_rewriter.h"
#include "runtime/memo_cache.h"
#include "runtime/thread_pool.h"
#include "testing/alloc_hook.h"
#include "workload/generator.h"

namespace cqac_bench {

/// True when this translation unit was compiled without NDEBUG, i.e. with
/// assertions on.  Numbers from such a build are not comparable to the
/// checked-in results/ baselines, which are all Release.
#ifdef NDEBUG
inline constexpr bool kDebugBuild = false;
#else
inline constexpr bool kDebugBuild = true;
#endif

/// Worker threads for rewriter-driven benches, set by --jobs N.
/// 0 = hardware concurrency (the default), 1 = the serial fallback.
inline int g_jobs = 0;

/// When non-empty (--json <path>), BenchMain writes a machine-readable
/// trajectory record there after the run.
inline std::string g_json_path;

/// --memo: share one containment memo cache across every rewrite of the
/// run (the batch service's configuration).  Off by default: Google
/// Benchmark repeats each benchmark on identical generated instances, so
/// a process-wide cache would serve Phase 2 — the dominant cost —
/// entirely from memory after the first iteration, and steady-state
/// numbers would measure LRU lookups instead of the algorithm (and stop
/// being comparable to the pre-memo baselines in results/).
inline bool g_shared_memo = false;

/// The cache --memo enables; its hit/miss counters land in the --json
/// record.
inline cqac::MemoCache& SharedMemo() {
  static cqac::MemoCache memo(1 << 16);
  return memo;
}

/// Publishes heap allocations per iteration for the region `scope` has
/// been counting (typically the whole benchmark loop).  Every bench
/// binary carries the counting allocator from testing/alloc_hook.h via
/// this header; under sanitizer builds counting is unavailable and the
/// counter is omitted.  The value lands in the console table and, as
/// `allocs_per_iter`, in the --json trajectory record — the steady-state
/// claim a number like 0 makes is enforced separately by the
/// alloc_gate_test perfsmoke gate.
inline void RecordAllocsPerIter(benchmark::State& state,
                                const cqac::testing::AllocCounterScope& scope) {
  if (!cqac::testing::AllocCountingAvailable()) return;
  if (state.iterations() == 0) return;
  state.counters["allocs_per_iter"] =
      static_cast<double>(scope.delta()) /
      static_cast<double>(state.iterations());
}

/// Runs the paper's algorithm on `instances_per_point` deterministic
/// workload instances for this config and accumulates counters into the
/// benchmark state.  Returns the number of instances with a rewriting.
inline int RunRewriterPoint(benchmark::State& state,
                            cqac::WorkloadConfig config,
                            int instances_per_point = 3) {
  int found = 0;
  int64_t canonical = 0;
  int64_t kept = 0;
  int64_t mcds = 0;
  for (int i = 0; i < instances_per_point; ++i) {
    config.seed = 1000 + i;
    cqac::WorkloadGenerator generator(config);
    const cqac::WorkloadInstance instance = generator.Generate();
    cqac::RewriteOptions options;
    options.verify = false;
    options.jobs = g_jobs;
    const cqac::RewriteResult result =
        cqac::EquivalentRewriter(instance.query, instance.views, options,
                                 g_shared_memo ? &SharedMemo() : nullptr)
            .Run();
    if (result.outcome == cqac::RewriteOutcome::kRewritingFound) ++found;
    canonical += result.stats.canonical_databases;
    kept += result.stats.kept_canonical_databases;
    mcds += result.stats.mcds_formed;
    benchmark::DoNotOptimize(result);
  }
  state.counters["canonical_dbs"] = static_cast<double>(canonical);
  state.counters["kept_dbs"] = static_cast<double>(kept);
  state.counters["mcds"] = static_cast<double>(mcds);
  state.counters["found"] = static_cast<double>(found);
  return found;
}

/// Console reporter that additionally records each benchmark's mean real
/// time, for the --json trajectory record.  A manually constructed
/// ConsoleReporter defaults to forced color, which would smear ANSI
/// escapes into the results/*.txt snapshots — so only color on a tty.
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  JsonTrajectoryReporter()
      : benchmark::ConsoleReporter(isatty(fileno(stdout)) ? OO_ColorTabular
                                                          : OO_Tabular) {}

  struct Result {
    std::string name;
    double wall_ms = 0;
    bool has_allocs = false;
    double allocs_per_iter = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double seconds =
          run.iterations > 0 ? run.real_accumulated_time / run.iterations
                             : run.real_accumulated_time;
      Result r;
      r.name = run.benchmark_name();
      r.wall_ms = seconds * 1e3;
      if (const auto it = run.counters.find("allocs_per_iter");
          it != run.counters.end()) {
        r.has_allocs = true;
        r.allocs_per_iter = it->second;
      }
      results_.push_back(std::move(r));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Result>& results() const { return results_; }

 private:
  std::vector<Result> results_;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// The commit the sources at CQAC_SOURCE_DIR are checked out at, or
/// "unknown" when git or the work tree is unavailable (e.g. a tarball
/// build).  Stamped into the --json record so a results/ trajectory file
/// can always be traced back to the code that produced it.
inline std::string GitCommit() {
#ifdef CQAC_SOURCE_DIR
  FILE* pipe = popen(
      "git -C \"" CQAC_SOURCE_DIR "\" rev-parse HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {0};
    const size_t n = fread(buf, 1, sizeof(buf) - 1, pipe);
    pclose(pipe);
    std::string commit(buf, n);
    while (!commit.empty() &&
           (commit.back() == '\n' || commit.back() == '\r')) {
      commit.pop_back();
    }
    if (commit.size() == 40) return commit;
  }
#endif
  return "unknown";
}

/// The CMAKE_BUILD_TYPE the bench was compiled under, or "unknown" for
/// build systems that do not pass CQAC_BUILD_TYPE.
inline std::string BuildType() {
#ifdef CQAC_BUILD_TYPE
  return CQAC_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// Shared main of every bench_* binary: strips the repo's own flags
/// (--jobs N, --json <path>, --memo), hands the rest to Google
/// Benchmark, and writes the trajectory record when asked.  The JSON
/// schema is {name, git_commit, build_type, cpus, debug_build, wall_ms,
/// jobs, cache_hits, cache_misses, benchmarks[]} — one file per run,
/// accumulated as BENCH_*.json trajectory files under results/;
/// cache_hits/misses are zero unless --memo is given.
inline int BenchMain(int argc, char** argv) {
  if (kDebugBuild) {
    std::fprintf(
        stderr,
        "========================================================\n"
        "WARNING: this benchmark was compiled WITHOUT NDEBUG.\n"
        "Assertions are on; timings are NOT comparable to the\n"
        "checked-in results/.  Rebuild with\n"
        "  cmake -DCMAKE_BUILD_TYPE=Release\n"
        "(tools/run_benches.sh does this) before recording numbers.\n"
        "========================================================\n");
  }
  std::string name = argc > 0 ? argv[0] : "bench";
  if (const size_t slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }

  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      g_jobs = std::atoi(argv[++i]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      g_jobs = std::atoi(arg.c_str() + 7);
    } else if (arg == "--json" && i + 1 < argc) {
      g_json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      g_json_path = arg.c_str() + 7;
    } else if (arg == "--memo") {
      g_shared_memo = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }

  JsonTrajectoryReporter reporter;
  const auto started = std::chrono::steady_clock::now();
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();

  if (!g_json_path.empty()) {
    const cqac::MemoCacheStats cache = SharedMemo().Stats();
    std::ofstream json(g_json_path);
    json << "{\n"
         << "  \"name\": \"" << JsonEscape(name) << "\",\n"
         << "  \"git_commit\": \"" << JsonEscape(GitCommit()) << "\",\n"
         << "  \"build_type\": \"" << JsonEscape(BuildType()) << "\",\n"
         << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
         << "  \"debug_build\": " << (kDebugBuild ? "true" : "false") << ",\n"
         << "  \"wall_ms\": " << wall_ms << ",\n"
         << "  \"jobs\": " << cqac::ThreadPool::ResolveJobs(g_jobs) << ",\n"
         << "  \"cache_hits\": " << cache.hits << ",\n"
         << "  \"cache_misses\": " << cache.misses << ",\n"
         << "  \"benchmarks\": [";
    const auto& results = reporter.results();
    for (size_t i = 0; i < results.size(); ++i) {
      json << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
           << JsonEscape(results[i].name) << "\", \"wall_ms\": "
           << results[i].wall_ms;
      if (results[i].has_allocs) {
        json << ", \"allocs_per_iter\": " << results[i].allocs_per_iter;
      }
      json << "}";
    }
    json << "\n  ]\n}\n";
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace cqac_bench

/// Drop-in replacement for BENCHMARK_MAIN() adding --jobs / --json.
#define CQAC_BENCH_MAIN()                                     \
  int main(int argc, char** argv) {                           \
    return cqac_bench::BenchMain(argc, argv);                 \
  }

#endif  // CQAC_BENCH_BENCH_COMMON_H_
