// Figure 4(a): runtime of the equivalent-rewriting algorithm as a function
// of the NUMBER OF VIEWS, with the number of distinct variables and
// constants held at 6 (4 variables + 2 constants), as in the paper.
//
// Expected shape (paper): runtime depends only weakly on the number of
// views — the curve is nearly flat compared to the variable sweep of
// Figures 4(b,c), because the canonical-database enumeration (ordered-Bell
// in the variables) dominates and views only multiply per-database work.

#include "bench/bench_common.h"

namespace {

void BM_Fig4a_RuntimeVsViews(benchmark::State& state) {
  cqac::WorkloadConfig config;
  config.num_variables = 4;
  config.num_constants = 2;  // 4 + 2 = 6 distinct variables and constants.
  config.num_subgoals = 3;
  config.view_subgoals = 2;
  config.num_views = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cqac_bench::RunRewriterPoint(state, config);
  }
  state.counters["views"] = static_cast<double>(config.num_views);
}

BENCHMARK(BM_Fig4a_RuntimeVsViews)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CQAC_BENCH_MAIN();
