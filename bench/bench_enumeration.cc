// Section 4's claim: "a completely naive full-enumeration algorithm would
// not have a chance because it would have to enumerate thousands of
// combinations of view tuples for a typical query ... the curves would go
// nearly vertically."
//
// This bench runs the paper's algorithm and the bounded full-enumeration
// baseline on the same workload points and prints both series; the
// baseline's time (and candidate counters) explode as the instance grows
// while the paper's algorithm stays flat.

#include "bench/bench_common.h"
#include "rewriting/enumeration.h"

namespace {

cqac::WorkloadInstance InstanceFor(int num_variables, int num_views) {
  cqac::WorkloadConfig config;
  config.num_variables = num_variables;
  config.num_constants = 1;
  config.num_subgoals = 2;
  config.view_subgoals = 2;
  config.num_views = num_views;
  config.distractor_fraction = 0.0;
  config.seed = 7;
  cqac::WorkloadGenerator generator(config);
  return generator.Generate();
}

void BM_PaperAlgorithm(benchmark::State& state) {
  const cqac::WorkloadInstance instance =
      InstanceFor(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)));
  int64_t found = 0;
  cqac::RewriteOptions options;
  options.jobs = cqac_bench::g_jobs;
  for (auto _ : state) {
    const cqac::RewriteResult result =
        cqac::EquivalentRewriter(
            instance.query, instance.views, options,
            cqac_bench::g_shared_memo ? &cqac_bench::SharedMemo() : nullptr)
            .Run();
    found = result.outcome == cqac::RewriteOutcome::kRewritingFound;
    benchmark::DoNotOptimize(result);
  }
  state.counters["found"] = static_cast<double>(found);
}

void BM_NaiveEnumeration(benchmark::State& state) {
  const cqac::WorkloadInstance instance =
      InstanceFor(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)));
  cqac::EnumerationOptions options;
  options.max_subgoals = 2;
  options.max_fresh_variables = 1;
  // Budget keeps the worst points from running for hours; the counter
  // records whether it was hit (the "nearly vertical" regime).
  options.max_candidates = 20000;
  int64_t found = 0;
  int64_t exhausted = 0;
  int64_t candidates = 0;
  for (auto _ : state) {
    const cqac::EnumerationResult result =
        EnumerateEquivalentRewriting(instance.query, instance.views, options);
    found = result.found;
    exhausted = result.budget_exhausted;
    candidates = result.candidate_bodies;
    benchmark::DoNotOptimize(result);
  }
  state.counters["found"] = static_cast<double>(found);
  state.counters["budget_exhausted"] = static_cast<double>(exhausted);
  state.counters["candidate_bodies"] = static_cast<double>(candidates);
}

BENCHMARK(BM_PaperAlgorithm)
    ->ArgsProduct({{2, 3, 4}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NaiveEnumeration)
    ->ArgsProduct({{2, 3, 4}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

CQAC_BENCH_MAIN();
