// Ablation C: the expansion-minimization layer (SimplifyQuery /
// FoldExistentialVariables).  Phase 2 checks containment of each
// Pre-Rewriting's expansion, whose variable count — and hence the
// ordered-Bell exponent of the canonical enumeration — balloons with
// every redundant view-body copy.  Folding collapses those copies
// exactly; this bench measures the cost of turning it off on an
// Example-4-shaped instance (two overlapping views, each carrying one of
// the query's two comparisons).

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"

namespace {

cqac::ConjunctiveQuery Query() {
  return cqac::Parser::MustParseRule(
      "q(X,Y) :- a(X,Z1), b(Z1,Y), Z1 < 5, X > 2");
}

cqac::ViewSet Views() {
  return cqac::ViewSet(cqac::Parser::MustParseProgram(
      "v1(X,Y) :- a(X,Z1), b(Z1,Y), Z1 < 5.\n"
      "v2(X,Y) :- a(X,Z1), b(Z1,Y), X > 2."));
}

void RunWithSimplify(benchmark::State& state, bool simplify) {
  const cqac::ConjunctiveQuery query = Query();
  const cqac::ViewSet views = Views();
  int64_t phase2_orders = 0;
  int64_t found = 0;
  for (auto _ : state) {
    cqac::RewriteOptions options;
    options.simplify_expansions = simplify;
    const cqac::RewriteResult result =
        cqac::EquivalentRewriter(query, views, options).Run();
    phase2_orders = result.stats.phase2_orders;
    found = result.outcome == cqac::RewriteOutcome::kRewritingFound;
    benchmark::DoNotOptimize(result);
  }
  state.counters["phase2_orders"] = static_cast<double>(phase2_orders);
  state.counters["found"] = static_cast<double>(found);
}

void BM_Folding_On(benchmark::State& state) {
  RunWithSimplify(state, true);
}

void BM_Folding_Off(benchmark::State& state) {
  RunWithSimplify(state, false);
}

BENCHMARK(BM_Folding_On)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Folding_Off)->Unit(benchmark::kMillisecond);

}  // namespace

CQAC_BENCH_MAIN();
