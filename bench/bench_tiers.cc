// Microbenchmark: structure-aware tiered execution (rewriting/structure.h).
//
// Two layers per fast tier, each pitted against the forced-general path
// on the identical input:
//
//  * Phase-1 keep-test sweep — every canonical database of a hand-built
//    semi-interval workload processed with the tier forced to 0 vs 1, so
//    the grid verdict cache's skip rate is visible in isolation (no
//    Phase 2, no memo);
//  * end-to-end rewrite — the full pipeline under forced tier 0 vs the
//    auto-routed tier, with the rewriting output compared before timing
//    starts: a tier that changed the answer aborts the row.
//
// The tier1-vs-tier0 ratio of the SemiInterval rows is the acceptance
// number recorded in results/BENCH_tiered_execution.json.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/request_context.h"
#include "benchmark/benchmark.h"
#include "constraints/orders.h"
#include "engine/canonical.h"
#include "engine/evaluate.h"
#include "parser/parser.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/structure.h"
#include "rewriting/view_set.h"

namespace {

// Dense semi-interval workload: 5 variables + 1 grid constant = 4683
// total orders, but only ~1.2k grid classes.  Every atom uses the one
// predicate r, so the keep test joins 10 atoms against a 10-row
// self-join — expensive to refute — and that refutation is exactly what
// the grid cache amortizes across a class.
const char* const kSemiIntervalQuery =
    "q(X0) :- r(X0,X1), r(X1,X2), r(X2,X3), r(X3,X4), r(X0,X2), r(X1,X3), "
    "r(X2,X4), r(X0,X3), r(X1,X4), r(X0,X4), X0 < 10, X1 < 10, X2 >= 10, "
    "X3 >= 10, X4 >= 10";

cqac::ViewSet SemiIntervalViews() {
  cqac::ViewSet views;
  views.Add(cqac::Parser::MustParseRule(
      "v0(A,B,C) :- r(A,B), r(B,C), A < 10"));
  views.Add(cqac::Parser::MustParseRule("v1(A,B) :- r(A,B)"));
  return views;
}

// Comparison-free acyclic chain: 6 variables, 4683 orders, covered end to
// end by the three fragment views, so a rewriting exists and Phase 2 runs
// the join-tree engine under tier 2.
const char* const kAcyclicQuery =
    "q(X0,X5) :- e0(X0,X1), e1(X1,X2), e2(X2,X3), e3(X3,X4), e4(X4,X5)";

cqac::ViewSet AcyclicViews() {
  cqac::ViewSet views;
  views.Add(cqac::Parser::MustParseRule("w0(A,B,C) :- e0(A,B), e1(B,C)"));
  views.Add(cqac::Parser::MustParseRule("w1(C,D,E) :- e2(C,D), e3(D,E)"));
  views.Add(cqac::Parser::MustParseRule("w2(E,F) :- e4(E,F)"));
  return views;
}

// The keep-test layer in isolation: per canonical database, decide
// whether the query computes its frozen head.  Orders are materialized up
// front so both rows measure verdict computation, not enumeration.  The
// tier0 row freezes and evaluates every order; the tier1 row builds the
// grid key first and only freezes/evaluates one representative per grid
// class — the acceptance ratio for the semi-interval tier.  Seven
// variables against a single grid constant give 545835 orders but only
// ~45k grid classes (92% hit rate), and the 60 distinct-predicate atoms
// make freezing the canonical database the dominant, uniform per-order
// cost — exactly the work a grid hit skips (a single-relation self-join
// body instead concentrates its cost in rare classes, which caps the
// amortization; its exponential tail is what tier 1 cannot fix).
const char* const kKeepTestQuery =
    "q(X0) :- c0(X0,X1), c1(X1,X2), c2(X2,X3), c3(X3,X4), c4(X4,X5), "
    "c5(X5,X6), d0(X0,X2), d1(X1,X3), d2(X2,X4), d3(X3,X5), d4(X4,X6), "
    "e0(X0,X1), e1(X1,X2), e2(X2,X3), e3(X3,X4), e4(X4,X5), e5(X5,X6), "
    "f0(X0,X3), f1(X1,X4), f2(X2,X5), f3(X3,X6), g0(X0,X4), g1(X1,X5), "
    "g2(X2,X6), h0(X0,X1), h1(X1,X2), h2(X2,X3), h3(X3,X4), h4(X4,X5), "
    "h5(X5,X6), i0(X0,X2), i1(X1,X3), i2(X2,X4), i3(X3,X5), i4(X4,X6), "
    "j0(X0,X3), j1(X1,X4), j2(X2,X5), j3(X3,X6), k0(X0,X5), k1(X1,X6), "
    "k2(X0,X6), m0(X2,X0), m1(X4,X2), m2(X6,X4), n0(X1,X0), n1(X2,X1), "
    "n2(X3,X2), n3(X4,X3), n4(X5,X4), n5(X6,X5), p0(X3,X0), p1(X4,X1), "
    "p2(X5,X2), p3(X6,X3), "
    "X0 < 10, X2 < 10, X4 >= 10, X6 >= 10";

int64_t KeptUnderKeepTest(const std::vector<cqac::TotalOrder>& orders,
                          cqac::CanonicalFreezer& freezer,
                          const cqac::PreparedQuery& prepared,
                          cqac::PreparedQuery::Scratch& scratch,
                          cqac::GridVerdictCache* cache, std::string& key) {
  int64_t kept = 0;
  for (const cqac::TotalOrder& order : orders) {
    if (cache != nullptr) {
      cache->BuildKey(order, &key);
      if (const std::optional<bool> verdict = cache->Get(key)) {
        kept += *verdict;
        continue;
      }
    }
    const cqac::FlatInstance& inst = freezer.Freeze(order);
    const bool computes =
        prepared.Run(inst, &freezer.frozen_head(), nullptr, &scratch);
    if (cache != nullptr) cache->Put(key, computes);
    kept += computes;
  }
  return kept;
}

void BM_SemiIntervalKeepTest(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));  // 0 off, 1 cold, 2 warm
  const cqac::ConjunctiveQuery query =
      cqac::Parser::MustParseRule(kKeepTestQuery);
  const std::vector<cqac::Rational> constants = query.Constants();
  const std::vector<cqac::TotalOrder> orders =
      cqac::EnumerateTotalOrders(query.AllVariables(), constants);
  cqac::CanonicalFreezer freezer(query);
  freezer.PrimeDictionary(constants, query.AllVariables().size());
  const cqac::PreparedQuery prepared(query);
  cqac::PreparedQuery::Scratch scratch;
  std::string key;
  const int64_t reference = KeptUnderKeepTest(orders, freezer, prepared,
                                              scratch, nullptr, key);
  // Warm mode measures a pre-populated cache — the cross-request
  // steady state the catalog's cached plan produces — so every probe hits.
  cqac::GridVerdictCache warm(query.AllVariables());
  if (mode == 2) {
    KeptUnderKeepTest(orders, freezer, prepared, scratch, &warm, key);
  }
  int64_t kept = 0;
  size_t classes = 0;
  for (auto _ : state) {
    // A cold cache per iteration is the honest single-request cost.
    cqac::GridVerdictCache cold(query.AllVariables());
    cqac::GridVerdictCache* cache =
        mode == 0 ? nullptr : (mode == 1 ? &cold : &warm);
    kept = KeptUnderKeepTest(orders, freezer, prepared, scratch, cache, key);
    classes = cache != nullptr ? cache->size() : 0;
    benchmark::DoNotOptimize(kept);
  }
  if (kept != reference) {
    state.SkipWithError("grid-cached keep verdicts diverge from tier0");
    return;
  }
  state.counters["orders"] = static_cast<double>(orders.size());
  state.counters["kept"] = static_cast<double>(kept);
  state.counters["grid_classes"] = static_cast<double>(classes);
}

// Phase-1 keep-test sweep under a forced tier.  The RewriteWork is
// rebuilt per iteration so every measured sweep starts from a cold grid
// cache — the honest single-request cost; cross-request warmth belongs to
// the catalog benches.
void BM_SemiIntervalPhase1(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const cqac::ConjunctiveQuery query =
      cqac::Parser::MustParseRule(kSemiIntervalQuery);
  const cqac::ViewSet views = SemiIntervalViews();
  cqac::RewriteOptions options;
  options.force_tier = tier;
  int64_t dbs = 0, kept = 0, hits = 0, misses = 0;
  for (auto _ : state) {
    dbs = kept = hits = misses = 0;
    const cqac::RewriteWork work =
        cqac::PrepareRewriteWork(query, views, options);
    cqac::ForEachTotalOrder(
        query.AllVariables(), work.constants,
        [&](const cqac::TotalOrder& order) {
          ++dbs;
          const cqac::DatabaseOutcome out =
              cqac::ProcessCanonicalDatabase(work, order, nullptr);
          kept += out.stats.kept_canonical_databases;
          hits += out.stats.tier1_grid_hits;
          misses += out.stats.tier1_grid_misses;
          benchmark::DoNotOptimize(out);
          return true;
        });
  }
  state.counters["canonical_dbs"] = static_cast<double>(dbs);
  state.counters["kept_dbs"] = static_cast<double>(kept);
  state.counters["grid_hits"] = static_cast<double>(hits);
  state.counters["grid_misses"] = static_cast<double>(misses);
}

// Runs the full rewriter once under `tier` and returns the result.
cqac::RewriteResult RewriteUnderTier(const cqac::ConjunctiveQuery& query,
                                     const cqac::ViewSet& views, int tier) {
  cqac::RewriteOptions options;
  options.force_tier = tier;
  options.jobs = 1;  // serial: the tier, not the scheduler, is on trial
  return cqac::EquivalentRewriter(query, views, options).Run();
}

// End-to-end rewrite under a forced tier, with the output-equality check
// the acceptance criteria require: before timing, the row's tier is
// diffed against forced tier 0 and any divergence aborts the benchmark.
void RewriteTierRow(benchmark::State& state, const cqac::ConjunctiveQuery& query,
                    const cqac::ViewSet& views) {
  const int tier = static_cast<int>(state.range(0));
  const cqac::RewriteResult general = RewriteUnderTier(query, views, 0);
  const cqac::RewriteResult tiered = RewriteUnderTier(query, views, tier);
  if (tiered.outcome != general.outcome ||
      tiered.rewriting.ToString() != general.rewriting.ToString()) {
    state.SkipWithError("tiered rewriting diverges from the general path");
    return;
  }
  for (auto _ : state) {
    const cqac::RewriteResult result = RewriteUnderTier(query, views, tier);
    benchmark::DoNotOptimize(result);
  }
  state.counters["found"] = static_cast<double>(
      general.outcome == cqac::RewriteOutcome::kRewritingFound);
  state.counters["kept_dbs"] =
      static_cast<double>(tiered.stats.kept_canonical_databases);
}

void BM_SemiIntervalRewrite(benchmark::State& state) {
  const cqac::ConjunctiveQuery query =
      cqac::Parser::MustParseRule(kSemiIntervalQuery);
  RewriteTierRow(state, query, SemiIntervalViews());
}

void BM_AcyclicRewrite(benchmark::State& state) {
  const cqac::ConjunctiveQuery query =
      cqac::Parser::MustParseRule(kAcyclicQuery);
  RewriteTierRow(state, query, AcyclicViews());
}

BENCHMARK(BM_SemiIntervalKeepTest)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SemiIntervalPhase1)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SemiIntervalRewrite)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AcyclicRewrite)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // CQAC_TELEMETRY=1: bind a request scope for the whole run so every
  // span site records into the flight recorder, exactly as it would
  // inside a served request.  This is the telemetry-on side of the
  // overhead gate in tools/run_benches.sh (`telemetry_overhead`), whose
  // baseline is a separate -DCQAC_TRACING=OFF build of this binary.
  const char* telemetry = std::getenv("CQAC_TELEMETRY");
  if (telemetry != nullptr && telemetry[0] == '1') {
    static const cqac::obs::RequestScope scope(cqac::obs::GenerateTraceId());
  }
  return cqac_bench::BenchMain(argc, argv);
}
