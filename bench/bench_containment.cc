// Ablation B: cost of the two CQAC containment substrates (Section 2.3) —
// the canonical-database test versus the order-refinement implication
// test — on query pairs of growing variable count.  Both are exponential
// in the variables; the implication test trades database evaluation for
// containment-mapping search.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "containment/cqac_containment.h"
#include "parser/parser.h"

namespace {

/// A chain query q() :- p(X0,X1), ..., p(Xn-1,Xn), X0 < c with n subgoals.
cqac::ConjunctiveQuery Chain(int subgoals, const char* comparison) {
  std::string body;
  for (int i = 0; i < subgoals; ++i) {
    if (i > 0) body += ", ";
    body += "p(X" + std::to_string(i) + ",X" + std::to_string(i + 1) + ")";
  }
  return cqac::Parser::MustParseRule("q(X0) :- " + body + ", " + comparison);
}

void BM_Containment_Canonical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const cqac::ConjunctiveQuery q1 = Chain(n, "X0 < 5");
  const cqac::ConjunctiveQuery q2 = Chain(n, "X0 < 7");
  int64_t orders = 0;
  for (auto _ : state) {
    cqac::ContainmentStats stats;
    const bool contained = CqacContainedCanonical(q1, q2, &stats);
    orders = stats.orders_satisfying;
    benchmark::DoNotOptimize(contained);
  }
  state.counters["satisfying_orders"] = static_cast<double>(orders);
}

void BM_Containment_Implication(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const cqac::ConjunctiveQuery q1 = Chain(n, "X0 < 5");
  const cqac::ConjunctiveQuery q2 = Chain(n, "X0 < 7");
  for (auto _ : state) {
    const bool contained = CqacContainedImplication(q1, q2);
    benchmark::DoNotOptimize(contained);
  }
}

// The multi-mapping case (Klug): q1's symmetric body needs a case split
// per order; stresses the disjunction handling of both tests.
void BM_Containment_CaseSplit_Canonical(benchmark::State& state) {
  const cqac::ConjunctiveQuery q1 =
      cqac::Parser::MustParseRule("q() :- p(X,Y), p(Y,X), p(X,Z), p(Z,X)");
  const cqac::ConjunctiveQuery q2 =
      cqac::Parser::MustParseRule("q() :- p(U,V), U <= V");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqacContainedCanonical(q1, q2));
  }
}

void BM_Containment_CaseSplit_Implication(benchmark::State& state) {
  const cqac::ConjunctiveQuery q1 =
      cqac::Parser::MustParseRule("q() :- p(X,Y), p(Y,X), p(X,Z), p(Z,X)");
  const cqac::ConjunctiveQuery q2 =
      cqac::Parser::MustParseRule("q() :- p(U,V), U <= V");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqacContainedImplication(q1, q2));
  }
}

BENCHMARK(BM_Containment_Canonical)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Containment_Implication)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Containment_CaseSplit_Canonical)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Containment_CaseSplit_Implication)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

CQAC_BENCH_MAIN();
