// Microbench for the containment-mapping search itself: the compiled
// engine (interned symbols, trail-based bindings, most-constrained-first
// subgoal order) against the legacy string-substitution backtracker, on
// chain queries mapped into high-fanout targets.  This binary doubles as
// the `perfsmoke` ctest guard: a sub-second run proves both engines still
// compile, link, and terminate on the workloads below.

#include <string>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "containment/homomorphism.h"
#include "parser/parser.h"

namespace {

/// q(X0) :- p(X0,X1), ..., p(Xn-1,Xn): a length-n chain.
cqac::ConjunctiveQuery Chain(int subgoals) {
  std::string body;
  for (int i = 0; i < subgoals; ++i) {
    if (i > 0) body += ", ";
    body += "p(X" + std::to_string(i) + ",X" + std::to_string(i + 1) + ")";
  }
  return cqac::Parser::MustParseRule("q(X0) :- " + body);
}

/// q(Y0) :- p(Y0,Y1), ..., plus a self-loop p(Y0,Y0): every chain maps
/// here many ways, so enumeration has real fanout to chew through.
cqac::ConjunctiveQuery Target(int subgoals) {
  std::string body = "p(Y0,Y0)";
  for (int i = 0; i < subgoals; ++i) {
    body += ", p(Y" + std::to_string(i) + ",Y" + std::to_string(i + 1) + ")";
  }
  return cqac::Parser::MustParseRule("q(Y0) :- " + body);
}

int64_t CountMappings(
    const cqac::ConjunctiveQuery& from, const cqac::ConjunctiveQuery& to,
    void (*for_each)(const cqac::ConjunctiveQuery&,
                     const cqac::ConjunctiveQuery&,
                     const std::function<bool(const cqac::Substitution&)>&)) {
  int64_t count = 0;
  for_each(from, to, [&count](const cqac::Substitution&) {
    ++count;
    return true;
  });
  return count;
}

void BM_Homomorphism_Compiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const cqac::ConjunctiveQuery from = Chain(n);
  const cqac::ConjunctiveQuery to = Target(n);
  int64_t mappings = 0;
  for (auto _ : state) {
    mappings = CountMappings(from, to, &cqac::ForEachContainmentMapping);
    benchmark::DoNotOptimize(mappings);
  }
  state.counters["mappings"] = static_cast<double>(mappings);
}

void BM_Homomorphism_Legacy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const cqac::ConjunctiveQuery from = Chain(n);
  const cqac::ConjunctiveQuery to = Target(n);
  int64_t mappings = 0;
  for (auto _ : state) {
    mappings = CountMappings(
        from, to, &cqac::internal::ForEachContainmentMappingLegacy);
    benchmark::DoNotOptimize(mappings);
  }
  state.counters["mappings"] = static_cast<double>(mappings);
}

// First-mapping-only: the decision variant MiniCon and the bucket
// algorithm actually call; dominated by compile + first dive, not
// enumeration.
void BM_Homomorphism_Find_Compiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const cqac::ConjunctiveQuery from = Chain(n);
  const cqac::ConjunctiveQuery to = Target(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqac::FindContainmentMapping(from, to));
  }
}

BENCHMARK(BM_Homomorphism_Compiled)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Homomorphism_Legacy)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Homomorphism_Find_Compiled)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

CQAC_BENCH_MAIN();
