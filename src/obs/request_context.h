#ifndef CQAC_OBS_REQUEST_CONTEXT_H_
#define CQAC_OBS_REQUEST_CONTEXT_H_

// Request-scoped trace context.
//
// A TraceId is a 128-bit identifier stamped on a request by whichever
// driver admits it (cqacc, the batch driver, the shell) and carried
// end-to-end: through the wire protocol as a 32-hex-char string, bound to
// the serving thread while the request executes, and attached to every
// flight-recorder span and slow-request log line emitted on its behalf.
//
// Binding is per-thread and RAII-scoped (RequestScope): the rewriting
// engines run a request on one thread (the server and batch driver force
// per-request jobs=1), so a single scope covers all spans of the request.
// Threads with no bound context record nothing into the flight recorder —
// that keeps one-shot CLI runs and microbenches at zero added cost.
//
// Generation never consults the wall clock or a global RNG: each thread
// seeds a splitmix64 stream from std::random_device once and walks it, so
// ids are unique across threads and processes with no coordination.

#include <cstdint>
#include <string>
#include <string_view>

namespace cqac {
namespace obs {

/// A 128-bit request identifier; zero means "absent / not a request".
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool IsZero() const { return hi == 0 && lo == 0; }
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const TraceId& a, const TraceId& b) {
    return !(a == b);
  }
};

/// A fresh, never-zero id from the calling thread's private stream.
TraceId GenerateTraceId();

/// Wire form: exactly 32 lower-case hex characters, hi then lo.
std::string TraceIdHex(const TraceId& id);

/// Parses the wire form; accepts upper- or lower-case hex but requires
/// exactly 32 characters.  Returns false (leaving *out untouched) on
/// malformed input.
bool ParseTraceIdHex(std::string_view hex, TraceId* out);

namespace internal {
// The calling thread's bound context; read on every span site, so it lives
// in the header as a plain thread_local (one relaxed-speed TLS load).
inline thread_local TraceId tls_trace_id{};
}  // namespace internal

/// The trace id bound to the calling thread; zero when none is bound.
inline const TraceId& CurrentTraceId() { return internal::tls_trace_id; }

/// Binds `id` to the calling thread for the scope's lifetime, restoring
/// the previous binding (usually zero) on destruction.  Scopes nest.
class RequestScope {
 public:
  explicit RequestScope(const TraceId& id) : prev_(internal::tls_trace_id) {
    internal::tls_trace_id = id;
  }
  ~RequestScope() { internal::tls_trace_id = prev_; }

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  TraceId prev_;
};

}  // namespace obs
}  // namespace cqac

#endif  // CQAC_OBS_REQUEST_CONTEXT_H_
