#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <ostream>

namespace cqac {
namespace obs {

namespace {

std::atomic<bool> g_metrics_active{false};

/// Bucket index of `value`: its bit width, so bucket 0 is exactly 0 and
/// bucket b covers [2^(b-1), 2^b).
int BucketOf(int64_t value) {
  return std::bit_width(static_cast<uint64_t>(value));
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace internal {

int64_t BucketUpperBound(int b) {
  if (b == 0) return 0;
  if (b >= 63) return INT64_MAX;
  return (int64_t{1} << b) - 1;
}

int64_t QuantileFromBuckets(const int64_t buckets[Histogram::kBuckets],
                            int64_t total, int64_t min_value,
                            int64_t max_value, double quantile) {
  if (total <= 0) return 0;
  quantile = std::clamp(quantile, 0.0, 1.0);
  // 1-based rank of the order statistic the quantile names.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(quantile * static_cast<double>(total))));
  int64_t cumulative = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const int64_t in_bucket = buckets[b];
    if (in_bucket <= 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The rank lands in bucket b.  Midpoint-interpolate: treat the
    // bucket's values as uniform over its range, putting the k-th of n at
    // (k - 0.5) / n of the way across, then clamp the range to the
    // observed extremes so degenerate distributions (all values equal)
    // come out exact instead of at a bucket boundary.
    int64_t lo = b == 0 ? 0 : BucketUpperBound(b - 1) + 1;
    int64_t hi = BucketUpperBound(b);
    lo = std::max(lo, min_value);
    hi = std::min(hi, max_value);
    if (hi <= lo) return lo;
    const double position = std::clamp(
        (static_cast<double>(rank - cumulative) - 0.5) /
            static_cast<double>(in_bucket),
        0.0, 1.0);
    return lo + static_cast<int64_t>(std::llround(
                    position * static_cast<double>(hi - lo)));
  }
  return max_value;
}

}  // namespace internal

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t current = min_.load(std::memory_order_relaxed);
  while (value < current &&
         !min_.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
  current = max_.load(std::memory_order_relaxed);
  while (value > current &&
         !max_.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  const int64_t m = min_.load(std::memory_order_relaxed);
  return m == INT64_MAX ? 0 : m;
}

int64_t Histogram::ApproxQuantile(double quantile) const {
  int64_t snapshot[kBuckets];
  for (int b = 0; b < kBuckets; ++b) snapshot[b] = bucket(b);
  return internal::QuantileFromBuckets(snapshot, count(), min(), max(),
                                       quantile);
}

WindowedHistogram::WindowedHistogram(int64_t window_ns)
    : slot_ns_(std::max<int64_t>(1, window_ns / kSlots)),
      window_ns_(window_ns) {
  for (std::atomic<int64_t>& epoch : slot_epoch_) {
    epoch.store(-1, std::memory_order_relaxed);
  }
}

void WindowedHistogram::Observe(int64_t value) { ObserveAt(NowNs(), value); }

void WindowedHistogram::ObserveAt(int64_t now_ns, int64_t value) {
  const int64_t epoch = now_ns / slot_ns_;
  const int idx = static_cast<int>(epoch % kSlots);
  int64_t held = slot_epoch_[idx].load(std::memory_order_acquire);
  if (held != epoch) {
    // First observer of a new slot period recycles the oldest slot; the
    // CAS elects exactly one resetter per rotation.
    if (slot_epoch_[idx].compare_exchange_strong(
            held, epoch, std::memory_order_acq_rel)) {
      slots_[idx].Reset();
    }
  }
  slots_[idx].Observe(value);
}

WindowedHistogram::Snapshot WindowedHistogram::Snap() const {
  return SnapAt(NowNs());
}

WindowedHistogram::Snapshot WindowedHistogram::SnapAt(int64_t now_ns) const {
  Snapshot snap;
  const int64_t epoch = now_ns / slot_ns_;
  int64_t min_value = INT64_MAX;
  for (int i = 0; i < kSlots; ++i) {
    const int64_t held = slot_epoch_[i].load(std::memory_order_acquire);
    if (held < 0 || held > epoch || held <= epoch - kSlots) continue;
    const Histogram& slot = slots_[i];
    const int64_t slot_count = slot.count();
    if (slot_count == 0) continue;
    snap.count += slot_count;
    snap.sum += slot.sum();
    min_value = std::min(min_value, slot.min());
    snap.max = std::max(snap.max, slot.max());
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      snap.buckets[b] += slot.bucket(b);
    }
  }
  snap.min = min_value == INT64_MAX ? 0 : min_value;
  snap.p50 = internal::QuantileFromBuckets(snap.buckets, snap.count,
                                           snap.min, snap.max, 0.5);
  snap.p95 = internal::QuantileFromBuckets(snap.buckets, snap.count,
                                           snap.min, snap.max, 0.95);
  snap.p99 = internal::QuantileFromBuckets(snap.buckets, snap.count,
                                           snap.min, snap.max, 0.99);
  return snap;
}

void WindowedHistogram::Reset() {
  for (int i = 0; i < kSlots; ++i) {
    slots_[i].Reset();
    slot_epoch_[i].store(-1, std::memory_order_relaxed);
  }
}

void Histogram::Reset() {
  for (std::atomic<int64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

WindowedHistogram& MetricsRegistry::windowed(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<WindowedHistogram>& slot = windowed_[name];
  if (slot == nullptr) slot = std::make_unique<WindowedHistogram>();
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
  for (const auto& [name, w] : windowed_) w->Reset();
}

void MetricsRegistry::DumpText(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    out << "counter " << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge " << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram " << name << " count=" << h->count()
        << " sum=" << h->sum() << " min=" << h->min() << " max=" << h->max()
        << " p50<=" << h->ApproxQuantile(0.5)
        << " p90<=" << h->ApproxQuantile(0.9)
        << " p99<=" << h->ApproxQuantile(0.99) << "\n";
  }
  for (const auto& [name, w] : windowed_) {
    const WindowedHistogram::Snapshot snap = w->Snap();
    out << "windowed " << name << " window_ns=" << w->window_ns()
        << " count=" << snap.count << " sum=" << snap.sum
        << " min=" << snap.min << " max=" << snap.max
        << " p50<=" << snap.p50 << " p95<=" << snap.p95
        << " p99<=" << snap.p99 << "\n";
  }
}

void MetricsRegistry::DumpJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << c->value();
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << g->value();
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ", ") << "\"" << name << "\": {\"count\": "
        << h->count() << ", \"sum\": " << h->sum() << ", \"min\": "
        << h->min() << ", \"max\": " << h->max() << ", \"p50\": "
        << h->ApproxQuantile(0.5) << ", \"p90\": " << h->ApproxQuantile(0.9)
        << ", \"p99\": " << h->ApproxQuantile(0.99) << "}";
    first = false;
  }
  out << "}, \"windowed\": {";
  first = true;
  for (const auto& [name, w] : windowed_) {
    const WindowedHistogram::Snapshot snap = w->Snap();
    out << (first ? "" : ", ") << "\"" << name << "\": {\"window_ns\": "
        << w->window_ns() << ", \"count\": " << snap.count << ", \"sum\": "
        << snap.sum << ", \"min\": " << snap.min << ", \"max\": "
        << snap.max << ", \"p50\": " << snap.p50 << ", \"p95\": "
        << snap.p95 << ", \"p99\": " << snap.p99 << "}";
    first = false;
  }
  out << "}}\n";
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterEntries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> entries;
  entries.reserve(counters_.size());
  for (const auto& [name, c] : counters_) entries.emplace_back(name, c->value());
  return entries;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeEntries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> entries;
  entries.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) entries.emplace_back(name, g->value());
  return entries;
}

std::vector<MetricsRegistry::HistogramEntry>
MetricsRegistry::HistogramEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramEntry> entries;
  entries.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramEntry entry;
    entry.name = name;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      entry.buckets[b] = h->bucket(b);
    }
    entry.count = h->count();
    entry.sum = h->sum();
    entry.min = h->min();
    entry.max = h->max();
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<MetricsRegistry::WindowedEntry> MetricsRegistry::WindowedEntries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WindowedEntry> entries;
  entries.reserve(windowed_.size());
  for (const auto& [name, w] : windowed_) {
    WindowedEntry entry;
    entry.name = name;
    entry.window_ns = w->window_ns();
    entry.snap = w->Snap();
    entries.push_back(std::move(entry));
  }
  return entries;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void EnableMetrics(bool enabled) {
  g_metrics_active.store(enabled, std::memory_order_relaxed);
}

bool MetricsActive() {
  return g_metrics_active.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace cqac
