#include "obs/metrics.h"

#include <bit>
#include <ostream>

namespace cqac {
namespace obs {

namespace {

std::atomic<bool> g_metrics_active{false};

/// Bucket index of `value`: its bit width, so bucket 0 is exactly 0 and
/// bucket b covers [2^(b-1), 2^b).
int BucketOf(int64_t value) {
  return std::bit_width(static_cast<uint64_t>(value));
}

/// Inclusive upper bound of bucket `b`.
int64_t BucketUpper(int b) {
  if (b == 0) return 0;
  if (b >= 63) return INT64_MAX;
  return (int64_t{1} << b) - 1;
}

}  // namespace

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t current = min_.load(std::memory_order_relaxed);
  while (value < current &&
         !min_.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
  current = max_.load(std::memory_order_relaxed);
  while (value > current &&
         !max_.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  const int64_t m = min_.load(std::memory_order_relaxed);
  return m == INT64_MAX ? 0 : m;
}

int64_t Histogram::ApproxQuantile(double quantile) const {
  const int64_t total = count();
  if (total == 0) return 0;
  const int64_t target =
      static_cast<int64_t>(quantile * static_cast<double>(total));
  int64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += bucket(b);
    if (cumulative > target) return BucketUpper(b);
  }
  return max();
}

void Histogram::Reset() {
  for (std::atomic<int64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::DumpText(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    out << "counter " << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge " << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram " << name << " count=" << h->count()
        << " sum=" << h->sum() << " min=" << h->min() << " max=" << h->max()
        << " p50<=" << h->ApproxQuantile(0.5)
        << " p90<=" << h->ApproxQuantile(0.9)
        << " p99<=" << h->ApproxQuantile(0.99) << "\n";
  }
}

void MetricsRegistry::DumpJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << c->value();
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << g->value();
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ", ") << "\"" << name << "\": {\"count\": "
        << h->count() << ", \"sum\": " << h->sum() << ", \"min\": "
        << h->min() << ", \"max\": " << h->max() << ", \"p50\": "
        << h->ApproxQuantile(0.5) << ", \"p90\": " << h->ApproxQuantile(0.9)
        << ", \"p99\": " << h->ApproxQuantile(0.99) << "}";
    first = false;
  }
  out << "}}\n";
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void EnableMetrics(bool enabled) {
  g_metrics_active.store(enabled, std::memory_order_relaxed);
}

bool MetricsActive() {
  return g_metrics_active.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace cqac
