#include "obs/prometheus.h"

#include <cctype>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cqac {
namespace obs {

namespace {

/// `base{k="v"}` split into its sanitized exposition-format pieces.
struct SeriesName {
  std::string base;    // sanitized, cqac_-prefixed metric name
  std::string labels;  // rendered label pairs without braces, may be empty
};

std::string SanitizeMetricName(std::string_view raw) {
  std::string out = "cqac_";
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string SanitizeLabelKey(std::string_view raw) {
  std::string out;
  if (raw.empty() || (raw.front() >= '0' && raw.front() <= '9')) {
    out.push_back('_');
  }
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string EscapeLabelValue(std::string_view raw) {
  std::string out;
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
std::string EscapeHelp(std::string_view raw) {
  std::string out;
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Splits a registry name into base and rendered labels.  The label block
/// grammar accepted from instrumentation sites is `{k="v",k2="v2"}`; a
/// malformed block is folded into the sanitized base instead of being
/// emitted as broken exposition syntax.
SeriesName SplitSeriesName(const std::string& raw) {
  SeriesName series;
  const size_t brace = raw.find('{');
  if (brace == std::string::npos) {
    series.base = SanitizeMetricName(raw);
    return series;
  }
  if (raw.back() != '}') {
    series.base = SanitizeMetricName(raw);
    return series;
  }
  const std::string_view block(raw.data() + brace + 1,
                               raw.size() - brace - 2);
  std::string rendered;
  size_t pos = 0;
  while (pos < block.size()) {
    const size_t eq = block.find('=', pos);
    if (eq == std::string_view::npos || eq + 1 >= block.size() ||
        block[eq + 1] != '"') {
      series.base = SanitizeMetricName(raw);
      return series;
    }
    const size_t close = block.find('"', eq + 2);
    if (close == std::string_view::npos) {
      series.base = SanitizeMetricName(raw);
      return series;
    }
    if (!rendered.empty()) rendered += ",";
    rendered += SanitizeLabelKey(block.substr(pos, eq - pos));
    rendered += "=\"";
    rendered += EscapeLabelValue(block.substr(eq + 2, close - (eq + 2)));
    rendered += "\"";
    pos = close + 1;
    if (pos < block.size()) {
      if (block[pos] != ',') {
        series.base = SanitizeMetricName(raw);
        return series;
      }
      ++pos;
    }
  }
  series.base = SanitizeMetricName(raw.substr(0, brace));
  series.labels = std::move(rendered);
  return series;
}

void WriteHeader(std::ostream& out, const std::string& base,
                 const char* type, const std::string& raw_name) {
  out << "# HELP " << base << " "
      << EscapeHelp("cqac registry metric " + raw_name) << "\n";
  out << "# TYPE " << base << " " << type << "\n";
}

void WriteSample(std::ostream& out, const std::string& base,
                 const std::string& labels, int64_t value) {
  out << base;
  if (!labels.empty()) out << "{" << labels << "}";
  out << " " << value << "\n";
}

/// Raw base name (label block stripped) for the HELP line.
std::string RawBase(const std::string& raw) {
  const size_t brace = raw.find('{');
  return brace == std::string::npos ? raw : raw.substr(0, brace);
}

/// Merges an extra label pair (le/quantile) into an existing block.
std::string WithLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  return labels + "," + extra;
}

}  // namespace

void WritePrometheusText(std::ostream& out, const MetricsRegistry& registry) {
  // Registry maps are name-sorted, so series of one base (differing only
  // in label block) are adjacent; emit one HELP/TYPE header per base.
  std::string last_base;

  for (const auto& [raw, value] : registry.CounterEntries()) {
    SeriesName series = SplitSeriesName(raw);
    series.base += "_total";
    if (series.base != last_base) {
      WriteHeader(out, series.base, "counter", RawBase(raw));
      last_base = series.base;
    }
    WriteSample(out, series.base, series.labels, value);
  }

  last_base.clear();
  for (const auto& [raw, value] : registry.GaugeEntries()) {
    const SeriesName series = SplitSeriesName(raw);
    if (series.base != last_base) {
      WriteHeader(out, series.base, "gauge", RawBase(raw));
      last_base = series.base;
    }
    WriteSample(out, series.base, series.labels, value);
  }

  last_base.clear();
  for (const MetricsRegistry::HistogramEntry& entry :
       registry.HistogramEntries()) {
    const SeriesName series = SplitSeriesName(entry.name);
    if (series.base != last_base) {
      WriteHeader(out, series.base, "histogram", RawBase(entry.name));
      last_base = series.base;
    }
    // Cumulative buckets over the log2 upper bounds, stopping at the
    // first bucket that covers the observed max (all higher buckets are
    // empty and +Inf closes the series).
    int64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      cumulative += entry.buckets[b];
      const int64_t upper = internal::BucketUpperBound(b);
      std::ostringstream le;
      le << "le=\"" << upper << "\"";
      WriteSample(out, series.base + "_bucket",
                  WithLabel(series.labels, le.str()), cumulative);
      if (upper >= entry.max) break;
    }
    WriteSample(out, series.base + "_bucket",
                WithLabel(series.labels, "le=\"+Inf\""), entry.count);
    WriteSample(out, series.base + "_sum", series.labels, entry.sum);
    WriteSample(out, series.base + "_count", series.labels, entry.count);
  }

  last_base.clear();
  for (const MetricsRegistry::WindowedEntry& entry :
       registry.WindowedEntries()) {
    const SeriesName series = SplitSeriesName(entry.name);
    if (series.base != last_base) {
      WriteHeader(out, series.base, "summary", RawBase(entry.name));
      last_base = series.base;
    }
    WriteSample(out, series.base, WithLabel(series.labels, "quantile=\"0.5\""),
                entry.snap.p50);
    WriteSample(out, series.base,
                WithLabel(series.labels, "quantile=\"0.95\""), entry.snap.p95);
    WriteSample(out, series.base,
                WithLabel(series.labels, "quantile=\"0.99\""), entry.snap.p99);
    WriteSample(out, series.base + "_sum", series.labels, entry.snap.sum);
    WriteSample(out, series.base + "_count", series.labels, entry.snap.count);
  }
}

std::string PrometheusText(const MetricsRegistry& registry) {
  std::ostringstream out;
  WritePrometheusText(out, registry);
  return out.str();
}

}  // namespace obs
}  // namespace cqac
