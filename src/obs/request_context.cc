#include "obs/request_context.h"

#include <random>

namespace cqac {
namespace obs {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t SeedFromDevice() {
  std::random_device device;
  return (static_cast<uint64_t>(device()) << 32) ^ device();
}

}  // namespace

TraceId GenerateTraceId() {
  static thread_local uint64_t state = SeedFromDevice();
  TraceId id;
  do {
    id.hi = SplitMix64(state);
    id.lo = SplitMix64(state);
  } while (id.IsZero());
  return id;
}

std::string TraceIdHex(const TraceId& id) {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<size_t>(i)] = kHex[(id.hi >> (60 - 4 * i)) & 0xf];
    out[static_cast<size_t>(16 + i)] = kHex[(id.lo >> (60 - 4 * i)) & 0xf];
  }
  return out;
}

bool ParseTraceIdHex(std::string_view hex, TraceId* out) {
  if (hex.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<size_t>(16 * w + i)];
      uint64_t nibble;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        nibble = static_cast<uint64_t>(c - 'A' + 10);
      } else {
        return false;
      }
      words[w] = (words[w] << 4) | nibble;
    }
  }
  out->hi = words[0];
  out->lo = words[1];
  return true;
}

}  // namespace obs
}  // namespace cqac
