#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace cqac {
namespace obs {

namespace {

/// One ring slot.  All fields are relaxed atomics bracketed by an odd/even
/// `version` seqlock, so the single-producer writes and the collector's
/// reads are race-free under the memory model (torn snapshots are detected
/// by the version check and skipped, never observed as values).
struct FlightSlot {
  std::atomic<uint32_t> version{0};  // odd while the producer is writing
  std::atomic<const char*> name{nullptr};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> dur_ns{0};
  std::atomic<uint64_t> trace_hi{0};
  std::atomic<uint64_t> trace_lo{0};
};

void WriteSlot(FlightSlot& slot, const char* name, int64_t start_ns,
               int64_t dur_ns, const TraceId& trace) {
  const uint32_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);  // odd: writing
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.trace_hi.store(trace.hi, std::memory_order_relaxed);
  slot.trace_lo.store(trace.lo, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);  // even: stable
}

/// One thread's rings.  Single producer (the owning thread); each position
/// counter counts pushes forever, so `pos - capacity` is that region's
/// overwrite count and its retained window is [max(0, pos - cap), pos).
///
/// Retention is head+tail: the first kFlightHeadPerTrace events of each
/// request go to the small `head_slots` region (its own mini-ring rotating
/// over recent requests' heads), the rest to the main `slots` ring.  The
/// per-trace routing state is producer-private; it is atomic only so
/// ResetFlightRecorderForTest can clear it from another thread.
struct FlightRing {
  explicit FlightRing(uint32_t id) : tid(id) {}

  const uint32_t tid;
  std::vector<FlightSlot> slots;       // lazily sized to kFlightRingCapacity
  std::vector<FlightSlot> head_slots;  // lazily, kFlightHeadCapacity
  std::atomic<int64_t> head{0};
  std::atomic<int64_t> head_pos{0};
  std::atomic<uint64_t> cur_hi{0};  // trace whose head is being counted
  std::atomic<uint64_t> cur_lo{0};
  std::atomic<int64_t> cur_count{0};  // events seen for that trace so far

  void Push(const char* name, int64_t start_ns, int64_t dur_ns,
            const TraceId& trace) {
    if (slots.empty()) {
      slots = std::vector<FlightSlot>(
          static_cast<size_t>(kFlightRingCapacity));
      head_slots = std::vector<FlightSlot>(
          static_cast<size_t>(kFlightHeadCapacity));
    }
    if (trace.hi != cur_hi.load(std::memory_order_relaxed) ||
        trace.lo != cur_lo.load(std::memory_order_relaxed)) {
      cur_hi.store(trace.hi, std::memory_order_relaxed);
      cur_lo.store(trace.lo, std::memory_order_relaxed);
      cur_count.store(0, std::memory_order_relaxed);
    }
    const int64_t seen = cur_count.load(std::memory_order_relaxed);
    if (seen < kFlightHeadPerTrace) {
      cur_count.store(seen + 1, std::memory_order_relaxed);
      const int64_t h = head_pos.load(std::memory_order_relaxed);
      WriteSlot(head_slots[static_cast<size_t>(h % kFlightHeadCapacity)],
                name, start_ns, dur_ns, trace);
      head_pos.store(h + 1, std::memory_order_release);
      return;
    }
    const int64_t h = head.load(std::memory_order_relaxed);
    WriteSlot(slots[static_cast<size_t>(h % kFlightRingCapacity)],
              name, start_ns, dur_ns, trace);
    head.store(h + 1, std::memory_order_release);
  }
};

struct FlightRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<FlightRing>> all;
  std::vector<FlightRing*> parked;
};

FlightRegistry& GlobalFlightRegistry() {
  static FlightRegistry* registry = new FlightRegistry();
  return *registry;
}

/// Parks the ring at thread exit so new threads reuse it (same bounded-
/// memory scheme as the tracing span buffers).
struct RingHandle {
  FlightRing* ring = nullptr;

  ~RingHandle() {
    if (ring == nullptr) return;
    FlightRegistry& registry = GlobalFlightRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.parked.push_back(ring);
  }
};

FlightRing* ThreadRing() {
  static thread_local RingHandle handle;
  if (handle.ring == nullptr) {
    FlightRegistry& registry = GlobalFlightRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    if (!registry.parked.empty()) {
      handle.ring = registry.parked.back();
      registry.parked.pop_back();
    } else {
      registry.all.push_back(std::make_unique<FlightRing>(
          static_cast<uint32_t>(registry.all.size())));
      handle.ring = registry.all.back().get();
    }
  }
  return handle.ring;
}

/// Copies one slot if it is stable across the copy; false on a torn read.
bool ReadSlot(const FlightSlot& slot, uint32_t ring_tid, FlightEvent* out) {
  const uint32_t v1 = slot.version.load(std::memory_order_acquire);
  if (v1 % 2 != 0) return false;
  FlightEvent event;
  event.name = slot.name.load(std::memory_order_relaxed);
  event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
  event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
  event.trace.hi = slot.trace_hi.load(std::memory_order_relaxed);
  event.trace.lo = slot.trace_lo.load(std::memory_order_relaxed);
  event.tid = ring_tid;
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.version.load(std::memory_order_relaxed) != v1) return false;
  if (event.name == nullptr) return false;
  *out = event;
  return true;
}

}  // namespace

void EnableFlightRecorder(bool enabled) {
  internal::g_flight_active.store(enabled, std::memory_order_relaxed);
}

bool FlightRecorderActive() {
  return internal::g_flight_active.load(std::memory_order_relaxed);
}

FlightExcerpt CollectFlightEvents(const TraceId& filter) {
  FlightExcerpt excerpt;
  FlightRegistry& registry = GlobalFlightRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::unique_ptr<FlightRing>& ring : registry.all) {
    const int64_t head = ring->head.load(std::memory_order_acquire);
    const int64_t head_pos = ring->head_pos.load(std::memory_order_acquire);
    if (head > kFlightRingCapacity) {
      excerpt.overwritten += head - kFlightRingCapacity;
    }
    if (head_pos > kFlightHeadCapacity) {
      excerpt.overwritten += head_pos - kFlightHeadCapacity;
    }
    if (ring->slots.empty()) continue;
    const int64_t lo = head > kFlightRingCapacity
                           ? head - kFlightRingCapacity
                           : 0;
    for (int64_t i = lo; i < head; ++i) {
      const FlightSlot& slot =
          ring->slots[static_cast<size_t>(i % kFlightRingCapacity)];
      FlightEvent event;
      if (!ReadSlot(slot, ring->tid, &event)) continue;
      if (!filter.IsZero() && event.trace != filter) continue;
      excerpt.events.push_back(event);
    }
    const int64_t head_lo = head_pos > kFlightHeadCapacity
                                ? head_pos - kFlightHeadCapacity
                                : 0;
    for (int64_t i = head_lo; i < head_pos; ++i) {
      const FlightSlot& slot =
          ring->head_slots[static_cast<size_t>(i % kFlightHeadCapacity)];
      FlightEvent event;
      if (!ReadSlot(slot, ring->tid, &event)) continue;
      if (!filter.IsZero() && event.trace != filter) continue;
      excerpt.events.push_back(event);
    }
  }
  std::sort(excerpt.events.begin(), excerpt.events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns < b.dur_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return std::strcmp(a.name, b.name) < 0;
            });
  MetricsRegistry::Global().gauge("flight.overwritten_events")
      .Set(excerpt.overwritten);
  return excerpt;
}

void ResetFlightRecorderForTest() {
  FlightRegistry& registry = GlobalFlightRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::unique_ptr<FlightRing>& ring : registry.all) {
    for (FlightSlot& slot : ring->slots) {
      const uint32_t v = slot.version.load(std::memory_order_relaxed);
      slot.version.store(v + 1, std::memory_order_release);
      slot.name.store(nullptr, std::memory_order_relaxed);
      slot.version.store(v + 2, std::memory_order_release);
    }
    for (FlightSlot& slot : ring->head_slots) {
      const uint32_t v = slot.version.load(std::memory_order_relaxed);
      slot.version.store(v + 1, std::memory_order_release);
      slot.name.store(nullptr, std::memory_order_relaxed);
      slot.version.store(v + 2, std::memory_order_release);
    }
    ring->head.store(0, std::memory_order_release);
    ring->head_pos.store(0, std::memory_order_release);
    ring->cur_hi.store(0, std::memory_order_relaxed);
    ring->cur_lo.store(0, std::memory_order_relaxed);
    ring->cur_count.store(0, std::memory_order_relaxed);
  }
}

namespace internal {

void RecordFlightEvent(const char* name, int64_t start_ns, int64_t dur_ns) {
  ThreadRing()->Push(name, start_ns, dur_ns, CurrentTraceId());
}

}  // namespace internal

}  // namespace obs
}  // namespace cqac
