#ifndef CQAC_OBS_PROMETHEUS_H_
#define CQAC_OBS_PROMETHEUS_H_

// Prometheus text exposition (v0.0.4) rendering of the metrics registry,
// served by `cqacd` via the get_metrics wire request and dumped
// periodically by `cqacd --metrics-dump FILE --metrics-interval N`.
//
// Mapping from registry names (docs/OBSERVABILITY.md):
//   - every metric is prefixed `cqac_`; '.' and any other character
//     outside [a-zA-Z0-9_] becomes '_' (`server.requests_accepted` ->
//     `cqac_server_requests_accepted_total`).
//   - Counter  -> counter, with the conventional `_total` suffix.
//   - Gauge    -> gauge.
//   - Histogram-> histogram: cumulative `_bucket{le="..."}` series over
//     the power-of-two bucket upper bounds (0, 1, 3, 7, ...), up to the
//     bucket holding the observed max, closed by `le="+Inf"`, plus
//     `_sum` and `_count`.
//   - WindowedHistogram -> summary with quantile="0.5"/"0.95"/"0.99"
//     series estimated over the sliding window, plus `_sum`/`_count`
//     (also windowed).
//
// A registry name may carry a label block, e.g.
// `server.slo_latency_ns{tier="1"}`: the block is parsed, keys are
// sanitized, values are escaped per the exposition format, and all series
// of one base name share a single # HELP / # TYPE header.

#include <iosfwd>
#include <string>

namespace cqac {
namespace obs {

class MetricsRegistry;

/// Renders `registry` in Prometheus text format.
void WritePrometheusText(std::ostream& out, const MetricsRegistry& registry);

/// Convenience: WritePrometheusText into a string.
std::string PrometheusText(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace cqac

#endif  // CQAC_OBS_PROMETHEUS_H_
