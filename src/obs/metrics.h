#ifndef CQAC_OBS_METRICS_H_
#define CQAC_OBS_METRICS_H_

// Typed runtime metrics for the rewriting runtime: counters (monotonic
// sums), gauges (last/maximum value), and histograms (log2-bucketed
// distributions), owned by a process-wide registry.
//
// The registry is always compiled in — unlike span tracing there is no
// build-time gate — because a metric that is never updated costs nothing.
// Updates are lock-free (relaxed atomics); only name registration takes a
// mutex, and instrumented hot paths cache the returned reference (entries
// are never removed, so references stay valid for the process lifetime;
// Reset zeroes values in place).
//
// Instrumentation that needs extra work *to produce a value* — e.g. a
// steady_clock read per canonical database for a latency histogram —
// additionally checks MetricsActive(), a runtime switch behind
// `cqacsh --metrics`, so idle builds pay nothing but a relaxed load.
//
// Naming convention (see docs/OBSERVABILITY.md): lower-case
// `<component>.<what>`, with `_ns` suffixes on durations, e.g.
// `threadpool.tasks_stolen`, `phase1.db_wall_ns`.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cqac {
namespace obs {

/// A monotonically increasing sum.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A point-in-time value; Set overwrites, Max keeps the high watermark.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Max(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A distribution of non-negative values in power-of-two buckets: bucket b
/// counts values whose bit width is b (bucket 0 holds exactly 0), i.e.
/// values in [2^(b-1), 2^b).  Good to a factor of two, which is all a
/// wall-time distribution needs.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when the histogram is empty.
  int64_t min() const;
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Upper bound (inclusive) of the bucket where the cumulative count
  /// first reaches `quantile` (in [0,1]); 0 when empty.  A factor-of-two
  /// approximation of the true quantile.
  int64_t ApproxQuantile(double quantile) const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
};

/// The process-wide name -> metric table.  Lookup-or-create is
/// mutex-guarded; the returned references are valid forever.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every registered metric in place (references stay valid).
  void Reset();

  /// One line per metric, sorted by name within each type:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> sum=<s> min=<m> max=<M> p50<=<q> ...
  void DumpText(std::ostream& out) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}}}
  void DumpJson(std::ostream& out) const;

  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Runtime switch for instrumentation whose *value production* costs
/// something (clock reads on per-database paths).  Off by default.
void EnableMetrics(bool enabled);
bool MetricsActive();

}  // namespace obs
}  // namespace cqac

#endif  // CQAC_OBS_METRICS_H_
