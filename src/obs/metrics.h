#ifndef CQAC_OBS_METRICS_H_
#define CQAC_OBS_METRICS_H_

// Typed runtime metrics for the rewriting runtime: counters (monotonic
// sums), gauges (last/maximum value), and histograms (log2-bucketed
// distributions), owned by a process-wide registry.
//
// The registry is always compiled in — unlike span tracing there is no
// build-time gate — because a metric that is never updated costs nothing.
// Updates are lock-free (relaxed atomics); only name registration takes a
// mutex, and instrumented hot paths cache the returned reference (entries
// are never removed, so references stay valid for the process lifetime;
// Reset zeroes values in place).
//
// Instrumentation that needs extra work *to produce a value* — e.g. a
// steady_clock read per canonical database for a latency histogram —
// additionally checks MetricsActive(), a runtime switch behind
// `cqacsh --metrics`, so idle builds pay nothing but a relaxed load.
//
// Naming convention (see docs/OBSERVABILITY.md): lower-case
// `<component>.<what>`, with `_ns` suffixes on durations, e.g.
// `threadpool.tasks_stolen`, `phase1.db_wall_ns`.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cqac {
namespace obs {

/// A monotonically increasing sum.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A point-in-time value; Set overwrites, Max keeps the high watermark.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Max(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A distribution of non-negative values in power-of-two buckets: bucket b
/// counts values whose bit width is b (bucket 0 holds exactly 0), i.e.
/// values in [2^(b-1), 2^b).  Good to a factor of two, which is all a
/// wall-time distribution needs.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when the histogram is empty.
  int64_t min() const;
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Estimated `quantile` (in [0,1]); 0 when empty.  Locates the bucket
  /// where the cumulative count reaches the quantile rank, then midpoint-
  /// interpolates within it (values assumed uniform across the bucket),
  /// clamped to the observed [min, max].  Without interpolation the
  /// power-of-two buckets collapse nearby quantiles to one bucket upper
  /// bound — p99 == p95 for any distribution inside a factor of two.
  int64_t ApproxQuantile(double quantile) const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
};

/// A histogram over a sliding time window, built from kSlots rotating
/// Histogram slots of window/kSlots each: Observe lands in the slot for
/// the current time; Snap merges the slots still inside the window, so the
/// quantiles answer "p99 over the last ~minute", not "since boot" — the
/// shape an SLO monitor needs.  Rotation reuses the oldest slot in place
/// (an observation racing the reset at a 10s boundary can be lost; SLO
/// estimation tolerates that, and every operation stays lock-free).
class WindowedHistogram {
 public:
  static constexpr int kSlots = 6;

  explicit WindowedHistogram(
      int64_t window_ns = int64_t{60} * 1000 * 1000 * 1000);

  /// Records `value` at the current steady-clock time.
  void Observe(int64_t value);
  /// Records at an explicit time (tests).
  void ObserveAt(int64_t now_ns, int64_t value);

  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    int64_t buckets[Histogram::kBuckets] = {};
    int64_t p50 = 0;
    int64_t p95 = 0;
    int64_t p99 = 0;
  };

  /// Merged view of the slots inside the window ending now.
  Snapshot Snap() const;
  Snapshot SnapAt(int64_t now_ns) const;

  int64_t window_ns() const { return window_ns_; }
  void Reset();

 private:
  int64_t slot_ns_;
  int64_t window_ns_;
  Histogram slots_[kSlots];
  // Epoch (now / slot_ns) each slot currently holds; -1 when never used.
  std::atomic<int64_t> slot_epoch_[kSlots];
};

namespace internal {
/// The quantile estimator shared by Histogram, WindowedHistogram, and the
/// Prometheus exporter: rank-locates the bucket, midpoint-interpolates
/// within it, clamps to the observed [min_value, max_value].
int64_t QuantileFromBuckets(const int64_t buckets[Histogram::kBuckets],
                            int64_t total, int64_t min_value,
                            int64_t max_value, double quantile);
/// Inclusive upper bound of log2 bucket `b` (0 for b==0).
int64_t BucketUpperBound(int b);
}  // namespace internal

/// The process-wide name -> metric table.  Lookup-or-create is
/// mutex-guarded; the returned references are valid forever.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  WindowedHistogram& windowed(const std::string& name);

  /// Zeroes every registered metric in place (references stay valid).
  void Reset();

  /// One line per metric, sorted by name within each type:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> sum=<s> min=<m> max=<M> p50<=<q> ...
  void DumpText(std::ostream& out) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}}}
  void DumpJson(std::ostream& out) const;

  /// Point-in-time copies of the registered metrics, name-sorted — the
  /// exporter's view (obs/prometheus.h) without holding the registry lock
  /// while rendering.
  struct HistogramEntry {
    std::string name;
    int64_t buckets[Histogram::kBuckets] = {};
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
  };
  struct WindowedEntry {
    std::string name;
    int64_t window_ns = 0;
    WindowedHistogram::Snapshot snap;
  };
  std::vector<std::pair<std::string, int64_t>> CounterEntries() const;
  std::vector<std::pair<std::string, int64_t>> GaugeEntries() const;
  std::vector<HistogramEntry> HistogramEntries() const;
  std::vector<WindowedEntry> WindowedEntries() const;

  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windowed_;
};

/// Runtime switch for instrumentation whose *value production* costs
/// something (clock reads on per-database paths).  Off by default.
void EnableMetrics(bool enabled);
bool MetricsActive();

}  // namespace obs
}  // namespace cqac

#endif  // CQAC_OBS_METRICS_H_
