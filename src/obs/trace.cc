#include "obs/trace.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>

namespace cqac {
namespace obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One thread's span storage.  Single producer (the owning thread), which
/// publishes each span with a release store of `count`; the collector
/// acquire-loads `count` and reads only the slots it covers, so no span is
/// ever read while being written.  The buffer never shrinks and is only
/// appended to; StartTracing resets `count` while no producer holds the
/// buffer armed (stale in-flight spans from a previous session are
/// discarded by the recorder's own session check).
struct SpanBuffer {
  explicit SpanBuffer(uint32_t id) : tid(id) {}

  const uint32_t tid;
  std::vector<TraceEvent> slots;        // lazily sized to capacity
  std::atomic<int64_t> count{0};        // published spans
  std::atomic<int64_t> dropped{0};      // spans refused by a full buffer

  void Push(const TraceEvent& event) {
    const int64_t n = count.load(std::memory_order_relaxed);
    if (n >= kSpanBufferCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (slots.empty()) slots.resize(kSpanBufferCapacity);
    slots[static_cast<size_t>(n)] = event;
    count.store(n + 1, std::memory_order_release);
  }
};

/// Owns every SpanBuffer ever created.  Buffers of exited threads go on a
/// free list and are handed to the next new thread, so long sessions with
/// many short-lived thread pools reuse a bounded set of buffers.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<SpanBuffer>> all;
  std::vector<SpanBuffer*> parked;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::atomic<bool> g_active{false};
std::atomic<int64_t> g_session_t0{0};
// Bumped by StartTracing; spans begun in an earlier session are discarded
// at scope exit instead of leaking into the new one.
std::atomic<uint64_t> g_session_id{0};

/// The calling thread's buffer, claiming a parked one or registering a new
/// one on first use.  The raw pointer stays valid forever (the registry
/// owns the buffer); the thread-local handle parks it at thread exit.
struct BufferHandle {
  SpanBuffer* buffer = nullptr;

  ~BufferHandle() {
    if (buffer == nullptr) return;
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.parked.push_back(buffer);
  }
};

SpanBuffer* ThreadBuffer() {
  static thread_local BufferHandle handle;
  if (handle.buffer == nullptr) {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    if (!registry.parked.empty()) {
      handle.buffer = registry.parked.back();
      registry.parked.pop_back();
    } else {
      registry.all.push_back(std::make_unique<SpanBuffer>(
          static_cast<uint32_t>(registry.all.size())));
      handle.buffer = registry.all.back().get();
    }
  }
  return handle.buffer;
}

}  // namespace

void StartTracing() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_active.store(false, std::memory_order_seq_cst);
  for (const std::unique_ptr<SpanBuffer>& buffer : registry.all) {
    buffer->count.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
  g_session_id.fetch_add(1, std::memory_order_relaxed);
  g_session_t0.store(NowNs(), std::memory_order_relaxed);
  g_active.store(true, std::memory_order_seq_cst);
}

CollectedTrace StopTracing() {
  g_active.store(false, std::memory_order_seq_cst);
  CollectedTrace trace;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::unique_ptr<SpanBuffer>& buffer : registry.all) {
    const int64_t n = buffer->count.load(std::memory_order_acquire);
    for (int64_t i = 0; i < n; ++i) {
      trace.events.push_back(buffer->slots[static_cast<size_t>(i)]);
    }
    trace.dropped_spans += buffer->dropped.load(std::memory_order_relaxed);
  }
  // Mirror the per-session loss count into the registry so an external
  // scraper sees truncated traces without parsing the trace file (Add(0)
  // still registers the name, so the exporter always lists it).
  MetricsRegistry::Global().counter("trace.dropped_spans")
      .Add(trace.dropped_spans);
  std::sort(trace.events.begin(), trace.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns < b.dur_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return std::strcmp(a.name, b.name) < 0;
            });
  return trace;
}

bool TracingActive() {
  return TracingCompiledIn() && g_active.load(std::memory_order_relaxed);
}

void WriteChromeTrace(std::ostream& out, const CollectedTrace& trace) {
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : trace.events) {
    out << (first ? "\n" : ",\n");
    first = false;
    // Chrome's ts/dur are microseconds; keep nanosecond precision as
    // fractional digits.  Span names are string literals from the
    // instrumentation sites and contain nothing needing JSON escaping.
    out << "  {\"name\": \"" << event.name << "\", \"cat\": \"cqac\", "
        << "\"ph\": \"X\", \"ts\": " << event.start_ns / 1000 << "."
        << static_cast<char>('0' + (event.start_ns % 1000) / 100)
        << static_cast<char>('0' + (event.start_ns % 100) / 10)
        << static_cast<char>('0' + event.start_ns % 10)
        << ", \"dur\": " << event.dur_ns / 1000 << "."
        << static_cast<char>('0' + (event.dur_ns % 1000) / 100)
        << static_cast<char>('0' + (event.dur_ns % 100) / 10)
        << static_cast<char>('0' + event.dur_ns % 10)
        << ", \"pid\": 1, \"tid\": " << event.tid << "}";
  }
  out << (first ? "" : "\n") << "], \"cqacDroppedSpans\": "
      << trace.dropped_spans << "}\n";
}

namespace internal {

SpanRecorder::SpanRecorder(const char* name) : name_(name) {
  const bool session_active = g_active.load(std::memory_order_relaxed);
  flight_ = internal::FlightWanted();
  if (!session_active && !flight_) return;
  abs_start_ns_ = NowNs();
  if (session_active) {
    session_ = g_session_id.load(std::memory_order_relaxed);
    start_ns_ = abs_start_ns_ - g_session_t0.load(std::memory_order_relaxed);
  }
}

SpanRecorder::~SpanRecorder() {
  if (abs_start_ns_ < 0) return;
  const int64_t end_ns = NowNs();
  // A span recorded into a different session than it began in would carry
  // a stale start offset; drop spans straddling a Stop or a restart.
  if (start_ns_ >= 0 && g_active.load(std::memory_order_relaxed) &&
      g_session_id.load(std::memory_order_relaxed) == session_) {
    TraceEvent event;
    event.name = name_;
    event.start_ns = start_ns_;
    event.dur_ns =
        end_ns - g_session_t0.load(std::memory_order_relaxed) - start_ns_;
    SpanBuffer* buffer = ThreadBuffer();
    event.tid = buffer->tid;
    buffer->Push(event);
  }
  if (flight_) {
    internal::RecordFlightEvent(name_, abs_start_ns_,
                                end_ns - abs_start_ns_);
  }
}

}  // namespace internal

}  // namespace obs
}  // namespace cqac
