#ifndef CQAC_OBS_TRACE_H_
#define CQAC_OBS_TRACE_H_

// Span tracing for the rewriting pipeline.
//
// Instrumented code marks named phases with CQAC_TRACE_SPAN("phase1.freeze");
// the macro is an RAII recorder that, while a tracing session is active,
// appends one complete span (name, start, duration, thread) to a per-thread
// lock-free buffer.  StopTracing() merges every thread's spans into one
// deterministic sequence, exportable as Chrome trace-event JSON
// (WriteChromeTrace) and viewable in Perfetto or chrome://tracing.
//
// Cost model, in increasing order:
//   - compiled out (CMake -DCQAC_TRACING=OFF): the macro expands to nothing;
//     zero instructions on every instrumented path.
//   - compiled in, no session active (the default at runtime): one relaxed
//     atomic load and a predictable branch per span.
//   - session active: two steady_clock reads plus one buffer append per
//     span.  No locks are taken on the recording path.
//
// Timestamps come exclusively from std::chrono::steady_clock and are never
// fed back into the algorithms, so tracing cannot perturb the rewriter's
// byte-identical serial/parallel guarantee — only wall-clock numbers differ
// between runs.
//
// Buffers are bounded (kSpanBufferCapacity spans per thread); once a thread
// fills its buffer, further spans are dropped and counted, never silently
// lost.  Buffers of exited threads are parked and handed to new threads, so
// memory is bounded by the peak number of concurrently tracing threads.

#include <cstdint>
#include <iosfwd>
#include <vector>

// Defined (0 or 1) on the compiler command line by the top-level CMake
// option CQAC_TRACING; default to "compiled in" for non-CMake builds.
#ifndef CQAC_TRACING
#define CQAC_TRACING 1
#endif

namespace cqac {
namespace obs {

/// Spans one thread can hold per session; later spans are dropped+counted.
inline constexpr int64_t kSpanBufferCapacity = 1 << 15;

/// One completed span.  `name` is always a string literal with static
/// storage duration (the macro's argument), so events are POD and the
/// buffers never allocate per span.
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;  // steady-clock offset from the session start
  int64_t dur_ns = 0;
  uint32_t tid = 0;  // registration order of the recording thread's buffer
};

/// Everything StopTracing collected.
struct CollectedTrace {
  /// Merged deterministically: sorted by (start_ns, dur_ns, tid, name), so
  /// equal per-thread span sets always yield equal sequences.
  std::vector<TraceEvent> events;
  /// Spans lost to full buffers during the session.
  int64_t dropped_spans = 0;
};

/// True when the span macros were compiled in (CMake CQAC_TRACING=ON).
/// When false, Start/StopTracing still work but no span is ever recorded.
constexpr bool TracingCompiledIn() { return CQAC_TRACING != 0; }

/// Arms span recording: resets every thread buffer and the session clock.
/// Sessions do not nest; calling Start during an active session restarts
/// it, discarding the spans recorded so far.
void StartTracing();

/// Disarms recording and returns the session's merged spans.  Spans of
/// still-running instrumented code are dropped (a span is recorded at its
/// end); call after the traced work has completed.
CollectedTrace StopTracing();

/// True while a session is active (and tracing is compiled in).
bool TracingActive();

/// Renders `trace` as Chrome trace-event JSON: an object whose
/// "traceEvents" array holds one complete event ("ph":"X") per span, with
/// microsecond ts/dur, plus a top-level "cqacDroppedSpans" count.
void WriteChromeTrace(std::ostream& out, const CollectedTrace& trace);

namespace internal {

/// The RAII body behind CQAC_TRACE_SPAN.  Samples the clock only while a
/// tracing session is active or the flight recorder wants the span (the
/// thread is inside a request scope); records into the session buffer
/// and/or the flight ring at scope exit.  One pair of clock reads serves
/// both sinks.
class SpanRecorder {
 public:
  explicit SpanRecorder(const char* name);
  ~SpanRecorder();

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

 private:
  const char* name_;
  int64_t abs_start_ns_ = -1;  // -1: not recording at all
  int64_t start_ns_ = -1;      // session-relative; -1: no session span
  uint64_t session_ = 0;       // session the span began in
  bool flight_ = false;        // record into the flight ring at exit
};

}  // namespace internal
}  // namespace obs
}  // namespace cqac

#if CQAC_TRACING
#define CQAC_OBS_CONCAT_INNER(a, b) a##b
#define CQAC_OBS_CONCAT(a, b) CQAC_OBS_CONCAT_INNER(a, b)
/// Declares an RAII span covering the rest of the enclosing scope.  `name`
/// must be a string literal (see docs/OBSERVABILITY.md for the naming
/// conventions).
#define CQAC_TRACE_SPAN(name)                       \
  ::cqac::obs::internal::SpanRecorder CQAC_OBS_CONCAT( \
      cqac_trace_span_, __LINE__)(name)
#else
#define CQAC_TRACE_SPAN(name) static_cast<void>(0)
#endif

#endif  // CQAC_OBS_TRACE_H_
