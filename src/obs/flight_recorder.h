#ifndef CQAC_OBS_FLIGHT_RECORDER_H_
#define CQAC_OBS_FLIGHT_RECORDER_H_

// Always-on flight recorder: a bounded per-thread ring of the most recent
// request-scoped span events, recording continuously with no session to
// arm.  When a request dies — deadline-fired cancellation, an error, or an
// explicit dump_telemetry wire request — the excerpt for its trace id can
// be collected after the fact, which is what makes deadline kills
// diagnosable with session tracing (`--trace`) disabled.
//
// Relationship to span tracing (obs/trace.h): both are fed by the same
// CQAC_TRACE_SPAN sites, so `-DCQAC_TRACING=OFF` compiles the recorder's
// inputs out too.  Where a tracing session drops the *newest* spans when a
// buffer fills (a session wants a faithful prefix), the flight ring
// overwrites the *oldest* (a black box wants the most recent history);
// overwrites are counted, never silent.
//
// Retention is head+tail: the first kFlightHeadPerTrace spans of each
// request land in a small dedicated head region (rotating over the heads
// of the last few requests), everything after in the main ring.  A hot
// Phase-1 loop can push tens of thousands of leaf spans through the ring
// in milliseconds; without the head region it would flush the request's
// attribution spans (structure.tier, prepare.*) long before a deadline
// fires, leaving the excerpt all tail and no cause.
//
// Recording path: one TLS load + branch when the thread has no bound
// trace id (obs/request_context.h); with one bound, a seqlock-protected
// store of six words into the thread's private ring.  Every slot field is
// a relaxed atomic and each write is bracketed by an odd/even version, so
// a concurrent collector detects and skips torn slots without locks and
// without data races (the collector never blocks a recording thread).

#include <cstdint>
#include <atomic>
#include <vector>

#include "obs/request_context.h"

namespace cqac {
namespace obs {

/// Span events one thread's ring retains; older events are overwritten.
inline constexpr int64_t kFlightRingCapacity = 4096;

/// Leading spans of each request routed to the thread's head region
/// instead of the main ring, and the region's total size (the heads of
/// the last kFlightHeadCapacity / kFlightHeadPerTrace requests survive).
inline constexpr int64_t kFlightHeadPerTrace = 16;
inline constexpr int64_t kFlightHeadCapacity = 64;

/// One recorded span event.  `name` is the instrumentation site's string
/// literal; timestamps are absolute steady-clock nanoseconds (unlike
/// session spans there is no session base to be relative to).
struct FlightEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  TraceId trace;
  uint32_t tid = 0;  // registration order of the recording thread's ring
};

/// What CollectFlightEvents returns.
struct FlightExcerpt {
  /// Sorted by (start_ns, dur_ns, tid, name).
  std::vector<FlightEvent> events;
  /// Ring slots overwritten since process start, summed over all threads —
  /// the excerpt's "how much history was lost" indicator.
  int64_t overwritten = 0;
};

/// Runtime switch, on by default ("always-on"); EnableFlightRecorder(false)
/// exists for A/B overhead measurement and tests, not production.
void EnableFlightRecorder(bool enabled);
bool FlightRecorderActive();

/// Snapshot of the retained events whose trace id equals `filter`, or of
/// all retained events when `filter` is zero.  Also refreshes the
/// `flight.overwritten_events` registry gauge.  Safe to call concurrently
/// with recording threads; events being overwritten mid-copy are skipped.
FlightExcerpt CollectFlightEvents(const TraceId& filter);

/// Resets every ring and the overwrite counts (tests only; concurrent
/// recorders may interleave, as with any collection).
void ResetFlightRecorderForTest();

namespace internal {

inline std::atomic<bool> g_flight_active{true};

/// True when a span ending now should be recorded: recorder enabled and
/// the calling thread is executing inside a request scope.
inline bool FlightWanted() {
  return g_flight_active.load(std::memory_order_relaxed) &&
         !CurrentTraceId().IsZero();
}

/// Appends one event (stamped with the thread's bound trace id) to the
/// calling thread's ring.
void RecordFlightEvent(const char* name, int64_t start_ns, int64_t dur_ns);

}  // namespace internal
}  // namespace obs
}  // namespace cqac

#endif  // CQAC_OBS_FLIGHT_RECORDER_H_
