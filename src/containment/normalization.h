#ifndef CQAC_CONTAINMENT_NORMALIZATION_H_
#define CQAC_CONTAINMENT_NORMALIZATION_H_

#include "ast/query.h"

namespace cqac {

/// Query normalization in the style of Gupta et al. / Zhang–Özsoyoğlu
/// (the preprocessing step of the containment test the paper's Section 2.3
/// cites): every argument position of every ordinary subgoal receives a
/// fresh variable `_n<k>`, and an equality comparison ties the fresh
/// variable to the original term.  Shared variables and constants thus
/// move from the relational structure into the comparison set, where the
/// implication machinery can reason about them uniformly.
///
///   q(X) :- a(X,X), b(3)      becomes
///   q(X) :- a(_n0,_n1), b(_n2), _n0 = X, _n1 = X, _n2 = 3
///
/// The head is left untouched.  Normalization preserves the query's
/// semantics exactly.
ConjunctiveQuery NormalizeQuery(const ConjunctiveQuery& q);

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_NORMALIZATION_H_
