#include "containment/cq_containment.h"

#include "containment/homomorphism.h"

namespace cqac {

bool CqContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  if (!q1.IsPlainCQ() || !q2.IsPlainCQ()) return false;
  return FindContainmentMapping(q2, q1).has_value();
}

bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return CqContained(q1, q2) && CqContained(q2, q1);
}

ConjunctiveQuery CqMinimize(const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q.Deduplicated();
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.body().size(); ++i) {
      if (current.body().size() == 1) break;
      std::vector<Atom> smaller_body;
      smaller_body.reserve(current.body().size() - 1);
      for (size_t j = 0; j < current.body().size(); ++j) {
        if (j != i) smaller_body.push_back(current.body()[j]);
      }
      ConjunctiveQuery candidate(current.head(), smaller_body);
      // Dropping a subgoal can only grow the result, so candidate ⊒ current
      // always; equivalence reduces to candidate ⊑ current.
      if (CqContained(candidate, current)) {
        current = candidate;
        changed = true;
        break;
      }
    }
  }
  return current;
}

bool UnionCqContained(const UnionQuery& p, const UnionQuery& q) {
  for (const ConjunctiveQuery& pi : p.disjuncts()) {
    bool covered = false;
    for (const ConjunctiveQuery& qj : q.disjuncts()) {
      if (CqContained(pi, qj)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace cqac
