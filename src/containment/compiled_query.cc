#include "containment/compiled_query.h"

#include <algorithm>

namespace cqac {

uint32_t CompileContext::InternConstant(const Rational& value) {
  // The pool is tiny (a handful of distinct constants per query pair);
  // a sorted vector beats a hash map at this size and gives deterministic
  // slot assignment.
  auto it = std::lower_bound(
      constant_slots_.begin(), constant_slots_.end(), value,
      [](const std::pair<Rational, uint32_t>& entry, const Rational& v) {
        return entry.first < v;
      });
  if (it != constant_slots_.end() && it->first == value) return it->second;
  const uint32_t slot = static_cast<uint32_t>(constants_.size());
  constants_.push_back(value);
  constant_slots_.insert(it, {value, slot});
  return slot;
}

void CompileContext::CompileAtom(const Atom& atom, SymbolInterner* vars,
                                 CompiledQuery* out, CompiledAtom* compiled) {
  compiled->predicate = predicates_.Intern(atom.predicate());
  compiled->args_begin = static_cast<uint32_t>(out->args.size());
  for (const Term& t : atom.args()) {
    out->args.push_back(t.IsVariable() ? VarCode(vars->Intern(t.name()))
                                       : ConstCode(InternConstant(t.value())));
  }
  compiled->args_end = static_cast<uint32_t>(out->args.size());
}

void CompileContext::CompileForContainment(const ConjunctiveQuery& from,
                                           const ConjunctiveQuery& to) {
  predicates_.Clear();
  from_vars_.Clear();
  to_vars_.Clear();
  constants_.clear();
  constant_slots_.clear();
  from_.body.clear();
  from_.args.clear();
  to_.body.clear();
  to_.args.clear();

  CompileAtom(from.head(), &from_vars_, &from_, &from_.head);
  from_.body.resize(from.body().size());
  for (size_t i = 0; i < from.body().size(); ++i) {
    CompileAtom(from.body()[i], &from_vars_, &from_, &from_.body[i]);
  }

  CompileAtom(to.head(), &to_vars_, &to_, &to_.head);
  to_.body.resize(to.body().size());
  for (size_t i = 0; i < to.body().size(); ++i) {
    CompileAtom(to.body()[i], &to_vars_, &to_, &to_.body[i]);
  }
}

}  // namespace cqac
