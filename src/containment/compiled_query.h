#ifndef CQAC_CONTAINMENT_COMPILED_QUERY_H_
#define CQAC_CONTAINMENT_COMPILED_QUERY_H_

#include <cstdint>
#include <vector>

#include "ast/interner.h"
#include "ast/query.h"
#include "ast/value.h"

namespace cqac {

/// Compiled (interned, flattened) query form used by the containment
/// engine.  A `ConjunctiveQuery` lowers into this once per check; the
/// backtracking search then runs entirely on dense integer codes.
///
/// Term codes pack a tag bit into an int32:
///   variable id v   ->  (v << 1)
///   constant slot c ->  (c << 1) | 1
/// Constants are deduplicated by value into the shared `CompileContext`
/// pool, so code equality coincides with term equality across the two
/// queries of a check.

inline int32_t VarCode(uint32_t var_id) {
  return static_cast<int32_t>(var_id << 1);
}
inline int32_t ConstCode(uint32_t const_slot) {
  return static_cast<int32_t>((const_slot << 1) | 1);
}
inline bool IsConstCode(int32_t code) { return (code & 1) != 0; }
inline uint32_t VarOfCode(int32_t code) {
  return static_cast<uint32_t>(code) >> 1;
}
inline uint32_t ConstOfCode(int32_t code) {
  return static_cast<uint32_t>(code) >> 1;
}

/// One relational atom in flat form: predicate id plus a [begin, end) span
/// into the owning query's `args` vector of term codes.
struct CompiledAtom {
  uint32_t predicate;
  uint32_t args_begin;
  uint32_t args_end;

  int arity() const { return static_cast<int>(args_end - args_begin); }
};

/// A query's head and ordinary subgoals in flat form.  Comparisons are not
/// compiled here: containment-mapping search ignores them (CQAC layers an
/// implication check on top).
struct CompiledQuery {
  CompiledAtom head;
  std::vector<CompiledAtom> body;
  std::vector<int32_t> args;  // term codes, spans referenced by the atoms

  const int32_t* ArgsOf(const CompiledAtom& atom) const {
    return args.data() + atom.args_begin;
  }
};

/// Shared compilation state for one containment check: symbol tables for
/// the two queries' variables and predicates, plus the deduplicated
/// constant pool.  Reusable across checks via Clear-on-compile; the
/// containment entry points keep one per call.
class CompileContext {
 public:
  /// Resets the context and compiles `from` and `to` against fresh symbol
  /// tables.  `from`'s variables get ids 0..n-1 in first-seen order
  /// (head first), so they index binding stores directly; `to`'s
  /// variables use an independent id space.
  void CompileForContainment(const ConjunctiveQuery& from,
                             const ConjunctiveQuery& to);

  const CompiledQuery& from() const { return from_; }
  const CompiledQuery& to() const { return to_; }

  uint32_t num_from_vars() const { return from_vars_.size(); }
  uint32_t num_to_vars() const { return to_vars_.size(); }

  const std::string& FromVarName(uint32_t id) const {
    return from_vars_.NameOf(id);
  }
  const std::string& ToVarName(uint32_t id) const {
    return to_vars_.NameOf(id);
  }
  const Rational& ConstValue(uint32_t slot) const { return constants_[slot]; }

 private:
  void CompileAtom(const Atom& atom, SymbolInterner* vars, CompiledQuery* out,
                   CompiledAtom* compiled);
  uint32_t InternConstant(const Rational& value);

  SymbolInterner predicates_;
  SymbolInterner from_vars_;
  SymbolInterner to_vars_;
  std::vector<Rational> constants_;
  std::vector<std::pair<Rational, uint32_t>> constant_slots_;  // sorted pool
  CompiledQuery from_;
  CompiledQuery to_;
};

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_COMPILED_QUERY_H_
