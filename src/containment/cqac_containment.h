#ifndef CQAC_CONTAINMENT_CQAC_CONTAINMENT_H_
#define CQAC_CONTAINMENT_CQAC_CONTAINMENT_H_

#include <cstdint>

#include "ast/query.h"

namespace cqac {

struct AcyclicPlan;  // engine/jointree.h

/// Containment and equivalence for conjunctive queries with arithmetic
/// comparisons.  Once comparisons are present, the single-containment-
/// mapping criterion of Chandra & Merlin is no longer complete; the
/// library implements the two classical complete tests the paper reviews
/// (Section 2.3):
///
/// * the **canonical-database test** (Levy–Sagiv / Klug): enumerate every
///   total order of q1's variables together with the constants of both
///   queries; for each order whose witness assignment satisfies q1's
///   comparisons, freeze q1's body into a database and require q2 to
///   compute the frozen head on it; and
///
/// * the **order-refinement implication test** (in the spirit of Gupta et
///   al. / Zhang–Özsoyoğlu): for each such total order, collapse q1 by the
///   order's equalities and require some containment mapping mu from q2's
///   ordinary subgoals into the collapsed q1 whose image mu(beta2) is
///   implied by the order — i.e. check beta1 |= OR_mu mu(beta2) by
///   exhausting the total orders that refine beta1.
///
/// Both are exponential in the number of distinct variables and constants
/// (the problem is Pi^p_2-complete in general); they are implemented
/// independently and cross-checked in the property-test suite.

/// Counters describing the work a containment test performed.
///
/// The canonical-database tests (CqacContainedCanonical /
/// CqacContainedInUnion) enumerate with the prefix-pruned,
/// symmetry-reduced tree of ForEachSatisfyingOrderPruned:
/// `orders_enumerated` counts physical callbacks (one canonical
/// representative per symmetry orbit), while `orders_satisfying`
/// accumulates orbit multiplicities — i.e. the number of satisfying
/// orders the naive enumerate-then-filter reference would visit.  The
/// implication/normalized tests use the plain enumeration, where the two
/// counters coincide.
struct ContainmentStats {
  int64_t orders_enumerated = 0;
  int64_t orders_satisfying = 0;
  /// Enumeration-tree nodes accepted / cut by a partial-order axiom check
  /// (see OrderEnumerationStats); zero for the non-pruned tests.
  int64_t nodes_visited = 0;
  int64_t nodes_pruned = 0;
};

/// q1 ⊑ q2 via the canonical-database test.
///
/// `q2_plan`, when non-null, must be a compiled AcyclicPlan for *this*
/// q2 (engine/jointree.h): the per-order "does q2 compute the frozen
/// head" evaluation then runs on the join-tree semi-join sweep instead
/// of the general engine, with an identical verdict — the T2 fast path
/// of the structure-aware tier router (rewriting/structure.h).
bool CqacContainedCanonical(const ConjunctiveQuery& q1,
                            const ConjunctiveQuery& q2,
                            ContainmentStats* stats = nullptr,
                            const AcyclicPlan* q2_plan = nullptr);

/// q1 ⊑ q2 via the order-refinement implication test.
bool CqacContainedImplication(const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2,
                              ContainmentStats* stats = nullptr);

/// q1 ⊑ q2 via the normalization route of Gupta et al. / Zhang–Özsoyoğlu:
/// both queries are normalized (see containment/normalization.h) so that
/// shared variables and constants live in the comparison sets, and the
/// implication beta1 |= OR_mu exists-ybar mu(beta2) is checked over the
/// satisfying total orders of q1's terms.  A third independent
/// implementation, cross-checked against the others in the test suite.
bool CqacContainedNormalized(const ConjunctiveQuery& q1,
                             const ConjunctiveQuery& q2,
                             ContainmentStats* stats = nullptr);

/// The single-containment-mapping test: true when some containment
/// mapping mu from q2 to q1 has beta1 |= mu(beta2).  Always *sound*
/// (true implies q1 ⊑ q2) but incomplete in general — completeness is
/// exactly what the multiple-mapping phenomenon breaks.  Klug showed it
/// is complete when the comparisons are left (or, symmetrically, right)
/// semi-interval, where containment drops from Pi^p_2 to NP.
bool CqacContainedSingleMapping(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2);

/// True when every comparison of `q` is of the form `X op c` (or `c op X`)
/// with op in {<, <=, =} — Klug's left-semi-interval fragment on which
/// CqacContainedSingleMapping is complete.
bool IsLeftSemiInterval(const ConjunctiveQuery& q);

/// q1 ⊑ q2 (canonical-database test; the library default).
bool CqacContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// q1 ≡ q2.
bool CqacEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// q ⊑ u for a union of CQACs on the right-hand side: every canonical
/// database of q (with the constants of q and of all disjuncts of u) on
/// which q's comparisons hold must have its frozen head computed by *some*
/// disjunct.  Unlike the plain-CQ case, one disjunct need not cover q by
/// itself (the paper's Example 2).
bool CqacContainedInUnion(const ConjunctiveQuery& q, const UnionQuery& u,
                          ContainmentStats* stats = nullptr);

/// p ⊑ q for unions of CQACs: every disjunct of p contained in q.
bool UnionCqacContained(const UnionQuery& p, const UnionQuery& q);

/// p ≡ q for unions of CQACs.
bool UnionCqacEquivalent(const UnionQuery& p, const UnionQuery& q);

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_CQAC_CONTAINMENT_H_
