#ifndef CQAC_CONTAINMENT_BINDING_TRAIL_H_
#define CQAC_CONTAINMENT_BINDING_TRAIL_H_

#include <cstdint>
#include <vector>

namespace cqac {

/// A trail-based binding store for backtracking search, replacing the
/// copy-per-branch `Substitution` maps of the string engine.
///
/// Variables are dense ids 0..n-1; values are arbitrary non-negative
/// int32 codes (the compiled engines encode variables and constant-pool
/// slots into them).  `Bind` and `Get` are O(1) array accesses; a search
/// node records `Mark()` on entry and calls `UndoTo(mark)` on backtrack,
/// which unbinds exactly the variables bound since — in reverse binding
/// order — without touching earlier bindings and without allocating
/// (the vectors only ever grow).
class BindingTrail {
 public:
  static constexpr int32_t kUnbound = -1;

  /// Resets to `num_vars` unbound variables.  Keeps capacity.
  void Reset(size_t num_vars) {
    bindings_.assign(num_vars, kUnbound);
    trail_.clear();
  }

  /// The binding of `var`, or kUnbound.
  int32_t Get(uint32_t var) const { return bindings_[var]; }

  bool IsBound(uint32_t var) const { return bindings_[var] != kUnbound; }

  /// Binds `var` (which must be unbound) to `value >= 0` and records the
  /// binding on the trail.
  void Bind(uint32_t var, int32_t value) {
    bindings_[var] = value;
    trail_.push_back(var);
  }

  /// The current trail depth; pass to UndoTo to backtrack here.
  size_t Mark() const { return trail_.size(); }

  /// Unbinds every variable bound since `mark`, newest first.
  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      bindings_[trail_.back()] = kUnbound;
      trail_.pop_back();
    }
  }

  /// The variables currently bound, oldest first.
  const std::vector<uint32_t>& trail() const { return trail_; }

  size_t num_vars() const { return bindings_.size(); }

 private:
  std::vector<int32_t> bindings_;
  std::vector<uint32_t> trail_;
};

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_BINDING_TRAIL_H_
