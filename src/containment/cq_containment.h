#ifndef CQAC_CONTAINMENT_CQ_CONTAINMENT_H_
#define CQAC_CONTAINMENT_CQ_CONTAINMENT_H_

#include "ast/query.h"

namespace cqac {

/// Containment, equivalence, and minimization for *plain* conjunctive
/// queries (no comparisons), per Chandra & Merlin: `q1` is contained in
/// `q2` iff there is a containment mapping from `q2` to `q1`.  Inputs with
/// comparisons are rejected by returning false (use cqac_containment.h).

/// True iff q1 ⊑ q2.
bool CqContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// True iff q1 ≡ q2 (containment both ways).
bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// The core of `q`: an equivalent query with a minimal set of subgoals,
/// computed by repeatedly dropping subgoals whose removal preserves
/// equivalence.  Unique up to variable renaming for plain CQs.
ConjunctiveQuery CqMinimize(const ConjunctiveQuery& q);

/// Sagiv–Yannakakis containment of unions of plain CQs: `p ⊑ q` iff every
/// disjunct of `p` is contained in some disjunct of `q`.  (This
/// disjunct-wise criterion is *not* complete once comparisons are present;
/// see UnionCqacContained.)
bool UnionCqContained(const UnionQuery& p, const UnionQuery& q);

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_CQ_CONTAINMENT_H_
