#include "containment/homomorphism.h"

#include <algorithm>
#include <atomic>

#include "containment/binding_trail.h"
#include "containment/compiled_query.h"

namespace cqac {

std::optional<Substitution> UnifyAtomOnto(const Atom& from, const Atom& to,
                                          Substitution base) {
  if (from.predicate() != to.predicate() || from.arity() != to.arity()) {
    return std::nullopt;
  }
  for (int i = 0; i < from.arity(); ++i) {
    const Term& f = from.args()[i];
    const Term& t = to.args()[i];
    if (f.IsConstant()) {
      if (f != t) return std::nullopt;
      continue;
    }
    if (const Term* bound = base.Find(f.name()); bound != nullptr) {
      if (*bound != t) return std::nullopt;
    } else {
      base.Bind(f.name(), t);
    }
  }
  return base;
}

namespace {

/// Compiled containment-mapping search.  Lowers both queries to interned
/// flat form once per check, then backtracks over `from`'s subgoals with:
///   - a trail-based binding store (O(1) bind/lookup, undo-on-backtrack,
///     no allocation per search node) instead of copied Substitution maps;
///   - per-subgoal candidate lists holding only same-predicate/same-arity
///     `to`-atoms whose constant positions already match;
///   - most-constrained-first subgoal ordering: subgoals whose arguments
///     are constants or already-bound variables run first, so conflicts
///     prune near the root.
/// The string Substitution is reconstructed from the trail only for the
/// mappings actually yielded.
class MappingSearch {
 public:
  void Run(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
           const std::function<bool(const Substitution&)>& fn) {
    ctx_.CompileForContainment(from, to);
    const CompiledQuery& cf = ctx_.from();
    const CompiledQuery& ct = ctx_.to();

    trail_.Reset(ctx_.num_from_vars());

    // Seed: the head of `from` must map exactly onto the head of `to`.
    if (cf.head.predicate != ct.head.predicate ||
        cf.head.arity() != ct.head.arity()) {
      return;
    }
    if (!UnifySpan(cf.ArgsOf(cf.head), ct.ArgsOf(ct.head), cf.head.arity())) {
      return;
    }

    BuildCandidates(cf, ct);
    PlanOrder(cf);
    Search(0, fn);
  }

 private:
  /// Unifies `n` from-codes against `n` to-codes under the trail.  On
  /// failure the caller is responsible for undoing to its mark.
  bool UnifySpan(const int32_t* from_args, const int32_t* to_args, int n) {
    for (int i = 0; i < n; ++i) {
      const int32_t f = from_args[i];
      const int32_t t = to_args[i];
      if (IsConstCode(f)) {
        // Shared constant pool: code equality is term equality, and a
        // to-variable code never equals a constant code (tag bit).
        if (f != t) return false;
        continue;
      }
      const uint32_t v = VarOfCode(f);
      const int32_t bound = trail_.Get(v);
      if (bound == BindingTrail::kUnbound) {
        trail_.Bind(v, t);
      } else if (bound != t) {
        return false;
      }
    }
    return true;
  }

  /// candidates_[g] = indices of `to` body atoms with `from` subgoal `g`'s
  /// predicate and arity whose constant positions match.
  void BuildCandidates(const CompiledQuery& cf, const CompiledQuery& ct) {
    candidates_.assign(cf.body.size(), {});
    for (size_t g = 0; g < cf.body.size(); ++g) {
      const CompiledAtom& fa = cf.body[g];
      const int32_t* fargs = cf.ArgsOf(fa);
      std::vector<int>& list = candidates_[g];
      for (size_t t = 0; t < ct.body.size(); ++t) {
        const CompiledAtom& ta = ct.body[t];
        if (ta.predicate != fa.predicate || ta.arity() != fa.arity()) continue;
        const int32_t* targs = ct.ArgsOf(ta);
        bool constants_match = true;
        for (int i = 0; i < fa.arity(); ++i) {
          if (IsConstCode(fargs[i]) && fargs[i] != targs[i]) {
            constants_match = false;
            break;
          }
        }
        if (constants_match) list.push_back(static_cast<int>(t));
      }
    }
  }

  /// Greedy most-constrained-first order over `from`'s subgoals: highest
  /// count of constant-or-bound argument positions first (head variables
  /// start bound via the seed), breaking ties toward the shorter candidate
  /// list, then toward the original subgoal index (determinism).
  void PlanOrder(const CompiledQuery& cf) {
    const size_t n = cf.body.size();
    order_.clear();
    order_.reserve(n);
    scheduled_bound_.assign(ctx_.num_from_vars(), 0);
    for (uint32_t v = 0; v < ctx_.num_from_vars(); ++v) {
      if (trail_.IsBound(v)) scheduled_bound_[v] = 1;
    }
    chosen_.assign(n, 0);
    for (size_t step = 0; step < n; ++step) {
      int best = -1;
      int best_score = -1;
      size_t best_fanout = 0;
      for (size_t g = 0; g < n; ++g) {
        if (chosen_[g]) continue;
        const CompiledAtom& atom = cf.body[g];
        const int32_t* args = cf.ArgsOf(atom);
        int score = 0;
        for (int i = 0; i < atom.arity(); ++i) {
          if (IsConstCode(args[i]) || scheduled_bound_[VarOfCode(args[i])]) {
            ++score;
          }
        }
        const size_t fanout = candidates_[g].size();
        if (score > best_score ||
            (score == best_score && fanout < best_fanout)) {
          best = static_cast<int>(g);
          best_score = score;
          best_fanout = fanout;
        }
      }
      chosen_[best] = 1;
      order_.push_back(best);
      const CompiledAtom& atom = cf.body[best];
      const int32_t* args = cf.ArgsOf(atom);
      for (int i = 0; i < atom.arity(); ++i) {
        if (!IsConstCode(args[i])) scheduled_bound_[VarOfCode(args[i])] = 1;
      }
    }
  }

  /// Returns false when enumeration was stopped by `fn`.
  bool Search(size_t pos, const std::function<bool(const Substitution&)>& fn) {
    if (pos == order_.size()) return Yield(fn);
    const CompiledQuery& cf = ctx_.from();
    const CompiledQuery& ct = ctx_.to();
    const CompiledAtom& fa = cf.body[order_[pos]];
    const int32_t* fargs = cf.ArgsOf(fa);
    for (const int t : candidates_[order_[pos]]) {
      const size_t mark = trail_.Mark();
      if (UnifySpan(fargs, ct.ArgsOf(ct.body[t]), fa.arity())) {
        if (!Search(pos + 1, fn)) return false;
      }
      trail_.UndoTo(mark);
    }
    return true;
  }

  /// Reconstructs the string substitution from the trail for a complete
  /// mapping and hands it to `fn`.
  bool Yield(const std::function<bool(const Substitution&)>& fn) {
    Substitution s;
    for (const uint32_t v : trail_.trail()) {
      const int32_t code = trail_.Get(v);
      s.Bind(ctx_.FromVarName(v),
             IsConstCode(code)
                 ? Term::Constant(ctx_.ConstValue(ConstOfCode(code)))
                 : Term::Variable(ctx_.ToVarName(VarOfCode(code))));
    }
    return fn(s);
  }

  CompileContext ctx_;
  BindingTrail trail_;
  std::vector<std::vector<int>> candidates_;
  std::vector<int> order_;
  std::vector<char> scheduled_bound_;
  std::vector<char> chosen_;
};

/// Legacy reference search (string substitutions copied per branch); kept
/// only for differential testing of the compiled engine.
bool LegacySearchMappings(const ConjunctiveQuery& from,
                          const ConjunctiveQuery& to, size_t next_subgoal,
                          const Substitution& current,
                          const std::function<bool(const Substitution&)>& fn) {
  if (next_subgoal == from.body().size()) return fn(current);
  const Atom& subgoal = from.body()[next_subgoal];
  for (const Atom& target : to.body()) {
    std::optional<Substitution> extended =
        UnifyAtomOnto(subgoal, target, current);
    if (!extended.has_value()) continue;
    if (!LegacySearchMappings(from, to, next_subgoal + 1, *extended, fn)) {
      return false;
    }
  }
  return true;
}

}  // namespace

namespace internal {

namespace {
std::atomic<bool> g_force_legacy_mapping{false};
}  // namespace

void ForceLegacyContainmentMappingForTest(bool forced) {
  g_force_legacy_mapping.store(forced, std::memory_order_relaxed);
}

bool LegacyContainmentMappingForcedForTest() {
  return g_force_legacy_mapping.load(std::memory_order_relaxed);
}

void ForEachContainmentMappingLegacy(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to,
    const std::function<bool(const Substitution&)>& fn) {
  std::optional<Substitution> seed =
      UnifyAtomOnto(from.head(), to.head(), Substitution());
  if (!seed.has_value()) return;
  LegacySearchMappings(from, to, 0, *seed, fn);
}

}  // namespace internal

void ForEachContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to,
    const std::function<bool(const Substitution&)>& fn) {
  if (internal::LegacyContainmentMappingForcedForTest()) {
    internal::ForEachContainmentMappingLegacy(from, to, fn);
    return;
  }
  MappingSearch().Run(from, to, fn);
}

std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  std::optional<Substitution> found;
  ForEachContainmentMapping(from, to,
                            [&found](const Substitution& s) {
                              found = s;
                              return false;  // Stop at the first mapping.
                            });
  return found;
}

std::vector<Substitution> AllContainmentMappings(const ConjunctiveQuery& from,
                                                 const ConjunctiveQuery& to) {
  std::vector<Substitution> out;
  ForEachContainmentMapping(from, to, [&out](const Substitution& s) {
    out.push_back(s);
    return true;
  });
  return out;
}

}  // namespace cqac
