#include "containment/homomorphism.h"

namespace cqac {

std::optional<Substitution> UnifyAtomOnto(const Atom& from, const Atom& to,
                                          Substitution base) {
  if (from.predicate() != to.predicate() || from.arity() != to.arity()) {
    return std::nullopt;
  }
  for (int i = 0; i < from.arity(); ++i) {
    const Term& f = from.args()[i];
    const Term& t = to.args()[i];
    if (f.IsConstant()) {
      if (f != t) return std::nullopt;
      continue;
    }
    if (base.IsBound(f.name())) {
      if (base.Lookup(f.name()) != t) return std::nullopt;
    } else {
      base.Bind(f.name(), t);
    }
  }
  return base;
}

namespace {

/// Backtracks over the subgoals of `from`, mapping each onto some subgoal
/// of `to`.  Returns false when enumeration was stopped by `fn`.
bool SearchMappings(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
                    size_t next_subgoal, const Substitution& current,
                    const std::function<bool(const Substitution&)>& fn) {
  if (next_subgoal == from.body().size()) return fn(current);
  const Atom& subgoal = from.body()[next_subgoal];
  for (const Atom& target : to.body()) {
    std::optional<Substitution> extended =
        UnifyAtomOnto(subgoal, target, current);
    if (!extended.has_value()) continue;
    if (!SearchMappings(from, to, next_subgoal + 1, *extended, fn)) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ForEachContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to,
    const std::function<bool(const Substitution&)>& fn) {
  // The head of `from` must map exactly onto the head of `to`.
  std::optional<Substitution> seed =
      UnifyAtomOnto(from.head(), to.head(), Substitution());
  if (!seed.has_value()) return;
  SearchMappings(from, to, 0, *seed, fn);
}

std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  std::optional<Substitution> found;
  ForEachContainmentMapping(from, to,
                            [&found](const Substitution& s) {
                              found = s;
                              return false;  // Stop at the first mapping.
                            });
  return found;
}

std::vector<Substitution> AllContainmentMappings(const ConjunctiveQuery& from,
                                                 const ConjunctiveQuery& to) {
  std::vector<Substitution> out;
  ForEachContainmentMapping(from, to, [&out](const Substitution& s) {
    out.push_back(s);
    return true;
  });
  return out;
}

}  // namespace cqac
