#include "containment/normalization.h"

#include <string>

namespace cqac {

ConjunctiveQuery NormalizeQuery(const ConjunctiveQuery& q) {
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;
  int counter = 0;
  for (const Atom& atom : q.body()) {
    std::vector<Term> args;
    args.reserve(atom.args().size());
    for (const Term& original : atom.args()) {
      const Term fresh = Term::Variable("_n" + std::to_string(counter++));
      args.push_back(fresh);
      comparisons.push_back(Comparison(fresh, CompOp::kEq, original));
    }
    body.push_back(Atom(atom.predicate(), std::move(args)));
  }
  for (const Comparison& c : q.comparisons()) comparisons.push_back(c);
  return ConjunctiveQuery(q.head(), std::move(body), std::move(comparisons));
}

}  // namespace cqac
