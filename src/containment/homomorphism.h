#ifndef CQAC_CONTAINMENT_HOMOMORPHISM_H_
#define CQAC_CONTAINMENT_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <vector>

#include "ast/query.h"
#include "ast/substitution.h"

namespace cqac {

/// Containment mappings (Chandra & Merlin).  A containment mapping from
/// query `from` to query `to` maps each variable of `from` to a variable
/// or constant of `to` and each constant to itself, such that the head of
/// `from` maps onto the head of `to` and every ordinary subgoal of `from`
/// maps onto some ordinary subgoal of `to`.  Comparison subgoals are
/// ignored here; CQAC containment layers an implication check on top.

/// Finds one containment mapping from `from` to `to`, or nullopt.
std::optional<Substitution> FindContainmentMapping(const ConjunctiveQuery& from,
                                                   const ConjunctiveQuery& to);

/// Enumerates every containment mapping from `from` to `to`, invoking `fn`
/// for each; stops early when `fn` returns false.
void ForEachContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to,
    const std::function<bool(const Substitution&)>& fn);

/// All containment mappings from `from` to `to` (materialized).
std::vector<Substitution> AllContainmentMappings(const ConjunctiveQuery& from,
                                                 const ConjunctiveQuery& to);

/// Extends `base` so that `s.Apply(from) == to` for two same-predicate,
/// same-arity atoms, mapping variables of `from` to the corresponding
/// terms of `to`.  Returns nullopt when predicates/arities differ, a
/// constant of `from` meets a different term of `to`, or a variable of
/// `from` would need two different images.
std::optional<Substitution> UnifyAtomOnto(const Atom& from, const Atom& to,
                                          Substitution base);

namespace internal {

/// Reference implementation of ForEachContainmentMapping that searches over
/// string substitutions (copied per branch).  Exposed only so tests can
/// cross-check the compiled trail-based engine against it; production
/// callers should use ForEachContainmentMapping.
void ForEachContainmentMappingLegacy(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to,
    const std::function<bool(const Substitution&)>& fn);

/// Test-only switch: while forced, ForEachContainmentMapping delegates to
/// ForEachContainmentMappingLegacy.  The two engines emit the same mapping
/// *set* (possibly in a different order — the compiled engine reorders
/// subgoals most-constrained-first), so every exists-a-mapping verdict is
/// identical; the differential fuzzer flips this switch to prove it on
/// whole-algorithm outputs.  Relaxed atomic: flip only while no search is
/// in flight.
void ForceLegacyContainmentMappingForTest(bool forced);
bool LegacyContainmentMappingForcedForTest();

}  // namespace internal

}  // namespace cqac

#endif  // CQAC_CONTAINMENT_HOMOMORPHISM_H_
