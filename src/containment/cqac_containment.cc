#include "containment/cqac_containment.h"

#include <algorithm>

#include "constraints/ac_solver.h"
#include "constraints/orders.h"
#include "containment/homomorphism.h"
#include "containment/normalization.h"
#include "engine/canonical.h"
#include "engine/coded_eval.h"
#include "engine/evaluate.h"
#include "engine/jointree.h"

namespace cqac {

namespace {

void MergeConstants(const std::vector<Rational>& extra,
                    std::vector<Rational>* into) {
  for (const Rational& c : extra) {
    if (std::find(into->begin(), into->end(), c) == into->end()) {
      into->push_back(c);
    }
  }
}

/// The substitution that collapses each variable of `order` to its block's
/// representative term.
Substitution CollapseByOrder(const TotalOrder& order) {
  Substitution s;
  for (const OrderBlock& block : order.blocks) {
    const Term rep = block.Representative();
    for (const std::string& v : block.variables) {
      const Term var = Term::Variable(v);
      if (var != rep) s.Bind(v, rep);
    }
  }
  return s;
}

}  // namespace

bool CqacContainedCanonical(const ConjunctiveQuery& q1,
                            const ConjunctiveQuery& q2,
                            ContainmentStats* stats,
                            const AcyclicPlan* q2_plan) {
  if (!AcSolver::IsSatisfiable(q1.comparisons())) return true;  // q1 empty.
  if (q1.head().arity() != q2.head().arity()) return false;

  std::vector<Rational> constants = q1.Constants();
  MergeConstants(q2.Constants(), &constants);

  // Compile both sides once: q1's subgoals freeze into a flat instance per
  // order, q2 runs as a prepared plan against it.  Head arities match, so
  // ComputesTuple's arity precheck cannot fire.
  //
  // The plan normally executes on the coded columnar engine: the
  // dictionary is primed with every value the enumeration can surface,
  // so each order costs a delta freeze plus an all-integer evaluation
  // with zero heap allocations.  The row engine remains reachable for
  // the differential lattice.
  CanonicalFreezer freezer(q1);
  const PreparedQuery prepared(q2);
  PreparedQuery::Scratch scratch;
  CodedEvaluator coded(&prepared.plan());
  const bool use_row_engine = internal::RowEngineForced();
  if (!use_row_engine) {
    freezer.PrimeDictionary(constants, q1.AllVariables().size());
    coded.BindTo(&freezer);
  }

  // Prefix-pruned, symmetry-reduced enumeration: swapping two
  // interchangeable q1 variables maps each canonical database to an
  // identical one, so the per-order verdict is constant on every orbit
  // and one representative decides it.
  OrderSymmetry symmetry;
  symmetry.groups = InterchangeableVariableGroups(q1);

  bool contained = true;
  OrderEnumerationStats enum_stats;
  AcyclicPlan::Scratch jointree_scratch;
  ForEachSatisfyingOrderPruned(
      q1.AllVariables(), constants, q1.comparisons(), symmetry,
      [&](const TotalOrder& order, int64_t multiplicity) {
        if (stats != nullptr) {
          ++stats->orders_enumerated;
          stats->orders_satisfying += multiplicity;
        }
        const FlatInstance& inst = freezer.Freeze(order);
        const bool computes =
            q2_plan != nullptr
                ? q2_plan->Run(inst, freezer.frozen_head(), &jointree_scratch)
                : (use_row_engine
                       ? prepared.Run(inst, &freezer.frozen_head(), nullptr,
                                      &scratch)
                       : coded.Run(freezer, /*match_frozen_head=*/true,
                                   nullptr));
        if (!computes) {
          contained = false;
          return false;  // Counterexample found; stop enumerating.
        }
        return true;
      },
      stats != nullptr ? &enum_stats : nullptr);
  if (stats != nullptr) {
    stats->nodes_visited += enum_stats.nodes_visited;
    stats->nodes_pruned += enum_stats.nodes_pruned;
  }
  return contained;
}

bool CqacContainedImplication(const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2,
                              ContainmentStats* stats) {
  if (!AcSolver::IsSatisfiable(q1.comparisons())) return true;
  if (q1.head().arity() != q2.head().arity()) return false;

  std::vector<Rational> constants = q1.Constants();
  MergeConstants(q2.Constants(), &constants);

  bool contained = true;
  ForEachSatisfyingOrder(
      q1.AllVariables(), constants, q1.comparisons(),
      [&](const TotalOrder& order) {
        if (stats != nullptr) {
          ++stats->orders_enumerated;
          ++stats->orders_satisfying;
        }
        const std::map<std::string, Rational> assignment =
            order.ToAssignment();
        // Collapse q1 by the order's equalities and look for a containment
        // mapping from q2 whose comparison image holds under the order.
        const ConjunctiveQuery q1_collapsed =
            q1.ApplySubstitution(CollapseByOrder(order));
        bool some_mapping_works = false;
        ForEachContainmentMapping(
            q2, q1_collapsed, [&](const Substitution& mu) {
              std::vector<Comparison> image;
              image.reserve(q2.comparisons().size());
              for (const Comparison& c : q2.comparisons()) {
                image.push_back(mu.Apply(c));
              }
              if (AcSolver::SatisfiedBy(image, assignment)) {
                some_mapping_works = true;
                return false;  // Stop mapping enumeration.
              }
              return true;
            });
        if (!some_mapping_works) {
          contained = false;
          return false;
        }
        return true;
      });
  return contained;
}

bool CqacContainedNormalized(const ConjunctiveQuery& q1,
                             const ConjunctiveQuery& q2,
                             ContainmentStats* stats) {
  if (!AcSolver::IsSatisfiable(q1.comparisons())) return true;
  if (q1.head().arity() != q2.head().arity()) return false;

  const ConjunctiveQuery q1n = NormalizeQuery(q1);
  const ConjunctiveQuery q2n = NormalizeQuery(q2.RenameVariables("_m"));

  std::vector<Rational> constants = q1.Constants();
  MergeConstants(q2.Constants(), &constants);

  bool contained = true;
  ForEachSatisfyingOrder(
      q1n.AllVariables(), constants, q1n.comparisons(),
      [&](const TotalOrder& order) {
        if (stats != nullptr) {
          ++stats->orders_enumerated;
          ++stats->orders_satisfying;
        }
        const std::map<std::string, Rational> assignment =
            order.ToAssignment();
        // Pin every q1n variable to its value; a mapping works when its
        // comparison image admits values for q2's leftover existential
        // variables.
        std::vector<Comparison> pinned;
        for (const auto& [var, value] : assignment) {
          pinned.push_back(Comparison(Term::Variable(var), CompOp::kEq,
                                      Term::Constant(value)));
        }
        const ConjunctiveQuery q1_collapsed =
            q1n.ApplySubstitution(CollapseByOrder(order));
        bool some_mapping_works = false;
        ForEachContainmentMapping(
            q2n, q1_collapsed, [&](const Substitution& mu) {
              std::vector<Comparison> combined = pinned;
              for (const Comparison& c : q2n.comparisons()) {
                combined.push_back(mu.Apply(c));
              }
              if (AcSolver::IsSatisfiable(combined)) {
                some_mapping_works = true;
                return false;
              }
              return true;
            });
        if (!some_mapping_works) {
          contained = false;
          return false;
        }
        return true;
      });
  return contained;
}

bool CqacContainedSingleMapping(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2) {
  if (!AcSolver::IsSatisfiable(q1.comparisons())) return true;
  if (q1.head().arity() != q2.head().arity()) return false;
  bool found = false;
  ForEachContainmentMapping(q2, q1, [&](const Substitution& mu) {
    std::vector<Comparison> image;
    image.reserve(q2.comparisons().size());
    for (const Comparison& c : q2.comparisons()) image.push_back(mu.Apply(c));
    if (AcSolver::ImpliesAll(q1.comparisons(), image)) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

bool IsLeftSemiInterval(const ConjunctiveQuery& q) {
  for (const Comparison& raw : q.comparisons()) {
    Comparison c = raw;
    if (c.rhs().IsVariable() && c.lhs().IsConstant()) c = c.Flipped();
    if (!c.lhs().IsVariable() || !c.rhs().IsConstant()) return false;
    if (c.op() != CompOp::kLt && c.op() != CompOp::kLe &&
        c.op() != CompOp::kEq) {
      return false;
    }
  }
  return true;
}

bool CqacContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return CqacContainedCanonical(q1, q2);
}

bool CqacEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return CqacContained(q1, q2) && CqacContained(q2, q1);
}

bool CqacContainedInUnion(const ConjunctiveQuery& q, const UnionQuery& u,
                          ContainmentStats* stats) {
  if (!AcSolver::IsSatisfiable(q.comparisons())) return true;

  std::vector<Rational> constants = q.Constants();
  for (const ConjunctiveQuery& disjunct : u.disjuncts()) {
    MergeConstants(disjunct.Constants(), &constants);
  }

  CanonicalFreezer freezer(q);
  std::vector<PreparedQuery> prepared;
  prepared.reserve(u.disjuncts().size());
  for (const ConjunctiveQuery& disjunct : u.disjuncts()) {
    prepared.emplace_back(disjunct);
  }
  PreparedQuery::Scratch scratch;
  // Coded engine per disjunct (evaluators hold plan pointers, so the
  // prepared vector must not grow past this point).
  const bool use_row_engine = internal::RowEngineForced();
  std::vector<CodedEvaluator> coded;
  if (!use_row_engine) {
    freezer.PrimeDictionary(constants, q.AllVariables().size());
    coded.reserve(prepared.size());
    for (const PreparedQuery& pq : prepared) {
      coded.emplace_back(&pq.plan());
      coded.back().BindTo(&freezer);
    }
  }

  // Same orbit argument as CqacContainedCanonical: "some disjunct
  // computes the frozen head" is a per-order verdict derived from the
  // canonical database alone.
  OrderSymmetry symmetry;
  symmetry.groups = InterchangeableVariableGroups(q);

  bool contained = true;
  OrderEnumerationStats enum_stats;
  ForEachSatisfyingOrderPruned(
      q.AllVariables(), constants, q.comparisons(), symmetry,
      [&](const TotalOrder& order, int64_t multiplicity) {
        if (stats != nullptr) {
          ++stats->orders_enumerated;
          stats->orders_satisfying += multiplicity;
        }
        const FlatInstance& inst = freezer.Freeze(order);
        bool some_disjunct_computes = false;
        for (size_t i = 0; i < prepared.size(); ++i) {
          const PreparedQuery& pq = prepared[i];
          if (pq.head_arity() != static_cast<int>(freezer.frozen_head().size())) {
            continue;  // ComputesTuple skips arity-mismatched disjuncts.
          }
          const bool computes =
              use_row_engine
                  ? pq.Run(inst, &freezer.frozen_head(), nullptr, &scratch)
                  : coded[i].Run(freezer, /*match_frozen_head=*/true, nullptr);
          if (computes) {
            some_disjunct_computes = true;
            break;
          }
        }
        if (!some_disjunct_computes) {
          contained = false;
          return false;
        }
        return true;
      },
      stats != nullptr ? &enum_stats : nullptr);
  if (stats != nullptr) {
    stats->nodes_visited += enum_stats.nodes_visited;
    stats->nodes_pruned += enum_stats.nodes_pruned;
  }
  return contained;
}

bool UnionCqacContained(const UnionQuery& p, const UnionQuery& q) {
  for (const ConjunctiveQuery& pi : p.disjuncts()) {
    if (!CqacContainedInUnion(pi, q)) return false;
  }
  return true;
}

bool UnionCqacEquivalent(const UnionQuery& p, const UnionQuery& q) {
  return UnionCqacContained(p, q) && UnionCqacContained(q, p);
}

}  // namespace cqac
