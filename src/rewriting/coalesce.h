#ifndef CQAC_REWRITING_COALESCE_H_
#define CQAC_REWRITING_COALESCE_H_

#include "ast/query.h"

namespace cqac {

/// Exact, semantics-preserving compaction of a union of CQACs.  The
/// algorithm's raw output carries one disjunct per canonical database, so
/// unions like
///
///   q(A) :- v(A,A), A < 8        q(P) :- free(P), P < 0
///   q(A) :- v(A,A), A = 8        q(P) :- free(P), P = 0
///                                q(P) :- free(P), 0 < P
///
/// abound.  Within groups of disjuncts sharing head and body, three exact
/// rules are applied to fixpoint:
///
///  * duplicates are dropped;
///  * a disjunct whose comparisons imply another's is subsumed by it;
///  * two disjuncts differing in exactly one comparison over the same
///    terms merge when the pair is a logical identity over a total order:
///    `< ∨ =` gives `<=`, `> ∨ =` gives `>=`, and complementary pairs
///    (`<= ∨ >`, `< ∨ >=`, `<= ∨ >=`) make the comparison vanish.
///
/// The examples above become `q(A) :- v(A,A), A <= 8` and
/// `q(P) :- free(P)`.  Every step preserves the union's semantics
/// exactly, so the result is still an equivalent rewriting.
UnionQuery CoalesceUnion(const UnionQuery& u);

}  // namespace cqac

#endif  // CQAC_REWRITING_COALESCE_H_
