#ifndef CQAC_REWRITING_VIEW_TUPLES_H_
#define CQAC_REWRITING_VIEW_TUPLES_H_

#include <map>
#include <string>
#include <vector>

#include "ast/atom.h"
#include "engine/canonical.h"
#include "rewriting/view_set.h"

namespace cqac {

/// The view tuples of one canonical database (the paper's `T_i(V)`,
/// Section 2.5 / Phase 1 step 3.1): for each view, both the ground result
/// of applying the view definition to the canonical database and its
/// unfrozen form over the query's variables.
struct ViewTuples {
  /// Ground tuples per view name: `V(D_i)` as evaluated (comparisons of
  /// the view checked against the database's rational values, which
  /// realizes the paper's "the total order must satisfy the ACs of the
  /// views").
  std::map<std::string, std::vector<Tuple>> ground;

  /// Unfrozen tuples per view name: each value mapped back to its order
  /// block's representative term.
  std::map<std::string, std::vector<Atom>> unfrozen;

  /// Total number of ground tuples across all views.
  int64_t total = 0;

  bool empty() const { return total == 0; }
};

/// Applies every view to the canonical database and unfreezes the results.
ViewTuples ComputeViewTuples(const ViewSet& views,
                             const CanonicalDatabase& cdb);

/// Definition 2 of the paper: `more_relaxed` is a more relaxed form of
/// `tuple` iff there is a containment mapping from `more_relaxed` to
/// `tuple` (same predicate, variables mapped positionally and
/// consistently, constants fixed).  E.g. `v(A,B)` is a more relaxed form
/// of `v(A,A)` but not vice versa.
bool IsMoreRelaxedForm(const Atom& more_relaxed, const Atom& tuple);

/// The pruning test of Phase 1 step 3.4, grounded on the canonical
/// database: keeps an MCD view tuple iff, with the query's variables
/// frozen to their canonical values (fresh/existential variables free but
/// consistent), it matches some ground tuple that the view produced on the
/// database.  This is the canonical-database shadow of Definition 2 — the
/// matched ground tuple unfreezes to a `T_i(V)` member of which the MCD
/// tuple is a more relaxed form — and it additionally guarantees that the
/// Pre-Rewriting built from the kept tuples computes the query's frozen
/// head on the database (the paper's Lemma 2).
bool MatchesFrozenViewTuple(const Atom& mcd_tuple, const ViewTuples& tuples,
                            const CanonicalDatabase& cdb);

}  // namespace cqac

#endif  // CQAC_REWRITING_VIEW_TUPLES_H_
