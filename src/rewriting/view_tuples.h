#ifndef CQAC_REWRITING_VIEW_TUPLES_H_
#define CQAC_REWRITING_VIEW_TUPLES_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <optional>

#include "ast/atom.h"
#include "engine/canonical.h"
#include "engine/coded_eval.h"
#include "engine/evaluate.h"
#include "rewriting/view_set.h"

namespace cqac {

/// The view tuples of one canonical database (the paper's `T_i(V)`,
/// Section 2.5 / Phase 1 step 3.1): for each view, both the ground result
/// of applying the view definition to the canonical database and its
/// unfrozen form over the query's variables.
struct ViewTuples {
  /// Ground tuples per view name: `V(D_i)` as evaluated (comparisons of
  /// the view checked against the database's rational values, which
  /// realizes the paper's "the total order must satisfy the ACs of the
  /// views").
  std::map<std::string, std::vector<Tuple>> ground;

  /// Unfrozen tuples per view name: each value mapped back to its order
  /// block's representative term.
  std::map<std::string, std::vector<Atom>> unfrozen;

  /// Total number of ground tuples across all views.
  int64_t total = 0;

  bool empty() const { return total == 0; }
};

/// Applies every view to the canonical database and unfreezes the results.
ViewTuples ComputeViewTuples(const ViewSet& views,
                             const CanonicalDatabase& cdb);

/// Definition 2 of the paper: `more_relaxed` is a more relaxed form of
/// `tuple` iff there is a containment mapping from `more_relaxed` to
/// `tuple` (same predicate, variables mapped positionally and
/// consistently, constants fixed).  E.g. `v(A,B)` is a more relaxed form
/// of `v(A,A)` but not vice versa.
bool IsMoreRelaxedForm(const Atom& more_relaxed, const Atom& tuple);

/// The pruning test of Phase 1 step 3.4, grounded on the canonical
/// database: keeps an MCD view tuple iff, with the query's variables
/// frozen to their canonical values (fresh/existential variables free but
/// consistent), it matches some ground tuple that the view produced on the
/// database.  This is the canonical-database shadow of Definition 2 — the
/// matched ground tuple unfreezes to a `T_i(V)` member of which the MCD
/// tuple is a more relaxed form — and it additionally guarantees that the
/// Pre-Rewriting built from the kept tuples computes the query's frozen
/// head on the database (the paper's Lemma 2).
bool MatchesFrozenViewTuple(const Atom& mcd_tuple, const ViewTuples& tuples,
                            const CanonicalDatabase& cdb);

/// Compiled Phase-1 view evaluation over a CanonicalFreezer's flat
/// instance: one PreparedQuery per view, built once per run instead of
/// once per canonical database, with each view's ground output cached and
/// recomputed only when a relation the view references changed since the
/// view's last evaluation (the freezer's per-relation change epochs).
/// Under delta freezing, an order step that only moved variables absent
/// from a view's body costs that view nothing.
///
/// Ground outputs are identical to ComputeViewTuples' (same set-sorted
/// tuples per view); unfreezing is left to the caller, which typically
/// needs it for a small minority of databases.  Not thread-safe; use one
/// per thread alongside its freezer.
class ViewTupleEvaluator {
 public:
  explicit ViewTupleEvaluator(const ViewSet& views);

  /// Brings every view's cached output up to date with `freezer`'s current
  /// instance.  The freezer must be the same object across calls (change
  /// epochs are compared against it).  Non-const because the coded engine
  /// interns the views' constants into the freezer's dictionary on first
  /// refresh; ground outputs are decoded back to `Rational` relations, so
  /// downstream consumers (FrozenTupleMatcher, unfreezing) are unchanged.
  void Refresh(CanonicalFreezer& freezer);

  int view_count() const { return static_cast<int>(views_.size()); }
  const std::string& view_name(int i) const { return views_[i].name; }

  /// View `i`'s ground tuples on the last refreshed instance.
  const Relation& ground(int i) const { return views_[i].output; }

  /// Indices (ascending) of the views named `name`, or nullptr when none.
  const std::vector<int>* ViewsNamed(const std::string& name) const;

  /// Total ground tuples across all views (ViewTuples::total).
  int64_t total() const { return total_; }

 private:
  struct PerView {
    std::string name;
    PreparedQuery plan;
    /// Distinct (predicate, arity) pairs of the view's body.
    std::vector<std::pair<std::string, int>> referenced;
    /// referenced resolved against the freezer's instance (stable: the
    /// instance's relation set is fixed at freezer construction).
    std::vector<uint32_t> rel_ids;
    /// Coded engine over `plan`'s compiled form; constructed on first
    /// Refresh (after views_ stops moving, so the plan pointer is
    /// stable) unless the row engine is forced.
    std::optional<CodedEvaluator> coded;
    Relation output;
    uint64_t evaluated_epoch = 0;  // 0 = never evaluated
  };

  std::vector<PerView> views_;
  std::map<std::string, std::vector<int>> by_name_;
  PreparedQuery::Scratch scratch_;
  int64_t total_ = 0;
  bool rel_ids_resolved_ = false;
};

/// Indexed replacement for calling MatchesFrozenViewTuple once per MCD
/// candidate: the candidates' view tuples are compiled once per run into
/// (pinned positions, fresh-variable equality classes) patterns, and each
/// canonical database builds, per distinct (view, pinned-position set), a
/// key-sorted index over the view's ground tuples — so a candidate probe
/// is one binary search plus consistency checks on the narrowed range,
/// instead of a scan of every ground tuple with per-position map lookups.
///
/// A tuple position is pinned when it holds a constant or a variable with
/// a freezer slot (a query body/head variable, frozen to its canonical
/// value); all other variables are MCD-fresh and only constrain matching
/// through repeated use.  Verdicts are identical to
/// MatchesFrozenViewTuple's.  Not thread-safe; use one per thread.
class FrozenTupleMatcher {
 public:
  /// Compiles `tuples` (typically the run's MCD view tuples, in MCD order)
  /// against `freezer`'s slot map.  The freezer must outlive the matcher
  /// and is re-read on every probe for the current frozen values.
  FrozenTupleMatcher(std::vector<Atom> tuples,
                     const CanonicalFreezer& freezer);

  /// Rebinds to the current canonical database; `ev` must have been
  /// refreshed against the constructor's freezer and must stay unchanged
  /// until the next BindDatabase.
  void BindDatabase(const ViewTupleEvaluator& ev);

  /// Whether tuples[i] matches some ground view tuple of the bound
  /// database (MatchesFrozenViewTuple semantics).
  bool Matches(size_t i);

 private:
  struct Position {
    enum Kind : uint8_t { kConst, kSlot, kFree };
    Kind kind;
    uint32_t slot = 0;  // freezer slot when kSlot
    Rational value;     // pinned constant when kConst
  };
  struct Pattern {
    std::vector<Position> positions;
    /// Positions sharing one fresh variable (classes of size >= 2 only).
    std::vector<std::vector<int>> equal_groups;
    int index_id = 0;
  };
  /// One shared index per distinct (view name, arity, pinned positions).
  struct IndexData {
    std::string name;
    int arity = 0;
    std::vector<int> pinned;  // ascending positions forming the key
    bool built = false;
    /// (key = values at pinned positions, ground tuple), sorted by key.
    std::vector<std::pair<std::vector<Rational>, const Tuple*>> entries;
  };

  void BuildIndex(IndexData* index);
  bool MatchesUncached(const Pattern& pattern);

  const CanonicalFreezer& freezer_;
  const ViewTupleEvaluator* ev_ = nullptr;
  std::vector<Pattern> patterns_;
  std::vector<IndexData> indexes_;
  std::vector<Rational> probe_;  // scratch key
  /// Tuples equal up to a renaming of their fresh variables have the same
  /// verdict on every database; they share a verdict class, probed once
  /// per BindDatabase.
  std::vector<int> class_of_;
  int num_classes_ = 0;
  std::vector<signed char> verdicts_;  // class -> -1 unknown / 0 / 1
};

}  // namespace cqac

#endif  // CQAC_REWRITING_VIEW_TUPLES_H_
