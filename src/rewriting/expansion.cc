#include "rewriting/expansion.h"

#include <string>

#include "constraints/ac_solver.h"
#include "containment/homomorphism.h"

namespace cqac {

ConjunctiveQuery Expand(const ConjunctiveQuery& rewriting,
                        const ViewSet& views) {
  std::vector<Atom> body;
  std::vector<Comparison> comparisons = rewriting.comparisons();
  int counter = 0;
  for (const Atom& subgoal : rewriting.body()) {
    const ConjunctiveQuery* view = views.Find(subgoal.predicate());
    if (view == nullptr) {
      body.push_back(subgoal);  // Base relation; copy through.
      continue;
    }
    // Rename the whole view apart, then unify its head with the subgoal.
    const std::string prefix = "_e" + std::to_string(counter++) + "_";
    const ConjunctiveQuery renamed = view->RenameVariables(prefix);

    Substitution theta;  // view head var -> subgoal argument.
    const int arity = std::min(renamed.head().arity(), subgoal.arity());
    for (int i = 0; i < arity; ++i) {
      const Term& head_term = renamed.head().args()[i];
      const Term& arg = subgoal.args()[i];
      if (head_term.IsConstant()) {
        // Head constant: the subgoal argument must equal it.
        if (arg != head_term) {
          comparisons.push_back(Comparison(arg, CompOp::kEq, head_term));
        }
        continue;
      }
      if (theta.IsBound(head_term.name())) {
        // Repeated head variable: equate this argument with the first one.
        const Term& first = theta.Lookup(head_term.name());
        if (first != arg) {
          comparisons.push_back(Comparison(first, CompOp::kEq, arg));
        }
      } else {
        theta.Bind(head_term.name(), arg);
      }
    }
    for (const Atom& view_atom : renamed.body()) {
      body.push_back(theta.Apply(view_atom));
    }
    for (const Comparison& view_comp : renamed.comparisons()) {
      comparisons.push_back(theta.Apply(view_comp));
    }
  }
  return ConjunctiveQuery(rewriting.head(), std::move(body),
                          std::move(comparisons));
}

UnionQuery Expand(const UnionQuery& rewriting, const ViewSet& views) {
  UnionQuery out;
  for (const ConjunctiveQuery& disjunct : rewriting.disjuncts()) {
    out.Add(Expand(disjunct, views));
  }
  return out;
}

std::optional<ConjunctiveQuery> SimplifyQuery(const ConjunctiveQuery& q) {
  const std::optional<Substitution> forced =
      AcSolver::ForcedEqualities(q.comparisons());
  if (!forced.has_value()) return std::nullopt;  // Unsatisfiable.
  ConjunctiveQuery collapsed = q.ApplySubstitution(*forced);
  std::vector<Comparison> cleaned =
      AcSolver::RemoveRedundant(collapsed.comparisons());
  ConjunctiveQuery result(collapsed.head(), collapsed.body(),
                          std::move(cleaned));
  result = FoldExistentialVariables(result.Deduplicated());
  return result;
}

namespace {

/// Backtracking search for a folding homomorphism: maps every body atom
/// into `body` minus the atom at `victim`, extending `theta`.  Atoms are
/// chosen most-constrained-first (most already-bound variables), which
/// keeps the branching factor near one on chain-shaped bodies even when
/// all atoms share a predicate.  At the leaf, checks that the query's
/// comparisons imply their own image under theta.  `budget` bounds
/// unification attempts; exhaustion means "no fold found".
bool SearchFold(const std::vector<Atom>& body,
                const std::vector<Comparison>& comparisons,
                std::vector<bool>& mapped, int remaining, size_t victim,
                const Substitution& theta, int* budget, Substitution* out) {
  if (remaining == 0) {
    for (const Comparison& c : comparisons) {
      if (!AcSolver::Implies(comparisons, theta.Apply(c))) return false;
    }
    *out = theta;
    return true;
  }
  // Pick the unmapped atom with the most bound variables.
  int best = -1;
  int best_bound = -1;
  for (size_t i = 0; i < body.size(); ++i) {
    if (mapped[i]) continue;
    int bound = 0;
    for (const Term& t : body[i].args()) {
      if (t.IsConstant() || theta.IsBound(t.name())) ++bound;
    }
    if (bound > best_bound) {
      best_bound = bound;
      best = static_cast<int>(i);
    }
  }
  mapped[best] = true;
  for (size_t target = 0; target < body.size(); ++target) {
    if (target == victim) continue;
    if (--*budget <= 0) break;
    std::optional<Substitution> extended =
        UnifyAtomOnto(body[best], body[target], theta);
    if (!extended.has_value()) continue;
    if (SearchFold(body, comparisons, mapped, remaining - 1, victim,
                   *extended, budget, out)) {
      mapped[best] = false;
      return true;
    }
  }
  mapped[best] = false;
  return false;
}

/// Cheap pre-pass: folds a single existential variable x onto a term t
/// when every subgoal containing x maps into the body and every
/// comparison containing x stays implied.  Handles the bulk of the
/// redundancy before the full homomorphism search runs.
bool TrySingleVariableFold(ConjunctiveQuery* current) {
  const std::vector<std::string> candidates =
      current->NondistinguishedVariables();
  std::vector<Term> targets;
  for (const Atom& a : current->body()) {
    for (const Term& t : a.args()) {
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
  }
  for (const std::string& x : candidates) {
    const Term x_term = Term::Variable(x);
    for (const Term& target : targets) {
      if (target == x_term) continue;
      Substitution theta;
      theta.Bind(x, target);
      bool foldable = true;
      for (const Atom& a : current->body()) {
        if (std::find(a.args().begin(), a.args().end(), x_term) ==
            a.args().end()) {
          continue;
        }
        const Atom image = theta.Apply(a);
        if (std::find(current->body().begin(), current->body().end(),
                      image) == current->body().end()) {
          foldable = false;
          break;
        }
      }
      if (!foldable) continue;
      for (const Comparison& c : current->comparisons()) {
        if (c.lhs() != x_term && c.rhs() != x_term) continue;
        if (!AcSolver::Implies(current->comparisons(), theta.Apply(c))) {
          foldable = false;
          break;
        }
      }
      if (!foldable) continue;
      const ConjunctiveQuery folded = current->ApplySubstitution(theta);
      *current = ConjunctiveQuery(
                     folded.head(), folded.body(),
                     AcSolver::RemoveRedundant(folded.comparisons()))
                     .Deduplicated();
      return true;
    }
  }
  return false;
}

}  // namespace

ConjunctiveQuery FoldExistentialVariables(const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q.Deduplicated();
  // Fast single-variable folds first.
  while (TrySingleVariableFold(&current)) {
  }
  bool changed = true;
  while (changed) {
    changed = false;
    if (current.body().size() <= 1) break;
    // The homomorphism must fix the head: seed with the identity on the
    // head variables.
    Substitution seed;
    for (const std::string& hv : current.HeadVariables()) {
      seed.Bind(hv, Term::Variable(hv));
    }
    for (size_t victim = 0; victim < current.body().size(); ++victim) {
      int budget = 50000;
      Substitution theta;
      std::vector<bool> mapped(current.body().size(), false);
      if (!SearchFold(current.body(), current.comparisons(), mapped,
                      static_cast<int>(current.body().size()), victim, seed,
                      &budget, &theta)) {
        continue;
      }
      const ConjunctiveQuery folded = current.ApplySubstitution(theta);
      current = ConjunctiveQuery(
                    folded.head(), folded.body(),
                    AcSolver::RemoveRedundant(folded.comparisons()))
                    .Deduplicated();
      while (TrySingleVariableFold(&current)) {
      }
      changed = true;
      break;
    }
  }
  return current;
}

}  // namespace cqac
