#ifndef CQAC_REWRITING_INVERSE_RULES_H_
#define CQAC_REWRITING_INVERSE_RULES_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/query.h"
#include "engine/database.h"
#include "rewriting/view_set.h"

namespace cqac {

/// The inverse-rules algorithm (Duschka & Genesereth), the third classical
/// rewriting substrate the paper's related work lists next to the bucket
/// algorithm and MiniCon.  Views are "inverted": each body atom of a view
/// becomes a rule deriving that base relation from the view's head, with
/// the view's nondistinguished variables replaced by Skolem terms over the
/// head variables.  For
///
///   v(X,Z) :- e(X,Y), e(Y,Z)
///
/// the inverse rules are
///
///   e(X, f_v,Y(X,Z)) :- v(X,Z)
///   e(f_v,Y(X,Z), Z) :- v(X,Z)
///
/// Evaluating the original query over the facts these rules derive from a
/// view extension — and discarding any answer still containing a Skolem
/// term — yields exactly the certain answers (the maximally-contained
/// rewriting's output) for plain conjunctive queries and views.
///
/// This module is self-contained: Skolem terms only ever appear applied
/// to concrete values (the view tuples' constants), so a one-level
/// constant-or-Skolem value domain suffices.

/// One argument position of an inverse rule's head: either a view head
/// variable carried through, or a Skolem function of all head variables,
/// standing for one nondistinguished variable of the view.
struct InverseRuleTerm {
  bool is_skolem = false;

  /// The carried head variable, or the Skolemized nondistinguished
  /// variable's name.  Empty when `constant` is set.
  std::string variable;

  /// A constant of the view body carried through verbatim.
  std::optional<Rational> constant;
};

/// One inverse rule: `predicate(args) :- view_name(head vars)`.
struct InverseRule {
  int view_index = 0;
  std::string view_name;
  std::vector<std::string> view_head_vars;
  std::string predicate;
  std::vector<InverseRuleTerm> args;

  /// Renders as `e(X,f_v,Y(X,Z)) :- v(X,Z)`.
  std::string ToString() const;
};

/// Builds the inverse rules of every view.  Comparisons are ignored (the
/// classical algorithm addresses plain CQs; a view's comparisons were
/// already enforced when its extension was materialized).  Views with
/// repeated head variables or constants in the head are handled by
/// matching, not rejected.
std::vector<InverseRule> BuildInverseRules(const ViewSet& views);

/// A value in the inverse-rules evaluation: a constant or a ground Skolem
/// term `f_{view,var}(c1, ..., ck)`.
struct SkolemValue {
  int view_index = 0;
  std::string variable;
  std::vector<Rational> args;

  friend bool operator==(const SkolemValue& a, const SkolemValue& b) {
    return a.view_index == b.view_index && a.variable == b.variable &&
           a.args == b.args;
  }
  friend bool operator<(const SkolemValue& a, const SkolemValue& b);

  std::string ToString() const;
};

/// Computes the certain answers of a *plain conjunctive* query over a
/// view extension (a database whose relations are named after the views),
/// by applying the inverse rules once and evaluating the query over the
/// derived facts, keeping only answers free of Skolem terms.
///
/// Returns an empty relation when the query has comparisons (out of the
/// algorithm's scope).
Relation AnswerViaInverseRules(const ConjunctiveQuery& query,
                               const ViewSet& views,
                               const Database& view_extension);

}  // namespace cqac

#endif  // CQAC_REWRITING_INVERSE_RULES_H_
