#ifndef CQAC_REWRITING_EXPANSION_H_
#define CQAC_REWRITING_EXPANSION_H_

#include <optional>

#include "ast/query.h"
#include "rewriting/view_set.h"

namespace cqac {

/// Expands a rewriting — a CQAC whose ordinary subgoals are view atoms —
/// into a CQAC over the base schema by inlining each view definition with
/// fresh nondistinguished variables.
///
/// For each view subgoal `v(t1..tn)`: the view's body is renamed apart and
/// its head variables are unified with the subgoal's arguments.  Repeated
/// head variables or head constants in the view definition (which arise
/// from exported-variable variants, e.g. `v1(X,X,W)` in the paper's
/// Example 6) induce equality comparisons between the corresponding
/// subgoal arguments.  The view's own comparisons are carried into the
/// expansion.
///
/// Subgoals whose predicate is not in `views` are treated as base
/// relations and copied through unchanged (so the function is harmless on
/// partially-rewritten queries).
ConjunctiveQuery Expand(const ConjunctiveQuery& rewriting,
                        const ViewSet& views);

/// Expands every disjunct.
UnionQuery Expand(const UnionQuery& rewriting, const ViewSet& views);

/// Equivalence-preserving cleanup used after expansion: applies the
/// equalities forced by the comparisons (collapsing variables onto
/// representatives and constants), drops comparisons implied by the rest,
/// and deduplicates subgoals.  Returns nullopt when the comparisons are
/// unsatisfiable (the query computes nothing).
///
/// This mirrors the paper's Example 8, where
/// `PR1(A) :- r(X), s(A,A), A < 8, A <= X, X <= A` simplifies to
/// `PR1(A) :- r(A), s(A,A), A < 8`, and it is what keeps the Phase-2
/// canonical-database enumeration tractable.
std::optional<ConjunctiveQuery> SimplifyQuery(const ConjunctiveQuery& q);

/// Equivalence-preserving minimization of a CQAC by folding
/// homomorphisms, the comparison-aware analogue of conjunctive-query
/// minimization.  A substitution theta that (a) is the identity on the
/// head variables, (b) maps every ordinary subgoal onto a subgoal of the
/// query minus some victim atom, and (c) has its comparison image implied
/// by the query's comparisons, witnesses `q == theta(q)`:
///
///   * `theta(q) ⊑ q` because theta itself is a containment mapping whose
///     comparison image `theta(beta)` is trivially implied by
///     `theta(q)`'s own comparisons, and
///   * `q ⊑ theta(q)` because `theta(body) ⊆ body` makes the identity
///     work on every canonical database, with (c) covering the
///     comparisons.
///
/// Expansions of Pre-Rewritings are full of foldable material (each
/// redundant view tuple contributes a fresh copy of the view's body);
/// folding it away is what keeps the Phase-2 containment check's exponent
/// small.  The search per victim atom is budgeted; when the budget runs
/// out the atom is simply kept (correctness is unaffected).
ConjunctiveQuery FoldExistentialVariables(const ConjunctiveQuery& q);

}  // namespace cqac

#endif  // CQAC_REWRITING_EXPANSION_H_
