#include "rewriting/explain.h"

namespace cqac {

std::string TableauToString(const RewriteTrace& trace) {
  std::string out;
  out += "two-column tableau (Figure 3):\n";
  out += "  Q satisfies db        | Q does not satisfy db\n";
  out += "  ----------------------+----------------------\n";
  const size_t rows =
      std::max(trace.left_column.size(), trace.right_column.size());
  for (size_t i = 0; i < rows; ++i) {
    std::string left =
        i < trace.left_column.size() ? trace.left_column[i] : "";
    left.resize(22, ' ');
    out += "  " + left + "| ";
    if (i < trace.right_column.size()) out += trace.right_column[i];
    out += "\n";
  }
  out += "\nper-database log:\n";
  for (const CanonicalDatabaseTrace& db : trace.databases) {
    out += "  [" + db.order + "] " + db.status;
    if (db.computes_head) {
      out += "  tuples=" + std::to_string(db.view_tuples) +
             " kept_mcds=" + std::to_string(db.kept_mcds);
    }
    if (!db.pre_rewriting.empty()) {
      out += "\n      PR: " + db.pre_rewriting;
    }
    out += "\n";
  }
  return out;
}

}  // namespace cqac
