#include "rewriting/structure.h"

#include <algorithm>
#include <functional>

#include "ast/hypergraph.h"

namespace cqac {

namespace {

/// Cheap name signature for GridVerdictCache's single-probe lookup table.
inline size_t NameSlot(const std::string& name) {
  const size_t len = name.size();
  const unsigned char first = len != 0 ? name.front() : 0;
  const unsigned char last = len != 0 ? name.back() : 0;
  return (first * 131 + last * 31 + len) & 255;
}

/// The first comparison with variables on both sides, or nullptr.
const Comparison* FirstVarVarComparison(const ConjunctiveQuery& q) {
  for (const Comparison& c : q.comparisons()) {
    if (c.lhs().IsVariable() && c.rhs().IsVariable()) return &c;
  }
  return nullptr;
}

bool ComparisonFree(const ConjunctiveQuery& query, const ViewSet& views) {
  if (!query.comparisons().empty()) return false;
  for (const ConjunctiveQuery& v : views.views()) {
    if (!v.comparisons().empty()) return false;
  }
  return true;
}

}  // namespace

const char* TierName(ExecutionTier tier) {
  switch (tier) {
    case ExecutionTier::kGeneral:
      return "tier0";
    case ExecutionTier::kSemiInterval:
      return "tier1";
    case ExecutionTier::kAcyclic:
      return "tier2";
  }
  return "tier?";
}

TierDecision ClassifyStructure(const ConjunctiveQuery& query,
                               const ViewSet& views) {
  TierDecision d;

  const Comparison* query_var_var = FirstVarVarComparison(query);
  const Comparison* view_var_var = nullptr;
  for (const ConjunctiveQuery& v : views.views()) {
    if ((view_var_var = FirstVarVarComparison(v)) != nullptr) break;
  }
  d.semi_interval_eligible =
      query_var_var == nullptr && view_var_var == nullptr;

  const bool comparison_free = ComparisonFree(query, views);
  d.acyclic_eligible =
      comparison_free && !query.body().empty() && IsAcyclic(query);

  if (d.acyclic_eligible) {
    d.tier = ExecutionTier::kAcyclic;
    d.reason =
        "comparison-free query and views with a GYO-acyclic hypergraph: "
        "join-tree keep test plus grid verdict cache";
  } else if (d.semi_interval_eligible) {
    d.tier = ExecutionTier::kSemiInterval;
    if (comparison_free) {
      d.reason =
          "comparison-free but the query hypergraph is cyclic: grid "
          "verdict cache without the join-tree engine";
    } else {
      d.reason =
          "every comparison on the query and views is var-vs-const "
          "(semi-interval): keep-test verdicts cached per constant-grid "
          "class";
    }
  } else {
    d.tier = ExecutionTier::kGeneral;
    const Comparison* blocker =
        query_var_var != nullptr ? query_var_var : view_var_var;
    d.reason = "variable-variable comparison " + blocker->ToString() +
               (query_var_var != nullptr ? " on the query"
                                         : " on a view") +
               " blocks the semi-interval tier";
  }
  return d;
}

TierDecision ResolveTier(const TierDecision& classified, int force_tier) {
  if (force_tier < 0) return classified;
  TierDecision d = classified;
  switch (force_tier) {
    case 0:
      d.tier = ExecutionTier::kGeneral;
      d.reason = "forced tier0 (--force-tier 0)";
      return d;
    case 1:
      if (classified.semi_interval_eligible) {
        d.tier = ExecutionTier::kSemiInterval;
        d.reason = "forced tier1 (--force-tier 1; semi-interval eligible)";
      } else {
        d.tier = ExecutionTier::kGeneral;
        d.reason = "forced tier1 ineligible (" + classified.reason +
                   "); falling back to the general path";
      }
      return d;
    case 2:
      if (classified.acyclic_eligible) {
        d.tier = ExecutionTier::kAcyclic;
        d.reason = "forced tier2 (--force-tier 2; acyclic eligible)";
      } else {
        d.tier = ExecutionTier::kGeneral;
        d.reason = "forced tier2 ineligible (" + classified.reason +
                   "); falling back to the general path";
      }
      return d;
    default:
      d.tier = ExecutionTier::kGeneral;
      d.reason = "unknown forced tier " + std::to_string(force_tier) +
                 "; falling back to the general path";
      return d;
  }
}

GridVerdictCache::GridVerdictCache(const std::vector<std::string>& variables) {
  var_index_.reserve(variables.size());
  for (const std::string& v : variables) {
    var_index_.emplace_back(v, static_cast<int>(var_index_.size()));
  }
  std::sort(var_index_.begin(), var_index_.end());
  std::fill(lookup_, lookup_ + kLookupSlots, -1);
  for (size_t i = 0; i < var_index_.size(); ++i) {
    lookup_[NameSlot(var_index_[i].first)] = static_cast<int>(i);
  }
  shards_.reserve(kNumShards);
  for (int i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void GridVerdictCache::BuildKey(const TotalOrder& order,
                                std::string* key) const {
  // Fixed-length binary key: one (canonical block id, grid cell) byte pair
  // per registered variable, in registration order.  Canonical block ids
  // are assigned by first appearance while scanning variables in
  // registration order, so two orders collide exactly when they induce the
  // same variable partition with each block in the same grid cell —
  // intra-cell block rank never reaches the key.  Constant-only blocks are
  // identical across all orders and add nothing.
  const size_t n = var_index_.size();
  thread_local std::vector<int> cell_of, block_of, canon;
  cell_of.assign(n, -1);
  block_of.assign(n, -1);
  canon.assign(n + 1, -1);
  int constants_seen = 0;
  int block_seq = 0;
  for (const OrderBlock& b : order.blocks) {
    int cell;
    if (b.constant.has_value()) {
      cell = 2 * constants_seen + 1;
      ++constants_seen;
    } else {
      cell = 2 * constants_seen;
    }
    if (b.variables.empty()) continue;
    for (const std::string& v : b.variables) {
      int index = -1;
      const int probe = lookup_[NameSlot(v)];
      if (probe >= 0 && var_index_[probe].first == v) {
        index = var_index_[probe].second;
      } else {
        const auto it = std::lower_bound(
            var_index_.begin(), var_index_.end(), v,
            [](const std::pair<std::string, int>& e, const std::string& name) {
              return e.first < name;
            });
        if (it == var_index_.end() || it->first != v) continue;
        index = it->second;
      }
      cell_of[index] = cell;
      block_of[index] = block_seq;
    }
    ++block_seq;
  }
  key->clear();
  int next_id = 0;
  for (size_t i = 0; i < n; ++i) {
    const int seq = block_of[i];
    int id = -1;
    if (seq >= 0) {
      if (canon[seq] < 0) canon[seq] = next_id++;
      id = canon[seq];
    }
    key->push_back(static_cast<char>('A' + id + 1));
    key->push_back(static_cast<char>('A' + cell_of[i] + 1));
  }
}

GridVerdictCache::Shard& GridVerdictCache::ShardFor(
    const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % kNumShards];
}

std::optional<bool> GridVerdictCache::Get(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.verdicts.find(key);
  if (it == shard.verdicts.end()) return std::nullopt;
  return it->second;
}

void GridVerdictCache::Put(const std::string& key, bool kept) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.verdicts.emplace(key, kept);
}

size_t GridVerdictCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->verdicts.size();
  }
  return total;
}

}  // namespace cqac
