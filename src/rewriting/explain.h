#ifndef CQAC_REWRITING_EXPLAIN_H_
#define CQAC_REWRITING_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cqac {

/// A per-canonical-database trace of the algorithm — the machine-readable
/// form of the paper's two-column tableau (Figure 3) extended with the
/// Phase-1 bookkeeping of Figure 2.  Collected when
/// `RewriteOptions::explain` is set; rendering is via TableauToString.
struct CanonicalDatabaseTrace {
  /// The total order, e.g. "A < 8" (the tableau's row label).
  std::string order;

  /// Whether the query computes its frozen head here (databases that do
  /// not are skipped by Phase 1 step 2).
  bool computes_head = false;

  /// |T_i(V)|: ground view tuples the database produced.
  int64_t view_tuples = 0;

  /// MCDs surviving the step-3.4 pruning (of stats.mcds_formed).
  int64_t kept_mcds = 0;

  /// Whether MiniCon phase 2 found a covering combination.
  bool combination_exists = false;

  /// The Pre-Rewriting PR_i' (with the order constraints attached); empty
  /// when the database was skipped or failed earlier.
  std::string pre_rewriting;

  /// Phase 2's verdict: the expansion is contained in the query.  In the
  /// paper's tableau, true places the row's order in the left column
  /// ("Q satisfies db") and false in the right one — any right-column
  /// entry kills the rewriting.
  bool expansion_contained = false;

  /// How far this database got: "skipped", "no-view-tuples", "no-mcr",
  /// "phase2-failed", or "ok".
  std::string status;
};

/// The full trace of one EquivalentRewriter::Run.
struct RewriteTrace {
  std::vector<CanonicalDatabaseTrace> databases;

  /// Rows of the final two-column tableau (orders of kept databases),
  /// partitioned by Phase 2's verdict.
  std::vector<std::string> left_column;   // expansion contained in Q
  std::vector<std::string> right_column;  // expansion NOT contained in Q
};

/// Renders the trace as the paper's tableau plus a per-database log.
std::string TableauToString(const RewriteTrace& trace);

}  // namespace cqac

#endif  // CQAC_REWRITING_EXPLAIN_H_
