#include "rewriting/enumeration.h"

#include <algorithm>
#include <functional>
#include <set>

#include "constraints/ac_solver.h"
#include "constraints/orders.h"
#include "containment/cqac_containment.h"
#include "rewriting/expansion.h"

namespace cqac {

namespace {

/// All candidate view atoms over the term pool, for every view.
std::vector<Atom> CandidateAtoms(const ViewSet& views,
                                 const std::vector<Term>& pool) {
  std::vector<Atom> out;
  for (const ConjunctiveQuery& view : views.views()) {
    const int arity = view.head().arity();
    if (arity > 0 && pool.empty()) continue;
    // Odometer over pool^arity (one empty atom when arity is 0).
    std::vector<int> idx(arity, 0);
    for (;;) {
      std::vector<Term> args;
      args.reserve(arity);
      for (int i = 0; i < arity; ++i) args.push_back(pool[idx[i]]);
      out.push_back(Atom(view.name(), std::move(args)));
      int pos = arity - 1;
      while (pos >= 0 && ++idx[pos] == static_cast<int>(pool.size())) {
        idx[pos--] = 0;
      }
      if (pos < 0) break;
    }
  }
  return out;
}

}  // namespace

EnumerationResult EnumerateEquivalentRewriting(const ConjunctiveQuery& query,
                                               const ViewSet& views,
                                               EnumerationOptions options) {
  EnumerationResult result;

  if (!AcSolver::IsSatisfiable(query.comparisons())) {
    result.found = true;  // The empty union rewrites the empty query.
    return result;
  }

  // Term pool: the query's variables, fresh variables, and all constants.
  std::vector<Term> pool;
  for (const std::string& v : query.AllVariables()) {
    pool.push_back(Term::Variable(v));
  }
  for (int i = 0; i < options.max_fresh_variables; ++i) {
    pool.push_back(Term::Variable("_g" + std::to_string(i)));
  }
  std::vector<Rational> constants = query.Constants();
  for (const Rational& c : views.Constants()) {
    if (std::find(constants.begin(), constants.end(), c) == constants.end()) {
      constants.push_back(c);
    }
  }
  for (const Rational& c : constants) pool.push_back(Term::Constant(c));

  const std::vector<Atom> atoms = CandidateAtoms(views, pool);

  // Accumulated disjuncts that individually pass the containment check.
  std::vector<ConjunctiveQuery> accepted;
  UnionQuery accepted_expanded;
  std::set<std::string> accepted_keys;

  // Enumerate bodies: nonempty subsets of `atoms` of size <= max_subgoals,
  // in increasing size (lexicographic index vectors, no repeats).
  std::vector<int> chosen;
  const int n = static_cast<int>(atoms.size());

  // Recursive lambda over combination indices.
  bool done = false;
  std::function<void(int)> explore = [&](int start) {
    if (done) return;
    if (!chosen.empty()) {
      ++result.candidate_bodies;
      if (options.max_candidates >= 0 &&
          result.candidate_bodies > options.max_candidates) {
        result.budget_exhausted = true;
        done = true;
        return;
      }
      std::vector<Atom> body;
      body.reserve(chosen.size());
      for (int i : chosen) body.push_back(atoms[i]);
      ConjunctiveQuery candidate(query.head(), body);
      // Quick safety filter: every head variable must occur in the body.
      bool safe = true;
      {
        std::set<std::string> body_vars;
        for (const Atom& a : body) {
          for (const Term& t : a.args()) {
            if (t.IsVariable()) body_vars.insert(t.name());
          }
        }
        for (const std::string& hv : query.HeadVariables()) {
          if (body_vars.count(hv) == 0) {
            safe = false;
            break;
          }
        }
      }
      if (safe) {
        // Complete the candidate with every total order of its variables.
        ForEachTotalOrder(
            candidate.AllVariables(), constants,
            [&](const TotalOrder& order) {
              ++result.candidate_disjuncts;
              ConjunctiveQuery disjunct(
                  candidate.head(), candidate.body(),
                  order.ProjectedComparisons(candidate.AllVariables()));
              const ConjunctiveQuery expansion =
                  Expand(disjunct, views);
              const std::optional<ConjunctiveQuery> simplified =
                  SimplifyQuery(expansion);
              if (!simplified.has_value()) return true;  // Computes nothing.
              ++result.containment_checks;
              if (!CqacContainedCanonical(*simplified, query)) return true;
              if (accepted_keys.insert(disjunct.ToString()).second) {
                accepted.push_back(disjunct);
                accepted_expanded.Add(*simplified);
                // Does the union now cover the query?
                ++result.containment_checks;
                if (CqacContainedInUnion(query, accepted_expanded)) {
                  result.found = true;
                  done = true;
                  return false;
                }
              }
              return true;
            });
        if (done) return;
      }
    }
    if (static_cast<int>(chosen.size()) == options.max_subgoals) return;
    for (int i = start; i < n && !done; ++i) {
      chosen.push_back(i);
      explore(i + 1);
      chosen.pop_back();
    }
  };
  explore(0);

  if (result.found) {
    result.rewriting = UnionQuery(std::move(accepted));
  }
  return result;
}

}  // namespace cqac
