#include "rewriting/inverse_rules.h"

// GCC 12 raises a spurious -Wmaybe-uninitialized deep inside
// std::variant's copy machinery for the EValue alias below.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <variant>

namespace cqac {

namespace {

/// A constant or a ground Skolem term.
using EValue = std::variant<Rational, SkolemValue>;

bool EValueEquals(const EValue& a, const EValue& b) {
  if (a.index() != b.index()) return false;
  if (a.index() == 0) return std::get<0>(a) == std::get<0>(b);
  return std::get<1>(a) == std::get<1>(b);
}

struct EValueLess {
  bool operator()(const EValue& a, const EValue& b) const {
    if (a.index() != b.index()) return a.index() < b.index();
    if (a.index() == 0) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) < std::get<1>(b);
  }
};

using ETuple = std::vector<EValue>;

struct ETupleLess {
  bool operator()(const ETuple& a, const ETuple& b) const {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end(), EValueLess());
  }
};

using EDatabase = std::map<std::string, std::set<ETuple, ETupleLess>>;

}  // namespace

bool operator<(const SkolemValue& a, const SkolemValue& b) {
  if (a.view_index != b.view_index) return a.view_index < b.view_index;
  if (a.variable != b.variable) return a.variable < b.variable;
  return std::lexicographical_compare(a.args.begin(), a.args.end(),
                                      b.args.begin(), b.args.end());
}

std::string SkolemValue::ToString() const {
  std::string out = "f_v" + std::to_string(view_index) + "," + variable + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string InverseRule::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    if (args[i].constant.has_value()) {
      out += args[i].constant->ToString();
    } else if (args[i].is_skolem) {
      out += "f_v" + std::to_string(view_index) + "," + args[i].variable +
             "(";
      for (size_t j = 0; j < view_head_vars.size(); ++j) {
        if (j > 0) out += ",";
        out += view_head_vars[j];
      }
      out += ")";
    } else {
      out += args[i].variable;
    }
  }
  out += ") :- " + view_name + "(";
  for (size_t j = 0; j < view_head_vars.size(); ++j) {
    if (j > 0) out += ",";
    out += view_head_vars[j];
  }
  out += ")";
  return out;
}

std::vector<InverseRule> BuildInverseRules(const ViewSet& views) {
  std::vector<InverseRule> rules;
  for (int v = 0; v < views.size(); ++v) {
    const ConjunctiveQuery& view = views.views()[v];
    const std::vector<std::string> head_vars = view.HeadVariables();
    std::set<std::string> distinguished(head_vars.begin(), head_vars.end());
    for (const Atom& atom : view.body()) {
      InverseRule rule;
      rule.view_index = v;
      rule.view_name = view.name();
      rule.view_head_vars = head_vars;
      rule.predicate = atom.predicate();
      for (const Term& t : atom.args()) {
        InverseRuleTerm arg;
        if (t.IsConstant()) {
          arg.constant = t.value();
        } else if (distinguished.count(t.name()) > 0) {
          arg.is_skolem = false;
          arg.variable = t.name();
        } else {
          arg.is_skolem = true;
          arg.variable = t.name();
        }
        rule.args.push_back(std::move(arg));
      }
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

namespace {

/// Fires every inverse rule on every tuple of the view extension,
/// producing the extended fact base.
EDatabase DeriveFacts(const std::vector<InverseRule>& rules,
                      const ViewSet& views, const Database& view_extension) {
  EDatabase facts;
  for (const InverseRule& rule : rules) {
    const Relation& extension = view_extension.Get(rule.view_name);
    const ConjunctiveQuery* view = &views.views()[rule.view_index];
    for (const Tuple& tuple : extension.tuples()) {
      // Bind the view's head variables positionally; repeated head
      // variables and head constants act as filters.
      std::map<std::string, Rational> binding;
      bool ok = true;
      const auto& head_args = view->head().args();
      if (tuple.size() != head_args.size()) continue;
      for (size_t i = 0; i < head_args.size() && ok; ++i) {
        const Term& t = head_args[i];
        if (t.IsConstant()) {
          ok = t.value() == tuple[i];
          continue;
        }
        auto [it, inserted] = binding.emplace(t.name(), tuple[i]);
        if (!inserted) ok = it->second == tuple[i];
      }
      if (!ok) continue;
      // Skolem arguments: the bound head-variable values in order.
      std::vector<Rational> skolem_args;
      for (const std::string& hv : rule.view_head_vars) {
        skolem_args.push_back(binding.at(hv));
      }
      ETuple fact;
      fact.reserve(rule.args.size());
      for (const InverseRuleTerm& arg : rule.args) {
        if (arg.constant.has_value()) {
          fact.push_back(EValue(*arg.constant));
        } else if (arg.is_skolem) {
          SkolemValue sk;
          sk.view_index = rule.view_index;
          sk.variable = arg.variable;
          sk.args = skolem_args;
          fact.push_back(EValue(std::move(sk)));
        } else {
          fact.push_back(EValue(binding.at(arg.variable)));
        }
      }
      facts[rule.predicate].insert(std::move(fact));
    }
  }
  return facts;
}

/// Backtracking evaluation of a plain CQ over the extended fact base.
class EEvaluator {
 public:
  EEvaluator(const ConjunctiveQuery& query, const EDatabase& db)
      : query_(query), db_(db) {}

  Relation Run() {
    Relation out;
    Search(0, &out);
    return out;
  }

 private:
  void Search(size_t depth, Relation* out) {
    if (depth == query_.body().size()) {
      Emit(out);
      return;
    }
    const Atom& atom = query_.body()[depth];
    auto it = db_.find(atom.predicate());
    if (it == db_.end()) return;
    for (const ETuple& fact : it->second) {
      if (fact.size() != atom.args().size()) continue;
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (size_t i = 0; i < fact.size() && ok; ++i) {
        const Term& t = atom.args()[i];
        if (t.IsConstant()) {
          ok = fact[i].index() == 0 && std::get<0>(fact[i]) == t.value();
          continue;
        }
        auto bound = bindings_.find(t.name());
        if (bound == bindings_.end()) {
          bindings_.emplace(t.name(), fact[i]);
          newly_bound.push_back(t.name());
        } else {
          ok = EValueEquals(bound->second, fact[i]);
        }
      }
      if (ok) Search(depth + 1, out);
      for (const std::string& v : newly_bound) bindings_.erase(v);
    }
  }

  void Emit(Relation* out) {
    Tuple head;
    head.reserve(query_.head().args().size());
    for (const Term& t : query_.head().args()) {
      if (t.IsConstant()) {
        head.push_back(t.value());
        continue;
      }
      auto it = bindings_.find(t.name());
      if (it == bindings_.end()) return;
      // Certain answers only: Skolem terms in the head disqualify.
      if (it->second.index() != 0) return;
      head.push_back(std::get<0>(it->second));
    }
    out->Insert(head);
  }

  const ConjunctiveQuery& query_;
  const EDatabase& db_;
  std::map<std::string, EValue> bindings_;
};

}  // namespace

Relation AnswerViaInverseRules(const ConjunctiveQuery& query,
                               const ViewSet& views,
                               const Database& view_extension) {
  if (!query.IsPlainCQ()) return Relation();
  const std::vector<InverseRule> rules = BuildInverseRules(views);
  const EDatabase facts = DeriveFacts(rules, views, view_extension);
  return EEvaluator(query, facts).Run();
}

}  // namespace cqac
