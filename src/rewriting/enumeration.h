#ifndef CQAC_REWRITING_ENUMERATION_H_
#define CQAC_REWRITING_ENUMERATION_H_

#include <cstdint>
#include <string>

#include "ast/query.h"
#include "rewriting/view_set.h"

namespace cqac {

/// Bounds for the naive complete-enumeration baseline.  The search space
/// is doubly exponential, so every run needs a budget.
struct EnumerationOptions {
  /// Maximum number of view atoms per candidate body.
  int max_subgoals = 2;

  /// Fresh variables available to candidates beyond the query's own
  /// variables (`_g0`, `_g1`, ...).
  int max_fresh_variables = 0;

  /// Abort after this many candidate bodies (-1 = unlimited).
  int64_t max_candidates = -1;
};

struct EnumerationResult {
  /// True when an equivalent rewriting was assembled within the bounds.
  bool found = false;

  /// The rewriting (union of CQACs); meaningful iff `found`.
  UnionQuery rewriting;

  /// True when the candidate budget ran out before an answer was reached.
  bool budget_exhausted = false;

  int64_t candidate_bodies = 0;   // bodies enumerated
  int64_t candidate_disjuncts = 0;  // body+order pairs tested
  int64_t containment_checks = 0;
};

/// The "completely naive full-enumeration algorithm" the paper's Section 4
/// compares against: enumerate every candidate body of at most
/// `max_subgoals` view atoms over a fixed term pool (the query's variables,
/// the constants of query and views, and a few fresh variables); for each
/// body, enumerate every total order of its variables, keep body+order
/// disjuncts whose expansion is contained in the query, and accumulate
/// them until the union contains the query.
///
/// Sound by construction, and complete relative to the bounds; its cost is
/// what makes the paper's pruned algorithm worthwhile ("a completely naive
/// full-enumeration algorithm would not have a chance ... the curves would
/// go nearly vertically").
EnumerationResult EnumerateEquivalentRewriting(const ConjunctiveQuery& query,
                                               const ViewSet& views,
                                               EnumerationOptions options = {});

}  // namespace cqac

#endif  // CQAC_REWRITING_ENUMERATION_H_
