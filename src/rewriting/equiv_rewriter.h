#ifndef CQAC_REWRITING_EQUIV_REWRITER_H_
#define CQAC_REWRITING_EQUIV_REWRITER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ast/query.h"
#include "rewriting/explain.h"
#include "rewriting/view_set.h"

namespace cqac {

/// Options controlling the equivalent-rewriting algorithm.
struct RewriteOptions {
  /// How Phase 1 step 3.4 prunes the MCD buckets against the canonical
  /// database's view tuples.
  /// Only kFrozenMatch (the default) carries the paper's Lemma 2 — that
  /// the union of Pre-Rewritings contains the query — by construction.
  /// The weaker modes exist as ablations; with them the algorithm runs an
  /// extra final containment check and may (correctly) answer
  /// kNoRewriting on inputs where the default finds one, demonstrating
  /// that the paper's pruning step 3.4 is required for completeness-with-
  /// soundness, not merely for speed.
  enum class Pruning {
    /// No pruning: every MCD stays in every bucket.
    kNone,
    /// Literal Definition 2: keep an MCD iff its view tuple is a more
    /// relaxed form of some unfrozen view tuple of the database.
    kRelaxedForm,
    /// Definition 2 grounded on the canonical database (the default):
    /// keep an MCD iff its view tuple, with query variables frozen,
    /// matches a ground view tuple.
    kFrozenMatch,
  };
  Pruning pruning = Pruning::kFrozenMatch;

  /// Simplify expansions (forced equalities, redundant comparisons) before
  /// the Phase-2 containment check.  Equivalence-preserving; dramatically
  /// reduces the number of variables the check enumerates.
  bool simplify_expansions = true;

  /// Independently verify the produced rewriting (both containment
  /// directions on the expansions) before returning it.
  bool verify = false;

  /// Compact the output union with the exact coalescing rules of
  /// rewriting/coalesce.h (merge adjacent comparison regions, drop
  /// subsumed disjuncts with equal bodies).  Off by default so the raw
  /// one-disjunct-per-canonical-database output matches the paper's
  /// presentation.
  bool coalesce_output = false;

  /// Greedily drop output disjuncts whose expansion is covered by the
  /// remaining disjuncts' expansions.  Produces the compact unions shown
  /// in the paper's examples; costs one union-containment check per
  /// disjunct.
  bool minimize_output = false;

  /// Collect a per-canonical-database trace (RewriteResult::trace),
  /// including the paper's two-column tableau.  Costs memory and a little
  /// time; off by default.
  bool explain = false;

  /// Abort (outcome kAborted) once this many canonical databases of the
  /// query have been enumerated; -1 means no limit.
  int64_t max_canonical_databases = -1;
};

/// Counters describing the work one Run() performed.
struct RewriteStats {
  int64_t canonical_databases = 0;       // total orders enumerated
  int64_t kept_canonical_databases = 0;  // on which Q computes its head
  int64_t v0_variants = 0;               // exported view variants
  int64_t mcds_formed = 0;               // MCDs over Q0/V0 (formed once)
  int64_t mcds_kept_total = 0;           // sum over kept databases
  int64_t view_tuples_total = 0;         // sum of |T_i(V)|
  int64_t phase2_checks = 0;             // expansion containment checks
  int64_t phase2_orders = 0;             // orders visited by those checks
};

enum class RewriteOutcome {
  kRewritingFound,
  kNoRewriting,
  kAborted,  // max_canonical_databases exceeded
};

/// The algorithm's answer.
struct RewriteResult {
  RewriteOutcome outcome = RewriteOutcome::kNoRewriting;

  /// The equivalent rewriting (union of CQACs over the view predicates);
  /// meaningful iff `outcome == kRewritingFound`.
  UnionQuery rewriting;

  /// True when options.verify was set and the verification passed.
  bool verified = false;

  /// Human-readable explanation for kNoRewriting / kAborted.
  std::string failure_reason;

  /// Per-database trace; populated iff options.explain.
  RewriteTrace trace;

  RewriteStats stats;
};

/// The paper's sound and complete algorithm (Section 3) for finding an
/// equivalent rewriting of a CQAC query using CQAC views, in the language
/// of unions of CQACs.
///
/// Phase 1 enumerates the canonical databases of the query (total orders
/// of its variables and all constants of query and views), keeps those on
/// which the query computes its frozen head, and builds one Pre-Rewriting
/// per database from the MiniCon MCDs of the comparison-stripped query
/// over the exported view variants, pruned against the database's view
/// tuples.  Phase 2 attaches each database's order constraints, expands
/// with respect to the views, and keeps the whole answer only if every
/// expansion is contained in the query (the two-column tableau).
class EquivalentRewriter {
 public:
  EquivalentRewriter(ConjunctiveQuery query, ViewSet views,
                     RewriteOptions options = {})
      : query_(std::move(query)),
        views_(std::move(views)),
        options_(options) {}

  /// Runs the algorithm.  Deterministic for fixed inputs.
  RewriteResult Run();

 private:
  ConjunctiveQuery query_;
  ViewSet views_;
  RewriteOptions options_;
};

/// Convenience entry point with default options.
RewriteResult FindEquivalentRewriting(const ConjunctiveQuery& query,
                                      const ViewSet& views);

/// Independent equivalence check used for verification and tests:
/// expands `rewriting` with respect to `views` and tests both containment
/// directions against `query`.
bool RewritingIsEquivalent(const ConjunctiveQuery& query,
                           const UnionQuery& rewriting, const ViewSet& views);

}  // namespace cqac

#endif  // CQAC_REWRITING_EQUIV_REWRITER_H_
