#ifndef CQAC_REWRITING_EQUIV_REWRITER_H_
#define CQAC_REWRITING_EQUIV_REWRITER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ast/query.h"
#include "constraints/orders.h"
#include "engine/evaluate.h"
#include "engine/jointree.h"
#include "rewriting/explain.h"
#include "rewriting/minicon.h"
#include "rewriting/structure.h"
#include "rewriting/view_set.h"
#include "runtime/cancellation.h"

namespace cqac {

class MemoCache;   // runtime/memo_cache.h
class Phase1Memo;  // runtime/memo_cache.h

/// Options controlling the equivalent-rewriting algorithm.
struct RewriteOptions {
  /// How Phase 1 step 3.4 prunes the MCD buckets against the canonical
  /// database's view tuples.
  /// Only kFrozenMatch (the default) carries the paper's Lemma 2 — that
  /// the union of Pre-Rewritings contains the query — by construction.
  /// The weaker modes exist as ablations; with them the algorithm runs an
  /// extra final containment check and may (correctly) answer
  /// kNoRewriting on inputs where the default finds one, demonstrating
  /// that the paper's pruning step 3.4 is required for completeness-with-
  /// soundness, not merely for speed.
  enum class Pruning {
    /// No pruning: every MCD stays in every bucket.
    kNone,
    /// Literal Definition 2: keep an MCD iff its view tuple is a more
    /// relaxed form of some unfrozen view tuple of the database.
    kRelaxedForm,
    /// Definition 2 grounded on the canonical database (the default):
    /// keep an MCD iff its view tuple, with query variables frozen,
    /// matches a ground view tuple.
    kFrozenMatch,
  };
  Pruning pruning = Pruning::kFrozenMatch;

  /// Simplify expansions (forced equalities, redundant comparisons) before
  /// the Phase-2 containment check.  Equivalence-preserving; dramatically
  /// reduces the number of variables the check enumerates.
  bool simplify_expansions = true;

  /// Independently verify the produced rewriting (both containment
  /// directions on the expansions) before returning it.
  bool verify = false;

  /// Compact the output union with the exact coalescing rules of
  /// rewriting/coalesce.h (merge adjacent comparison regions, drop
  /// subsumed disjuncts with equal bodies).  Off by default so the raw
  /// one-disjunct-per-canonical-database output matches the paper's
  /// presentation.
  bool coalesce_output = false;

  /// Greedily drop output disjuncts whose expansion is covered by the
  /// remaining disjuncts' expansions.  Produces the compact unions shown
  /// in the paper's examples; costs one union-containment check per
  /// disjunct.
  bool minimize_output = false;

  /// Share Phase-1 conclusions between canonical databases with equal
  /// structural fingerprints (same unfrozen view-tuple multiset and
  /// variable-to-block map): the pruning, combination check, and
  /// Pre-Rewriting body are computed once and replayed, with only the
  /// order-dependent comparisons rebuilt per database.  Results are
  /// byte-identical either way; only the phase1_memo_* counters and wall
  /// time change.  Treated as false when `explain` is set, so traces stay
  /// complete.
  bool phase1_dedup = true;

  /// Collect a per-canonical-database trace (RewriteResult::trace),
  /// including the paper's two-column tableau.  Costs memory and a little
  /// time; off by default.
  bool explain = false;

  /// Abort (outcome kAborted) once this many canonical databases of the
  /// query have been enumerated; -1 means no limit.
  int64_t max_canonical_databases = -1;

  /// Worker threads for the canonical-database fan-out and the Phase-2
  /// containment checks.  1 (the default) runs the classic serial loop;
  /// 0 means std::thread::hardware_concurrency(); any other value is the
  /// thread count of the runtime/parallel_rewriter driver.  Results are
  /// byte-identical to the serial path regardless of the value (with a
  /// memo cache, the work counter stats.phase2_orders may differ; see
  /// runtime/parallel_rewriter.h).
  int jobs = 1;

  /// Pins the execution tier chosen by the structural classifier
  /// (rewriting/structure.h): -1 (the default) routes automatically; 0, 1
  /// or 2 force that tier *when its eligibility precondition holds* and
  /// fall back to the general path otherwise, so a forced sweep over an
  /// arbitrary corpus stays sound.  A testing hook — tiers are
  /// byte-compatible on results, so forcing only changes speed and the
  /// tier/tier_reason surfaced in stats.  Part of the catalog plan
  /// signature: plans compiled under different forced tiers never alias.
  int force_tier = -1;

  /// Cooperative cancellation (runtime/cancellation.h), the mechanism
  /// behind per-request deadlines in the rewrite service.  When non-null,
  /// both drivers poll the token at canonical-database and Phase-2
  /// containment-check boundaries and abort with outcome kAborted and
  /// failure_reason "cancelled" as soon as it is set.  Abort latency is
  /// therefore bounded by one work unit (one ProcessCanonicalDatabase or
  /// one CheckExpansionContained call), not by the whole run.  The caller
  /// keeps ownership; the token must outlive Run().
  const CancellationToken* cancel = nullptr;
};

/// The failure_reason of a run aborted through RewriteOptions::cancel;
/// distinguishes cancellation from the database-budget abort, which
/// shares RewriteOutcome::kAborted.
inline constexpr const char kCancelledReason[] = "cancelled";

/// Counters describing the work one Run() performed.
struct RewriteStats {
  int64_t canonical_databases = 0;       // total orders enumerated
  int64_t kept_canonical_databases = 0;  // on which Q computes its head
  int64_t v0_variants = 0;               // exported view variants
  int64_t mcds_formed = 0;               // MCDs over Q0/V0 (formed once)
  int64_t mcds_kept_total = 0;           // sum over kept databases
  int64_t view_tuples_total = 0;         // sum of |T_i(V)|
  int64_t phase2_checks = 0;             // expansion containment checks
  int64_t phase2_orders = 0;             // orders visited by those checks
  int64_t phase1_memo_hits = 0;          // databases served from the memo
  int64_t phase1_memo_misses = 0;        // databases computed in full

  // Tier-engine counters (rewriting/structure.h).  The T1/T2 grid
  // hit/miss split is schedule-dependent under the parallel driver (like
  // the phase1_memo split) and excluded from differential signatures;
  // all three are zero on a T0 run.
  int64_t tier1_grid_hits = 0;       // keep verdicts replayed from the cache
  int64_t tier1_grid_misses = 0;     // grid classes evaluated in full
  int64_t tier2_jointree_evals = 0;  // keep tests run on the AcyclicPlan

  // Per-phase wall time, in nanoseconds of std::chrono::steady_clock.
  // Accumulated element-wise through Merge like every other field, so the
  // serial and parallel paths aggregate them identically — the *values*
  // are wall-clock measurements and naturally vary run to run.  The
  // work-summed fields (freeze/phase1/phase2) add up per-unit durations
  // across all workers, so on a parallel run phase1_ns can exceed
  // enumeration_ns (total CPU time vs. elapsed time of the fan-out loop).
  int64_t enumeration_ns = 0;  // elapsed time of the Phase-1 loop/fan-out
  int64_t freeze_ns = 0;       // sum: delta freeze + keep-test, per database
  int64_t phase1_ns = 0;       // sum: full ProcessCanonicalDatabase calls
  int64_t phase2_ns = 0;       // sum: CheckExpansionContained calls

  /// Element-wise accumulation.  Both the serial loop and the parallel
  /// driver build their totals exclusively through Merge, so equal work
  /// yields equal counters regardless of thread count.
  void Merge(const RewriteStats& other);
};

/// Version of the one-line JSON records emitted by `cqacsh --json` (per
/// rewrite and per batch).  Bump on any field addition, removal, or
/// meaning change; the record shapes are documented in docs/SYNTAX.md.
/// v3: per-rewrite records gained `semantic_cache_hit`, batch records the
/// `catalog_*` counter block (catalog/view_catalog.h).
/// v4: per-rewrite records gained `tier` / `tier_reason` and the per-tier
/// counters `tier1_grid_hits` / `tier1_grid_misses` /
/// `tier2_jointree_evals`; batch records aggregate the same counters
/// (rewriting/structure.h).
/// v5: per-rewrite records gained `phase2_orders` and `trace_id` (the
/// request's 128-bit trace id, obs/request_context.h); the service's
/// `counters` object caught up with the per-rewrite shape (tier fields
/// included) and responses carry top-level `trace_id` / `tier`
/// (server/protocol.h, docs/SERVICE.md).
inline constexpr int kStatsJsonSchemaVersion = 5;

enum class RewriteOutcome {
  kRewritingFound,
  kNoRewriting,
  kAborted,  // max_canonical_databases exceeded
};

/// The algorithm's answer.
struct RewriteResult {
  RewriteOutcome outcome = RewriteOutcome::kNoRewriting;

  /// The equivalent rewriting (union of CQACs over the view predicates);
  /// meaningful iff `outcome == kRewritingFound`.
  UnionQuery rewriting;

  /// True when options.verify was set and the verification passed.
  bool verified = false;

  /// Human-readable explanation for kNoRewriting / kAborted.
  std::string failure_reason;

  /// Per-database trace; populated iff options.explain.
  RewriteTrace trace;

  RewriteStats stats;

  /// True when a ViewCatalog's semantic result cache served this answer
  /// without running the algorithm (catalog/view_catalog.h).  The stats
  /// then replay the original run's counters verbatim — the
  /// configuration-invariant ones are provably what a fresh run would
  /// report; the wall times and memo splits are the original run's.
  bool from_semantic_cache = false;

  /// Epoch of the catalog that produced this result; 0 when the run did
  /// not go through a catalog.
  uint64_t catalog_epoch = 0;

  /// The execution tier the run was routed to (0 = general, 1 =
  /// semi-interval, 2 = acyclic core) and the classifier's explanation.
  /// Purely observational: tiers are byte-compatible on everything above.
  int tier = 0;
  std::string tier_reason;
};

// ---------------------------------------------------------------------------
// Work units.
//
// The algorithm decomposes into an immutable per-run context plus two kinds
// of independent, side-effect-free work units: one per canonical database
// (Phase 1 steps 2-3.7) and one per Pre-Rewriting (the Phase-2 containment
// check).  The serial EquivalentRewriter::Run and the parallel driver in
// runtime/parallel_rewriter.cc are both thin schedulers over these units,
// which is what makes their outputs byte-identical by construction.
// ---------------------------------------------------------------------------

/// The database-independent setup of one run (Section 3.2): the stripped
/// query Q0, the exported view variants V0, the MiniCon buckets over them,
/// and the constant pool of query and views.  Holds references to the
/// query/views/options, which must outlive it.  Immutable after
/// construction; safe to share across threads.
struct RewriteWork {
  RewriteWork(const ConjunctiveQuery& q, const ViewSet& v,
              const RewriteOptions& o)
      : query(q), views(v), options(o), prepared_query(q) {}

  const ConjunctiveQuery& query;
  const ViewSet& views;
  const RewriteOptions& options;

  /// The query compiled for repeated evaluation (the per-canonical-database
  /// keep-test).  Immutable, so sharing across worker threads is safe;
  /// each thread owns its PreparedQuery::Scratch.
  PreparedQuery prepared_query;

  /// Unique per prepared work instance; lets per-thread caches keyed on a
  /// RewriteWork (e.g. the canonical freezer in ProcessCanonicalDatabase)
  /// detect reuse of a stack address by a different run.
  uint64_t work_id = 0;

  ConjunctiveQuery q0;                        // query without comparisons
  std::vector<ConjunctiveQuery> v0_variants;  // exported view variants
  std::vector<Mcd> mcds;                      // buckets, formed once
  std::vector<Rational> constants;            // of query and views
  int num_subgoals = 0;

  // Relations over the MCD view tuples, derived once so the per-database
  // Pre-Rewriting assembly (dedup, fold-drop, sort) works on integers
  // instead of re-comparing atoms on every kept canonical database.
  std::vector<int> mcd_dup_of;  // i -> least j with an equal view tuple
  std::vector<int> mcd_rank;    // i -> rank of its tuple among distinct ones
  std::vector<char> mcd_folds;  // i * |mcds| + j -> tuple i folds onto j

  /// The structural routing decision for this (query, views, options)
  /// triple, resolved against options.force_tier (rewriting/structure.h).
  TierDecision tier;

  /// T1/T2 only: keep-test verdicts keyed by grid class, shared by all
  /// workers of a run and, through a catalog plan, across requests.
  std::shared_ptr<GridVerdictCache> grid_cache;

  /// T2 only: the compiled join-tree evaluator replacing the general
  /// keep-test and Phase-2 per-order evaluation (engine/jointree.h).
  std::shared_ptr<const AcyclicPlan> acyclic_plan;
};

/// Builds the shared setup.  Deterministic for fixed inputs.
RewriteWork PrepareRewriteWork(const ConjunctiveQuery& query,
                               const ViewSet& views,
                               const RewriteOptions& options);

/// Overload reusing per-view machinery compiled ahead of time by a
/// ViewCatalog (catalog/view_catalog.h): `precompiled_v0` is the exported
/// variants of all views flattened in view order, `view_constants` the
/// views' deduplicated constant pool — both exactly what the first
/// overload would derive, so the resulting work is identical to a cold
/// build.  Either pointer may be null to fall back to deriving that part.
RewriteWork PrepareRewriteWork(
    const ConjunctiveQuery& query, const ViewSet& views,
    const RewriteOptions& options,
    const std::vector<ConjunctiveQuery>* precompiled_v0,
    const std::vector<Rational>* view_constants);

/// Phases 1-2 plus finalization over a prebuilt work context — the serial
/// loop of EquivalentRewriter::RunSerial, factored out so a ViewCatalog
/// can run many requests over one compiled, long-lived RewriteWork.
///
/// Phase semantics (pruning, simplification, explain, ...) come from
/// work.options; `driver` supplies only the scheduling-level knobs read
/// per request: `cancel` and `max_canonical_databases` (and
/// `phase1_dedup`, below).  For the classic one-shot path the two are the
/// same object.
///
/// `phase1_memo`, when non-null, must belong to `work` (its entries index
/// work.mcds) and may persist across calls — that is the catalog-scoped
/// cross-request Phase-1 memo.  When null, a run-local memo is created
/// per driver.phase1_dedup, reproducing the classic behavior.
///
/// The caller must have handled the unsatisfiable-query shortcut; this
/// function assumes work was built from a satisfiable query.
RewriteResult RunPreparedRewriteSerial(const RewriteWork& work,
                                       const RewriteOptions& driver,
                                       MemoCache* memo,
                                       Phase1Memo* phase1_memo);

/// Folds a finished run's counters into the global metrics registry
/// (obs/metrics.h): rewrite.* counters plus the Phase-1 memo hit/miss
/// split.  No-op unless obs::MetricsActive(); called by both the serial
/// loop and the parallel driver.
void RecordRewriteMetrics(const RewriteStats& stats);

/// What Phase 1 concluded about one canonical database.
struct DatabaseOutcome {
  enum class Status {
    kSkipped,  // the query does not compute its frozen head here
    kFailed,   // no view tuples, or no covering MCD combination: the
               // paper's "no rewriting exists" short-circuit
    kKept,     // produced a Pre-Rewriting
  };
  Status status = Status::kSkipped;

  /// This database's contribution to the run counters.  Does NOT count
  /// `canonical_databases` — enumeration is the scheduler's business.
  RewriteStats stats;

  /// The Pre-Rewriting PR_i' (view tuples plus projected order
  /// constraints); set iff status == kKept.
  std::optional<ConjunctiveQuery> pre_rewriting;

  /// Set iff status == kFailed; identical wording to the serial path.
  std::string failure_reason;

  /// Per-database trace; populated iff options.explain.
  CanonicalDatabaseTrace trace;
};

/// Phase 1 steps 2-3.7 for a single canonical database: freeze, keep-test,
/// view tuples, bucket pruning, MiniCon existence check, Pre-Rewriting
/// assembly.  Pure function of (work, order); no shared mutable state.
///
/// `memo`, when non-null, deduplicates the pruning / combination /
/// body-assembly work across canonical databases with equal structural
/// keys (see Phase1Entry in runtime/memo_cache.h).  The memo must belong
/// to this run — its entries index into work.mcds — and sharing it across
/// worker threads is safe.  Results are byte-identical with or without it.
DatabaseOutcome ProcessCanonicalDatabase(const RewriteWork& work,
                                         const TotalOrder& order,
                                         Phase1Memo* memo = nullptr);

/// What the Phase-2 containment check concluded about one Pre-Rewriting.
struct Phase2Outcome {
  bool contained = false;
  int64_t orders_enumerated = 0;  // 0 when served from the memo cache
  bool cache_hit = false;
  int64_t wall_ns = 0;  // elapsed time of this check (incl. memo probe)
};

/// Expands `pre` with respect to the views (simplifying when the options
/// say so) and tests containment in the query.  When `memo` is non-null
/// the verdict is memoized under a normalized (expansion, query) key —
/// the verdict is a pure function of that key, so memoization never
/// changes results, only `orders_enumerated`.
Phase2Outcome CheckExpansionContained(const RewriteWork& work,
                                      const ConjunctiveQuery& pre,
                                      MemoCache* memo);

/// The post-Phase-2 tail shared by the serial and parallel drivers:
/// coalescing, the weakened-pruning Lemma-2 check, output minimization,
/// and optional verification.  Sets result->outcome / rewriting /
/// verified / failure_reason.
void FinalizeFoundRewriting(const RewriteWork& work,
                            std::vector<ConjunctiveQuery> pre_rewritings,
                            RewriteResult* result);

/// The paper's sound and complete algorithm (Section 3) for finding an
/// equivalent rewriting of a CQAC query using CQAC views, in the language
/// of unions of CQACs.
///
/// Phase 1 enumerates the canonical databases of the query (total orders
/// of its variables and all constants of query and views), keeps those on
/// which the query computes its frozen head, and builds one Pre-Rewriting
/// per database from the MiniCon MCDs of the comparison-stripped query
/// over the exported view variants, pruned against the database's view
/// tuples.  Phase 2 attaches each database's order constraints, expands
/// with respect to the views, and keeps the whole answer only if every
/// expansion is contained in the query (the two-column tableau).
class EquivalentRewriter {
 public:
  /// `memo`, when given, caches Phase-2 containment verdicts across runs
  /// (see runtime/memo_cache.h); it may be shared between concurrent
  /// rewriters.  The rewriter does not own it.
  EquivalentRewriter(ConjunctiveQuery query, ViewSet views,
                     RewriteOptions options = {}, MemoCache* memo = nullptr)
      : query_(std::move(query)),
        views_(std::move(views)),
        options_(options),
        memo_(memo) {}

  /// Runs the algorithm.  Deterministic for fixed inputs; with
  /// options.jobs != 1 the run is delegated to the parallel driver, whose
  /// result is byte-identical to the serial one (modulo the memo-cache
  /// caveat in runtime/parallel_rewriter.h).
  RewriteResult Run();

 private:
  RewriteResult RunSerial();

  ConjunctiveQuery query_;
  ViewSet views_;
  RewriteOptions options_;
  MemoCache* memo_;
};

/// Convenience entry point with default options.
RewriteResult FindEquivalentRewriting(const ConjunctiveQuery& query,
                                      const ViewSet& views);

/// Independent equivalence check used for verification and tests:
/// expands `rewriting` with respect to `views` and tests both containment
/// directions against `query`.
bool RewritingIsEquivalent(const ConjunctiveQuery& query,
                           const UnionQuery& rewriting, const ViewSet& views);

}  // namespace cqac

#endif  // CQAC_REWRITING_EQUIV_REWRITER_H_
