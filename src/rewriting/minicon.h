#ifndef CQAC_REWRITING_MINICON_H_
#define CQAC_REWRITING_MINICON_H_

#include <functional>
#include <string>
#include <vector>

#include "ast/query.h"
#include "ast/substitution.h"

namespace cqac {

/// A MiniCon Description (Pottinger & Halevy), restricted to one-to-one
/// subgoal mappings as the paper's footnote 4 prescribes for equivalent
/// rewritings.  An MCD records that some subset of the query's subgoals
/// can be answered by one view atom.
struct Mcd {
  /// Index of the view (variant) in the MiniCon input list.
  int view_index = 0;

  /// The view atom usable in a rewriting: head predicate of the view with
  /// each argument renamed to the query variable mapped there (the paper's
  /// `mu^-1` renaming), a constant the homomorphism pinned, or a fresh
  /// variable `_f<k>_<i>` when nothing from the query reaches it.
  Atom view_tuple;

  /// Sorted indices of the query subgoals this MCD covers.
  std::vector<int> covered;

  /// The underlying containment-mapping fragment: query variable -> term
  /// of the (homomorphism-specialized) view.
  Substitution mapping;

  std::string ToString() const;
};

/// MiniCon phase 1 for plain CQs: forms all MCDs of `query` over `views`
/// (typically the AC-stripped query `Q0` and the exported variants `V0`).
///
/// Per the MiniCon property, a mapping seed grows until every query
/// variable sent to a nondistinguished view variable has all its subgoals
/// covered (the "shared variable property"); query head variables must map
/// to distinguished view terms.  Mappings are one-to-one on subgoals.
/// Duplicate MCDs (same view, coverage, and tuple) are emitted once.
std::vector<Mcd> FormMcds(const ConjunctiveQuery& query,
                          const std::vector<ConjunctiveQuery>& views);

/// MiniCon phase 2, existence form: true when some subset of `mcds` with
/// pairwise-disjoint coverage covers all `num_subgoals` query subgoals.
bool McdCombinationExists(const std::vector<Mcd>& mcds, int num_subgoals);

/// Same existence check restricted to `mcds[i]` for `i` in `subset`
/// (ascending or not; order does not affect the verdict).  Lets the
/// per-canonical-database pruning loop pass its kept indices without
/// copying Mcd values.
bool McdCombinationExists(const std::vector<Mcd>& mcds,
                          const std::vector<int>& subset, int num_subgoals);

/// MiniCon phase 2, enumeration form: invokes `fn` with every combination
/// of MCDs (pairwise-disjoint coverage, covering all subgoals); stops when
/// `fn` returns false.  Used to generate plain-CQ rewritings (the MCR of
/// Q0 using V0) and by the enumeration baseline.
void ForEachMcdCombination(
    const std::vector<Mcd>& mcds, int num_subgoals,
    const std::function<bool(const std::vector<const Mcd*>&)>& fn);

/// Convenience: the maximally-contained rewriting of a plain CQ `query`
/// over plain-CQ `views` as a union of conjunctive queries, one disjunct
/// per MCD combination (Pottinger & Halevy's phase-2 output, one-to-one
/// variant).  Each disjunct's body is the combination's view tuples.
UnionQuery MiniConRewritings(const ConjunctiveQuery& query,
                             const std::vector<ConjunctiveQuery>& views);

}  // namespace cqac

#endif  // CQAC_REWRITING_MINICON_H_
