#ifndef CQAC_REWRITING_CONTAINED_REWRITER_H_
#define CQAC_REWRITING_CONTAINED_REWRITER_H_

#include <cstdint>

#include "ast/query.h"
#include "rewriting/view_set.h"

namespace cqac {

/// Contained rewritings of CQAC queries using CQAC views — the
/// data-integration regime the paper discusses alongside its main result.
/// The paper (following Afrati, Li & Mitra) notes that maximally-contained
/// rewritings are not known to exist in general once arbitrary
/// comparisons appear, but do exist when the comparisons are
/// *semi-interval* (`X op c` with op in {<, <=}, or symmetrically
/// {>, >=}); this module implements the natural candidate-space algorithm
/// for that regime and is exact on it.
///
/// Candidates are MiniCon combinations of the comparison-free query over
/// the exported view variants, each completed with every total order of
/// its variables and the constants of query and views; a candidate is
/// kept iff its expansion is contained in the query.  The union of all
/// kept candidates is returned (with optional redundancy elimination).

struct ContainedRewriteOptions {
  /// Drop disjuncts whose expansion is contained in another kept
  /// disjunct's expansion (pairwise; keeps the union's semantics).
  bool drop_subsumed = true;

  /// Abort knob: stop after this many candidate disjuncts (-1 = all).
  int64_t max_disjuncts = -1;
};

struct ContainedRewriteResult {
  /// The union of kept contained rewritings (possibly empty).
  UnionQuery rewriting;

  int64_t combinations = 0;    // MiniCon combinations enumerated
  int64_t candidates = 0;      // combination x order candidates
  int64_t kept = 0;            // candidates whose expansion is contained
  bool truncated = false;      // max_disjuncts hit
};

/// Computes the union of contained CQAC rewritings described above.
/// Sound for any input (every disjunct's expansion is verified contained
/// in the query); maximally contained on the semi-interval fragment.
ContainedRewriteResult FindContainedRewritings(
    const ConjunctiveQuery& query, const ViewSet& views,
    ContainedRewriteOptions options = {});

/// True when every comparison of `q` is semi-interval: variable-versus-
/// constant with any operator, or an equality.  (The paper's special case
/// for which maximally-contained rewritings are known to exist.)
bool IsSemiInterval(const ConjunctiveQuery& q);

}  // namespace cqac

#endif  // CQAC_REWRITING_CONTAINED_REWRITER_H_
