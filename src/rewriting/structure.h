#ifndef CQAC_REWRITING_STRUCTURE_H_
#define CQAC_REWRITING_STRUCTURE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/query.h"
#include "constraints/orders.h"
#include "rewriting/view_set.h"

namespace cqac {

/// Structure-aware tiered execution: a classifier inspects the (query,
/// views) pair before Phase 1 and routes the run to the cheapest engine
/// whose completeness argument applies.  Every tier is byte-compatible
/// with the general path on verdicts, rewritings, and the invariant
/// counters of the differential RunSignature — tiers change how fast the
/// answer is computed, never what it is.
///
///  * T0 (general): the unmodified doubly exponential pipeline.
///  * T1 (semi-interval): every comparison on the query and the views is
///    `var op const` (Afrati & Damigos: containment escapes the general
///    canonical-database blowup on this fragment).  The keep-test verdict
///    of a canonical database then depends only on the order's *grid
///    class* — the partition of variables into blocks plus each block's
///    cell relative to the sorted constant grid (below / at / between /
///    above), ignoring how blocks are ranked within a cell — so verdicts
///    are cached per class and the factorial intra-cell block sweep is
///    paid once per class instead of once per order.
///  * T2 (acyclic core): the query and views are comparison-free and the
///    query hypergraph is GYO-acyclic (Geck et al.: acyclic rewriting
///    machinery).  The keep test and the Phase-2 per-order evaluation run
///    on a join-tree semi-join plan (engine/jointree.h) instead of the
///    general homomorphism search; the grid cache applies vacuously
///    (zero comparisons), compounding the two savings.
enum class ExecutionTier {
  kGeneral = 0,
  kSemiInterval = 1,
  kAcyclic = 2,
};

/// "tier0" / "tier1" / "tier2".
const char* TierName(ExecutionTier tier);

/// The classifier's verdict for one (query, views) pair.
struct TierDecision {
  ExecutionTier tier = ExecutionTier::kGeneral;

  /// Human-readable routing explanation, surfaced as `tier_reason` in
  /// stats/JSON: why this tier fired, or which structural feature blocked
  /// the faster ones (the first variable-variable comparison, the cyclic
  /// hypergraph, a forced-tier fallback).
  std::string reason;

  /// Raw eligibility, independent of the final routing: used by
  /// ResolveTier to honor or reject a forced tier.
  bool semi_interval_eligible = false;
  bool acyclic_eligible = false;
};

/// Classifies the pair structurally (no forcing): T2 when the query and
/// every view are comparison-free and the query hypergraph is acyclic,
/// else T1 when every comparison on the query and the views is
/// variable-vs-constant, else T0.  Comparison-free inputs are vacuously
/// semi-interval-eligible, so a cyclic comparison-free query still gets
/// the T1 grid cache.
TierDecision ClassifyStructure(const ConjunctiveQuery& query,
                               const ViewSet& views);

/// Applies a `--force-tier` request to a classified decision.  Forcing is
/// a testing hook, never a soundness override: a forced tier applies only
/// when its eligibility precondition holds, otherwise the run falls back
/// to T0 and the reason says so — which makes a forced-tier sweep over an
/// arbitrary corpus sound by construction.  `force_tier` < 0 means auto.
TierDecision ResolveTier(const TierDecision& classified, int force_tier);

/// The T1/T2 keep-test verdict cache, keyed by grid class.
///
/// Soundness (why the verdict is a pure function of the key): fix two
/// orders O1, O2 with the same variable partition and the same cell per
/// block.  The block-wise value map phi (block b's value under O1 ->
/// block b's value under O2) is a bijection on the frozen values that
/// fixes every constant, maps O1's canonical database exactly onto O2's,
/// and maps O1's frozen head to O2's.  Every query comparison is
/// `var op const`, whose truth under an assignment depends only on the
/// variable's cell — preserved by phi.  So h is a witness embedding for
/// O1 iff phi∘h is one for O2, and the keep-test verdicts coincide.
/// (Intra-cell block rank is exactly what the key quotients away: phi
/// need not be order-preserving between two variable blocks of one cell,
/// and no `var op const` comparison can tell them apart.)  A var-var
/// comparison would break the argument — which is the T1 boundary.
///
/// Concurrency: sharded insert-only maps behind mutexes, shared by the
/// parallel driver's workers and, via the catalog plan, across requests.
/// Verdicts are pure functions of their key, so sharing never changes
/// results; only the hit/miss split is schedule-dependent (excluded from
/// the differential RunSignature, like the Phase-1 memo counters).
class GridVerdictCache {
 public:
  /// `variables` is the enumeration's variable universe
  /// (query.AllVariables()), fixing the variable -> index encoding.
  explicit GridVerdictCache(const std::vector<std::string>& variables);

  GridVerdictCache(const GridVerdictCache&) = delete;
  GridVerdictCache& operator=(const GridVerdictCache&) = delete;

  /// Serializes `order`'s grid class into `*key` (cleared first): one
  /// (canonical block id, cell) byte pair per variable in registration
  /// order, where the k-th constant block is cell 2k+1 and a variable-only
  /// block between the k-th and (k+1)-th constants is cell 2k.  Canonical
  /// block ids are numbered by first appearance over the registration
  /// order, so any two orders of one class build byte-equal keys no matter
  /// how their blocks are ranked within a cell.
  void BuildKey(const TotalOrder& order, std::string* key) const;

  /// The cached keep verdict for `key`, or nullopt.
  std::optional<bool> Get(const std::string& key) const;

  /// Records `kept` for `key` (first writer wins; later puts are no-ops,
  /// which is fine — the verdict is a pure function of the key).
  void Put(const std::string& key, bool kept);

  /// Distinct grid classes recorded so far.
  size_t size() const;

 private:
  static constexpr int kNumShards = 8;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, bool> verdicts;
  };

  Shard& ShardFor(const std::string& key) const;

  /// Name -> registration index, sorted by name: BuildKey runs one lookup
  /// per variable per order, and a binary search over a handful of short
  /// names beats hashing each name from scratch.
  std::vector<std::pair<std::string, int>> var_index_;

  /// Single-probe accelerator in front of the binary search: slot
  /// (cheap signature of the name) holds the position in `var_index_` of
  /// the last registered name with that signature; a verify-compare
  /// rejects collisions and falls back to the search.  BuildKey runs on
  /// every canonical database of a tier-1 sweep, so the constant factor
  /// of the name lookup is the cache's overhead floor.
  static constexpr size_t kLookupSlots = 256;
  int lookup_[kLookupSlots];
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cqac

#endif  // CQAC_REWRITING_STRUCTURE_H_
