#include "rewriting/exportable.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "constraints/ac_solver.h"
#include "constraints/inequality_graph.h"

namespace cqac {

namespace {

/// Enumerates all partitions of `items` (Bell-number many), invoking `fn`
/// with each partition given as a block index per item.
void ForEachPartition(int n, const std::function<void(
                                 const std::vector<int>&)>& fn) {
  std::vector<int> block(n, 0);
  // Restricted-growth strings enumerate set partitions canonically.
  std::function<void(int, int)> rec = [&](int i, int max_used) {
    if (i == n) {
      fn(block);
      return;
    }
    for (int b = 0; b <= max_used + 1 && b <= i; ++b) {
      block[i] = b;
      rec(i + 1, std::max(max_used, b));
    }
  };
  rec(0, -1);
}

}  // namespace

std::vector<std::string> ExportableVariables(const ConjunctiveQuery& view) {
  const InequalityGraph graph(view.comparisons());
  const std::vector<std::string> distinguished = view.HeadVariables();
  std::vector<std::string> out;
  for (const std::string& x : view.NondistinguishedVariables()) {
    if (graph.IsExportable(x, distinguished)) out.push_back(x);
  }
  return out;
}

std::vector<ConjunctiveQuery> BuildV0Variants(const ConjunctiveQuery& view) {
  const std::vector<std::string> head_vars = view.HeadVariables();
  const int n = static_cast<int>(head_vars.size());

  std::vector<ConjunctiveQuery> variants;
  auto add_variant = [&variants](ConjunctiveQuery candidate) {
    if (std::find(variants.begin(), variants.end(), candidate) ==
        variants.end()) {
      variants.push_back(std::move(candidate));
    }
  };

  ForEachPartition(n, [&](const std::vector<int>& block) {
    // Head homomorphism: equate all head variables within a block.
    std::vector<Comparison> axioms = view.comparisons();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (block[i] == block[j]) {
          axioms.push_back(Comparison(Term::Variable(head_vars[i]),
                                      CompOp::kEq,
                                      Term::Variable(head_vars[j])));
        }
      }
    }
    // Inconsistent homomorphisms produce empty views; skip them.
    const std::optional<Substitution> forced =
        AcSolver::ForcedEqualities(axioms);
    if (!forced.has_value()) return;

    // The forced equalities both realize the homomorphism and export any
    // nondistinguished variable now squeezed onto a head variable or
    // constant.  Prefer distinguished representatives so exported
    // variables surface in the head: re-target any binding whose
    // representative is nondistinguished but whose class contains a head
    // variable.
    Substitution remap = *forced;
    for (const std::string& hv : head_vars) {
      if (!remap.IsBound(hv)) continue;
      const Term rep = remap.Lookup(hv);
      if (rep.IsConstant()) continue;
      if (std::find(head_vars.begin(), head_vars.end(), rep.name()) !=
          head_vars.end()) {
        continue;  // Representative already distinguished.
      }
      // Swap: make the head variable the class representative.
      Substitution swapped;
      for (const auto& [var, term] : remap.bindings()) {
        if (var == hv) continue;
        if (term == rep) {
          swapped.Bind(var, Term::Variable(hv));
        } else {
          swapped.Bind(var, term);
        }
      }
      swapped.Bind(rep.name(), Term::Variable(hv));
      remap = swapped;
    }

    const ConjunctiveQuery collapsed = view.ApplySubstitution(remap);
    add_variant(ConjunctiveQuery(collapsed.head(), collapsed.body())
                    .Deduplicated());
  });
  return variants;
}

}  // namespace cqac
