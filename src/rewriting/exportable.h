#ifndef CQAC_REWRITING_EXPORTABLE_H_
#define CQAC_REWRITING_EXPORTABLE_H_

#include <string>
#include <vector>

#include "ast/query.h"

namespace cqac {

/// Construction of the paper's `V0` view variants (Section 3.2).
///
/// When MiniCon runs on the comparison-stripped query `Q0` and views, a
/// nondistinguished view variable blocks any mapping that would need to
/// reach it from the query's head.  But the view's comparisons may *force*
/// such a variable equal to a distinguished one — outright, or after a
/// head homomorphism equates head variables (Definition 3 / Lemma 1:
/// `X` is exportable iff its leq-set and geq-set are both nonempty).
///
/// Example 5: `v(Y,Z) :- r(X), s(Y,Z), Y <= X, X <= Z` exports `X` under
/// the homomorphism `Y = Z`, yielding the variant
/// `v(Y,Y) :- r(Y), s(Y,Y)`.  Example 6 yields two distinct variants from
/// one view.
///
/// BuildV0Variants enumerates every partition of the view's head variables
/// (the head homomorphisms), discards partitions inconsistent with the
/// comparisons, applies all equalities the homomorphism+comparisons force
/// (this is what "exports" nondistinguished variables), strips the
/// comparisons, and deduplicates the results.  The original head predicate
/// is kept, so variants are usable wherever the view is.
std::vector<ConjunctiveQuery> BuildV0Variants(const ConjunctiveQuery& view);

/// The variables of `view` that are exportable per Lemma 1 (nonempty
/// leq-set and geq-set in the inequality graph).  Exposed for tests and
/// diagnostics; BuildV0Variants does not depend on it.
std::vector<std::string> ExportableVariables(const ConjunctiveQuery& view);

}  // namespace cqac

#endif  // CQAC_REWRITING_EXPORTABLE_H_
