#include "rewriting/view_tuples.h"

#include <algorithm>
#include <set>

#include "engine/evaluate.h"

namespace cqac {

ViewTuples ComputeViewTuples(const ViewSet& views,
                             const CanonicalDatabase& cdb) {
  ViewTuples result;
  for (const ConjunctiveQuery& view : views.views()) {
    const Relation output = Evaluate(view, cdb.db);
    std::vector<Tuple>& ground = result.ground[view.name()];
    std::vector<Atom>& unfrozen = result.unfrozen[view.name()];
    for (const Tuple& tuple : output.tuples()) {
      ground.push_back(tuple);
      std::vector<Term> args;
      args.reserve(tuple.size());
      for (const Rational& value : tuple) {
        args.push_back(cdb.Unfreeze(value));
      }
      unfrozen.push_back(Atom(view.name(), std::move(args)));
      ++result.total;
    }
  }
  return result;
}

bool IsMoreRelaxedForm(const Atom& more_relaxed, const Atom& tuple) {
  if (more_relaxed.predicate() != tuple.predicate() ||
      more_relaxed.arity() != tuple.arity()) {
    return false;
  }
  std::map<std::string, Term> mapping;
  for (int i = 0; i < more_relaxed.arity(); ++i) {
    const Term& from = more_relaxed.args()[i];
    const Term& to = tuple.args()[i];
    if (from.IsConstant()) {
      if (from != to) return false;
      continue;
    }
    auto [it, inserted] = mapping.emplace(from.name(), to);
    if (!inserted && it->second != to) return false;
  }
  return true;
}

bool MatchesFrozenViewTuple(const Atom& mcd_tuple, const ViewTuples& tuples,
                            const CanonicalDatabase& cdb) {
  auto it = tuples.ground.find(mcd_tuple.predicate());
  if (it == tuples.ground.end()) return false;
  for (const Tuple& ground : it->second) {
    if (static_cast<int>(ground.size()) != mcd_tuple.arity()) continue;
    std::map<std::string, Rational> free_bindings;
    bool ok = true;
    for (int i = 0; i < mcd_tuple.arity() && ok; ++i) {
      const Term& t = mcd_tuple.args()[i];
      if (t.IsConstant()) {
        ok = t.value() == ground[i];
        continue;
      }
      auto frozen = cdb.assignment.find(t.name());
      if (frozen != cdb.assignment.end()) {
        // Query variable: pinned to its canonical value.
        ok = frozen->second == ground[i];
        continue;
      }
      // Fresh/existential variable: free, but used consistently.
      auto [binding, inserted] = free_bindings.emplace(t.name(), ground[i]);
      if (!inserted) ok = binding->second == ground[i];
    }
    if (ok) return true;
  }
  return false;
}

ViewTupleEvaluator::ViewTupleEvaluator(const ViewSet& views) {
  views_.reserve(views.views().size());
  for (const ConjunctiveQuery& view : views.views()) {
    PerView pv{view.name(),  PreparedQuery(view), {}, {}, std::nullopt,
               Relation(), 0};
    std::set<std::pair<std::string, int>> seen;
    for (const Atom& atom : view.body()) {
      if (seen.emplace(atom.predicate(), atom.arity()).second) {
        pv.referenced.emplace_back(atom.predicate(), atom.arity());
      }
    }
    by_name_[pv.name].push_back(static_cast<int>(views_.size()));
    views_.push_back(std::move(pv));
  }
}

void ViewTupleEvaluator::Refresh(CanonicalFreezer& freezer) {
  const bool use_row_engine = internal::RowEngineForced();
  if (!rel_ids_resolved_) {
    for (PerView& pv : views_) {
      pv.rel_ids.reserve(pv.referenced.size());
      for (const auto& [predicate, arity] : pv.referenced) {
        const uint32_t rel = freezer.instance().FindRelation(predicate, arity);
        // Relations absent from the query's instance stay empty forever;
        // they can never make the view stale.
        if (rel != SymbolInterner::kNotFound) pv.rel_ids.push_back(rel);
      }
      if (!use_row_engine) {
        // views_ stopped moving at construction's end, so plan pointers
        // are stable from here on.
        pv.coded.emplace(&pv.plan.plan());
        pv.coded->BindTo(&freezer);
      }
    }
    rel_ids_resolved_ = true;
  }
  total_ = 0;
  for (PerView& pv : views_) {
    bool stale = pv.evaluated_epoch == 0;
    for (const uint32_t rel : pv.rel_ids) {
      if (stale) break;
      stale = freezer.RelationEpoch(rel) > pv.evaluated_epoch;
    }
    if (stale) {
      pv.output = Relation();
      if (use_row_engine || !pv.coded.has_value()) {
        pv.plan.Run(freezer.instance(), nullptr, &pv.output, &scratch_);
      } else {
        pv.coded->Run(freezer, /*match_frozen_head=*/false, &pv.output);
      }
      pv.evaluated_epoch = freezer.epoch();
    }
    total_ += pv.output.size();
  }
}

const std::vector<int>* ViewTupleEvaluator::ViewsNamed(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

FrozenTupleMatcher::FrozenTupleMatcher(std::vector<Atom> tuples,
                                       const CanonicalFreezer& freezer)
    : freezer_(freezer) {
  std::map<std::string, int> index_by_key;
  std::map<std::string, int> class_by_key;
  patterns_.reserve(tuples.size());
  class_of_.reserve(tuples.size());
  for (const Atom& tuple : tuples) {
    Pattern pattern;
    pattern.positions.reserve(tuple.arity());
    std::map<std::string, std::vector<int>> fresh_positions;
    std::vector<int> pinned;
    for (int i = 0; i < tuple.arity(); ++i) {
      const Term& t = tuple.args()[i];
      Position pos;
      if (t.IsConstant()) {
        pos.kind = Position::kConst;
        pos.value = t.value();
        pinned.push_back(i);
      } else if (const auto it = freezer.var_slots().find(t.name());
                 it != freezer.var_slots().end()) {
        pos.kind = Position::kSlot;
        pos.slot = it->second;
        pinned.push_back(i);
      } else {
        pos.kind = Position::kFree;
        fresh_positions[t.name()].push_back(i);
      }
      pattern.positions.push_back(std::move(pos));
    }
    for (auto& [name, positions] : fresh_positions) {
      if (positions.size() >= 2) {
        pattern.equal_groups.push_back(std::move(positions));
      }
    }
    // Canonical group order (verdict-irrelevant), so renamed-apart tuples
    // land in the same verdict class.
    std::sort(pattern.equal_groups.begin(), pattern.equal_groups.end());
    std::string key = tuple.predicate() + "/" + std::to_string(tuple.arity());
    for (const int p : pinned) key += "," + std::to_string(p);
    const auto [it, inserted] =
        index_by_key.emplace(key, static_cast<int>(indexes_.size()));
    if (inserted) {
      IndexData index;
      index.name = tuple.predicate();
      index.arity = tuple.arity();
      index.pinned = std::move(pinned);
      indexes_.push_back(std::move(index));
    }
    pattern.index_id = it->second;

    // The verdict depends only on the pinned values and the fresh
    // equality classes, not on fresh-variable names: serialize those into
    // the class key.
    std::string class_key = std::move(key);
    for (const Position& pos : pattern.positions) {
      switch (pos.kind) {
        case Position::kConst:
          class_key += ";C" + pos.value.ToString();
          break;
        case Position::kSlot:
          class_key += ";S" + std::to_string(pos.slot);
          break;
        case Position::kFree:
          class_key += ";F";
          break;
      }
    }
    for (const std::vector<int>& group : pattern.equal_groups) {
      class_key += ";G";
      for (const int p : group) class_key += "," + std::to_string(p);
    }
    const auto [cls, cls_new] =
        class_by_key.emplace(std::move(class_key), num_classes_);
    if (cls_new) ++num_classes_;
    class_of_.push_back(cls->second);
    patterns_.push_back(std::move(pattern));
  }
}

void FrozenTupleMatcher::BindDatabase(const ViewTupleEvaluator& ev) {
  ev_ = &ev;
  for (IndexData& index : indexes_) {
    index.built = false;
  }
  verdicts_.assign(num_classes_, -1);
}

void FrozenTupleMatcher::BuildIndex(IndexData* index) {
  index->entries.clear();
  if (const std::vector<int>* named = ev_->ViewsNamed(index->name)) {
    for (const int v : *named) {
      for (const Tuple& ground : ev_->ground(v).tuples()) {
        if (static_cast<int>(ground.size()) != index->arity) continue;
        std::vector<Rational> key;
        key.reserve(index->pinned.size());
        for (const int p : index->pinned) key.push_back(ground[p]);
        index->entries.emplace_back(std::move(key), &ground);
      }
    }
  }
  std::sort(index->entries.begin(), index->entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  index->built = true;
}

bool FrozenTupleMatcher::Matches(size_t i) {
  signed char& verdict = verdicts_[class_of_[i]];
  if (verdict < 0) verdict = MatchesUncached(patterns_[i]) ? 1 : 0;
  return verdict != 0;
}

bool FrozenTupleMatcher::MatchesUncached(const Pattern& pattern) {
  IndexData& index = indexes_[pattern.index_id];
  if (!index.built) BuildIndex(&index);
  probe_.clear();
  for (const int p : index.pinned) {
    const Position& pos = pattern.positions[p];
    probe_.push_back(pos.kind == Position::kConst
                         ? pos.value
                         : freezer_.var_values()[pos.slot]);
  }
  const auto lo = std::lower_bound(
      index.entries.begin(), index.entries.end(), probe_,
      [](const auto& entry, const std::vector<Rational>& key) {
        return entry.first < key;
      });
  for (auto it = lo; it != index.entries.end() && it->first == probe_; ++it) {
    bool ok = true;
    for (const std::vector<int>& group : pattern.equal_groups) {
      const Tuple& ground = *it->second;
      const Rational& first = ground[group.front()];
      for (size_t g = 1; g < group.size() && ok; ++g) {
        ok = ground[group[g]] == first;
      }
      if (!ok) break;
    }
    if (ok) return true;
  }
  return false;
}

}  // namespace cqac
