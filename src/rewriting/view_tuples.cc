#include "rewriting/view_tuples.h"

#include "engine/evaluate.h"

namespace cqac {

ViewTuples ComputeViewTuples(const ViewSet& views,
                             const CanonicalDatabase& cdb) {
  ViewTuples result;
  for (const ConjunctiveQuery& view : views.views()) {
    const Relation output = Evaluate(view, cdb.db);
    std::vector<Tuple>& ground = result.ground[view.name()];
    std::vector<Atom>& unfrozen = result.unfrozen[view.name()];
    for (const Tuple& tuple : output.tuples()) {
      ground.push_back(tuple);
      std::vector<Term> args;
      args.reserve(tuple.size());
      for (const Rational& value : tuple) {
        args.push_back(cdb.Unfreeze(value));
      }
      unfrozen.push_back(Atom(view.name(), std::move(args)));
      ++result.total;
    }
  }
  return result;
}

bool IsMoreRelaxedForm(const Atom& more_relaxed, const Atom& tuple) {
  if (more_relaxed.predicate() != tuple.predicate() ||
      more_relaxed.arity() != tuple.arity()) {
    return false;
  }
  std::map<std::string, Term> mapping;
  for (int i = 0; i < more_relaxed.arity(); ++i) {
    const Term& from = more_relaxed.args()[i];
    const Term& to = tuple.args()[i];
    if (from.IsConstant()) {
      if (from != to) return false;
      continue;
    }
    auto [it, inserted] = mapping.emplace(from.name(), to);
    if (!inserted && it->second != to) return false;
  }
  return true;
}

bool MatchesFrozenViewTuple(const Atom& mcd_tuple, const ViewTuples& tuples,
                            const CanonicalDatabase& cdb) {
  auto it = tuples.ground.find(mcd_tuple.predicate());
  if (it == tuples.ground.end()) return false;
  for (const Tuple& ground : it->second) {
    if (static_cast<int>(ground.size()) != mcd_tuple.arity()) continue;
    std::map<std::string, Rational> free_bindings;
    bool ok = true;
    for (int i = 0; i < mcd_tuple.arity() && ok; ++i) {
      const Term& t = mcd_tuple.args()[i];
      if (t.IsConstant()) {
        ok = t.value() == ground[i];
        continue;
      }
      auto frozen = cdb.assignment.find(t.name());
      if (frozen != cdb.assignment.end()) {
        // Query variable: pinned to its canonical value.
        ok = frozen->second == ground[i];
        continue;
      }
      // Fresh/existential variable: free, but used consistently.
      auto [binding, inserted] = free_bindings.emplace(t.name(), ground[i]);
      if (!inserted) ok = binding->second == ground[i];
    }
    if (ok) return true;
  }
  return false;
}

}  // namespace cqac
