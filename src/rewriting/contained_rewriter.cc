#include "rewriting/contained_rewriter.h"

#include <algorithm>
#include <set>
#include <string>

#include "constraints/ac_solver.h"
#include "constraints/orders.h"
#include "containment/cqac_containment.h"
#include "rewriting/expansion.h"
#include "rewriting/exportable.h"
#include "rewriting/minicon.h"

namespace cqac {

bool IsSemiInterval(const ConjunctiveQuery& q) {
  for (const Comparison& c : q.comparisons()) {
    const bool var_const = c.lhs().IsVariable() && c.rhs().IsConstant();
    const bool const_var = c.lhs().IsConstant() && c.rhs().IsVariable();
    const bool equality = c.op() == CompOp::kEq;
    if (!(var_const || const_var || equality)) return false;
  }
  return true;
}

ContainedRewriteResult FindContainedRewritings(
    const ConjunctiveQuery& query, const ViewSet& views,
    ContainedRewriteOptions options) {
  ContainedRewriteResult result;

  if (!AcSolver::IsSatisfiable(query.comparisons())) {
    return result;  // The empty union is the (maximal) rewriting.
  }

  const ConjunctiveQuery q0 = query.WithoutComparisons();
  std::vector<ConjunctiveQuery> v0_variants;
  for (const ConjunctiveQuery& view : views.views()) {
    for (ConjunctiveQuery& variant : BuildV0Variants(view)) {
      v0_variants.push_back(std::move(variant));
    }
  }
  const std::vector<Mcd> mcds = FormMcds(q0, v0_variants);

  std::vector<Rational> constants = query.Constants();
  for (const Rational& c : views.Constants()) {
    if (std::find(constants.begin(), constants.end(), c) == constants.end()) {
      constants.push_back(c);
    }
  }

  std::vector<ConjunctiveQuery> kept_disjuncts;
  std::vector<ConjunctiveQuery> kept_expansions;
  std::set<std::string> seen;

  ForEachMcdCombination(
      mcds, static_cast<int>(query.body().size()),
      [&](const std::vector<const Mcd*>& combination) {
        ++result.combinations;
        std::vector<Atom> body;
        for (const Mcd* mcd : combination) {
          if (std::find(body.begin(), body.end(), mcd->view_tuple) ==
              body.end()) {
            body.push_back(mcd->view_tuple);
          }
        }
        std::sort(body.begin(), body.end());
        ConjunctiveQuery base(query.head(), body);

        // Complete with every total order of the candidate's variables.
        bool keep_going = true;
        ForEachTotalOrder(
            base.AllVariables(), constants, [&](const TotalOrder& order) {
              ++result.candidates;
              if (options.max_disjuncts >= 0 &&
                  result.kept >= options.max_disjuncts) {
                result.truncated = true;
                keep_going = false;
                return false;
              }
              ConjunctiveQuery disjunct(
                  base.head(), base.body(),
                  order.ProjectedComparisons(base.AllVariables()));
              if (!seen.insert(disjunct.ToString()).second) return true;
              const ConjunctiveQuery expansion =
                  Expand(disjunct, views);
              const std::optional<ConjunctiveQuery> simplified =
                  SimplifyQuery(expansion);
              if (!simplified.has_value()) return true;  // Empty disjunct.
              if (CqacContainedCanonical(*simplified, query)) {
                kept_disjuncts.push_back(std::move(disjunct));
                kept_expansions.push_back(*simplified);
                ++result.kept;
              }
              return true;
            });
        return keep_going;
      });

  if (options.drop_subsumed && kept_disjuncts.size() > 1) {
    // Greedy pairwise subsumption on the expansions.
    std::vector<bool> dropped(kept_disjuncts.size(), false);
    for (size_t i = 0; i < kept_disjuncts.size(); ++i) {
      for (size_t j = 0; j < kept_disjuncts.size(); ++j) {
        if (i == j || dropped[j] || dropped[i]) continue;
        if (CqacContainedCanonical(kept_expansions[i], kept_expansions[j])) {
          // Break mutual-subsumption ties deterministically by index.
          if (!CqacContainedCanonical(kept_expansions[j],
                                      kept_expansions[i]) ||
              i > j) {
            dropped[i] = true;
            break;
          }
        }
      }
    }
    for (size_t i = 0; i < kept_disjuncts.size(); ++i) {
      if (!dropped[i]) result.rewriting.Add(std::move(kept_disjuncts[i]));
    }
  } else {
    result.rewriting = UnionQuery(std::move(kept_disjuncts));
  }
  return result;
}

}  // namespace cqac
