#include "rewriting/bucket.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "containment/cq_containment.h"
#include "rewriting/expansion.h"

namespace cqac {

namespace {

/// Tries to unify query subgoal `g` onto view subgoal `w` (both plain
/// atoms), producing the bucket entry: the view's head with each position
/// renamed to the query term mapped there, or a fresh variable.
/// `distinguished` holds the query's head variables, which must land on
/// the view's head to remain accessible.
std::optional<Atom> BucketEntry(const Atom& g, const Atom& w,
                                const ConjunctiveQuery& view,
                                const std::set<std::string>& distinguished,
                                int* fresh_counter) {
  if (g.predicate() != w.predicate() || g.arity() != w.arity()) {
    return std::nullopt;
  }
  std::set<std::string> view_head_vars;
  for (const Term& t : view.head().args()) {
    if (t.IsVariable()) view_head_vars.insert(t.name());
  }
  // psi: view variable -> query term (the inverse direction of a
  // containment mapping fragment, which is how the bucket algorithm names
  // its entries).
  std::map<std::string, Term> psi;
  std::map<std::string, Term> query_image;  // query var -> view term
  for (int i = 0; i < g.arity(); ++i) {
    const Term& qt = g.args()[i];
    const Term& vt = w.args()[i];
    if (vt.IsConstant()) {
      if (qt.IsConstant() && qt != vt) return std::nullopt;
      if (qt.IsVariable() && distinguished.count(qt.name()) > 0) {
        // Head variable pinned to a constant: representable (the head
        // argument becomes that constant), but the classical algorithm
        // simply keeps the pairing; we reject to stay conservative.
        return std::nullopt;
      }
      continue;
    }
    // vt is a view variable.
    const bool vt_distinguished = view_head_vars.count(vt.name()) > 0;
    if (qt.IsVariable() && distinguished.count(qt.name()) > 0 &&
        !vt_distinguished) {
      return std::nullopt;  // Distinguished query var lost in the view.
    }
    if (qt.IsConstant() && !vt_distinguished) {
      return std::nullopt;  // Constant cannot select on a projected-out var.
    }
    // Consistency both ways.
    if (auto it = psi.find(vt.name()); it != psi.end()) {
      if (it->second != qt) return std::nullopt;
    } else {
      psi.emplace(vt.name(), qt);
    }
    if (qt.IsVariable()) {
      if (auto it = query_image.find(qt.name()); it != query_image.end()) {
        if (it->second != vt) return std::nullopt;
      } else {
        query_image.emplace(qt.name(), vt);
      }
    }
  }
  // Entry: the view head renamed through psi; unseen head vars get fresh
  // names.
  std::vector<Term> args;
  std::map<std::string, Term> fresh;
  for (const Term& t : view.head().args()) {
    if (t.IsConstant()) {
      args.push_back(t);
      continue;
    }
    if (auto it = psi.find(t.name()); it != psi.end()) {
      args.push_back(it->second);
      continue;
    }
    auto it = fresh.find(t.name());
    if (it == fresh.end()) {
      it = fresh
               .emplace(t.name(), Term::Variable(
                                      "_b" + std::to_string((*fresh_counter)++)))
               .first;
    }
    args.push_back(it->second);
  }
  return Atom(view.name(), std::move(args));
}

}  // namespace

std::vector<std::vector<Atom>> BuildBuckets(const ConjunctiveQuery& query,
                                            const ViewSet& views) {
  std::set<std::string> distinguished;
  for (const std::string& v : query.HeadVariables()) distinguished.insert(v);

  std::vector<std::vector<Atom>> buckets(query.body().size());
  int fresh_counter = 0;
  for (size_t g = 0; g < query.body().size(); ++g) {
    for (const ConjunctiveQuery& raw_view : views.views()) {
      const ConjunctiveQuery view =
          raw_view.RenameVariables("_w" + raw_view.name() + "_");
      for (const Atom& w : view.body()) {
        std::optional<Atom> entry = BucketEntry(
            query.body()[g], w, view, distinguished, &fresh_counter);
        if (!entry.has_value()) continue;
        if (std::find(buckets[g].begin(), buckets[g].end(), *entry) ==
            buckets[g].end()) {
          buckets[g].push_back(*std::move(entry));
        }
      }
    }
  }
  return buckets;
}

UnionQuery BucketRewritings(const ConjunctiveQuery& query,
                            const ViewSet& views) {
  const std::vector<std::vector<Atom>> buckets = BuildBuckets(query, views);
  UnionQuery result;
  for (const auto& bucket : buckets) {
    if (bucket.empty()) return result;  // Some subgoal is uncoverable.
  }
  std::set<std::string> seen;
  // Odometer over the cartesian product of buckets.
  std::vector<size_t> idx(buckets.size(), 0);
  for (;;) {
    std::vector<Atom> body;
    for (size_t g = 0; g < buckets.size(); ++g) {
      const Atom& atom = buckets[g][idx[g]];
      if (std::find(body.begin(), body.end(), atom) == body.end()) {
        body.push_back(atom);
      }
    }
    ConjunctiveQuery candidate(query.head(), std::move(body));
    const ConjunctiveQuery expansion = Expand(candidate, views);
    // A contained rewriting's expansion must be contained in the query.
    if (CqContained(expansion, query) &&
        seen.insert(candidate.ToString()).second) {
      result.Add(candidate);
    }
    int pos = static_cast<int>(buckets.size()) - 1;
    while (pos >= 0 && ++idx[pos] == buckets[pos].size()) idx[pos--] = 0;
    if (pos < 0) break;
  }
  return result;
}

}  // namespace cqac
