#ifndef CQAC_REWRITING_BUCKET_H_
#define CQAC_REWRITING_BUCKET_H_

#include <vector>

#include "ast/query.h"
#include "rewriting/view_set.h"

namespace cqac {

/// The classical bucket algorithm (Levy, Rajaraman & Ordille) for plain
/// conjunctive queries: a contained-rewriting substrate the paper lists
/// among its relatives, implemented here both as a baseline for the
/// MiniCon module and for the data-integration example.
///
/// For each query subgoal, the bucket holds view atoms whose definitions
/// can cover that subgoal (some view subgoal unifies with it while keeping
/// the query's distinguished variables on the view's head).  Candidate
/// rewritings take one atom per bucket; each candidate is kept iff its
/// expansion is contained in the query.  The result is a union of
/// conjunctive queries, each a contained rewriting of `query`.
///
/// Comparisons on the query or views are not handled by this algorithm
/// (that is the point of the paper); callers pass plain CQs.

/// One bucket per query subgoal.
std::vector<std::vector<Atom>> BuildBuckets(const ConjunctiveQuery& query,
                                            const ViewSet& views);

/// Runs the full bucket algorithm and returns the union of all candidate
/// rewritings that passed the containment check.
UnionQuery BucketRewritings(const ConjunctiveQuery& query,
                            const ViewSet& views);

}  // namespace cqac

#endif  // CQAC_REWRITING_BUCKET_H_
