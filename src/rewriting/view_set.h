#ifndef CQAC_REWRITING_VIEW_SET_H_
#define CQAC_REWRITING_VIEW_SET_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "ast/query.h"

namespace cqac {

/// A named collection of view definitions (CQACs over the base schema).
/// Head predicates must be distinct; they double as the view names usable
/// in rewritings.
class ViewSet {
 public:
  ViewSet() = default;
  explicit ViewSet(std::vector<ConjunctiveQuery> views)
      : views_(std::move(views)) {}

  const std::vector<ConjunctiveQuery>& views() const { return views_; }
  bool empty() const { return views_.empty(); }
  int size() const { return static_cast<int>(views_.size()); }

  void Add(ConjunctiveQuery view) { views_.push_back(std::move(view)); }

  /// The view whose head predicate is `name`, or nullptr.
  const ConjunctiveQuery* Find(const std::string& name) const {
    for (const ConjunctiveQuery& v : views_) {
      if (v.name() == name) return &v;
    }
    return nullptr;
  }

  /// All constants occurring in any view, ascending and deduplicated.
  std::vector<Rational> Constants() const {
    std::vector<Rational> out;
    for (const ConjunctiveQuery& v : views_) {
      for (const Rational& c : v.Constants()) {
        bool present = false;
        for (const Rational& existing : out) {
          if (existing == c) {
            present = true;
            break;
          }
        }
        if (!present) out.push_back(c);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::vector<ConjunctiveQuery> views_;
};

}  // namespace cqac

#endif  // CQAC_REWRITING_VIEW_SET_H_
