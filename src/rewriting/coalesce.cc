#include "rewriting/coalesce.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "constraints/ac_solver.h"

namespace cqac {

namespace {

/// Sorted copy of a comparison list (canonical set representation).
std::vector<Comparison> Sorted(std::vector<Comparison> comps) {
  std::sort(comps.begin(), comps.end());
  return comps;
}

/// If `a OR b` (same term pair) collapses to one comparison or to "true",
/// returns the merged list contribution: nullopt = no rule applies;
/// an empty optional vector element convention is avoided by returning a
/// pair (applies, merged or drop).
struct MergeOutcome {
  bool applies = false;
  bool drop = false;          // The disjunction is a tautology.
  Comparison merged;          // Valid when applies && !drop.
};

MergeOutcome MergePair(const Comparison& a, const Comparison& raw_b) {
  MergeOutcome out;
  Comparison b = raw_b;
  if (!(b.lhs() == a.lhs() && b.rhs() == a.rhs())) {
    b = b.Flipped();
    if (!(b.lhs() == a.lhs() && b.rhs() == a.rhs())) return out;
  }
  const CompOp x = a.op();
  const CompOp y = b.op();
  auto is = [&](CompOp p, CompOp q) {
    return (x == p && y == q) || (x == q && y == p);
  };
  // Identical operators: plain duplicate.
  if (x == y) {
    out.applies = true;
    out.merged = a;
    return out;
  }
  // Disjunctions that weaken to a single operator.
  if (is(CompOp::kLt, CompOp::kEq) || is(CompOp::kLt, CompOp::kLe) ||
      is(CompOp::kLe, CompOp::kEq)) {
    out.applies = true;
    out.merged = Comparison(a.lhs(), CompOp::kLe, a.rhs());
    return out;
  }
  if (is(CompOp::kGt, CompOp::kEq) || is(CompOp::kGt, CompOp::kGe) ||
      is(CompOp::kGe, CompOp::kEq)) {
    out.applies = true;
    out.merged = Comparison(a.lhs(), CompOp::kGe, a.rhs());
    return out;
  }
  // Complementary pairs: the disjunction is true over a total order.
  if (is(CompOp::kLt, CompOp::kGe) || is(CompOp::kLe, CompOp::kGt) ||
      is(CompOp::kLe, CompOp::kGe) || is(CompOp::kEq, CompOp::kNe)) {
    out.applies = true;
    out.drop = true;
    return out;
  }
  // `< OR >` would need `!=`, which the rewriting language avoids.
  return out;
}

/// Tries to merge two comparison sets that differ in exactly one element.
std::optional<std::vector<Comparison>> TryMergeSets(
    const std::vector<Comparison>& a, const std::vector<Comparison>& b) {
  if (a.size() != b.size()) return std::nullopt;
  // Find the symmetric difference.
  std::vector<Comparison> only_a, only_b, common;
  for (const Comparison& c : a) {
    if (std::find(b.begin(), b.end(), c) == b.end()) {
      only_a.push_back(c);
    } else {
      common.push_back(c);
    }
  }
  for (const Comparison& c : b) {
    if (std::find(a.begin(), a.end(), c) == a.end()) only_b.push_back(c);
  }
  if (only_a.size() != 1 || only_b.size() != 1) return std::nullopt;
  const MergeOutcome outcome = MergePair(only_a[0], only_b[0]);
  if (!outcome.applies) return std::nullopt;
  if (!outcome.drop) common.push_back(outcome.merged);
  return Sorted(std::move(common));
}

}  // namespace

UnionQuery CoalesceUnion(const UnionQuery& u) {
  // Group by (head, sorted body).
  struct Group {
    Atom head;
    std::vector<Atom> body;
    std::vector<std::vector<Comparison>> comp_sets;
  };
  std::map<std::string, Group> groups;
  for (const ConjunctiveQuery& d : u.disjuncts()) {
    std::vector<Atom> body = d.body();
    std::sort(body.begin(), body.end());
    std::string key = d.head().ToString();
    for (const Atom& a : body) key += "|" + a.ToString();
    Group& g = groups[key];
    if (g.comp_sets.empty()) {
      g.head = d.head();
      g.body = body;
    }
    g.comp_sets.push_back(Sorted(d.comparisons()));
  }

  UnionQuery out;
  for (auto& [key, group] : groups) {
    (void)key;
    std::vector<std::vector<Comparison>>& sets = group.comp_sets;
    bool changed = true;
    while (changed) {
      changed = false;
      // Drop exact duplicates and unsatisfiable members.
      for (size_t i = 0; i < sets.size() && !changed; ++i) {
        if (!AcSolver::IsSatisfiable(sets[i])) {
          sets.erase(sets.begin() + i);
          changed = true;
          break;
        }
        for (size_t j = i + 1; j < sets.size(); ++j) {
          if (sets[i] == sets[j]) {
            sets.erase(sets.begin() + j);
            changed = true;
            break;
          }
        }
      }
      if (changed) continue;
      // Subsumption: i's region inside j's.
      for (size_t i = 0; i < sets.size() && !changed; ++i) {
        for (size_t j = 0; j < sets.size(); ++j) {
          if (i == j) continue;
          if (AcSolver::ImpliesAll(sets[i], sets[j])) {
            sets.erase(sets.begin() + i);
            changed = true;
            break;
          }
        }
      }
      if (changed) continue;
      // Single-difference merges.
      for (size_t i = 0; i < sets.size() && !changed; ++i) {
        for (size_t j = i + 1; j < sets.size(); ++j) {
          std::optional<std::vector<Comparison>> merged =
              TryMergeSets(sets[i], sets[j]);
          if (merged.has_value()) {
            sets.erase(sets.begin() + j);
            sets[i] = AcSolver::RemoveRedundant(*std::move(merged));
            std::sort(sets[i].begin(), sets[i].end());
            changed = true;
            break;
          }
        }
      }
    }
    for (std::vector<Comparison>& comps : sets) {
      out.Add(ConjunctiveQuery(group.head, group.body, std::move(comps)));
    }
  }
  return out;
}

}  // namespace cqac
