#include "rewriting/equiv_rewriter.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <set>

#include "constraints/ac_solver.h"
#include "constraints/orders.h"
#include "containment/cqac_containment.h"
#include "engine/canonical.h"
#include "engine/coded_eval.h"
#include "engine/evaluate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewriting/coalesce.h"
#include "rewriting/expansion.h"
#include "rewriting/exportable.h"
#include "rewriting/minicon.h"
#include "rewriting/view_tuples.h"
#include "runtime/memo_cache.h"
#include "runtime/parallel_rewriter.h"

namespace cqac {

namespace {

/// Steady-clock nanoseconds for the RewriteStats wall-time fields.  Never
/// fed back into the algorithm: timing can shift scheduling but not
/// results.
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The expansion of `disjunct`, simplified when requested.  Unsatisfiable
/// expansions stay as-is (they compute nothing and pass containment
/// trivially).
ConjunctiveQuery ExpandForCheck(const ConjunctiveQuery& disjunct,
                                const ViewSet& views, bool simplify) {
  ConjunctiveQuery expansion = Expand(disjunct, views);
  if (simplify) {
    std::optional<ConjunctiveQuery> simplified = SimplifyQuery(expansion);
    if (simplified.has_value()) return *std::move(simplified);
  }
  return expansion;
}

/// True when `tuple`'s MCD-fresh variables (prefix "_f"; unique to one
/// tuple by construction) can be renamed to make it equal to `other`.
/// Such a tuple adds nothing to the Pre-Rewriting: the fold is a
/// containment mapping in one direction and the identity works in the
/// other, so dropping it preserves equivalence — while genuinely
/// redundant-but-distinct subgoals (the paper's Example 3) are kept.
bool FoldsOntoTuple(const Atom& tuple, const Atom& other) {
  if (&tuple == &other) return false;
  if (tuple.predicate() != other.predicate() ||
      tuple.arity() != other.arity() || tuple == other) {
    return false;
  }
  Substitution binding;
  for (int i = 0; i < tuple.arity(); ++i) {
    const Term& t = tuple.args()[i];
    const Term& o = other.args()[i];
    if (t.IsVariable() && t.name().rfind("_f", 0) == 0) {
      if (binding.IsBound(t.name())) {
        if (binding.Lookup(t.name()) != o) return false;
      } else {
        binding.Bind(t.name(), o);
      }
    } else if (t != o) {
      return false;
    }
  }
  return true;
}

/// The structural key of the current canonical database for Phase-1
/// deduplication: every view's ground tuples rendered unfrozen (block
/// representatives), plus the variable -> block-representative map.  The
/// kept MCD set under every pruning mode, the combination verdict, and the
/// Pre-Rewriting body are pure functions of this key — only the projected
/// order comparisons are not, and those are rebuilt per database.
std::string BuildPhase1Key(const CanonicalFreezer& freezer,
                           const ViewTupleEvaluator& ev) {
  std::string key;
  key.reserve(256);
  for (int v = 0; v < ev.view_count(); ++v) {
    key += '#';
    key += std::to_string(v);
    for (const Tuple& ground : ev.ground(v).tuples()) {
      key += '(';
      for (const Rational& value : ground) {
        key += freezer.UnfreezeValue(value).ToString();
        key += ',';
      }
      key += ')';
    }
  }
  key += '|';
  const std::vector<std::string>& names = freezer.slot_names();
  const std::vector<uint32_t>& blocks = freezer.var_blocks();
  const std::vector<Term>& reps = freezer.block_reps();
  for (size_t s = 0; s < names.size(); ++s) {
    key += names[s];
    key += '=';
    key += reps[blocks[s]].ToString();
    key += ';';
  }
  return key;
}

}  // namespace

void RewriteStats::Merge(const RewriteStats& other) {
  canonical_databases += other.canonical_databases;
  kept_canonical_databases += other.kept_canonical_databases;
  v0_variants += other.v0_variants;
  mcds_formed += other.mcds_formed;
  mcds_kept_total += other.mcds_kept_total;
  view_tuples_total += other.view_tuples_total;
  phase2_checks += other.phase2_checks;
  phase2_orders += other.phase2_orders;
  phase1_memo_hits += other.phase1_memo_hits;
  phase1_memo_misses += other.phase1_memo_misses;
  tier1_grid_hits += other.tier1_grid_hits;
  tier1_grid_misses += other.tier1_grid_misses;
  tier2_jointree_evals += other.tier2_jointree_evals;
  enumeration_ns += other.enumeration_ns;
  freeze_ns += other.freeze_ns;
  phase1_ns += other.phase1_ns;
  phase2_ns += other.phase2_ns;
}

void RecordRewriteMetrics(const RewriteStats& stats) {
  if (!obs::MetricsActive()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("rewrite.runs").Add(1);
  registry.counter("rewrite.canonical_databases")
      .Add(stats.canonical_databases);
  registry.counter("rewrite.kept_canonical_databases")
      .Add(stats.kept_canonical_databases);
  registry.counter("rewrite.phase2_checks").Add(stats.phase2_checks);
  registry.counter("rewrite.phase2_orders").Add(stats.phase2_orders);
  registry.counter("phase1_memo.hits").Add(stats.phase1_memo_hits);
  registry.counter("phase1_memo.misses").Add(stats.phase1_memo_misses);
  registry.counter("tier1_grid.hits").Add(stats.tier1_grid_hits);
  registry.counter("tier1_grid.misses").Add(stats.tier1_grid_misses);
  registry.counter("tier2.jointree_evals").Add(stats.tier2_jointree_evals);
}

RewriteWork PrepareRewriteWork(const ConjunctiveQuery& query,
                               const ViewSet& views,
                               const RewriteOptions& options) {
  return PrepareRewriteWork(query, views, options, nullptr, nullptr);
}

RewriteWork PrepareRewriteWork(
    const ConjunctiveQuery& query, const ViewSet& views,
    const RewriteOptions& options,
    const std::vector<ConjunctiveQuery>* precompiled_v0,
    const std::vector<Rational>* view_constants) {
  CQAC_TRACE_SPAN("prepare.work");
  RewriteWork work(query, views, options);

  // Q0 and the exported variants V0 (Section 3.2 / Examples 5 and 6).
  work.q0 = query.WithoutComparisons();
  if (precompiled_v0 != nullptr) {
    work.v0_variants = *precompiled_v0;
  } else {
    for (const ConjunctiveQuery& view : views.views()) {
      for (ConjunctiveQuery& variant : BuildV0Variants(view)) {
        work.v0_variants.push_back(std::move(variant));
      }
    }
  }

  // MiniCon phase 1 over Q0/V0 (the buckets; formed once).
  {
    CQAC_TRACE_SPAN("prepare.mcd_formation");
    work.mcds = FormMcds(work.q0, work.v0_variants);
  }

  // All constants of the query and the views participate in the orders.
  work.constants = query.Constants();
  {
    std::vector<Rational> derived;
    const std::vector<Rational>& vc =
        view_constants != nullptr ? *view_constants
                                  : (derived = views.Constants());
    for (const Rational& c : vc) {
      if (std::find(work.constants.begin(), work.constants.end(), c) ==
          work.constants.end()) {
        work.constants.push_back(c);
      }
    }
  }

  // Route the run to an execution tier before Phase 1.  The classifier is
  // purely structural (no data); forcing (options.force_tier) applies
  // only when the forced tier's eligibility holds.
  {
    CQAC_TRACE_SPAN("structure.tier");
    work.tier = ResolveTier(ClassifyStructure(query, views), options.force_tier);
    if (work.tier.tier != ExecutionTier::kGeneral) {
      work.grid_cache =
          std::make_shared<GridVerdictCache>(query.AllVariables());
    }
    if (work.tier.tier == ExecutionTier::kAcyclic) {
      if (std::optional<AcyclicPlan> plan = AcyclicPlanFor(query)) {
        work.acyclic_plan =
            std::make_shared<const AcyclicPlan>(*std::move(plan));
      }
    }
    if (obs::MetricsActive()) {
      obs::MetricsRegistry::Global()
          .counter(std::string("rewrite.tier.") + TierName(work.tier.tier))
          .Add(1);
    }
  }

  static std::atomic<uint64_t> next_work_id{1};
  work.work_id = next_work_id.fetch_add(1, std::memory_order_relaxed);

  work.num_subgoals = static_cast<int>(query.body().size());

  // Precompute the atom relations the per-database assembly needs.
  const size_t m = work.mcds.size();
  work.mcd_dup_of.resize(m);
  work.mcd_rank.resize(m);
  work.mcd_folds.assign(m * m, 0);
  std::vector<int> distinct;
  for (size_t i = 0; i < m; ++i) {
    work.mcd_dup_of[i] = static_cast<int>(i);
    for (size_t j = 0; j < i; ++j) {
      if (work.mcds[j].view_tuple == work.mcds[i].view_tuple) {
        work.mcd_dup_of[i] = work.mcd_dup_of[j];
        break;
      }
    }
    if (work.mcd_dup_of[i] == static_cast<int>(i)) {
      distinct.push_back(static_cast<int>(i));
    }
    for (size_t j = 0; j < m; ++j) {
      work.mcd_folds[i * m + j] =
          FoldsOntoTuple(work.mcds[i].view_tuple, work.mcds[j].view_tuple);
    }
  }
  std::sort(distinct.begin(), distinct.end(), [&work](int a, int b) {
    return work.mcds[a].view_tuple < work.mcds[b].view_tuple;
  });
  for (size_t r = 0; r < distinct.size(); ++r) {
    work.mcd_rank[distinct[r]] = static_cast<int>(r);
  }
  for (size_t i = 0; i < m; ++i) {
    work.mcd_rank[i] = work.mcd_rank[work.mcd_dup_of[i]];
  }
  return work;
}

/// Phase-1 steps 2-3.7 proper; the public ProcessCanonicalDatabase wraps
/// it with the per-database span and wall-time accounting (kept outside so
/// the duration lands in the returned stats after the body finishes).
static DatabaseOutcome ProcessCanonicalDatabaseImpl(const RewriteWork& work,
                                                    const TotalOrder& order,
                                                    Phase1Memo* memo) {
  const RewriteOptions& options = work.options;
  DatabaseOutcome out;
  if (options.explain) out.trace.order = order.ToString();

  // Keep only databases on which the query computes its frozen head
  // (general evaluation: the identity freezing need not be the witnessing
  // embedding).  The keep-test runs on a delta freeze with the shared
  // prepared plan — consecutive orders differ in few blocks, so the
  // freezer patches only the moved rows, and the view evaluator re-derives
  // only views whose relations changed.  The caches are per-thread
  // (ProcessCanonicalDatabase runs on worker threads) and are recompiled
  // when a different run's work arrives.
  struct Phase1Cache {
    uint64_t work_id = 0;
    std::optional<CanonicalFreezer> freezer;
    std::optional<ViewTupleEvaluator> evaluator;
    std::optional<FrozenTupleMatcher> matcher;
    // Coded keep-test over work.prepared_query's plan; only valid while
    // work_id matches (the plan pointer dies with the RewriteWork).
    std::optional<CodedEvaluator> coded;
    PreparedQuery::Scratch scratch;
    AcyclicPlan::Scratch jointree;
    std::string grid_key;
  };
  static thread_local Phase1Cache cache;
  const bool use_row_engine = internal::RowEngineForced();
  if (cache.work_id != work.work_id) {
    cache.freezer.emplace(work.query);
    cache.evaluator.emplace(work.views);
    std::vector<Atom> mcd_tuples;
    mcd_tuples.reserve(work.mcds.size());
    for (const Mcd& mcd : work.mcds) mcd_tuples.push_back(mcd.view_tuple);
    cache.matcher.emplace(std::move(mcd_tuples), *cache.freezer);
    cache.coded.reset();
    if (!use_row_engine) {
      // Prime with the run's merged constants (the same set the order
      // enumerator uses): no order can then surface an unseen value, so
      // steady-state keep-tests allocate nothing.
      cache.freezer->PrimeDictionary(work.constants,
                                     work.query.AllVariables().size());
      cache.coded.emplace(&work.prepared_query.plan());
      cache.coded->BindTo(&*cache.freezer);
    }
    cache.work_id = work.work_id;
  }
  bool computes_head;
  bool grid_miss = false;
  {
    CQAC_TRACE_SPAN("phase1.freeze");
    const int64_t freeze_t0 = NowNs();
    // T1/T2 grid cache: the keep verdict is a pure function of the
    // order's grid class (soundness argument at GridVerdictCache), so a
    // cached skip needs neither the freeze nor the evaluation, and a
    // cached keep still freezes (downstream steps read the instance) but
    // skips the evaluation.  Explain runs bypass the cache, like the
    // Phase-1 memo, so every database's trace stays complete.
    std::optional<bool> cached;
    const bool use_grid = work.grid_cache != nullptr && !options.explain;
    if (use_grid) {
      work.grid_cache->BuildKey(order, &cache.grid_key);
      cached = work.grid_cache->Get(cache.grid_key);
      if (cached.has_value()) {
        ++out.stats.tier1_grid_hits;
      } else {
        grid_miss = true;
        ++out.stats.tier1_grid_misses;
      }
      if (cached.has_value() && !*cached) {
        out.stats.freeze_ns += NowNs() - freeze_t0;
        out.status = DatabaseOutcome::Status::kSkipped;
        return out;
      }
    }
    const FlatInstance& inst = cache.freezer->Freeze(order);
    if (cached.has_value()) {
      computes_head = true;  // A cached keep verdict; skip the evaluation.
    } else if (work.acyclic_plan != nullptr) {
      computes_head = work.acyclic_plan->Run(
          inst, cache.freezer->frozen_head(), &cache.jointree);
      ++out.stats.tier2_jointree_evals;
    } else {
      computes_head =
          (use_row_engine || !cache.coded.has_value())
              ? work.prepared_query.Run(inst, &cache.freezer->frozen_head(),
                                        nullptr, &cache.scratch)
              : cache.coded->Run(*cache.freezer, /*match_frozen_head=*/true,
                                 nullptr);
    }
    if (grid_miss) work.grid_cache->Put(cache.grid_key, computes_head);
    out.stats.freeze_ns += NowNs() - freeze_t0;
  }
  if (!computes_head) {
    out.status = DatabaseOutcome::Status::kSkipped;
    if (options.explain) out.trace.status = "skipped";
    return out;
  }
  out.trace.computes_head = true;
  ++out.stats.kept_canonical_databases;

  // Step 3.1-3.2: view tuples T_i(V), from the epoch-gated evaluator.
  {
    CQAC_TRACE_SPAN("phase1.view_tuples");
    cache.evaluator->Refresh(*cache.freezer);
  }
  out.stats.view_tuples_total += cache.evaluator->total();
  if (options.explain) out.trace.view_tuples = cache.evaluator->total();
  if (cache.evaluator->total() == 0) {
    out.status = DatabaseOutcome::Status::kFailed;
    out.failure_reason =
        "no view produces any tuple on canonical database [" +
        order.ToString() + "]";
    if (options.explain) out.trace.status = "no-view-tuples";
    return out;
  }

  // Databases with equal structural keys share one Phase-1 conclusion:
  // on a (verified) fingerprint hit the kept count, combination verdict,
  // and Pre-Rewriting body are replayed, and only the order-dependent
  // projected comparisons are rebuilt.  Explain runs bypass the memo so
  // every database's trace stays complete.
  if (options.explain) memo = nullptr;
  std::string memo_key;
  Phase1Fingerprint memo_fp;
  if (memo != nullptr) {
    Phase1Entry entry;
    bool hit;
    {
      CQAC_TRACE_SPAN("phase1.memo_probe");
      memo_key = BuildPhase1Key(*cache.freezer, *cache.evaluator);
      memo_fp = FingerprintPhase1Key(memo_key);
      hit = memo->Get(memo_fp, memo_key, &entry);
    }
    if (hit) {
      ++out.stats.phase1_memo_hits;
      out.stats.mcds_kept_total += entry.mcds_kept;
      if (!entry.combination_exists) {
        out.status = DatabaseOutcome::Status::kFailed;
        out.failure_reason =
            "no MiniCon combination covers the query on canonical "
            "database [" +
            order.ToString() + "]";
        return out;
      }
      std::vector<Atom> body;
      body.reserve(entry.body_mcds.size());
      for (const int i : entry.body_mcds) {
        body.push_back(work.mcds[i].view_tuple);
      }
      out.pre_rewriting =
          ConjunctiveQuery(work.query.head(), std::move(body),
                           order.ProjectedComparisons(entry.body_vars));
      out.status = DatabaseOutcome::Status::kKept;
      return out;
    }
    ++out.stats.phase1_memo_misses;
  }

  // Step 3.4: prune bucket entries against the database's tuples.  Kept
  // MCDs are tracked by index into work.mcds; nothing is copied until the
  // surviving tuples enter the Pre-Rewriting body.
  const size_t num_mcds = work.mcds.size();
  std::vector<int> kept;
  {
    CQAC_TRACE_SPAN("phase1.bucket_prune");
    switch (options.pruning) {
      case RewriteOptions::Pruning::kNone:
        kept.resize(num_mcds);
        for (size_t m = 0; m < num_mcds; ++m) kept[m] = static_cast<int>(m);
        break;
      case RewriteOptions::Pruning::kRelaxedForm: {
        // Definition 2 works on unfrozen tuples; build them for this
        // database (the frozen-match default never needs them).
        std::map<std::string, std::vector<Atom>> unfrozen;
        for (int v = 0; v < cache.evaluator->view_count(); ++v) {
          std::vector<Atom>& atoms = unfrozen[cache.evaluator->view_name(v)];
          for (const Tuple& ground : cache.evaluator->ground(v).tuples()) {
            std::vector<Term> args;
            args.reserve(ground.size());
            for (const Rational& value : ground) {
              args.push_back(cache.freezer->UnfreezeValue(value));
            }
            atoms.push_back(Atom(cache.evaluator->view_name(v),
                                 std::move(args)));
          }
        }
        for (size_t m = 0; m < num_mcds; ++m) {
          const auto it = unfrozen.find(work.mcds[m].view_tuple.predicate());
          if (it == unfrozen.end()) continue;
          for (const Atom& t : it->second) {
            if (IsMoreRelaxedForm(work.mcds[m].view_tuple, t)) {
              kept.push_back(static_cast<int>(m));
              break;
            }
          }
        }
        break;
      }
      case RewriteOptions::Pruning::kFrozenMatch: {
        cache.matcher->BindDatabase(*cache.evaluator);
        for (size_t m = 0; m < num_mcds; ++m) {
          if (cache.matcher->Matches(m)) kept.push_back(static_cast<int>(m));
        }
        break;
      }
    }
  }
  out.stats.mcds_kept_total += static_cast<int64_t>(kept.size());
  if (options.explain) {
    out.trace.kept_mcds = static_cast<int64_t>(kept.size());
  }

  // Step 3.5: MiniCon phase 2 as an existence check.
  if (!McdCombinationExists(work.mcds, kept, work.num_subgoals)) {
    if (memo != nullptr) {
      memo->Put(memo_fp,
                Phase1Entry{std::move(memo_key), false,
                            static_cast<int64_t>(kept.size()),
                            {},
                            {}});
    }
    out.status = DatabaseOutcome::Status::kFailed;
    out.failure_reason =
        "no MiniCon combination covers the query on canonical "
        "database [" +
        order.ToString() + "]";
    if (options.explain) out.trace.status = "no-mcr";
    return out;
  }
  if (options.explain) out.trace.combination_exists = true;

  // Steps 3.6-3.7 and Phase 2 task (a): the Pre-Rewriting holds all
  // surviving view tuples plus the database's order constraints projected
  // onto the variables it uses.  Dedup, fold-drop, and sort run on the
  // precomputed per-run relations (work.mcd_dup_of / mcd_folds /
  // mcd_rank); the result is identical to deduplicating with std::find,
  // dropping with FoldsOntoTuple, and sorting atoms directly.
  std::vector<int> body_idx;
  {
    std::vector<char> seen_rep(num_mcds, 0);
    for (const int k : kept) {
      const int rep = work.mcd_dup_of[k];
      if (!seen_rep[rep]) {
        seen_rep[rep] = 1;
        body_idx.push_back(rep);
      }
    }
  }
  // Drop tuples whose fresh variables fold onto another kept tuple.
  {
    std::vector<char> dropped(body_idx.size(), 0);
    for (size_t i = 0; i < body_idx.size(); ++i) {
      for (size_t j = 0; j < body_idx.size(); ++j) {
        if (i == j || dropped[j]) continue;
        if (work.mcd_folds[body_idx[i] * num_mcds + body_idx[j]]) {
          dropped[i] = 1;
          break;
        }
      }
    }
    std::vector<int> reduced;
    for (size_t i = 0; i < body_idx.size(); ++i) {
      if (!dropped[i]) reduced.push_back(body_idx[i]);
    }
    body_idx = std::move(reduced);
  }
  std::sort(body_idx.begin(), body_idx.end(), [&work](int a, int b) {
    return work.mcd_rank[a] < work.mcd_rank[b];
  });
  std::vector<Atom> body;
  body.reserve(body_idx.size());
  for (const int i : body_idx) body.push_back(work.mcds[i].view_tuple);
  std::vector<std::string> body_vars;
  {
    std::set<std::string> seen;
    for (const Atom& a : body) {
      for (const Term& t : a.args()) {
        if (t.IsVariable() && seen.insert(t.name()).second) {
          body_vars.push_back(t.name());
        }
      }
    }
  }
  if (memo != nullptr) {
    memo->Put(memo_fp,
              Phase1Entry{std::move(memo_key), true,
                          static_cast<int64_t>(kept.size()), body_idx,
                          body_vars});
  }
  ConjunctiveQuery pre(work.query.head(), std::move(body),
                       order.ProjectedComparisons(body_vars));
  if (options.explain) {
    out.trace.pre_rewriting = pre.ToString();
    out.trace.status = "ok";
  }
  out.pre_rewriting = std::move(pre);
  out.status = DatabaseOutcome::Status::kKept;
  return out;
}

DatabaseOutcome ProcessCanonicalDatabase(const RewriteWork& work,
                                         const TotalOrder& order,
                                         Phase1Memo* memo) {
  CQAC_TRACE_SPAN("phase1.database");
  const int64_t t0 = NowNs();
  DatabaseOutcome out = ProcessCanonicalDatabaseImpl(work, order, memo);
  const int64_t dur = NowNs() - t0;
  out.stats.phase1_ns += dur;
  if (obs::MetricsActive()) {
    // The registry never invalidates references, so the lookup happens
    // once per process, not once per canonical database.
    static obs::Histogram& wall =
        obs::MetricsRegistry::Global().histogram("phase1.db_wall_ns");
    wall.Observe(dur);
  }
  return out;
}

static Phase2Outcome CheckExpansionContainedImpl(const RewriteWork& work,
                                                 const ConjunctiveQuery& pre,
                                                 MemoCache* memo) {
  ConjunctiveQuery expansion;
  {
    CQAC_TRACE_SPAN("phase2.expand");
    expansion =
        ExpandForCheck(pre, work.views, work.options.simplify_expansions);
  }
  std::string key;
  if (memo != nullptr) {
    CQAC_TRACE_SPAN("phase2.memo_probe");
    key = ContainmentMemoKey(expansion, work.query);
    if (std::optional<bool> cached = memo->Get(key); cached.has_value()) {
      Phase2Outcome out;
      out.contained = *cached;
      out.cache_hit = true;
      return out;
    }
  }
  ContainmentStats cstats;
  Phase2Outcome out;
  out.contained = CqacContainedCanonical(expansion, work.query, &cstats,
                                         work.acyclic_plan.get());
  out.orders_enumerated = cstats.orders_enumerated;
  if (memo != nullptr) memo->Put(key, out.contained);
  return out;
}

Phase2Outcome CheckExpansionContained(const RewriteWork& work,
                                      const ConjunctiveQuery& pre,
                                      MemoCache* memo) {
  CQAC_TRACE_SPAN("phase2.check");
  const int64_t t0 = NowNs();
  Phase2Outcome out = CheckExpansionContainedImpl(work, pre, memo);
  out.wall_ns = NowNs() - t0;
  if (obs::MetricsActive()) {
    static obs::Histogram& wall =
        obs::MetricsRegistry::Global().histogram("phase2.check_wall_ns");
    wall.Observe(out.wall_ns);
  }
  return out;
}

void FinalizeFoundRewriting(const RewriteWork& work,
                            std::vector<ConjunctiveQuery> pre_rewritings,
                            RewriteResult* result) {
  CQAC_TRACE_SPAN("finalize");
  const RewriteOptions& options = work.options;

  UnionQuery rewriting(std::move(pre_rewritings));
  if (options.coalesce_output) rewriting = CoalesceUnion(rewriting);

  // The default frozen-match pruning guarantees Lemma 2 (every
  // Pre-Rewriting computes the query's head on its canonical database, so
  // the union contains the query).  The ablation modes do not: without
  // step 3.4 the Pre-Rewritings can conjoin mutually exclusive view
  // tuples (e.g. the paper's Example 2 with no pruning joins v1 and v2,
  // whose expansion demands both X = 0 and X > 0 witnesses).  Check the
  // missing direction explicitly for those modes.
  if (options.pruning != RewriteOptions::Pruning::kFrozenMatch) {
    UnionQuery expanded;
    for (const ConjunctiveQuery& d : rewriting.disjuncts()) {
      expanded.Add(
          ExpandForCheck(d, work.views, options.simplify_expansions));
    }
    if (!CqacContainedInUnion(work.query, expanded)) {
      result->outcome = RewriteOutcome::kNoRewriting;
      result->failure_reason =
          "union of Pre-Rewritings does not contain the query (weakened "
          "pruning mode lost Lemma 2)";
      return;
    }
  }

  // Optional output minimization: drop disjuncts covered by the others.
  if (options.minimize_output && rewriting.size() > 1) {
    std::vector<ConjunctiveQuery> disjuncts = rewriting.disjuncts();
    for (size_t i = 0; i < disjuncts.size() && disjuncts.size() > 1;) {
      UnionQuery others_expanded;
      for (size_t j = 0; j < disjuncts.size(); ++j) {
        if (j != i) {
          others_expanded.Add(ExpandForCheck(disjuncts[j], work.views,
                                             options.simplify_expansions));
        }
      }
      const ConjunctiveQuery expansion_i = ExpandForCheck(
          disjuncts[i], work.views, options.simplify_expansions);
      if (CqacContainedInUnion(expansion_i, others_expanded)) {
        disjuncts.erase(disjuncts.begin() + i);
      } else {
        ++i;
      }
    }
    rewriting = UnionQuery(std::move(disjuncts));
  }

  result->rewriting = std::move(rewriting);
  result->outcome = RewriteOutcome::kRewritingFound;

  if (options.verify) {
    result->verified =
        RewritingIsEquivalent(work.query, result->rewriting, work.views);
  }
}

RewriteResult EquivalentRewriter::Run() {
  if (options_.jobs != 1) {
    return ParallelRewrite(query_, views_, options_, memo_);
  }
  RewriteResult result = RunSerial();
  RecordRewriteMetrics(result.stats);
  return result;
}

RewriteResult RunPreparedRewriteSerial(const RewriteWork& work,
                                       const RewriteOptions& driver,
                                       MemoCache* memo,
                                       Phase1Memo* phase1_memo) {
  RewriteResult result;
  result.stats.v0_variants = static_cast<int64_t>(work.v0_variants.size());
  result.stats.mcds_formed = static_cast<int64_t>(work.mcds.size());
  result.tier = static_cast<int>(work.tier.tier);
  result.tier_reason = work.tier.reason;

  const bool explain = work.options.explain;

  // --- Phase 1: one Pre-Rewriting per kept canonical database ---

  std::vector<ConjunctiveQuery> pre_rewritings;
  std::set<std::string> pre_rewriting_keys;
  bool failed = false;
  bool aborted = false;
  bool cancelled = false;

  // With no external (catalog-scoped) memo, the Phase-1 memo lives and
  // dies with this run (its entries index into `work`).
  std::optional<Phase1Memo> local_memo;
  if (phase1_memo == nullptr && driver.phase1_dedup && !explain) {
    local_memo.emplace();
    phase1_memo = &*local_memo;
  }

  const int64_t enumerate_t0 = NowNs();
  {
  CQAC_TRACE_SPAN("phase1.enumerate");
  ForEachTotalOrder(
      work.query.AllVariables(), work.constants,
      [&](const TotalOrder& order) {
        if (driver.cancel != nullptr && driver.cancel->cancelled()) {
          cancelled = true;
          return false;
        }
        ++result.stats.canonical_databases;
        if (driver.max_canonical_databases >= 0 &&
            result.stats.canonical_databases >
                driver.max_canonical_databases) {
          aborted = true;
          return false;
        }
        DatabaseOutcome out =
            ProcessCanonicalDatabase(work, order, phase1_memo);
        result.stats.Merge(out.stats);
        if (explain) {
          result.trace.databases.push_back(std::move(out.trace));
        }
        if (out.status == DatabaseOutcome::Status::kFailed) {
          failed = true;
          result.failure_reason = std::move(out.failure_reason);
          return false;
        }
        if (out.status == DatabaseOutcome::Status::kKept &&
            pre_rewriting_keys.insert(out.pre_rewriting->ToString())
                .second) {
          pre_rewritings.push_back(*std::move(out.pre_rewriting));
        }
        return true;
      });
  }
  result.stats.enumeration_ns = NowNs() - enumerate_t0;

  if (cancelled) {
    result.outcome = RewriteOutcome::kAborted;
    result.failure_reason = kCancelledReason;
    return result;
  }
  if (aborted) {
    result.outcome = RewriteOutcome::kAborted;
    result.failure_reason = "canonical database budget exceeded";
    return result;
  }
  if (failed) {
    result.outcome = RewriteOutcome::kNoRewriting;
    return result;
  }
  if (pre_rewritings.empty()) {
    // The query computes its head on no canonical database: impossible for
    // a satisfiable safe query, but guard anyway.
    result.outcome = RewriteOutcome::kNoRewriting;
    result.failure_reason = "query computes its head on no canonical database";
    return result;
  }

  // --- Phase 2 task (b): every expansion must be contained in the query ---

  std::map<std::string, bool> phase2_verdicts;
  bool phase2_failed = false;
  for (const ConjunctiveQuery& pre : pre_rewritings) {
    if (driver.cancel != nullptr && driver.cancel->cancelled()) {
      result.outcome = RewriteOutcome::kAborted;
      result.failure_reason = kCancelledReason;
      return result;
    }
    ++result.stats.phase2_checks;
    const Phase2Outcome check = CheckExpansionContained(work, pre, memo);
    result.stats.phase2_orders += check.orders_enumerated;
    result.stats.phase2_ns += check.wall_ns;
    if (explain) phase2_verdicts[pre.ToString()] = check.contained;
    if (!check.contained) {
      result.outcome = RewriteOutcome::kNoRewriting;
      result.failure_reason =
          "expansion not contained in the query: " + pre.ToString();
      phase2_failed = true;
      break;
    }
  }
  if (explain) {
    for (CanonicalDatabaseTrace& db : result.trace.databases) {
      if (db.status != "ok") continue;
      auto it = phase2_verdicts.find(db.pre_rewriting);
      if (it == phase2_verdicts.end()) continue;  // Unchecked after failure.
      db.expansion_contained = it->second;
      if (it->second) {
        db.status = "ok";
        result.trace.left_column.push_back(db.order);
      } else {
        db.status = "phase2-failed";
        result.trace.right_column.push_back(db.order);
      }
    }
  }
  if (phase2_failed) return result;

  FinalizeFoundRewriting(work, std::move(pre_rewritings), &result);
  return result;
}

RewriteResult EquivalentRewriter::RunSerial() {
  // A query with contradictory comparisons computes nothing; the empty
  // union is an equivalent rewriting.
  if (!AcSolver::IsSatisfiable(query_.comparisons())) {
    RewriteResult result;
    result.outcome = RewriteOutcome::kRewritingFound;
    result.tier = 0;
    result.tier_reason =
        "query comparisons unsatisfiable; the rewriting is the empty union";
    if (options_.verify) {
      result.verified =
          RewritingIsEquivalent(query_, result.rewriting, views_);
    }
    return result;
  }

  const RewriteWork work = PrepareRewriteWork(query_, views_, options_);
  return RunPreparedRewriteSerial(work, options_, memo_, nullptr);
}

RewriteResult FindEquivalentRewriting(const ConjunctiveQuery& query,
                                      const ViewSet& views) {
  return EquivalentRewriter(query, views).Run();
}

bool RewritingIsEquivalent(const ConjunctiveQuery& query,
                           const UnionQuery& rewriting, const ViewSet& views) {
  UnionQuery expanded;
  for (const ConjunctiveQuery& disjunct : rewriting.disjuncts()) {
    expanded.Add(ExpandForCheck(disjunct, views, /*simplify=*/true));
  }
  return CqacContainedInUnion(query, expanded) &&
         UnionCqacContained(expanded, UnionQuery({query}));
}

}  // namespace cqac
