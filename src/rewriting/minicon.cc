#include "rewriting/minicon.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

namespace cqac {

std::string Mcd::ToString() const {
  std::string out = view_tuple.ToString() + " covers {";
  for (size_t i = 0; i < covered.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(covered[i]);
  }
  out += "}";
  return out;
}

namespace {

/// Search state for forming one MCD.  Value semantics: branches copy it.
struct McdState {
  // Query variable images, disjoint by construction: at most one of the
  // three maps binds a given variable.
  std::map<std::string, int> image_class;         // -> head-var class id
  std::map<std::string, std::string> image_nondist;  // -> existential var
  std::map<std::string, Rational> image_const;    // -> constant

  // Union-find over the view's head variables (the lazily discovered head
  // homomorphism), plus an optional constant each class is pinned to.
  std::vector<int> parent;
  std::vector<std::optional<Rational>> class_const;

  std::set<int> covered;             // query subgoal indices
  std::set<int> used_view_subgoals;  // one-to-one mapping (footnote 4)

  int Find(int c) {
    while (parent[c] != c) c = parent[c];
    return c;
  }

  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (class_const[a].has_value() && class_const[b].has_value() &&
        *class_const[a] != *class_const[b]) {
      return false;
    }
    if (class_const[b].has_value()) class_const[a] = class_const[b];
    parent[b] = a;
    return true;
  }

  bool PinConstant(int c, const Rational& k) {
    c = Find(c);
    if (class_const[c].has_value()) return *class_const[c] == k;
    class_const[c] = k;
    return true;
  }
};

/// Builds MCDs for one (query, view-variant) pair.
class McdBuilder {
 public:
  McdBuilder(const ConjunctiveQuery& query, const ConjunctiveQuery& view,
             int view_index, std::vector<Mcd>* out)
      : query_(query), view_(view), view_index_(view_index), out_(out) {
    // Head-variable classes: one per distinct head variable.
    for (const std::string& hv : view_.HeadVariables()) {
      headvar_class_.emplace(hv, static_cast<int>(headvar_class_.size()));
    }
    // Subgoal lists per query variable (for the shared-variable property).
    for (size_t g = 0; g < query_.body().size(); ++g) {
      for (const Term& t : query_.body()[g].args()) {
        if (t.IsVariable()) {
          subgoals_of_[t.name()].insert(static_cast<int>(g));
        }
      }
    }
    for (const std::string& hv : query_.HeadVariables()) {
      query_distinguished_.insert(hv);
    }
  }

  void Run() {
    const int num_classes = static_cast<int>(headvar_class_.size());
    for (size_t g = 0; g < query_.body().size(); ++g) {
      for (size_t w = 0; w < view_.body().size(); ++w) {
        McdState state;
        state.parent.resize(num_classes);
        for (int i = 0; i < num_classes; ++i) state.parent[i] = i;
        state.class_const.resize(num_classes);
        if (!MapSubgoal(static_cast<int>(g), static_cast<int>(w), &state)) {
          continue;
        }
        Close(state);
      }
    }
  }

 private:
  bool IsViewDistinguished(const std::string& v) const {
    return headvar_class_.count(v) > 0;
  }

  /// Unifies query subgoal `g` onto view subgoal `w`, updating `state`.
  bool MapSubgoal(int g, int w, McdState* state) {
    const Atom& qa = query_.body()[g];
    const Atom& va = view_.body()[w];
    if (qa.predicate() != va.predicate() || qa.arity() != va.arity()) {
      return false;
    }
    if (state->used_view_subgoals.count(w) > 0) return false;
    for (int i = 0; i < qa.arity(); ++i) {
      if (!UnifyPosition(qa.args()[i], va.args()[i], state)) return false;
    }
    state->covered.insert(g);
    state->used_view_subgoals.insert(w);
    return true;
  }

  bool UnifyPosition(const Term& qt, const Term& vt, McdState* state) {
    if (qt.IsConstant()) {
      if (vt.IsConstant()) return qt.value() == vt.value();
      if (IsViewDistinguished(vt.name())) {
        return state->PinConstant(headvar_class_.at(vt.name()), qt.value());
      }
      return false;  // A plain-CQ existential variable cannot be pinned.
    }
    const std::string& x = qt.name();
    // Case split on x's current image.
    if (auto it = state->image_const.find(x);
        it != state->image_const.end()) {
      if (vt.IsConstant()) return it->second == vt.value();
      if (IsViewDistinguished(vt.name())) {
        return state->PinConstant(headvar_class_.at(vt.name()), it->second);
      }
      return false;
    }
    if (auto it = state->image_class.find(x);
        it != state->image_class.end()) {
      if (vt.IsConstant()) return state->PinConstant(it->second, vt.value());
      if (IsViewDistinguished(vt.name())) {
        return state->Union(it->second, headvar_class_.at(vt.name()));
      }
      return false;  // Distinguished image cannot be equated with an
                     // existential variable by any head homomorphism.
    }
    if (auto it = state->image_nondist.find(x);
        it != state->image_nondist.end()) {
      return vt.IsVariable() && vt.name() == it->second;
    }
    // x is fresh.
    if (vt.IsConstant()) {
      state->image_const.emplace(x, vt.value());
      return true;
    }
    if (IsViewDistinguished(vt.name())) {
      state->image_class.emplace(x, headvar_class_.at(vt.name()));
      return true;
    }
    // Mapping onto an existential view variable: forbidden for the query's
    // head variables (MiniCon clause C1), and triggers coverage of every
    // subgoal containing x (clause C2, the shared-variable property).
    if (query_distinguished_.count(x) > 0) return false;
    state->image_nondist.emplace(x, vt.name());
    return true;
  }

  /// The subgoals the shared-variable property still requires.
  std::vector<int> PendingSubgoals(const McdState& state) const {
    std::set<int> pending;
    for (const auto& [x, image] : state.image_nondist) {
      (void)image;
      auto it = subgoals_of_.find(x);
      if (it == subgoals_of_.end()) continue;
      for (int g : it->second) {
        if (state.covered.count(g) == 0) pending.insert(g);
      }
    }
    return std::vector<int>(pending.begin(), pending.end());
  }

  /// Depth-first closure: keep mapping pending subgoals until none remain.
  void Close(const McdState& state) {
    const std::vector<int> pending = PendingSubgoals(state);
    if (pending.empty()) {
      Emit(state);
      return;
    }
    const int g = pending.front();
    for (size_t w = 0; w < view_.body().size(); ++w) {
      McdState branch = state;
      if (MapSubgoal(g, static_cast<int>(w), &branch)) Close(branch);
    }
  }

  void Emit(McdState state) {
    // Build the view tuple: each head position shows the term its class
    // resolves to.  Preference order per class: lexicographically least
    // query variable mapped there, else the pinned constant, else a
    // canonical fresh variable.
    std::map<int, std::string> class_qvar;
    for (const auto& [x, c] : state.image_class) {
      const int root = state.Find(c);
      auto it = class_qvar.find(root);
      if (it == class_qvar.end() || x < it->second) class_qvar[root] = x;
    }
    std::map<int, std::string> class_fresh;
    std::vector<Term> args;
    Substitution constant_bindings;
    for (const Term& head_term : view_.head().args()) {
      if (head_term.IsConstant()) {
        args.push_back(head_term);
        continue;
      }
      const int root = state.Find(headvar_class_.at(head_term.name()));
      auto qv = class_qvar.find(root);
      if (qv != class_qvar.end()) {
        args.push_back(Term::Variable(qv->second));
        if (state.class_const[root].has_value()) {
          constant_bindings.Bind(qv->second,
                                 Term::Constant(*state.class_const[root]));
        }
      } else if (state.class_const[root].has_value()) {
        args.push_back(Term::Constant(*state.class_const[root]));
      } else {
        auto fresh = class_fresh.find(root);
        if (fresh == class_fresh.end()) {
          fresh = class_fresh
                      .emplace(root, "_F" + std::to_string(class_fresh.size()))
                      .first;
        }
        args.push_back(Term::Variable(fresh->second));
      }
    }

    Mcd mcd;
    mcd.view_index = view_index_;
    mcd.view_tuple = Atom(view_.name(), std::move(args));
    mcd.covered.assign(state.covered.begin(), state.covered.end());
    for (const auto& [x, c] : state.image_class) {
      const int root = state.Find(c);
      auto qv = class_qvar.find(root);
      mcd.mapping.Bind(x, Term::Variable(qv->second));
    }
    for (const auto& [x, k] : state.image_const) {
      mcd.mapping.Bind(x, Term::Constant(k));
      constant_bindings.Bind(x, Term::Constant(k));
    }
    mcd.mapping = mcd.mapping.ComposeWith(constant_bindings);
    out_->push_back(std::move(mcd));
  }

  const ConjunctiveQuery& query_;
  const ConjunctiveQuery& view_;
  const int view_index_;
  std::vector<Mcd>* out_;
  std::map<std::string, int> headvar_class_;
  std::map<std::string, std::set<int>> subgoals_of_;
  std::set<std::string> query_distinguished_;
};

}  // namespace

std::vector<Mcd> FormMcds(const ConjunctiveQuery& query,
                          const std::vector<ConjunctiveQuery>& views) {
  std::vector<Mcd> raw;
  for (size_t v = 0; v < views.size(); ++v) {
    // Rename the view apart so its variables never collide with the
    // query's.
    const ConjunctiveQuery renamed =
        views[v].RenameVariables("_v" + std::to_string(v) + "_");
    McdBuilder(query, renamed, static_cast<int>(v), &raw).Run();
  }
  // Deduplicate (same view, coverage, tuple); then give fresh variables
  // globally unique names so distinct MCDs never share them.
  std::vector<Mcd> result;
  std::set<std::string> seen;
  for (Mcd& mcd : raw) {
    std::string key = std::to_string(mcd.view_index) + "|" + mcd.ToString();
    if (!seen.insert(std::move(key)).second) continue;
    Substitution rename;
    for (const Term& t : mcd.view_tuple.args()) {
      if (t.IsVariable() && t.name().rfind("_F", 0) == 0 &&
          !rename.IsBound(t.name())) {
        rename.Bind(t.name(),
                    Term::Variable("_f" + std::to_string(result.size()) + "_" +
                                   std::to_string(rename.size())));
      }
    }
    mcd.view_tuple = rename.Apply(mcd.view_tuple);
    result.push_back(std::move(mcd));
  }
  return result;
}

namespace {

bool CombinationSearch(
    const std::vector<Mcd>& mcds, const std::set<int>& remaining,
    std::vector<const Mcd*>* chosen,
    const std::function<bool(const std::vector<const Mcd*>&)>& fn) {
  if (remaining.empty()) return fn(*chosen);
  const int target = *remaining.begin();
  for (const Mcd& mcd : mcds) {
    if (std::find(mcd.covered.begin(), mcd.covered.end(), target) ==
        mcd.covered.end()) {
      continue;
    }
    // Pairwise-disjoint coverage: every covered subgoal must still be
    // uncovered.
    bool disjoint = true;
    for (int g : mcd.covered) {
      if (remaining.count(g) == 0) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    std::set<int> next = remaining;
    for (int g : mcd.covered) next.erase(g);
    chosen->push_back(&mcd);
    const bool keep_going = CombinationSearch(mcds, next, chosen, fn);
    chosen->pop_back();
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

void ForEachMcdCombination(
    const std::vector<Mcd>& mcds, int num_subgoals,
    const std::function<bool(const std::vector<const Mcd*>&)>& fn) {
  std::set<int> remaining;
  for (int g = 0; g < num_subgoals; ++g) remaining.insert(g);
  std::vector<const Mcd*> chosen;
  CombinationSearch(mcds, remaining, &chosen, fn);
}

bool McdCombinationExists(const std::vector<Mcd>& mcds, int num_subgoals) {
  bool exists = false;
  ForEachMcdCombination(mcds, num_subgoals,
                        [&exists](const std::vector<const Mcd*>&) {
                          exists = true;
                          return false;  // Stop at the first combination.
                        });
  return exists;
}

namespace {

/// Existence-only search over a subset of the MCDs, first-fit on the
/// lowest uncovered subgoal.  `remaining` is a bitmask-free set of still
/// uncovered subgoal indices, kept sorted.
bool SubsetCombinationSearch(const std::vector<Mcd>& mcds,
                             const std::vector<int>& subset,
                             std::set<int>& remaining) {
  if (remaining.empty()) return true;
  const int target = *remaining.begin();
  for (const int idx : subset) {
    const Mcd& mcd = mcds[idx];
    if (std::find(mcd.covered.begin(), mcd.covered.end(), target) ==
        mcd.covered.end()) {
      continue;
    }
    bool disjoint = true;
    for (int g : mcd.covered) {
      if (remaining.count(g) == 0) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    for (int g : mcd.covered) remaining.erase(g);
    const bool found = SubsetCombinationSearch(mcds, subset, remaining);
    for (int g : mcd.covered) remaining.insert(g);
    if (found) return true;
  }
  return false;
}

}  // namespace

bool McdCombinationExists(const std::vector<Mcd>& mcds,
                          const std::vector<int>& subset, int num_subgoals) {
  std::set<int> remaining;
  for (int g = 0; g < num_subgoals; ++g) remaining.insert(g);
  return SubsetCombinationSearch(mcds, subset, remaining);
}

UnionQuery MiniConRewritings(const ConjunctiveQuery& query,
                             const std::vector<ConjunctiveQuery>& views) {
  const std::vector<Mcd> mcds = FormMcds(query, views);
  UnionQuery result;
  std::set<std::string> seen;
  ForEachMcdCombination(
      mcds, static_cast<int>(query.body().size()),
      [&](const std::vector<const Mcd*>& combination) {
        std::vector<Atom> body;
        Substitution head_fix;
        for (const Mcd* mcd : combination) {
          body.push_back(mcd->view_tuple);
          // Head variables pinned to constants surface in the head.
          for (const auto& [var, term] : mcd->mapping.bindings()) {
            if (term.IsConstant() && query.IsDistinguished(var)) {
              head_fix.Bind(var, term);
            }
          }
        }
        std::sort(body.begin(), body.end());
        ConjunctiveQuery disjunct(head_fix.Apply(query.head()),
                                  std::move(body));
        if (seen.insert(disjunct.ToString()).second) {
          result.Add(disjunct);
        }
        return true;
      });
  return result;
}

}  // namespace cqac
