#include "engine/canonical.h"

#include <algorithm>

#include "obs/metrics.h"

namespace cqac {

Term CanonicalDatabase::Unfreeze(const Rational& value) const {
  auto it = unfreeze.find(value);
  return it == unfreeze.end() ? Term::Constant(value) : it->second;
}

Atom CanonicalDatabase::UnfreezeAtom(const Atom& ground) const {
  std::vector<Term> args;
  args.reserve(ground.args().size());
  for (const Term& t : ground.args()) {
    args.push_back(t.IsConstant() ? Unfreeze(t.value()) : t);
  }
  return Atom(ground.predicate(), std::move(args));
}

namespace {

CanonicalDatabase FreezeWithAssignment(
    const ConjunctiveQuery& q, std::map<std::string, Rational> assignment,
    std::map<Rational, Term> unfreeze) {
  CanonicalDatabase result;
  result.assignment = std::move(assignment);
  result.unfreeze = std::move(unfreeze);
  auto freeze_term = [&result](const Term& t) -> Rational {
    return t.IsConstant() ? t.value() : result.assignment.at(t.name());
  };
  for (const Atom& atom : q.body()) {
    Tuple tuple;
    tuple.reserve(atom.args().size());
    for (const Term& t : atom.args()) tuple.push_back(freeze_term(t));
    result.db.Insert(atom.predicate(), std::move(tuple));
  }
  result.frozen_head.reserve(q.head().args().size());
  for (const Term& t : q.head().args()) {
    result.frozen_head.push_back(freeze_term(t));
  }
  return result;
}

}  // namespace

CanonicalDatabase FreezeQuery(const ConjunctiveQuery& q,
                              const TotalOrder& order) {
  std::map<std::string, Rational> assignment = order.ToAssignment();
  std::map<Rational, Term> unfreeze;
  for (const OrderBlock& block : order.blocks) {
    Rational value;
    if (block.constant.has_value()) {
      value = *block.constant;
    } else if (!block.variables.empty()) {
      value = assignment.at(block.variables.front());
    } else {
      continue;
    }
    unfreeze.emplace(value, block.Representative());
  }
  return FreezeWithAssignment(q, std::move(assignment), std::move(unfreeze));
}

CanonicalFreezer::CanonicalFreezer(const ConjunctiveQuery& q) {
  auto compile_term = [this](const Term& t) {
    CompiledTerm ct;
    ct.is_const = t.IsConstant();
    if (ct.is_const) {
      ct.value = t.value();
      ct.slot = 0;
    } else {
      const auto [it, inserted] = var_slots_.emplace(
          t.name(), static_cast<uint32_t>(var_slots_.size()));
      if (inserted) slot_names_.push_back(t.name());
      ct.slot = it->second;
    }
    return ct;
  };
  std::vector<uint32_t> rows_per_relation;
  subgoals_.reserve(q.body().size());
  for (const Atom& atom : q.body()) {
    CompiledSubgoal sg;
    sg.relation = instance_.RelationId(atom.predicate(), atom.arity());
    if (rows_per_relation.size() <= sg.relation) {
      rows_per_relation.resize(sg.relation + 1, 0);
    }
    sg.row = rows_per_relation[sg.relation]++;
    sg.terms.reserve(atom.args().size());
    for (const Term& t : atom.args()) sg.terms.push_back(compile_term(t));
    subgoals_.push_back(std::move(sg));
  }
  head_.reserve(q.head().args().size());
  for (const Term& t : q.head().args()) head_.push_back(compile_term(t));
  var_values_.resize(var_slots_.size());
  var_blocks_.resize(var_slots_.size());
  rel_epochs_.resize(instance_.NumRelations(), 0);
}

void CanonicalFreezer::LoadOrder(const TotalOrder& order, bool track) {
  order.BlockValues(&block_values_);
  block_reps_.clear();
  block_reps_.reserve(order.blocks.size());
  if (track) changed_.assign(var_values_.size(), 0);
  for (size_t b = 0; b < order.blocks.size(); ++b) {
    block_reps_.push_back(order.blocks[b].Representative());
    for (const std::string& v : order.blocks[b].variables) {
      const auto it = var_slots_.find(v);
      if (it == var_slots_.end()) continue;
      var_blocks_[it->second] = static_cast<uint32_t>(b);
      const Rational& value = block_values_[b];
      if (track) {
        if (var_values_[it->second] != value) {
          var_values_[it->second] = value;
          changed_[it->second] = 1;
        }
      } else {
        var_values_[it->second] = value;
      }
    }
  }
}

void CanonicalFreezer::RebuildHead() {
  frozen_head_.clear();
  for (const CompiledTerm& t : head_) {
    frozen_head_.push_back(t.is_const ? t.value : var_values_[t.slot]);
  }
}

const FlatInstance& CanonicalFreezer::Freeze(const TotalOrder& order) {
  if (epoch_ == 0) return FreezeFull(order);
  LoadOrder(order, /*track=*/true);
  ++epoch_;
  int64_t rewritten = 0;
  for (const CompiledSubgoal& sg : subgoals_) {
    bool touched = false;
    for (const CompiledTerm& t : sg.terms) {
      if (!t.is_const && changed_[t.slot]) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    Rational* row = instance_.MutableRow(sg.relation, sg.row);
    for (size_t k = 0; k < sg.terms.size(); ++k) {
      const CompiledTerm& t = sg.terms[k];
      row[k] = t.is_const ? t.value : var_values_[t.slot];
    }
    rel_epochs_[sg.relation] = epoch_;
    ++rewritten;
  }
  RebuildHead();
  if (obs::MetricsActive()) {
    // How much the delta form saves: rows actually rewritten vs the
    // full-refreeze row count tracked in FreezeFull.
    static obs::Counter& delta_rows =
        obs::MetricsRegistry::Global().counter("freezer.delta_rows");
    delta_rows.Add(rewritten);
  }
  return instance_;
}

const FlatInstance& CanonicalFreezer::FreezeFull(const TotalOrder& order) {
  LoadOrder(order, /*track=*/false);
  ++epoch_;
  instance_.Clear();
  for (const CompiledSubgoal& sg : subgoals_) {
    row_.clear();
    for (const CompiledTerm& t : sg.terms) {
      row_.push_back(t.is_const ? t.value : var_values_[t.slot]);
    }
    instance_.AddRow(sg.relation, row_.data());
  }
  for (uint64_t& e : rel_epochs_) e = epoch_;
  RebuildHead();
  if (obs::MetricsActive()) {
    static obs::Counter& full =
        obs::MetricsRegistry::Global().counter("freezer.full_freezes");
    full.Add(1);
    static obs::Counter& rows =
        obs::MetricsRegistry::Global().counter("freezer.full_rows");
    rows.Add(static_cast<int64_t>(subgoals_.size()));
  }
  return instance_;
}

Term CanonicalFreezer::UnfreezeValue(const Rational& value) const {
  const auto it =
      std::lower_bound(block_values_.begin(), block_values_.end(), value);
  if (it != block_values_.end() && *it == value) {
    return block_reps_[it - block_values_.begin()];
  }
  return Term::Constant(value);
}

CanonicalDatabase FreezeQueryDistinct(const ConjunctiveQuery& q) {
  // Fresh integer values strictly above every constant in the query, so no
  // accidental collisions with constants occur.
  Rational base(1);
  for (const Rational& c : q.Constants()) {
    if (c >= base) base = c + Rational(1);
  }
  std::map<std::string, Rational> assignment;
  std::map<Rational, Term> unfreeze;
  int offset = 0;
  for (const std::string& v : q.AllVariables()) {
    const Rational value = base + Rational(offset++);
    assignment.emplace(v, value);
    unfreeze.emplace(value, Term::Variable(v));
  }
  return FreezeWithAssignment(q, std::move(assignment), std::move(unfreeze));
}

}  // namespace cqac
