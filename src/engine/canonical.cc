#include "engine/canonical.h"

#include <algorithm>

#include "obs/metrics.h"

namespace cqac {

Term CanonicalDatabase::Unfreeze(const Rational& value) const {
  auto it = unfreeze.find(value);
  return it == unfreeze.end() ? Term::Constant(value) : it->second;
}

Atom CanonicalDatabase::UnfreezeAtom(const Atom& ground) const {
  std::vector<Term> args;
  args.reserve(ground.args().size());
  for (const Term& t : ground.args()) {
    args.push_back(t.IsConstant() ? Unfreeze(t.value()) : t);
  }
  return Atom(ground.predicate(), std::move(args));
}

namespace {

CanonicalDatabase FreezeWithAssignment(
    const ConjunctiveQuery& q, std::map<std::string, Rational> assignment,
    std::map<Rational, Term> unfreeze) {
  CanonicalDatabase result;
  result.assignment = std::move(assignment);
  result.unfreeze = std::move(unfreeze);
  auto freeze_term = [&result](const Term& t) -> Rational {
    return t.IsConstant() ? t.value() : result.assignment.at(t.name());
  };
  for (const Atom& atom : q.body()) {
    Tuple tuple;
    tuple.reserve(atom.args().size());
    for (const Term& t : atom.args()) tuple.push_back(freeze_term(t));
    result.db.Insert(atom.predicate(), std::move(tuple));
  }
  result.frozen_head.reserve(q.head().args().size());
  for (const Term& t : q.head().args()) {
    result.frozen_head.push_back(freeze_term(t));
  }
  return result;
}

}  // namespace

CanonicalDatabase FreezeQuery(const ConjunctiveQuery& q,
                              const TotalOrder& order) {
  std::map<std::string, Rational> assignment = order.ToAssignment();
  std::map<Rational, Term> unfreeze;
  for (const OrderBlock& block : order.blocks) {
    Rational value;
    if (block.constant.has_value()) {
      value = *block.constant;
    } else if (!block.variables.empty()) {
      value = assignment.at(block.variables.front());
    } else {
      continue;
    }
    unfreeze.emplace(value, block.Representative());
  }
  return FreezeWithAssignment(q, std::move(assignment), std::move(unfreeze));
}

CanonicalFreezer::CanonicalFreezer(const ConjunctiveQuery& q) {
  auto compile_term = [this](const Term& t) {
    CompiledTerm ct;
    ct.is_const = t.IsConstant();
    if (ct.is_const) {
      ct.value = t.value();
      ct.slot = 0;
    } else {
      const auto [it, inserted] = var_slots_.emplace(
          t.name(), static_cast<uint32_t>(var_slots_.size()));
      if (inserted) slot_names_.push_back(t.name());
      ct.slot = it->second;
    }
    return ct;
  };
  std::vector<uint32_t> rows_per_relation;
  subgoals_.reserve(q.body().size());
  for (const Atom& atom : q.body()) {
    CompiledSubgoal sg;
    sg.relation = instance_.RelationId(atom.predicate(), atom.arity());
    if (rows_per_relation.size() <= sg.relation) {
      rows_per_relation.resize(sg.relation + 1, 0);
    }
    sg.row = rows_per_relation[sg.relation]++;
    sg.terms.reserve(atom.args().size());
    for (const Term& t : atom.args()) sg.terms.push_back(compile_term(t));
    subgoals_.push_back(std::move(sg));
  }
  head_.reserve(q.head().args().size());
  for (const Term& t : q.head().args()) head_.push_back(compile_term(t));
  var_values_.resize(var_slots_.size());
  var_blocks_.resize(var_slots_.size());
  var_codes_.resize(var_slots_.size());
  rel_epochs_.resize(instance_.NumRelations(), 0);

  // The coded twin: same relation ids, fixed row capacity (one row per
  // owning subgoal).  Subgoal/head constants join the dictionary now;
  // block values join via PrimeDictionary or on first sight.
  rows_per_relation.resize(instance_.NumRelations(), 0);
  for (uint32_t rel = 0; rel < instance_.NumRelations(); ++rel) {
    columnar_.AddRelation(instance_.Arity(rel), rows_per_relation[rel]);
  }
  for (const CompiledSubgoal& sg : subgoals_) {
    for (const CompiledTerm& t : sg.terms) {
      if (t.is_const) dict_.Add(t.value);
    }
  }
  for (const CompiledTerm& t : head_) {
    if (t.is_const) dict_.Add(t.value);
  }
  dict_.Rebuild();
  RecodeConstTerms();
}

void CanonicalFreezer::RecodeConstTerms() {
  for (CompiledSubgoal& sg : subgoals_) {
    for (CompiledTerm& t : sg.terms) {
      if (t.is_const) t.code = dict_.Find(t.value);
    }
  }
  for (CompiledTerm& t : head_) {
    if (t.is_const) t.code = dict_.Find(t.value);
  }
}

void CanonicalFreezer::WriteCodeRow(const CompiledSubgoal& sg) {
  for (size_t k = 0; k < sg.terms.size(); ++k) {
    const CompiledTerm& t = sg.terms[k];
    columnar_.Set(sg.relation, sg.row, static_cast<int>(k),
                  t.is_const ? t.code : var_codes_[t.slot]);
  }
}

void CanonicalFreezer::RecodeAll() {
  RecodeConstTerms();
  if (epoch_ == 0) return;  // Nothing frozen yet; nothing derived to fix.
  for (size_t b = 0; b < block_values_.size(); ++b) {
    block_codes_[b] = dict_.Find(block_values_[b]);
  }
  for (size_t s = 0; s < var_values_.size(); ++s) {
    var_codes_[s] = dict_.Find(var_values_[s]);
  }
  for (const CompiledSubgoal& sg : subgoals_) WriteCodeRow(sg);
  frozen_head_codes_.clear();
  for (const CompiledTerm& t : head_) {
    frozen_head_codes_.push_back(t.is_const ? t.code : var_codes_[t.slot]);
  }
}

void CanonicalFreezer::PrimeDictionary(const std::vector<Rational>& constants,
                                       size_t num_vars) {
  SeedCanonicalValuePool(num_vars, constants, &dict_);
  if (dict_.has_staged()) {
    dict_.Rebuild();
    RecodeAll();
  }
}

void CanonicalFreezer::AddDictionaryValues(const Rational* values, size_t n) {
  bool any_new = false;
  for (size_t i = 0; i < n; ++i) any_new |= dict_.Add(values[i]);
  if (any_new) {
    dict_.Rebuild();
    RecodeAll();
  }
}

void CanonicalFreezer::LoadOrder(const TotalOrder& order, bool track) {
  order.BlockValues(&block_values_);
  block_reps_.clear();
  block_reps_.reserve(order.blocks.size());
  if (track) changed_.assign(var_values_.size(), 0);
  for (size_t b = 0; b < order.blocks.size(); ++b) {
    block_reps_.push_back(order.blocks[b].Representative());
    for (const std::string& v : order.blocks[b].variables) {
      const auto it = var_slots_.find(v);
      if (it == var_slots_.end()) continue;
      var_blocks_[it->second] = static_cast<uint32_t>(b);
      const Rational& value = block_values_[b];
      if (track) {
        if (var_values_[it->second] != value) {
          var_values_[it->second] = value;
          changed_[it->second] = 1;
        }
      } else {
        var_values_[it->second] = value;
      }
    }
  }

  // Resolve block codes; a miss means an unseeded value surfaced, so the
  // dictionary grows and every cached code (constant terms, columnar
  // rows) must be re-derived.  Primed runs never take this branch after
  // construction.
  dict_rebuilt_ = false;
  block_codes_.resize(block_values_.size());
  bool missing = false;
  for (size_t b = 0; b < block_values_.size(); ++b) {
    block_codes_[b] = dict_.Find(block_values_[b]);
    missing |= block_codes_[b] == ValueDictionary::kNotFound;
  }
  if (missing) {
    for (const Rational& v : block_values_) dict_.Add(v);
    dict_.Rebuild();
    RecodeConstTerms();
    for (size_t b = 0; b < block_values_.size(); ++b) {
      block_codes_[b] = dict_.Find(block_values_[b]);
    }
    dict_rebuilt_ = true;
  }
  for (size_t s = 0; s < var_blocks_.size(); ++s) {
    var_codes_[s] = block_codes_[var_blocks_[s]];
  }
}

void CanonicalFreezer::RebuildHead() {
  frozen_head_.clear();
  frozen_head_codes_.clear();
  for (const CompiledTerm& t : head_) {
    frozen_head_.push_back(t.is_const ? t.value : var_values_[t.slot]);
    frozen_head_codes_.push_back(t.is_const ? t.code : var_codes_[t.slot]);
  }
}

const FlatInstance& CanonicalFreezer::Freeze(const TotalOrder& order) {
  if (epoch_ == 0) return FreezeFull(order);
  LoadOrder(order, /*track=*/true);
  ++epoch_;
  int64_t rewritten = 0;
  for (const CompiledSubgoal& sg : subgoals_) {
    bool touched = false;
    for (const CompiledTerm& t : sg.terms) {
      if (!t.is_const && changed_[t.slot]) {
        touched = true;
        break;
      }
    }
    if (!touched) {
      // Untouched rows keep their values, but a mid-run dictionary
      // rebuild renumbers every code, so their coded rows go stale.
      if (dict_rebuilt_) WriteCodeRow(sg);
      continue;
    }
    Rational* row = instance_.MutableRow(sg.relation, sg.row);
    for (size_t k = 0; k < sg.terms.size(); ++k) {
      const CompiledTerm& t = sg.terms[k];
      row[k] = t.is_const ? t.value : var_values_[t.slot];
    }
    WriteCodeRow(sg);
    rel_epochs_[sg.relation] = epoch_;
    ++rewritten;
  }
  RebuildHead();
  if (obs::MetricsActive()) {
    // How much the delta form saves: rows actually rewritten vs the
    // full-refreeze row count tracked in FreezeFull.
    static obs::Counter& delta_rows =
        obs::MetricsRegistry::Global().counter("freezer.delta_rows");
    delta_rows.Add(rewritten);
  }
  return instance_;
}

const FlatInstance& CanonicalFreezer::FreezeFull(const TotalOrder& order) {
  LoadOrder(order, /*track=*/false);
  ++epoch_;
  instance_.Clear();
  for (const CompiledSubgoal& sg : subgoals_) {
    row_.clear();
    for (const CompiledTerm& t : sg.terms) {
      row_.push_back(t.is_const ? t.value : var_values_[t.slot]);
    }
    instance_.AddRow(sg.relation, row_.data());
    WriteCodeRow(sg);
  }
  for (uint64_t& e : rel_epochs_) e = epoch_;
  RebuildHead();
  if (obs::MetricsActive()) {
    static obs::Counter& full =
        obs::MetricsRegistry::Global().counter("freezer.full_freezes");
    full.Add(1);
    static obs::Counter& rows =
        obs::MetricsRegistry::Global().counter("freezer.full_rows");
    rows.Add(static_cast<int64_t>(subgoals_.size()));
  }
  return instance_;
}

Term CanonicalFreezer::UnfreezeValue(const Rational& value) const {
  const auto it =
      std::lower_bound(block_values_.begin(), block_values_.end(), value);
  if (it != block_values_.end() && *it == value) {
    return block_reps_[it - block_values_.begin()];
  }
  return Term::Constant(value);
}

CanonicalDatabase FreezeQueryDistinct(const ConjunctiveQuery& q) {
  // Fresh integer values strictly above every constant in the query, so no
  // accidental collisions with constants occur.
  Rational base(1);
  for (const Rational& c : q.Constants()) {
    if (c >= base) base = c + Rational(1);
  }
  std::map<std::string, Rational> assignment;
  std::map<Rational, Term> unfreeze;
  int offset = 0;
  for (const std::string& v : q.AllVariables()) {
    const Rational value = base + Rational(offset++);
    assignment.emplace(v, value);
    unfreeze.emplace(value, Term::Variable(v));
  }
  return FreezeWithAssignment(q, std::move(assignment), std::move(unfreeze));
}

}  // namespace cqac
