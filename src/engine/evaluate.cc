#include "engine/evaluate.h"

#include <algorithm>

namespace cqac {

// ---------------------------------------------------------------------------
// FlatInstance

uint32_t FlatInstance::RelationId(const std::string& predicate, int arity) {
  const uint32_t name_id = names_.Intern(predicate);
  if (name_id >= keys_.size()) keys_.resize(name_id + 1);
  for (const auto& [a, rel] : keys_[name_id]) {
    if (a == arity) return rel;
  }
  const uint32_t rel = static_cast<uint32_t>(relations_.size());
  relations_.emplace_back();
  relations_.back().arity = arity;
  keys_[name_id].push_back({arity, rel});
  return rel;
}

uint32_t FlatInstance::FindRelation(const std::string& predicate,
                                    int arity) const {
  const uint32_t name_id = names_.Find(predicate);
  if (name_id == SymbolInterner::kNotFound) return SymbolInterner::kNotFound;
  for (const auto& [a, rel] : keys_[name_id]) {
    if (a == arity) return rel;
  }
  return SymbolInterner::kNotFound;
}

// ---------------------------------------------------------------------------
// Per-run setup

namespace {

inline uint64_t CombineHash(uint64_t h, const Rational& v) {
  h ^= static_cast<uint64_t>(v.Hash());
  return h * 0x100000001b3ULL;  // FNV-1a style mix
}

}  // namespace

void PreparedQuery::BuildIndex(size_t depth, Scratch* scratch) const {
  Scratch::DepthState& ds = scratch->depths[depth];
  const QueryPlan::Subgoal& plan = plan_.subgoals[depth];
  ds.use_index = false;
  ds.index.clear();
  if (plan.entry_cols.empty() || ds.rows.size() < kIndexGate) return;
  for (uint32_t i = 0; i < ds.rows.size(); ++i) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const uint32_t col : plan.entry_cols) {
      h = CombineHash(h, ds.rows[i][col]);
    }
    ds.index[h].push_back(i);
  }
  ds.use_index = true;
}

uint64_t PreparedQuery::ProbeHash(const QueryPlan::Subgoal& plan,
                                  const Scratch& scratch) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint32_t col : plan.entry_cols) {
    const QueryPlan::Op& op = plan.ops[col];
    h = CombineHash(h, op.kind == QueryPlan::Op::kConst
                           ? plan_.constants[op.slot]
                           : scratch.values[op.slot]);
  }
  return h;
}

bool PreparedQuery::Run(const Database& db, const Tuple* target, Relation* out,
                        Scratch* scratch) const {
  scratch->depths.resize(plan_.subgoals.size());
  for (size_t d = 0; d < plan_.subgoals.size(); ++d) {
    Scratch::DepthState& ds = scratch->depths[d];
    ds.rows.clear();
    const Relation& rel = db.Get(plan_.subgoals[d].predicate);
    for (const Tuple& tuple : rel.tuples()) {
      if (static_cast<int>(tuple.size()) == plan_.subgoals[d].arity) {
        ds.rows.push_back(tuple.data());
      }
    }
    BuildIndex(d, scratch);
  }
  return RunCommon(target, out, scratch);
}

bool PreparedQuery::Run(const FlatInstance& inst, const Tuple* target,
                        Relation* out, Scratch* scratch) const {
  scratch->depths.resize(plan_.subgoals.size());
  for (size_t d = 0; d < plan_.subgoals.size(); ++d) {
    Scratch::DepthState& ds = scratch->depths[d];
    ds.rows.clear();
    const uint32_t rel =
        inst.FindRelation(plan_.subgoals[d].predicate, plan_.subgoals[d].arity);
    if (rel != SymbolInterner::kNotFound) {
      const size_t count = inst.RowCount(rel);
      for (size_t i = 0; i < count; ++i) ds.rows.push_back(inst.Row(rel, i));
    }
    BuildIndex(d, scratch);
  }
  return RunCommon(target, out, scratch);
}

// ---------------------------------------------------------------------------
// Search

bool PreparedQuery::RunCommon(const Tuple* target, Relation* out,
                              Scratch* scratch) const {
  scratch->values.resize(plan_.num_vars);
  scratch->bound.assign(plan_.num_vars, 0);
  scratch->extra_values.resize(plan_.num_vars);
  scratch->extra_bound.assign(plan_.num_vars, 0);
  scratch->extra_touched.clear();
  scratch->target = target;
  scratch->out = out;
  scratch->found = false;
  if (CheckTriggers(0, *scratch)) Search(0, scratch);
  return scratch->found;
}

bool PreparedQuery::CheckTriggers(size_t depth, const Scratch& scratch) const {
  for (const int c : plan_.triggers[depth]) {
    const QueryPlan::ComparisonRef& comp = plan_.comparisons[c];
    const Rational& a =
        comp.lhs.is_const ? comp.lhs.value : scratch.values[comp.lhs.var];
    const Rational& b =
        comp.rhs.is_const ? comp.rhs.value : scratch.values[comp.rhs.var];
    if (!EvalCompOp(a, comp.op, b)) return false;
  }
  return true;
}

bool PreparedQuery::Search(size_t depth, Scratch* scratch) const {
  if (depth == plan_.subgoals.size()) return EmitHead(scratch);
  const QueryPlan::Subgoal& plan = plan_.subgoals[depth];
  Scratch::DepthState& ds = scratch->depths[depth];

  auto try_row = [&](const Rational* row) -> bool {
    bool ok = true;
    for (int i = 0; i < plan.arity && ok; ++i) {
      const QueryPlan::Op& op = plan.ops[i];
      const Rational& v = row[i];
      switch (op.kind) {
        case QueryPlan::Op::kConst:
          ok = plan_.constants[op.slot] == v;
          break;
        case QueryPlan::Op::kBind:
          scratch->values[op.slot] = v;
          scratch->bound[op.slot] = 1;
          break;
        case QueryPlan::Op::kCheck:
          ok = scratch->values[op.slot] == v;
          break;
      }
    }
    bool keep_going = true;
    if (ok && CheckTriggers(depth + 1, *scratch)) {
      keep_going = Search(depth + 1, scratch);
    }
    for (const uint32_t v : plan.bind_vars) scratch->bound[v] = 0;
    return keep_going;
  };

  if (ds.use_index) {
    const auto it = ds.index.find(ProbeHash(plan, *scratch));
    if (it == ds.index.end()) return true;
    for (const uint32_t i : it->second) {
      if (!try_row(ds.rows[i])) return false;
    }
    return true;
  }
  for (const Rational* row : ds.rows) {
    if (!try_row(row)) return false;
  }
  return true;
}

/// Resolves comparisons whose variables no ordinary subgoal bound:
/// propagates equalities to fixpoint, then evaluates what remains.
/// Returns false when a pending comparison fails or stays undetermined
/// (the latter means the query is genuinely unsafe for this assignment).
bool PreparedQuery::ResolvePending(Scratch* scratch) const {
  scratch->unresolved = plan_.pending;
  auto lookup = [this, scratch](const QueryPlan::TermRef& t, Rational* out) {
    if (t.is_const) {
      *out = t.value;
      return true;
    }
    if (scratch->bound[t.var]) {
      *out = scratch->values[t.var];
      return true;
    }
    if (scratch->extra_bound[t.var]) {
      *out = scratch->extra_values[t.var];
      return true;
    }
    return false;
  };
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < scratch->unresolved.size();) {
      const QueryPlan::ComparisonRef& comp =
          plan_.comparisons[scratch->unresolved[i]];
      Rational a, b;
      const bool has_a = lookup(comp.lhs, &a);
      const bool has_b = lookup(comp.rhs, &b);
      if (has_a && has_b) {
        if (!EvalCompOp(a, comp.op, b)) return false;
        scratch->unresolved.erase(scratch->unresolved.begin() + i);
        progress = true;
        continue;
      }
      if (comp.op == CompOp::kEq && (has_a || has_b)) {
        // Bind the undetermined side (necessarily a variable).
        const QueryPlan::TermRef& unbound = has_a ? comp.rhs : comp.lhs;
        scratch->extra_bound[unbound.var] = 1;
        scratch->extra_values[unbound.var] = has_a ? a : b;
        scratch->extra_touched.push_back(unbound.var);
        scratch->unresolved.erase(scratch->unresolved.begin() + i);
        progress = true;
        continue;
      }
      ++i;
    }
  }
  return scratch->unresolved.empty();
}

bool PreparedQuery::EmitHead(Scratch* scratch) const {
  // Reset ResolvePending's equality-derived bindings from the previous leaf.
  for (const uint32_t v : scratch->extra_touched) scratch->extra_bound[v] = 0;
  scratch->extra_touched.clear();
  if (!plan_.pending.empty() && !ResolvePending(scratch)) return true;
  Tuple& head = scratch->head_row;
  head.clear();
  for (const QueryPlan::TermRef& t : plan_.head) {
    if (t.is_const) {
      head.push_back(t.value);
    } else if (scratch->bound[t.var]) {
      head.push_back(scratch->values[t.var]);
    } else if (scratch->extra_bound[t.var]) {
      head.push_back(scratch->extra_values[t.var]);
    } else {
      return true;  // Unsafe head: emit nothing.
    }
  }
  if (scratch->target != nullptr && head == *scratch->target) {
    scratch->found = true;
    return false;  // Early exit.
  }
  if (scratch->out != nullptr) scratch->out->Insert(head);
  return true;
}

// ---------------------------------------------------------------------------
// Public entry points

Relation Evaluate(const ConjunctiveQuery& q, const Database& db) {
  Relation out;
  PreparedQuery::Scratch scratch;
  PreparedQuery(q).Run(db, nullptr, &out, &scratch);
  return out;
}

Relation Evaluate(const UnionQuery& q, const Database& db) {
  Relation out;
  PreparedQuery::Scratch scratch;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    PreparedQuery(disjunct).Run(db, nullptr, &out, &scratch);
  }
  return out;
}

bool ComputesTuple(const ConjunctiveQuery& q, const Database& db,
                   const Tuple& head) {
  if (static_cast<int>(head.size()) != q.head().arity()) return false;
  PreparedQuery::Scratch scratch;
  return PreparedQuery(q).Run(db, &head, nullptr, &scratch);
}

bool ComputesTuple(const UnionQuery& q, const Database& db,
                   const Tuple& head) {
  PreparedQuery::Scratch scratch;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    if (static_cast<int>(head.size()) != disjunct.head().arity()) continue;
    if (PreparedQuery(disjunct).Run(db, &head, nullptr, &scratch)) return true;
  }
  return false;
}

}  // namespace cqac
