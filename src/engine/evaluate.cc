#include "engine/evaluate.h"

#include <algorithm>

namespace cqac {

// ---------------------------------------------------------------------------
// FlatInstance

uint32_t FlatInstance::RelationId(const std::string& predicate, int arity) {
  const uint32_t name_id = names_.Intern(predicate);
  if (name_id >= keys_.size()) keys_.resize(name_id + 1);
  for (const auto& [a, rel] : keys_[name_id]) {
    if (a == arity) return rel;
  }
  const uint32_t rel = static_cast<uint32_t>(relations_.size());
  relations_.emplace_back();
  relations_.back().arity = arity;
  keys_[name_id].push_back({arity, rel});
  return rel;
}

uint32_t FlatInstance::FindRelation(const std::string& predicate,
                                    int arity) const {
  const uint32_t name_id = names_.Find(predicate);
  if (name_id == SymbolInterner::kNotFound) return SymbolInterner::kNotFound;
  for (const auto& [a, rel] : keys_[name_id]) {
    if (a == arity) return rel;
  }
  return SymbolInterner::kNotFound;
}

// ---------------------------------------------------------------------------
// PreparedQuery compilation

PreparedQuery::PreparedQuery(const ConjunctiveQuery& q) {
  SymbolInterner vars;
  // Intern every variable up front (head, body, comparisons) so ids cover
  // comparison-only variables too; first-seen order keeps ids deterministic.
  for (const Term& t : q.head().args()) {
    if (t.IsVariable()) vars.Intern(t.name());
  }
  for (const Atom& atom : q.body()) {
    for (const Term& t : atom.args()) {
      if (t.IsVariable()) vars.Intern(t.name());
    }
  }
  for (const Comparison& c : q.comparisons()) {
    if (c.lhs().IsVariable()) vars.Intern(c.lhs().name());
    if (c.rhs().IsVariable()) vars.Intern(c.rhs().name());
  }
  num_vars_ = vars.size();

  auto intern_constant = [this](const Rational& value) -> uint32_t {
    for (uint32_t i = 0; i < constants_.size(); ++i) {
      if (constants_[i] == value) return i;
    }
    constants_.push_back(value);
    return static_cast<uint32_t>(constants_.size() - 1);
  };

  // Greedy most-constrained-first subgoal order: next is the subgoal with
  // the most constant-or-already-bound argument positions (ties to the
  // lowest original index, matching the string evaluator it replaces).
  const int n = static_cast<int>(q.body().size());
  std::vector<char> used(n, 0);
  std::vector<char> bound(num_vars_, 0);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    int best_score = -1;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      int score = 0;
      for (const Term& t : q.body()[i].args()) {
        if (t.IsConstant() || bound[vars.Find(t.name())]) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    used[best] = 1;
    order.push_back(best);
    for (const Term& t : q.body()[best].args()) {
      if (t.IsVariable()) bound[vars.Find(t.name())] = 1;
    }
  }

  // Compile each subgoal (in search order) to per-position ops, its undo
  // list, and its entry-bound column signature for hash indexing.
  std::fill(bound.begin(), bound.end(), 0);
  subgoals_.reserve(n);
  for (const int body_index : order) {
    const Atom& atom = q.body()[body_index];
    SubgoalPlan plan;
    plan.predicate = atom.predicate();
    plan.arity = atom.arity();
    plan.ops.reserve(atom.arity());
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[i];
      if (t.IsConstant()) {
        plan.ops.push_back({Op::kConst, intern_constant(t.value())});
        plan.entry_cols.push_back(static_cast<uint32_t>(i));
        continue;
      }
      const uint32_t v = vars.Find(t.name());
      if (bound[v]) {
        plan.ops.push_back({Op::kCheck, v});
        plan.entry_cols.push_back(static_cast<uint32_t>(i));
      } else if (std::find(plan.bind_vars.begin(), plan.bind_vars.end(), v) !=
                 plan.bind_vars.end()) {
        // Repeated variable within the atom: first occurrence binds, the
        // rest check — but the value is not known before the row is read,
        // so this is not an entry column.
        plan.ops.push_back({Op::kCheck, v});
      } else {
        plan.ops.push_back({Op::kBind, v});
        plan.bind_vars.push_back(v);
      }
    }
    for (const uint32_t v : plan.bind_vars) bound[v] = 1;
    subgoals_.push_back(std::move(plan));
  }

  // Comparison triggers: triggers_[d] lists the comparisons that become
  // fully bound after matching subgoals_[0..d-1]; never-bound comparisons
  // stay pending for equality propagation at the leaves.
  auto compile_term = [&vars](const Term& t) {
    CompiledTerm ct;
    ct.is_const = t.IsConstant();
    if (ct.is_const) {
      ct.value = t.value();
      ct.var = 0;
    } else {
      ct.var = vars.Find(t.name());
    }
    return ct;
  };
  comparisons_.reserve(q.comparisons().size());
  for (const Comparison& c : q.comparisons()) {
    comparisons_.push_back(
        {compile_term(c.lhs()), compile_term(c.rhs()), c.op()});
  }
  triggers_.assign(subgoals_.size() + 1, {});
  std::fill(bound.begin(), bound.end(), 0);
  std::vector<char> fired(comparisons_.size(), 0);
  auto term_bound = [&bound](const CompiledTerm& t) {
    return t.is_const || bound[t.var];
  };
  for (size_t depth = 0; depth <= subgoals_.size(); ++depth) {
    if (depth > 0) {
      for (const uint32_t v : subgoals_[depth - 1].bind_vars) bound[v] = 1;
    }
    for (size_t c = 0; c < comparisons_.size(); ++c) {
      if (fired[c]) continue;
      if (term_bound(comparisons_[c].lhs) && term_bound(comparisons_[c].rhs)) {
        fired[c] = 1;
        triggers_[depth].push_back(static_cast<int>(c));
      }
    }
  }
  for (size_t c = 0; c < fired.size(); ++c) {
    if (!fired[c]) pending_.push_back(static_cast<int>(c));
  }

  head_.reserve(q.head().args().size());
  for (const Term& t : q.head().args()) head_.push_back(compile_term(t));
}

// ---------------------------------------------------------------------------
// Per-run setup

namespace {

inline uint64_t CombineHash(uint64_t h, const Rational& v) {
  h ^= static_cast<uint64_t>(v.Hash());
  return h * 0x100000001b3ULL;  // FNV-1a style mix
}

}  // namespace

void PreparedQuery::BuildIndex(size_t depth, Scratch* scratch) const {
  Scratch::DepthState& ds = scratch->depths[depth];
  const SubgoalPlan& plan = subgoals_[depth];
  ds.use_index = false;
  ds.index.clear();
  if (plan.entry_cols.empty() || ds.rows.size() < kIndexGate) return;
  for (uint32_t i = 0; i < ds.rows.size(); ++i) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const uint32_t col : plan.entry_cols) {
      h = CombineHash(h, ds.rows[i][col]);
    }
    ds.index[h].push_back(i);
  }
  ds.use_index = true;
}

uint64_t PreparedQuery::ProbeHash(const SubgoalPlan& plan,
                                  const Scratch& scratch) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint32_t col : plan.entry_cols) {
    const Op& op = plan.ops[col];
    h = CombineHash(
        h, op.kind == Op::kConst ? constants_[op.slot] : scratch.values[op.slot]);
  }
  return h;
}

bool PreparedQuery::Run(const Database& db, const Tuple* target, Relation* out,
                        Scratch* scratch) const {
  scratch->depths.resize(subgoals_.size());
  for (size_t d = 0; d < subgoals_.size(); ++d) {
    Scratch::DepthState& ds = scratch->depths[d];
    ds.rows.clear();
    const Relation& rel = db.Get(subgoals_[d].predicate);
    for (const Tuple& tuple : rel.tuples()) {
      if (static_cast<int>(tuple.size()) == subgoals_[d].arity) {
        ds.rows.push_back(tuple.data());
      }
    }
    BuildIndex(d, scratch);
  }
  return RunCommon(target, out, scratch);
}

bool PreparedQuery::Run(const FlatInstance& inst, const Tuple* target,
                        Relation* out, Scratch* scratch) const {
  scratch->depths.resize(subgoals_.size());
  for (size_t d = 0; d < subgoals_.size(); ++d) {
    Scratch::DepthState& ds = scratch->depths[d];
    ds.rows.clear();
    const uint32_t rel =
        inst.FindRelation(subgoals_[d].predicate, subgoals_[d].arity);
    if (rel != SymbolInterner::kNotFound) {
      const size_t count = inst.RowCount(rel);
      for (size_t i = 0; i < count; ++i) ds.rows.push_back(inst.Row(rel, i));
    }
    BuildIndex(d, scratch);
  }
  return RunCommon(target, out, scratch);
}

// ---------------------------------------------------------------------------
// Search

bool PreparedQuery::RunCommon(const Tuple* target, Relation* out,
                              Scratch* scratch) const {
  scratch->values.resize(num_vars_);
  scratch->bound.assign(num_vars_, 0);
  scratch->extra_values.resize(num_vars_);
  scratch->extra_bound.assign(num_vars_, 0);
  scratch->extra_touched.clear();
  scratch->target = target;
  scratch->out = out;
  scratch->found = false;
  if (CheckTriggers(0, *scratch)) Search(0, scratch);
  return scratch->found;
}

bool PreparedQuery::CheckTriggers(size_t depth, const Scratch& scratch) const {
  for (const int c : triggers_[depth]) {
    const CompiledComparison& comp = comparisons_[c];
    const Rational& a =
        comp.lhs.is_const ? comp.lhs.value : scratch.values[comp.lhs.var];
    const Rational& b =
        comp.rhs.is_const ? comp.rhs.value : scratch.values[comp.rhs.var];
    if (!EvalCompOp(a, comp.op, b)) return false;
  }
  return true;
}

bool PreparedQuery::Search(size_t depth, Scratch* scratch) const {
  if (depth == subgoals_.size()) return EmitHead(scratch);
  const SubgoalPlan& plan = subgoals_[depth];
  Scratch::DepthState& ds = scratch->depths[depth];

  auto try_row = [&](const Rational* row) -> bool {
    bool ok = true;
    for (int i = 0; i < plan.arity && ok; ++i) {
      const Op& op = plan.ops[i];
      const Rational& v = row[i];
      switch (op.kind) {
        case Op::kConst:
          ok = constants_[op.slot] == v;
          break;
        case Op::kBind:
          scratch->values[op.slot] = v;
          scratch->bound[op.slot] = 1;
          break;
        case Op::kCheck:
          ok = scratch->values[op.slot] == v;
          break;
      }
    }
    bool keep_going = true;
    if (ok && CheckTriggers(depth + 1, *scratch)) {
      keep_going = Search(depth + 1, scratch);
    }
    for (const uint32_t v : plan.bind_vars) scratch->bound[v] = 0;
    return keep_going;
  };

  if (ds.use_index) {
    const auto it = ds.index.find(ProbeHash(plan, *scratch));
    if (it == ds.index.end()) return true;
    for (const uint32_t i : it->second) {
      if (!try_row(ds.rows[i])) return false;
    }
    return true;
  }
  for (const Rational* row : ds.rows) {
    if (!try_row(row)) return false;
  }
  return true;
}

/// Resolves comparisons whose variables no ordinary subgoal bound:
/// propagates equalities to fixpoint, then evaluates what remains.
/// Returns false when a pending comparison fails or stays undetermined
/// (the latter means the query is genuinely unsafe for this assignment).
bool PreparedQuery::ResolvePending(Scratch* scratch) const {
  scratch->unresolved = pending_;
  auto lookup = [this, scratch](const CompiledTerm& t, Rational* out) {
    if (t.is_const) {
      *out = t.value;
      return true;
    }
    if (scratch->bound[t.var]) {
      *out = scratch->values[t.var];
      return true;
    }
    if (scratch->extra_bound[t.var]) {
      *out = scratch->extra_values[t.var];
      return true;
    }
    return false;
  };
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < scratch->unresolved.size();) {
      const CompiledComparison& comp = comparisons_[scratch->unresolved[i]];
      Rational a, b;
      const bool has_a = lookup(comp.lhs, &a);
      const bool has_b = lookup(comp.rhs, &b);
      if (has_a && has_b) {
        if (!EvalCompOp(a, comp.op, b)) return false;
        scratch->unresolved.erase(scratch->unresolved.begin() + i);
        progress = true;
        continue;
      }
      if (comp.op == CompOp::kEq && (has_a || has_b)) {
        // Bind the undetermined side (necessarily a variable).
        const CompiledTerm& unbound = has_a ? comp.rhs : comp.lhs;
        scratch->extra_bound[unbound.var] = 1;
        scratch->extra_values[unbound.var] = has_a ? a : b;
        scratch->extra_touched.push_back(unbound.var);
        scratch->unresolved.erase(scratch->unresolved.begin() + i);
        progress = true;
        continue;
      }
      ++i;
    }
  }
  return scratch->unresolved.empty();
}

bool PreparedQuery::EmitHead(Scratch* scratch) const {
  // Reset ResolvePending's equality-derived bindings from the previous leaf.
  for (const uint32_t v : scratch->extra_touched) scratch->extra_bound[v] = 0;
  scratch->extra_touched.clear();
  if (!pending_.empty() && !ResolvePending(scratch)) return true;
  Tuple& head = scratch->head_row;
  head.clear();
  for (const CompiledTerm& t : head_) {
    if (t.is_const) {
      head.push_back(t.value);
    } else if (scratch->bound[t.var]) {
      head.push_back(scratch->values[t.var]);
    } else if (scratch->extra_bound[t.var]) {
      head.push_back(scratch->extra_values[t.var]);
    } else {
      return true;  // Unsafe head: emit nothing.
    }
  }
  if (scratch->target != nullptr && head == *scratch->target) {
    scratch->found = true;
    return false;  // Early exit.
  }
  if (scratch->out != nullptr) scratch->out->Insert(head);
  return true;
}

// ---------------------------------------------------------------------------
// Public entry points

Relation Evaluate(const ConjunctiveQuery& q, const Database& db) {
  Relation out;
  PreparedQuery::Scratch scratch;
  PreparedQuery(q).Run(db, nullptr, &out, &scratch);
  return out;
}

Relation Evaluate(const UnionQuery& q, const Database& db) {
  Relation out;
  PreparedQuery::Scratch scratch;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    PreparedQuery(disjunct).Run(db, nullptr, &out, &scratch);
  }
  return out;
}

bool ComputesTuple(const ConjunctiveQuery& q, const Database& db,
                   const Tuple& head) {
  if (static_cast<int>(head.size()) != q.head().arity()) return false;
  PreparedQuery::Scratch scratch;
  return PreparedQuery(q).Run(db, &head, nullptr, &scratch);
}

bool ComputesTuple(const UnionQuery& q, const Database& db,
                   const Tuple& head) {
  PreparedQuery::Scratch scratch;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    if (static_cast<int>(head.size()) != disjunct.head().arity()) continue;
    if (PreparedQuery(disjunct).Run(db, &head, nullptr, &scratch)) return true;
  }
  return false;
}

}  // namespace cqac
