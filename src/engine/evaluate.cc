#include "engine/evaluate.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cqac {

namespace {

/// Backtracking join evaluator.  The subgoal order is chosen greedily so
/// that each next subgoal shares as many already-bound variables as
/// possible; comparisons fire as soon as both sides are bound.
class Evaluator {
 public:
  Evaluator(const ConjunctiveQuery& q, const Database& db)
      : query_(q), db_(db) {
    PlanSubgoalOrder();
    PlanComparisonTriggers();
  }

  /// Runs the evaluation.  When `target` is non-null, stops as soon as the
  /// target head tuple is produced and reports whether it was found; when
  /// `out` is non-null, collects all head tuples.
  bool Run(const Tuple* target, Relation* out) {
    target_ = target;
    out_ = out;
    found_target_ = false;
    Search(0);
    return found_target_;
  }

 private:
  void PlanSubgoalOrder() {
    const int n = static_cast<int>(query_.body().size());
    std::vector<bool> used(n, false);
    std::unordered_set<std::string> bound;
    for (int step = 0; step < n; ++step) {
      int best = -1;
      int best_score = -1;
      for (int i = 0; i < n; ++i) {
        if (used[i]) continue;
        int score = 0;
        for (const Term& t : query_.body()[i].args()) {
          if (t.IsVariable() && bound.count(t.name()) > 0) ++score;
          if (t.IsConstant()) ++score;
        }
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      used[best] = true;
      order_.push_back(best);
      for (const Term& t : query_.body()[best].args()) {
        if (t.IsVariable()) bound.insert(t.name());
      }
    }
  }

  void PlanComparisonTriggers() {
    // triggers_[d] = comparisons fully bound after matching order_[0..d-1]
    // (d = 0 means bound before any subgoal: constant-only comparisons).
    const int n = static_cast<int>(order_.size());
    triggers_.assign(n + 1, {});
    std::unordered_set<std::string> bound;
    std::vector<bool> fired(query_.comparisons().size(), false);
    auto is_bound = [&bound](const Term& t) {
      return t.IsConstant() || bound.count(t.name()) > 0;
    };
    for (int depth = 0; depth <= n; ++depth) {
      if (depth > 0) {
        for (const Term& t : query_.body()[order_[depth - 1]].args()) {
          if (t.IsVariable()) bound.insert(t.name());
        }
      }
      for (size_t c = 0; c < query_.comparisons().size(); ++c) {
        if (fired[c]) continue;
        const Comparison& comp = query_.comparisons()[c];
        if (is_bound(comp.lhs()) && is_bound(comp.rhs())) {
          fired[c] = true;
          triggers_[depth].push_back(static_cast<int>(c));
        }
      }
    }
    // Comparisons over variables absent from the body stay pending: at
    // the leaf, equality propagation may still determine those variables
    // (e.g. normalized queries bind head variables via `_n0 = X`).
    for (size_t c = 0; c < fired.size(); ++c) {
      if (!fired[c]) pending_.push_back(static_cast<int>(c));
    }
  }

  bool CheckTriggers(int depth) {
    for (const int c : triggers_[depth]) {
      const Comparison& comp = query_.comparisons()[c];
      const Rational a = ValueOf(comp.lhs());
      const Rational b = ValueOf(comp.rhs());
      if (!EvalCompOp(a, comp.op(), b)) return false;
    }
    return true;
  }

  Rational ValueOf(const Term& t) const {
    return t.IsConstant() ? t.value() : bindings_.at(t.name());
  }

  /// Returns false to abort the whole search (target found).
  bool Search(int depth) {
    if (depth == 0 && !CheckTriggers(0)) return true;
    if (depth == static_cast<int>(order_.size())) {
      return EmitHead();
    }
    const Atom& atom = query_.body()[order_[depth]];
    const Relation& rel = db_.Get(atom.predicate());
    for (const Tuple& tuple : rel.tuples()) {
      if (static_cast<int>(tuple.size()) != atom.arity()) continue;
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (int i = 0; i < atom.arity() && ok; ++i) {
        const Term& t = atom.args()[i];
        if (t.IsConstant()) {
          ok = t.value() == tuple[i];
        } else {
          auto it = bindings_.find(t.name());
          if (it == bindings_.end()) {
            bindings_.emplace(t.name(), tuple[i]);
            newly_bound.push_back(t.name());
          } else {
            ok = it->second == tuple[i];
          }
        }
      }
      bool keep_going = true;
      if (ok && CheckTriggers(depth + 1)) {
        keep_going = Search(depth + 1);
      }
      for (const std::string& v : newly_bound) bindings_.erase(v);
      if (!keep_going) return false;
    }
    return true;
  }

  /// Resolves comparisons whose variables no ordinary subgoal bound:
  /// propagates equalities to fixpoint, then evaluates what remains.
  /// Returns false when a pending comparison fails or stays undetermined.
  bool ResolvePending(std::unordered_map<std::string, Rational>* extra) {
    if (pending_.empty()) return true;
    std::vector<int> unresolved = pending_;
    auto lookup = [this, extra](const Term& t, Rational* out) {
      if (t.IsConstant()) {
        *out = t.value();
        return true;
      }
      if (auto it = bindings_.find(t.name()); it != bindings_.end()) {
        *out = it->second;
        return true;
      }
      if (auto it = extra->find(t.name()); it != extra->end()) {
        *out = it->second;
        return true;
      }
      return false;
    };
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < unresolved.size();) {
        const Comparison& comp = query_.comparisons()[unresolved[i]];
        Rational a, b;
        const bool has_a = lookup(comp.lhs(), &a);
        const bool has_b = lookup(comp.rhs(), &b);
        if (has_a && has_b) {
          if (!EvalCompOp(a, comp.op(), b)) return false;
          unresolved.erase(unresolved.begin() + i);
          progress = true;
          continue;
        }
        if (comp.op() == CompOp::kEq && (has_a || has_b)) {
          // Bind the undetermined side.
          const Term& unbound = has_a ? comp.rhs() : comp.lhs();
          extra->emplace(unbound.name(), has_a ? a : b);
          unresolved.erase(unresolved.begin() + i);
          progress = true;
          continue;
        }
        ++i;
      }
    }
    // A comparison with a variable nothing determines: the query is
    // genuinely unsafe; produce no answers.
    return unresolved.empty();
  }

  bool EmitHead() {
    std::unordered_map<std::string, Rational> extra;
    if (!ResolvePending(&extra)) return true;
    Tuple head;
    head.reserve(query_.head().args().size());
    for (const Term& t : query_.head().args()) {
      if (t.IsConstant()) {
        head.push_back(t.value());
      } else if (auto it = bindings_.find(t.name()); it != bindings_.end()) {
        head.push_back(it->second);
      } else if (auto it = extra.find(t.name()); it != extra.end()) {
        head.push_back(it->second);
      } else {
        return true;  // Unsafe head: emit nothing.
      }
    }
    if (target_ != nullptr && head == *target_) {
      found_target_ = true;
      return false;  // Early exit.
    }
    if (out_ != nullptr) out_->Insert(head);
    return true;
  }

  const ConjunctiveQuery& query_;
  const Database& db_;
  std::vector<int> order_;
  std::vector<std::vector<int>> triggers_;
  std::vector<int> pending_;
  std::unordered_map<std::string, Rational> bindings_;
  const Tuple* target_ = nullptr;
  Relation* out_ = nullptr;
  bool found_target_ = false;
};

}  // namespace

Relation Evaluate(const ConjunctiveQuery& q, const Database& db) {
  Relation out;
  Evaluator(q, db).Run(nullptr, &out);
  return out;
}

Relation Evaluate(const UnionQuery& q, const Database& db) {
  Relation out;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    Evaluator(disjunct, db).Run(nullptr, &out);
  }
  return out;
}

bool ComputesTuple(const ConjunctiveQuery& q, const Database& db,
                   const Tuple& head) {
  if (static_cast<int>(head.size()) != q.head().arity()) return false;
  return Evaluator(q, db).Run(&head, nullptr);
}

bool ComputesTuple(const UnionQuery& q, const Database& db,
                   const Tuple& head) {
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    if (ComputesTuple(disjunct, db, head)) return true;
  }
  return false;
}

}  // namespace cqac
