#ifndef CQAC_ENGINE_EVALUATE_H_
#define CQAC_ENGINE_EVALUATE_H_

#include <optional>

#include "ast/query.h"
#include "engine/database.h"

namespace cqac {

/// Evaluates a CQAC over a database instance under set semantics: the set
/// of head tuples produced by all satisfying assignments of the body
/// (ordinary subgoals matched against the database, comparisons evaluated
/// over the rationals).
///
/// The query must be safe; head positions holding constants emit those
/// constants.  For boolean queries the result is `{()}` (one empty tuple)
/// when the body is satisfiable on `db` and `{}` otherwise.
Relation Evaluate(const ConjunctiveQuery& q, const Database& db);

/// Evaluates a union of CQACs (the union of the disjuncts' results).
Relation Evaluate(const UnionQuery& q, const Database& db);

/// True iff `q`'s evaluation on `db` contains `head` — with early exit, so
/// this is much cheaper than `Evaluate(q, db).Contains(head)` when the
/// query has many satisfying assignments.
bool ComputesTuple(const ConjunctiveQuery& q, const Database& db,
                   const Tuple& head);

/// Union version of ComputesTuple.
bool ComputesTuple(const UnionQuery& q, const Database& db, const Tuple& head);

}  // namespace cqac

#endif  // CQAC_ENGINE_EVALUATE_H_
