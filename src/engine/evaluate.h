#ifndef CQAC_ENGINE_EVALUATE_H_
#define CQAC_ENGINE_EVALUATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/interner.h"
#include "ast/query.h"
#include "engine/database.h"
#include "engine/query_plan.h"

namespace cqac {

/// Evaluates a CQAC over a database instance under set semantics: the set
/// of head tuples produced by all satisfying assignments of the body
/// (ordinary subgoals matched against the database, comparisons evaluated
/// over the rationals).
///
/// The query must be safe; head positions holding constants emit those
/// constants.  For boolean queries the result is `{()}` (one empty tuple)
/// when the body is satisfiable on `db` and `{}` otherwise.
Relation Evaluate(const ConjunctiveQuery& q, const Database& db);

/// Evaluates a union of CQACs (the union of the disjuncts' results).
Relation Evaluate(const UnionQuery& q, const Database& db);

/// True iff `q`'s evaluation on `db` contains `head` — with early exit, so
/// this is much cheaper than `Evaluate(q, db).Contains(head)` when the
/// query has many satisfying assignments.
bool ComputesTuple(const ConjunctiveQuery& q, const Database& db,
                   const Tuple& head);

/// Union version of ComputesTuple.
bool ComputesTuple(const UnionQuery& q, const Database& db, const Tuple& head);

/// A database instance in flat form: per (predicate, arity), a row-major
/// value vector.  Canonical-database evaluation refills one of these per
/// total order without rebuilding `std::map`/`std::set` structures; Clear
/// keeps every relation's capacity, so steady-state refills don't allocate.
class FlatInstance {
 public:
  /// Drops all rows (and remembers relations, so ids stay stable).
  void Clear() {
    for (RelationData& r : relations_) r.values.clear();
  }

  /// The id of relation (`predicate`, `arity`), creating it when new.
  uint32_t RelationId(const std::string& predicate, int arity);

  /// The id of relation (`predicate`, `arity`), or SymbolInterner::kNotFound.
  uint32_t FindRelation(const std::string& predicate, int arity) const;

  /// Appends a row of `arity` values to relation `rel`.  Zero-arity
  /// relations store a placeholder per row so emptiness stays observable.
  void AddRow(uint32_t rel, const Rational* row) {
    RelationData& r = relations_[rel];
    if (r.arity == 0) {
      r.values.push_back(Rational(1));
    } else {
      r.values.insert(r.values.end(), row, row + r.arity);
    }
  }

  size_t RowCount(uint32_t rel) const {
    const RelationData& r = relations_[rel];
    return r.arity == 0 ? r.values.size() : r.values.size() / r.arity;
  }
  int Arity(uint32_t rel) const { return relations_[rel].arity; }
  const Rational* Row(uint32_t rel, size_t i) const {
    return relations_[rel].values.data() + i * relations_[rel].arity;
  }

  /// Mutable access to row `i` of relation `rel`, for patching values in
  /// place (delta freezing rewrites only the rows whose variables moved).
  /// Meaningless for zero-arity relations (rows hold no values).
  Rational* MutableRow(uint32_t rel, size_t i) {
    return relations_[rel].values.data() + i * relations_[rel].arity;
  }

  /// Number of relations created so far; valid relation ids are
  /// [0, NumRelations()).
  size_t NumRelations() const { return relations_.size(); }

 private:
  struct RelationData {
    int arity = 0;
    std::vector<Rational> values;  // row-major, size = arity * row count
  };

  SymbolInterner names_;
  // keys_[name_id] = list of (arity, relation id) for that predicate name.
  std::vector<std::vector<std::pair<int, uint32_t>>> keys_;
  std::vector<RelationData> relations_;
};

/// The retained row engine over a compiled QueryPlan: evaluates tuple at
/// a time over `Rational` values, against either a generic `Database` or
/// a row-major `FlatInstance`.  The coded columnar engine (coded_eval.h)
/// executes the same plan over dictionary codes and is the production
/// path for canonical databases; this engine remains the general-purpose
/// evaluator (arbitrary databases, values outside any dictionary) and the
/// reference side of the row-vs-columnar differential suite.
///
/// PreparedQuery is immutable after construction and safe to share across
/// threads; all per-run state lives in a caller-owned Scratch.  Hash
/// indexes on each subgoal's bound columns are built once per (query, db)
/// run and only for relations large enough to repay the build
/// (canonical databases stay on linear scans).
class PreparedQuery {
 public:
  explicit PreparedQuery(const ConjunctiveQuery& q) : plan_(q) {}

  /// Relations smaller than this are scanned; larger ones get a hash index
  /// on the subgoal's bound columns (when it has any).
  static constexpr size_t kIndexGate = 32;

  struct Scratch {
    std::vector<Rational> values;        // var id -> value
    std::vector<char> bound;             // var id -> bound?
    std::vector<Rational> extra_values;  // bindings from ResolvePending
    std::vector<char> extra_bound;
    std::vector<uint32_t> extra_touched;
    std::vector<int> unresolved;
    Tuple head_row;
    struct DepthState {
      std::vector<const Rational*> rows;
      std::unordered_map<uint64_t, std::vector<uint32_t>> index;
      bool use_index = false;
    };
    std::vector<DepthState> depths;
    // Per-run parameters, set by Run.
    const Tuple* target = nullptr;
    Relation* out = nullptr;
    bool found = false;
  };

  /// Evaluates over `db`.  When `target` is non-null, stops as soon as the
  /// target head tuple is produced and returns whether it was found; when
  /// `out` is non-null, collects all head tuples.
  bool Run(const Database& db, const Tuple* target, Relation* out,
           Scratch* scratch) const;

  /// Same, over a flat instance.
  bool Run(const FlatInstance& inst, const Tuple* target, Relation* out,
           Scratch* scratch) const;

  int head_arity() const { return static_cast<int>(plan_.head.size()); }

  /// The shared compiled plan (also executed by CodedEvaluator).
  const QueryPlan& plan() const { return plan_; }

 private:
  bool RunCommon(const Tuple* target, Relation* out, Scratch* scratch) const;
  void BuildIndex(size_t depth, Scratch* scratch) const;
  bool Search(size_t depth, Scratch* scratch) const;
  bool EmitHead(Scratch* scratch) const;
  bool ResolvePending(Scratch* scratch) const;
  bool CheckTriggers(size_t depth, const Scratch& scratch) const;
  uint64_t ProbeHash(const QueryPlan::Subgoal& plan,
                     const Scratch& scratch) const;

  QueryPlan plan_;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_EVALUATE_H_
