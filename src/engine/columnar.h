#ifndef CQAC_ENGINE_COLUMNAR_H_
#define CQAC_ENGINE_COLUMNAR_H_

#include <cstdint>
#include <vector>

namespace cqac {

/// A canonical database in column-major coded form: per relation, one
/// contiguous `uint32_t` block laid out column-by-column (all of column
/// 0's codes, then column 1's, ...).  The codes are ValueDictionary ranks
/// of the corresponding `FlatInstance` rationals.
///
/// Layout is fixed at construction — a CanonicalFreezer knows every
/// relation's row count up front (one row per owning subgoal) — so
/// freezing writes codes in place and never resizes.  Column-major is
/// what the selection-vector kernels in coded_eval.h want: filtering a
/// column against a bound code walks one dense 4-byte stream.
///
/// Relation ids are assigned in AddRelation order; the freezer keeps them
/// identical to its FlatInstance's ids, so name lookup goes through the
/// FlatInstance and the resulting id indexes both representations.
class ColumnarInstance {
 public:
  /// Adds a relation of `arity` with a fixed `rows` capacity; returns its
  /// id.  Zero-arity relations carry no codes but keep their row count,
  /// so emptiness stays observable.
  uint32_t AddRelation(int arity, uint32_t rows) {
    const uint32_t id = static_cast<uint32_t>(rels_.size());
    rels_.push_back({arity, rows, static_cast<uint32_t>(codes_.size())});
    codes_.resize(codes_.size() +
                  static_cast<size_t>(arity) * static_cast<size_t>(rows));
    return id;
  }

  int Arity(uint32_t rel) const { return rels_[rel].arity; }
  uint32_t RowCount(uint32_t rel) const { return rels_[rel].rows; }
  size_t NumRelations() const { return rels_.size(); }

  /// Column `col` of relation `rel`: `RowCount(rel)` contiguous codes.
  const uint32_t* Column(uint32_t rel, int col) const {
    const Rel& r = rels_[rel];
    return codes_.data() + r.offset +
           static_cast<size_t>(col) * static_cast<size_t>(r.rows);
  }

  uint32_t At(uint32_t rel, uint32_t row, int col) const {
    return Column(rel, col)[row];
  }

  void Set(uint32_t rel, uint32_t row, int col, uint32_t code) {
    const Rel& r = rels_[rel];
    codes_[r.offset + static_cast<size_t>(col) * static_cast<size_t>(r.rows) +
           row] = code;
  }

 private:
  struct Rel {
    int arity;
    uint32_t rows;
    uint32_t offset;  // into codes_
  };
  std::vector<Rel> rels_;
  std::vector<uint32_t> codes_;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_COLUMNAR_H_
