#ifndef CQAC_ENGINE_ARENA_H_
#define CQAC_ENGINE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace cqac {

/// A bump allocator for per-canonical-database scratch.
///
/// The evaluation core's working set — selection vectors, flat hash
/// indexes, variable binding arrays — has the textbook arena lifetime:
/// carve at the start of a freeze → evaluate cycle, drop everything at
/// once when the next canonical database arrives.  Reset() rewinds the
/// bump pointer without releasing memory, so after the first few
/// databases have grown the arena to its high-water mark, steady-state
/// evaluation performs zero heap allocations (the property the
/// `alloc_gate_test` perfsmoke gate asserts).
///
/// Only trivially-destructible types may be placed in the arena: Reset
/// runs no destructors.  Not thread-safe; use one per thread.
class Arena {
 public:
  explicit Arena(size_t initial_bytes = kDefaultInitialBytes) {
    blocks_.push_back(NewBlock(initial_bytes));
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// `bytes` of storage aligned to `align` (a power of two).  Alignment
  /// is handled with integer offset arithmetic, never pointer
  /// over/underflow — the arithmetic ubsan checks in CI care about this.
  void* Allocate(size_t bytes, size_t align) {
    Block& block = blocks_[current_];
    const size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
    if (aligned + bytes <= block.size) {
      offset_ = aligned + bytes;
      Bump(bytes);
      return block.data.get() + aligned;
    }
    return AllocateSlow(bytes, align);
  }

  /// An uninitialized array of `n` `T`s.  `T` must be trivially
  /// destructible (nothing runs at Reset).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// A zero-initialized array of `n` `T`s (T must be trivially
  /// copyable; the bytes are memset).
  template <typename T>
  T* AllocateZeroedArray(size_t n) {
    T* out = AllocateArray<T>(n);
    std::memset(static_cast<void*>(out), 0, n * sizeof(T));
    return out;
  }

  /// Rewinds the bump pointer, keeping capacity.  When the previous
  /// epoch overflowed into extra blocks, they are coalesced into one
  /// block covering the observed high-water mark, so the *next* epoch
  /// bump-allocates from a single contiguous block — after which Reset
  /// never allocates again until the working set grows.
  void Reset() {
    if (blocks_.size() > 1) {
      const size_t need = RoundUpPow2(high_water_);
      blocks_.clear();
      blocks_.push_back(NewBlock(need));
    }
    current_ = 0;
    offset_ = 0;
    epoch_bytes_ = 0;
  }

  /// Total bytes handed out since the last Reset (diagnostics).
  size_t epoch_bytes() const { return epoch_bytes_; }

  /// The largest epoch_bytes observed over the arena's lifetime.
  size_t high_water() const { return high_water_; }

 private:
  static constexpr size_t kDefaultInitialBytes = 16 * 1024;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  static Block NewBlock(size_t size) {
    return Block{std::make_unique<char[]>(size), size};
  }

  static size_t RoundUpPow2(size_t n) {
    size_t p = kDefaultInitialBytes;
    while (p < n) p *= 2;
    return p;
  }

  void* AllocateSlow(size_t bytes, size_t align) {
    // Move to (or create) a block big enough for the request; alignment
    // from a fresh offset of 0 needs at most align - 1 slack.
    const size_t need = RoundUpPow2(bytes + align);
    ++current_;
    if (current_ == blocks_.size()) blocks_.push_back(NewBlock(need));
    if (blocks_[current_].size < bytes + align) {
      blocks_[current_] = NewBlock(need);
    }
    offset_ = 0;
    Block& block = blocks_[current_];
    const size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
    offset_ = aligned + bytes;
    Bump(bytes);
    return block.data.get() + aligned;
  }

  void Bump(size_t bytes) {
    epoch_bytes_ += bytes;
    if (epoch_bytes_ > high_water_) high_water_ = epoch_bytes_;
  }

  std::vector<Block> blocks_;
  size_t current_ = 0;
  size_t offset_ = 0;
  size_t epoch_bytes_ = 0;
  size_t high_water_ = 0;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_ARENA_H_
