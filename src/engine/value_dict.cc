#include "engine/value_dict.h"

#include <algorithm>

namespace cqac {

bool ValueDictionary::Add(const Rational& v) {
  if (code_of_.count(v) != 0) return false;
  if (std::find(staged_.begin(), staged_.end(), v) != staged_.end()) {
    return false;
  }
  staged_.push_back(v);
  return true;
}

void ValueDictionary::Rebuild() {
  if (staged_.empty()) return;
  values_.insert(values_.end(), staged_.begin(), staged_.end());
  staged_.clear();
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
  code_of_.clear();
  code_of_.reserve(values_.size());
  for (uint32_t i = 0; i < values_.size(); ++i) code_of_.emplace(values_[i], i);
  ++epoch_;
}

void SeedCanonicalValuePool(size_t num_vars,
                            const std::vector<Rational>& constants,
                            ValueDictionary* dict) {
  std::vector<Rational> sorted = constants;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  const int64_t v = static_cast<int64_t>(num_vars);
  if (sorted.empty()) {
    for (int64_t i = 1; i <= v; ++i) dict->Add(Rational(i));
    return;
  }
  for (const Rational& c : sorted) dict->Add(c);
  for (int64_t d = 1; d <= v; ++d) {
    dict->Add(sorted.front() - Rational(d));
    dict->Add(sorted.back() + Rational(d));
  }
  for (size_t k = 0; k + 1 < sorted.size(); ++k) {
    const Rational& lo = sorted[k];
    const Rational span = sorted[k + 1] - lo;
    for (int64_t gap = 1; gap <= v; ++gap) {
      for (int64_t j = 1; j <= gap; ++j) {
        dict->Add(lo + span * Rational(j, gap + 1));
      }
    }
  }
}

}  // namespace cqac
