#ifndef CQAC_ENGINE_CANONICAL_H_
#define CQAC_ENGINE_CANONICAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/query.h"
#include "constraints/orders.h"
#include "engine/database.h"
#include "engine/evaluate.h"

namespace cqac {

/// A canonical database of a query: the query's ordinary subgoals with
/// variables frozen to concrete rationals under some total order, together
/// with the bookkeeping needed to map values back to terms ("unfreezing").
struct CanonicalDatabase {
  Database db;

  /// The freezing assignment (query variable -> value).
  std::map<std::string, Rational> assignment;

  /// The frozen head tuple of the query.  Empty for boolean queries.
  Tuple frozen_head;

  /// Maps each value back to the representative term of its order block:
  /// the block's constant if it has one, otherwise its first variable.
  /// Values not in the map unfreeze to themselves (as constants).
  std::map<Rational, Term> unfreeze;

  /// Unfreezes a value to a term.
  Term Unfreeze(const Rational& value) const;

  /// Unfreezes a ground atom (e.g. a view tuple computed on `db`) back to
  /// an atom over the query's variables.
  Atom UnfreezeAtom(const Atom& ground) const;
};

/// Freezes `q`'s ordinary subgoals under `order`, which must cover every
/// variable of `q` (typically produced by ForEachTotalOrder over
/// `q.AllVariables()` and a superset of `q`'s constants).  The resulting
/// database ignores `q`'s comparisons; whether the order satisfies them is
/// the caller's concern (e.g. via AcSolver::SatisfiedBy or by evaluating
/// `q` on the result).
CanonicalDatabase FreezeQuery(const ConjunctiveQuery& q,
                              const TotalOrder& order);

/// The single canonical database of `q` that assigns every variable a
/// distinct value (Section 2.5 of the paper: "the canonical database of the
/// query Q when ignoring the ACs").  Fresh values are integers chosen above
/// all constants occurring in `q`.
CanonicalDatabase FreezeQueryDistinct(const ConjunctiveQuery& q);

/// Compiled canonical-database freezing for the containment hot loop: the
/// query's subgoals and head are lowered once to (relation id, value-slot)
/// form, and each Freeze call fills a FlatInstance from a total order's
/// block values without rebuilding map/set structures.  After the first
/// few calls no allocation occurs per order.
///
/// Produces exactly the tuples and frozen head FreezeQuery would (same
/// value scheme via TotalOrder::BlockValues); it skips the assignment and
/// unfreeze maps, which evaluation does not need.  Not thread-safe; use
/// one per thread.
class CanonicalFreezer {
 public:
  explicit CanonicalFreezer(const ConjunctiveQuery& q);

  /// Freezes under `order`, which must cover every variable of the query.
  /// The returned instance and frozen_head() stay valid until the next
  /// Freeze call.
  const FlatInstance& Freeze(const TotalOrder& order);

  /// The frozen head tuple of the last Freeze.  Empty for boolean queries.
  const Tuple& frozen_head() const { return frozen_head_; }

 private:
  struct CompiledTerm {
    bool is_const;
    uint32_t slot;   // variable slot when !is_const
    Rational value;  // constant value when is_const
  };
  struct CompiledSubgoal {
    uint32_t relation;
    std::vector<CompiledTerm> terms;
  };

  std::unordered_map<std::string, uint32_t> var_slots_;
  std::vector<CompiledSubgoal> subgoals_;
  std::vector<CompiledTerm> head_;
  FlatInstance instance_;
  std::vector<Rational> block_values_;
  std::vector<Rational> var_values_;  // slot -> value under current order
  std::vector<Rational> row_;
  Tuple frozen_head_;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_CANONICAL_H_
