#ifndef CQAC_ENGINE_CANONICAL_H_
#define CQAC_ENGINE_CANONICAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/query.h"
#include "constraints/orders.h"
#include "engine/columnar.h"
#include "engine/database.h"
#include "engine/evaluate.h"
#include "engine/value_dict.h"

namespace cqac {

/// A canonical database of a query: the query's ordinary subgoals with
/// variables frozen to concrete rationals under some total order, together
/// with the bookkeeping needed to map values back to terms ("unfreezing").
struct CanonicalDatabase {
  Database db;

  /// The freezing assignment (query variable -> value).
  std::map<std::string, Rational> assignment;

  /// The frozen head tuple of the query.  Empty for boolean queries.
  Tuple frozen_head;

  /// Maps each value back to the representative term of its order block:
  /// the block's constant if it has one, otherwise its first variable.
  /// Values not in the map unfreeze to themselves (as constants).
  std::map<Rational, Term> unfreeze;

  /// Unfreezes a value to a term.
  Term Unfreeze(const Rational& value) const;

  /// Unfreezes a ground atom (e.g. a view tuple computed on `db`) back to
  /// an atom over the query's variables.
  Atom UnfreezeAtom(const Atom& ground) const;
};

/// Freezes `q`'s ordinary subgoals under `order`, which must cover every
/// variable of `q` (typically produced by ForEachTotalOrder over
/// `q.AllVariables()` and a superset of `q`'s constants).  The resulting
/// database ignores `q`'s comparisons; whether the order satisfies them is
/// the caller's concern (e.g. via AcSolver::SatisfiedBy or by evaluating
/// `q` on the result).
CanonicalDatabase FreezeQuery(const ConjunctiveQuery& q,
                              const TotalOrder& order);

/// The single canonical database of `q` that assigns every variable a
/// distinct value (Section 2.5 of the paper: "the canonical database of the
/// query Q when ignoring the ACs").  Fresh values are integers chosen above
/// all constants occurring in `q`.
CanonicalDatabase FreezeQueryDistinct(const ConjunctiveQuery& q);

/// Compiled canonical-database freezing for the containment hot loop: the
/// query's subgoals and head are lowered once to (relation id, value-slot)
/// form, and each Freeze call fills a FlatInstance from a total order's
/// block values without rebuilding map/set structures.  After the first
/// few calls no allocation occurs per order.
///
/// Freezing is *incremental*: the row layout (which subgoal owns which row
/// of which relation) is fixed at construction, so consecutive Freeze
/// calls diff the new variable values against the previous order's and
/// rewrite, in place, only the rows whose variables moved.  Per-relation
/// change epochs let callers cache work derived from relations an order
/// change did not touch (see rewriting/view_tuples.h).  The produced
/// instance is a pure function of the current order — identical to what a
/// from-scratch FreezeFull yields — regardless of the call history.
///
/// Produces exactly the tuples and frozen head FreezeQuery would (same
/// value scheme via TotalOrder::BlockValues); the assignment and unfreeze
/// maps are replaced by slot/block accessors.  Not thread-safe; use one
/// per thread.
class CanonicalFreezer {
 public:
  explicit CanonicalFreezer(const ConjunctiveQuery& q);

  /// Freezes under `order`, which must cover every variable of the query.
  /// The returned instance and frozen_head() stay valid until the next
  /// Freeze call.  Delta form: only rows touching changed variables are
  /// rewritten.
  const FlatInstance& Freeze(const TotalOrder& order);

  /// Freezes from scratch (clear + refill), marking every relation
  /// changed.  Same result as Freeze; retained as the reference path and
  /// as the "full" side of bench_phase1's delta-vs-full comparison.
  const FlatInstance& FreezeFull(const TotalOrder& order);

  /// The frozen head tuple of the last Freeze.  Empty for boolean queries.
  const Tuple& frozen_head() const { return frozen_head_; }

  /// The instance last produced by Freeze/FreezeFull.
  const FlatInstance& instance() const { return instance_; }

  /// The coded twin of instance(): every Freeze also writes each frozen
  /// value's dictionary code into a column-major ColumnarInstance with
  /// the same relation ids.  This is what CodedEvaluator runs over.
  const ColumnarInstance& columnar() const { return columnar_; }

  /// The dictionary coding this freezer's values.  Subgoal and head
  /// constants are interned at construction; block values are interned
  /// on first sight (forcing a recode) unless PrimeDictionary was called.
  const ValueDictionary& dictionary() const { return dict_; }

  /// frozen_head() in dictionary codes.
  const std::vector<uint32_t>& frozen_head_codes() const {
    return frozen_head_codes_;
  }

  /// Seeds the dictionary with every value any total order over at most
  /// `num_vars` variables and exactly `constants` can produce
  /// (SeedCanonicalValuePool), so no later Freeze ever triggers a
  /// mid-run rebuild — the steady-state zero-allocation guarantee of the
  /// coded path.  Call once, before the enumeration loop, with the
  /// run's merged constants (the same set handed to the order
  /// enumerator) and variable count.
  void PrimeDictionary(const std::vector<Rational>& constants,
                       size_t num_vars);

  /// Interns extra values (e.g. a prepared plan's constants) into the
  /// dictionary, recoding current state when anything was new.  Used by
  /// CodedEvaluator::BindTo.
  void AddDictionaryValues(const Rational* values, size_t n);

  /// Monotone counter: the number of Freeze/FreezeFull calls so far.
  uint64_t epoch() const { return epoch_; }

  /// The epoch at which relation `rel`'s rows last changed (0 = never).
  /// `rel` must be a relation id of instance().
  uint64_t RelationEpoch(uint32_t rel) const { return rel_epochs_[rel]; }

  /// Slot map of the compiled query's variables (body and head variables;
  /// variables occurring only in comparisons have no slot).
  const std::unordered_map<std::string, uint32_t>& var_slots() const {
    return var_slots_;
  }
  /// Slot index -> variable name (deterministic iteration order).
  const std::vector<std::string>& slot_names() const { return slot_names_; }
  /// Slot index -> frozen value under the last order.
  const std::vector<Rational>& var_values() const { return var_values_; }
  /// Slot index -> index of the last order's block holding the variable.
  const std::vector<uint32_t>& var_blocks() const { return var_blocks_; }

  /// The last order's per-block values (strictly increasing) and
  /// representative terms (the block's constant, else its first variable).
  const std::vector<Rational>& block_values() const { return block_values_; }
  const std::vector<Term>& block_reps() const { return block_reps_; }

  /// Maps a value of the last frozen instance back to its order block's
  /// representative term; values outside every block (e.g. constants
  /// introduced by a view head) unfreeze to themselves.  Same semantics as
  /// CanonicalDatabase::Unfreeze.
  Term UnfreezeValue(const Rational& value) const;

 private:
  struct CompiledTerm {
    bool is_const;
    uint32_t slot;   // variable slot when !is_const
    Rational value;  // constant value when is_const
    uint32_t code = 0;  // dictionary code of value (refreshed on rebuild)
  };
  struct CompiledSubgoal {
    uint32_t relation;
    uint32_t row;  // this subgoal's fixed row index within its relation
    std::vector<CompiledTerm> terms;
  };

  /// Refreshes block_values_/block_reps_/var_blocks_/var_values_ from
  /// `order`; when `track` is set, changed_ records which slots moved.
  /// Also resolves per-block and per-slot dictionary codes, growing the
  /// dictionary (and setting dict_rebuilt_) when a block value is new.
  void LoadOrder(const TotalOrder& order, bool track);
  void RebuildHead();
  /// Re-resolves subgoal/head constant codes after a dictionary rebuild.
  void RecodeConstTerms();
  /// Writes subgoal `sg`'s code row into the columnar instance.
  void WriteCodeRow(const CompiledSubgoal& sg);
  /// Rewrites all derived codes (slots, columnar rows, head) from the
  /// current values — used when the dictionary is rebuilt outside
  /// LoadOrder (PrimeDictionary/AddDictionaryValues after a Freeze).
  void RecodeAll();

  std::unordered_map<std::string, uint32_t> var_slots_;
  std::vector<std::string> slot_names_;
  std::vector<CompiledSubgoal> subgoals_;
  std::vector<CompiledTerm> head_;
  FlatInstance instance_;
  std::vector<Rational> block_values_;
  std::vector<Term> block_reps_;
  std::vector<Rational> var_values_;  // slot -> value under current order
  std::vector<uint32_t> var_blocks_;  // slot -> block index
  std::vector<char> changed_;         // slot -> moved in the last delta?
  std::vector<Rational> row_;
  Tuple frozen_head_;
  uint64_t epoch_ = 0;
  std::vector<uint64_t> rel_epochs_;  // relation id -> last-changed epoch

  // Coded twin state.
  ValueDictionary dict_;
  ColumnarInstance columnar_;
  std::vector<uint32_t> block_codes_;  // block index -> code (last order)
  std::vector<uint32_t> var_codes_;    // slot -> code (last order)
  std::vector<uint32_t> frozen_head_codes_;
  bool dict_rebuilt_ = false;  // set by LoadOrder when a block value was new
};

}  // namespace cqac

#endif  // CQAC_ENGINE_CANONICAL_H_
