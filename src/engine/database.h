#ifndef CQAC_ENGINE_DATABASE_H_
#define CQAC_ENGINE_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/atom.h"
#include "ast/value.h"

namespace cqac {

/// A tuple of rational values.
using Tuple = std::vector<Rational>;

/// A relation instance: a duplicate-free, ordered set of same-arity tuples.
/// Set semantics matches the paper (containment/equivalence are defined
/// over set-valued answers).
class Relation {
 public:
  Relation() = default;

  /// Inserts `t`; returns true when the tuple was new.
  bool Insert(const Tuple& t) { return tuples_.insert(t).second; }

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }
  bool empty() const { return tuples_.empty(); }
  int size() const { return static_cast<int>(tuples_.size()); }

  const std::set<Tuple>& tuples() const { return tuples_; }

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.tuples_ == b.tuples_;
  }
  friend bool operator!=(const Relation& a, const Relation& b) {
    return !(a == b);
  }

  /// True when every tuple of this relation is in `other`.
  bool SubsetOf(const Relation& other) const;

  /// Renders as `{(1,2), (3,4)}`.
  std::string ToString() const;

 private:
  std::set<Tuple> tuples_;
};

/// An in-memory database: a mapping from predicate names to relation
/// instances.  Missing predicates behave as empty relations.
class Database {
 public:
  Database() = default;

  /// Adds the tuple `values` to relation `predicate`.
  void Insert(const std::string& predicate, Tuple values);

  /// Adds the ground atom `fact` (all of whose arguments must be
  /// constants).  Returns false if any argument is a variable.
  bool InsertFact(const Atom& fact);

  /// The instance of `predicate` (empty if absent).
  const Relation& Get(const std::string& predicate) const;

  bool empty() const { return relations_.empty(); }

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  /// Renders one relation per line, e.g. `a: {(1,2)}`.
  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_DATABASE_H_
