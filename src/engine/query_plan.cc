#include "engine/query_plan.h"

#include <algorithm>

#include "ast/interner.h"

namespace cqac {

QueryPlan::QueryPlan(const ConjunctiveQuery& q) {
  SymbolInterner vars;
  // Intern every variable up front (head, body, comparisons) so ids cover
  // comparison-only variables too; first-seen order keeps ids deterministic.
  for (const Term& t : q.head().args()) {
    if (t.IsVariable()) vars.Intern(t.name());
  }
  for (const Atom& atom : q.body()) {
    for (const Term& t : atom.args()) {
      if (t.IsVariable()) vars.Intern(t.name());
    }
  }
  for (const Comparison& c : q.comparisons()) {
    if (c.lhs().IsVariable()) vars.Intern(c.lhs().name());
    if (c.rhs().IsVariable()) vars.Intern(c.rhs().name());
  }
  num_vars = vars.size();

  auto intern_constant = [this](const Rational& value) -> uint32_t {
    for (uint32_t i = 0; i < constants.size(); ++i) {
      if (constants[i] == value) return i;
    }
    constants.push_back(value);
    return static_cast<uint32_t>(constants.size() - 1);
  };

  // Greedy most-constrained-first subgoal order: next is the subgoal with
  // the most constant-or-already-bound argument positions (ties to the
  // lowest original index, matching the string evaluator it replaces).
  const int n = static_cast<int>(q.body().size());
  std::vector<char> used(n, 0);
  std::vector<char> bound(num_vars, 0);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    int best_score = -1;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      int score = 0;
      for (const Term& t : q.body()[i].args()) {
        if (t.IsConstant() || bound[vars.Find(t.name())]) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    used[best] = 1;
    order.push_back(best);
    for (const Term& t : q.body()[best].args()) {
      if (t.IsVariable()) bound[vars.Find(t.name())] = 1;
    }
  }

  // Compile each subgoal (in search order) to per-position ops, its undo
  // list, and its entry-bound column signature for hash indexing.
  std::fill(bound.begin(), bound.end(), 0);
  subgoals.reserve(n);
  for (const int body_index : order) {
    const Atom& atom = q.body()[body_index];
    Subgoal plan;
    plan.predicate = atom.predicate();
    plan.arity = atom.arity();
    plan.ops.reserve(atom.arity());
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[i];
      if (t.IsConstant()) {
        plan.ops.push_back({Op::kConst, intern_constant(t.value())});
        plan.entry_cols.push_back(static_cast<uint32_t>(i));
        continue;
      }
      const uint32_t v = vars.Find(t.name());
      if (bound[v]) {
        plan.ops.push_back({Op::kCheck, v});
        plan.entry_cols.push_back(static_cast<uint32_t>(i));
      } else if (std::find(plan.bind_vars.begin(), plan.bind_vars.end(), v) !=
                 plan.bind_vars.end()) {
        // Repeated variable within the atom: first occurrence binds, the
        // rest check — but the value is not known before the row is read,
        // so this is not an entry column.
        plan.ops.push_back({Op::kCheck, v});
      } else {
        plan.ops.push_back({Op::kBind, v});
        plan.bind_vars.push_back(v);
      }
    }
    for (const uint32_t v : plan.bind_vars) bound[v] = 1;
    subgoals.push_back(std::move(plan));
  }

  // Comparison triggers: triggers[d] lists the comparisons that become
  // fully bound after matching subgoals[0..d-1]; never-bound comparisons
  // stay pending for equality propagation at the leaves.
  auto compile_term = [&vars](const Term& t) {
    TermRef ct;
    ct.is_const = t.IsConstant();
    if (ct.is_const) {
      ct.value = t.value();
      ct.var = 0;
    } else {
      ct.var = vars.Find(t.name());
    }
    return ct;
  };
  comparisons.reserve(q.comparisons().size());
  for (const Comparison& c : q.comparisons()) {
    comparisons.push_back(
        {compile_term(c.lhs()), compile_term(c.rhs()), c.op()});
  }
  triggers.assign(subgoals.size() + 1, {});
  std::fill(bound.begin(), bound.end(), 0);
  std::vector<char> fired(comparisons.size(), 0);
  auto term_bound = [&bound](const TermRef& t) {
    return t.is_const || bound[t.var];
  };
  for (size_t depth = 0; depth <= subgoals.size(); ++depth) {
    if (depth > 0) {
      for (const uint32_t v : subgoals[depth - 1].bind_vars) bound[v] = 1;
    }
    for (size_t c = 0; c < comparisons.size(); ++c) {
      if (fired[c]) continue;
      if (term_bound(comparisons[c].lhs) && term_bound(comparisons[c].rhs)) {
        fired[c] = 1;
        triggers[depth].push_back(static_cast<int>(c));
      }
    }
  }
  for (size_t c = 0; c < fired.size(); ++c) {
    if (!fired[c]) pending.push_back(static_cast<int>(c));
  }

  head.reserve(q.head().args().size());
  for (const Term& t : q.head().args()) head.push_back(compile_term(t));
}

}  // namespace cqac
