#ifndef CQAC_ENGINE_JOINTREE_H_
#define CQAC_ENGINE_JOINTREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ast/query.h"
#include "engine/database.h"
#include "engine/evaluate.h"

namespace cqac {

/// A Yannakakis-style boolean evaluator for acyclic comparison-free
/// queries, compiled once per query and reusable across canonical
/// databases.  Where PreparedQuery answers "does `q` compute this head
/// tuple on this instance?" by backtracking over a join order, this plan
/// answers the same question by (1) binding the head variables from the
/// target tuple, (2) filtering each atom's relation down to the rows
/// consistent with those bindings, the atom's constants, and its repeated
/// variables, then (3) running a bottom-up semi-join sweep along a GYO
/// join forest (ast/hypergraph.h).  For alpha-acyclic queries the sweep
/// is complete: every root retaining a row is equivalent to the existence
/// of a satisfying assignment, so the verdict is identical to the general
/// search — in time linear in the instance per atom pair instead of
/// exponential in the join width.
///
/// This is the T2 execution engine of the structure-aware tier router
/// (rewriting/structure.h): both the Phase-1 keep test and the per-order
/// evaluation inside CqacContainedCanonical accept one of these in place
/// of the general evaluator, and must produce byte-identical verdicts.
struct AcyclicPlan {
  struct PlanTerm {
    bool is_const = false;
    int var = -1;    // variable index when !is_const
    Rational value;  // constant value when is_const
  };

  struct PlanAtom {
    std::string predicate;
    int arity = 0;
    std::vector<PlanTerm> terms;
    /// Position pairs that must hold equal values because the same
    /// variable occupies both (first occurrence vs each repeat).
    std::vector<std::pair<int, int>> repeats;
  };

  /// Reusable per-thread evaluation state; Run never touches plan state,
  /// so one immutable plan may be shared across threads, each with its
  /// own scratch.
  struct Scratch {
    std::vector<char> bound;           // var index -> bound by the head?
    std::vector<Rational> values;      // var index -> bound value
    std::vector<std::vector<uint32_t>> candidates;  // atom -> row indices
    std::vector<uint32_t> filtered;    // semi-join survivor buffer
  };

  std::vector<PlanAtom> atoms;
  /// GYO elimination order (children strictly before parents) and parent
  /// links; parent[i] == -1 marks the root of a connected component.
  std::vector<int> order;
  std::vector<int> parent;
  /// For every non-root atom i: (position in i, position in parent[i])
  /// for each variable the two atoms share.
  std::vector<std::vector<std::pair<int, int>>> join_positions;
  /// The head template: one term per head position.
  std::vector<PlanTerm> head;
  int num_vars = 0;

  /// True iff the compiled query computes `frozen_head` on `inst` — the
  /// same verdict PreparedQuery::Run(inst, &frozen_head, ...) returns.
  /// Atoms whose relation is absent from `inst` can never match.
  bool Run(const FlatInstance& inst, const Tuple& frozen_head,
           Scratch* scratch) const;
};

/// Compiles `q` into an AcyclicPlan, or nullopt when the plan's
/// completeness argument does not apply: `q` has comparisons (selections
/// the semi-join sweep does not model), a cyclic hypergraph (no join
/// forest exists), or an empty body.
std::optional<AcyclicPlan> AcyclicPlanFor(const ConjunctiveQuery& q);

}  // namespace cqac

#endif  // CQAC_ENGINE_JOINTREE_H_
