#ifndef CQAC_ENGINE_CODED_EVAL_H_
#define CQAC_ENGINE_CODED_EVAL_H_

#include <cstdint>
#include <vector>

#include "ast/comparison.h"
#include "engine/arena.h"
#include "engine/canonical.h"
#include "engine/database.h"
#include "engine/query_plan.h"

namespace cqac {

namespace internal {

/// Test hook (process-global, relaxed atomic — same contract as
/// ForceSatisfyingOrderFallbackForTest): when set, call sites that would
/// run the coded columnar engine over canonical databases use the
/// retained row engine instead.  The differential lattice flips this to
/// pit the two engines against each other.
void ForceRowEngineForTest(bool force);
bool RowEngineForced();

}  // namespace internal

/// The coded columnar engine: executes a QueryPlan over a
/// CanonicalFreezer's dictionary-coded ColumnarInstance.
///
/// Where the row engine walks `Rational` rows pointer by pointer, this
/// engine works on dense `uint32_t` codes in column-major order:
///
///   - comparisons (triggers, pending resolution) are single integer
///     compares — order-preserving codes make every CompOp code-exact;
///   - candidate selection per subgoal is a batched kernel: filter one
///     column against a bound code into a selection vector, then refine
///     the selection with the remaining entry columns;
///   - subgoals over relations big enough to repay a build get a flat
///     open-addressing index over their entry-column codes (chained row
///     lists, no std::unordered_map);
///   - all per-run scratch — binding arrays, selection vectors, index
///     tables — is carved from a bump Arena with a freeze → evaluate →
///     reset lifetime, so steady-state evaluation allocates nothing.
///
/// Results are identical to PreparedQuery's over the same plan: matched
/// in `match_frozen_head` mode, or decoded through the dictionary in
/// collect mode (codes preserve lexicographic tuple order, so the
/// decoded Relation is byte-identical).
///
/// Not thread-safe; use one per thread, alongside its freezer.
class CodedEvaluator {
 public:
  /// `plan` must outlive the evaluator.
  explicit CodedEvaluator(const QueryPlan* plan) : plan_(plan) {}

  /// Relations with at least this many rows (and a nonempty entry-column
  /// signature) get a flat hash index; smaller ones use the selection
  /// kernels or a direct scan.  Tuned by bench_columnar's crossover
  /// sweep: canonical databases (rows = subgoal count) sit far below the
  /// gate, where scans win.
  static constexpr uint32_t kIndexGate = 32;

  /// Below this row count the per-row op loop beats materializing a
  /// selection vector.
  static constexpr uint32_t kFilterGate = 8;

  /// Resolves the plan against `freezer`: subgoal relation ids (stable
  /// for the freezer's lifetime) and the codes of every plan constant.
  /// Constants absent from the dictionary are added — which recodes the
  /// freezer — so bind before the run's first Freeze when possible.
  void BindTo(CanonicalFreezer* freezer);

  /// Evaluates over `freezer`'s current columnar instance; BindTo must
  /// have been called with this freezer.  In `match_frozen_head` mode,
  /// early-exits once the frozen head is produced (code compare) and
  /// returns whether it was; otherwise collects all decoded head tuples
  /// into `*out` and returns false (mirroring PreparedQuery::Run's
  /// collect-mode return).
  bool Run(const CanonicalFreezer& freezer, bool match_frozen_head,
           Relation* out);

  /// Arena high-water mark (diagnostics; stable in steady state).
  size_t arena_high_water() const { return arena_.high_water(); }

 private:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  enum class Strategy : uint8_t { kScan, kFilter, kIndex };

  /// Per-depth execution state, rebuilt (from the arena) each Run.
  struct DepthExec {
    uint32_t rows = 0;
    const uint32_t** cols = nullptr;  // column base pointers, arity of them
    Strategy strategy = Strategy::kScan;
    uint32_t* sel = nullptr;      // selection vector (kFilter), cap rows
    uint32_t* entry_code = nullptr;  // probe codes, one per entry col
    // Flat open-addressing index (kIndex): slots_ holds bucket heads
    // (row ids, kNone = empty), next_ chains rows with equal entry keys.
    uint32_t* slots = nullptr;
    uint32_t mask = 0;
    uint32_t* next = nullptr;
  };

  void ResolveConstants(CanonicalFreezer* freezer);
  void RefreshConstantCodes(const ValueDictionary& dict);
  void BuildIndex(DepthExec* ex, const QueryPlan::Subgoal& sg);
  bool Search(size_t depth);
  bool TryRow(size_t depth, uint32_t row);
  bool EmitHead();
  bool ResolvePending();
  bool CheckTriggers(size_t depth) const;
  uint32_t EntryKeyHash(const DepthExec& ex,
                        const QueryPlan::Subgoal& sg) const;
  bool RowMatchesEntry(const DepthExec& ex, const QueryPlan::Subgoal& sg,
                       uint32_t row) const;

  const QueryPlan* plan_;
  const CanonicalFreezer* bound_freezer_ = nullptr;
  uint64_t dict_epoch_ = 0;

  // Plan-constant resolution, refreshed when the dictionary epoch moves.
  std::vector<uint32_t> rel_ids_;          // per subgoal; kNone when absent
  std::vector<uint32_t> const_codes_;      // per plan constant slot
  std::vector<uint32_t> comp_lhs_code_;    // per comparison; kNone when var
  std::vector<uint32_t> comp_rhs_code_;
  std::vector<uint32_t> head_const_code_;  // per head term; kNone when var

  Arena arena_;
  // Per-run state (arena-backed pointers and run parameters).
  DepthExec* depths_ = nullptr;
  uint32_t* var_code_ = nullptr;
  uint8_t* bound_ = nullptr;
  uint32_t* extra_code_ = nullptr;
  uint8_t* extra_bound_ = nullptr;
  uint32_t* extra_touched_ = nullptr;
  uint32_t num_extra_touched_ = 0;
  int* unresolved_ = nullptr;
  uint32_t* head_code_ = nullptr;
  bool match_mode_ = false;
  // Frozen-head codes in match mode; may be null for a zero-arity head
  // (match_mode_ is the mode signal, not this pointer).
  const uint32_t* target_codes_ = nullptr;
  const ValueDictionary* dict_ = nullptr;
  Relation* out_ = nullptr;
  bool found_ = false;
  Tuple decode_row_;  // reused decode buffer (collect mode)
};

}  // namespace cqac

#endif  // CQAC_ENGINE_CODED_EVAL_H_
