#ifndef CQAC_ENGINE_VALUE_DICT_H_
#define CQAC_ENGINE_VALUE_DICT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ast/value.h"

namespace cqac {

/// Interns `Rational`s to dense, order-preserving `uint32_t` codes.
///
/// Canonical-database values come from a tiny pool — query constants,
/// evenly spaced rationals between adjacent constants, and integers just
/// outside the constant range (TotalOrder::BlockValues) — so a whole
/// rewrite run touches at most a few hundred distinct values.  Coding
/// them as their rank in the sorted pool turns every hot-loop operation
/// on 16-byte `Rational`s (cross-multiplying compares, two-word hashes)
/// into an integer op on a 4-byte code:
///
///   v1 < v2   ⟺  Code(v1) < Code(v2)          (all CompOps likewise)
///   row1 < row2 lexicographically  ⟺  coded rows compare the same way
///
/// The second property is what lets coded evaluation decode a sorted
/// set of result rows into a `Relation` with identical contents and
/// iteration order to the row engine's.
///
/// Mutation is staged: `Add` collects values, `Rebuild` re-ranks.  A
/// rebuild renumbers existing codes (rank insertion shifts neighbours),
/// so every cached code is invalidated — consumers key their caches on
/// `epoch()`.  Seeding the dictionary with the full reachable pool
/// (SeedCanonicalValuePool) makes rebuilds a cold-start event only.
class ValueDictionary {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  /// Stages `v` for the next Rebuild.  Returns true when `v` is new
  /// (neither built nor already staged).
  bool Add(const Rational& v);

  /// Folds staged values into the sorted pool and reassigns rank codes.
  /// Bumps epoch() iff the pool actually changed.
  void Rebuild();

  /// The code of `v`, or kNotFound when `v` is not in the built pool.
  /// (Staged-but-not-rebuilt values are not findable.)
  uint32_t Find(const Rational& v) const {
    const auto it = code_of_.find(v);
    return it == code_of_.end() ? kNotFound : it->second;
  }

  /// The value of a built code (must be < size()).
  const Rational& Value(uint32_t code) const { return values_[code]; }

  /// Number of built codes; valid codes are [0, size()).
  size_t size() const { return values_.size(); }

  /// True when Add staged something Rebuild has not folded in yet.
  bool has_staged() const { return !staged_.empty(); }

  /// Bumped by every Rebuild that changed the pool; cache key for any
  /// consumer holding codes.
  uint64_t epoch() const { return epoch_; }

 private:
  std::vector<Rational> values_;  // sorted ascending; code = index
  std::unordered_map<Rational, uint32_t> code_of_;
  std::vector<Rational> staged_;
  uint64_t epoch_ = 0;
};

/// Stages into `dict` every value that TotalOrder::BlockValues can emit
/// for any total order over at most `num_vars` variable blocks and
/// exactly the given constants (each always a block of its own):
///
///   - the constants themselves;
///   - integers c_first − d and c_last + d for d = 1..num_vars (blocks
///     outside the constant range);
///   - for each adjacent constant pair (lo, hi) and each possible gap
///     size g = 1..num_vars, the evenly spaced values
///     lo + (hi − lo)·j/(g+1) for j = 1..g;
///   - with no constants at all, the integers 1..num_vars.
///
/// Calling this (plus Rebuild) before the first freeze means no order can
/// ever surface a value outside the pool, so the dictionary never
/// rebuilds mid-run — the steady-state zero-allocation property of the
/// coded path depends on it.  `constants` need not be sorted or unique.
/// The pool is O(num_vars² · |constants|), a few hundred values for
/// realistic queries.
void SeedCanonicalValuePool(size_t num_vars,
                            const std::vector<Rational>& constants,
                            ValueDictionary* dict);

}  // namespace cqac

#endif  // CQAC_ENGINE_VALUE_DICT_H_
