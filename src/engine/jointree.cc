#include "engine/jointree.h"

#include <unordered_map>

#include "ast/hypergraph.h"
#include "ast/interner.h"

namespace cqac {

namespace {

/// Row filter shared by the candidate pass: constants, head-bound
/// variables, and within-atom repeats.
bool RowMatches(const AcyclicPlan::PlanAtom& atom, const Rational* row,
                const AcyclicPlan::Scratch& scratch) {
  for (int p = 0; p < atom.arity; ++p) {
    const AcyclicPlan::PlanTerm& t = atom.terms[p];
    if (t.is_const) {
      if (!(row[p] == t.value)) return false;
    } else if (scratch.bound[t.var] != 0) {
      if (!(row[p] == scratch.values[t.var])) return false;
    }
  }
  for (const auto& [a, b] : atom.repeats) {
    if (!(row[a] == row[b])) return false;
  }
  return true;
}

}  // namespace

std::optional<AcyclicPlan> AcyclicPlanFor(const ConjunctiveQuery& q) {
  if (!q.comparisons().empty()) return std::nullopt;
  if (q.body().empty()) return std::nullopt;
  const JoinForest forest = GyoJoinForest(q);
  if (forest.elimination_order.empty()) return std::nullopt;  // cyclic

  AcyclicPlan plan;
  plan.order = forest.elimination_order;
  plan.parent = forest.parent;

  std::unordered_map<std::string, int> var_index;
  auto index_of = [&](const std::string& name) {
    const auto [it, inserted] =
        var_index.emplace(name, static_cast<int>(var_index.size()));
    return it->second;
  };

  plan.atoms.reserve(q.body().size());
  for (const Atom& a : q.body()) {
    AcyclicPlan::PlanAtom atom;
    atom.predicate = a.predicate();
    atom.arity = static_cast<int>(a.args().size());
    std::unordered_map<int, int> first_pos;  // var index -> first position
    for (int p = 0; p < atom.arity; ++p) {
      const Term& t = a.args()[p];
      AcyclicPlan::PlanTerm term;
      if (t.IsVariable()) {
        term.var = index_of(t.name());
        const auto [it, inserted] = first_pos.emplace(term.var, p);
        if (!inserted) atom.repeats.emplace_back(it->second, p);
      } else {
        term.is_const = true;
        term.value = t.value();
      }
      atom.terms.push_back(std::move(term));
    }
    plan.atoms.push_back(std::move(atom));
  }

  // Join positions: the first occurrence of every variable the child and
  // its parent share.  Repeated occurrences are already pinned equal by
  // `repeats`, so one position per variable per side suffices.
  plan.join_positions.resize(plan.atoms.size());
  for (size_t i = 0; i < plan.atoms.size(); ++i) {
    const int j = plan.parent[i];
    if (j < 0) continue;
    std::unordered_map<int, int> parent_pos;
    for (int p = 0; p < plan.atoms[j].arity; ++p) {
      const AcyclicPlan::PlanTerm& t = plan.atoms[j].terms[p];
      if (!t.is_const) parent_pos.emplace(t.var, p);
    }
    std::unordered_map<int, int> taken;
    for (int p = 0; p < plan.atoms[i].arity; ++p) {
      const AcyclicPlan::PlanTerm& t = plan.atoms[i].terms[p];
      if (t.is_const) continue;
      const auto it = parent_pos.find(t.var);
      if (it == parent_pos.end()) continue;
      if (!taken.emplace(t.var, p).second) continue;  // first occurrence only
      plan.join_positions[i].emplace_back(p, it->second);
    }
  }

  for (const Term& t : q.head().args()) {
    AcyclicPlan::PlanTerm term;
    if (t.IsVariable()) {
      // Safe queries put every head variable in the body, so the index
      // already exists; index_of also covers the (unsafe) stray case.
      term.var = index_of(t.name());
    } else {
      term.is_const = true;
      term.value = t.value();
    }
    plan.head.push_back(std::move(term));
  }
  plan.num_vars = static_cast<int>(var_index.size());
  return plan;
}

bool AcyclicPlan::Run(const FlatInstance& inst, const Tuple& frozen_head,
                      Scratch* scratch) const {
  if (frozen_head.size() != head.size()) return false;
  scratch->bound.assign(static_cast<size_t>(num_vars), 0);
  scratch->values.resize(static_cast<size_t>(num_vars));
  for (size_t p = 0; p < head.size(); ++p) {
    const PlanTerm& t = head[p];
    if (t.is_const) {
      if (!(frozen_head[p] == t.value)) return false;
    } else if (scratch->bound[t.var] != 0) {
      if (!(scratch->values[t.var] == frozen_head[p])) return false;
    } else {
      scratch->bound[t.var] = 1;
      scratch->values[t.var] = frozen_head[p];
    }
  }

  scratch->candidates.resize(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    const PlanAtom& atom = atoms[i];
    std::vector<uint32_t>& cand = scratch->candidates[i];
    cand.clear();
    const uint32_t rel = inst.FindRelation(atom.predicate, atom.arity);
    if (rel == SymbolInterner::kNotFound) return false;
    const size_t rows = inst.RowCount(rel);
    for (size_t r = 0; r < rows; ++r) {
      if (atom.arity == 0 || RowMatches(atom, inst.Row(rel, r), *scratch)) {
        cand.push_back(static_cast<uint32_t>(r));
      }
    }
    if (cand.empty()) return false;
  }

  // Bottom-up semi-join sweep: every atom precedes its parent in `order`,
  // so by the time i reduces parent[i], i's own candidate set has already
  // been reduced by all of i's children.  A root emptied by its children
  // (or any atom emptied at all) kills the component, hence the query.
  for (const int i : order) {
    const int j = parent[i];
    if (j < 0) continue;
    const PlanAtom& parent_atom = atoms[j];
    const uint32_t parent_rel =
        inst.FindRelation(parent_atom.predicate, parent_atom.arity);
    const PlanAtom& child_atom = atoms[i];
    const uint32_t child_rel =
        inst.FindRelation(child_atom.predicate, child_atom.arity);
    const std::vector<std::pair<int, int>>& positions = join_positions[i];
    std::vector<uint32_t>& parent_cand = scratch->candidates[j];
    const std::vector<uint32_t>& child_cand = scratch->candidates[i];
    scratch->filtered.clear();
    for (const uint32_t pr : parent_cand) {
      const Rational* parent_row = inst.Row(parent_rel, pr);
      bool supported = false;
      for (const uint32_t cr : child_cand) {
        const Rational* child_row = inst.Row(child_rel, cr);
        bool agrees = true;
        for (const auto& [cp, pp] : positions) {
          if (!(child_row[cp] == parent_row[pp])) {
            agrees = false;
            break;
          }
        }
        if (agrees) {
          supported = true;
          break;
        }
      }
      if (supported) scratch->filtered.push_back(pr);
    }
    parent_cand.swap(scratch->filtered);
    if (parent_cand.empty()) return false;
  }
  return true;
}

}  // namespace cqac
