#include "engine/coded_eval.h"

#include <algorithm>
#include <atomic>

#include "ast/interner.h"

namespace cqac {

namespace internal {

namespace {
std::atomic<bool> g_force_row_engine{false};
}  // namespace

void ForceRowEngineForTest(bool force) {
  g_force_row_engine.store(force, std::memory_order_relaxed);
}

bool RowEngineForced() {
  return g_force_row_engine.load(std::memory_order_relaxed);
}

}  // namespace internal

namespace {

/// Order-preserving codes make every CompOp a plain integer compare.
inline bool EvalCodeOp(uint32_t a, CompOp op, uint32_t b) {
  switch (op) {
    case CompOp::kLt:
      return a < b;
    case CompOp::kLe:
      return a <= b;
    case CompOp::kEq:
      return a == b;
    case CompOp::kNe:
      return a != b;
    case CompOp::kGe:
      return a >= b;
    case CompOp::kGt:
      return a > b;
  }
  return false;
}

inline uint32_t MixCode(uint32_t h, uint32_t code) {
  return h ^ (code + 0x9e3779b9u + (h << 6) + (h >> 2));
}

/// Selection kernel: appends to `sel` (branchlessly) the row ids whose
/// `col` code equals `code`; returns the selection size.
inline uint32_t FilterEq(const uint32_t* col, uint32_t n, uint32_t code,
                         uint32_t* sel) {
  uint32_t m = 0;
  for (uint32_t i = 0; i < n; ++i) {
    sel[m] = i;
    m += col[i] == code ? 1u : 0u;
  }
  return m;
}

/// Refinement kernel: compacts `sel` in place to the rows whose `col`
/// code equals `code`; returns the new selection size.
inline uint32_t RefineEq(const uint32_t* col, uint32_t code, uint32_t* sel,
                         uint32_t n) {
  uint32_t m = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t r = sel[i];
    sel[m] = r;
    m += col[r] == code ? 1u : 0u;
  }
  return m;
}

}  // namespace

void CodedEvaluator::BindTo(CanonicalFreezer* freezer) {
  if (bound_freezer_ != freezer) {
    bound_freezer_ = freezer;
    rel_ids_.clear();
    rel_ids_.reserve(plan_->subgoals.size());
    for (const QueryPlan::Subgoal& sg : plan_->subgoals) {
      const uint32_t rel =
          freezer->instance().FindRelation(sg.predicate, sg.arity);
      rel_ids_.push_back(rel == SymbolInterner::kNotFound ? kNone : rel);
    }
  }
  ResolveConstants(freezer);
}

void CodedEvaluator::ResolveConstants(CanonicalFreezer* freezer) {
  // Every constant the plan can mention — subgoal positions, comparison
  // sides, head terms — joins the dictionary so the hot loop never sees
  // an uncoded value.  (Bind-time allocation is fine; Run-time is not.)
  std::vector<Rational> all = plan_->constants;
  for (const QueryPlan::ComparisonRef& c : plan_->comparisons) {
    if (c.lhs.is_const) all.push_back(c.lhs.value);
    if (c.rhs.is_const) all.push_back(c.rhs.value);
  }
  for (const QueryPlan::TermRef& t : plan_->head) {
    if (t.is_const) all.push_back(t.value);
  }
  if (!all.empty()) freezer->AddDictionaryValues(all.data(), all.size());
  RefreshConstantCodes(freezer->dictionary());
}

void CodedEvaluator::RefreshConstantCodes(const ValueDictionary& dict) {
  const_codes_.resize(plan_->constants.size());
  for (size_t i = 0; i < plan_->constants.size(); ++i) {
    const_codes_[i] = dict.Find(plan_->constants[i]);
  }
  comp_lhs_code_.resize(plan_->comparisons.size());
  comp_rhs_code_.resize(plan_->comparisons.size());
  for (size_t c = 0; c < plan_->comparisons.size(); ++c) {
    const QueryPlan::ComparisonRef& comp = plan_->comparisons[c];
    comp_lhs_code_[c] = comp.lhs.is_const ? dict.Find(comp.lhs.value) : kNone;
    comp_rhs_code_[c] = comp.rhs.is_const ? dict.Find(comp.rhs.value) : kNone;
  }
  head_const_code_.resize(plan_->head.size());
  for (size_t i = 0; i < plan_->head.size(); ++i) {
    const QueryPlan::TermRef& t = plan_->head[i];
    head_const_code_[i] = t.is_const ? dict.Find(t.value) : kNone;
  }
  dict_epoch_ = dict.epoch();
}

bool CodedEvaluator::Run(const CanonicalFreezer& freezer,
                         bool match_frozen_head, Relation* out) {
  const ColumnarInstance& inst = freezer.columnar();
  dict_ = &freezer.dictionary();
  // A mid-run dictionary rebuild (unseeded value) renumbers codes; the
  // cached constant codes follow.  Lookups only — no allocation.
  if (dict_->epoch() != dict_epoch_) RefreshConstantCodes(*dict_);
  if (match_frozen_head &&
      freezer.frozen_head_codes().size() != plan_->head.size()) {
    return false;
  }
  match_mode_ = match_frozen_head;
  target_codes_ =
      match_frozen_head ? freezer.frozen_head_codes().data() : nullptr;
  out_ = out;
  found_ = false;

  // Carve all per-run scratch from the arena: after the first few runs
  // the arena is at its high-water mark and Reset + carving is pure
  // pointer arithmetic — zero heap traffic per canonical database.
  arena_.Reset();
  const size_t nsub = plan_->subgoals.size();
  depths_ = arena_.AllocateArray<DepthExec>(nsub);
  var_code_ = arena_.AllocateArray<uint32_t>(plan_->num_vars);
  bound_ = arena_.AllocateZeroedArray<uint8_t>(plan_->num_vars);
  extra_code_ = arena_.AllocateArray<uint32_t>(plan_->num_vars);
  extra_bound_ = arena_.AllocateZeroedArray<uint8_t>(plan_->num_vars);
  extra_touched_ = arena_.AllocateArray<uint32_t>(plan_->num_vars);
  num_extra_touched_ = 0;
  unresolved_ = arena_.AllocateArray<int>(plan_->pending.size());
  head_code_ = arena_.AllocateArray<uint32_t>(plan_->head.size());

  for (size_t d = 0; d < nsub; ++d) {
    DepthExec& ex = depths_[d];
    ex = DepthExec{};
    const QueryPlan::Subgoal& sg = plan_->subgoals[d];
    const uint32_t rel = rel_ids_[d];
    if (rel == kNone) continue;  // Absent relation: zero candidates.
    ex.rows = inst.RowCount(rel);
    ex.cols = arena_.AllocateArray<const uint32_t*>(sg.arity);
    for (int c = 0; c < sg.arity; ++c) ex.cols[c] = inst.Column(rel, c);
    if (sg.entry_cols.empty() || ex.rows < kFilterGate) {
      ex.strategy = Strategy::kScan;
    } else if (ex.rows >= kIndexGate) {
      ex.strategy = Strategy::kIndex;
      ex.entry_code = arena_.AllocateArray<uint32_t>(sg.entry_cols.size());
      BuildIndex(&ex, sg);
    } else {
      ex.strategy = Strategy::kFilter;
      ex.sel = arena_.AllocateArray<uint32_t>(ex.rows);
      ex.entry_code = arena_.AllocateArray<uint32_t>(sg.entry_cols.size());
    }
  }
  if (CheckTriggers(0)) Search(0);
  return found_;
}

uint32_t CodedEvaluator::EntryKeyHash(const DepthExec& ex,
                                      const QueryPlan::Subgoal& sg) const {
  uint32_t h = 0;
  for (size_t i = 0; i < sg.entry_cols.size(); ++i) {
    h = MixCode(h, ex.entry_code[i]);
  }
  return h;
}

bool CodedEvaluator::RowMatchesEntry(const DepthExec& ex,
                                     const QueryPlan::Subgoal& sg,
                                     uint32_t row) const {
  for (size_t i = 0; i < sg.entry_cols.size(); ++i) {
    if (ex.cols[sg.entry_cols[i]][row] != ex.entry_code[i]) return false;
  }
  return true;
}

void CodedEvaluator::BuildIndex(DepthExec* ex, const QueryPlan::Subgoal& sg) {
  uint32_t size = 4;
  while (size < ex->rows * 2) size <<= 1;
  ex->mask = size - 1;
  ex->slots = arena_.AllocateArray<uint32_t>(size);
  std::fill(ex->slots, ex->slots + size, kNone);
  ex->next = arena_.AllocateArray<uint32_t>(ex->rows);

  auto rows_equal = [&](uint32_t a, uint32_t b) {
    for (const uint32_t col : sg.entry_cols) {
      if (ex->cols[col][a] != ex->cols[col][b]) return false;
    }
    return true;
  };
  // Insert in reverse so chains (head = last insert) come out in
  // ascending row order — the visit order of the scan path.
  for (uint32_t r = ex->rows; r-- > 0;) {
    uint32_t h = 0;
    for (const uint32_t col : sg.entry_cols) {
      h = MixCode(h, ex->cols[col][r]);
    }
    uint32_t i = h & ex->mask;
    for (;;) {
      const uint32_t head = ex->slots[i];
      if (head == kNone) {
        ex->next[r] = kNone;
        ex->slots[i] = r;
        break;
      }
      if (rows_equal(head, r)) {
        ex->next[r] = head;
        ex->slots[i] = r;
        break;
      }
      i = (i + 1) & ex->mask;
    }
  }
}

bool CodedEvaluator::CheckTriggers(size_t depth) const {
  for (const int c : plan_->triggers[depth]) {
    const QueryPlan::ComparisonRef& comp = plan_->comparisons[c];
    const uint32_t a =
        comp.lhs.is_const ? comp_lhs_code_[c] : var_code_[comp.lhs.var];
    const uint32_t b =
        comp.rhs.is_const ? comp_rhs_code_[c] : var_code_[comp.rhs.var];
    if (!EvalCodeOp(a, comp.op, b)) return false;
  }
  return true;
}

bool CodedEvaluator::TryRow(size_t depth, uint32_t row) {
  const QueryPlan::Subgoal& sg = plan_->subgoals[depth];
  const DepthExec& ex = depths_[depth];
  bool ok = true;
  for (int i = 0; i < sg.arity && ok; ++i) {
    const QueryPlan::Op& op = sg.ops[i];
    const uint32_t v = ex.cols[i][row];
    switch (op.kind) {
      case QueryPlan::Op::kConst:
        ok = const_codes_[op.slot] == v;
        break;
      case QueryPlan::Op::kBind:
        var_code_[op.slot] = v;
        bound_[op.slot] = 1;
        break;
      case QueryPlan::Op::kCheck:
        ok = var_code_[op.slot] == v;
        break;
    }
  }
  bool keep_going = true;
  if (ok && CheckTriggers(depth + 1)) keep_going = Search(depth + 1);
  for (const uint32_t v : sg.bind_vars) bound_[v] = 0;
  return keep_going;
}

bool CodedEvaluator::Search(size_t depth) {
  if (depth == plan_->subgoals.size()) return EmitHead();
  const QueryPlan::Subgoal& sg = plan_->subgoals[depth];
  DepthExec& ex = depths_[depth];

  switch (ex.strategy) {
    case Strategy::kScan:
      for (uint32_t r = 0; r < ex.rows; ++r) {
        if (!TryRow(depth, r)) return false;
      }
      return true;

    case Strategy::kFilter: {
      for (size_t i = 0; i < sg.entry_cols.size(); ++i) {
        const QueryPlan::Op& op = sg.ops[sg.entry_cols[i]];
        ex.entry_code[i] = op.kind == QueryPlan::Op::kConst
                               ? const_codes_[op.slot]
                               : var_code_[op.slot];
      }
      uint32_t n =
          FilterEq(ex.cols[sg.entry_cols[0]], ex.rows, ex.entry_code[0],
                   ex.sel);
      for (size_t i = 1; i < sg.entry_cols.size() && n > 0; ++i) {
        n = RefineEq(ex.cols[sg.entry_cols[i]], ex.entry_code[i], ex.sel, n);
      }
      for (uint32_t k = 0; k < n; ++k) {
        if (!TryRow(depth, ex.sel[k])) return false;
      }
      return true;
    }

    case Strategy::kIndex: {
      for (size_t i = 0; i < sg.entry_cols.size(); ++i) {
        const QueryPlan::Op& op = sg.ops[sg.entry_cols[i]];
        ex.entry_code[i] = op.kind == QueryPlan::Op::kConst
                               ? const_codes_[op.slot]
                               : var_code_[op.slot];
      }
      uint32_t i = EntryKeyHash(ex, sg) & ex.mask;
      while (ex.slots[i] != kNone) {
        const uint32_t head = ex.slots[i];
        if (RowMatchesEntry(ex, sg, head)) {
          for (uint32_t r = head; r != kNone; r = ex.next[r]) {
            if (!TryRow(depth, r)) return false;
          }
          return true;
        }
        i = (i + 1) & ex.mask;
      }
      return true;
    }
  }
  return true;
}

bool CodedEvaluator::ResolvePending() {
  uint32_t n = 0;
  for (const int c : plan_->pending) unresolved_[n++] = c;
  auto lookup = [this](const QueryPlan::TermRef& t, uint32_t const_code,
                       uint32_t* out) {
    if (t.is_const) {
      *out = const_code;
      return true;
    }
    if (bound_[t.var]) {
      *out = var_code_[t.var];
      return true;
    }
    if (extra_bound_[t.var]) {
      *out = extra_code_[t.var];
      return true;
    }
    return false;
  };
  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t i = 0; i < n;) {
      const int c = unresolved_[i];
      const QueryPlan::ComparisonRef& comp = plan_->comparisons[c];
      uint32_t a, b;
      const bool has_a = lookup(comp.lhs, comp_lhs_code_[c], &a);
      const bool has_b = lookup(comp.rhs, comp_rhs_code_[c], &b);
      if (has_a && has_b) {
        if (!EvalCodeOp(a, comp.op, b)) return false;
        unresolved_[i] = unresolved_[--n];
        progress = true;
        continue;
      }
      if (comp.op == CompOp::kEq && (has_a || has_b)) {
        // Bind the undetermined side (necessarily a variable).  Equality
        // propagation is confluent, so the removal order (swap-with-last
        // here, order-preserving erase in the row engine) cannot change
        // the outcome.
        const QueryPlan::TermRef& unbound = has_a ? comp.rhs : comp.lhs;
        extra_bound_[unbound.var] = 1;
        extra_code_[unbound.var] = has_a ? a : b;
        extra_touched_[num_extra_touched_++] = unbound.var;
        unresolved_[i] = unresolved_[--n];
        progress = true;
        continue;
      }
      ++i;
    }
  }
  return n == 0;
}

bool CodedEvaluator::EmitHead() {
  // Reset ResolvePending's equality-derived bindings from the previous
  // leaf.
  for (uint32_t i = 0; i < num_extra_touched_; ++i) {
    extra_bound_[extra_touched_[i]] = 0;
  }
  num_extra_touched_ = 0;
  if (!plan_->pending.empty() && !ResolvePending()) return true;
  const size_t n = plan_->head.size();
  for (size_t i = 0; i < n; ++i) {
    const QueryPlan::TermRef& t = plan_->head[i];
    if (t.is_const) {
      head_code_[i] = head_const_code_[i];
    } else if (bound_[t.var]) {
      head_code_[i] = var_code_[t.var];
    } else if (extra_bound_[t.var]) {
      head_code_[i] = extra_code_[t.var];
    } else {
      return true;  // Unsafe head: emit nothing.
    }
  }
  if (match_mode_) {
    if (std::equal(head_code_, head_code_ + n, target_codes_)) {
      found_ = true;
      return false;  // Early exit.
    }
    return true;
  }
  if (out_ != nullptr) {
    // Codes preserve lexicographic tuple order, so decoded rows land in
    // the Relation's std::set exactly where the row engine's would.
    decode_row_.clear();
    for (size_t i = 0; i < n; ++i) {
      decode_row_.push_back(dict_->Value(head_code_[i]));
    }
    out_->Insert(decode_row_);
  }
  return true;
}

}  // namespace cqac
