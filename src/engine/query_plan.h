#ifndef CQAC_ENGINE_QUERY_PLAN_H_
#define CQAC_ENGINE_QUERY_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/query.h"

namespace cqac {

/// A conjunctive query compiled once for repeated evaluation: interned
/// variables, greedy most-constrained-first subgoal order, per-position
/// match ops (constant check / bind / consistency check), comparison
/// triggers by depth, and bound-column signatures for hash indexing.
///
/// The plan is pure data, immutable after construction and safe to share
/// across threads.  Two engines execute it: the retained row engine
/// (PreparedQuery in evaluate.h, which works over arbitrary `Rational`
/// databases) and the coded columnar engine (CodedEvaluator in
/// coded_eval.h, which works over a CanonicalFreezer's dictionary-coded
/// instance).  Keeping one shared plan guarantees both engines visit
/// candidates in the same subgoal order and apply the same triggers, so
/// their verdicts and result sets are comparable op for op.
struct QueryPlan {
  struct Op {
    enum Kind : uint8_t { kConst, kBind, kCheck };
    Kind kind;
    uint32_t slot;  // constant slot for kConst, var id otherwise
  };
  struct Subgoal {
    std::string predicate;
    int arity;
    std::vector<Op> ops;              // one per argument position
    std::vector<uint32_t> bind_vars;  // vars this subgoal binds (undo list)
    // Argument positions whose value is known before scanning candidates
    // (constants and variables bound at entry): the index key signature.
    std::vector<uint32_t> entry_cols;
  };
  struct TermRef {
    bool is_const;
    uint32_t var;    // valid when !is_const
    Rational value;  // valid when is_const
  };
  struct ComparisonRef {
    TermRef lhs, rhs;
    CompOp op;
  };

  explicit QueryPlan(const ConjunctiveQuery& q);

  uint32_t num_vars = 0;
  std::vector<Rational> constants;          // slot pool for kConst ops
  std::vector<Subgoal> subgoals;            // in search order
  std::vector<std::vector<int>> triggers;   // by depth, comparison ids
  std::vector<int> pending;                 // comparison ids never triggered
  std::vector<ComparisonRef> comparisons;
  std::vector<TermRef> head;
};

}  // namespace cqac

#endif  // CQAC_ENGINE_QUERY_PLAN_H_
