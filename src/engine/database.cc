#include "engine/database.h"

#include <algorithm>

namespace cqac {

bool Relation::SubsetOf(const Relation& other) const {
  return std::all_of(tuples_.begin(), tuples_.end(),
                     [&other](const Tuple& t) { return other.Contains(t); });
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first_tuple = true;
  for (const Tuple& t : tuples_) {
    if (!first_tuple) out += ", ";
    first_tuple = false;
    out += "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ",";
      out += t[i].ToString();
    }
    out += ")";
  }
  out += "}";
  return out;
}

void Database::Insert(const std::string& predicate, Tuple values) {
  relations_[predicate].Insert(values);
}

bool Database::InsertFact(const Atom& fact) {
  Tuple values;
  values.reserve(fact.args().size());
  for (const Term& t : fact.args()) {
    if (!t.IsConstant()) return false;
    values.push_back(t.value());
  }
  Insert(fact.predicate(), std::move(values));
  return true;
}

const Relation& Database::Get(const std::string& predicate) const {
  // Function-local static pointer: trivially destructible per style rules.
  static const Relation* const kEmpty = new Relation;
  auto it = relations_.find(predicate);
  return it == relations_.end() ? *kEmpty : it->second;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [predicate, relation] : relations_) {
    if (!out.empty()) out += "\n";
    out += predicate + ": " + relation.ToString();
  }
  return out;
}

}  // namespace cqac
