#ifndef CQAC_WORKLOAD_PRAND_H_
#define CQAC_WORKLOAD_PRAND_H_

#include <cstdint>
#include <random>

namespace cqac {

/// Portable uniform integer draws over an std::mt19937_64.
///
/// The engine itself is fully specified by the standard — a given seed
/// produces the same 64-bit output sequence on every platform and in every
/// build type — but std::uniform_int_distribution's mapping from raw
/// engine outputs to a bounded range is implementation-defined: libstdc++,
/// libc++, and MSVC each produce different draw sequences from the same
/// engine state, and a standard library may change its mapping between
/// releases.  Workload generation and the fuzzer draw through these
/// explicit rejection samplers instead, so `cqacfuzz --seed N` reproduces
/// byte-identical workloads across platforms, standard libraries, and
/// Release/Debug builds.

/// A uniform draw from [0, n).  n == 0 yields the full 64-bit range.
inline uint64_t PortableBoundedDraw(std::mt19937_64& rng, uint64_t n) {
  if (n == 0) return rng();
  // Unbiased rejection: discard the short final partial block of the
  // 2^64-value output space ((2^64 mod n) values), then reduce.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t x = rng();
    if (x >= threshold) return x % n;
  }
}

/// A uniform draw from [lo, hi], inclusive.  hi <= lo yields lo.
inline int PortableUniformInt(std::mt19937_64& rng, int lo, int hi) {
  if (hi <= lo) return lo;
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(PortableBoundedDraw(rng, span));
}

}  // namespace cqac

#endif  // CQAC_WORKLOAD_PRAND_H_
