#include "workload/generator.h"

#include <algorithm>
#include <set>

#include "constraints/ac_solver.h"
#include "workload/prand.h"

namespace cqac {

namespace {

std::string VarName(int i) { return "X" + std::to_string(i); }

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config), rng_(config.seed) {}

int WorkloadGenerator::RandomInt(int lo, int hi) {
  // Not std::uniform_int_distribution: its draw sequence is
  // implementation-defined, which would break cross-platform seed
  // reproducibility (see workload/prand.h).
  return PortableUniformInt(rng_, lo, hi);
}

Rational WorkloadGenerator::RandomConstant() {
  // Constants 10, 20, 30, ...: a fixed pool of size num_constants.
  return Rational(10 * (1 + RandomInt(0, std::max(0, config_.num_constants - 1))));
}

CompOp WorkloadGenerator::RandomOrderOp() {
  switch (RandomInt(0, 3)) {
    case 0:
      return CompOp::kLt;
    case 1:
      return CompOp::kLe;
    case 2:
      return CompOp::kGt;
    default:
      return CompOp::kGe;
  }
}

ConjunctiveQuery WorkloadGenerator::GenerateQuery() {
  // With s binary subgoals at most s+1 distinct variables can occur;
  // clamp so comparisons never pick a variable absent from the body.
  const int n = std::min(config_.num_variables, config_.num_subgoals + 1);
  std::vector<Atom> body;
  // A connected chain: subgoal i joins variable (i mod n) with the next
  // one (guaranteeing all n variables occur) or a random one, so the join
  // graph is connected and the variable budget is met exactly.
  for (int i = 0; i < config_.num_subgoals; ++i) {
    const std::string pred = "p" + std::to_string(RandomInt(
                                 0, std::max(0, config_.num_predicates - 1)));
    int ai = i % n;
    int bi;
    if (i + 1 < n) {
      bi = i + 1;
    } else if (config_.acyclic_only && n > 1) {
      // Duplicate a random chain edge: a repeated edge is still an ear
      // under GYO reduction, whereas the random chord below could close
      // a cycle and bounce the instance off the acyclic tier.
      ai = RandomInt(0, n - 2);
      bi = ai + 1;
    } else {
      bi = RandomInt(0, n - 1);
    }
    body.push_back(Atom(pred, {Term::Variable(VarName(ai)),
                               Term::Variable(VarName(bi))}));
  }
  // Head: the first one or two variables.
  std::vector<Term> head_args = {Term::Variable(VarName(0))};
  if (n > 1) head_args.push_back(Term::Variable(VarName(1 % n)));
  const Atom head("q", std::move(head_args));

  // Comparisons: variable-vs-constant and occasionally variable-vs-
  // variable, retried until jointly satisfiable.  The structural flags
  // short-circuit before any extra PRNG draw so that flag-off configs
  // keep their historical draw sequences.
  std::vector<Comparison> comparisons;
  const int num_comparisons =
      config_.acyclic_only ? 0 : config_.num_query_comparisons;
  for (int i = 0; i < num_comparisons; ++i) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const bool var_vs_const =
          config_.semi_interval_only ||
          (config_.num_constants > 0 && RandomInt(0, 2) != 0);
      Comparison candidate =
          var_vs_const
              ? Comparison(Term::Variable(VarName(RandomInt(0, n - 1))),
                           RandomOrderOp(), Term::Constant(RandomConstant()))
              : Comparison(Term::Variable(VarName(RandomInt(0, n - 1))),
                           RandomOrderOp(),
                           Term::Variable(VarName(RandomInt(0, n - 1))));
      std::vector<Comparison> with = comparisons;
      with.push_back(candidate);
      if (AcSolver::IsSatisfiable(with)) {
        comparisons.push_back(candidate);
        break;
      }
    }
  }
  return ConjunctiveQuery(head, std::move(body), std::move(comparisons));
}

ConjunctiveQuery WorkloadGenerator::FragmentView(const ConjunctiveQuery& query,
                                                 int index) {
  const int qn = static_cast<int>(query.body().size());
  const int len = std::min(config_.view_subgoals, qn);
  const int start = RandomInt(0, qn - len);

  std::vector<Atom> body(query.body().begin() + start,
                         query.body().begin() + start + len);

  // Variables the rest of the query or the head still needs must be
  // exported; export everything the fragment touches to keep the views
  // widely usable (projections would only shrink the search space).
  std::vector<Term> head_args;
  std::set<std::string> seen;
  for (const Atom& a : body) {
    for (const Term& t : a.args()) {
      if (t.IsVariable() && seen.insert(t.name()).second) {
        head_args.push_back(t);
      }
    }
  }
  // Occasionally drop the last exported variable to force MiniCon to
  // reason about nondistinguished variables.
  if (head_args.size() > 1 && RandomInt(0, 3) == 0) head_args.pop_back();

  // Comparisons: the query's comparisons over the fragment's variables,
  // each kept verbatim or relaxed.
  std::vector<Comparison> comparisons;
  for (const Comparison& c : query.comparisons()) {
    auto in_fragment = [&seen](const Term& t) {
      return t.IsConstant() || seen.count(t.name()) > 0;
    };
    if (!in_fragment(c.lhs()) || !in_fragment(c.rhs())) continue;
    Comparison kept = c;
    if (RandomInt(0, 1) == 0) {
      // Relax: open to closed.
      if (kept.op() == CompOp::kLt) {
        kept = Comparison(kept.lhs(), CompOp::kLe, kept.rhs());
      } else if (kept.op() == CompOp::kGt) {
        kept = Comparison(kept.lhs(), CompOp::kGe, kept.rhs());
      }
    }
    comparisons.push_back(kept);
  }

  const Atom head("v" + std::to_string(index), std::move(head_args));
  ConjunctiveQuery view(head, std::move(body), std::move(comparisons));
  // Views get their own variable namespace.
  return view.RenameVariables("Y" + std::to_string(index) + "_");
}

ConjunctiveQuery WorkloadGenerator::DistractorView(int index) {
  std::vector<Atom> body;
  const int n = std::max(2, config_.num_variables);
  for (int i = 0; i < config_.view_subgoals; ++i) {
    const std::string pred = "p" + std::to_string(RandomInt(
                                 0, std::max(0, config_.num_predicates - 1)));
    body.push_back(Atom(pred, {Term::Variable(VarName(RandomInt(0, n - 1))),
                               Term::Variable(VarName(RandomInt(0, n - 1)))}));
  }
  std::vector<Term> head_args;
  std::set<std::string> seen;
  for (const Atom& a : body) {
    for (const Term& t : a.args()) {
      if (t.IsVariable() && seen.insert(t.name()).second) {
        head_args.push_back(t);
      }
    }
  }
  std::vector<Comparison> comparisons;
  // Distractor comparisons are already var-vs-const (semi-interval);
  // acyclic_only demands comparison-free views.
  if (config_.num_constants > 0 && !config_.acyclic_only) {
    comparisons.push_back(Comparison(head_args.front(), RandomOrderOp(),
                                     Term::Constant(RandomConstant())));
  }
  const Atom head("v" + std::to_string(index), std::move(head_args));
  ConjunctiveQuery view(head, std::move(body), std::move(comparisons));
  return view.RenameVariables("Z" + std::to_string(index) + "_");
}

WorkloadInstance WorkloadGenerator::Generate() {
  WorkloadInstance instance;
  instance.query = GenerateQuery();
  const int distractors = static_cast<int>(config_.num_views *
                                           config_.distractor_fraction);
  for (int i = 0; i < config_.num_views; ++i) {
    if (i < config_.num_views - distractors) {
      instance.views.Add(FragmentView(instance.query, i));
    } else {
      instance.views.Add(DistractorView(i));
    }
  }
  return instance;
}

}  // namespace cqac
