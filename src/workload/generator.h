#ifndef CQAC_WORKLOAD_GENERATOR_H_
#define CQAC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "ast/query.h"
#include "rewriting/view_set.h"

namespace cqac {

/// Parameters of a random CQAC workload, chosen to expose exactly the
/// quantities the paper's Figure 4 sweeps: the number of views and the
/// number of distinct variables and constants.
struct WorkloadConfig {
  /// Distinct variables in the query.
  int num_variables = 4;

  /// Distinct constants shared by the query's and views' comparisons.
  /// `num_variables + num_constants` is the x-axis of Figures 4(b,c).
  int num_constants = 2;

  /// Ordinary subgoals in the query body.
  int num_subgoals = 3;

  /// Base relation names (p0, p1, ...), all binary.
  int num_predicates = 3;

  /// Arithmetic comparisons attached to the query.
  int num_query_comparisons = 1;

  /// Number of views.  Most are projections of query fragments (so
  /// rewritings frequently exist, as in the paper's experiments); a
  /// fraction are random distractors.
  int num_views = 4;

  /// Ordinary subgoals per view body.
  int view_subgoals = 2;

  /// Fraction of views generated as distractors unrelated to the query.
  double distractor_fraction = 0.25;

  /// Restrict every generated comparison (query and views) to the
  /// `var op const` shape, so the whole instance is eligible for the
  /// semi-interval tier (rewriting/structure.h).  Defaults to false so
  /// existing (config, seed) pairs keep generating byte-identical
  /// instances.
  bool semi_interval_only = false;

  /// Generate no comparisons at all.  The query's chain-shaped body is
  /// GYO-acyclic, so the instance routes to the acyclic-core tier.
  /// Defaults to false for the same draw-sequence stability reason.
  bool acyclic_only = false;

  /// PRNG seed; equal configs with equal seeds generate byte-identical
  /// instances — across platforms, standard libraries, and build types,
  /// because every bounded draw goes through the explicit rejection
  /// sampler of workload/prand.h instead of the implementation-defined
  /// std::uniform_int_distribution.  `cqacfuzz --seed` leans on this.
  uint64_t seed = 1;
};

/// A generated query/view-set pair.
struct WorkloadInstance {
  ConjunctiveQuery query;
  ViewSet views;
};

/// Deterministic random generator for CQAC rewriting workloads.
///
/// Queries are connected chains of binary subgoals over `num_variables`
/// variables with satisfiable comparisons against the constant pool.
/// Fragment views copy contiguous runs of the query's subgoals, export the
/// variables that the rest of the query (or the head) needs, and carry the
/// query's comparisons restricted to their variables — sometimes relaxed
/// (`<` to `<=`, constants loosened), which is what gives the rewriter
/// genuine work to reject or accept per canonical database.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  /// Generates the next instance (advances the PRNG).
  WorkloadInstance Generate();

 private:
  ConjunctiveQuery GenerateQuery();
  ConjunctiveQuery FragmentView(const ConjunctiveQuery& query, int index);
  ConjunctiveQuery DistractorView(int index);
  Rational RandomConstant();
  CompOp RandomOrderOp();
  int RandomInt(int lo, int hi);  // inclusive bounds

  WorkloadConfig config_;
  std::mt19937_64 rng_;
};

}  // namespace cqac

#endif  // CQAC_WORKLOAD_GENERATOR_H_
