#ifndef CQAC_CLI_SHELL_H_
#define CQAC_CLI_SHELL_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ast/query.h"
#include "catalog/view_catalog.h"
#include "engine/database.h"
#include "rewriting/view_set.h"

namespace cqac {

/// The command processor behind the `cqacsh` binary: a line-oriented
/// shell over the whole library.  Kept as a library class so the test
/// suite can drive it through string streams.
///
/// Commands (see `help` for the authoritative list):
///
///   view <rule>            add a view definition
///   query <rule>           set the current query
///   rewrite [flags]        run the equivalent-rewriting algorithm
///                          (flags: verify, explain, coalesce, minimize)
///   contained-rewrite      union of contained rewritings (MCR machinery)
///   let <name> <rule>      bind a rule to a name
///   contained <n1> <n2>    containment test between two named rules
///   equivalent <n1> <n2>   equivalence test
///   minimize <name>        fold/minimize a named rule
///   acyclic <name>         GYO acyclicity check
///   fact <atom>.           insert a ground fact into the scratch database
///   eval <name|rule>       evaluate on the scratch database
///   eval-rewriting         evaluate the last rewriting on the database
///   metrics [json|reset]   dump or reset the global metrics registry
///   show                   print current query, views, facts
///   clear                  reset all state
///   help                   print the command list
///   quit                   end the session
class Shell {
 public:
  explicit Shell(std::ostream& out) : out_(out) {}

  /// Default worker-thread count for `rewrite` (0 = hardware concurrency,
  /// 1 = serial); a per-command `jobs=N` flag overrides it.  Results are
  /// identical either way — only wall-clock changes.
  void set_default_jobs(int jobs) { default_jobs_ = jobs; }

  /// Default execution-tier pin for `rewrite` (-1 = auto; see
  /// RewriteOptions::force_tier); a per-command `force-tier=N` flag
  /// overrides it.  Behind `cqacsh --force-tier`.  Results are identical
  /// across tiers — this is the differential-testing hook.
  void set_default_force_tier(int tier) { default_force_tier_ = tier; }

  /// When set, every `rewrite` additionally prints the Phase-1 breakdown
  /// (databases visited / pruned / deduped); same as passing the per-command
  /// `stats` flag each time.  Behind `cqacsh --stats`.
  void set_print_stats(bool v) { print_stats_ = v; }

  /// When set, every `rewrite` additionally emits a one-line JSON record of
  /// the outcome and all counters (including the Phase-1 memo hit/miss
  /// split); same as the per-command `json` flag.  Behind `cqacsh --json`.
  void set_json_stats(bool v) { json_stats_ = v; }

  /// Processes one input line; returns false when the session should end.
  bool ProcessLine(const std::string& line);

  /// Reads lines from `in` until EOF or `quit`; prints a prompt between
  /// commands when `interactive`.
  void ProcessStream(std::istream& in, bool interactive);

 private:
  /// Command handlers; each prints its outcome to out_.
  void CmdView(const std::string& args);
  void CmdQuery(const std::string& args);
  void CmdRewrite(const std::string& args);
  void CmdContainedRewrite();
  void CmdLet(const std::string& args);
  void CmdContained(const std::string& args, bool equivalence);
  void CmdMinimize(const std::string& args);
  void CmdAcyclic(const std::string& args);
  void CmdFact(const std::string& args);
  void CmdEval(const std::string& args);
  void CmdEvalRewriting();
  void CmdShow();
  void CmdMetrics(const std::string& args);
  void CmdHelp();

  /// Resolves `token` as a named rule, or parses it as an inline rule.
  std::optional<ConjunctiveQuery> Resolve(const std::string& token);

  std::ostream& out_;
  int default_jobs_ = 1;
  int default_force_tier_ = -1;
  bool print_stats_ = false;
  bool json_stats_ = false;
  ViewSet views_;
  std::optional<ConjunctiveQuery> query_;
  std::map<std::string, ConjunctiveQuery> named_;
  Database db_;
  std::optional<UnionQuery> last_rewriting_;

  /// The session catalog: views are parsed, interned, and compiled once,
  /// then every `rewrite` borrows from the catalog instead of rebuilding.
  /// Dropped whenever the view set changes (`view`, `clear`), rebuilt
  /// lazily on the next `rewrite`.
  std::shared_ptr<ViewCatalog> catalog_;
};

}  // namespace cqac

#endif  // CQAC_CLI_SHELL_H_
