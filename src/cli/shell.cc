#include "cli/shell.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "ast/hypergraph.h"
#include "containment/cq_containment.h"
#include "containment/cqac_containment.h"
#include "engine/evaluate.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "parser/parser.h"
#include "rewriting/contained_rewriter.h"
#include "rewriting/equiv_rewriter.h"
#include "rewriting/expansion.h"
#include "rewriting/explain.h"
#include "runtime/thread_pool.h"

namespace cqac {

namespace {

/// Splits off the first whitespace-delimited word.
std::pair<std::string, std::string> SplitCommand(const std::string& line) {
  const size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) return {"", ""};
  const size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) return {line.substr(start), ""};
  const size_t rest = line.find_first_not_of(" \t", end);
  return {line.substr(start, end - start),
          rest == std::string::npos ? "" : line.substr(rest)};
}

}  // namespace

bool Shell::ProcessLine(const std::string& line) {
  auto [command, args] = SplitCommand(line);
  if (command.empty() || command[0] == '%') return true;  // Comment/blank.
  if (command == "quit" || command == "exit") return false;
  if (command == "view") {
    CmdView(args);
  } else if (command == "query") {
    CmdQuery(args);
  } else if (command == "rewrite") {
    CmdRewrite(args);
  } else if (command == "contained-rewrite") {
    CmdContainedRewrite();
  } else if (command == "let") {
    CmdLet(args);
  } else if (command == "contained") {
    CmdContained(args, /*equivalence=*/false);
  } else if (command == "equivalent") {
    CmdContained(args, /*equivalence=*/true);
  } else if (command == "minimize") {
    CmdMinimize(args);
  } else if (command == "acyclic") {
    CmdAcyclic(args);
  } else if (command == "fact") {
    CmdFact(args);
  } else if (command == "eval") {
    CmdEval(args);
  } else if (command == "eval-rewriting") {
    CmdEvalRewriting();
  } else if (command == "show") {
    CmdShow();
  } else if (command == "metrics") {
    CmdMetrics(args);
  } else if (command == "clear") {
    views_ = ViewSet();
    query_.reset();
    named_.clear();
    db_ = Database();
    last_rewriting_.reset();
    catalog_.reset();
    out_ << "state cleared\n";
  } else if (command == "help") {
    CmdHelp();
  } else {
    out_ << "unknown command '" << command << "' (try: help)\n";
  }
  return true;
}

void Shell::ProcessStream(std::istream& in, bool interactive) {
  std::string line;
  if (interactive) out_ << "cqac> " << std::flush;
  while (std::getline(in, line)) {
    if (!ProcessLine(line)) return;
    if (interactive) out_ << "cqac> " << std::flush;
  }
}

void Shell::CmdView(const std::string& args) {
  std::string error;
  std::optional<ConjunctiveQuery> rule = Parser::ParseRule(args, &error);
  if (!rule.has_value()) {
    out_ << "error: " << error << "\n";
    return;
  }
  if (views_.Find(rule->name()) != nullptr) {
    out_ << "error: a view named '" << rule->name() << "' already exists\n";
    return;
  }
  out_ << "view added: " << rule->ToString() << "\n";
  views_.Add(*std::move(rule));
  catalog_.reset();  // The compiled catalog no longer matches the views.
}

void Shell::CmdQuery(const std::string& args) {
  std::string error;
  std::optional<ConjunctiveQuery> rule = Parser::ParseRule(args, &error);
  if (!rule.has_value()) {
    out_ << "error: " << error << "\n";
    return;
  }
  if (!rule->IsSafe()) {
    out_ << "error: query is unsafe (head/comparison variable missing from "
            "the body)\n";
    return;
  }
  query_ = *std::move(rule);
  out_ << "query set: " << query_->ToString() << "\n";
}

void Shell::CmdRewrite(const std::string& args) {
  if (!query_.has_value()) {
    out_ << "error: set a query first\n";
    return;
  }
  if (views_.empty()) {
    out_ << "error: add at least one view first\n";
    return;
  }
  RewriteOptions options;
  options.jobs = default_jobs_;
  options.force_tier = default_force_tier_;
  std::istringstream flags(args);
  std::string flag;
  bool explain = false;
  bool print_stats = print_stats_;
  bool json_stats = json_stats_;
  while (flags >> flag) {
    if (flag == "verify") {
      options.verify = true;
    } else if (flag == "explain") {
      options.explain = explain = true;
    } else if (flag == "stats") {
      print_stats = true;
    } else if (flag == "json") {
      json_stats = true;
    } else if (flag == "coalesce") {
      options.coalesce_output = true;
    } else if (flag == "minimize") {
      options.minimize_output = true;
    } else if (flag.rfind("jobs=", 0) == 0) {
      int jobs = 0;
      std::string error;
      if (ThreadPool::ParseJobsFlag(flag.substr(5), &jobs, &error)) {
        options.jobs = jobs;
      } else {
        out_ << "warning: jobs " << error << "; flag ignored\n";
      }
    } else if (flag.rfind("force-tier=", 0) == 0) {
      const std::string value = flag.substr(11);
      if (value == "0" || value == "1" || value == "2" || value == "-1") {
        options.force_tier = std::stoi(value);
      } else {
        out_ << "warning: force-tier expects 0, 1, 2 or -1; flag ignored\n";
      }
    } else {
      out_ << "warning: unknown flag '" << flag << "' ignored\n";
    }
  }
  // The session catalog survives across `rewrite` invocations: the view
  // set is compiled once and later runs reuse its plans and caches
  // (results are byte-identical to a fresh EquivalentRewriter run).
  if (catalog_ == nullptr) {
    catalog_ = std::make_shared<ViewCatalog>(views_);
  }
  // Every rewrite runs under its own trace id, so its spans land in the
  // flight recorder and its --json record is joinable against telemetry.
  const obs::TraceId trace_id = obs::GenerateTraceId();
  const obs::RequestScope trace_scope(trace_id);
  const RewriteResult result = catalog_->Rewrite(*query_, options);
  switch (result.outcome) {
    case RewriteOutcome::kRewritingFound:
      out_ << "equivalent rewriting (" << result.rewriting.size()
           << " disjunct" << (result.rewriting.size() == 1 ? "" : "s");
      if (options.verify) {
        out_ << ", verified=" << (result.verified ? "yes" : "NO");
      }
      out_ << "):\n";
      for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
        out_ << "  " << d.ToString() << "\n";
      }
      last_rewriting_ = result.rewriting;
      break;
    case RewriteOutcome::kNoRewriting:
      out_ << "no equivalent rewriting exists";
      if (!result.failure_reason.empty()) {
        out_ << " (" << result.failure_reason << ")";
      }
      out_ << "\n";
      break;
    case RewriteOutcome::kAborted:
      out_ << "aborted: " << result.failure_reason << "\n";
      break;
  }
  out_ << "stats: " << result.stats.canonical_databases
       << " canonical databases, " << result.stats.kept_canonical_databases
       << " kept, " << result.stats.mcds_formed << " MCDs, "
       << result.stats.phase2_checks << " phase-2 checks\n";
  if (print_stats) {
    out_ << "tier: " << result.tier << " (" << result.tier_reason << "); "
         << result.stats.tier1_grid_hits << " grid hits, "
         << result.stats.tier1_grid_misses << " grid misses, "
         << result.stats.tier2_jointree_evals << " join-tree evals\n";
    out_ << "phase-1: " << result.stats.canonical_databases
         << " databases visited, "
         << result.stats.canonical_databases -
                result.stats.kept_canonical_databases
         << " pruned, " << result.stats.phase1_memo_hits
         << " deduped (memo hits), " << result.stats.phase1_memo_misses
         << " computed in full\n";
    out_ << "phase-times: enumeration " << result.stats.enumeration_ns
         << " ns, freeze " << result.stats.freeze_ns << " ns, phase1 "
         << result.stats.phase1_ns << " ns, phase2 "
         << result.stats.phase2_ns << " ns\n";
    const CatalogStats cstats = catalog_->Stats();
    out_ << "catalog: epoch " << cstats.epoch << ", "
         << (result.from_semantic_cache ? "semantic hit" : "computed") << ", "
         << cstats.plans_built << " plans built, " << cstats.plan_hits
         << " plan hits, " << cstats.semantic_hits << " semantic hits, "
         << cstats.semantic_misses << " semantic misses\n";
  }
  if (json_stats) {
    const char* outcome = result.outcome == RewriteOutcome::kRewritingFound
                              ? "found"
                          : result.outcome == RewriteOutcome::kNoRewriting
                              ? "none"
                              : "aborted";
    out_ << "{\"schema_version\": " << kStatsJsonSchemaVersion
         << ", \"outcome\": \"" << outcome << "\", \"disjuncts\": "
         << result.rewriting.size()
         << ", \"canonical_databases\": " << result.stats.canonical_databases
         << ", \"kept_canonical_databases\": "
         << result.stats.kept_canonical_databases
         << ", \"mcds_formed\": " << result.stats.mcds_formed
         << ", \"phase2_checks\": " << result.stats.phase2_checks
         << ", \"phase2_orders\": " << result.stats.phase2_orders
         << ", \"phase1_memo_hits\": " << result.stats.phase1_memo_hits
         << ", \"phase1_memo_misses\": " << result.stats.phase1_memo_misses
         << ", \"tier\": " << result.tier
         << ", \"tier_reason\": \"" << result.tier_reason << "\""
         << ", \"tier1_grid_hits\": " << result.stats.tier1_grid_hits
         << ", \"tier1_grid_misses\": " << result.stats.tier1_grid_misses
         << ", \"tier2_jointree_evals\": " << result.stats.tier2_jointree_evals
         << ", \"enumeration_ns\": " << result.stats.enumeration_ns
         << ", \"freeze_ns\": " << result.stats.freeze_ns
         << ", \"phase1_ns\": " << result.stats.phase1_ns
         << ", \"phase2_ns\": " << result.stats.phase2_ns
         << ", \"semantic_cache_hit\": " << (result.from_semantic_cache ? 1 : 0)
         << ", \"catalog_epoch\": " << result.catalog_epoch
         << ", \"trace_id\": \"" << obs::TraceIdHex(trace_id) << "\"}\n";
  }
  if (explain) out_ << TableauToString(result.trace);
}

void Shell::CmdContainedRewrite() {
  if (!query_.has_value() || views_.empty()) {
    out_ << "error: set a query and at least one view first\n";
    return;
  }
  const ContainedRewriteResult result =
      FindContainedRewritings(*query_, views_);
  out_ << "contained rewritings (" << result.rewriting.size()
       << " disjuncts, " << result.candidates << " candidates tried):\n";
  for (const ConjunctiveQuery& d : result.rewriting.disjuncts()) {
    out_ << "  " << d.ToString() << "\n";
  }
  if (!result.rewriting.empty()) last_rewriting_ = result.rewriting;
}

void Shell::CmdLet(const std::string& args) {
  auto [name, rest] = SplitCommand(args);
  if (name.empty() || rest.empty()) {
    out_ << "usage: let <name> <rule>\n";
    return;
  }
  std::string error;
  std::optional<ConjunctiveQuery> rule = Parser::ParseRule(rest, &error);
  if (!rule.has_value()) {
    out_ << "error: " << error << "\n";
    return;
  }
  named_[name] = *std::move(rule);
  out_ << name << " = " << named_[name].ToString() << "\n";
}

std::optional<ConjunctiveQuery> Shell::Resolve(const std::string& token) {
  if (auto it = named_.find(token); it != named_.end()) return it->second;
  std::string error;
  std::optional<ConjunctiveQuery> rule = Parser::ParseRule(token, &error);
  if (!rule.has_value()) {
    out_ << "error: '" << token << "' is neither a name nor a rule ("
         << error << ")\n";
  }
  return rule;
}

void Shell::CmdContained(const std::string& args, bool equivalence) {
  auto [first, second] = SplitCommand(args);
  if (first.empty() || second.empty()) {
    out_ << "usage: " << (equivalence ? "equivalent" : "contained")
         << " <name1> <name2>\n";
    return;
  }
  const std::optional<ConjunctiveQuery> q1 = Resolve(first);
  const std::optional<ConjunctiveQuery> q2 = Resolve(second);
  if (!q1.has_value() || !q2.has_value()) return;
  if (equivalence) {
    out_ << (CqacEquivalent(*q1, *q2) ? "equivalent" : "not equivalent")
         << "\n";
  } else {
    out_ << (CqacContained(*q1, *q2) ? "contained" : "not contained") << "\n";
  }
}

void Shell::CmdMinimize(const std::string& args) {
  const std::optional<ConjunctiveQuery> q = Resolve(args);
  if (!q.has_value()) return;
  const ConjunctiveQuery minimized =
      q->IsPlainCQ() ? CqMinimize(*q) : FoldExistentialVariables(*q);
  out_ << minimized.ToString() << "\n";
}

void Shell::CmdAcyclic(const std::string& args) {
  const std::optional<ConjunctiveQuery> q = Resolve(args);
  if (!q.has_value()) return;
  out_ << (IsAcyclic(*q) ? "acyclic" : "cyclic") << "\n";
}

void Shell::CmdFact(const std::string& args) {
  // Reuse the rule parser by wrapping the atom in a dummy rule.
  std::string text = args;
  while (!text.empty() && (text.back() == '.' || text.back() == ' ')) {
    text.pop_back();
  }
  std::string error;
  std::optional<ConjunctiveQuery> rule =
      Parser::ParseRule("dummy() :- " + text, &error);
  if (!rule.has_value() || rule->body().size() != 1 ||
      !rule->comparisons().empty()) {
    out_ << "error: expected a single ground atom, e.g. fact a(1,2).\n";
    return;
  }
  if (!db_.InsertFact(rule->body()[0])) {
    out_ << "error: facts must be ground (no variables)\n";
    return;
  }
  out_ << "fact added: " << rule->body()[0].ToString() << "\n";
}

void Shell::CmdEval(const std::string& args) {
  const std::optional<ConjunctiveQuery> q = Resolve(args);
  if (!q.has_value()) return;
  out_ << Evaluate(*q, db_).ToString() << "\n";
}

void Shell::CmdEvalRewriting() {
  if (!last_rewriting_.has_value()) {
    out_ << "error: no rewriting computed yet\n";
    return;
  }
  // The rewriting speaks the view vocabulary: materialize the views over
  // the scratch database first.
  Database materialized;
  for (const ConjunctiveQuery& view : views_.views()) {
    const Relation output = Evaluate(view, db_);
    for (const Tuple& t : output.tuples()) {
      materialized.Insert(view.name(), t);
    }
  }
  out_ << Evaluate(*last_rewriting_, materialized).ToString() << "\n";
}

void Shell::CmdShow() {
  out_ << "query: " << (query_.has_value() ? query_->ToString() : "(none)")
       << "\n";
  for (const ConjunctiveQuery& v : views_.views()) {
    out_ << "view:  " << v.ToString() << "\n";
  }
  for (const auto& [name, rule] : named_) {
    out_ << "let:   " << name << " = " << rule.ToString() << "\n";
  }
  if (!db_.empty()) out_ << "facts:\n" << db_.ToString() << "\n";
}

void Shell::CmdMetrics(const std::string& args) {
  if (args == "json") {
    obs::MetricsRegistry::Global().DumpJson(out_);
  } else if (args == "reset") {
    obs::MetricsRegistry::Global().Reset();
    out_ << "metrics reset\n";
  } else if (args.empty()) {
    if (!obs::MetricsActive()) {
      out_ << "metrics collection is off (run cqacsh with --metrics)\n";
    }
    obs::MetricsRegistry::Global().DumpText(out_);
  } else {
    out_ << "usage: metrics [json|reset]\n";
  }
}

void Shell::CmdHelp() {
  out_ << "commands:\n"
          "  view <rule>           add a view definition\n"
          "  query <rule>          set the current query\n"
          "  rewrite [flags]       find an equivalent rewriting\n"
          "                        flags: verify explain coalesce minimize\n"
          "                               stats json\n"
          "                               jobs=N (0 = all cores, 1 = serial)\n"
          "                               force-tier=N (0|1|2, -1 = auto)\n"
          "  contained-rewrite     union of contained rewritings\n"
          "  let <name> <rule>     bind a rule to a name\n"
          "  contained <n1> <n2>   containment test\n"
          "  equivalent <n1> <n2>  equivalence test\n"
          "  minimize <name>       minimize a rule\n"
          "  acyclic <name>        GYO acyclicity check\n"
          "  fact <atom>.          insert a ground fact\n"
          "  eval <name|rule>      evaluate on the facts\n"
          "  eval-rewriting        evaluate the last rewriting\n"
          "  metrics [json|reset]  dump or reset the metrics registry\n"
          "  show | clear | help | quit\n";
}

}  // namespace cqac
